package abcl

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoLegacyConstruction asserts that no internal package, command or
// example constructs a System through the deprecated legacy path
// (NewSystemConfig / MustNewSystemConfig): Config values must convert via
// Config.Options() into NewSystem. The check parses every non-test source
// file under internal/, cmd/ and examples/, so a regression fails here
// rather than surviving as silent deprecated usage.
func TestNoLegacyConstruction(t *testing.T) {
	banned := map[string]bool{
		"NewSystemConfig":     true,
		"MustNewSystemConfig": true,
	}
	fset := token.NewFileSet()
	for _, root := range []string{"internal", "cmd", "examples"} {
		if _, err := os.Stat(root); err != nil {
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if ok && banned[id.Name] {
					t.Errorf("%s: uses legacy constructor %s; build the System with abcl.NewSystem(cfg.Options()...)",
						fset.Position(id.Pos()), id.Name)
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}

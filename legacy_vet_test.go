package abcl

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The deprecated construction and observation APIs were deleted in favour of
// NewSystem(With...) and the grouped Report(). These vet tests parse the
// source tree so a reintroduction fails loudly instead of surviving as
// silent legacy usage.

// bannedIdents are identifiers that belonged to the removed compatibility
// surface: the Config struct, its constructors, and the accessor zoo on
// System whose readings all moved into Report().
var bannedIdents = map[string]string{
	"NewSystemConfig":     "build the System with abcl.NewSystem(With...)",
	"MustNewSystemConfig": "build the System with abcl.NewSystem(With...)",
}

// bannedSystemMethods are method names that must never reappear on System
// (each maps to its Report() replacement).
var bannedSystemMethods = map[string]string{
	"Reliable":          "Report().Reliable.Enabled",
	"Elapsed":           "Report().Sched.Elapsed",
	"Utilization":       "Report().Sched.Utilization",
	"Stats":             "Report().Sched.Counters",
	"TotalInstructions": "Report().Sched.TotalInstructions",
	"Packets":           "Report().Wire.Packets",
	"LogicalMsgs":       "Report().Wire.LogicalMsgs",
	"BatchWindow":       "Report().Wire.BatchWindow / BatchMaxBytes",
	"AckDelay":          "Report().Reliable.AckDelay",
	"LocationCache":     "Report().Wire.LocationCache",
	"CheckpointRounds":  "Report().Ckpt.Rounds",
}

func walkGoFiles(t *testing.T, roots []string, includeTests bool, visit func(path string, f *ast.File, fset *token.FileSet)) {
	t.Helper()
	fset := token.NewFileSet()
	for _, root := range roots {
		if _, err := os.Stat(root); err != nil {
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if !strings.HasSuffix(path, ".go") || (!includeTests && strings.HasSuffix(path, "_test.go")) {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			visit(path, f, fset)
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}

// TestNoLegacyConstruction asserts that no internal package, command or
// example references the deleted legacy constructors.
func TestNoLegacyConstruction(t *testing.T) {
	walkGoFiles(t, []string{"internal", "cmd", "examples"}, false, func(path string, f *ast.File, fset *token.FileSet) {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok {
				if fix, banned := bannedIdents[id.Name]; banned {
					t.Errorf("%s: uses deleted legacy constructor %s; %s",
						fset.Position(id.Pos()), id.Name, fix)
				}
			}
			return true
		})
	})
}

// deprecatedIdents are identifiers that still exist for compatibility but
// must not be reintroduced anywhere in the tree's own packages; each maps
// to its replacement.
var deprecatedIdents = map[string]string{
	"WithParallelSim": "abcl.WithExecutor(abcl.Conservative(n)) — or abcl.Optimistic(n, ...)",
}

// TestNoDeprecatedExecutorOption asserts that no internal package, command
// or example reaches for the deprecated WithParallelSim spelling: every
// caller migrated to the unified WithExecutor API, and new code must not
// regress to the alias.
func TestNoDeprecatedExecutorOption(t *testing.T) {
	walkGoFiles(t, []string{"internal", "cmd", "examples"}, false, func(path string, f *ast.File, fset *token.FileSet) {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if fix, banned := deprecatedIdents[id.Name]; banned {
					t.Errorf("%s: uses deprecated option %s; use %s",
						fset.Position(id.Pos()), id.Name, fix)
				}
			}
			return true
		})
	})
}

// TestNoLegacyRedeclaration asserts that the root package does not
// re-declare the deleted compatibility surface: the Config type, its
// constructors, or any of the removed accessor methods on System.
func TestNoLegacyRedeclaration(t *testing.T) {
	rootFiles, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, path := range rootFiles {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				name := d.Name.Name
				if _, banned := bannedIdents[name]; banned {
					t.Errorf("%s: re-declares deleted constructor %s", fset.Position(d.Pos()), name)
				}
				if d.Recv != nil && len(d.Recv.List) == 1 {
					if recvNamed(d.Recv.List[0].Type) == "System" {
						if repl, banned := bannedSystemMethods[name]; banned {
							t.Errorf("%s: re-declares deleted accessor System.%s; readings live in %s",
								fset.Position(d.Pos()), name, repl)
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == "Config" {
						t.Errorf("%s: re-declares the deleted Config type; use functional options", fset.Position(ts.Pos()))
					}
				}
			}
		}
	}
}

func recvNamed(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvNamed(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}

package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Conservative parallel execution.
//
// RunParallel exploits the structure of a multicomputer simulation: every
// cross-lane (cross-node) effect is scheduled at least `lookahead` ahead of
// the scheduling lane's clock — for our machine model, the minimum wire
// latency. Within the virtual-time window [T, T+lookahead), where T is the
// globally earliest pending event, each lane's events depend only on state
// already queued on that lane, so the lanes can fire concurrently on a
// worker pool. At the window barrier the engine replays the window's global
// (time, seq) firing order over the per-lane birth logs to assign final
// sequence numbers exactly as the sequential engine would have, then pushes
// cross-lane births and advances to the next window.
//
// Determinism argument, in brief:
//
//  1. Window closure. Active lanes are those whose head event is < T +
//     lookahead. Any event a lane schedules onto another lane lands at >=
//     lane-now + lookahead >= T + lookahead, i.e. outside the window, so no
//     lane can receive work from another lane inside the window.
//  2. Lane-local order. Same-lane births with an in-window timestamp are
//     inserted immediately with a provisional sequence number provBase+1+
//     birthIndex. Pre-window events carry final sequence numbers <=
//     provBase, so they order before all births (as they would
//     sequentially), and births order among themselves by birth index —
//     which is exactly the order the barrier later assigns their final
//     numbers in. The provisional keys therefore sort the lane identically
//     to the final keys.
//  3. Sequence replay. The sequential engine assigns sequence numbers at
//     Schedule time, i.e. in the global (time, seq) firing order of the
//     scheduling events. The barrier merges the per-lane logs of
//     events-that-scheduled-children by (time, final seq) — resolving a
//     window-born parent's own number through its birth record, which is
//     always already assigned because its parent appears earlier in the
//     same lane's log — and numbers children in birth order, reproducing
//     the sequential assignment exactly.
//
// Event callbacks run on worker goroutines and must only touch state owned
// by their lane; Engine.Now, Engine.Stop and Engine.Schedule (lane 0) are
// not safe from inside a window — use LaneNow and the *On scheduling
// variants.

// maxTime is the largest representable virtual time.
const maxTime = Time(1<<63 - 1)

// errEventLimit is the shared event-limit error of every runner.
func errEventLimit(limit uint64, at Time) error {
	return fmt.Errorf("sim: event limit %d exceeded at t=%v", limit, at)
}

// RunParallel fires all pending events like Run, executing independent
// lanes concurrently on up to `workers` goroutines within successive
// virtual-time windows of width `lookahead`. It falls back to the
// sequential Run when parallelism cannot help (one worker, one lane, or no
// positive lookahead). Results — event order per lane, sequence numbers,
// and all lane-local state — are identical to a sequential Run.
func (e *Engine) RunParallel(workers int, lookahead Time) (uint64, error) {
	if workers <= 1 || lookahead <= 0 || len(e.lanes) <= 1 {
		return e.Run()
	}
	e.stopped = false
	e.limitHit.Store(false)
	e.parWins = 0
	var total uint64
	active := make([]int32, 0, len(e.lanes))
	for len(e.order) > 0 && !e.stopped {
		e.parWins++
		start := e.lanes[e.order[0]].heap[0].at
		end := start + lookahead
		if end < start { // overflow
			end = maxTime
		}
		active = active[:0]
		for i := range e.lanes {
			if h := e.lanes[i].heap; len(h) > 0 && h[0].at < end {
				active = append(active, int32(i))
			}
		}
		e.provBase = e.seq
		e.winEnd = end
		e.inPar = true
		if len(active) == 1 {
			l := int(active[0])
			e.lanes[l].winFired = e.runLaneWindow(l)
		} else {
			e.runWindowWorkers(active, workers)
		}
		e.inPar = false
		fired, err := e.barrier(active)
		total += fired
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// runWindowWorkers distributes the active lanes over a worker pool and
// waits for the window to complete. A panic on any worker is re-raised on
// the calling goroutine after all workers stop.
func (e *Engine) runWindowWorkers(active []int32, workers int) {
	w := workers
	if w > len(active) {
		w = len(active)
	}
	panics := make([]any, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[slot] = r
				}
			}()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(active) {
					return
				}
				l := int(active[k])
				e.lanes[l].winFired = e.runLaneWindow(l)
			}
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			e.inPar = false
			panic(p)
		}
	}
}

// runLaneWindow fires lane l's events with timestamps inside the current
// window, recording births and the fired log for the barrier. It returns
// the number of events fired (including stopped-timer no-ops).
func (e *Engine) runLaneWindow(l int) uint64 {
	ln := &e.lanes[l]
	end := e.winEnd
	limit := e.limit
	base := e.fired
	var fired uint64
	for len(ln.heap) > 0 && ln.heap[0].at < end {
		if limit != 0 && base+fired > limit {
			e.limitHit.Store(true)
			break
		}
		ev := ln.pop()
		ln.now = ev.at
		kidStart := len(ln.births)
		e.fire(l, &ev)
		fired++
		if kidEnd := len(ln.births); kidEnd > kidStart {
			rec := firedRec{at: ev.at, seq: ev.seq, bref: -1,
				kidStart: int32(kidStart), kidEnd: int32(kidEnd)}
			if ev.seq > e.provBase {
				rec.bref = int32(ev.seq - e.provBase - 1)
			}
			ln.log = append(ln.log, rec)
		}
		if ev.seq > e.provBase {
			ln.births[ev.seq-e.provBase-1].consumed = true
		}
	}
	return fired
}

// barrier finishes a window: it replays the global firing order over the
// per-lane logs to assign final sequence numbers to every birth, pushes
// unconsumed births into their destination lanes, folds the per-lane fired
// counts and clocks into the engine, and rebuilds the tournament.
func (e *Engine) barrier(active []int32) (uint64, error) {
	if cap(e.heads) < len(active) {
		e.heads = make([]int, len(active))
	}
	heads := e.heads[:len(active)]
	for i := range heads {
		heads[i] = 0
	}
	for {
		best := -1
		var bAt Time
		var bSeq uint64
		for i, l := range active {
			ln := &e.lanes[l]
			if heads[i] >= len(ln.log) {
				continue
			}
			r := &ln.log[heads[i]]
			s := r.seq
			if r.bref >= 0 {
				s = ln.births[r.bref].seq
			}
			if best < 0 || r.at < bAt || (r.at == bAt && s < bSeq) {
				best, bAt, bSeq = i, r.at, s
			}
		}
		if best < 0 {
			break
		}
		ln := &e.lanes[active[best]]
		r := &ln.log[heads[best]]
		heads[best]++
		for k := r.kidStart; k < r.kidEnd; k++ {
			e.seq++
			ln.births[k].seq = e.seq
		}
	}
	var fired uint64
	for _, l := range active {
		ln := &e.lanes[l]
		for i := range ln.births {
			b := &ln.births[i]
			if !b.consumed {
				e.lanes[b.dst].push(event{at: b.at, seq: b.seq, kind: b.kind, fn: b.fn, arg: b.arg})
			}
			ln.births[i] = birth{}
		}
		ln.births = ln.births[:0]
		ln.log = ln.log[:0]
		fired += ln.winFired
		ln.winFired = 0
		if ln.now > e.now {
			e.now = ln.now
		}
	}
	e.fired += fired
	e.orderRebuild()
	if e.limitHit.Load() || (e.limit != 0 && e.fired > e.limit) {
		return fired, errEventLimit(e.limit, e.now)
	}
	return fired, nil
}

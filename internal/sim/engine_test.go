package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	n, err := e.Run()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if n != 0 {
		t.Fatalf("fired %d events on empty engine", n)
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced on empty engine: %v", e.Now())
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineNowDuringEvent(t *testing.T) {
	e := NewEngine()
	var seen Time
	e.Schedule(42, func() { seen = e.Now() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 42 {
		t.Fatalf("Now() inside event = %v, want 42", seen)
	}
}

func TestEngineSchedulingInPastClamps(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(100, func() {
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", fired)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	n, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fired %d events, want 3 after Stop", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*10), func() { count++ })
	}
	if _, err := e.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("fired %d events by t=50, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(5)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.Schedule(0, reschedule)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected event-limit error on runaway schedule loop")
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Drain()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("drained event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

func TestEngineCascade(t *testing.T) {
	// Events scheduling further events must preserve global time order.
	e := NewEngine()
	var order []Time
	record := func() { order = append(order, e.Now()) }
	e.Schedule(10, func() {
		record()
		e.Schedule(15, record)
		e.Schedule(25, record)
	})
	e.Schedule(20, record)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 15, 20, 25}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var got []int
		var spawn func(depth, id int)
		spawn = func(depth, id int) {
			got = append(got, id)
			if depth < 4 {
				k := rng.Intn(3) + 1
				for i := 0; i < k; i++ {
					child := id*10 + i
					e.After(Time(rng.Intn(100)), func() { spawn(depth+1, child) })
				}
			}
		}
		e.Schedule(0, func() { spawn(0, 1) })
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := run(7)
	b := run(7)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: regardless of insertion order, events fire sorted by time.
func TestEngineSortedFiringProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2300, "2.300µs"},
		{8900, "8.900µs"},
		{84 * Millisecond, "84.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if (3 * Millisecond).Millis() != 3.0 {
		t.Error("Millis conversion wrong")
	}
	if (9 * Microsecond).Micros() != 9.0 {
		t.Error("Micros conversion wrong")
	}
}

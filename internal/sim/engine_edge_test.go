package sim

import (
	"reflect"
	"testing"
)

// TestRunUntilDeadlineOnEventTimestamp pins the boundary semantics: events
// stamped exactly at the deadline fire, later ones stay queued, and the
// clock parks on the deadline.
func TestRunUntilDeadlineOnEventTimestamp(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{99, 100, 100, 101} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	n, err := e.RunUntil(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fired %d events up to deadline, want 3", n)
	}
	if want := []Time{99, 100, 100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if e.Now() != 100 {
		t.Fatalf("clock parked at %v, want deadline 100", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want 1", e.Pending())
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []Time{99, 100, 100, 101}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after resume fired %v, want %v", got, want)
	}
}

// TestSchedulePastDuringFiring checks the causality clamp from inside an
// event callback: a schedule into the past lands at the current instant and
// still fires within the same run, after the current event.
func TestSchedulePastDuringFiring(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(100, func() {
		e.Schedule(50, func() { got = append(got, e.Now()) })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []Time{100}; !reflect.DeepEqual(got, want) {
		t.Fatalf("clamped event fired at %v, want %v", got, want)
	}
}

// TestDrainThenReuse drains a loaded multi-lane engine — including armed
// timers — and verifies the engine and the timer handles are immediately
// reusable.
func TestDrainThenReuse(t *testing.T) {
	e := NewEngine()
	e.SetLanes(3)
	stale := 0
	for l := 0; l < 3; l++ {
		e.ScheduleFuncOn(l, l, Time(10+l), func() { stale++ })
	}
	var tm Timer
	e.StartTimer(1, 1, &tm, 5, func() { stale++ })
	if !tm.Pending() {
		t.Fatal("armed timer not pending")
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after Drain", e.Pending())
	}
	// The drained timer's slot is gone; re-arming must not panic even
	// though its pending flag was never cleared by a pop or sweep.
	fired := 0
	e.StartTimer(2, 2, &tm, 7, func() { fired++ })
	e.ScheduleFuncOn(0, 0, 3, func() { fired++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if stale != 0 {
		t.Fatalf("%d drained events fired", stale)
	}
	if fired != 2 {
		t.Fatalf("fired %d post-Drain events, want 2", fired)
	}
}

// TestLaneSchedulingAndLaneNow drives typed events across lanes and checks
// the global merge order plus each lane's local clock.
func TestLaneSchedulingAndLaneNow(t *testing.T) {
	e := NewEngine()
	e.SetLanes(4)
	type rec struct {
		lane int
		at   Time
	}
	var got []rec
	kind := e.RegisterHandler(func(at Time, arg any) {
		got = append(got, rec{arg.(int), at})
	})
	e.ScheduleOn(0, 2, 30, kind, 2)
	e.ScheduleOn(0, 1, 10, kind, 1)
	e.ScheduleOn(1, 3, 20, kind, 3)
	e.ScheduleOn(2, 1, 20, kind, 1) // same time as lane 3's: scheduled later, fires later
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []rec{{1, 10}, {3, 20}, {1, 20}, {2, 30}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	// Outside a parallel window LaneNow is the global clock.
	if e.LaneNow(1) != e.Now() || e.Now() != 30 {
		t.Fatalf("LaneNow/Now = %v/%v, want 30/30", e.LaneNow(1), e.Now())
	}
}

// TestTimerLazySweep stops a majority of armed timers and verifies the lane
// sweeps their dead slots without firing them, while survivors still fire.
func TestTimerLazySweep(t *testing.T) {
	e := NewEngine()
	const n = 64
	timers := make([]*Timer, n)
	fired := 0
	for i := range timers {
		timers[i] = e.AfterTimer(Time(1000+i), func() { fired++ })
	}
	if e.Pending() != n {
		t.Fatalf("%d slots pending, want %d", e.Pending(), n)
	}
	// Stopping most timers must trigger sweeps along the way. The sweep is
	// lazy — dead slots may linger — but its invariant is that they never
	// outnumber the live ones, so with 8 survivors at most 16 slots remain.
	for i := 0; i < n-8; i++ {
		timers[i].Stop()
	}
	if p := e.Pending(); p < 8 || p > 16 {
		t.Fatalf("%d slots pending after sweeps, want 8..16", p)
	}
	swept := 0
	for i := 0; i < n-8; i++ {
		if !timers[i].Pending() {
			swept++
		}
	}
	if swept == 0 {
		t.Fatal("no stopped timer slot was swept")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 8 {
		t.Fatalf("%d timers fired, want 8", fired)
	}
	// A swept timer can be re-armed at once.
	e.StartTimer(0, 0, timers[0], 5, nil)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 9 {
		t.Fatalf("%d timers fired after re-arm, want 9", fired)
	}
}

// TestStartTimerWhileQueuedPanics pins the re-arm contract: a timer whose
// slot is still in a heap cannot be re-armed.
func TestStartTimerWhileQueuedPanics(t *testing.T) {
	e := NewEngine()
	tm := e.AfterTimer(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("re-arming a queued timer did not panic")
		}
	}()
	e.StartTimer(0, 0, tm, 20, nil)
}

// parallelWorkload loads e with a deterministic multi-lane cascade whose
// cross-lane children always land at least lookahead ahead of the
// scheduling lane's clock (the conservative-parallelism contract). Each
// lane appends its firings to its own log slice, so callbacks stay
// lane-local under RunParallel.
func parallelWorkload(e *Engine, lanes int, lookahead Time, logs [][]Time) {
	var spawn func(lane, depth, v int)
	spawn = func(lane, depth, v int) {
		e.ScheduleFuncOn(lane, lane, e.LaneNow(lane)+Time(v%13), func() {
			logs[lane] = append(logs[lane], e.LaneNow(lane))
			if depth == 0 {
				return
			}
			// Same-lane child inside the window, cross-lane child at the
			// minimum legal distance.
			spawn(lane, depth-1, v*7+1)
			dst := (lane + v) % lanes
			e.ScheduleFuncOn(lane, dst, e.LaneNow(lane)+lookahead+Time(v%29), func() {
				logs[dst] = append(logs[dst], e.LaneNow(dst))
			})
		})
	}
	for l := 0; l < lanes; l++ {
		spawn(l, 6, l+3)
	}
}

// TestRunParallelMatchesRun runs the same cascade sequentially and under
// the windowed parallel executor and requires identical per-lane firing
// logs, total event counts, and final clocks.
func TestRunParallelMatchesRun(t *testing.T) {
	const lanes = 8
	const lookahead = Time(50)

	runOne := func(par bool) ([][]Time, uint64, Time) {
		e := NewEngine()
		e.SetLanes(lanes)
		logs := make([][]Time, lanes)
		parallelWorkload(e, lanes, lookahead, logs)
		var n uint64
		var err error
		if par {
			n, err = e.RunParallel(4, lookahead)
		} else {
			n, err = e.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		last := Time(0)
		for l := 0; l < lanes; l++ {
			if ln := e.LaneNow(l); ln > last {
				last = ln
			}
		}
		return logs, n, last
	}

	seqLogs, seqN, seqLast := runOne(false)
	parLogs, parN, parLast := runOne(true)
	if seqN != parN {
		t.Fatalf("event counts differ: sequential %d, parallel %d", seqN, parN)
	}
	if seqLast != parLast {
		t.Fatalf("final clocks differ: sequential %v, parallel %v", seqLast, parLast)
	}
	if !reflect.DeepEqual(seqLogs, parLogs) {
		t.Fatalf("per-lane firing logs differ:\nsequential %v\nparallel   %v", seqLogs, parLogs)
	}
}

package sim

import "sync/atomic"

// Optimistic (Time Warp) parallel execution.
//
// RunOptimistic extends the conservative runner with speculation: instead of
// bounding every window by the network lookahead, it opens windows of an
// adaptive width Weff >= lookahead and lets lanes execute past the
// conservative horizon S = T + lookahead. Events fired before S are exactly
// the conservative window and can never be invalidated (window closure: any
// cross-lane effect lands at least `lookahead` ahead of the scheduling
// lane's clock, hence at or after S). Events fired at or after S are
// speculative: before firing its first speculative event a lane captures a
// rollback snapshot — its heap, timer values, birth marks, and (through the
// LaneSaver) all external per-lane state such as node clocks, object state
// and protocol cursors.
//
// A straggler is a cross-lane birth with a timestamp inside the window. The
// scheduling hook in post() raises the shared conflict flag the moment one
// is recorded; the first straggler dooms the whole speculation, because a
// window may only commit when every event with a timestamp inside it has
// fired (otherwise children of the unfired event would receive sequence
// numbers after the committed events' children, diverging from the
// sequential assignment). On conflict every captured lane is rolled back to
// its snapshot — this is the anti-message: speculative sends never left the
// per-lane birth log, so revoking them is truncating that log (sender-side
// message buffering until commit; nothing reaches a remote lane that would
// need chasing) — and the window commits as the plain conservative window
// [T, S). Either way the commit runs the standard barrier sequence replay,
// so the determinism argument of parallel.go applies verbatim to every
// committed window: results are byte-identical to a sequential Run.
//
// The commit horizon of each window is the GVT (global virtual time): all
// state before it is final and its snapshots are released (fossil
// collection). Weff adapts to the workload — halved after a rollback,
// doubled after a clean speculative commit — so chatty phases degenerate to
// conservative windows (where the persistent worker pool still beats
// RunParallel's per-window goroutine spawning) while sparse phases widen
// their windows and amortise barriers.

// LaneSaver captures and restores external per-lane simulation state around
// speculative execution. Capture is called from the worker goroutine that
// owns the lane, between two of its events; Restore is called single-
// threaded at the window barrier. A nil LaneSaver rolls back engine state
// only (sufficient when event callbacks touch nothing outside the engine).
type LaneSaver interface {
	Capture(lane int) any
	Restore(lane int, snap any)
}

// OptimisticConfig parameterises RunOptimistic. Lookahead is the
// conservative safety bound (cross-lane effects land at least this far
// ahead). Window is the initial speculation width; GVTInterval, when
// positive, caps how far the adaptive width may grow (it bounds the virtual
// time between commits); MaxRollbackDepth is the number of consecutive
// rolled-back windows tolerated before the width collapses straight to the
// conservative floor. Fence, when set, returns the earliest virtual time
// that must not be reached inside a parallel window (for example the next
// checkpoint-coordinator tick); SerialNow, when set and true, forces
// one-event-at-a-time execution (a marker round in flight). FenceLanes
// lists lanes whose events must always fire serially (the host lane: crash
// restores run there and touch every lane at once).
type OptimisticConfig struct {
	Lookahead        Time
	Window           Time
	MaxRollbackDepth int
	GVTInterval      Time
	Saver            LaneSaver
	Fence            func() Time
	SerialNow        func() bool
	FenceLanes       []int
}

// OptStats describes one RunOptimistic drive, for reporting and tests. All
// values are deterministic: window widths adapt on virtual-time conflicts
// only, never on wall-clock measurements or the worker schedule.
type OptStats struct {
	Windows     uint64 // parallel windows run (conservative and speculative)
	Speculative uint64 // windows opened wider than the lookahead
	Rollbacks   uint64 // speculative windows rolled back by a straggler
	SerialSteps uint64 // events fired one at a time under a fence
}

// laneSnap is the engine-level rollback snapshot of one lane, taken at the
// speculative horizon.
type laneSnap struct {
	heap     []event // pre-window entries only (final seq <= provBase)
	dead     int     // stopped-timer slots among the kept entries
	now      Time
	winFired uint64
	birthLen int
	logLen   int
	consumed []bool // consumed flags of births[:birthLen] at capture
	timers   []timerSave
	app      any // LaneSaver payload
}

// timerSave preserves a Timer's full value so rollback can undo speculative
// fires, stops and re-arms of pre-existing timer slots.
type timerSave struct {
	t *Timer
	v Timer
}

// captureLane snapshots lane l at the speculative horizon. Same-lane
// in-window births (provisional sequence numbers > provBase) are excluded
// from the heap copy: their birth records survive the rollback and the
// barrier re-pushes the unconsumed ones with final sequence numbers.
func (e *Engine) captureLane(l int, saver LaneSaver) *laneSnap {
	ln := &e.lanes[l]
	s := &laneSnap{
		now:      ln.now,
		winFired: ln.winFired,
		birthLen: len(ln.births),
		logLen:   len(ln.log),
	}
	s.heap = make([]event, 0, len(ln.heap))
	for i := range ln.heap {
		ev := ln.heap[i]
		if ev.seq > e.provBase {
			continue
		}
		s.heap = append(s.heap, ev)
		if ev.kind == kindTimer {
			t := ev.arg.(*Timer)
			s.timers = append(s.timers, timerSave{t, *t})
			if t.stopped {
				s.dead++
			}
		}
	}
	if n := len(ln.births); n > 0 {
		s.consumed = make([]bool, n)
		for i := range ln.births {
			s.consumed[i] = ln.births[i].consumed
			// A pre-capture birth's timer has no slot in the kept heap (its
			// provisional entry is excluded above), so its value must be saved
			// here or a speculative fire-and-re-arm would outlive the rollback.
			if b := &ln.births[i]; b.kind == kindTimer {
				t := b.arg.(*Timer)
				s.timers = append(s.timers, timerSave{t, *t})
			}
		}
	}
	if saver != nil {
		s.app = saver.Capture(l)
	}
	return s
}

// restoreLane rolls lane l back to its snapshot: speculative births are
// revoked (timers they armed become inert), pre-capture birth flags and the
// fired log are rewound, the heap is rebuilt from the kept entries, and
// pre-existing timer values are restored. Runs single-threaded at the
// barrier.
func (e *Engine) restoreLane(l int, s *laneSnap, saver LaneSaver) {
	ln := &e.lanes[l]
	for i := s.birthLen; i < len(ln.births); i++ {
		b := &ln.births[i]
		if b.kind == kindTimer {
			b.arg.(*Timer).pending = false
		}
		ln.births[i] = birth{}
	}
	ln.births = ln.births[:s.birthLen]
	for i := range s.consumed {
		ln.births[i].consumed = s.consumed[i]
	}
	for i := s.logLen; i < len(ln.log); i++ {
		ln.log[i] = firedRec{}
	}
	ln.log = ln.log[:s.logLen]
	for i := len(s.heap); i < len(ln.heap); i++ {
		ln.heap[i] = event{}
	}
	ln.heap = append(ln.heap[:0], s.heap...)
	ln.heapify()
	ln.dead = s.dead
	ln.now = s.now
	ln.winFired = s.winFired
	for _, ts := range s.timers {
		*ts.t = ts.v
	}
	if saver != nil {
		saver.Restore(l, s.app)
	}
}

// runLaneWindowOpt is runLaneWindow with the speculative horizon: the lane
// captures its snapshot before its first event at or past sHor, and stops
// speculating early once the window is already doomed by a conflict.
func (e *Engine) runLaneWindowOpt(l int, sHor Time, saver LaneSaver, snaps []*laneSnap) uint64 {
	ln := &e.lanes[l]
	end := e.winEnd
	limit := e.limit
	base := e.fired
	var fired uint64
	captured := false
	for len(ln.heap) > 0 && ln.heap[0].at < end {
		if limit != 0 && base+fired > limit {
			e.limitHit.Store(true)
			break
		}
		if !captured && ln.heap[0].at >= sHor {
			if e.conflict.Load() {
				// The window is already doomed: speculative work would be
				// rolled straight back, so stop before even capturing. Unfired
				// same-lane births still sit in the heap under provisional
				// sequence numbers; drop them — the barrier re-pushes their
				// (unconsumed) birth records with final numbers.
				ln.dropProvisional(e.provBase)
				break
			}
			s := e.captureLane(l, saver)
			// ln.winFired is only assigned when this function returns; the
			// conservative prefix fired so far lives in the local counter.
			s.winFired = fired
			snaps[l] = s
			captured = true
		} else if captured && e.conflict.Load() {
			break
		}
		ev := ln.pop()
		ln.now = ev.at
		kidStart := len(ln.births)
		e.fire(l, &ev)
		fired++
		if kidEnd := len(ln.births); kidEnd > kidStart {
			rec := firedRec{at: ev.at, seq: ev.seq, bref: -1,
				kidStart: int32(kidStart), kidEnd: int32(kidEnd)}
			if ev.seq > e.provBase {
				rec.bref = int32(ev.seq - e.provBase - 1)
			}
			ln.log = append(ln.log, rec)
		}
		if ev.seq > e.provBase {
			ln.births[ev.seq-e.provBase-1].consumed = true
		}
	}
	return fired
}

// dropProvisional removes same-lane in-window births (provisional sequence
// numbers > provBase) from the lane heap and recounts its dead slots. Their
// birth records remain and are re-sequenced at the barrier.
func (ln *lane) dropProvisional(provBase uint64) {
	kept := ln.heap[:0]
	dead := 0
	for i := range ln.heap {
		ev := ln.heap[i]
		if ev.seq > provBase {
			continue
		}
		if ev.kind == kindTimer && ev.arg.(*Timer).stopped {
			dead++
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(ln.heap); i++ {
		ln.heap[i] = event{}
	}
	ln.heap = kept
	ln.dead = dead
	ln.heapify()
}

// stepOne fires the globally next event sequentially (fence mode).
func (e *Engine) stepOne() error {
	l := int(e.order[0])
	ln := &e.lanes[l]
	ev := ln.pop()
	if len(ln.heap) == 0 {
		e.orderRemoveAt(0)
	} else {
		e.orderDown(0)
	}
	e.now = ev.at
	ln.now = ev.at
	e.fire(l, &ev)
	e.fired++
	if e.limit != 0 && e.fired > e.limit {
		return errEventLimit(e.limit, e.now)
	}
	return nil
}

// optPool is the persistent worker pool of one RunOptimistic drive. Workers
// park on the run channel between windows; each window releases one token
// per participating worker, the workers drain a shared lane cursor, and the
// dispatcher collects one completion (carrying any recovered panic) per
// token. Reusing goroutines across the run is a large part of the win over
// RunParallel, which spawns a fresh set per ~lookahead-sized window.
type optPool struct {
	e      *Engine
	run    chan struct{}
	done   chan any
	active []int32
	cursor atomic.Int64
	sHor   Time
	saver  LaneSaver
	snaps  []*laneSnap
}

func newOptPool(e *Engine, workers int) *optPool {
	p := &optPool{e: e, run: make(chan struct{}), done: make(chan any, workers)}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *optPool) worker() {
	for range p.run {
		p.done <- p.window()
	}
}

func (p *optPool) window() (panicked any) {
	defer func() { panicked = recover() }()
	for {
		k := int(p.cursor.Add(1)) - 1
		if k >= len(p.active) {
			return nil
		}
		l := int(p.active[k])
		p.e.lanes[l].winFired = p.e.runLaneWindowOpt(l, p.sHor, p.saver, p.snaps)
	}
}

// dispatch runs one window over the pool and re-raises any worker panic.
func (p *optPool) dispatch(active []int32, sHor Time, saver LaneSaver, snaps []*laneSnap, workers int) {
	p.active = active
	p.sHor = sHor
	p.saver = saver
	p.snaps = snaps
	p.cursor.Store(0)
	w := workers
	if w > len(active) {
		w = len(active)
	}
	for i := 0; i < w; i++ {
		p.run <- struct{}{}
	}
	var failed any
	for i := 0; i < w; i++ {
		if r := <-p.done; r != nil && failed == nil {
			failed = r
		}
	}
	if failed != nil {
		p.e.inPar = false
		panic(failed)
	}
}

func (p *optPool) close() { close(p.run) }

// RunOptimistic fires all pending events like Run, speculating past the
// conservative lookahead inside adaptive virtual-time windows and rolling
// back on stragglers. Results — event order per lane, sequence numbers, and
// all lane-local state — are identical to a sequential Run. It falls back
// to Run when parallelism cannot help.
func (e *Engine) RunOptimistic(workers int, cfg OptimisticConfig) (uint64, error) {
	la := cfg.Lookahead
	if workers <= 1 || la <= 0 || len(e.lanes) <= 1 {
		return e.Run()
	}
	win := cfg.Window
	if win < la {
		win = la * 16
	}
	capW := win
	if cfg.GVTInterval > capW {
		capW = cfg.GVTInterval
	}
	maxDepth := cfg.MaxRollbackDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	e.stopped = false
	e.limitHit.Store(false)
	e.optStats = OptStats{}
	pool := newOptPool(e, workers)
	defer pool.close()

	snaps := make([]*laneSnap, len(e.lanes))
	active := make([]int32, 0, len(e.lanes))
	var total uint64

	// Adaptive width state. All inputs are virtual-time facts, so the window
	// sequence (and OptStats) is reproducible run to run.
	weffCur := win
	probeIn := 0     // conservative windows to run before probing wider again
	penalty := 16    // next hold-down length; doubles on repeated collapse
	streak := 0      // consecutive rolled-back speculative windows

	for len(e.order) > 0 && !e.stopped {
		if cfg.SerialNow != nil && cfg.SerialNow() {
			e.optStats.SerialSteps++
			total++
			if err := e.stepOne(); err != nil {
				return total, err
			}
			continue
		}
		T := e.lanes[e.order[0]].heap[0].at
		fence := maxTime
		if cfg.Fence != nil {
			if f := cfg.Fence(); f >= 0 && f < fence {
				fence = f
			}
		}
		for _, fl := range cfg.FenceLanes {
			if h := e.lanes[fl].heap; len(h) > 0 && h[0].at < fence {
				fence = h[0].at
			}
		}
		if T >= fence {
			e.optStats.SerialSteps++
			total++
			if err := e.stepOne(); err != nil {
				return total, err
			}
			continue
		}
		weff := weffCur
		if weffCur <= la {
			if probeIn > 0 {
				probeIn--
				weff = la
			} else {
				weff = 2 * la
			}
		}
		end := T + weff
		if end < T { // overflow
			end = maxTime
		}
		if end > fence {
			end = fence
		}
		sHor := T + la
		if sHor < T {
			sHor = maxTime
		}
		wide := end > sHor
		if !wide {
			// Closure-guaranteed window: no lane can be invalidated, so no
			// lane ever reaches the capture branch.
			sHor = end
		}

		active = active[:0]
		for i := range e.lanes {
			if h := e.lanes[i].heap; len(h) > 0 && h[0].at < end {
				active = append(active, int32(i))
			}
		}
		e.provBase = e.seq
		e.winEnd = end
		e.conflict.Store(false)
		e.inPar = true
		if len(active) == 1 {
			l := int(active[0])
			e.lanes[l].winFired = e.runLaneWindowOpt(l, sHor, cfg.Saver, snaps)
		} else {
			pool.dispatch(active, sHor, cfg.Saver, snaps, workers)
		}
		e.inPar = false
		e.optStats.Windows++

		if wide {
			e.optStats.Speculative++
			if e.conflict.Load() {
				// Straggler: revoke all speculation, commit the conservative
				// prefix. Clearing limitHit is safe — the barrier re-derives
				// the limit condition from the restored fired counts.
				e.optStats.Rollbacks++
				for _, l := range active {
					if s := snaps[l]; s != nil {
						e.restoreLane(int(l), s, cfg.Saver)
						snaps[l] = nil
					}
				}
				e.limitHit.Store(false)
				streak++
				weffCur = weff / 2
				if streak >= maxDepth {
					weffCur = la
					streak = 0
				}
				if weffCur <= la {
					weffCur = la
					probeIn = penalty
					if penalty < 1<<16 {
						penalty *= 2
					}
				}
			} else {
				// Clean speculative commit: this window's end is the new GVT;
				// snapshots are fossil-collected and the width grows.
				streak = 0
				penalty = 16
				for _, l := range active {
					snaps[l] = nil
				}
				weffCur = weff * 2
				if weffCur > capW {
					weffCur = capW
				}
			}
		}
		fired, err := e.barrier(active)
		total += fired
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// OptimisticStats reports the adaptive-window statistics of the most recent
// RunOptimistic drive.
func (e *Engine) OptimisticStats() OptStats { return e.optStats }

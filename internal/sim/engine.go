// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains per-lane priority queues of events ordered by virtual
// time with a monotonically increasing sequence number as a tie-breaker, so
// two runs over the same inputs produce identical event orderings. Virtual
// time is expressed in nanoseconds (Time).
//
// Events live by value inside per-lane binary heaps (no container/heap, no
// interface boxing), and a small top-level tournament — an index heap over
// the non-empty lanes keyed by their head event's (time, seq) — selects the
// globally next event in O(log lanes). A lane conventionally corresponds to
// one simulated node, which is what makes the conservative parallel runner
// in parallel.go possible; lane 0 is the default lane used by the
// single-queue compatibility API (Schedule, After, AfterTimer).
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Kind identifies how an event is dispatched when it fires. Kind 0 is a
// plain captured closure; kind 1 is a cancelable Timer slot; kinds obtained
// from RegisterHandler dispatch through a registered handler function with a
// payload, avoiding a closure allocation per event.
type Kind uint8

const (
	kindClosure Kind = iota
	kindTimer
	kindHandlerBase
)

// event is a scheduled callback, stored by value in a lane heap.
type event struct {
	at   Time
	seq  uint64
	kind Kind
	fn   func()
	arg  any
}

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// birth records one event scheduled during a parallel window, on the lane
// that scheduled it. Final sequence numbers are assigned at the barrier.
type birth struct {
	at       Time
	seq      uint64
	dst      int32
	kind     Kind
	consumed bool // already fired inside the window (same-lane, in-window)
	fn       func()
	arg      any
}

// firedRec logs one fired event that scheduled children, so the barrier can
// replay the window's global firing order and assign sequence numbers
// exactly as the sequential engine would have.
type firedRec struct {
	at       Time
	seq      uint64 // valid when bref < 0 (event existed before the window)
	bref     int32  // birth index when the event was born inside the window
	kidStart int32
	kidEnd   int32
}

// lane is one independent event queue plus its parallel-window scratch
// state. The heap is a standard array binary heap over (at, seq).
type lane struct {
	heap     []event
	dead     int // stopped-timer slots still occupying heap entries
	now      Time
	births   []birth
	log      []firedRec
	winFired uint64
}

func (ln *lane) push(ev event) {
	h := append(ln.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ln.heap = h
}

func (ln *lane) pop() event {
	h := ln.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(&h[r], &h[l]) {
			m = r
		}
		if !evLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	ln.heap = h
	return ev
}

func (ln *lane) heapify() {
	h := ln.heap
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l := 2*j + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && evLess(&h[r], &h[l]) {
				m = r
			}
			if !evLess(&h[m], &h[j]) {
				break
			}
			h[j], h[m] = h[m], h[j]
			j = m
		}
	}
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine (or,
// under RunParallel, on the worker that owns the callback's lane for the
// current window).
type Engine struct {
	lanes    []lane
	order    []int32 // index heap over non-empty lanes, keyed by head (at, seq)
	pos      []int32 // lane -> position in order, -1 when absent
	handlers []func(at Time, arg any)
	seq      uint64
	now      Time
	stopped  bool
	fired    uint64
	limit    uint64 // optional safety limit on fired events; 0 = unlimited
	epoch    uint32 // bumped by Drain so stale Timer handles become inert
	inPar    bool   // inside a parallel window: post() records births
	provBase uint64 // e.seq at window start; provisional seqs are > provBase
	winEnd   Time
	limitHit atomic.Bool // set by a worker that tripped the event limit
	conflict atomic.Bool // optimistic window: a cross-lane birth landed in-window
	optStats OptStats    // statistics of the last RunOptimistic drive
	parWins  uint64      // windows (barriers) of the last RunParallel drive
	heads    []int       // barrier scratch: per-active-lane log cursor
}

// ParWindows reports how many conservative windows — one barrier each —
// the last RunParallel drive executed. Deterministic: the window schedule
// depends only on virtual time and the lookahead, never on the workers.
func (e *Engine) ParWindows() uint64 { return e.parWins }

// NewEngine returns an empty engine at time zero with a single lane.
func NewEngine() *Engine {
	e := &Engine{}
	e.SetLanes(1)
	return e
}

// SetLanes reconfigures the engine to n independent event lanes (n >= 1).
// Lane 0 is the default lane; a machine typically maps node i to lane i+1.
// It panics if events are pending.
func (e *Engine) SetLanes(n int) {
	if n < 1 {
		panic("sim: SetLanes needs at least one lane")
	}
	if e.Pending() > 0 {
		panic("sim: SetLanes with events pending")
	}
	e.lanes = make([]lane, n)
	e.order = e.order[:0]
	e.pos = make([]int32, n)
	for i := range e.pos {
		e.pos[i] = -1
	}
}

// Lanes reports the number of configured lanes.
func (e *Engine) Lanes() int { return len(e.lanes) }

// RegisterHandler registers a typed event handler and returns its Kind.
// Events scheduled with that kind dispatch through the handler with their
// payload and fire time — no closure allocation per event.
func (e *Engine) RegisterHandler(h func(at Time, arg any)) Kind {
	e.handlers = append(e.handlers, h)
	k := kindHandlerBase + Kind(len(e.handlers)-1)
	if k < kindHandlerBase {
		panic("sim: too many registered handlers")
	}
	return k
}

// Now returns the current virtual time: the timestamp of the event being
// fired, or of the last fired event when called between Run calls. During
// RunParallel windows, use LaneNow from event callbacks instead.
func (e *Engine) Now() Time { return e.now }

// LaneNow returns the current virtual time as observed by code running on
// the given lane: the lane-local clock inside a parallel window, the global
// clock otherwise.
func (e *Engine) LaneNow(l int) Time {
	if e.inPar {
		return e.lanes[l].now
	}
	return e.now
}

// Fired reports the number of events fired so far. Stopped timer slots that
// are popped (rather than swept) count as fired no-ops.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently scheduled across all
// lanes, including not-yet-swept stopped timer slots.
func (e *Engine) Pending() int {
	n := 0
	for i := range e.lanes {
		n += len(e.lanes[i].heap)
	}
	return n
}

// LivePending is Pending minus stopped-timer slots still occupying heap
// entries: the number of events that will actually do work. A periodic
// activity that should end with the simulation (e.g. checkpoint ticks) keys
// off this — dead retry-timer slots linger for their original deadline and
// would otherwise read as pending work.
func (e *Engine) LivePending() int {
	n := 0
	for i := range e.lanes {
		n += len(e.lanes[i].heap) - e.lanes[i].dead
	}
	return n
}

// SetEventLimit installs a safety limit: Run returns an error after firing
// n events. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// post is the single scheduling entry point. src is the lane on whose
// behalf the event is scheduled (the lane of the currently firing event);
// dst is the lane the event should fire on. Outside parallel windows the
// event receives its final sequence number immediately; inside a window it
// is recorded as a birth on src and sequenced at the barrier.
func (e *Engine) post(src, dst int, at Time, kind Kind, fn func(), arg any) {
	if e.inPar {
		sl := &e.lanes[src]
		if at < sl.now {
			at = sl.now
		}
		idx := len(sl.births)
		sl.births = append(sl.births, birth{at: at, dst: int32(dst), kind: kind, fn: fn, arg: arg})
		if dst == src && at < e.winEnd {
			// Same-lane and inside the window: insert immediately with a
			// provisional sequence number that encodes the birth index and
			// preserves lane-local order (see parallel.go).
			sl.push(event{at: at, seq: e.provBase + 1 + uint64(idx), kind: kind, fn: fn, arg: arg})
		} else if dst != src && at < e.winEnd {
			// A cross-lane birth inside the window: impossible under the
			// conservative lookahead, a straggler under speculation — the
			// optimistic runner rolls the window back (see optimistic.go).
			e.conflict.Store(true)
		}
		return
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	ln := &e.lanes[dst]
	wasEmpty := len(ln.heap) == 0
	ln.push(event{at: at, seq: e.seq, kind: kind, fn: fn, arg: arg})
	if wasEmpty {
		e.orderAdd(dst)
	} else if ln.heap[0].seq == e.seq {
		// New head: the lane got earlier, fix its tournament position.
		e.orderUp(int(e.pos[dst]))
	}
}

// Schedule enqueues fire to run at virtual time at, on lane 0. Scheduling
// in the past (at < Now) is clamped to Now, preserving causality.
func (e *Engine) Schedule(at Time, fire func()) {
	e.post(0, 0, at, kindClosure, fire, nil)
}

// ScheduleOn enqueues a typed event with payload arg to fire on lane dst at
// virtual time at, scheduled on behalf of lane src.
func (e *Engine) ScheduleOn(src, dst int, at Time, kind Kind, arg any) {
	e.post(src, dst, at, kind, nil, arg)
}

// ScheduleFuncOn enqueues a closure event to fire on lane dst at virtual
// time at, scheduled on behalf of lane src.
func (e *Engine) ScheduleFuncOn(src, dst int, at Time, fire func()) {
	e.post(src, dst, at, kindClosure, fire, nil)
}

// After enqueues fire to run d nanoseconds after the current time, on
// lane 0.
func (e *Engine) After(d Time, fire func()) { e.Schedule(e.now+d, fire) }

// Stop makes the current Run return after the in-flight event completes.
// Pending events remain queued. Not safe to call from RunParallel worker
// callbacks.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// fire dispatches one popped event from lane l.
func (e *Engine) fire(l int, ev *event) {
	switch ev.kind {
	case kindClosure:
		ev.fn()
	case kindTimer:
		t := ev.arg.(*Timer)
		t.pending = false
		if t.stopped {
			// A stopped slot that escaped the sweep: fires as a no-op.
			if ln := &e.lanes[l]; ln.dead > 0 {
				ln.dead--
			}
			return
		}
		t.fired = true
		t.fn()
	default:
		e.handlers[ev.kind-kindHandlerBase](ev.at, ev.arg)
	}
}

// Run fires events in (time, seq) order until the queue is empty, Stop is
// called, or the event limit is exceeded. It returns the number of events
// fired during this call and an error if the limit tripped.
func (e *Engine) Run() (uint64, error) {
	return e.RunUntil(-1)
}

// RunUntil is Run bounded by virtual time: events with timestamp > deadline
// stay queued (events exactly at the deadline fire). A negative deadline
// means no bound.
func (e *Engine) RunUntil(deadline Time) (uint64, error) {
	e.stopped = false
	var n uint64
	for {
		if len(e.order) == 0 || e.stopped {
			return n, nil
		}
		l := int(e.order[0])
		ln := &e.lanes[l]
		if deadline >= 0 && ln.heap[0].at > deadline {
			e.now = deadline
			return n, nil
		}
		ev := ln.pop()
		if len(ln.heap) == 0 {
			e.orderRemoveAt(0)
		} else {
			e.orderDown(0)
		}
		e.now = ev.at
		ln.now = ev.at
		e.fire(l, &ev)
		n++
		e.fired++
		if e.limit != 0 && e.fired > e.limit {
			return n, errEventLimit(e.limit, e.now)
		}
	}
}

// Drain discards all pending events without firing them. Timers armed
// before Drain become inert: their heap slots are gone and their handles
// can be re-armed immediately.
func (e *Engine) Drain() {
	for i := range e.lanes {
		ln := &e.lanes[i]
		for j := range ln.heap {
			ln.heap[j] = event{}
		}
		ln.heap = ln.heap[:0]
		ln.dead = 0
		ln.births = ln.births[:0]
		ln.log = ln.log[:0]
	}
	e.order = e.order[:0]
	for i := range e.pos {
		e.pos[i] = -1
	}
	e.epoch++
}

// Tournament (index heap over non-empty lanes) maintenance. order holds
// lane indices; pos maps a lane to its slot in order (-1 when absent).

func (e *Engine) orderLess(i, j int) bool {
	a, b := e.order[i], e.order[j]
	return evLess(&e.lanes[a].heap[0], &e.lanes[b].heap[0])
}

func (e *Engine) orderSwap(i, j int) {
	e.order[i], e.order[j] = e.order[j], e.order[i]
	e.pos[e.order[i]] = int32(i)
	e.pos[e.order[j]] = int32(j)
}

func (e *Engine) orderUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.orderLess(i, p) {
			break
		}
		e.orderSwap(i, p)
		i = p
	}
}

// orderDown sifts slot i down; it reports whether the slot moved.
func (e *Engine) orderDown(i int) bool {
	start := i
	n := len(e.order)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.orderLess(r, l) {
			m = r
		}
		if !e.orderLess(m, i) {
			break
		}
		e.orderSwap(i, m)
		i = m
	}
	return i > start
}

func (e *Engine) orderAdd(l int) {
	e.pos[l] = int32(len(e.order))
	e.order = append(e.order, int32(l))
	e.orderUp(len(e.order) - 1)
}

func (e *Engine) orderRemoveAt(p int) {
	n := len(e.order) - 1
	l := e.order[p]
	e.orderSwap(p, n)
	e.order = e.order[:n]
	e.pos[l] = -1
	if p < n {
		if !e.orderDown(p) {
			e.orderUp(p)
		}
	}
}

// orderFixLane repositions lane l in the tournament after its head changed
// arbitrarily (sweep), appeared, or disappeared.
func (e *Engine) orderFixLane(l int) {
	p := e.pos[l]
	if len(e.lanes[l].heap) == 0 {
		if p >= 0 {
			e.orderRemoveAt(int(p))
		}
		return
	}
	if p < 0 {
		e.orderAdd(l)
		return
	}
	if !e.orderDown(int(p)) {
		e.orderUp(int(p))
	}
}

// orderRebuild reconstructs the tournament from scratch (used at parallel
// window barriers).
func (e *Engine) orderRebuild() {
	e.order = e.order[:0]
	for i := range e.lanes {
		if len(e.lanes[i].heap) > 0 {
			e.pos[i] = int32(len(e.order))
			e.order = append(e.order, int32(i))
		} else {
			e.pos[i] = -1
		}
	}
	for i := len(e.order)/2 - 1; i >= 0; i-- {
		e.orderDown(i)
	}
}

// Timer is a cancelable, re-armable scheduled callback, used for timeouts
// that are usually canceled before they fire (e.g. retransmission timers).
// Stopping a timer does not immediately remove its slot from the lane heap,
// but the callback is guaranteed not to run, and lanes lazily sweep their
// dead slots once they outnumber live events. The zero value can be armed
// with StartTimer; AfterTimer allocates one on lane 0.
type Timer struct {
	eng     *Engine
	fn      func()
	lane    int32
	epoch   uint32
	stopped bool
	fired   bool
	pending bool
}

// Stop cancels the timer. Safe to call more than once and after firing.
func (t *Timer) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.pending && t.eng != nil && t.epoch == t.eng.epoch {
		t.eng.noteDead(int(t.lane))
	}
}

// Stopped reports whether Stop was called since the timer was last armed.
func (t *Timer) Stopped() bool { return t.stopped }

// Fired reports whether the callback ran since the timer was last armed.
func (t *Timer) Fired() bool { return t.fired }

// Pending reports whether the timer's slot is still in an event queue.
func (t *Timer) Pending() bool { return t.pending }

// StartTimer arms (or re-arms) t to fire fn on the given lane d nanoseconds
// from now, scheduled on behalf of lane src. A nil fn reuses the timer's
// previous callback. Re-arming a timer whose slot is still queued panics:
// stop it and wait for the slot to be swept or popped first (Pending
// reports this).
func (e *Engine) StartTimer(src, lane int, t *Timer, d Time, fn func()) {
	if t.pending && t.epoch == e.epoch {
		panic("sim: StartTimer on a timer whose slot is still queued")
	}
	t.eng = e
	t.lane = int32(lane)
	t.epoch = e.epoch
	t.stopped = false
	t.fired = false
	t.pending = true
	if fn != nil {
		t.fn = fn
	}
	now := e.now
	if e.inPar {
		now = e.lanes[src].now
	}
	e.post(src, lane, now+d, kindTimer, nil, t)
}

// AfterTimer schedules fire to run d nanoseconds from now on lane 0 unless
// the returned Timer is stopped first.
func (e *Engine) AfterTimer(d Time, fire func()) *Timer {
	t := &Timer{}
	e.StartTimer(0, 0, t, d, fire)
	return t
}

// noteDead records one newly stopped pending timer slot on lane l and
// sweeps the lane once dead slots exceed half its queue.
func (e *Engine) noteDead(l int) {
	ln := &e.lanes[l]
	ln.dead++
	if ln.dead*2 > len(ln.heap) {
		e.sweepLane(l)
	}
}

// sweepLane removes stopped timer slots from lane l's heap and re-heapifies.
func (e *Engine) sweepLane(l int) {
	ln := &e.lanes[l]
	kept := ln.heap[:0]
	for i := range ln.heap {
		ev := ln.heap[i]
		if ev.kind == kindTimer {
			if t := ev.arg.(*Timer); t.stopped {
				t.pending = false
				continue
			}
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(ln.heap); i++ {
		ln.heap[i] = event{}
	}
	ln.heap = kept
	ln.dead = 0
	ln.heapify()
	if !e.inPar {
		e.orderFixLane(l)
	}
}

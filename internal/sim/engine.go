// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of events ordered by virtual time
// with a monotonically increasing sequence number as a tie-breaker, so two
// runs over the same inputs produce identical event orderings. Virtual time
// is expressed in nanoseconds (Time).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fire func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine.
type Engine struct {
	heap    eventHeap
	seq     uint64
	now     Time
	stopped bool
	fired   uint64
	limit   uint64 // optional safety limit on fired events; 0 = unlimited
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time: the timestamp of the event being
// fired, or of the last fired event when called between Run calls.
func (e *Engine) Now() Time { return e.now }

// Fired reports the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// SetEventLimit installs a safety limit: Run returns an error after firing
// n events. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule enqueues fire to run at virtual time at. Scheduling in the past
// (at < Now) is clamped to Now, preserving causality.
func (e *Engine) Schedule(at Time, fire func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, fire: fire})
}

// After enqueues fire to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fire func()) { e.Schedule(e.now+d, fire) }

// Stop makes the current Run return after the in-flight event completes.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Run fires events in (time, seq) order until the queue is empty, Stop is
// called, or the event limit is exceeded. It returns the number of events
// fired during this call and an error if the limit tripped.
func (e *Engine) Run() (uint64, error) {
	return e.RunUntil(-1)
}

// RunUntil is Run bounded by virtual time: events with timestamp > deadline
// stay queued. A negative deadline means no bound.
func (e *Engine) RunUntil(deadline Time) (uint64, error) {
	e.stopped = false
	var n uint64
	for {
		ev, ok := e.heap.peek()
		if !ok || e.stopped {
			return n, nil
		}
		if deadline >= 0 && ev.at > deadline {
			e.now = deadline
			return n, nil
		}
		heap.Pop(&e.heap)
		e.now = ev.at
		ev.fire()
		n++
		e.fired++
		if e.limit != 0 && e.fired > e.limit {
			return n, fmt.Errorf("sim: event limit %d exceeded at t=%v", e.limit, e.now)
		}
	}
}

// Drain discards all pending events without firing them.
func (e *Engine) Drain() {
	e.heap = e.heap[:0]
}

// Timer is a cancelable scheduled callback, used for timeouts that are
// usually canceled before they fire (e.g. retransmission timers). Stopping a
// timer does not remove its slot from the event heap — the slot fires as a
// no-op at its scheduled time — but the callback is guaranteed not to run.
type Timer struct {
	stopped bool
	fired   bool
}

// Stop cancels the timer. Safe to call more than once and after firing.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether Stop was called before the timer fired.
func (t *Timer) Stopped() bool { return t.stopped }

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// AfterTimer schedules fire to run d nanoseconds from now unless the
// returned Timer is stopped first.
func (e *Engine) AfterTimer(d Time, fire func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fire()
	})
	return t
}

package sim

import (
	"reflect"
	"testing"
)

// logSaver rolls per-lane external state (append-only logs) back with the
// engine: the canonical LaneSaver shape — capture a high-water mark, restore
// truncates to it.
type logSaver struct{ logs [][]Time }

func (s *logSaver) Capture(lane int) any { return len(s.logs[lane]) }
func (s *logSaver) Restore(lane int, snap any) {
	s.logs[lane] = s.logs[lane][:snap.(int)]
}

// fireSaver additionally rolls back a per-lane scalar counter.
type fireSaver struct {
	logs  [][]Time
	fires []int
}

type fireSnap struct {
	logLen int
	fires  int
}

func (s *fireSaver) Capture(lane int) any {
	return fireSnap{logLen: len(s.logs[lane]), fires: s.fires[lane]}
}

func (s *fireSaver) Restore(lane int, snap any) {
	fs := snap.(fireSnap)
	s.logs[lane] = s.logs[lane][:fs.logLen]
	s.fires[lane] = fs.fires
}

// TestRunOptimisticMatchesRun drives the chatty cascade of
// TestRunParallelMatchesRun under the optimistic runner with a wide window,
// forcing speculative windows to be rolled back by cross-lane stragglers,
// and requires results identical to a sequential Run.
func TestRunOptimisticMatchesRun(t *testing.T) {
	const lanes = 8
	const lookahead = Time(50)

	runOne := func(opt bool) ([][]Time, uint64, Time, OptStats) {
		e := NewEngine()
		e.SetLanes(lanes)
		logs := make([][]Time, lanes)
		parallelWorkload(e, lanes, lookahead, logs)
		var n uint64
		var err error
		var st OptStats
		if opt {
			sv := &logSaver{logs: logs}
			n, err = e.RunOptimistic(4, OptimisticConfig{
				Lookahead: lookahead,
				Window:    lookahead * 16,
				Saver:     sv,
			})
			logs = sv.logs
			st = e.OptimisticStats()
		} else {
			n, err = e.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		last := Time(0)
		for l := 0; l < lanes; l++ {
			if ln := e.LaneNow(l); ln > last {
				last = ln
			}
		}
		return logs, n, last, st
	}

	seqLogs, seqN, seqLast, _ := runOne(false)
	optLogs, optN, optLast, st := runOne(true)
	if seqN != optN {
		t.Fatalf("event counts differ: sequential %d, optimistic %d", seqN, optN)
	}
	if seqLast != optLast {
		t.Fatalf("final clocks differ: sequential %v, optimistic %v", seqLast, optLast)
	}
	if !reflect.DeepEqual(seqLogs, optLogs) {
		t.Fatalf("per-lane firing logs differ:\nsequential %v\noptimistic %v", seqLogs, optLogs)
	}
	if st.Rollbacks == 0 {
		t.Fatalf("chatty workload never rolled back a speculative window: %+v", st)
	}
}

// TestRunOptimisticSpeculationCommits runs a lane-local workload (no
// cross-lane traffic at all): every speculative window must commit, the
// adaptive width must stay wide, and far fewer windows must run than the
// conservative runner's makespan/lookahead.
func TestRunOptimisticSpeculationCommits(t *testing.T) {
	const lanes = 6
	const lookahead = Time(50)

	build := func(e *Engine, logs [][]Time) {
		for l := 0; l < lanes; l++ {
			l := l
			var step func(v int)
			step = func(v int) {
				logs[l] = append(logs[l], e.LaneNow(l))
				if v >= 400 {
					return
				}
				e.ScheduleFuncOn(l, l, e.LaneNow(l)+Time(17+v%23), func() { step(v + 1) })
			}
			e.ScheduleFuncOn(l, l, Time(l+1), func() { step(0) })
		}
	}

	seqE := NewEngine()
	seqE.SetLanes(lanes)
	seqLogs := make([][]Time, lanes)
	build(seqE, seqLogs)
	seqN, err := seqE.Run()
	if err != nil {
		t.Fatal(err)
	}

	optE := NewEngine()
	optE.SetLanes(lanes)
	optLogs := make([][]Time, lanes)
	build(optE, optLogs)
	optN, err := optE.RunOptimistic(4, OptimisticConfig{
		Lookahead: lookahead,
		Window:    lookahead * 16,
		Saver:     &logSaver{logs: optLogs},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := optE.OptimisticStats()
	if optN != seqN {
		t.Fatalf("event counts differ: sequential %d, optimistic %d", seqN, optN)
	}
	if !reflect.DeepEqual(seqLogs, optLogs) {
		t.Fatalf("per-lane logs differ")
	}
	if st.Rollbacks != 0 {
		t.Fatalf("lane-local workload rolled back: %+v", st)
	}
	if st.Speculative == 0 {
		t.Fatalf("lane-local workload never speculated: %+v", st)
	}
	// Makespan ≈ 400 steps × ~28ns ≈ 11µs; conservative would need
	// makespan/lookahead ≈ 220 windows. Speculation must beat that by a wide
	// margin once the window has grown.
	if st.Windows > 120 {
		t.Fatalf("speculation did not widen windows: %d windows (%+v)", st.Windows, st)
	}
}

// TestRunOptimisticTimerRollback arms, fires, stops and re-arms timers on
// either side of speculative horizons while cross-lane stragglers force
// rollbacks, and requires timer behaviour identical to a sequential run.
func TestRunOptimisticTimerRollback(t *testing.T) {
	const lanes = 4
	const lookahead = Time(40)

	build := func(e *Engine, logs [][]Time, timers []Timer, fires []int) {
		for l := 0; l < lanes; l++ {
			l := l
			var arm func(v int)
			arm = func(v int) {
				e.StartTimer(l, l, &timers[l], Time(9+v%31), func() {
					fires[l]++
					logs[l] = append(logs[l], e.LaneNow(l))
					if v >= 120 {
						return
					}
					if v%7 == 3 {
						// Poke a neighbour at the minimum legal distance: a
						// straggler inside any wide speculative window.
						dst := (l + 1) % lanes
						e.ScheduleFuncOn(l, dst, e.LaneNow(l)+lookahead, func() {
							logs[dst] = append(logs[dst], -e.LaneNow(dst))
						})
					}
					arm(v + 1)
				})
			}
			e.ScheduleFuncOn(l, l, Time(l*3+1), func() { arm(l) })
		}
	}

	run := func(opt bool) ([][]Time, []int, uint64) {
		e := NewEngine()
		e.SetLanes(lanes)
		logs := make([][]Time, lanes)
		timers := make([]Timer, lanes)
		fires := make([]int, lanes)
		build(e, logs, timers, fires)
		var n uint64
		var err error
		if opt {
			n, err = e.RunOptimistic(3, OptimisticConfig{
				Lookahead: lookahead,
				Window:    lookahead * 8,
				Saver:     &fireSaver{logs: logs, fires: fires},
			})
		} else {
			n, err = e.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		return logs, fires, n
	}

	seqLogs, seqFires, seqN := run(false)
	optLogs, optFires, optN := run(true)
	if seqN != optN {
		t.Fatalf("event counts differ: %d vs %d", seqN, optN)
	}
	if !reflect.DeepEqual(seqFires, optFires) {
		t.Fatalf("timer fire counts differ: %v vs %v", seqFires, optFires)
	}
	if !reflect.DeepEqual(seqLogs, optLogs) {
		t.Fatalf("logs differ:\nsequential %v\noptimistic %v", seqLogs, optLogs)
	}
}

// TestRunOptimisticFences checks the serial fences: fence-lane events fire
// one at a time, a Fence() time bounds every window, and SerialNow forces
// serial stepping — with results identical to a sequential run.
func TestRunOptimisticFences(t *testing.T) {
	const lanes = 5
	const lookahead = Time(50)

	build := func(e *Engine, logs [][]Time) {
		parallelWorkload(e, lanes, lookahead, logs)
		// Host-lane (lane 0) interventions that must run serially.
		for i := 1; i <= 3; i++ {
			at := Time(i * 100)
			e.ScheduleFuncOn(0, 0, at, func() {
				logs[0] = append(logs[0], at)
			})
		}
	}

	run := func(opt bool) ([][]Time, uint64, OptStats) {
		e := NewEngine()
		e.SetLanes(lanes)
		logs := make([][]Time, lanes)
		build(e, logs)
		var n uint64
		var err error
		var st OptStats
		if opt {
			sv := &logSaver{logs: logs}
			n, err = e.RunOptimistic(4, OptimisticConfig{
				Lookahead:  lookahead,
				Window:     lookahead * 16,
				Saver:      sv,
				FenceLanes: []int{0},
			})
			logs = sv.logs
			st = e.OptimisticStats()
		} else {
			n, err = e.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		return logs, n, st
	}

	seqLogs, seqN, _ := run(false)
	optLogs, optN, st := run(true)
	if seqN != optN {
		t.Fatalf("event counts differ: %d vs %d", seqN, optN)
	}
	if !reflect.DeepEqual(seqLogs, optLogs) {
		t.Fatalf("logs differ:\nsequential %v\noptimistic %v", seqLogs, optLogs)
	}
	if st.SerialSteps < 3 {
		t.Fatalf("fence-lane events were not serial-stepped: %+v", st)
	}
}

// Package fault is the deterministic, seed-driven fault-injection subsystem
// of the simulated multicomputer. It models the two failure classes a stock
// multicomputer's software layer must absorb once the interconnect is no
// longer assumed perfect:
//
//   - link faults: per-link message drop, duplication, and extra latency
//     jitter, applied per transmission attempt;
//   - node faults: a node pausing (no instruction executes) for a window of
//     virtual time, then resuming with its receive buffers intact;
//   - node crashes: a node failing at a point in virtual time, losing all
//     volatile state, and restarting later from its latest checkpoint
//     (executed by package checkpoint; declared and validated here).
//
// A Plan is a declarative description of the faults to inject; an Injector
// is a Plan bound to a seed and node count, implementing machine.FaultModel.
// All randomness is drawn from per-link xorshift streams derived from the
// seed, so the same (plan, seed) pair yields bit-identical fault schedules
// across runs regardless of how other links behave — the property the
// determinism tests and reproducible failure scenarios rely on.
package fault

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// Wildcard matches any node in a LinkFault endpoint.
const Wildcard = -1

// LinkFault describes the fault behaviour of one link (or a set of links
// when an endpoint is Wildcard). The first rule matching (src, dst) wins;
// list specific links before wildcard rules.
type LinkFault struct {
	// Src and Dst select the link; Wildcard (-1) matches any node.
	Src, Dst int
	// Drop is the per-transmission-attempt probability of losing the packet.
	Drop float64
	// Dup is the per-attempt probability of delivering one extra copy.
	Dup float64
	// Jitter is the maximum extra delivery latency; each delivered copy is
	// delayed by a uniform draw from [0, Jitter].
	Jitter sim.Time
}

// Matches reports whether the rule covers the (src, dst) link.
func (lf LinkFault) Matches(src, dst int) bool {
	return (lf.Src == Wildcard || lf.Src == src) &&
		(lf.Dst == Wildcard || lf.Dst == dst)
}

// NodePause stops a node for a window of virtual time: no turn of its
// scheduler runs in [At, At+For). Packets keep arriving and buffer in the
// node's receive queue; execution resumes at the window's end.
type NodePause struct {
	Node int
	At   sim.Time
	For  sim.Time
}

// NodeCrash fails a node at virtual time At, discarding all of its volatile
// state — receive buffers, scheduling queues, object state, reliable-layer
// windows — unlike a NodePause, which preserves everything. Packets addressed
// to the node while it is down are lost at its message controller. The node
// restarts RestartAfter later from its most recent checkpoint (see package
// checkpoint); a crash plan therefore requires checkpointing to be enabled.
type NodeCrash struct {
	Node         int
	At           sim.Time
	RestartAfter sim.Time
}

// Plan is a declarative fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed overrides the fault stream seed; 0 derives it from the system
	// seed so a run is reproducible from a single logged value.
	Seed int64
	// Links are first-match-wins link fault rules.
	Links []LinkFault
	// Pauses are node pause windows.
	Pauses []NodePause
	// Crashes are node crash/restart events (state-losing, unlike Pauses).
	Crashes []NodeCrash
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return len(p.Links) > 0 || len(p.Pauses) > 0 || len(p.Crashes) > 0
}

// UniformLinks returns a plan that applies drop/dup/jitter uniformly to
// every link.
func UniformLinks(drop, dup float64, jitter sim.Time) Plan {
	return Plan{Links: []LinkFault{{Src: Wildcard, Dst: Wildcard, Drop: drop, Dup: dup, Jitter: jitter}}}
}

// WithPause returns a copy of the plan with an extra node pause window.
func (p Plan) WithPause(node int, at, dur sim.Time) Plan {
	cp := p
	cp.Pauses = append(append([]NodePause(nil), p.Pauses...), NodePause{Node: node, At: at, For: dur})
	return cp
}

// WithCrash returns a copy of the plan with an extra node crash at `at`,
// restarting `restartAfter` later.
func (p Plan) WithCrash(node int, at, restartAfter sim.Time) Plan {
	cp := p
	cp.Crashes = append(append([]NodeCrash(nil), p.Crashes...),
		NodeCrash{Node: node, At: at, RestartAfter: restartAfter})
	return cp
}

// window is one outage interval [start, end) on a node, used by Validate to
// reject overlapping pause/crash schedules, which have no well-defined
// semantics (is the node paused or dead?).
type window struct {
	start, end sim.Time
	what       string
	idx        int
}

// Validate checks probabilities, windows and node references against the
// machine size, and rejects overlapping pause/crash windows on the same
// node.
func (p Plan) Validate(nodes int) error {
	for i, lf := range p.Links {
		if lf.Drop < 0 || lf.Drop > 1 || lf.Dup < 0 || lf.Dup > 1 {
			return fmt.Errorf("fault: link rule %d: probabilities must be in [0,1] (drop=%g dup=%g)", i, lf.Drop, lf.Dup)
		}
		if lf.Drop == 1 {
			return fmt.Errorf("fault: link rule %d: drop probability 1 makes delivery impossible", i)
		}
		if lf.Jitter < 0 {
			return fmt.Errorf("fault: link rule %d: negative jitter %v", i, lf.Jitter)
		}
		for _, end := range [2]int{lf.Src, lf.Dst} {
			if end != Wildcard && (end < 0 || end >= nodes) {
				return fmt.Errorf("fault: link rule %d: node %d out of range [0,%d)", i, end, nodes)
			}
		}
	}
	windows := make(map[int][]window)
	for i, np := range p.Pauses {
		if np.Node < 0 || np.Node >= nodes {
			return fmt.Errorf("fault: pause %d: node %d out of range [0,%d)", i, np.Node, nodes)
		}
		if np.At < 0 || np.For <= 0 {
			return fmt.Errorf("fault: pause %d: window [%v, +%v) invalid (start must be >= 0, duration > 0)", i, np.At, np.For)
		}
		windows[np.Node] = append(windows[np.Node], window{np.At, np.At + np.For, "pause", i})
	}
	for i, nc := range p.Crashes {
		if nc.Node < 0 || nc.Node >= nodes {
			return fmt.Errorf("fault: crash %d: node %d out of range [0,%d)", i, nc.Node, nodes)
		}
		if nc.At < 0 || nc.RestartAfter <= 0 {
			return fmt.Errorf("fault: crash %d: outage [%v, +%v) invalid (start must be >= 0, restart-after > 0)", i, nc.At, nc.RestartAfter)
		}
		windows[nc.Node] = append(windows[nc.Node], window{nc.At, nc.At + nc.RestartAfter, "crash", i})
	}
	for node := 0; node < nodes; node++ {
		ws := windows[node]
		for i := 1; i < len(ws); i++ { // insertion sort by start: windows per node are few
			for j := i; j > 0 && ws[j].start < ws[j-1].start; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
		for i := 1; i < len(ws); i++ {
			if ws[i].start < ws[i-1].end {
				return fmt.Errorf("fault: node %d: %s %d [%v, %v) overlaps %s %d [%v, %v)",
					node, ws[i].what, ws[i].idx, ws[i].start, ws[i].end,
					ws[i-1].what, ws[i-1].idx, ws[i-1].start, ws[i-1].end)
			}
		}
	}
	return nil
}

// linkState is the per-link fault stream: the matched rule plus a private
// xorshift generator, so decisions on one link never perturb another.
type linkState struct {
	rule *LinkFault // nil: the link is fault-free
	rng  uint64
}

func (ls *linkState) next() uint64 {
	x := ls.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ls.rng = x
	return x
}

// unit returns a uniform draw from [0, 1).
func (ls *linkState) unit() float64 {
	return float64(ls.next()>>11) / float64(1<<53)
}

// Injector binds a Plan to a seed and node count. It implements
// machine.FaultModel and keeps whole-run fault totals for reports.
type Injector struct {
	plan  Plan
	seed  int64
	nodes int
	links []linkState // dense nodes×nodes table, lazily seeded

	// pauses[node] holds that node's windows sorted by start time.
	pauses [][]NodePause

	// Whole-run totals (the per-node attribution lives in stats.Counters via
	// the machine's FaultSink). Atomic: under the parallel executor Link runs
	// on the sending node's lane and PausedUntil on the paused node's lane,
	// so different lanes bump these concurrently. The per-link rng state
	// needs no such care — entry (src,dst) is only ever touched from src's
	// lane.
	drops     atomic.Uint64
	dups      atomic.Uint64
	pauseHits atomic.Uint64

	// Optimistic mode: rollback-able per-lane tallies replace the atomics
	// (see optimistic.go).
	opt     bool
	tallies []laneTally
}

// Drops returns the whole-run count of dropped transmission attempts.
func (in *Injector) Drops() uint64 {
	if in.opt {
		var t uint64
		for i := range in.tallies {
			t += in.tallies[i].drops
		}
		return t
	}
	return in.drops.Load()
}

// Dups returns the whole-run count of duplicated deliveries.
func (in *Injector) Dups() uint64 {
	if in.opt {
		var t uint64
		for i := range in.tallies {
			t += in.tallies[i].dups
		}
		return t
	}
	return in.dups.Load()
}

// Pauses returns the whole-run count of pause-window hits.
func (in *Injector) Pauses() uint64 {
	if in.opt {
		var t uint64
		for i := range in.tallies {
			t += in.tallies[i].pauseHits
		}
		return t
	}
	return in.pauseHits.Load()
}

// NewInjector validates plan against the node count and builds the injector.
// When plan.Seed is zero the fault streams derive from seed (the system
// seed), so logging one value suffices to reproduce a faulty run.
func NewInjector(plan Plan, seed int64, nodes int) (*Injector, error) {
	if err := plan.Validate(nodes); err != nil {
		return nil, err
	}
	if plan.Seed != 0 {
		seed = plan.Seed
	}
	in := &Injector{
		plan:   plan,
		seed:   seed,
		nodes:  nodes,
		links:  make([]linkState, nodes*nodes),
		pauses: make([][]NodePause, nodes),
	}
	for _, np := range plan.Pauses {
		in.pauses[np.Node] = append(in.pauses[np.Node], np)
	}
	for _, ws := range in.pauses {
		// Insertion sort by start time: windows per node are few.
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && ws[j].At < ws[j-1].At; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
	}
	return in, nil
}

// Seed returns the effective fault stream seed.
func (in *Injector) Seed() int64 { return in.seed }

// Plan returns the bound plan.
func (in *Injector) Plan() Plan { return in.plan }

// link returns the (lazily seeded) stream for src→dst.
func (in *Injector) link(src, dst int) *linkState {
	ls := &in.links[src*in.nodes+dst]
	if ls.rng == 0 {
		// splitmix-style seeding keyed by (seed, src, dst); the +1 keeps the
		// xorshift state nonzero even for adversarial seeds.
		z := uint64(in.seed)*0x9e3779b97f4a7c15 + uint64(src)*0xbf58476d1ce4e5b9 + uint64(dst)*0x94d049bb133111eb + 1
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		if z == 0 {
			z = 1
		}
		ls.rng = z
		for i := range in.plan.Links {
			if in.plan.Links[i].Matches(src, dst) {
				ls.rule = &in.plan.Links[i]
				break
			}
		}
	}
	return ls
}

// clean is the fault-free outcome, shared to keep unaffected links
// allocation-free.
var clean = []sim.Time{0}

// Link implements machine.FaultModel: decide the fate of one transmission
// attempt. Local (src == dst) traffic never traverses a link and is exempt.
func (in *Injector) Link(src, dst int, at sim.Time, size int) []sim.Time {
	if src == dst {
		return clean
	}
	ls := in.link(src, dst)
	r := ls.rule
	if r == nil {
		return clean
	}
	// Draw in a fixed order (drop, jitter, dup, dup-jitter) so the stream
	// consumption per attempt is schedule-independent.
	if r.Drop > 0 && ls.unit() < r.Drop {
		if in.opt {
			in.tallies[src].drops++
		} else {
			in.drops.Add(1)
		}
		return nil
	}
	jitter := func() sim.Time {
		if r.Jitter <= 0 {
			return 0
		}
		return sim.Time(ls.next() % uint64(r.Jitter+1))
	}
	out := []sim.Time{jitter()}
	if r.Dup > 0 && ls.unit() < r.Dup {
		if in.opt {
			in.tallies[src].dups++
		} else {
			in.dups.Add(1)
		}
		out = append(out, jitter())
	}
	return out
}

// PausedUntil implements machine.FaultModel: the end of the pause window
// containing at, or at itself when the node is running.
func (in *Injector) PausedUntil(node int, at sim.Time) sim.Time {
	for _, w := range in.pauses[node] {
		if w.At > at {
			break
		}
		if end := w.At + w.For; at < end {
			if in.opt {
				in.tallies[node].pauseHits++
			} else {
				in.pauseHits.Add(1)
			}
			return end
		}
	}
	return at
}

// String summarizes the plan for logs.
func (in *Injector) String() string {
	return fmt.Sprintf("fault{seed=%d links=%d pauses=%d crashes=%d}",
		in.seed, len(in.plan.Links), len(in.plan.Pauses), len(in.plan.Crashes))
}

package fault

// Optimistic-execution support. Speculative events that roll back must not
// leave a trace in the fault subsystem, which has two kinds of mutable
// state: the whole-run tally counters and the per-link random streams.
//
//   - Tallies: the atomic counters cannot be rolled back per lane, so
//     optimistic mode switches to per-lane tallies (entry src owns the
//     counts its lane generated) that a lane snapshot captures and restores;
//     the accessors sum them, which is only safe once the run has finished
//     (reports) or between windows.
//
//   - Streams: entry (src, dst) is only ever advanced from src's lane, so
//     node src's snapshot owns its outgoing rng row. Without the restore, a
//     rolled-back transmission attempt would consume stream draws twice and
//     the replay would see different fault decisions than a sequential run.

// laneTally is one lane's fault counts, padded to a cache line so
// neighbouring lanes do not share one.
type laneTally struct {
	drops     uint64
	dups      uint64
	pauseHits uint64
	_         [5]uint64
}

// SetOptimistic switches the injector to per-lane tallies. Call before the
// run starts.
func (in *Injector) SetOptimistic() {
	in.opt = true
	in.tallies = make([]laneTally, in.nodes)
}

// NodeSnap is the per-node rollback snapshot: the node's tally and its
// outgoing rng row.
type NodeSnap struct {
	tally laneTally
	rng   []uint64
}

// OptCaptureNode snapshots node's fault state for a speculative window.
// Runs on the worker goroutine that owns the node's lane.
func (in *Injector) OptCaptureNode(node int) *NodeSnap {
	s := &NodeSnap{tally: in.tallies[node], rng: make([]uint64, in.nodes)}
	row := in.links[node*in.nodes : (node+1)*in.nodes]
	for d := range row {
		s.rng[d] = row[d].rng
	}
	return s
}

// OptRestoreNode rolls node's fault state back to its snapshot. A stream
// that was lazily seeded after the capture returns to zero and reseeds
// identically on next use.
func (in *Injector) OptRestoreNode(node int, s *NodeSnap) {
	in.tallies[node] = s.tally
	row := in.links[node*in.nodes : (node+1)*in.nodes]
	for d := range row {
		row[d].rng = s.rng[d]
	}
}

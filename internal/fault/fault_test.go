package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"uniform", UniformLinks(0.1, 0.05, 2000), true},
		{"drop out of range", Plan{Links: []LinkFault{{Src: Wildcard, Dst: Wildcard, Drop: 1.5}}}, false},
		{"drop one", Plan{Links: []LinkFault{{Src: Wildcard, Dst: Wildcard, Drop: 1}}}, false},
		{"negative jitter", Plan{Links: []LinkFault{{Src: Wildcard, Dst: Wildcard, Jitter: -1}}}, false},
		{"bad node", Plan{Links: []LinkFault{{Src: 9, Dst: Wildcard}}}, false},
		{"pause bad node", Plan{}.WithPause(9, 0, 100), false},
		{"pause zero width", Plan{Pauses: []NodePause{{Node: 0, At: 0, For: 0}}}, false},
		{"pause ok", Plan{}.WithPause(1, 1000, 500), true},
	}
	for _, c := range cases {
		err := c.plan.Validate(4)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLinkDeterminism(t *testing.T) {
	// The same (plan, seed) must yield an identical decision stream, and the
	// stream of one link must not depend on traffic on other links.
	plan := UniformLinks(0.2, 0.1, 5000)
	a, err := NewInjector(plan, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	// a: interleave traffic on two links; b: query them separately.
	var aSeq, bSeq [][]sim.Time
	for i := 0; i < 200; i++ {
		aSeq = append(aSeq, a.Link(0, 1, 0, 32))
		a.Link(2, 3, 0, 32) // unrelated traffic
	}
	for i := 0; i < 200; i++ {
		bSeq = append(bSeq, b.Link(0, 1, 0, 32))
	}
	for i := range aSeq {
		if len(aSeq[i]) != len(bSeq[i]) {
			t.Fatalf("decision %d differs: %v vs %v", i, aSeq[i], bSeq[i])
		}
		for j := range aSeq[i] {
			if aSeq[i][j] != bSeq[i][j] {
				t.Fatalf("decision %d jitter differs: %v vs %v", i, aSeq[i], bSeq[i])
			}
		}
	}
}

func TestLinkRates(t *testing.T) {
	in, err := NewInjector(UniformLinks(0.25, 0.25, 0), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var drops, dups int
	for i := 0; i < n; i++ {
		out := in.Link(0, 1, 0, 16)
		switch len(out) {
		case 0:
			drops++
		case 2:
			dups++
		}
	}
	if f := float64(drops) / n; f < 0.22 || f > 0.28 {
		t.Errorf("drop rate %f, want ~0.25", f)
	}
	// Duplication only applies to non-dropped attempts: ~0.25 * 0.75.
	if f := float64(dups) / n; f < 0.16 || f > 0.22 {
		t.Errorf("dup rate %f, want ~0.19", f)
	}
	if in.Drops() != uint64(drops) || in.Dups() != uint64(dups) {
		t.Errorf("injector totals drift: %d/%d vs %d/%d", in.Drops(), in.Dups(), drops, dups)
	}
}

func TestLocalTrafficExempt(t *testing.T) {
	in, err := NewInjector(UniformLinks(0.99, 0.99, 1000), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out := in.Link(1, 1, 0, 16)
		if len(out) != 1 || out[0] != 0 {
			t.Fatalf("local delivery must be exempt, got %v", out)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	plan := Plan{Links: []LinkFault{
		{Src: 0, Dst: 1, Drop: 0},                              // specific link: clean
		{Src: Wildcard, Dst: Wildcard, Drop: 0.999999, Dup: 0}, // everything else drops
	}}
	in, err := NewInjector(plan, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if len(in.Link(0, 1, 0, 16)) != 1 {
			t.Fatal("specific clean rule must shadow the wildcard")
		}
	}
	var delivered int
	for i := 0; i < 50; i++ {
		delivered += len(in.Link(1, 0, 0, 16))
	}
	if delivered > 2 {
		t.Fatalf("wildcard drop rule barely applied: %d/50 delivered", delivered)
	}
}

func TestPausedUntil(t *testing.T) {
	plan := Plan{}.WithPause(1, 1000, 500).WithPause(1, 3000, 100)
	in, err := NewInjector(plan, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		node int
		at   sim.Time
		want sim.Time
	}{
		{0, 1200, 1200}, // other node unaffected
		{1, 500, 500},   // before the window
		{1, 1000, 1500}, // window start
		{1, 1499, 1500}, // inside
		{1, 1500, 1500}, // window end: running
		{1, 3050, 3100}, // second window
		{1, 9999, 9999}, // after everything
	}
	for _, c := range cases {
		if got := in.PausedUntil(c.node, c.at); got != c.want {
			t.Errorf("PausedUntil(%d, %v) = %v, want %v", c.node, c.at, got, c.want)
		}
	}
}

func TestPlanSeedOverride(t *testing.T) {
	plan := UniformLinks(0.5, 0, 0)
	plan.Seed = 99
	in, err := NewInjector(plan, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 99 {
		t.Fatalf("plan seed must override system seed, got %d", in.Seed())
	}
	in2, err := NewInjector(UniformLinks(0.5, 0, 0), 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Seed() != 7 {
		t.Fatalf("zero plan seed must derive from system seed, got %d", in2.Seed())
	}
}

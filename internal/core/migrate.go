package core

// Forwarding support for object migration. The paper's uniform
// (processor, pointer) mail addresses mean an object cannot be moved
// without leaving something at the old address (Section 5.2 notes this
// restriction, and lists object migration among the category-4 remote
// services; moving locally-referenced objects is called out as in-progress
// work). The classic solution implemented here: migration installs a
// *forwarder* table at the old address whose every entry re-sends the
// message to the object's new home. Senders holding stale addresses keep
// working, one extra hop slower; the table pointer is, as always, where the
// mode lives — no per-send check is added for non-migrated objects.

// forwardEntry re-sends a frame to the object's new address.
func forwardEntry(n *NodeRT, obj *Object, f *Frame) {
	n.charge(n.cost.ForwardHop)
	n.C.Forwards++
	// The re-send copies the arguments into its own frame (or the remote
	// layer's wire record), so f — whose inline buffer may back f.Args —
	// is released only after the Send completes.
	n.Send(obj.forward, f.Pattern, f.Args, f.ReplyTo)
	n.releaseFrame(f)
}

// MigrationState is the transferable image of an object: its state box, or
// — for an object whose lazy initialization has not run yet — its pending
// constructor arguments.
type MigrationState struct {
	State    []Value
	CtorArgs []Value
	NeedInit bool
}

// SizeBytes reports the wire size of the image.
func (ms MigrationState) SizeBytes() int {
	n := 8
	n += ArgsSize(ms.State)
	n += ArgsSize(ms.CtorArgs)
	return n
}

// BeginMigration freezes a dormant object for transfer: its image is
// handed to the caller and the object temporarily behaves like an
// uninitialized chunk (all messages buffer) until CompleteMigration
// installs the forwarder. Only dormant objects with empty message queues
// migrate — the paper's single-thread-of-control makes any other moment
// unsafe.
func (r *Runtime) BeginMigration(n *NodeRT, obj *Object) MigrationState {
	if obj.node != n.id {
		panic("core: BeginMigration on wrong node")
	}
	if obj.class == nil || obj.rd != nil {
		panic("core: cannot migrate chunks or reply destinations")
	}
	if obj.running || obj.wait != nil || obj.inSchedQ || !obj.queue.empty() {
		panic("core: only quiescent dormant objects can migrate")
	}
	r.Freeze()
	ms := MigrationState{
		State:    obj.state,
		CtorArgs: obj.ctorArgs,
		NeedInit: obj.vftp == obj.class.initTable,
	}
	obj.vftp = r.faultVFT // buffer anything that arrives mid-transfer
	obj.state = nil
	obj.ctorArgs = nil
	return ms
}

// CompleteMigration points the old object at its new home and flushes any
// messages buffered during the transfer through the forwarder.
func (r *Runtime) CompleteMigration(n *NodeRT, obj *Object, to Address) {
	if obj.node != n.id {
		panic("core: CompleteMigration on wrong node")
	}
	if to.IsNil() || to.Obj == obj {
		panic("core: invalid migration target")
	}
	obj.forward = to
	obj.vftp = r.forwardVFT
	for f := obj.queue.pop(); f != nil; f = obj.queue.pop() {
		forwardEntry(n, obj, f)
	}
}

// AdoptMigratedState installs a transferred image into an object created at
// the migration target: either initialized state (dormant mode) or pending
// constructor arguments (need-init mode).
func (r *Runtime) AdoptMigratedState(n *NodeRT, obj *Object, cl *Class, ms MigrationState) {
	if obj.node != n.id {
		panic("core: AdoptMigratedState on wrong node")
	}
	if obj.class != cl {
		panic("core: migrated state for a different class")
	}
	if ms.NeedInit {
		obj.ctorArgs = ms.CtorArgs
		obj.state = make([]Value, cl.StateSize)
		obj.vftp = cl.initTable
		return
	}
	// The image must be copied, not adopted by alias: with checkpointing on
	// the transfer record stays retained for possible replay after a crash,
	// and mutations through the live object must never reach back into it.
	// (CtorArgs above may alias — constructor arguments are read-only.)
	if ms.State != nil {
		st := n.allocState(len(ms.State))
		copy(st, ms.State)
		obj.state = st
	} else {
		obj.state = nil
	}
	obj.ctorArgs = nil
	obj.vftp = cl.dormant
}

// ForwardTarget returns the forwarding address of a migrated object (nil
// address when the object has not migrated).
func (o *Object) ForwardTarget() Address { return o.forward }

package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestMultiPatternWait exercises a protocol object waiting on several
// patterns at once and dispatching on whichever arrives first.
func TestMultiPatternWait(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	yes := r.Reg.Register("yes", 0)
	no := r.Reg.Register("no", 0)
	kick := r.Reg.Register("kick", 1)

	var got []string
	var wAddr Address
	w := r.DefineClass("w", 0, nil)
	w.Method(start, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {
			got = append(got, r.Reg.Name(f.Pattern))
			// Wait again for the other answer.
			ctx.WaitFor(func(ctx *Ctx, f *Frame) {
				got = append(got, r.Reg.Name(f.Pattern))
			}, yes, no)
		}, yes, no)
	})
	fd := r.DefineClass("fd", 0, nil)
	fd.Method(kick, func(ctx *Ctx) {
		if ctx.Arg(0).Int() == 0 {
			ctx.SendPast(wAddr, no)
		} else {
			ctx.SendPast(wAddr, yes)
		}
	})

	wAddr = r.NewObjectOn(0, w)
	f := r.NewObjectOn(0, fd)
	r.Inject(wAddr, start)
	r.Inject(f, kick, IntV(0))
	r.Inject(f, kick, IntV(1))
	run(t, r)

	if len(got) != 2 || got[0] != "no" || got[1] != "yes" {
		t.Fatalf("got %v, want [no yes]", got)
	}
}

// TestSequentialWaitProtocol drives a three-phase handshake through nested
// selective receptions.
func TestSequentialWaitProtocol(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	phase1 := r.Reg.Register("phase1", 1)
	phase2 := r.Reg.Register("phase2", 1)
	kick := r.Reg.Register("kick", 0)

	var sum int64
	var wAddr Address
	w := r.DefineClass("w", 0, nil)
	w.Method(start, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f1 *Frame) {
			ctx.WaitFor(func(ctx *Ctx, f2 *Frame) {
				sum = f1.Arg(0).Int() + f2.Arg(0).Int()
			}, phase2)
		}, phase1)
	})
	fd := r.DefineClass("fd", 0, nil)
	fd.Method(kick, func(ctx *Ctx) {
		// Out of order: phase2 first (buffers), then phase1 (restores; the
		// nested wait finds phase2 already queued — the fast path).
		ctx.SendPast(wAddr, phase2, IntV(2))
		ctx.SendPast(wAddr, phase1, IntV(1))
	})

	wAddr = r.NewObjectOn(0, w)
	f := r.NewObjectOn(0, fd)
	r.Inject(wAddr, start)
	r.Inject(f, kick)
	run(t, r)

	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
	c := r.TotalStats()
	if c.WaitFast != 1 || c.WaitBlocked != 1 {
		t.Errorf("wait fast/blocked = %d/%d, want 1/1", c.WaitFast, c.WaitBlocked)
	}
}

// TestRestoreDeferredByStackDepth drives the depth-preemption branch of the
// waiting-table restoration entry: the awaited message arrives while the
// stack is deep, so the restoration detours through the scheduling queue.
func TestRestoreDeferredByStackDepth(t *testing.T) {
	r := newTestRT(t, Options{MaxStackDepth: 4})
	start := r.Reg.Register("start", 0)
	data := r.Reg.Register("data", 1)
	chainP := r.Reg.Register("chain", 1)

	var got int64 = -1
	var wAddr Address
	w := r.DefineClass("w", 0, nil)
	w.Method(start, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) { got = f.Arg(0).Int() }, data)
	})
	// A chain of dormant objects that bottoms out by sending the awaited
	// data — at that point the stack is already at the bound.
	var chain *Class
	chain = r.DefineClass("chain", 0, nil)
	chain.Method(chainP, func(ctx *Ctx) {
		d := ctx.Arg(0).Int()
		if d == 0 {
			ctx.SendPast(wAddr, data, IntV(42))
			return
		}
		next := ctx.NewLocal(chain)
		ctx.SendPast(next, chainP, IntV(d-1))
	})

	wAddr = r.NewObjectOn(0, w)
	head := r.NewObjectOn(0, chain)
	r.Inject(wAddr, start)
	r.Inject(head, chainP, IntV(3))
	run(t, r)

	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

// TestReplyDeferredByStackDepth exercises the reply-destination resume
// detour through the scheduling queue when the stack is deep.
func TestReplyDeferredByStackDepth(t *testing.T) {
	r := newTestRT(t, Options{MaxStackDepth: 3})
	start := r.Reg.Register("start", 0)
	ask := r.Reg.Register("ask", 0)
	chainP := r.Reg.Register("chain", 1)

	var got int64 = -1
	var svcAddr, sAddr Address
	// svc replies via a dormant chain so the reply lands at high depth.
	var chain *Class
	chain = r.DefineClass("chain", 0, nil)
	chain.Method(chainP, func(ctx *Ctx) {
		d := ctx.Arg(0).Int()
		if d == 0 {
			// Reply on behalf of svc: the reply destination was forwarded.
			ctx.Reply(IntV(7))
			return
		}
		next := ctx.NewLocal(chain)
		ctx.SendWithReply(next, chainP, []Value{IntV(d - 1)}, ctx.ReplyTo())
	})
	svc := r.DefineClass("svc", 0, nil)
	svc.Method(ask, func(ctx *Ctx) {
		head := ctx.NewLocal(chain)
		ctx.SendWithReply(head, chainP, []Value{IntV(5)}, ctx.ReplyTo())
	})
	s := r.DefineClass("s", 0, nil)
	s.Method(start, func(ctx *Ctx) {
		ctx.SendNow(svcAddr, ask, nil, func(ctx *Ctx, v Value) { got = v.Int() })
	})

	svcAddr = r.NewObjectOn(0, svc)
	sAddr = r.NewObjectOn(0, s)
	r.Inject(sAddr, start)
	run(t, r)

	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	if c := r.TotalStats(); c.Preemptions == 0 {
		t.Error("expected depth preemptions in this configuration")
	}
}

func TestYieldChainFairness(t *testing.T) {
	// Two loopers yielding to each other must interleave via the scheduling
	// queue rather than one monopolizing the node.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 1)

	var order []int64
	looper := r.DefineClass("looper", 1, func(ic *InitCtx) { ic.SetState(0, ic.CtorArg(0)) })
	var loop func(ctx *Ctx, rounds int64)
	loop = func(ctx *Ctx, rounds int64) {
		order = append(order, ctx.State(0).Int())
		if rounds == 0 {
			return
		}
		ctx.Yield(func(ctx *Ctx) { loop(ctx, rounds-1) })
	}
	looper.Method(start, func(ctx *Ctx) { loop(ctx, ctx.Arg(0).Int()) })

	a := r.NewObjectOn(0, looper, IntV(1))
	b := r.NewObjectOn(0, looper, IntV(2))
	r.Inject(a, start, IntV(3))
	r.Inject(b, start, IntV(3))
	run(t, r)

	// Expect strict alternation 1,2,1,2,...
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	for i, v := range order {
		want := int64(1 + i%2)
		if v != want {
			t.Fatalf("no alternation: %v", order)
		}
	}
}

func TestCtxAccessors(t *testing.T) {
	m, err := machine.New(machine.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(m, Options{})
	probe := r.Reg.Register("probe", 2)
	checked := false
	cls := r.DefineClass("cls", 1, nil)
	cls.Method(probe, func(ctx *Ctx) {
		checked = true
		if ctx.NodeID() != 1 {
			t.Errorf("NodeID = %d, want 1", ctx.NodeID())
		}
		if ctx.Nodes() != 2 {
			t.Errorf("Nodes = %d, want 2", ctx.Nodes())
		}
		if ctx.Pattern() != probe {
			t.Errorf("Pattern = %v", ctx.Pattern())
		}
		if ctx.NumArgs() != 2 {
			t.Errorf("NumArgs = %d", ctx.NumArgs())
		}
		if ctx.Now() <= 0 {
			t.Error("Now must be positive after dispatch costs")
		}
		if ctx.Blocked() {
			t.Error("fresh ctx must not be blocked")
		}
		if ctx.Self().Node != 1 {
			t.Error("Self address node wrong")
		}
		if ctx.SelfObject().Class() != cls {
			t.Error("SelfObject class wrong")
		}
		if ctx.SelfObject().NodeID() != 1 {
			t.Error("object NodeID wrong")
		}
		if ctx.CurrentFrame().Pattern != probe {
			t.Error("CurrentFrame wrong")
		}
		if ctx.NodeRT().ID() != 1 {
			t.Error("NodeRT id wrong")
		}
	})
	o := r.NewObjectOn(1, cls)
	r.Inject(o, probe, IntV(1), IntV(2))
	run(t, r)
	if !checked {
		t.Fatal("probe never ran")
	}
}

func TestRuntimeAccessors(t *testing.T) {
	r := newTestRT(t, Options{Policy: PolicyNaive, MaxStackDepth: 7})
	if r.Policy() != PolicyNaive {
		t.Error("Policy accessor")
	}
	if r.MaxStackDepth() != 7 {
		t.Error("MaxStackDepth accessor")
	}
	if r.Frozen() {
		t.Error("fresh runtime must not be frozen")
	}
	r.Freeze()
	if !r.Frozen() || !r.Reg.Frozen() {
		t.Error("freeze must propagate")
	}
	if r.Nodes() != 1 {
		t.Error("Nodes accessor")
	}
	if _, ok := r.RemoteLayer().(defaultRemote); !ok {
		t.Error("default remote layer expected")
	}
	if PolicyStackBased.String() != "stack" || PolicyNaive.String() != "naive" {
		t.Error("policy names")
	}
}

func TestDefaultRemotePanicsOnRemoteSend(t *testing.T) {
	m, err := machine.New(machine.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(m, Options{})
	ping := r.Reg.Register("ping", 0)
	cls := r.DefineClass("cls", 0, nil)
	cls.Method(ping, func(ctx *Ctx) {})
	var target Address
	drv := r.DefineClass("drv", 0, nil)
	kick := r.Reg.Register("kick", 0)
	drv.Method(kick, func(ctx *Ctx) { ctx.SendPast(target, ping) })
	target = r.NewObjectOn(1, cls)
	d := r.NewObjectOn(0, drv)
	r.Inject(d, kick)
	defer func() {
		msg, _ := recover().(string)
		if !strings.Contains(msg, "no remote layer") {
			t.Fatalf("expected no-remote-layer panic, got %q", msg)
		}
	}()
	run(t, r)
}

func TestDefaultRemoteCreateIsLocal(t *testing.T) {
	r := newTestRT(t, Options{})
	kick := r.Reg.Register("kick", 0)
	nop := r.Reg.Register("nop", 0)
	leaf := r.DefineClass("leaf", 0, nil)
	leaf.Method(nop, func(ctx *Ctx) {})
	var created Address
	drv := r.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *Ctx) {
		ctx.Create(leaf, nil, func(ctx *Ctx, a Address) { created = a })
	})
	d := r.NewObjectOn(0, drv)
	r.Inject(d, kick)
	run(t, r)
	if created.IsNil() || created.Node != 0 {
		t.Fatalf("default create placed at %v, want local node 0", created)
	}
}

func TestInitChunkValidation(t *testing.T) {
	m, err := machine.New(machine.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(m, Options{})
	cls := r.DefineClass("cls", 0, nil)
	r.Freeze()

	chunk := r.NewFaultChunk(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("InitChunk on wrong node must panic")
			}
		}()
		r.InitChunk(r.NodeRT(0), chunk, cls, nil)
	}()
	r.InitChunk(r.NodeRT(1), chunk, cls, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double InitChunk must panic")
			}
		}()
		r.InitChunk(r.NodeRT(1), chunk, cls, nil)
	}()
}

func TestAddressStringAndHelpers(t *testing.T) {
	if !NilAddress.IsNil() {
		t.Error("NilAddress must be nil")
	}
	if got := NilAddress.String(); got != "addr(nil)" {
		t.Errorf("nil address renders %q", got)
	}
	r := newTestRT(t, Options{})
	cls := r.DefineClass("widget", 0, nil)
	a := r.NewObjectOn(0, cls)
	s := a.String()
	if !strings.Contains(s, "widget") || !strings.Contains(s, "n0") {
		t.Errorf("address string %q lacks class/node", s)
	}
	if a.Obj.IsReplyDest() {
		t.Error("plain object is not a reply destination")
	}
	if cls.Understands(NoPattern) {
		t.Error("NoPattern must never be understood")
	}
}

func TestClassUnderstands(t *testing.T) {
	r := newTestRT(t, Options{})
	a := r.Reg.Register("a", 0)
	b := r.Reg.Register("b", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(a, func(ctx *Ctx) {})
	if !cls.Understands(a) || cls.Understands(b) {
		t.Error("Understands before freeze")
	}
	r.Freeze()
	if !cls.Understands(a) || cls.Understands(b) {
		t.Error("Understands after freeze")
	}
	if cls.Understands(PatternID(99)) {
		t.Error("out of range must be false")
	}
}

func TestDuplicateMethodPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	a := r.Reg.Register("a", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(a, func(ctx *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate method must panic")
		}
	}()
	cls.Method(a, func(ctx *Ctx) {})
}

func TestNilMethodBodyPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	a := r.Reg.Register("a", 0)
	cls := r.DefineClass("c", 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nil body must panic")
		}
	}()
	cls.Method(a, nil)
}

func TestNegativeStateSizePanics(t *testing.T) {
	r := newTestRT(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative state size must panic")
		}
	}()
	r.DefineClass("c", -1, nil)
}

func TestInitCtxAccessors(t *testing.T) {
	r := newTestRT(t, Options{})
	m := r.Reg.Register("m", 0)
	var numArgs int
	var second Value
	cls := r.DefineClass("c", 2, func(ic *InitCtx) {
		numArgs = ic.NumCtorArgs()
		second = ic.CtorArg(1)
		ic.SetState(0, ic.CtorArg(0))
		ic.SetState(1, ic.State(0)) // read back through InitCtx
	})
	cls.Method(m, func(ctx *Ctx) {})
	o := r.NewObjectOn(0, cls, IntV(5), StrV("x"))
	r.Inject(o, m)
	run(t, r)
	if numArgs != 2 || second.Str() != "x" {
		t.Errorf("ctor args: n=%d second=%v", numArgs, second)
	}
	if o.Obj.State(1).Int() != 5 {
		t.Error("InitCtx.State read-back failed")
	}
	if !o.Obj.Class().Understands(m) {
		t.Error("class accessor")
	}
}

func TestWaitForEmptyPatternsPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(start, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {})
	})
	o := r.NewObjectOn(0, cls)
	r.Inject(o, start)
	defer func() {
		if recover() == nil {
			t.Fatal("WaitFor with no patterns must panic")
		}
	}()
	run(t, r)
}

func TestSendToNilAddressPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(start, func(ctx *Ctx) {
		ctx.SendPast(NilAddress, start)
	})
	o := r.NewObjectOn(0, cls)
	r.Inject(o, start)
	defer func() {
		if recover() == nil {
			t.Fatal("send to nil address must panic")
		}
	}()
	run(t, r)
}

func TestNaiveWithFaultChunk(t *testing.T) {
	// Under the naive policy, messages buffered into an uninitialized chunk
	// must still be processed after InitChunk.
	r := newTestRT(t, Options{Policy: PolicyNaive})
	m := r.Reg.Register("m", 1)
	var got []int64
	cls := r.DefineClass("late", 0, nil)
	cls.Method(m, func(ctx *Ctx) { got = append(got, ctx.Arg(0).Int()) })
	r.Freeze()

	chunk := r.NewFaultChunk(0)
	n := r.NodeRT(0)
	n.DeliverFrame(chunk, &Frame{Pattern: m, Args: []Value{IntV(1)}}, true)
	n.DeliverFrame(chunk, &Frame{Pattern: m, Args: []Value{IntV(2)}}, true)
	r.InitChunk(n, chunk, cls, nil)
	run(t, r)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestModeObservations(t *testing.T) {
	r := newTestRT(t, Options{})
	m := r.Reg.Register("m", 0)
	withInit := r.DefineClass("wi", 1, func(ic *InitCtx) { ic.SetState(0, IntV(0)) })
	withInit.Method(m, func(ctx *Ctx) {})
	noInit := r.DefineClass("ni", 0, nil)
	noInit.Method(m, func(ctx *Ctx) {})

	// Pre-freeze objects report their initial mode without tables.
	a := r.NewObjectOn(0, withInit)
	b := r.NewObjectOn(0, noInit)
	if a.Obj.Mode() != ModeNeedInit || b.Obj.Mode() != ModeDormant {
		t.Fatalf("pre-freeze modes: %v %v", a.Obj.Mode(), b.Obj.Mode())
	}
	r.Freeze()
	chunk := r.NewFaultChunk(0)
	if chunk.Mode() != ModeUninit {
		t.Fatal("chunk mode")
	}
	r.Inject(a, m)
	run(t, r)
	if a.Obj.Mode() != ModeDormant {
		t.Fatalf("post-run mode %v, want dormant", a.Obj.Mode())
	}
	// Mode string rendering.
	for mode, want := range map[Mode]string{
		ModeDormant: "dormant", ModeActive: "active", ModeWaiting: "waiting",
		ModeUninit: "uninit", ModeNeedInit: "needinit",
	} {
		if mode.String() != want {
			t.Errorf("mode %d renders %q", mode, mode.String())
		}
	}
}

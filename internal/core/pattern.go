package core

import "fmt"

// PatternID identifies a message pattern. Per Section 2.4, a pattern is the
// combination of message keywords and argument types, and "at compile time,
// a unique number is assigned to each message pattern"; PatternID is that
// number. It indexes virtual function tables directly.
type PatternID int

// NoPattern is the invalid pattern.
const NoPattern PatternID = -1

// Registry assigns unique numbers to message patterns. Registration happens
// before the runtime is frozen (the analogue of compile time); table sizes
// are fixed at freeze.
type Registry struct {
	names   []string
	arities []int
	byName  map[string]PatternID
	frozen  bool
}

// NewRegistry returns an empty pattern registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]PatternID)}
}

// Register assigns a PatternID to the named pattern with the given argument
// count. Registering the same name twice returns the existing ID if the
// arity matches and panics otherwise. Registering after freeze panics.
func (r *Registry) Register(name string, arity int) PatternID {
	if id, ok := r.byName[name]; ok {
		if r.arities[id] != arity {
			panic(fmt.Sprintf("core: pattern %q re-registered with arity %d (was %d)",
				name, arity, r.arities[id]))
		}
		return id
	}
	if r.frozen {
		panic(fmt.Sprintf("core: pattern %q registered after freeze", name))
	}
	if arity < 0 {
		panic(fmt.Sprintf("core: pattern %q has negative arity", name))
	}
	id := PatternID(len(r.names))
	r.names = append(r.names, name)
	r.arities = append(r.arities, arity)
	r.byName[name] = id
	return id
}

// Lookup returns the ID for a registered pattern name.
func (r *Registry) Lookup(name string) (PatternID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Name returns the pattern's name.
func (r *Registry) Name(id PatternID) string {
	if id < 0 || int(id) >= len(r.names) {
		return fmt.Sprintf("pattern(%d)", int(id))
	}
	return r.names[id]
}

// Arity returns the pattern's argument count.
func (r *Registry) Arity(id PatternID) int { return r.arities[id] }

// Count returns the number of registered patterns.
func (r *Registry) Count() int { return len(r.names) }

// Freeze forbids further registration; virtual function tables built after
// freeze cover all patterns.
func (r *Registry) Freeze() { r.frozen = true }

// Frozen reports whether the registry is frozen.
func (r *Registry) Frozen() bool { return r.frozen }

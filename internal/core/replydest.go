package core

// replyState is the payload of a reply destination object. Reply
// destinations are first-class concurrent objects (Section 2.2): their mail
// address may be passed to third parties, and whoever holds it may send the
// reply. When the reply arrives before the original sender checks, the value
// is stored; when the sender has already blocked, the arrival resumes the
// saved context.
type replyState struct {
	value    Value
	arrived  bool
	consumed bool

	waiterObj *Object
	waiterK   func(*Ctx, Value)
	waiterF   *Frame
}

// newReplyDest allocates a reply destination object on node n.
func (n *NodeRT) newReplyDest() *Object {
	n.rt.Freeze()
	obj := &Object{
		node: n.id,
		vftp: n.rt.replyVFT,
		rd:   &replyState{},
	}
	n.rt.trackObject(n.id, obj)
	return obj
}

// IsReplyDest reports whether the object is a reply destination.
func (o *Object) IsReplyDest() bool { return o.rd != nil }

// replyEntry is the native handler for the reply: pattern on a reply
// destination object. If the original sender is already blocked on this
// destination, its context is restored and it continues on the current
// stack (or via the scheduling queue when the stack is deep); otherwise the
// value is stored for the sender's post-send check.
func replyEntry(n *NodeRT, obj *Object, f *Frame) {
	rd := obj.rd
	if rd == nil {
		panic("core: reply: sent to a non-reply-destination object")
	}
	n.C.Replies++
	if rd.consumed || rd.arrived {
		// A second reply to the same destination: the first wins.
		n.C.DroppedReplies++
		n.releaseFrame(f)
		return
	}
	if rd.waiterObj == nil {
		rd.value = f.Arg(0)
		rd.arrived = true
		n.releaseFrame(f)
		return
	}
	rd.consumed = true
	w, k, wf := rd.waiterObj, rd.waiterK, rd.waiterF
	rd.waiterObj, rd.waiterK, rd.waiterF = nil, nil, nil
	v := f.Arg(0)
	n.releaseFrame(f)
	if n.stackDepth >= n.rt.maxStackDepth {
		n.C.Preemptions++
		n.charge(n.cost.SaveContext)
		n.deferResume(w, wf, func(ctx *Ctx) { k(ctx, v) })
		return
	}
	n.charge(n.cost.RestoreContext)
	// The waiter stays in active mode: while blocked on a reply all its
	// table entries are queuing procedures, exactly as the paper specifies
	// for now-type waits.
	n.runCont(w, wf, func(ctx *Ctx) { k(ctx, v) })
}

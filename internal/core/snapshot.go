package core

// Checkpoint support: capture and restore of a node's complete
// language-level state. The paper's representation makes this unusually
// clean — every blocked computation is already a first-class heap value (a
// saved context: continuation + frame), every buffered message a heap frame,
// and every object's mode a table pointer — so a node's entire runtime state
// is an enumerable set of objects, queues and frames rather than an opaque C
// stack. A snapshot is therefore a plain traversal.
//
// Capture happens between engine events (never mid-method: method bodies run
// to completion inside one scheduler quantum), so no object is ever running
// at a snapshot point. Restore rewrites each captured object in place —
// object identity IS the mail address, so restoration must not reallocate —
// and forgets everything created after the snapshot: pre-snapshot state
// cannot reference post-snapshot objects, so the suffix of the hosted list
// is unreachable garbage once the in-flight packets of the rolled-back
// timeline are revoked (machine.BumpEra).
//
// Continuation closures (resumeK, wait.k, reply waiters) are captured by
// reference. This is sound only under the write-once environment contract:
// a continuation's captured variables must not be mutated after the closure
// is parked (see DESIGN.md §10). The bundled applications keep loop cursors
// in simulated object state for exactly this reason.

// SnapshotCodec converts an object's state box into a stable-store image.
// The default (nil) codec copies the slice; package checkpoint routes
// per-class Snapshotter registrations through this hook.
type SnapshotCodec func(cl *Class, state []Value) []Value

// Modelled stable-store record sizes (bytes), used to account the simulated
// cost of a snapshot: an object header (class id, mode, flags), a frame
// header (pattern, reply destination, link), a saved execution context
// (continuation address + locals base), and a reply-destination record.
const (
	objHeaderBytes   = 16
	frameHeaderBytes = 16
	savedCtxBytes    = 32
	replyDestBytes   = 16
)

// EnableSnapshots turns on object tracking on every node: each node records
// the objects homed on it, in creation order, so a snapshot can enumerate
// them. Must be called before any object is created; tracking is off by
// default so the non-checkpointed path stays byte-identical (and safe under
// parallel execution, which checkpointing forbids).
func (r *Runtime) EnableSnapshots() {
	for _, n := range r.nodes {
		n.track = true
	}
}

// SnapshotsEnabled reports whether object tracking is on.
func (r *Runtime) SnapshotsEnabled() bool {
	return len(r.nodes) > 0 && r.nodes[0].track
}

// trackObject records a newly created object on its hosting node.
func (r *Runtime) trackObject(node int, obj *Object) {
	if n := r.nodes[node]; n.track {
		n.hosted = append(n.hosted, obj)
	}
}

// objImage is the captured form of one object. The object pointer is kept —
// identity is the mail address — and every mutable field is copied; frames
// are captured by reference after being made immortal (see immortalize).
type objImage struct {
	obj      *Object
	class    *Class
	vftp     *VFT
	state    []Value
	hasState bool
	ctorArgs []Value
	queue    []*Frame
	inSchedQ bool
	wait     *waitImage
	resumeK  func(*Ctx)
	resumeF  *Frame
	rd       replyState
	isRD     bool
	forward  Address
	multi    *multiImage
}

type waitImage struct {
	pats  []PatternID
	k     func(*Ctx, *Frame)
	frame *Frame
}

// multiImage is the captured multiactive scheduling state of one object:
// live-invocation counts, the per-group ready queues (frames by reference,
// immortalized), overtake counters and deferred continuations. Group queues
// are runtime state like the serial message queue, so a restart mid-group
// resumes with the same live set and parked work.
type multiImage struct {
	live      []int
	totalLive int
	ready     [][]*Frame
	overtake  []uint32
	resume    []savedCont
}

// NodeImage is one node's language-level snapshot.
type NodeImage struct {
	Node       int
	bytes      int
	objs       []objImage
	hostedLen  int
	hostedXLen int
	sched      []*Object
}

// SizeBytes reports the modelled stable-store footprint of the image,
// charged through Cost.CkptInstr / Cost.RestoreInstr by the checkpoint
// subsystem.
func (img *NodeImage) SizeBytes() int { return img.bytes }

// Objects reports how many objects the image holds (for tests and reports).
func (img *NodeImage) Objects() int { return len(img.objs) }

// immortalize removes a frame from pool management: the snapshot holds it by
// reference, so it must never be recycled and rewritten (releaseFrame
// ignores non-pooled frames). The frame's content is immutable after
// creation; only its queue link is rewritten, and restore rebuilds links.
func immortalize(f *Frame) int {
	if f == nil {
		return 0
	}
	f.pooled = false
	return frameHeaderBytes + ArgsSize(f.Args)
}

// PinFrame removes a frame from pool management before any snapshot sees
// it. The remote layer's blocking-creation path parks (object, frame,
// continuation) inside a wire record that checkpoint retention may hold and
// replay; a replayed resume must find the frame's content intact, so with
// checkpointing on the frame is never recycled once it rides such a record.
func (n *NodeRT) PinFrame(f *Frame) {
	if f != nil {
		f.pooled = false
	}
}

// CaptureNode snapshots the full language-level state of one node: every
// hosted object (state box via the codec, constructor arguments, buffered
// message queue, saved contexts, reply-destination payloads, forwarding
// address, mode table) and the scheduling-queue order. Requires
// EnableSnapshots; must run between engine events.
func (r *Runtime) CaptureNode(node int, codec SnapshotCodec) *NodeImage {
	n := r.nodes[node]
	if !n.track {
		panic("core: CaptureNode without EnableSnapshots")
	}
	img := &NodeImage{Node: node, hostedLen: len(n.hosted)}
	img.objs = make([]objImage, 0, len(n.hosted))
	for _, o := range n.hosted {
		img.capture(o, codec)
	}
	// Cross-lane chunk registrations (optimistic mode) live on a side list
	// that other lanes append to concurrently; read the slice header under
	// the lock and walk the stable prefix (the list is append-only).
	hx := n.hostedX
	if r.optim.on {
		r.optim.mu.Lock()
		hx = n.hostedX
		r.optim.mu.Unlock()
	}
	img.hostedXLen = len(hx)
	for _, o := range hx {
		img.capture(o, codec)
	}
	if q := &n.schedQ; !q.empty() {
		img.sched = append(img.sched, q.items[q.head:]...)
		img.bytes += 8 * len(img.sched)
	}
	return img
}

// capture appends one object's image, accounting its stable-store bytes.
func (img *NodeImage) capture(o *Object, codec SnapshotCodec) {
	{
		if o.running {
			panic("core: snapshot of a running object")
		}
		oi := objImage{
			obj:      o,
			class:    o.class,
			vftp:     o.vftp,
			inSchedQ: o.inSchedQ,
			forward:  o.forward,
		}
		b := objHeaderBytes
		if o.state != nil {
			oi.hasState = true
			if codec != nil && o.class != nil {
				oi.state = codec(o.class, o.state)
			} else {
				oi.state = append([]Value(nil), o.state...)
			}
			b += ArgsSize(oi.state)
		}
		if o.ctorArgs != nil {
			oi.ctorArgs = append([]Value(nil), o.ctorArgs...)
			b += ArgsSize(oi.ctorArgs)
		}
		for f := o.queue.head; f != nil; f = f.next {
			if len(oi.queue) >= o.queue.n {
				// A frame reachable past the queue's own length means a frame
				// was recycled while still linked — catch the corruption at
				// the capture that would otherwise persist it.
				panic("core: message queue longer than its length during capture")
			}
			b += immortalize(f)
			oi.queue = append(oi.queue, f)
		}
		if o.wait != nil {
			oi.wait = &waitImage{
				pats:  append([]PatternID(nil), o.wait.pats...),
				k:     o.wait.k,
				frame: o.wait.frame,
			}
			b += savedCtxBytes + immortalize(o.wait.frame)
		}
		if o.resumeK != nil {
			oi.resumeK, oi.resumeF = o.resumeK, o.resumeF
			b += savedCtxBytes + immortalize(o.resumeF)
		}
		if o.rd != nil {
			oi.isRD = true
			oi.rd = *o.rd
			b += replyDestBytes + immortalize(o.rd.waiterF)
		}
		if o.multi != nil {
			mi := &multiImage{
				live:      append([]int(nil), o.multi.live...),
				totalLive: o.multi.totalLive,
				ready:     make([][]*Frame, len(o.multi.ready)),
				overtake:  append([]uint32(nil), o.multi.overtake...),
			}
			for qi := range o.multi.ready {
				for f := o.multi.ready[qi].head; f != nil; f = f.next {
					b += immortalize(f)
					mi.ready[qi] = append(mi.ready[qi], f)
				}
			}
			for _, sc := range o.multi.resume {
				b += savedCtxBytes + immortalize(sc.frame)
			}
			mi.resume = append([]savedCont(nil), o.multi.resume...)
			b += 8 * len(o.multi.live) // live + overtake counter words
			oi.multi = mi
		}
		img.bytes += b
		img.objs = append(img.objs, oi)
	}
}

// RestoreNode rolls the node back to the image: every captured object is
// rewritten in place, objects created after the snapshot are forgotten, and
// the scheduling queue is rebuilt in captured order. codec, when non-nil,
// decodes state images produced by an encoding SnapshotCodec (nil state
// images pass through a plain copy either way). The caller is responsible
// for revoking the rolled-back timeline's in-flight packets
// (machine.BumpEra), restoring the inter-node layer, and waking the node.
func (r *Runtime) RestoreNode(img *NodeImage, codec SnapshotCodec) {
	r.restoreNode(img, codec, true)
}

// restoreNode implements RestoreNode. truncX controls whether the cross-lane
// side list is rolled back to the image: the checkpoint restart path owns the
// whole timeline and truncates it, while an optimistic lane rollback must
// leave hostedX alone — entries appended there after this node's capture may
// belong to a creating lane's committed prefix, and the speculative ones are
// revoked by each creator's own journal (see optimistic.go).
func (r *Runtime) restoreNode(img *NodeImage, codec SnapshotCodec, truncX bool) {
	n := r.nodes[img.Node]
	for i := img.hostedLen; i < len(n.hosted); i++ {
		n.hosted[i] = nil
	}
	n.hosted = n.hosted[:img.hostedLen]
	if truncX {
		for i := img.hostedXLen; i < len(n.hostedX); i++ {
			n.hostedX[i] = nil
		}
		n.hostedX = n.hostedX[:img.hostedXLen]
	}
	for i := range img.objs {
		oi := &img.objs[i]
		o := oi.obj
		o.class = oi.class
		o.vftp = oi.vftp
		if oi.hasState {
			src := oi.state
			if codec != nil && oi.class != nil {
				src = codec(oi.class, oi.state)
			}
			if o.state == nil {
				// The live slice was handed away after the snapshot (e.g.
				// BeginMigration detached it); restoring must not write into
				// storage another node may have adopted, so a fresh box is
				// carved from the arena.
				o.state = n.allocState(len(src))
			}
			copy(o.state, src)
		} else {
			o.state = nil
		}
		// The image's copy is aliased rather than re-copied: constructor
		// arguments are read-only until the lazy init consumes the pointer,
		// so a second restore from the same image stays valid.
		o.ctorArgs = oi.ctorArgs
		o.queue = frameQueue{}
		for _, f := range oi.queue {
			o.queue.push(f)
		}
		o.inSchedQ = oi.inSchedQ
		o.running = false
		if oi.wait != nil {
			o.wait = &waitState{pats: oi.wait.pats, k: oi.wait.k, frame: oi.wait.frame}
		} else {
			o.wait = nil
		}
		o.resumeK, o.resumeF = oi.resumeK, oi.resumeF
		if oi.isRD {
			*o.rd = oi.rd
		}
		if oi.multi != nil {
			ms := o.multi
			if ms == nil { // defensive: class is fixed, so this can't normally happen
				ms = newMultiState(oi.class)
				o.multi = ms
			}
			copy(ms.live, oi.multi.live)
			ms.totalLive = oi.multi.totalLive
			copy(ms.overtake, oi.multi.overtake)
			ms.readyN = 0
			for qi := range ms.ready {
				ms.ready[qi] = frameQueue{}
				for _, f := range oi.multi.ready[qi] {
					ms.ready[qi].push(f)
					ms.readyN++
				}
			}
			ms.resume = append(ms.resume[:0:0], oi.multi.resume...)
		}
		o.forward = oi.forward
	}
	n.schedQ = schedQueue{}
	n.schedQ.items = append(n.schedQ.items, img.sched...)
}

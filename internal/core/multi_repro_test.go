package core

import "testing"

// Repro: two grouped invocations of a multiactive object each Yield once.
// Both deferred continuations park in multi.resume while the object sits in
// the scheduling queue a single time; if multiReschedule ignores pending
// resume entries, the second continuation is stranded.
func TestMultiactiveTwoYieldedContinuations(t *testing.T) {
	r := newTestRT(t, Options{})
	work := r.Reg.Register("work", 0)
	kick := r.Reg.Register("kick", 0)

	var hotAddr Address
	doneCount := 0

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(work, func(ctx *Ctx) {
		ctx.Yield(func(ctx *Ctx) {
			doneCount++
		})
	})
	hot.Group("g", work)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(hotAddr, work)
		ctx.SendPast(hotAddr, work)
	})

	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)
	run(t, r)

	if doneCount != 2 {
		t.Fatalf("completed continuations = %d, want 2", doneCount)
	}
}

package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MethodFunc is a compiled method body. Method bodies are written in
// continuation-passing style: operations that may block (now-type sends,
// selective reception, remote creation) take an explicit continuation,
// mirroring the paper's saved instruction pointer + locals in a heap frame.
type MethodFunc func(ctx *Ctx)

// InitFunc lazily initializes an object's state variables when it receives
// its first message (Section 4.2's lazy initialization via the init table).
type InitFunc func(ic *InitCtx)

// Class describes a concurrent object class: its state layout, its lazy
// initializer, its method bodies indexed by pattern, and the multiple
// virtual function tables generated from them at freeze time.
type Class struct {
	Name      string
	StateSize int      // number of state variables
	Init      InitFunc // lazy initializer; may be nil

	rt      *Runtime
	id      int          // dense class index, assigned by DefineClass
	methods []MethodFunc // dense, indexed by PatternID after freeze
	defs    map[PatternID]MethodFunc

	dormant   *VFT
	active    *VFT
	initTable *VFT
	waitCache map[string]*VFT

	// Multiactive declarations (Group / Priority / ReorderBound). Declaring
	// any compatibility group makes the class multiactive: its objects keep
	// the single multiTable for their whole life and schedule through
	// per-group ready queues (see multi.go).
	groups        []groupDef
	reorderBound  int
	patGroup      []int // dense after freeze: PatternID -> ready-queue index
	multiTable    *VFT
	multiOrder    []int // queue scan order: priority desc, declaration order
	exclusiveProf int   // profiler id of the implicit exclusive queue; -1 off
}

// Method attaches a method body for a pattern. It returns the class for
// chaining. Defining a method after freeze, or twice for one pattern,
// panics — both are compile-time errors in the paper's setting.
func (c *Class) Method(p PatternID, body MethodFunc) *Class {
	if c.rt.frozen {
		panic(fmt.Sprintf("core: class %s: method added after freeze", c.Name))
	}
	if body == nil {
		panic(fmt.Sprintf("core: class %s: nil method body", c.Name))
	}
	if _, dup := c.defs[p]; dup {
		panic(fmt.Sprintf("core: class %s: duplicate method for pattern %s",
			c.Name, c.rt.Reg.Name(p)))
	}
	c.defs[p] = body
	return c
}

// Understands reports whether the class defines a method for the pattern.
func (c *Class) Understands(p PatternID) bool {
	if c.methods != nil {
		return int(p) >= 0 && int(p) < len(c.methods) && c.methods[p] != nil
	}
	_, ok := c.defs[p]
	return ok
}

// body returns the method body for a pattern, panicking on "message not
// understood" — a programming error in statically-typed ABCL.
func (c *Class) body(p PatternID) MethodFunc {
	b := c.methods[p]
	if b == nil {
		panic(fmt.Sprintf("core: class %s does not understand pattern %s",
			c.Name, c.rt.Reg.Name(p)))
	}
	return b
}

// buildTables generates the per-mode virtual function tables. Called once at
// runtime freeze (the analogue of compilation).
func (c *Class) buildTables(npat int) {
	c.methods = make([]MethodFunc, npat)
	for p, b := range c.defs {
		if int(p) >= npat {
			panic(fmt.Sprintf("core: class %s: pattern %d out of range", c.Name, p))
		}
		c.methods[p] = b
	}

	c.dormant = &VFT{Mode: ModeDormant, entries: make([]entry, npat)}
	c.active = &VFT{Mode: ModeActive, entries: make([]entry, npat)}
	c.initTable = &VFT{Mode: ModeNeedInit, entries: make([]entry, npat)}
	for p := 0; p < npat; p++ {
		pid := PatternID(p)
		if c.methods[p] != nil {
			c.dormant.entries[p] = entry{entryBody, makeDormantEntry(c, pid)}
			c.initTable.entries[p] = entry{entryInit, makeInitEntry(c, pid)}
		}
		// Queuing procedures are generated for every pattern: a buffered
		// unknown-pattern message only faults when later dispatched, exactly
		// as a queued message would on the AP1000.
		c.active.entries[p] = entry{entryQueue, queueEntry}
	}
	c.waitCache = make(map[string]*VFT)
	if len(c.groups) > 0 {
		c.buildMulti(npat)
	}
}

// waitingVFT returns (building and caching on first use) the table for a
// selective reception awaiting the given patterns: awaited entries restore
// the saved context, all other entries are queuing procedures. The paper
// constructs one such table per wait site at compile time; memoization gives
// the same effect.
func (c *Class) waitingVFT(pats []PatternID) *VFT {
	key := waitKey(pats)
	if v, ok := c.waitCache[key]; ok {
		return v
	}
	npat := len(c.active.entries)
	v := &VFT{Mode: ModeWaiting, entries: make([]entry, npat)}
	copy(v.entries, c.active.entries)
	for _, p := range pats {
		if int(p) < 0 || int(p) >= npat {
			panic(fmt.Sprintf("core: class %s: awaited pattern %d out of range", c.Name, p))
		}
		v.entries[p] = entry{entryRestore, makeRestoreEntry(p)}
	}
	c.waitCache[key] = v
	return v
}

func waitKey(pats []PatternID) string {
	ids := make([]int, len(pats))
	for i, p := range pats {
		ids[i] = int(p)
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// InitCtx is the limited context available to lazy initializers: it can read
// constructor arguments and set state variables, but cannot send messages —
// initialization happens inside a message dispatch and must not recurse into
// scheduling.
type InitCtx struct {
	obj  *Object
	args []Value
}

// CtorArg returns the i'th constructor argument (Nil when out of range).
func (ic *InitCtx) CtorArg(i int) Value {
	if i < 0 || i >= len(ic.args) {
		return Nil
	}
	return ic.args[i]
}

// NumCtorArgs returns the constructor argument count.
func (ic *InitCtx) NumCtorArgs() int { return len(ic.args) }

// ID returns the class's dense index (assigned in definition order); the
// profiler keys per-class attribution by it.
func (c *Class) ID() int { return c.id }

// SetState writes state variable i.
func (ic *InitCtx) SetState(i int, v Value) { ic.obj.state[i] = v }

// State reads state variable i.
func (ic *InitCtx) State(i int) Value { return ic.obj.state[i] }

package core

import (
	"sync"

	"repro/internal/stats"
)

// Optimistic-execution support. Under the Time Warp runner a node's lane may
// run speculatively past the conservative horizon and be rolled back; the
// language runtime contributes a per-node capture/restore built on the
// checkpoint snapshot machinery, plus two mode changes:
//
//   - frame pooling is off: buffered message frames survive across events
//     (object queues, multiactive ready queues, parked continuations), so a
//     speculative releaseFrame would zero a frame that a restored queue
//     still references. With pooling off every frame is immutable from
//     creation to collection and replaying a delivery is safe. Invocation
//     contexts stay pooled — a context never outlives the event that
//     acquired it.
//
//   - cross-node chunk registrations go through a side list. The remote
//     creation protocol allocates the target's chunk from the REQUESTER's
//     lane (stock pre-seeding), so appending it to the target's `hosted`
//     list would race with the target's own lane and — worse — the target's
//     rollback truncation of `hosted` could forget a chunk whose creating
//     lane committed it. Cross-lane chunks therefore live in a per-node
//     `hostedX` list guarded by a runtime-wide mutex, with a per-creator
//     journal so a creator's rollback revokes exactly its own speculative
//     registrations: the sender-side form of a Time Warp anti-message.

// optRuntimeState bundles the runtime's optimistic-mode state so the
// Runtime struct gains a single field.
type optRuntimeState struct {
	on bool
	// mu guards every node's hostedX list (append on the creating lane,
	// enumeration on the hosting lane's capture).
	mu sync.Mutex
	// journal[creator] records the cross-node chunks creator's lane has
	// registered since its last capture; see OptCaptureNode/OptRestoreNode.
	journal [][]optChunk
}

// optChunk is one journaled cross-node chunk registration.
type optChunk struct {
	node int
	obj  *Object
}

// SetOptimistic switches the runtime into optimistic-execution mode: frame
// pooling stops and cross-node chunk creations are journaled for rollback.
// Call before Run, after the node set is fixed.
func (r *Runtime) SetOptimistic() {
	r.optim.on = true
	r.optim.journal = make([][]optChunk, len(r.nodes))
}

// Optimistic reports whether the runtime is in optimistic-execution mode.
func (r *Runtime) Optimistic() bool { return r.optim.on }

// NewFaultChunkFrom is NewFaultChunk for call sites that may run on a lane
// other than the hosting node's (the remote-creation stock pre-seeding path).
// Outside optimistic mode, or when creator and host coincide, it is exactly
// NewFaultChunk; under optimistic execution the chunk is registered on the
// host's cross-lane side list and journaled against the creator so a
// rollback of the creator's lane revokes the registration.
func (r *Runtime) NewFaultChunkFrom(creator, node int) *Object {
	if !r.optim.on || creator == node {
		return r.NewFaultChunk(node)
	}
	r.Freeze()
	obj := &Object{node: node, vftp: r.faultVFT}
	if n := r.nodes[node]; n.track {
		r.optim.mu.Lock()
		n.hostedX = append(n.hostedX, obj)
		r.optim.mu.Unlock()
		r.optim.journal[creator] = append(r.optim.journal[creator], optChunk{node, obj})
	}
	return obj
}

// NodeSnap is the language-runtime half of a lane's rollback snapshot: the
// node image plus the per-node bookkeeping the checkpoint path deliberately
// leaves monotonic (statistics counters, stack high-water mark).
type NodeSnap struct {
	img      *NodeImage
	counters stats.Counters
	maxDepth int
}

// OptCaptureNode snapshots node for a speculative window. Runs on the worker
// goroutine that owns the node's lane, between engine events.
func (r *Runtime) OptCaptureNode(node int) *NodeSnap {
	// Every creation journaled so far is committed: a window either commits
	// or rolls back before the next capture, and pre-capture (conservative)
	// events never roll back. Clearing here leaves exactly the speculative
	// suffix for OptRestoreNode to revoke.
	r.optim.journal[node] = r.optim.journal[node][:0]
	n := r.nodes[node]
	return &NodeSnap{img: r.CaptureNode(node, nil), counters: n.C, maxDepth: n.maxDepth}
}

// OptRestoreNode rolls node back to its snapshot. Runs single-threaded at
// the window barrier, so the hostedX lists need no locking here.
func (r *Runtime) OptRestoreNode(node int, s *NodeSnap) {
	// Revoke this lane's speculative cross-node registrations first: the
	// chunk's create request never left the birth log (the engine truncated
	// it), so unhooking the object makes the creation never-was.
	for _, t := range r.optim.journal[node] {
		hn := r.nodes[t.node]
		for i := len(hn.hostedX) - 1; i >= 0; i-- {
			if hn.hostedX[i] == t.obj {
				hn.hostedX = append(hn.hostedX[:i], hn.hostedX[i+1:]...)
				break
			}
		}
	}
	r.optim.journal[node] = r.optim.journal[node][:0]
	r.restoreNode(s.img, nil, false)
	n := r.nodes[node]
	n.C = s.counters
	n.maxDepth = s.maxDepth
}

// Package core implements the paper's primary contribution: the intra-node
// software architecture of ABCL/onAP1000 (Section 4). It provides concurrent
// objects with per-mode multiple virtual function tables, the integrated
// stack-based/queue-based scheduler, heap continuation frames for blocked
// invocations, reply-destination objects for now-type message passing, and
// selective message reception — plus the naive always-queue baseline used
// for the paper's Figure 6 comparison.
package core

import "fmt"

// Kind discriminates Value payloads. Per Section 2.3 of the paper, argument
// types are statically determined by the message pattern; Kind exists so the
// simulator can check that discipline and size packets.
type Kind uint8

// Value kinds.
const (
	KindNil Kind = iota
	KindInt
	KindBool
	KindFloat
	KindString
	KindRef // mail address of a concurrent object
	KindAny // opaque application payload (treated as immutable)
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindRef:
		return "ref"
	case KindAny:
		return "any"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a message argument or state variable: a basic value or a mail
// address (Section 2.1: "Messages can contain mail addresses of concurrent
// objects as well as basic values"). The zero Value is nil.
type Value struct {
	kind Kind
	num  int64 // int, bool (0/1), or float bits
	f    float64
	str  string
	ref  Address
	any  any
}

// Nil is the zero Value.
var Nil Value

// IntV makes an integer Value.
func IntV(v int64) Value { return Value{kind: KindInt, num: v} }

// BoolV makes a boolean Value.
func BoolV(v bool) Value {
	n := int64(0)
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// FloatV makes a floating-point Value.
func FloatV(v float64) Value { return Value{kind: KindFloat, f: v} }

// StrV makes a string Value.
func StrV(v string) Value { return Value{kind: KindString, str: v} }

// RefV makes a mail-address Value.
func RefV(a Address) Value { return Value{kind: KindRef, ref: a} }

// AnyV wraps an opaque application payload. The payload must be treated as
// immutable by both sender and receiver: remote transmission does not deep
// copy, so mutation would violate the distributed-memory model.
func AnyV(v any) Value { return Value{kind: KindAny, any: v} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// Int returns the integer payload; it panics if the kind differs.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.num
}

// Bool returns the boolean payload; it panics if the kind differs.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.num != 0
}

// Float returns the float payload; it panics if the kind differs.
func (v Value) Float() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// Str returns the string payload; it panics if the kind differs.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.str
}

// Ref returns the mail-address payload; it panics if the kind differs.
func (v Value) Ref() Address {
	v.mustBe(KindRef)
	return v.ref
}

// Any returns the opaque payload; it panics if the kind differs.
func (v Value) Any() any {
	v.mustBe(KindAny)
	return v.any
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("core: value kind %v, want %v", v.kind, k))
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return fmt.Sprintf("%d", v.num)
	case KindBool:
		return fmt.Sprintf("%t", v.num != 0)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.str)
	case KindRef:
		return v.ref.String()
	case KindAny:
		return fmt.Sprintf("any(%v)", v.any)
	default:
		return "?"
	}
}

// SizeBytes estimates the wire size of the value for bandwidth modelling.
// Scalar values are one 8-byte word, as are mail addresses (node + pointer
// packed, per Section 5.2's (processor number, real pointer) pairs).
func (v Value) SizeBytes() int {
	switch v.kind {
	case KindNil, KindInt, KindBool, KindFloat, KindRef:
		return 8
	case KindString:
		return 8 + len(v.str)
	case KindAny:
		if s, ok := v.any.(Sizer); ok {
			return s.SizeBytes()
		}
		return 32
	default:
		return 8
	}
}

// Sizer lets opaque payloads report their wire size.
type Sizer interface {
	SizeBytes() int
}

// ArgsSize returns the combined wire size of a message's arguments.
func ArgsSize(args []Value) int {
	n := 0
	for _, a := range args {
		n += a.SizeBytes()
	}
	return n
}

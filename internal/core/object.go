package core

// Object is a concurrent object as in Figure 2 of the paper: a state
// variable box, a message queue, and a virtual function table pointer
// (VFTP) designating the table for its current mode.
type Object struct {
	class *Class
	node  int
	vftp  *VFT

	state    []Value
	ctorArgs []Value // held until lazy initialization
	queue    frameQueue

	inSchedQ bool
	running  bool // a method invocation is live on the stack

	// wait holds the saved selective-reception context while in waiting
	// mode: the continuation plus the frame of the blocked invocation.
	wait *waitState

	// resumeK is a continuation parked for the scheduling queue: either a
	// preempted/yielded context or a reply continuation deferred because the
	// stack was deep. The scheduling-queue item's "continuation address".
	resumeK func(*Ctx)
	resumeF *Frame

	// multi is non-nil for objects of multiactive classes: live-invocation
	// counts, per-group ready queues, and deferred continuations.
	multi *multiState

	// rd is non-nil for reply destination objects.
	rd *replyState

	// forward is the new address of a migrated object; consulted only by
	// the forwarder table installed at migration.
	forward Address
}

type waitState struct {
	pats  []PatternID
	k     func(*Ctx, *Frame)
	frame *Frame // the invocation frame whose context was saved
}

// Class returns the object's class (nil for an uninitialized chunk).
func (o *Object) Class() *Class { return o.class }

// NodeID returns the ID of the node the object lives on.
func (o *Object) NodeID() int { return o.node }

// Mode returns the object's current mode per its VFTP. For objects created
// before the runtime froze (no tables yet) the initial mode is derived from
// the class.
func (o *Object) Mode() Mode {
	if o.vftp == nil {
		switch {
		case o.class == nil:
			return ModeUninit
		case o.class.Init != nil:
			return ModeNeedInit
		case o.class.Multiactive():
			return ModeMultiactive
		default:
			return ModeDormant
		}
	}
	return o.vftp.Mode
}

// Addr returns the object's mail address.
func (o *Object) Addr() Address { return Address{Node: o.node, Obj: o} }

// QueueLen returns the number of buffered messages.
func (o *Object) QueueLen() int { return o.queue.len() }

// ReadyLen returns the number of frames parked in the multiactive ready
// queues (zero for serial objects).
func (o *Object) ReadyLen() int {
	if o.multi == nil {
		return 0
	}
	return o.multi.readyN
}

// LiveInvocations returns the number of live (running or blocked)
// invocations on a multiactive object (zero for serial objects).
func (o *Object) LiveInvocations() int {
	if o.multi == nil {
		return 0
	}
	return o.multi.totalLive
}

// State reads state variable i directly; intended for tests and drivers
// inspecting a quiescent system, not for method bodies (use Ctx.State).
func (o *Object) State(i int) Value { return o.state[i] }

// awaits reports whether p is in the awaited set of a waiting object.
func (w *waitState) awaits(p PatternID) bool {
	for _, q := range w.pats {
		if q == p {
			return true
		}
	}
	return false
}

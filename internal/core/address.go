package core

import "fmt"

// Address is the mail address of a concurrent object, uniformly represented
// as a (processor number, real pointer) pair exactly as in Section 5.2 of
// the paper. This representation gives maximum-speed local access and avoids
// export-table management; the restriction it implies (objects cannot be
// moved freely) is the paper's too.
//
// The Obj pointer must only be dereferenced by code running on the owning
// node; all cross-node interaction goes through packets.
type Address struct {
	Node int
	Obj  *Object
}

// NilAddress is the null mail address.
var NilAddress Address

// IsNil reports whether the address refers to no object.
func (a Address) IsNil() bool { return a.Obj == nil }

func (a Address) String() string {
	if a.Obj == nil {
		return "addr(nil)"
	}
	name := "?"
	if a.Obj.class != nil {
		name = a.Obj.class.Name
	}
	return fmt.Sprintf("addr(n%d:%s@%p)", a.Node, name, a.Obj)
}

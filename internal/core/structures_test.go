package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// --- frameQueue ------------------------------------------------------------

func TestFrameQueueFIFO(t *testing.T) {
	var q frameQueue
	if !q.empty() || q.len() != 0 {
		t.Fatal("zero queue must be empty")
	}
	for i := 0; i < 5; i++ {
		q.push(&Frame{Pattern: PatternID(i)})
	}
	if q.len() != 5 {
		t.Fatalf("len = %d, want 5", q.len())
	}
	for i := 0; i < 5; i++ {
		f := q.pop()
		if f == nil || f.Pattern != PatternID(i) {
			t.Fatalf("pop %d returned %v", i, f)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop of empty queue must be nil")
	}
}

func TestFrameQueuePopMatchingPositions(t *testing.T) {
	// Removing from head, middle, and tail must all preserve the remaining
	// order and fix up the tail pointer.
	build := func() *frameQueue {
		q := &frameQueue{}
		for i := 0; i < 4; i++ {
			q.push(&Frame{Pattern: PatternID(i)})
		}
		return q
	}
	for target := PatternID(0); target < 4; target++ {
		q := build()
		f := q.popMatching(func(p PatternID) bool { return p == target })
		if f == nil || f.Pattern != target {
			t.Fatalf("popMatching(%d) = %v", target, f)
		}
		if q.len() != 3 {
			t.Fatalf("len after removal = %d", q.len())
		}
		var rest []PatternID
		for f := q.pop(); f != nil; f = q.pop() {
			rest = append(rest, f.Pattern)
		}
		want := make([]PatternID, 0, 3)
		for i := PatternID(0); i < 4; i++ {
			if i != target {
				want = append(want, i)
			}
		}
		for i := range want {
			if rest[i] != want[i] {
				t.Fatalf("after removing %d: rest = %v, want %v", target, rest, want)
			}
		}
		// Tail must be intact: pushing still appends at the end.
		q2 := build()
		q2.popMatching(func(p PatternID) bool { return p == 3 }) // remove tail
		q2.push(&Frame{Pattern: 99})
		last := PatternID(-1)
		for f := q2.pop(); f != nil; f = q2.pop() {
			last = f.Pattern
		}
		if last != 99 {
			t.Fatal("tail pointer corrupted by popMatching")
		}
	}
}

func TestFrameQueuePopMatchingMiss(t *testing.T) {
	var q frameQueue
	q.push(&Frame{Pattern: 1})
	if q.popMatching(func(p PatternID) bool { return p == 2 }) != nil {
		t.Fatal("popMatching must return nil when nothing matches")
	}
	if q.len() != 1 {
		t.Fatal("miss must not modify the queue")
	}
}

// Property: any interleaving of pushes, pops and matched removals keeps the
// queue consistent with a reference slice model.
func TestFrameQueueModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q frameQueue
		var model []PatternID
		next := PatternID(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				q.push(&Frame{Pattern: next})
				model = append(model, next)
				next++
			case 1: // pop
				got := q.pop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got == nil || got.Pattern != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // popMatching on even patterns
				match := func(p PatternID) bool { return p%2 == 0 }
				got := q.popMatching(match)
				idx := -1
				for i, p := range model {
					if match(p) {
						idx = i
						break
					}
				}
				if idx == -1 {
					if got != nil {
						return false
					}
				} else {
					if got == nil || got.Pattern != model[idx] {
						return false
					}
					model = append(model[:idx:idx], model[idx+1:]...)
				}
			}
			if q.len() != len(model) {
				return false
			}
		}
		// Drain and compare.
		for _, want := range model {
			got := q.pop()
			if got == nil || got.Pattern != want {
				return false
			}
		}
		return q.pop() == nil && q.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- schedQueue --------------------------------------------------------------

func TestSchedQueueFIFO(t *testing.T) {
	var q schedQueue
	objs := make([]*Object, 10)
	for i := range objs {
		objs[i] = &Object{}
		q.push(objs[i])
	}
	if q.len() != 10 {
		t.Fatalf("len = %d", q.len())
	}
	for i := range objs {
		if q.pop() != objs[i] {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
	if q.pop() != nil || !q.empty() {
		t.Fatal("drained queue must be empty")
	}
}

func TestSchedQueueCompaction(t *testing.T) {
	// Interleaved pushes and pops beyond the compaction threshold must not
	// lose or reorder items.
	var q schedQueue
	rng := rand.New(rand.NewSource(3))
	var model []*Object
	for i := 0; i < 10000; i++ {
		if rng.Intn(3) > 0 || len(model) == 0 {
			o := &Object{}
			q.push(o)
			model = append(model, o)
		} else {
			got := q.pop()
			if got != model[0] {
				t.Fatalf("iteration %d: pop mismatch", i)
			}
			model = model[1:]
		}
	}
	for _, want := range model {
		if q.pop() != want {
			t.Fatal("drain mismatch after compactions")
		}
	}
}

// --- Value -------------------------------------------------------------------

func TestValueRoundTrips(t *testing.T) {
	if v := IntV(-42); v.Kind() != KindInt || v.Int() != -42 {
		t.Error("int round trip")
	}
	if v := BoolV(true); !v.Bool() {
		t.Error("bool round trip")
	}
	if v := BoolV(false); v.Bool() {
		t.Error("bool false round trip")
	}
	if v := FloatV(2.5); v.Float() != 2.5 {
		t.Error("float round trip")
	}
	if v := StrV("abc"); v.Str() != "abc" {
		t.Error("string round trip")
	}
	obj := &Object{node: 3}
	if v := RefV(obj.Addr()); v.Ref().Obj != obj || v.Ref().Node != 3 {
		t.Error("ref round trip")
	}
	if v := AnyV([]int{1, 2}); v.Any().([]int)[1] != 2 {
		t.Error("any round trip")
	}
	if !Nil.IsNil() || IntV(0).IsNil() {
		t.Error("IsNil")
	}
}

func TestValueKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading int as string")
		}
	}()
	_ = IntV(1).Str()
}

func TestValueIntRoundTripProperty(t *testing.T) {
	f := func(x int64) bool { return IntV(x).Int() == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil, "nil"},
		{IntV(7), "7"},
		{BoolV(true), "true"},
		{StrV("x"), `"x"`},
		{FloatV(1.5), "1.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestValueSizes(t *testing.T) {
	if IntV(1).SizeBytes() != 8 || RefV(Address{}).SizeBytes() != 8 {
		t.Error("scalar sizes must be one word")
	}
	if StrV("abcd").SizeBytes() != 12 {
		t.Error("string size = header + bytes")
	}
	if AnyV(struct{}{}).SizeBytes() != 32 {
		t.Error("opaque payloads default to 32 bytes")
	}
	if got := ArgsSize([]Value{IntV(1), StrV("ab")}); got != 18 {
		t.Errorf("ArgsSize = %d, want 18", got)
	}
	if ArgsSize(nil) != 0 {
		t.Error("empty args have zero size")
	}
}

type sizedPayload struct{ n int }

func (s sizedPayload) SizeBytes() int { return s.n }

func TestValueSizerInterface(t *testing.T) {
	if AnyV(sizedPayload{n: 100}).SizeBytes() != 100 {
		t.Error("Sizer payloads must report their own size")
	}
}

// --- Registry ------------------------------------------------------------------

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	a := r.Register("a", 2)
	b := r.Register("b", 0)
	if a == b {
		t.Fatal("distinct patterns must get distinct ids")
	}
	if got := r.Register("a", 2); got != a {
		t.Fatal("re-registration must return the same id")
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Name(a) != "a" || r.Arity(a) != 2 {
		t.Fatal("name/arity lookup")
	}
	if id, ok := r.Lookup("b"); !ok || id != b {
		t.Fatal("lookup by name")
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Fatal("lookup of unknown name")
	}
	if r.Name(PatternID(99)) == "" {
		t.Fatal("out-of-range name must still render")
	}
}

func TestRegistryArityConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Register("a", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected arity-conflict panic")
		}
	}()
	r.Register("a", 3)
}

func TestRegistryNegativeArityPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected negative-arity panic")
		}
	}()
	r.Register("a", -1)
}

func TestRegistryDenseIDs(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		id := r.Register(string(rune('a'+i)), 0)
		if int(id) != i {
			t.Fatalf("ids must be dense: got %d at step %d", id, i)
		}
	}
}

// --- Frame ---------------------------------------------------------------------

func TestFrameArgBounds(t *testing.T) {
	f := &Frame{Args: []Value{IntV(1)}}
	if f.Arg(0).Int() != 1 {
		t.Error("in-range arg")
	}
	if !f.Arg(1).IsNil() || !f.Arg(-1).IsNil() {
		t.Error("out-of-range args must be Nil")
	}
}

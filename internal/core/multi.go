package core

// Multiactive objects: compatibility groups and per-group ready queues.
//
// The serial scheme makes every popular object a bottleneck: one live
// invocation at a time, everything else buffered behind it. Following the
// multiactive-object line of work (Henrio & Rochas) and multi-threaded
// actors (Azadbakht et al.), a class may declare named *compatibility
// groups* over its method patterns: invocations whose patterns share a
// group may be live simultaneously; patterns left out of every group stay
// exclusive with everything. "Live" covers both running on the node's stack
// and blocked in a now-type wait — and the latter is where the throughput
// is: while one invocation waits out a remote round trip, compatible
// invocations start and overlap their waits, so a hot object pipelines
// round trips instead of serializing them.
//
// The VFT trick is preserved as a new mode: a multiactive object keeps one
// table (ModeMultiactive) for its whole life, and every entry performs a
// GroupCheck-costed compatibility test against the object's live counts in
// place of the serial scheme's dormant/active table switches. Conflicting
// invocations park in the ready queue of their group; completions re-check
// the queues exactly as the serial method-end protocol re-checks the
// message queue.
//
// Dispatch order is deterministic: ready queues are scanned by declared
// priority (descending, declaration order breaking ties, the implicit
// exclusive queue last among priority zero), and a class-level reorder
// bound caps how often a startable queue may be passed over before it must
// be served first. All scheduling state lives in the object, so runs are
// reproducible and checkpointable; group queues, live counts and deferred
// continuations are captured and restored with the rest of a node image.

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// groupDef is one declared compatibility group of a class.
type groupDef struct {
	name     string
	pats     []PatternID
	priority int
	profID   int // dense profiler group id; -1 when profiling is off
}

// savedCont is a continuation parked for scheduling-queue resumption.
type savedCont struct {
	k     func(*Ctx)
	frame *Frame
}

// multiState is the per-object scheduling state of a multiactive object.
// Queue index i < len(groups) is declared group i; the last index is the
// implicit exclusive queue for ungrouped patterns.
type multiState struct {
	live      []int // live invocations per queue index
	totalLive int

	ready  []frameQueue // parked frames per queue index
	readyN int          // total parked frames across queues

	overtake []uint32 // dispatches a non-empty startable queue was passed over

	// resume holds deferred continuations (yields, deep-stack reply resumes,
	// blocking remote creations). Serial objects use the single resumeK slot;
	// a multiactive object may defer several at once, FIFO.
	resume []savedCont
}

func newMultiState(cl *Class) *multiState {
	nq := len(cl.groups) + 1
	return &multiState{
		live:     make([]int, nq),
		ready:    make([]frameQueue, nq),
		overtake: make([]uint32, nq),
	}
}

// canStart reports whether an invocation of queue index qi is compatible
// with everything currently live: an exclusive invocation needs an idle
// object; a grouped invocation requires every live invocation to belong to
// the same group.
func (ms *multiState) canStart(qi int) bool {
	if ms.totalLive == 0 {
		return true
	}
	if qi == len(ms.live)-1 {
		return false // exclusive conflicts with everything
	}
	return ms.totalLive == ms.live[qi]
}

func (ms *multiState) begin(qi int) { ms.live[qi]++; ms.totalLive++ }

func (ms *multiState) end(qi int) {
	ms.live[qi]--
	ms.totalLive--
	if ms.live[qi] < 0 || ms.totalLive < 0 {
		panic("core: multiactive live-invocation count underflow")
	}
}

func (ms *multiState) buffer(qi int, f *Frame) {
	ms.ready[qi].push(f)
	ms.readyN++
}

// anyStartable reports whether some parked frame could start now.
func (ms *multiState) anyStartable(cl *Class) bool {
	for _, qi := range cl.multiOrder {
		if !ms.ready[qi].empty() && ms.canStart(qi) {
			return true
		}
	}
	return false
}

// pick chooses the ready-queue index to dispatch next: the first startable
// non-empty queue in the class's priority order, unless the reorder bound
// forces a starved queue first. Every startable queue passed over accrues
// one overtake; the chosen queue's count resets. Returns qi -1 when nothing
// is startable, and whether the bound overrode priority order.
func (ms *multiState) pick(cl *Class) (int, bool) {
	chosen, starved := -1, false
	if cl.reorderBound > 0 {
		for _, qi := range cl.multiOrder {
			if !ms.ready[qi].empty() && ms.canStart(qi) && ms.overtake[qi] >= uint32(cl.reorderBound) {
				chosen, starved = qi, true
				break
			}
		}
	}
	if chosen < 0 {
		for _, qi := range cl.multiOrder {
			if !ms.ready[qi].empty() && ms.canStart(qi) {
				chosen = qi
				break
			}
		}
	}
	if chosen < 0 {
		return -1, false
	}
	for _, qi := range cl.multiOrder {
		if qi != chosen && !ms.ready[qi].empty() && ms.canStart(qi) {
			ms.overtake[qi]++
		}
	}
	ms.overtake[chosen] = 0
	return chosen, starved
}

// Group declares a named compatibility group over the given method
// patterns: invocations of patterns in the same group may be live on the
// object simultaneously. A pattern may belong to at most one group;
// overlapping declarations panic here, and a grouped pattern without a
// method panics at freeze. Declaring any group makes the class multiactive.
func (c *Class) Group(name string, pats ...PatternID) *Class {
	if c.rt.frozen {
		panic(fmt.Sprintf("core: class %s: group %q declared after freeze", c.Name, name))
	}
	if name == "" {
		panic(fmt.Sprintf("core: class %s: compatibility group with empty name", c.Name))
	}
	if len(pats) == 0 {
		panic(fmt.Sprintf("core: class %s: group %q declares no patterns", c.Name, name))
	}
	for _, g := range c.groups {
		if g.name == name {
			panic(fmt.Sprintf("core: class %s: duplicate group %q", c.Name, name))
		}
	}
	for i, p := range pats {
		for _, q := range pats[:i] {
			if q == p {
				panic(fmt.Sprintf("core: class %s: group %q lists pattern %s twice",
					c.Name, name, c.rt.Reg.Name(p)))
			}
		}
		for _, g := range c.groups {
			for _, q := range g.pats {
				if q == p {
					panic(fmt.Sprintf("core: class %s: pattern %s in overlapping groups %q and %q",
						c.Name, c.rt.Reg.Name(p), g.name, name))
				}
			}
		}
	}
	c.groups = append(c.groups, groupDef{
		name:   name,
		pats:   append([]PatternID(nil), pats...),
		profID: -1,
	})
	return c
}

// Priority assigns a dispatch priority to a declared group (default 0;
// higher dispatches first). Ties break by declaration order, with the
// implicit exclusive queue last among priority zero.
func (c *Class) Priority(name string, prio int) *Class {
	if c.rt.frozen {
		panic(fmt.Sprintf("core: class %s: priority set after freeze", c.Name))
	}
	for gi := range c.groups {
		if c.groups[gi].name == name {
			c.groups[gi].priority = prio
			return c
		}
	}
	panic(fmt.Sprintf("core: class %s: Priority(%q) before Group(%q)", c.Name, name, name))
}

// ReorderBound bounds priority-driven reordering: a parked startable frame
// may be passed over at most k times before its queue must be served first.
// Zero (the default) leaves reordering unbounded — strict priority order.
func (c *Class) ReorderBound(k int) *Class {
	if c.rt.frozen {
		panic(fmt.Sprintf("core: class %s: reorder bound set after freeze", c.Name))
	}
	if k < 0 {
		panic(fmt.Sprintf("core: class %s: negative reorder bound %d", c.Name, k))
	}
	c.reorderBound = k
	return c
}

// Multiactive reports whether the class declares compatibility groups.
func (c *Class) Multiactive() bool { return len(c.groups) > 0 }

// Groups returns the declared group names in declaration order.
func (c *Class) Groups() []string {
	out := make([]string, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.name
	}
	return out
}

// buildMulti generates the multiactive table and the dense pattern→queue
// map at freeze. Every grouped pattern must have a method: a group over an
// unknown pattern is a definition error, caught here like a duplicate
// method would be.
func (c *Class) buildMulti(npat int) {
	excl := len(c.groups)
	c.patGroup = make([]int, npat)
	for p := range c.patGroup {
		c.patGroup[p] = excl
	}
	for gi := range c.groups {
		g := &c.groups[gi]
		for _, p := range g.pats {
			if int(p) < 0 || int(p) >= npat {
				panic(fmt.Sprintf("core: class %s: group %q declares unregistered pattern %d",
					c.Name, g.name, p))
			}
			if c.methods[p] == nil {
				panic(fmt.Sprintf("core: class %s: group %q declares pattern %s with no method",
					c.Name, g.name, c.rt.Reg.Name(p)))
			}
			c.patGroup[p] = gi
		}
	}
	c.multiTable = &VFT{Mode: ModeMultiactive, entries: make([]entry, npat)}
	for p := 0; p < npat; p++ {
		if c.methods[p] != nil {
			c.multiTable.entries[p] = entry{entryMulti, makeMultiEntry(c, PatternID(p))}
		}
	}
	// Queue scan order: priority descending, declaration order breaking
	// ties, the implicit exclusive queue carrying priority 0 and sorting
	// after equal-priority groups (stable sort on ascending index).
	c.multiOrder = make([]int, excl+1)
	for i := range c.multiOrder {
		c.multiOrder[i] = i
	}
	for i := 1; i < len(c.multiOrder); i++ { // insertion sort, stable
		for j := i; j > 0 && c.queuePriority(c.multiOrder[j]) > c.queuePriority(c.multiOrder[j-1]); j-- {
			c.multiOrder[j], c.multiOrder[j-1] = c.multiOrder[j-1], c.multiOrder[j]
		}
	}
	c.exclusiveProf = -1
}

// queueIndex maps a pattern to its ready-queue index (its group, or the
// implicit exclusive queue).
func (c *Class) queueIndex(p PatternID) int { return c.patGroup[p] }

// queuePriority returns the dispatch priority of a ready queue.
func (c *Class) queuePriority(qi int) int {
	if qi < len(c.groups) {
		return c.groups[qi].priority
	}
	return 0
}

// queueName names a ready queue for traces and errors.
func (c *Class) queueName(qi int) string {
	if qi < len(c.groups) {
		return c.groups[qi].name
	}
	return "(exclusive)"
}

// profGroupID returns the profiler's dense id for a ready queue (-1 when
// profiling is off).
func (c *Class) profGroupID(qi int) int {
	if qi < len(c.groups) {
		return c.groups[qi].profID
	}
	return c.exclusiveProf
}

// makeMultiEntry builds the multiactive-table entry for a pattern: a
// compatibility check against the live counts, then either immediate
// invocation on the sender's stack (the dormant path's moral equivalent) or
// parking in the pattern's group ready queue.
func makeMultiEntry(cl *Class, p PatternID) entryFunc {
	return func(n *NodeRT, obj *Object, f *Frame) {
		ms := obj.multi
		qi := cl.queueIndex(p)
		n.charge(n.cost.GroupCheck)
		startable := ms.canStart(qi)
		if startable && n.stackDepth < n.rt.maxStackDepth {
			n.C.MultiImmediate++
			if n.prof != nil {
				n.prof.GroupEvent(cl.profGroupID(qi), profile.GroupStarted)
			}
			ms.begin(qi)
			n.invokeBody(obj, f, cl.methods[p])
			return
		}
		n.C.MultiParked++
		if n.prof != nil {
			n.prof.GroupEvent(cl.profGroupID(qi), profile.GroupParked)
		}
		n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ)
		ms.buffer(qi, f)
		if n.tr != nil {
			n.tracef(trace.EvBuffer, "%s <- %s (group %s)",
				describe(obj), n.rt.Reg.Name(p), cl.queueName(qi))
		}
		if startable {
			// Compatible, but the stack is too deep: preempt through the
			// scheduling queue, mirroring the serial dormant path.
			n.C.Preemptions++
			n.curPath = profile.Sched
			n.enqueueSched(obj)
		}
	}
}

// multiDispatch is the Step continuation for a multiactive object: resume
// the oldest deferred continuation if one is parked, otherwise pick the
// next startable ready frame and invoke it.
func (n *NodeRT) multiDispatch(obj *Object) {
	ms := obj.multi
	if len(ms.resume) > 0 {
		sc := ms.resume[0]
		copy(ms.resume, ms.resume[1:])
		ms.resume[len(ms.resume)-1] = savedCont{}
		ms.resume = ms.resume[:len(ms.resume)-1]
		n.charge(n.cost.RestoreContext)
		n.runCont(obj, sc.frame, sc.k)
		n.multiReschedule(obj)
		return
	}
	cl := obj.class
	qi, starved := ms.pick(cl)
	if qi < 0 {
		return // nothing startable: a completion will reschedule
	}
	if starved {
		n.C.MultiOvertakes++
	}
	f := ms.ready[qi].pop()
	ms.readyN--
	n.C.MultiDispatches++
	if n.prof != nil {
		n.prof.GroupEvent(cl.profGroupID(qi), profile.GroupDispatched)
	}
	ms.begin(qi)
	n.invokeBody(obj, f, cl.methods[f.Pattern])
	n.multiReschedule(obj)
}

// multiMethodEnd is the completion protocol of a multiactive invocation:
// release the frame's group claim, then check the ready queues for parked
// work the completion unblocked — the multiactive analogue of the serial
// method-end message-queue check.
func (n *NodeRT) multiMethodEnd(obj *Object, f *Frame) {
	obj.multi.end(obj.class.queueIndex(f.Pattern))
	n.charge(n.cost.CheckMsgQueue)
	n.multiReschedule(obj)
}

// multiReschedule re-enqueues a multiactive object when it still holds
// dispatchable work: a deferred continuation (each dispatch resumes only
// the oldest, and the enqueue that parked a later one deduped against the
// queued object), a pre-initialization frame in the serial queue, or a
// parked ready frame whose group can now start.
func (n *NodeRT) multiReschedule(obj *Object) {
	ms := obj.multi
	if len(ms.resume) > 0 || !obj.queue.empty() || (ms.readyN > 0 && ms.anyStartable(obj.class)) {
		n.enqueueSched(obj)
	}
}

// deferResume parks a saved continuation for scheduling-queue resumption.
// Serial objects use the single resumeK slot (at most one live invocation);
// a multiactive object may defer several continuations at once, so they
// queue FIFO in its multi state.
func (n *NodeRT) deferResume(obj *Object, frame *Frame, k func(*Ctx)) {
	if obj.multi != nil {
		obj.multi.resume = append(obj.multi.resume, savedCont{k: k, frame: frame})
	} else {
		obj.resumeK = k
		obj.resumeF = frame
	}
	n.enqueueSched(obj)
}

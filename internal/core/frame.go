package core

// Frame holds one message: its pattern, arguments, and (for now-type sends)
// the mail address of the reply destination object. In the paper a frame is
// allocated on the stack when a dormant object is invoked directly and on
// the heap when a message is buffered (Section 4.3); in Go the distinction
// is accounted by the cost model rather than by the allocator, but the
// lifecycle (stack invocation vs queued frame vs saved-context frame) is
// mirrored exactly.
type Frame struct {
	Pattern PatternID
	Args    []Value
	ReplyTo Address // reply destination for now-type messages; nil for past-type

	// argBuf is the inline argument store: setArgs copies small argument
	// lists here so a send's variadic slice never outlives the call and can
	// live on the sender's stack.
	argBuf [2]Value

	hints  SendHint // compile-time optimization hints of the send site
	next   *Frame   // message-queue link, reused as the free-list link
	pooled bool     // obtained from a NodeRT frame pool; recycled at method end
}

// setArgs copies args into the frame — into the inline buffer when they
// fit, a fresh slice otherwise. The copy is unconditional so the caller's
// slice provably does not escape through this call.
func (f *Frame) setArgs(args []Value) {
	switch {
	case len(args) == 0:
		f.Args = nil
	case len(args) <= len(f.argBuf):
		nc := copy(f.argBuf[:], args)
		f.Args = f.argBuf[:nc:nc]
	default:
		f.Args = append([]Value(nil), args...)
	}
}

// Arg returns the i'th argument, or Nil if out of range.
func (f *Frame) Arg(i int) Value {
	if i < 0 || i >= len(f.Args) {
		return Nil
	}
	return f.Args[i]
}

// frameQueue is the per-object message queue: a FIFO of buffered frames
// (Figure 2's "message queue" component).
type frameQueue struct {
	head, tail *Frame
	n          int
}

func (q *frameQueue) empty() bool { return q.head == nil }
func (q *frameQueue) len() int    { return q.n }

func (q *frameQueue) push(f *Frame) {
	f.next = nil
	if q.tail == nil {
		q.head, q.tail = f, f
	} else {
		q.tail.next = f
		q.tail = f
	}
	q.n++
}

func (q *frameQueue) pop() *Frame {
	f := q.head
	if f == nil {
		return nil
	}
	q.head = f.next
	if q.head == nil {
		q.tail = nil
	}
	f.next = nil
	q.n--
	return f
}

// popMatching removes and returns the first frame whose pattern satisfies
// match, or nil if none does. Used by selective reception's initial queue
// scan and by the waiting-object path of the scheduler.
func (q *frameQueue) popMatching(match func(PatternID) bool) *Frame {
	var prev *Frame
	for f := q.head; f != nil; prev, f = f, f.next {
		if match(f.Pattern) {
			if prev == nil {
				q.head = f.next
			} else {
				prev.next = f.next
			}
			if q.tail == f {
				q.tail = prev
			}
			f.next = nil
			q.n--
			return f
		}
	}
	return nil
}

// popMatchingPats is popMatching specialized to a pattern list, avoiding
// the predicate closure on the selective-reception fast path.
func (q *frameQueue) popMatchingPats(pats []PatternID) *Frame {
	var prev *Frame
	for f := q.head; f != nil; prev, f = f, f.next {
		for _, p := range pats {
			if f.Pattern != p {
				continue
			}
			if prev == nil {
				q.head = f.next
			} else {
				prev.next = f.next
			}
			if q.tail == f {
				q.tail = prev
			}
			f.next = nil
			q.n--
			return f
		}
	}
	return nil
}

// schedItem is one entry of the node-wide scheduling queue: "a pointer to
// the object which will be scheduled and a continuation address from which
// the object will restart execution" (Section 4.3). The continuation kinds
// are: dispatch the first buffered message, or resume a saved context.
type schedQueue struct {
	items []*Object
	head  int
}

func (s *schedQueue) empty() bool { return s.head >= len(s.items) }
func (s *schedQueue) len() int    { return len(s.items) - s.head }

func (s *schedQueue) push(o *Object) { s.items = append(s.items, o) }

func (s *schedQueue) pop() *Object {
	if s.empty() {
		return nil
	}
	o := s.items[s.head]
	s.items[s.head] = nil
	s.head++
	if s.head == len(s.items) {
		s.items = s.items[:0]
		s.head = 0
	} else if s.head > 64 && s.head*2 >= len(s.items) {
		n := copy(s.items, s.items[s.head:])
		for i := n; i < len(s.items); i++ {
			s.items[i] = nil
		}
		s.items = s.items[:n]
		s.head = 0
	}
	return o
}

package core

import (
	"strings"
	"testing"
)

// echoClass defines a serial responder whose req method yields once before
// replying, so a now-type send against it always blocks the caller: the
// reply arrives only after a trip through the scheduling queue. Tests use it
// to keep several invocations of a multiactive object live at once.
func echoClass(r *Runtime, req PatternID) *Class {
	cls := r.DefineClass("echo", 0, nil)
	cls.Method(req, func(ctx *Ctx) {
		v := ctx.Arg(0)
		ctx.Yield(func(ctx *Ctx) {
			ctx.Reply(v)
		})
	})
	return cls
}

func TestMultiactiveSameGroupOverlaps(t *testing.T) {
	// Three invocations of one compatibility group on one object: each
	// blocks on a now-send, and all three must be live simultaneously
	// (started immediately, none parked) — the serial scheme would run them
	// strictly one at a time.
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)
	req := r.Reg.Register("req", 1)
	kick := r.Reg.Register("kick", 0)

	echo := echoClass(r, req)
	var echoAddr, hotAddr Address
	var done []string
	maxLive := 0

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		if l := ctx.SelfObject().LiveInvocations(); l > maxLive {
			maxLive = l
		}
		ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) {
			done = append(done, "get")
		})
	})
	hot.Group("reads", get)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		for i := 0; i < 3; i++ {
			ctx.SendPast(hotAddr, get)
		}
	})

	echoAddr = r.NewObjectOn(0, echo)
	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)
	run(t, r)

	if len(done) != 3 {
		t.Fatalf("completions = %v, want 3 gets", done)
	}
	if maxLive != 3 {
		t.Errorf("max live invocations = %d, want 3 (reads must overlap)", maxLive)
	}
	c := r.TotalStats()
	if c.MultiImmediate != 3 || c.MultiParked != 0 {
		t.Errorf("immediate/parked = %d/%d, want 3/0", c.MultiImmediate, c.MultiParked)
	}
	if c.LocalToMulti != 3 {
		t.Errorf("LocalToMulti = %d, want 3", c.LocalToMulti)
	}
	if hotAddr.Obj.LiveInvocations() != 0 || hotAddr.Obj.ReadyLen() != 0 {
		t.Errorf("quiescent object has live=%d ready=%d",
			hotAddr.Obj.LiveInvocations(), hotAddr.Obj.ReadyLen())
	}
	if hotAddr.Obj.Mode() != ModeMultiactive {
		t.Errorf("mode = %v, want multiactive", hotAddr.Obj.Mode())
	}
}

func TestMultiactiveConflictingGroupsSerialize(t *testing.T) {
	// get/get overlap (same group) but put conflicts with them: it must park
	// until every read has completed, then dispatch through the scheduler.
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)
	put := r.Reg.Register("put", 0)
	req := r.Reg.Register("req", 1)
	kick := r.Reg.Register("kick", 0)

	echo := echoClass(r, req)
	var echoAddr, hotAddr Address
	var log []string

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) {
			log = append(log, "get")
		})
	})
	hot.Method(put, func(ctx *Ctx) {
		log = append(log, "put")
	})
	hot.Group("reads", get).Group("writes", put)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(hotAddr, get)
		ctx.SendPast(hotAddr, put) // conflicts with the live read: parks
		ctx.SendPast(hotAddr, get) // compatible with the live read: starts
	})

	echoAddr = r.NewObjectOn(0, echo)
	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)
	run(t, r)

	if got := strings.Join(log, ","); got != "get,get,put" {
		t.Fatalf("completion order = %q, want \"get,get,put\"", got)
	}
	c := r.TotalStats()
	if c.MultiImmediate != 2 || c.MultiParked != 1 || c.MultiDispatches != 1 {
		t.Errorf("immediate/parked/dispatched = %d/%d/%d, want 2/1/1",
			c.MultiImmediate, c.MultiParked, c.MultiDispatches)
	}
}

func TestMultiactiveUngroupedIsExclusive(t *testing.T) {
	// A method left out of every group conflicts with everything, including
	// other invocations of itself.
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)
	audit := r.Reg.Register("audit", 0)
	req := r.Reg.Register("req", 1)
	kick := r.Reg.Register("kick", 0)

	echo := echoClass(r, req)
	var echoAddr, hotAddr Address
	var log []string

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) {
			log = append(log, "get")
		})
	})
	hot.Method(audit, func(ctx *Ctx) {
		if ctx.SelfObject().LiveInvocations() != 1 {
			t.Errorf("audit ran with %d live invocations, want 1 (exclusive)",
				ctx.SelfObject().LiveInvocations())
		}
		log = append(log, "audit")
	})
	hot.Group("reads", get)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(hotAddr, get)
		ctx.SendPast(hotAddr, audit)
		ctx.SendPast(hotAddr, audit)
	})

	echoAddr = r.NewObjectOn(0, echo)
	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)
	run(t, r)

	if got := strings.Join(log, ","); got != "get,audit,audit" {
		t.Fatalf("completion order = %q, want \"get,audit,audit\"", got)
	}
}

func TestMultiactivePriorityAndReorderBound(t *testing.T) {
	// Park two frames in each of two groups behind a live exclusive
	// invocation. Under strict priority the high-priority group drains
	// first; with ReorderBound(1) the dispatcher must alternate, because the
	// low-priority queue may be passed over at most once.
	runOrder := func(t *testing.T, bound int) string {
		t.Helper()
		r := newTestRT(t, Options{})
		ma := r.Reg.Register("ma", 0)
		mb := r.Reg.Register("mb", 0)
		me := r.Reg.Register("me", 0)
		req := r.Reg.Register("req", 1)
		kick := r.Reg.Register("kick", 0)

		echo := echoClass(r, req)
		var echoAddr, hotAddr Address
		var log []string

		hot := r.DefineClass("hot", 0, nil)
		hot.Method(ma, func(ctx *Ctx) { log = append(log, "a") })
		hot.Method(mb, func(ctx *Ctx) { log = append(log, "b") })
		hot.Method(me, func(ctx *Ctx) {
			// Exclusive: holds the object while the driver parks work.
			ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) {})
		})
		hot.Group("a", ma).Group("b", mb).Priority("b", 5).ReorderBound(bound)

		driver := r.DefineClass("driver", 0, nil)
		driver.Method(kick, func(ctx *Ctx) {
			ctx.SendPast(hotAddr, me)
			ctx.SendPast(hotAddr, ma)
			ctx.SendPast(hotAddr, ma)
			ctx.SendPast(hotAddr, mb)
			ctx.SendPast(hotAddr, mb)
		})

		echoAddr = r.NewObjectOn(0, echo)
		hotAddr = r.NewObjectOn(0, hot)
		d := r.NewObjectOn(0, driver)
		r.Inject(d, kick)
		run(t, r)
		if bound > 0 && r.TotalStats().MultiOvertakes == 0 {
			t.Error("reorder bound set but no overtakes recorded")
		}
		return strings.Join(log, ",")
	}

	if got := runOrder(t, 0); got != "b,b,a,a" {
		t.Errorf("strict priority order = %q, want \"b,b,a,a\"", got)
	}
	if got := runOrder(t, 1); got != "b,a,b,a" {
		t.Errorf("bounded-reorder order = %q, want \"b,a,b,a\"", got)
	}
}

func TestMultiactiveNaivePolicy(t *testing.T) {
	// Under the naive baseline every multiactive delivery parks first, but
	// compatible invocations must still overlap once dispatched.
	r := newTestRT(t, Options{PolicyNaive, 0, nil, nil})
	get := r.Reg.Register("get", 0)
	req := r.Reg.Register("req", 1)
	kick := r.Reg.Register("kick", 0)

	echo := echoClass(r, req)
	var echoAddr, hotAddr Address
	maxLive, done := 0, 0

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		if l := ctx.SelfObject().LiveInvocations(); l > maxLive {
			maxLive = l
		}
		ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) { done++ })
	})
	hot.Group("reads", get)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		for i := 0; i < 3; i++ {
			ctx.SendPast(hotAddr, get)
		}
	})

	echoAddr = r.NewObjectOn(0, echo)
	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)
	run(t, r)

	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if maxLive != 3 {
		t.Errorf("max live = %d, want 3", maxLive)
	}
	c := r.TotalStats()
	if c.MultiParked != 3 || c.MultiDispatches != 3 {
		t.Errorf("parked/dispatched = %d/%d, want 3/3", c.MultiParked, c.MultiDispatches)
	}
}

func TestMultiactiveLazyInitDrainsIntoGroups(t *testing.T) {
	// A multiactive class with a lazy initializer starts in need-init mode;
	// the first message initializes state and dispatches through the
	// multiactive table, and buffered pre-init frames drain correctly.
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)
	kick := r.Reg.Register("kick", 0)

	var hotAddr Address
	var got []int
	hot := r.DefineClass("hot", 1, func(ic *InitCtx) {
		ic.SetState(0, IntV(41))
	})
	hot.Method(get, func(ctx *Ctx) {
		got = append(got, int(ctx.State(0).Int()))
	})
	hot.Group("reads", get)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(hotAddr, get)
		ctx.SendPast(hotAddr, get)
	})

	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	if hotAddr.Obj.Mode() != ModeNeedInit {
		t.Fatalf("pre-first-message mode = %v, want needinit", hotAddr.Obj.Mode())
	}
	r.Inject(d, kick)
	run(t, r)

	if len(got) != 2 || got[0] != 41 || got[1] != 41 {
		t.Fatalf("reads = %v, want [41 41]", got)
	}
	if hotAddr.Obj.Mode() != ModeMultiactive {
		t.Errorf("post-init mode = %v, want multiactive", hotAddr.Obj.Mode())
	}
}

func TestMultiactiveWaitForPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)
	kick := r.Reg.Register("kick", 0)

	var hotAddr Address
	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {}, kick)
	})
	hot.Group("reads", get)

	hotAddr = r.NewObjectOn(0, hot)
	r.Inject(hotAddr, get)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("WaitFor on a multiactive object must panic")
		}
		if !strings.Contains(p.(string), "selective reception") {
			t.Fatalf("panic = %v, want selective-reception message", p)
		}
	}()
	run(t, r)
}

func TestGroupDefinitionErrors(t *testing.T) {
	mustPanic := func(t *testing.T, want string, fn func()) {
		t.Helper()
		defer func() {
			p := recover()
			if p == nil {
				t.Fatalf("no panic, want one containing %q", want)
			}
			if s, ok := p.(string); !ok || !strings.Contains(s, want) {
				t.Fatalf("panic = %v, want message containing %q", p, want)
			}
		}()
		fn()
	}

	t.Run("overlap", func(t *testing.T) {
		r := newTestRT(t, Options{})
		get := r.Reg.Register("get", 0)
		cls := r.DefineClass("c", 0, nil).Method(get, func(ctx *Ctx) {})
		cls.Group("a", get)
		mustPanic(t, "overlapping groups", func() { cls.Group("b", get) })
	})
	t.Run("duplicate-name", func(t *testing.T) {
		r := newTestRT(t, Options{})
		get := r.Reg.Register("get", 0)
		put := r.Reg.Register("put", 0)
		cls := r.DefineClass("c", 0, nil).
			Method(get, func(ctx *Ctx) {}).
			Method(put, func(ctx *Ctx) {})
		cls.Group("a", get)
		mustPanic(t, "duplicate group", func() { cls.Group("a", put) })
	})
	t.Run("empty", func(t *testing.T) {
		r := newTestRT(t, Options{})
		cls := r.DefineClass("c", 0, nil)
		mustPanic(t, "declares no patterns", func() { cls.Group("a") })
	})
	t.Run("unknown-pattern-at-freeze", func(t *testing.T) {
		// A group over a pattern with no method is a definition error caught
		// when the tables are generated.
		r := newTestRT(t, Options{})
		get := r.Reg.Register("get", 0)
		ghost := r.Reg.Register("ghost", 0)
		r.DefineClass("c", 0, nil).
			Method(get, func(ctx *Ctx) {}).
			Group("a", get, ghost)
		mustPanic(t, "no method", func() { r.Freeze() })
	})
	t.Run("priority-before-group", func(t *testing.T) {
		r := newTestRT(t, Options{})
		cls := r.DefineClass("c", 0, nil)
		mustPanic(t, "before Group", func() { cls.Priority("a", 1) })
	})
	t.Run("negative-bound", func(t *testing.T) {
		r := newTestRT(t, Options{})
		cls := r.DefineClass("c", 0, nil)
		mustPanic(t, "negative reorder bound", func() { cls.ReorderBound(-1) })
	})
	t.Run("group-after-freeze", func(t *testing.T) {
		r := newTestRT(t, Options{})
		get := r.Reg.Register("get", 0)
		cls := r.DefineClass("c", 0, nil).Method(get, func(ctx *Ctx) {})
		r.Freeze()
		mustPanic(t, "after freeze", func() { cls.Group("a", get) })
	})
}

func TestMultiactiveSnapshotRestoresMidGroup(t *testing.T) {
	// Capture a node while a multiactive object has a live blocked
	// invocation and a parked conflicting frame; restoring must bring back
	// the live counts and ready queues, and the computation must finish
	// identically after a rollback.
	r := newTestRT(t, Options{})
	r.EnableSnapshots()
	get := r.Reg.Register("get", 0)
	put := r.Reg.Register("put", 0)
	req := r.Reg.Register("req", 1)
	kick := r.Reg.Register("kick", 0)

	echo := echoClass(r, req)
	var echoAddr, hotAddr Address
	var log []string

	hot := r.DefineClass("hot", 0, nil)
	hot.Method(get, func(ctx *Ctx) {
		ctx.SendNow(echoAddr, req, []Value{IntV(1)}, func(ctx *Ctx, v Value) {
			log = append(log, "get")
		})
	})
	hot.Method(put, func(ctx *Ctx) { log = append(log, "put") })
	hot.Group("reads", get).Group("writes", put)

	driver := r.DefineClass("driver", 0, nil)
	driver.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(hotAddr, get)
		ctx.SendPast(hotAddr, put)
	})

	echoAddr = r.NewObjectOn(0, echo)
	hotAddr = r.NewObjectOn(0, hot)
	d := r.NewObjectOn(0, driver)
	r.Inject(d, kick)

	// Step the node until the read is live (blocked on echo) and the write
	// is parked, then capture.
	n := r.NodeRT(0)
	r.Freeze()
	for hotAddr.Obj.LiveInvocations() != 1 || hotAddr.Obj.ReadyLen() != 1 {
		if !n.Step() && hotAddr.Obj.LiveInvocations() != 1 {
			t.Fatal("never reached the mid-group state")
		}
	}
	img := r.CaptureNode(0, nil)

	// Let the run finish, then roll back and finish again.
	run(t, r)
	first := strings.Join(log, ",")
	if first != "get,put" {
		t.Fatalf("first completion order = %q, want \"get,put\"", first)
	}

	log = nil
	r.RestoreNode(img, nil)
	r.M.Node(0).Wake()
	if hotAddr.Obj.LiveInvocations() != 1 || hotAddr.Obj.ReadyLen() != 1 {
		t.Fatalf("restored live=%d ready=%d, want 1/1",
			hotAddr.Obj.LiveInvocations(), hotAddr.Obj.ReadyLen())
	}
	run(t, r)
	if got := strings.Join(log, ","); got != first {
		t.Fatalf("replayed completion order = %q, want %q", got, first)
	}
}

package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Policy selects the intra-node scheduling strategy.
type Policy uint8

const (
	// PolicyStackBased is the paper's integrated stack/queue scheduler
	// (Section 4.1): messages to dormant objects run immediately on the
	// sender's stack; only messages to non-dormant objects are buffered.
	PolicyStackBased Policy = iota
	// PolicyNaive is the baseline of Section 6.3: every message is buffered
	// in the receiver's message queue and the receiver is scheduled through
	// the node scheduling queue.
	PolicyNaive
)

func (p Policy) String() string {
	if p == PolicyNaive {
		return "naive"
	}
	return "stack"
}

// Remote is the hook the inter-node layer (package remote) installs into the
// core runtime. The core calls SendMessage when a locality check fails and
// Create for placement-policy-driven object creation.
type Remote interface {
	// SendMessage transmits a message to an object on another node. The
	// args slice is only valid for the duration of the call — the core
	// stages it in a reusable scratch buffer — so the implementation must
	// copy anything it keeps.
	SendMessage(n *NodeRT, to Address, p PatternID, args []Value, replyTo Address)
	// Create creates an object on a node chosen by the placement policy and
	// passes its mail address to k. The fast path (chunk stock hit) calls k
	// immediately on the caller's stack; the slow path blocks the calling
	// object until a chunk arrives.
	Create(ctx *Ctx, cl *Class, ctorArgs []Value, k func(*Ctx, Address))
}

// Options configures a Runtime.
type Options struct {
	Policy Policy
	// MaxStackDepth bounds nested stack-based invocations; beyond it the
	// runtime preempts to the scheduling queue (the paper's preemption on
	// deep recursion). Zero means the default of 64.
	MaxStackDepth int
	// Trace, when non-nil, receives runtime events (sends, invocations,
	// blocks, scheduling). Supported on the discrete-event engine only; the
	// bundled sinks are not safe for concurrent nodes.
	Trace trace.Sink
	// Prof, when non-nil, receives per-path cost attribution for every
	// simulated charge. Like Trace it only observes; enabling it changes no
	// virtual-time results.
	Prof *profile.Profiler
}

// Runtime is the ABCL language runtime spanning all nodes of a machine.
type Runtime struct {
	M   *machine.Machine
	Reg *Registry

	nodes   []*NodeRT
	classes []*Class

	policy        Policy
	maxStackDepth int
	remote        Remote
	frozen        bool
	prof          *profile.Profiler

	// PatReply is the reserved pattern carrying now-type replies.
	PatReply PatternID

	// pending holds objects created before freeze, awaiting their tables.
	pending []*Object

	replyVFT   *VFT // native table for reply destination objects
	faultVFT   *VFT // generic fault table for uninitialized chunks
	forwardVFT *VFT // forwarder table for migrated objects

	// optim is the optimistic-execution (Time Warp) mode state; see
	// optimistic.go.
	optim optRuntimeState
}

// NewRuntime builds a runtime over the discrete-event machine m. Classes
// and patterns must be defined before the first Run (which freezes the
// runtime).
func NewRuntime(m *machine.Machine, opt Options) *Runtime {
	nodes := make([]ExecNode, m.Nodes())
	for i := range nodes {
		nodes[i] = m.Node(i)
	}
	r := NewRuntimeOn(nodes, &m.Cfg.Cost, opt)
	r.M = m
	for i := range nodes {
		m.Node(i).Runner = r.nodes[i]
		r.nodes[i].mn = m.Node(i)
	}
	return r
}

// NewRuntimeOn builds a runtime over custom execution nodes (used by the
// real-parallel driver). The caller is responsible for driving each NodeRT's
// Step loop; Run is unavailable on such runtimes.
func NewRuntimeOn(nodes []ExecNode, cost *machine.Cost, opt Options) *Runtime {
	if opt.MaxStackDepth <= 0 {
		opt.MaxStackDepth = 64
	}
	r := &Runtime{
		Reg:           NewRegistry(),
		policy:        opt.Policy,
		maxStackDepth: opt.MaxStackDepth,
		remote:        defaultRemote{},
	}
	r.PatReply = r.Reg.Register("reply:", 1)
	r.prof = opt.Prof
	r.nodes = make([]*NodeRT, len(nodes))
	for i := range r.nodes {
		r.nodes[i] = &NodeRT{rt: r, id: i, node: nodes[i], cost: cost, tr: opt.Trace}
		if opt.Prof != nil {
			r.nodes[i].prof = opt.Prof.Node(i)
		}
	}
	return r
}

// Profiler returns the attached cost-attribution profiler (nil when
// profiling is off).
func (r *Runtime) Profiler() *profile.Profiler { return r.prof }

// DefineClass registers a new class. stateSize is the number of state
// variables; init (optional) is the lazy initializer run on first message.
func (r *Runtime) DefineClass(name string, stateSize int, init InitFunc) *Class {
	if r.frozen {
		panic(fmt.Sprintf("core: class %s defined after freeze", name))
	}
	if stateSize < 0 {
		panic(fmt.Sprintf("core: class %s has negative state size", name))
	}
	c := &Class{
		Name:      name,
		StateSize: stateSize,
		Init:      init,
		rt:        r,
		id:        len(r.classes),
		defs:      make(map[PatternID]MethodFunc),
	}
	r.classes = append(r.classes, c)
	return c
}

// SetRemote installs the inter-node layer. Must be called before freeze.
func (r *Runtime) SetRemote(rem Remote) {
	if r.frozen {
		panic("core: SetRemote after freeze")
	}
	r.remote = rem
}

// RemoteLayer returns the installed remote layer.
func (r *Runtime) RemoteLayer() Remote { return r.remote }

// Policy returns the active scheduling policy.
func (r *Runtime) Policy() Policy { return r.policy }

// MaxStackDepth returns the preemption depth bound.
func (r *Runtime) MaxStackDepth() int { return r.maxStackDepth }

// Freeze fixes the pattern set and generates all virtual function tables
// (the runtime's analogue of compilation). Idempotent.
func (r *Runtime) Freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	r.Reg.Freeze()
	npat := r.Reg.Count()
	for _, c := range r.classes {
		c.buildTables(npat)
		if r.prof != nil {
			r.prof.RegisterClass(c.id, c.Name)
			if c.Multiactive() {
				for gi := range c.groups {
					c.groups[gi].profID = r.prof.RegisterGroup(c.Name, c.groups[gi].name)
				}
				c.exclusiveProf = r.prof.RegisterGroup(c.Name, "(exclusive)")
			}
		}
	}
	// Native table for reply destinations: only reply: is understood.
	r.replyVFT = &VFT{Mode: ModeDormant, entries: make([]entry, npat)}
	r.replyVFT.entries[r.PatReply] = entry{entryNative, replyEntry}
	// The class-independent generic fault table (Section 5.2): every entry
	// is a queuing procedure, forcing messages to uninitialized objects to
	// be buffered.
	r.faultVFT = &VFT{Mode: ModeUninit, entries: make([]entry, npat)}
	for p := range r.faultVFT.entries {
		r.faultVFT.entries[p] = entry{entryFault, faultEntry}
	}
	// Forwarder table for migrated objects: every entry re-sends to the
	// object's new home.
	r.forwardVFT = &VFT{Mode: ModeDormant, entries: make([]entry, npat)}
	for p := range r.forwardVFT.entries {
		r.forwardVFT.entries[p] = entry{entryForward, forwardEntry}
	}
	// Objects created during setup get their tables now.
	for _, obj := range r.pending {
		assignInitialVFT(obj)
	}
	r.pending = nil
}

// assignInitialVFT points a fresh object at its class's initial table and
// allocates the multiactive scheduling state when the class declares groups.
func assignInitialVFT(obj *Object) {
	cl := obj.class
	if cl.multiTable != nil && obj.multi == nil {
		obj.multi = newMultiState(cl)
	}
	switch {
	case cl.Init != nil:
		obj.vftp = cl.initTable
	case cl.multiTable != nil:
		obj.vftp = cl.multiTable
	default:
		obj.vftp = cl.dormant
	}
}

// Frozen reports whether Freeze has run.
func (r *Runtime) Frozen() bool { return r.frozen }

// NodeRT returns the per-node runtime for node id.
func (r *Runtime) NodeRT(id int) *NodeRT { return r.nodes[id] }

// Nodes returns the node count.
func (r *Runtime) Nodes() int { return len(r.nodes) }

// Run freezes the runtime and drives the machine to quiescence.
func (r *Runtime) Run() error {
	r.Freeze()
	return r.M.Run()
}

// TotalStats aggregates counters across all nodes.
func (r *Runtime) TotalStats() stats.Counters {
	var t stats.Counters
	for _, n := range r.nodes {
		t.Add(&n.C)
	}
	return t
}

// newObject allocates an object of class cl on node. The object starts in
// need-init mode when the class has an initializer, dormant otherwise.
// Before freeze the table pointer is deferred (tables do not exist yet);
// Freeze fills it in.
func (r *Runtime) newObject(cl *Class, node int, ctorArgs []Value) *Object {
	n := r.nodes[node]
	obj := &Object{class: cl, node: node, ctorArgs: n.copyCtorArgs(ctorArgs)}
	if cl.StateSize > 0 {
		obj.state = n.allocState(cl.StateSize)
	}
	if r.frozen {
		assignInitialVFT(obj)
	} else {
		r.pending = append(r.pending, obj)
	}
	r.trackObject(node, obj)
	return obj
}

// NewObjectOn creates an object on a node from outside any method — the
// host-side bootstrap used to set up a computation. Unlike Ctx.Create it
// does not model creation-protocol costs beyond the local creation charge.
func (r *Runtime) NewObjectOn(node int, cl *Class, ctorArgs ...Value) Address {
	n := r.nodes[node]
	n.curPath = profile.Create
	n.charge(n.cost.CreateLocal)
	if n.prof != nil {
		n.prof.CountEvent(profile.Create, n.node.Now())
	}
	n.C.LocalCreations++
	return r.newObject(cl, node, ctorArgs).Addr()
}

// NewFaultChunk allocates an uninitialized chunk on a node: class-less, with
// the generic fault table installed, ready to buffer early messages. Used by
// the remote-creation protocol.
func (r *Runtime) NewFaultChunk(node int) *Object {
	r.Freeze()
	obj := &Object{node: node, vftp: r.faultVFT}
	r.trackObject(node, obj)
	return obj
}

// InitChunk performs the class-specific initialization of a chunk on the
// target node (category-2 handler body): the chunk gets its class, state and
// proper virtual function table, and is scheduled if early messages were
// buffered by the fault table.
func (r *Runtime) InitChunk(n *NodeRT, obj *Object, cl *Class, ctorArgs []Value) {
	if obj.node != n.id {
		panic("core: InitChunk on wrong node")
	}
	if obj.class != nil {
		panic("core: InitChunk on already-initialized object")
	}
	obj.class = cl
	obj.ctorArgs = n.copyCtorArgs(ctorArgs)
	if cl.StateSize > 0 {
		obj.state = n.allocState(cl.StateSize)
	}
	assignInitialVFT(obj)
	if !obj.queue.empty() {
		n.enqueueSched(obj)
	}
}

// Inject delivers a message from outside the object world (the host driver).
// The message is buffered and scheduled rather than stack-invoked, since
// there is no sending object. The runtime is frozen on first use.
func (r *Runtime) Inject(to Address, p PatternID, args ...Value) {
	r.Freeze()
	if to.IsNil() {
		panic("core: Inject to nil address")
	}
	n := r.nodes[to.Node]
	f := &Frame{Pattern: p, Args: args}
	obj := to.Obj
	e := obj.vftp.lookup(p)
	if e.fn == nil {
		panic(n.notUnderstood(obj, p))
	}
	if e.kind == entryMulti {
		qi := obj.class.queueIndex(p)
		obj.multi.buffer(qi, f)
		if obj.multi.canStart(qi) {
			n.enqueueSched(obj)
		}
		n.node.Wake()
		return
	}
	obj.queue.push(f)
	if n.frameDispatchable(obj, e.kind) {
		n.enqueueSched(obj)
	}
	n.node.Wake()
}

// defaultRemote is installed when no inter-node layer is present: creation
// is local and remote sends are a configuration error.
type defaultRemote struct{}

func (defaultRemote) SendMessage(n *NodeRT, to Address, p PatternID, args []Value, replyTo Address) {
	panic(fmt.Sprintf("core: message to remote node %d but no remote layer installed", to.Node))
}

func (defaultRemote) Create(ctx *Ctx, cl *Class, ctorArgs []Value, k func(*Ctx, Address)) {
	k(ctx, ctx.NewLocal(cl, ctorArgs...))
}

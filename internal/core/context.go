package core

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
)

// Ctx is the execution context of one method invocation (or restored
// continuation). Method bodies receive a Ctx and perform the five basic
// actions of Section 2.2 through it: message sends (past and now type),
// object creation, state access, selective reception, and computation
// (modelled by Charge).
//
// Operations that may block take an explicit continuation; after a blocking
// operation the method body must return without performing further actions
// (the runtime enforces this).
type Ctx struct {
	rt      *NodeRT
	self    *Object
	f       *Frame
	blocked bool
	acted   bool // any send/create/block occurred (validates HintLeafMethod)
}

// Self returns the mail address of the executing object.
func (c *Ctx) Self() Address { return c.self.Addr() }

// NodeID returns the node the method is executing on.
func (c *Ctx) NodeID() int { return c.rt.id }

// Nodes returns the machine's node count.
func (c *Ctx) Nodes() int { return c.rt.rt.Nodes() }

// Now returns the node's current virtual time.
func (c *Ctx) Now() sim.Time { return c.rt.node.Now() }

// Pattern returns the pattern of the message being processed.
func (c *Ctx) Pattern() PatternID { return c.f.Pattern }

// Arg returns the i'th message argument (Nil when out of range).
func (c *Ctx) Arg(i int) Value { return c.f.Arg(i) }

// NumArgs returns the message's argument count.
func (c *Ctx) NumArgs() int { return len(c.f.Args) }

// State reads state variable i.
func (c *Ctx) State(i int) Value { return c.self.state[i] }

// SetState writes state variable i.
func (c *Ctx) SetState(i int, v Value) { c.self.state[i] = v }

// Charge models computation: it advances the node clock by instr
// instructions (standard operations, Section 2.2 item 5).
func (c *Ctx) Charge(instr int) {
	c.checkLive("Charge")
	n := c.rt
	prev := n.curPath
	n.curPath = profile.Body
	n.charge(instr)
	n.curPath = prev
	if n.prof != nil && c.self.class != nil {
		n.prof.ClassInstr(c.self.class.id, instr)
	}
}

// SendPast sends an asynchronous no-wait message ([Target <= Msg]).
func (c *Ctx) SendPast(to Address, p PatternID, args ...Value) {
	c.checkLive("SendPast")
	c.acted = true
	c.rt.Send(to, p, args, NilAddress)
}

// SendWithReply sends a message carrying an explicit reply destination.
// This is how reply destinations are passed to other objects so that
// "reply messages are not necessarily sent by the original receiver"
// (Section 2.2) — delegation of the reply.
func (c *Ctx) SendWithReply(to Address, p PatternID, args []Value, replyTo Address) {
	c.checkLive("SendWithReply")
	c.acted = true
	c.rt.Send(to, p, args, replyTo)
}

// ReplyTo returns the reply destination of the message being processed
// (nil address for past-type messages). It is a first-class address.
func (c *Ctx) ReplyTo() Address { return c.f.ReplyTo }

// Reply sends v to the current message's reply destination. For past-type
// messages (no destination) it is a no-op.
func (c *Ctx) Reply(v Value) {
	c.checkLive("Reply")
	c.acted = true
	if c.f.ReplyTo.IsNil() {
		return
	}
	c.rt.Send(c.f.ReplyTo, c.rt.rt.PatReply, []Value{v}, NilAddress)
}

// SendNow sends an asynchronous message and waits for the reply
// ([Target <== Msg]). A reply destination object is created and its address
// travels with the message. After the send, the reply destination is
// checked: if the reply has already arrived — the usual case for intra-node
// sends under stack-based scheduling — k continues immediately on the
// current stack with no unwinding. Otherwise the context is saved into a
// heap frame and the object blocks until the reply destination resumes it.
func (c *Ctx) SendNow(to Address, p PatternID, args []Value, k func(*Ctx, Value)) {
	c.checkLive("SendNow")
	c.acted = true
	n := c.rt
	prev := n.curPath
	n.curPath = profile.NowBlocked
	n.charge(n.cost.ReplyDestAlloc)
	if n.prof != nil {
		n.prof.CountEvent(profile.NowBlocked, n.node.Now())
	}
	rd := n.newReplyDest()
	n.Send(to, p, args, rd.Addr())
	// The nested dispatch above may have overwritten the register.
	n.curPath = profile.NowBlocked
	n.charge(n.cost.ReplyCheck)
	st := rd.rd
	if st.arrived && !st.consumed {
		st.consumed = true
		n.C.NowFastPath++
		n.curPath = prev
		k(c, st.value)
		return
	}
	n.C.NowBlocked++
	n.C.HeapFrames++
	n.charge(n.cost.SaveContext)
	st.waiterObj = c.self
	st.waiterK = k
	st.waiterF = c.f
	c.blocked = true
	n.curPath = prev
}

// WaitFor is selective message reception: the object waits for the first
// message matching one of the awaited patterns and continues with k. The
// message queue is scanned first; if an awaited message is already buffered
// the object does not block. Otherwise the context is saved, the VFTP is
// switched to the waiting-mode table whose awaited entries restore the
// context, and the method returns.
func (c *Ctx) WaitFor(k func(*Ctx, *Frame), pats ...PatternID) {
	c.checkLive("WaitFor")
	c.acted = true
	if len(pats) == 0 {
		panic("core: WaitFor with empty pattern set")
	}
	if c.self.multi != nil {
		// Selective reception relies on the serial message queue and the
		// waiting-mode table switch; a multiactive object has neither.
		panic(fmt.Sprintf("core: WaitFor on multiactive class %s: selective reception requires serial semantics",
			c.self.class.Name))
	}
	n := c.rt
	prev := n.curPath
	n.curPath = profile.Restore
	n.charge(n.cost.CheckMsgQueue)
	if f := c.self.queue.popMatchingPats(pats); f != nil {
		n.C.WaitFast++
		n.curPath = prev
		k(c, f)
		return
	}
	n.C.WaitBlocked++
	n.C.HeapFrames++
	n.charge(n.cost.SaveContext + n.cost.SwitchVFTPWait)
	ws := &waitState{pats: pats, k: k, frame: c.f}
	c.self.wait = ws
	c.self.vftp = c.self.class.waitingVFT(pats)
	c.blocked = true
	n.curPath = prev
}

// NewLocal creates an object of class cl on this node (local create,
// Section 2.5). State variables are initialized lazily on first message.
func (c *Ctx) NewLocal(cl *Class, ctorArgs ...Value) Address {
	c.checkLive("NewLocal")
	c.acted = true
	n := c.rt
	prev := n.curPath
	n.curPath = profile.Create
	n.charge(n.cost.CreateLocal)
	if n.prof != nil {
		n.prof.CountEvent(profile.Create, n.node.Now())
	}
	n.C.LocalCreations++
	n.curPath = prev
	return n.rt.newObject(cl, n.id, ctorArgs).Addr()
}

// Create creates an object on a node chosen by the system's placement
// policy (remote create, Section 2.5) and continues with its mail address.
// With the chunk-stock scheme the address is obtained locally and k runs
// immediately; only when the stock is empty does the object block.
func (c *Ctx) Create(cl *Class, ctorArgs []Value, k func(*Ctx, Address)) {
	c.checkLive("Create")
	c.acted = true
	c.rt.rt.remote.Create(c, cl, ctorArgs, k)
}

// Yield voluntarily preempts the object: the continuation is saved into a
// heap frame and the object is enqueued on the scheduling queue, preventing
// monopolization of the node during long loops (Section 4.3).
func (c *Ctx) Yield(k func(*Ctx)) {
	c.checkLive("Yield")
	c.acted = true
	n := c.rt
	n.C.Preemptions++
	n.C.HeapFrames++
	n.curPath = profile.Sched
	n.charge(n.cost.SaveContext)
	n.deferResume(c.self, c.f, k)
	c.blocked = true
}

// Blocked reports whether the context has performed a blocking operation.
func (c *Ctx) Blocked() bool { return c.blocked }

func (c *Ctx) checkLive(op string) {
	if c.blocked {
		panic(fmt.Sprintf("core: %s after the method blocked; blocking operations must be the last action", op))
	}
}

// block marks the context blocked on behalf of runtime-internal operations
// (used by the remote layer's slow creation path).
func (c *Ctx) block() { c.blocked = true }

// NodeRT exposes the per-node runtime to sibling runtime packages
// (internal/remote); applications should not need it.
func (c *Ctx) NodeRT() *NodeRT { return c.rt }

// SelfObject exposes the executing object to sibling runtime packages.
func (c *Ctx) SelfObject() *Object { return c.self }

// CurrentFrame exposes the invocation frame to sibling runtime packages.
func (c *Ctx) CurrentFrame() *Frame { return c.f }

// BlockExternal marks the context blocked; the caller (the remote layer)
// takes responsibility for resuming the object via ResumeSaved.
func (c *Ctx) BlockExternal() { c.block() }

// ResumeSaved schedules a saved continuation for obj through the scheduling
// queue: the inverse of BlockExternal, used by the remote layer when a
// blocking remote allocation completes.
func (n *NodeRT) ResumeSaved(obj *Object, frame *Frame, k func(*Ctx)) {
	n.C.HeapFrames++
	n.curPath = profile.Create
	n.charge(n.cost.SaveContext)
	n.deferResume(obj, frame, k)
}

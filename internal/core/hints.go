package core

import "repro/internal/profile"

// SendHint encodes the compile-time send optimizations of Section 6.1: the
// paper notes the 25-instruction dormant path shrinks to as few as 8
// instructions ("truly comparable with virtual function call in C++") when
// the compiler can prove properties of the send site:
//
//  1. the receiver is guaranteed local (e.g. it was just created locally),
//  2. the method sends no messages and never blocks, so the VFTP switches
//     are unnecessary,
//  3. the object is not history sensitive, so the message-queue check can
//     be elided,
//  4. remote-message polling is guaranteed periodically elsewhere.
//
// Hints change only the charged cost: the runtime still performs the
// underlying bookkeeping (this is a simulator), and it *validates* hints
// that carry semantic obligations — a false HintKnownLocal or
// HintLeafMethod panics, modelling a miscompiled program.
type SendHint uint8

const (
	// HintKnownLocal elides the locality check (3 instructions). The
	// receiver must be on the sending node.
	HintKnownLocal SendHint = 1 << iota
	// HintLeafMethod elides both VFTP switches (6 instructions). The
	// invoked method must not send, create, block, or yield.
	HintLeafMethod
	// HintNoQueueCheck elides the message-queue check at method completion
	// (3 instructions) for objects the compiler knows are not history
	// sensitive.
	HintNoQueueCheck
	// HintNoPoll elides the remote-message poll (5 instructions); the
	// compiler must guarantee periodic polling elsewhere.
	HintNoPoll
)

// HintFullyOptimized combines all four optimizations: an 8-instruction
// dormant-path send (lookup+call 5, return 3).
const HintFullyOptimized = HintKnownLocal | HintLeafMethod | HintNoQueueCheck | HintNoPoll

// SendPastHinted is SendPast with compile-time optimization hints applied
// to this send site.
func (c *Ctx) SendPastHinted(to Address, p PatternID, hints SendHint, args ...Value) {
	c.checkLive("SendPastHinted")
	c.acted = true
	c.rt.sendHinted(to, p, args, NilAddress, hints)
}

// sendHinted is the hint-aware send path.
func (n *NodeRT) sendHinted(to Address, p PatternID, args []Value, replyTo Address, hints SendHint) {
	if to.IsNil() {
		panic("core: send to nil address")
	}
	if hints&HintKnownLocal != 0 {
		if to.Node != n.id {
			panic("core: HintKnownLocal violated: receiver is on another node")
		}
	} else {
		n.charge(n.cost.CheckLocality)
	}
	if to.Node != n.id {
		n.C.RemoteSends++
		n.curPath = profile.RemoteSend
		// Stage the arguments in the node's scratch buffer: the interface
		// call would otherwise force the caller's argument slice to the
		// heap. SendMessage copies before returning, so reuse is safe.
		n.sendScratch = append(n.sendScratch[:0], args...)
		n.rt.remote.SendMessage(n, to, p, n.sendScratch, replyTo)
		return
	}
	f := n.newFrame(p, args, replyTo, hints)
	n.DeliverFrame(to.Obj, f, false)
}

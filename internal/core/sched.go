package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ExecNode abstracts the processing element a NodeRT runs on: the
// discrete-event simulator's machine.Node, or a real goroutine-backed node
// in the parallel execution driver. All methods are called only from the
// node's own execution context.
type ExecNode interface {
	// Charge accounts instr instructions of computation.
	Charge(instr int)
	// Wake signals that the node has queued scheduler work.
	Wake()
	// Now returns the node's current (virtual or real) time.
	Now() sim.Time
}

// NodeRT is the per-node half of the runtime: it owns the node-wide
// scheduling queue and implements message dispatch for objects on its node.
// It is the machine.Runner for its node, so the simulator drives it one
// scheduling quantum at a time.
type NodeRT struct {
	rt   *Runtime
	id   int
	node ExecNode
	mn   *machine.Node // devirtualized node when running on the DES machine
	cost *machine.Cost

	schedQ     schedQueue
	stackDepth int
	maxDepth   int // high-water mark, for reports
	tr         trace.Sink

	// prof is the node's cost-attribution accumulator (nil when profiling is
	// off); curPath is the attribution register the dispatch boundaries set
	// and charge reads. The register is written unconditionally — a byte
	// store is cheaper than guarding it — but only read when prof != nil.
	prof    *profile.NodeProf
	curPath profile.Path

	frameFree *Frame // free list of recycled message frames (linked via next)
	ctxFree   []*Ctx // recycled invocation contexts

	// sendScratch stages outgoing remote-send arguments for the interface
	// call into the remote layer. The layer copies what it needs before
	// returning (see Remote.SendMessage), so one reusable buffer suffices
	// and the sender's variadic argument slice never escapes.
	sendScratch []Value

	// stateArena backs the state-variable slices of objects created on this
	// node. Objects are never reclaimed, so the arena only grows; carving
	// slices out of block allocations replaces one small allocation per
	// object creation with one per block.
	stateArena []Value

	// hosted lists every object homed on this node in creation order, for
	// checkpoint traversal. Populated only when snapshots are enabled
	// (track), keeping the default path untouched and parallel-run safe.
	// hostedX holds objects homed here but registered from another node's
	// lane (remote-creation stock pre-seeding under optimistic execution);
	// it is guarded by the runtime's optim.mu — see optimistic.go.
	hosted  []*Object
	hostedX []*Object
	track   bool

	C stats.Counters
}

// ID returns the node index.
func (n *NodeRT) ID() int { return n.id }

// MachineNode returns the underlying simulated node; it panics when the
// runtime is not running on the discrete-event machine.
func (n *NodeRT) MachineNode() *machine.Node { return n.node.(*machine.Node) }

// Exec returns the underlying execution node.
func (n *NodeRT) Exec() ExecNode { return n.node }

// Runtime returns the owning runtime.
func (n *NodeRT) Runtime() *Runtime { return n.rt }

// SchedQueueLen returns the current scheduling-queue length (load metric).
func (n *NodeRT) SchedQueueLen() int { return n.schedQ.len() }

// MaxObservedDepth returns the deepest stack-based invocation nesting seen.
func (n *NodeRT) MaxObservedDepth() int { return n.maxDepth }

func (n *NodeRT) charge(instr int) {
	// Devirtualized fast path: on the discrete-event machine the concrete
	// node is cached so the hot charge path avoids an interface call.
	if n.mn != nil {
		n.mn.Charge(instr)
	} else {
		n.node.Charge(instr)
	}
	if n.prof != nil {
		n.prof.ChargeInstr(n.curPath, instr, n.node.Now())
	}
}

// SetPath sets the node's attribution register and returns the previous
// value. Sibling runtime packages (remote, checkpoint) bracket their work
// with it so their charges land on the right path.
func (n *NodeRT) SetPath(p profile.Path) profile.Path {
	prev := n.curPath
	n.curPath = p
	return prev
}

// Prof returns the node's profiler accumulator (nil when profiling is off).
func (n *NodeRT) Prof() *profile.NodeProf { return n.prof }

// NewFrame returns a message frame from the node's free list (or a fresh
// one), marked for recycling when the invocation it carries completes
// without blocking. Only code running on this node may call it.
func (n *NodeRT) NewFrame(p PatternID, args []Value, replyTo Address) *Frame {
	return n.newFrame(p, args, replyTo, 0)
}

func (n *NodeRT) newFrame(p PatternID, args []Value, replyTo Address, hints SendHint) *Frame {
	if n.rt.optim.on {
		// Optimistic mode: queued frames outlive the event that created them
		// and a rollback replays deliveries against restored queues, so no
		// frame may ever be recycled and rewritten (pooled stays false).
		f := &Frame{Pattern: p, ReplyTo: replyTo, hints: hints}
		f.setArgs(args)
		return f
	}
	f := n.frameFree
	if f == nil {
		f = &Frame{}
	} else {
		n.frameFree = f.next
		f.next = nil
	}
	f.Pattern = p
	f.setArgs(args)
	f.ReplyTo = replyTo
	f.hints = hints
	f.pooled = true
	return f
}

// releaseFrame recycles a pooled frame once its invocation has fully
// completed. Frames saved by blocking paths (now-waits, selective
// reception, yields) are released only when their continuation finishes;
// frames handed to user continuations (awaited messages) are never
// recycled. Non-pooled frames (host injections, tests) are ignored.
func (n *NodeRT) releaseFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	f.pooled = false
	f.Pattern = 0
	f.Args = nil
	f.argBuf = [2]Value{} // drop any pointers held by inline arguments
	f.ReplyTo = Address{}
	f.hints = 0
	f.next = n.frameFree
	n.frameFree = f
}

// allocState carves a zeroed state-variable slice out of the node's arena.
// Every slice is capped (three-index expression), so an append through one
// can never bleed into a neighbor's storage.
func (n *NodeRT) allocState(sz int) []Value {
	if len(n.stateArena)+sz > cap(n.stateArena) {
		// Blocks double from a small seed so lightly-populated nodes waste
		// little and heavily-populated ones amortize quickly.
		blk := 2 * cap(n.stateArena)
		if blk < 64 {
			blk = 64
		}
		if blk > 4096 {
			blk = 4096
		}
		if sz > blk {
			blk = sz
		}
		n.stateArena = make([]Value, 0, blk)
	}
	off := len(n.stateArena)
	n.stateArena = n.stateArena[:off+sz]
	return n.stateArena[off : off+sz : off+sz]
}

// copyCtorArgs snapshots constructor arguments into the node arena. The
// caller's slice may be a recycled wire record or a stack-resident variadic
// list; the object must own a stable copy until its lazy init consumes it.
func (n *NodeRT) copyCtorArgs(ctorArgs []Value) []Value {
	if len(ctorArgs) == 0 {
		return nil
	}
	ca := n.allocState(len(ctorArgs))
	copy(ca, ctorArgs)
	return ca
}

// acquireCtx returns a recycled invocation context (or a fresh one) bound
// to an (object, frame) pair. Contexts whose invocation completes without
// blocking are recycled by the invoke paths; blocked contexts are dead by
// API contract (a blocking operation must be the method's last action) and
// are left to the garbage collector.
func (n *NodeRT) acquireCtx(obj *Object, f *Frame) *Ctx {
	if len(n.ctxFree) > 0 {
		c := n.ctxFree[len(n.ctxFree)-1]
		n.ctxFree = n.ctxFree[:len(n.ctxFree)-1]
		*c = Ctx{rt: n, self: obj, f: f}
		return c
	}
	return &Ctx{rt: n, self: obj, f: f}
}

func (n *NodeRT) releaseCtx(c *Ctx) {
	*c = Ctx{}
	n.ctxFree = append(n.ctxFree, c)
}

// tracef records a runtime event when tracing is enabled. The format
// arguments are only evaluated with tracing on.
func (n *NodeRT) tracef(kind trace.Kind, format string, args ...any) {
	if n.tr != nil {
		n.tr.Event(trace.Event{
			At:   n.node.Now(),
			Node: n.id,
			Kind: kind,
			What: fmt.Sprintf(format, args...),
		})
	}
}

// describe names an object for trace output.
func describe(obj *Object) string {
	if obj == nil {
		return "<nil>"
	}
	if obj.rd != nil {
		return "replydest"
	}
	if obj.class == nil {
		return "chunk"
	}
	return obj.class.Name
}

// Send performs a full message send: locality check, then either local
// dispatch through the receiver's virtual function table or hand-off to the
// inter-node layer (Section 4.2's send path).
func (n *NodeRT) Send(to Address, p PatternID, args []Value, replyTo Address) {
	n.sendHinted(to, p, args, replyTo, 0)
}

// DeliverFrame dispatches a frame addressed to a local object. remoteIn
// marks frames arriving from the network (category-1 handlers), which are
// counted separately from intra-node sends.
func (n *NodeRT) DeliverFrame(obj *Object, f *Frame, remoteIn bool) {
	if obj.node != n.id {
		panic(fmt.Sprintf("core: frame for node %d delivered on node %d", obj.node, n.id))
	}
	if n.rt.policy == PolicyNaive {
		n.naiveDeliver(obj, f, remoteIn)
		return
	}
	e := obj.vftp.lookup(f.Pattern)
	if e.fn == nil {
		panic(n.notUnderstood(obj, f.Pattern))
	}
	n.curPath = deliveryPath(e.kind, remoteIn)
	n.charge(n.cost.LookupCall)
	n.countDelivery(e.kind, remoteIn)
	if n.prof != nil {
		n.profDeliver(obj, e.kind, n.curPath)
	}
	if n.tr != nil {
		n.tracef(trace.EvSend, "%s <- %s (%v mode)", describe(obj), n.rt.Reg.Name(f.Pattern), obj.vftp.Mode)
	}
	e.fn(n, obj, f)
}

// naiveDeliver implements the baseline of Section 6.3: the frame is always
// buffered in the receiver's message queue and the receiver is scheduled
// through the node scheduling queue when it is dispatchable.
func (n *NodeRT) naiveDeliver(obj *Object, f *Frame, remoteIn bool) {
	e := obj.vftp.lookup(f.Pattern)
	if e.fn == nil {
		panic(n.notUnderstood(obj, f.Pattern))
	}
	n.curPath = deliveryPath(e.kind, remoteIn)
	n.charge(n.cost.LookupCall)
	n.countDelivery(e.kind, remoteIn)
	if n.prof != nil {
		n.profDeliver(obj, e.kind, n.curPath)
	}
	if e.kind == entryMulti {
		// Multiactive receivers buffer into their group ready queues even
		// under the naive policy; the scheduler performs the compatibility
		// check at dispatch time.
		qi := obj.class.queueIndex(f.Pattern)
		n.charge(n.cost.GroupCheck + n.cost.FrameAlloc + n.cost.StoreMessage +
			n.cost.EnqueueMsgQ)
		obj.multi.buffer(qi, f)
		n.C.MultiParked++
		if n.prof != nil {
			n.prof.GroupEvent(obj.class.profGroupID(qi), profile.GroupParked)
		}
		if obj.multi.canStart(qi) {
			n.enqueueSched(obj)
		}
		return
	}
	n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ)
	obj.queue.push(f)
	if n.frameDispatchable(obj, e.kind) {
		n.enqueueSched(obj)
	}
}

// countDelivery classifies the delivery for statistics by the entry kind the
// receiver's current table holds, i.e. by receiver mode.
func (n *NodeRT) countDelivery(k EntryKind, remoteIn bool) {
	if remoteIn {
		n.C.RemoteDelivers++
		return
	}
	switch k {
	case entryBody, entryInit:
		n.C.LocalToDormant++
	case entryQueue:
		n.C.LocalToActive++
	case entryRestore:
		n.C.LocalRestores++
	case entryMulti:
		n.C.LocalToMulti++
	case entryFault:
		// counted by faultEntry
	case entryNative:
		// reply deliveries counted by replyEntry
	}
}

// deliveryPath maps a dispatch to its attribution path by the receiver's
// current-table entry kind — i.e. by receiver mode, mirroring countDelivery.
func deliveryPath(k EntryKind, remoteIn bool) profile.Path {
	if remoteIn {
		return profile.RemoteRecv
	}
	switch k {
	case entryBody, entryInit:
		return profile.LocalDormant
	case entryQueue:
		return profile.LocalActive
	case entryRestore:
		return profile.Restore
	case entryMulti:
		return profile.Multi
	case entryNative:
		return profile.NowBlocked
	case entryFault:
		return profile.Create
	case entryForward:
		return profile.Forward
	}
	return profile.Other
}

// profDeliver records one delivery in the profiler: an event on the path and,
// when class attribution is on, a per-class mode count. Reply deliveries
// (entryNative) are not counted as events — the now-send already counted the
// round trip — so their instructions fold into the per-now-send cost.
func (n *NodeRT) profDeliver(obj *Object, k EntryKind, p profile.Path) {
	if p != profile.NowBlocked {
		n.prof.CountEvent(p, n.node.Now())
	}
	if obj.class == nil {
		return
	}
	switch k {
	case entryBody, entryInit:
		n.prof.ClassDeliver(obj.class.id, profile.DeliverDormant)
	case entryQueue:
		n.prof.ClassDeliver(obj.class.id, profile.DeliverActive)
	case entryRestore:
		n.prof.ClassDeliver(obj.class.id, profile.DeliverRestore)
	case entryMulti:
		n.prof.ClassDeliver(obj.class.id, profile.DeliverMulti)
	}
}

// frameDispatchable reports whether an object that just buffered a frame
// whose current-table entry has the given kind should be placed on the
// scheduling queue. Running objects and objects already scheduled are
// handled at method end; queue-kind receivers are blocked or parked and are
// woken by their own resume paths.
func (n *NodeRT) frameDispatchable(obj *Object, k EntryKind) bool {
	if obj.running || obj.inSchedQ {
		return false
	}
	switch k {
	case entryBody, entryInit, entryRestore, entryNative, entryForward:
		return true
	default:
		return false
	}
}

func (n *NodeRT) notUnderstood(obj *Object, p PatternID) string {
	cls := "<uninitialized>"
	if obj.class != nil {
		cls = obj.class.Name
	}
	return fmt.Sprintf("core: class %s does not understand pattern %s (node %d)",
		cls, n.rt.Reg.Name(p), n.id)
}

// Step is the machine.Runner quantum: dequeue one scheduling-queue item and
// run its continuation — either a saved context or the dispatch of the first
// buffered message (Section 4.3).
func (n *NodeRT) Step() bool {
	obj := n.schedQ.pop()
	if obj == nil {
		return false
	}
	obj.inSchedQ = false
	// Classify the dispatch for attribution by pure inspection before the
	// dequeue charge: saved continuations and waiting objects are context
	// restorations; everything else is a queued (active-mode) dispatch.
	switch {
	case obj.resumeK != nil || obj.wait != nil:
		n.curPath = profile.Restore
	case obj.multi != nil:
		if len(obj.multi.resume) > 0 {
			n.curPath = profile.Restore
		} else {
			n.curPath = profile.Multi
		}
	default:
		n.curPath = profile.LocalActive
	}
	n.charge(n.cost.DequeueDispatch)
	n.C.SchedDequeues++
	if n.tr != nil {
		n.tracef(trace.EvDispatch, "%s", describe(obj))
	}

	switch {
	case obj.resumeK != nil:
		// A preempted or yielded continuation.
		k, f := obj.resumeK, obj.resumeF
		obj.resumeK, obj.resumeF = nil, nil
		n.charge(n.cost.RestoreContext)
		n.runCont(obj, f, k)

	case obj.wait != nil:
		// A waiting object scheduled because an awaited message was
		// buffered (naive policy, or a depth-deferred restoration).
		ws := obj.wait
		f := obj.queue.popMatchingPats(ws.pats)
		if f == nil {
			break // parked again; a future awaited arrival reschedules
		}
		obj.wait = nil
		n.charge(n.cost.RestoreContext + n.cost.SwitchVFTPActive)
		obj.vftp = obj.class.active
		n.runCont(obj, ws.frame, func(ctx *Ctx) { ws.k(ctx, f) })

	default:
		f := obj.queue.pop()
		if f == nil {
			if obj.multi != nil {
				// Multiactive objects park work in their group ready queues,
				// not the serial message queue.
				n.multiDispatch(obj)
			}
			break // serial: spurious wakeup; nothing to do
		}
		e := obj.vftp.lookup(f.Pattern)
		switch e.kind {
		case entryQueue:
			// Parked active object: the scheduling item's continuation
			// invokes the method body for the buffered message directly.
			n.invokeBody(obj, f, obj.class.body(f.Pattern))
		case entryFault:
			panic("core: uninitialized chunk reached the scheduling queue")
		case entryNone:
			panic(n.notUnderstood(obj, f.Pattern))
		default:
			e.fn(n, obj, f)
			if obj.multi != nil {
				// Pre-initialization frames of a multiactive object drain
				// through the serial queue; keep draining (and pick up any
				// parked ready frames) until both are empty.
				n.multiReschedule(obj)
			}
		}
	}
	return !n.schedQ.empty()
}

// enqueueSched places obj on the node scheduling queue (once) and wakes the
// node.
func (n *NodeRT) enqueueSched(obj *Object) {
	if obj.inSchedQ {
		return
	}
	n.charge(n.cost.EnqueueSchedQ)
	obj.inSchedQ = true
	n.schedQ.push(obj)
	n.C.SchedEnqueues++
	if n.prof != nil {
		n.prof.QueueDepth(n.schedQ.len(), n.node.Now())
	}
	if n.tr != nil {
		n.tracef(trace.EvSchedule, "%s (queue %d)", describe(obj), obj.queue.len())
	}
	n.node.Wake()
}

// invokeBody runs a method body on the current stack: the object enters
// active mode for the duration; at completion the message queue is checked
// and the object either returns to dormant mode or re-enqueues itself.
func (n *NodeRT) invokeBody(obj *Object, f *Frame, body MethodFunc) {
	prevPath := n.curPath // nested sends inside the body overwrite the register
	wasRunning := obj.running // nested multiactive invocations stack
	obj.running = true
	n.stackDepth++
	if n.stackDepth > n.maxDepth {
		n.maxDepth = n.stackDepth
	}
	ctx := n.acquireCtx(obj, f)
	body(ctx)
	n.stackDepth--
	obj.running = wasRunning
	n.curPath = prevPath
	h := f.hints
	if h&HintLeafMethod != 0 && (ctx.acted || ctx.blocked) {
		panic("core: HintLeafMethod violated: the method sent, created, blocked, or yielded")
	}
	if !ctx.blocked {
		if obj.multi != nil {
			n.multiMethodEnd(obj, f)
		} else {
			n.methodEndHinted(obj, h)
		}
		n.releaseFrame(f)
		n.releaseCtx(ctx)
	}
	if h&HintNoPoll == 0 {
		n.charge(n.cost.PollRemote)
	}
	n.charge(n.cost.StackReturn)
}

// runCont resumes a saved continuation (context restoration): like
// invokeBody but without the poll/return epilogue of a fresh invocation.
func (n *NodeRT) runCont(obj *Object, frame *Frame, k func(*Ctx)) {
	prevPath := n.curPath
	wasRunning := obj.running
	obj.running = true
	n.stackDepth++
	if n.stackDepth > n.maxDepth {
		n.maxDepth = n.stackDepth
	}
	ctx := n.acquireCtx(obj, frame)
	k(ctx)
	n.stackDepth--
	obj.running = wasRunning
	n.curPath = prevPath
	if !ctx.blocked {
		if obj.multi != nil {
			n.multiMethodEnd(obj, frame)
		} else {
			n.methodEnd(obj)
		}
		n.releaseFrame(frame)
		n.releaseCtx(ctx)
	}
	n.charge(n.cost.StackReturn)
}

// methodEnd implements the paper's method-completion protocol: check the
// message queue; if empty return to dormant mode, otherwise enqueue the
// object on the scheduling queue (it stays in active mode so further
// messages keep buffering).
func (n *NodeRT) methodEnd(obj *Object) { n.methodEndHinted(obj, 0) }

func (n *NodeRT) methodEndHinted(obj *Object, h SendHint) {
	if h&HintNoQueueCheck == 0 {
		n.charge(n.cost.CheckMsgQueue)
	}
	if obj.queue.empty() {
		if h&HintLeafMethod == 0 {
			n.charge(n.cost.SwitchVFTPDormant)
		}
		obj.vftp = obj.class.dormant
		return
	}
	n.enqueueSched(obj)
}

// makeDormantEntry builds the dormant-table entry for a pattern: the method
// body itself, invoked immediately on the sender's stack — unless the stack
// is too deep, in which case the runtime preempts to the scheduling queue.
func makeDormantEntry(cl *Class, p PatternID) entryFunc {
	return func(n *NodeRT, obj *Object, f *Frame) {
		if n.stackDepth >= n.rt.maxStackDepth {
			n.C.Preemptions++
			n.curPath = profile.Sched
			n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ +
				n.cost.SwitchVFTPActive)
			obj.vftp = cl.active
			obj.queue.push(f)
			n.enqueueSched(obj)
			return
		}
		if f.hints&HintLeafMethod == 0 {
			n.charge(n.cost.SwitchVFTPActive)
		}
		obj.vftp = cl.active
		n.invokeBody(obj, f, cl.methods[p])
	}
}

// queueEntry is the tiny queuing procedure of the active-mode table: it
// allocates a heap frame, stores the message and links it into the
// receiver's message queue, then returns to the sender.
func queueEntry(n *NodeRT, obj *Object, f *Frame) {
	n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ)
	obj.queue.push(f)
}

// faultEntry is the generic fault table's queuing procedure for
// uninitialized chunks; it works for any class because queuing procedures
// are class-independent (Section 5.2).
func faultEntry(n *NodeRT, obj *Object, f *Frame) {
	n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ +
		n.cost.FaultEnqueue)
	n.C.FaultBuffered++
	obj.queue.push(f)
}

// makeInitEntry builds the lazy-initialization entry: initialize state
// variables from the constructor arguments, switch to the dormant table,
// then invoke the method body for the triggering message.
func makeInitEntry(cl *Class, p PatternID) entryFunc {
	return func(n *NodeRT, obj *Object, f *Frame) {
		n.charge(n.cost.InitObject)
		if cl.Init != nil {
			cl.Init(&InitCtx{obj: obj, args: obj.ctorArgs})
		}
		obj.ctorArgs = nil
		tbl := cl.dormant
		if cl.multiTable != nil {
			tbl = cl.multiTable
		}
		obj.vftp = tbl
		tbl.entries[p].fn(n, obj, f)
	}
}

// makeRestoreEntry builds a waiting-table entry for an awaited pattern: it
// restores the saved context and continues the blocked method with the
// arrived message.
func makeRestoreEntry(p PatternID) entryFunc {
	return func(n *NodeRT, obj *Object, f *Frame) {
		ws := obj.wait
		if ws == nil {
			panic("core: context restoration without wait state")
		}
		if n.stackDepth >= n.rt.maxStackDepth {
			// Defer the restoration through the scheduling queue.
			n.C.Preemptions++
			n.curPath = profile.Sched
			n.charge(n.cost.FrameAlloc + n.cost.StoreMessage + n.cost.EnqueueMsgQ)
			obj.queue.push(f)
			n.enqueueSched(obj)
			return
		}
		obj.wait = nil
		n.charge(n.cost.RestoreContext + n.cost.SwitchVFTPActive)
		obj.vftp = obj.class.active
		n.runCont(obj, ws.frame, func(ctx *Ctx) { ws.k(ctx, f) })
	}
}

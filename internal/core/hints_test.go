package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// hintHarness builds a runtime with a null leaf method and a driver that
// sends one hinted message, returning the virtual time of that send.
func hintSendCost(t *testing.T, hints SendHint) sim.Time {
	t.Helper()
	r := newTestRT(t, Options{})
	ping := r.Reg.Register("ping", 0)
	null := r.DefineClass("null", 0, nil)
	null.Method(ping, func(ctx *Ctx) {})
	target := r.NewObjectOn(0, null)
	r.Freeze()

	n := r.NodeRT(0)
	before := n.node.Now()
	n.sendHinted(target, ping, nil, NilAddress, hints)
	return n.node.Now() - before
}

func TestHintCostLadder(t *testing.T) {
	// Section 6.1: "the overhead of an intra-node message to dormant
	// objects varies from 8 to 25 instructions" depending on which
	// compile-time optimizations apply.
	cases := []struct {
		hints SendHint
		instr int
	}{
		{0, 25},
		{HintKnownLocal, 22},
		{HintNoPoll, 20},
		{HintNoQueueCheck, 22},
		{HintLeafMethod, 19}, // both VFTP switches elided
		{HintKnownLocal | HintNoPoll, 17},
		{HintFullyOptimized, 8}, // lookup+call 5 + return 3
	}
	for _, c := range cases {
		want := sim.Time(c.instr) * 92 // 92ns per instruction at 25MHz/2.3
		if got := hintSendCost(t, c.hints); got != want {
			t.Errorf("hints %04b: cost = %v, want %v (%d instructions)",
				c.hints, got, want, c.instr)
		}
	}
}

func TestHintFullyOptimizedMatchesVirtualCall(t *testing.T) {
	// The paper: with all checks elided the cost is "truly comparable with
	// virtual function call in C++" — 8 instructions.
	if got := hintSendCost(t, HintFullyOptimized); got != 8*92 {
		t.Fatalf("fully optimized send = %v, want 736ns", got)
	}
}

func TestHintKnownLocalViolationPanics(t *testing.T) {
	m, err := machine.New(machine.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(m, Options{})
	ping := r.Reg.Register("ping", 0)
	null := r.DefineClass("null", 0, nil)
	null.Method(ping, func(ctx *Ctx) {})
	remoteObj := r.NewObjectOn(1, null)
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected HintKnownLocal violation panic")
		}
	}()
	r.NodeRT(0).sendHinted(remoteObj, ping, nil, NilAddress, HintKnownLocal)
}

func TestHintLeafMethodViolationPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	ping := r.Reg.Register("ping", 0)
	leafy := r.DefineClass("leafy", 0, nil)
	var self Address
	leafy.Method(ping, func(ctx *Ctx) {
		ctx.SendPast(self, ping) // sends: the leaf hint is a lie
	})
	self = r.NewObjectOn(0, leafy)
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected HintLeafMethod violation panic")
		}
	}()
	r.NodeRT(0).sendHinted(self, ping, nil, NilAddress, HintLeafMethod)
}

func TestHintedSendStillCorrect(t *testing.T) {
	// Semantics are unchanged by hints: state updates land, ordering holds.
	r := newTestRT(t, Options{})
	add := r.Reg.Register("add", 1)
	kick := r.Reg.Register("kick", 0)
	acc := r.DefineClass("acc", 1, func(ic *InitCtx) { ic.SetState(0, IntV(0)) })
	acc.Method(add, func(ctx *Ctx) {
		ctx.SetState(0, IntV(ctx.State(0).Int()+ctx.Arg(0).Int()))
	})
	var target Address
	drv := r.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *Ctx) {
		for i := int64(1); i <= 10; i++ {
			ctx.SendPastHinted(target, add, HintKnownLocal|HintNoPoll, IntV(i))
		}
	})
	target = r.NewObjectOn(0, acc)
	d := r.NewObjectOn(0, drv)
	r.Inject(d, kick)
	run(t, r)
	if got := target.Obj.State(0).Int(); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestHintLeafAllowsCharge(t *testing.T) {
	// Pure computation (Charge) is allowed in a leaf method.
	r := newTestRT(t, Options{})
	work := r.Reg.Register("work", 0)
	leafy := r.DefineClass("leafy", 0, nil)
	leafy.Method(work, func(ctx *Ctx) { ctx.Charge(100) })
	target := r.NewObjectOn(0, leafy)
	r.Freeze()
	r.NodeRT(0).sendHinted(target, work, nil, NilAddress, HintLeafMethod)
}

func TestHintsUnderNaivePolicy(t *testing.T) {
	// Hints compose with the naive scheduler: the message still buffers and
	// dispatches through the queue, and the leaf validation still fires at
	// invocation time.
	r := newTestRT(t, Options{Policy: PolicyNaive})
	add := r.Reg.Register("add", 1)
	kick := r.Reg.Register("kick", 0)
	acc := r.DefineClass("acc", 1, func(ic *InitCtx) { ic.SetState(0, IntV(0)) })
	acc.Method(add, func(ctx *Ctx) {
		ctx.SetState(0, IntV(ctx.State(0).Int()+ctx.Arg(0).Int()))
	})
	var target Address
	drv := r.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *Ctx) {
		ctx.SendPastHinted(target, add, HintKnownLocal|HintLeafMethod, IntV(21))
		ctx.SendPastHinted(target, add, HintFullyOptimized, IntV(21))
	})
	target = r.NewObjectOn(0, acc)
	d := r.NewObjectOn(0, drv)
	r.Inject(d, kick)
	run(t, r)
	if got := target.Obj.State(0).Int(); got != 42 {
		t.Fatalf("sum = %d, want 42", got)
	}
}

func TestHintLeafViolationByBlockPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	wait := r.Reg.Register("wait", 0)
	other := r.Reg.Register("other", 0)
	cls := r.DefineClass("cls", 0, nil)
	cls.Method(wait, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {}, other)
	})
	o := r.NewObjectOn(0, cls)
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("blocking in a leaf-hinted method must panic")
		}
	}()
	r.NodeRT(0).sendHinted(o, wait, nil, NilAddress, HintLeafMethod)
}

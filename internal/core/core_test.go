package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// newTestRT builds a single-node runtime for intra-node scheduling tests.
func newTestRT(t *testing.T, opt Options) *Runtime {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(m, opt)
}

func run(t *testing.T, r *Runtime) {
	t.Helper()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNullMethodDormantCost(t *testing.T) {
	// Table 1 row 1 / Table 2: an intra-node past-type message to a dormant
	// object costs 25 instructions = 2.3µs with a null method.
	r := newTestRT(t, Options{})
	ping := r.Reg.Register("ping", 0)
	tick := r.Reg.Register("tick", 0)
	null := r.DefineClass("null", 0, nil)
	null.Method(ping, func(ctx *Ctx) {})

	var target Address
	driver := r.DefineClass("driver", 0, nil)
	driver.Method(tick, func(ctx *Ctx) {
		ctx.SendPast(target, ping)
	})

	target = r.NewObjectOn(0, null)
	d := r.NewObjectOn(0, driver)

	// Warm up once so lazy-init style effects (none here) are excluded, then
	// measure one send by clock delta around the dormant dispatch itself.
	r.Inject(d.Obj.Addr(), tick)
	run(t, r)

	n := r.NodeRT(0)
	// Account: the driver's own invocation adds overhead; measure directly.
	before := n.node.Now()
	n.Send(target, ping, nil, NilAddress)
	elapsed := n.node.Now() - before
	if elapsed != 2300*sim.Nanosecond {
		t.Fatalf("dormant null send took %v, want 2.3µs (25 instructions)", elapsed)
	}
	if got := n.C.LocalToDormant; got < 2 {
		t.Fatalf("dormant deliveries = %d, want >= 2", got)
	}
}

func TestSendToActiveBuffersAndSchedules(t *testing.T) {
	// Figure 1 steps 3-5: a message to an active object is buffered; the
	// object enqueues itself at method end and is scheduled later.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	poke := r.Reg.Register("poke", 0)

	var log []string
	var b Address
	cls := r.DefineClass("b", 0, nil)
	cls.Method(start, func(ctx *Ctx) {
		log = append(log, "b.start")
		// Send to self: self is active, so this must buffer.
		ctx.SendPast(ctx.Self(), poke)
		log = append(log, "b.start-end")
	})
	cls.Method(poke, func(ctx *Ctx) {
		log = append(log, "b.poke")
	})

	b = r.NewObjectOn(0, cls)
	r.Inject(b, start)
	run(t, r)

	want := []string{"b.start", "b.start-end", "b.poke"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	c := r.TotalStats()
	if c.LocalToActive != 1 {
		t.Errorf("active-mode buffered sends = %d, want 1", c.LocalToActive)
	}
	if c.SchedEnqueues == 0 || c.SchedDequeues == 0 {
		t.Error("self-send must pass through the scheduling queue")
	}
	if b.Obj.Mode() != ModeDormant {
		t.Errorf("object mode at quiescence = %v, want dormant", b.Obj.Mode())
	}
}

func TestFigure1Scenario(t *testing.T) {
	// The exact A/B/C interaction of Figure 1: A sends to dormant B (runs
	// immediately), B sends to dormant C (runs immediately), C sends a
	// second message to now-active B (buffered), C finishes, B finishes the
	// rest of its method, then B is scheduled from the queue.
	r := newTestRT(t, Options{})
	go_ := r.Reg.Register("go", 0)
	m1 := r.Reg.Register("m1", 0)
	m2 := r.Reg.Register("m2", 0)

	var log []string
	var aAddr, bAddr, cAddr Address

	a := r.DefineClass("a", 0, nil)
	a.Method(go_, func(ctx *Ctx) {
		log = append(log, "A:send-to-B")
		ctx.SendPast(bAddr, m1)
		log = append(log, "A:resumed")
	})
	b := r.DefineClass("b", 0, nil)
	b.Method(m1, func(ctx *Ctx) {
		log = append(log, "B:m1-start")
		ctx.SendPast(cAddr, m1)
		log = append(log, "B:m1-rest") // Figure 1 step 4
	})
	b.Method(m2, func(ctx *Ctx) {
		log = append(log, "B:m2")
	})
	c := r.DefineClass("c", 0, nil)
	c.Method(m1, func(ctx *Ctx) {
		log = append(log, "C:m1-start")
		ctx.SendPast(bAddr, m2) // B is active: buffered, C continues
		log = append(log, "C:m1-end")
	})

	aAddr = r.NewObjectOn(0, a)
	bAddr = r.NewObjectOn(0, b)
	cAddr = r.NewObjectOn(0, c)
	r.Inject(aAddr, go_)
	run(t, r)

	want := []string{
		"A:send-to-B",
		"B:m1-start",
		"C:m1-start",
		"C:m1-end",  // C continues because B is active (step 3)
		"B:m1-rest", // B executes the rest (step 4)
		"A:resumed", // A regains control before B's queued m2 (step 5)
		"B:m2",      // B scheduled from the queue
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q\nlog  = %v\nwant = %v", i, log[i], log, want)
		}
	}
}

func TestNowTypeFastPath(t *testing.T) {
	// Intra-node now-type send to a dormant object: the receiver runs on
	// the sender's stack and replies before the sender checks, so there is
	// no unwinding (Section 4.3).
	r := newTestRT(t, Options{})
	ask := r.Reg.Register("ask", 1)
	start := r.Reg.Register("start", 0)

	adder := r.DefineClass("adder", 0, nil)
	adder.Method(ask, func(ctx *Ctx) {
		ctx.Reply(IntV(ctx.Arg(0).Int() + 1))
	})

	var got int64 = -1
	var target Address
	caller := r.DefineClass("caller", 0, nil)
	caller.Method(start, func(ctx *Ctx) {
		ctx.SendNow(target, ask, []Value{IntV(41)}, func(ctx *Ctx, v Value) {
			got = v.Int()
		})
	})

	target = r.NewObjectOn(0, adder)
	cl := r.NewObjectOn(0, caller)
	r.Inject(cl, start)
	run(t, r)

	if got != 42 {
		t.Fatalf("now-type reply = %d, want 42", got)
	}
	c := r.TotalStats()
	if c.NowFastPath != 1 || c.NowBlocked != 0 {
		t.Errorf("fast/blocked = %d/%d, want 1/0", c.NowFastPath, c.NowBlocked)
	}
	if c.Replies != 1 {
		t.Errorf("replies = %d, want 1", c.Replies)
	}
}

func TestFigure3StackUnwinding(t *testing.T) {
	// S sends a now-type message to an *active* R: the message is queued, S
	// finds no reply, saves its context and unwinds; R is scheduled later,
	// processes m, and the reply resumes S.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	kick := r.Reg.Register("kick", 0)
	m := r.Reg.Register("m", 0)

	var log []string
	var sAddr, rAddr Address

	rcls := r.DefineClass("R", 0, nil)
	rcls.Method(kick, func(ctx *Ctx) {
		log = append(log, "R:kick-start")
		// While R is active, tell S to try a now-send at R.
		ctx.SendPast(sAddr, start)
		log = append(log, "R:kick-end")
	})
	rcls.Method(m, func(ctx *Ctx) {
		log = append(log, "R:m")
		ctx.Reply(StrV("done"))
	})

	scls := r.DefineClass("S", 0, nil)
	scls.Method(start, func(ctx *Ctx) {
		log = append(log, "S:sending")
		ctx.SendNow(rAddr, m, nil, func(ctx *Ctx, v Value) {
			log = append(log, "S:resumed:"+v.Str())
		})
	})

	rAddr = r.NewObjectOn(0, rcls)
	sAddr = r.NewObjectOn(0, scls)
	r.Inject(rAddr, kick)
	run(t, r)

	want := []string{
		"R:kick-start",
		"S:sending",  // S invoked on the stack (dormant)
		"R:kick-end", // S blocked and unwound back into R's method
		"R:m",        // R scheduled from the queue, processes m
		"S:resumed:done",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v\nwant %v", log, want)
		}
	}
	c := r.TotalStats()
	if c.NowBlocked != 1 {
		t.Errorf("blocked now-sends = %d, want 1", c.NowBlocked)
	}
	if c.HeapFrames == 0 {
		t.Error("blocking must allocate a heap frame")
	}
}

func TestActionAfterBlockPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	m := r.Reg.Register("m", 0)

	var tAddr Address
	cls := r.DefineClass("S", 0, nil)
	cls.Method(start, func(ctx *Ctx) {
		ctx.SendNow(tAddr, m, nil, func(ctx *Ctx, v Value) {})
		ctx.SendPast(tAddr, m) // illegal if the now-send blocked
	})
	busy := r.DefineClass("busy", 0, nil)
	busy.Method(m, func(ctx *Ctx) {
		// Never replies, so SendNow always blocks... but to make S's send
		// block we need the receiver active; easiest is self-referential:
	})
	busy.Method(start, func(ctx *Ctx) {})

	// Make the receiver a waiting object instead: use an object that does
	// not reply; SendNow to a dormant object that doesn't reply leaves the
	// reply unarrived, so the sender blocks and the next action must panic.
	tAddr = r.NewObjectOn(0, busy)
	s := r.NewObjectOn(0, cls)
	r.Inject(s, start)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on action after block")
		}
	}()
	run(t, r)
}

func TestSelectiveReceptionFastPath(t *testing.T) {
	// An awaited message already buffered means no blocking (the paper:
	// "object is not blocked as long as it finds an awaited message when it
	// first checks its message queue").
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	data := r.Reg.Register("data", 1)

	var got int64 = -1
	cls := r.DefineClass("w", 0, nil)
	cls.Method(start, func(ctx *Ctx) {
		// Send data to self first (buffers: self is active), then wait.
		ctx.SendPast(ctx.Self(), data, IntV(7))
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {
			got = f.Arg(0).Int()
		}, data)
	})
	cls.Method(data, func(ctx *Ctx) {
		t.Error("data method must not run; the wait should consume the frame")
	})

	w := r.NewObjectOn(0, cls)
	r.Inject(w, start)
	run(t, r)

	if got != 7 {
		t.Fatalf("selective reception got %d, want 7", got)
	}
	c := r.TotalStats()
	if c.WaitFast != 1 || c.WaitBlocked != 0 {
		t.Errorf("wait fast/blocked = %d/%d, want 1/0", c.WaitFast, c.WaitBlocked)
	}
}

func TestSelectiveReceptionBlocksAndRestores(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	data := r.Reg.Register("data", 1)
	other := r.Reg.Register("other", 0)
	kick := r.Reg.Register("kick", 0)

	var log []string
	var wAddr Address

	w := r.DefineClass("w", 1, nil)
	w.Method(start, func(ctx *Ctx) {
		log = append(log, "w:waiting")
		ctx.WaitFor(func(ctx *Ctx, f *Frame) {
			log = append(log, "w:got-data")
			ctx.SetState(0, f.Arg(0))
		}, data)
	})
	w.Method(other, func(ctx *Ctx) {
		log = append(log, "w:other")
	})

	feeder := r.DefineClass("feeder", 0, nil)
	feeder.Method(kick, func(ctx *Ctx) {
		// Non-awaited message first: must buffer, not restore.
		ctx.SendPast(wAddr, other)
		log = append(log, "feeder:sent-other")
		// Awaited message: restores w's context immediately (on this stack).
		ctx.SendPast(wAddr, data, IntV(99))
		log = append(log, "feeder:sent-data")
	})

	wAddr = r.NewObjectOn(0, w)
	fd := r.NewObjectOn(0, feeder)
	r.Inject(wAddr, start)
	r.Inject(fd, kick)
	run(t, r)

	want := []string{
		"w:waiting",
		"feeder:sent-other", // other buffered while waiting
		"w:got-data",        // data restored w on feeder's stack
		"feeder:sent-data",
		"w:other", // buffered message processed after restoration completes
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v\nwant %v", log, want)
		}
	}
	if got := wAddr.Obj.State(0).Int(); got != 99 {
		t.Fatalf("state = %d, want 99", got)
	}
	c := r.TotalStats()
	if c.WaitBlocked != 1 {
		t.Errorf("blocked waits = %d, want 1", c.WaitBlocked)
	}
	if c.LocalRestores != 1 {
		t.Errorf("restores = %d, want 1", c.LocalRestores)
	}
}

func TestLazyInitialization(t *testing.T) {
	r := newTestRT(t, Options{})
	get := r.Reg.Register("get", 0)

	inits := 0
	cls := r.DefineClass("counter", 1, func(ic *InitCtx) {
		inits++
		ic.SetState(0, ic.CtorArg(0))
	})
	var got []int64
	cls.Method(get, func(ctx *Ctx) {
		got = append(got, ctx.State(0).Int())
		ctx.SetState(0, IntV(ctx.State(0).Int()+1))
	})

	obj := r.NewObjectOn(0, cls, IntV(10))
	if obj.Obj.Mode() != ModeNeedInit {
		t.Fatalf("fresh object mode = %v, want needinit", obj.Obj.Mode())
	}
	if inits != 0 {
		t.Fatal("initializer ran before first message (must be lazy)")
	}
	r.Inject(obj, get)
	r.Inject(obj, get)
	run(t, r)

	if inits != 1 {
		t.Fatalf("initializer ran %d times, want 1", inits)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("state reads = %v, want [10 11]", got)
	}
}

func TestReplyDestinationDelegation(t *testing.T) {
	// The reply destination is first-class: a middleman forwards the
	// request with the original reply destination, and the worker's reply
	// resumes the original caller directly.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	work := r.Reg.Register("work", 0)

	var middle, worker Address
	var got string

	workerCls := r.DefineClass("worker", 0, nil)
	workerCls.Method(work, func(ctx *Ctx) {
		ctx.Reply(StrV("from-worker"))
	})
	middleCls := r.DefineClass("middle", 0, nil)
	middleCls.Method(work, func(ctx *Ctx) {
		// Forward with the caller's reply destination; do not reply here.
		ctx.SendWithReply(worker, work, nil, ctx.ReplyTo())
	})
	callerCls := r.DefineClass("caller", 0, nil)
	callerCls.Method(start, func(ctx *Ctx) {
		ctx.SendNow(middle, work, nil, func(ctx *Ctx, v Value) {
			got = v.Str()
		})
	})

	worker = r.NewObjectOn(0, workerCls)
	middle = r.NewObjectOn(0, middleCls)
	caller := r.NewObjectOn(0, callerCls)
	r.Inject(caller, start)
	run(t, r)

	if got != "from-worker" {
		t.Fatalf("delegated reply = %q, want %q", got, "from-worker")
	}
}

func TestDuplicateReplyDropped(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	ask := r.Reg.Register("ask", 0)

	var target Address
	var got []string
	dbl := r.DefineClass("dbl", 0, nil)
	dbl.Method(ask, func(ctx *Ctx) {
		ctx.Reply(StrV("first"))
		ctx.Reply(StrV("second"))
	})
	caller := r.DefineClass("caller", 0, nil)
	caller.Method(start, func(ctx *Ctx) {
		ctx.SendNow(target, ask, nil, func(ctx *Ctx, v Value) {
			got = append(got, v.Str())
		})
	})

	target = r.NewObjectOn(0, dbl)
	c := r.NewObjectOn(0, caller)
	r.Inject(c, start)
	run(t, r)

	if len(got) != 1 || got[0] != "first" {
		t.Fatalf("replies received = %v, want [first]", got)
	}
	if s := r.TotalStats(); s.DroppedReplies != 1 {
		t.Errorf("dropped replies = %d, want 1", s.DroppedReplies)
	}
}

func TestReplyToPastTypeIsNoOp(t *testing.T) {
	r := newTestRT(t, Options{})
	m := r.Reg.Register("m", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(m, func(ctx *Ctx) {
		ctx.Reply(IntV(1)) // no reply destination: must be silently ignored
	})
	o := r.NewObjectOn(0, cls)
	r.Inject(o, m)
	run(t, r)
	if s := r.TotalStats(); s.Replies != 0 {
		t.Errorf("replies = %d, want 0", s.Replies)
	}
}

func TestNaivePolicyBuffersEverything(t *testing.T) {
	r := newTestRT(t, Options{Policy: PolicyNaive})
	start := r.Reg.Register("start", 0)
	ping := r.Reg.Register("ping", 0)

	var log []string
	var target Address
	pong := r.DefineClass("pong", 0, nil)
	pong.Method(ping, func(ctx *Ctx) { log = append(log, "pong") })
	drv := r.DefineClass("drv", 0, nil)
	drv.Method(start, func(ctx *Ctx) {
		ctx.SendPast(target, ping)
		log = append(log, "drv-end") // naive: receiver runs later, not now
	})

	target = r.NewObjectOn(0, pong)
	d := r.NewObjectOn(0, drv)
	r.Inject(d, start)
	run(t, r)

	if len(log) != 2 || log[0] != "drv-end" || log[1] != "pong" {
		t.Fatalf("log = %v, want [drv-end pong]", log)
	}
	c := r.TotalStats()
	// Under naive scheduling the dormant-receiver send still *counts* as a
	// to-dormant delivery for the Figure 6 statistic, but goes through the
	// scheduling queue.
	if c.LocalToDormant != 1 {
		t.Errorf("to-dormant count = %d, want 1", c.LocalToDormant)
	}
	if c.SchedDequeues < 2 {
		t.Errorf("sched dequeues = %d, want >= 2 (every message scheduled)", c.SchedDequeues)
	}
}

func TestNaivePolicyCostsMore(t *testing.T) {
	// Figure 6's premise: the same program is slower under naive scheduling.
	elapsed := func(p Policy) sim.Time {
		r := newTestRT(t, Options{Policy: p})
		start := r.Reg.Register("start", 0)
		ping := r.Reg.Register("ping", 1)
		var target Address
		cls := r.DefineClass("cls", 0, nil)
		cls.Method(ping, func(ctx *Ctx) {})
		drv := r.DefineClass("drv", 0, nil)
		drv.Method(start, func(ctx *Ctx) {
			for i := 0; i < 100; i++ {
				ctx.SendPast(target, ping, IntV(int64(i)))
			}
		})
		target = r.NewObjectOn(0, cls)
		d := r.NewObjectOn(0, drv)
		r.Inject(d, start)
		run(t, r)
		return r.M.MaxClock()
	}
	st, nv := elapsed(PolicyStackBased), elapsed(PolicyNaive)
	if nv <= st {
		t.Fatalf("naive %v must be slower than stack-based %v", nv, st)
	}
	ratio := float64(nv) / float64(st)
	if ratio < 1.2 {
		t.Errorf("naive/stack ratio = %.2f, want noticeably larger", ratio)
	}
}

func TestNaiveSelectiveReception(t *testing.T) {
	r := newTestRT(t, Options{Policy: PolicyNaive})
	start := r.Reg.Register("start", 0)
	data := r.Reg.Register("data", 1)
	kick := r.Reg.Register("kick", 0)

	var got int64 = -1
	var wAddr Address
	w := r.DefineClass("w", 0, nil)
	w.Method(start, func(ctx *Ctx) {
		ctx.WaitFor(func(ctx *Ctx, f *Frame) { got = f.Arg(0).Int() }, data)
	})
	f := r.DefineClass("f", 0, nil)
	f.Method(kick, func(ctx *Ctx) {
		ctx.SendPast(wAddr, data, IntV(5))
	})

	wAddr = r.NewObjectOn(0, w)
	fa := r.NewObjectOn(0, f)
	r.Inject(wAddr, start)
	r.Inject(fa, kick)
	run(t, r)

	if got != 5 {
		t.Fatalf("naive selective reception got %d, want 5", got)
	}
}

func TestNaiveNowType(t *testing.T) {
	r := newTestRT(t, Options{Policy: PolicyNaive})
	start := r.Reg.Register("start", 0)
	ask := r.Reg.Register("ask", 0)

	var target Address
	var got int64 = -1
	svc := r.DefineClass("svc", 0, nil)
	svc.Method(ask, func(ctx *Ctx) { ctx.Reply(IntV(77)) })
	cl := r.DefineClass("cl", 0, nil)
	cl.Method(start, func(ctx *Ctx) {
		ctx.SendNow(target, ask, nil, func(ctx *Ctx, v Value) { got = v.Int() })
	})

	target = r.NewObjectOn(0, svc)
	c := r.NewObjectOn(0, cl)
	r.Inject(c, start)
	run(t, r)

	if got != 77 {
		t.Fatalf("naive now-type got %d, want 77", got)
	}
	s := r.TotalStats()
	if s.NowBlocked != 1 || s.NowFastPath != 0 {
		t.Errorf("naive now-send must block (no stack fast path): fast=%d blocked=%d",
			s.NowFastPath, s.NowBlocked)
	}
}

func TestDeepRecursionPreemption(t *testing.T) {
	// A chain of dormant sends deeper than MaxStackDepth must be preempted
	// through the scheduling queue instead of growing the stack.
	r := newTestRT(t, Options{MaxStackDepth: 8})
	step := r.Reg.Register("step", 1)

	var cls *Class
	const depth = 100
	reached := int64(-1)
	cls = r.DefineClass("chain", 0, nil)
	cls.Method(step, func(ctx *Ctx) {
		i := ctx.Arg(0).Int()
		reached = i
		if i < depth {
			next := ctx.NewLocal(cls)
			ctx.SendPast(next, step, IntV(i+1))
		}
	})

	o := r.NewObjectOn(0, cls)
	r.Inject(o, step, IntV(0))
	run(t, r)

	if reached != depth {
		t.Fatalf("chain reached %d, want %d", reached, depth)
	}
	c := r.TotalStats()
	if c.Preemptions == 0 {
		t.Error("deep chain must trigger preemptions")
	}
	if d := r.NodeRT(0).MaxObservedDepth(); d > 10 {
		t.Errorf("observed stack depth %d exceeds bound", d)
	}
}

func TestYield(t *testing.T) {
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	ping := r.Reg.Register("ping", 0)

	var log []string
	var other Address
	looper := r.DefineClass("looper", 0, nil)
	looper.Method(start, func(ctx *Ctx) {
		log = append(log, "loop-1")
		ctx.SendPast(other, ping) // other is dormant: runs now
		ctx.Yield(func(ctx *Ctx) {
			log = append(log, "loop-2")
		})
	})
	oc := r.DefineClass("other", 0, nil)
	oc.Method(ping, func(ctx *Ctx) { log = append(log, "other") })

	other = r.NewObjectOn(0, oc)
	l := r.NewObjectOn(0, looper)
	r.Inject(l, start)
	run(t, r)

	want := []string{"loop-1", "other", "loop-2"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if c := r.TotalStats(); c.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", c.Preemptions)
	}
}

func TestFaultChunkBuffersEarlyMessages(t *testing.T) {
	// Figure 4: messages reaching an object before its creation request are
	// buffered by the generic fault table and processed after InitChunk.
	r := newTestRT(t, Options{})
	m := r.Reg.Register("m", 1)
	var got []int64
	cls := r.DefineClass("late", 0, nil)
	cls.Method(m, func(ctx *Ctx) { got = append(got, ctx.Arg(0).Int()) })
	r.Freeze()

	chunk := r.NewFaultChunk(0)
	if chunk.Mode() != ModeUninit {
		t.Fatalf("chunk mode = %v, want uninit", chunk.Mode())
	}
	n := r.NodeRT(0)
	// Early messages (simulating arrivals ahead of the creation request).
	n.DeliverFrame(chunk, &Frame{Pattern: m, Args: []Value{IntV(1)}}, true)
	n.DeliverFrame(chunk, &Frame{Pattern: m, Args: []Value{IntV(2)}}, true)
	if len(got) != 0 {
		t.Fatal("messages must be buffered, not processed")
	}
	if chunk.QueueLen() != 2 {
		t.Fatalf("queue length = %d, want 2", chunk.QueueLen())
	}
	if c := r.TotalStats(); c.FaultBuffered != 2 {
		t.Errorf("fault-buffered = %d, want 2", c.FaultBuffered)
	}

	r.InitChunk(n, chunk, cls, nil)
	run(t, r)

	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("processed = %v, want [1 2] in arrival order", got)
	}
}

func TestMessageNotUnderstoodPanics(t *testing.T) {
	r := newTestRT(t, Options{})
	known := r.Reg.Register("known", 0)
	unknown := r.Reg.Register("unknown", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(known, func(ctx *Ctx) {})
	o := r.NewObjectOn(0, cls)
	defer func() {
		if recover() == nil {
			t.Fatal("expected message-not-understood panic")
		}
	}()
	r.Inject(o, unknown)
	run(t, r)
}

func TestWaitingVFTCache(t *testing.T) {
	r := newTestRT(t, Options{})
	a := r.Reg.Register("a", 0)
	b := r.Reg.Register("b", 0)
	cls := r.DefineClass("c", 0, nil)
	cls.Method(a, func(ctx *Ctx) {})
	cls.Method(b, func(ctx *Ctx) {})
	r.Freeze()

	v1 := cls.waitingVFT([]PatternID{a, b})
	v2 := cls.waitingVFT([]PatternID{b, a}) // order-insensitive
	if v1 != v2 {
		t.Error("waiting tables for the same pattern set must be shared")
	}
	v3 := cls.waitingVFT([]PatternID{a})
	if v3 == v1 {
		t.Error("different pattern sets must get different tables")
	}
	if v1.Mode != ModeWaiting {
		t.Errorf("waiting table mode = %v", v1.Mode)
	}
	if v1.entries[a].kind != entryRestore || v1.entries[r.PatReply].kind != entryQueue {
		t.Error("waiting table entries misclassified")
	}
}

func TestChainedNowSends(t *testing.T) {
	// Nested now-type RPCs through three objects, all on one node.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	f1 := r.Reg.Register("f1", 1)
	f2 := r.Reg.Register("f2", 1)

	var b2, b3 Address
	var got int64
	c3 := r.DefineClass("c3", 0, nil)
	c3.Method(f2, func(ctx *Ctx) { ctx.Reply(IntV(ctx.Arg(0).Int() * 2)) })
	c2 := r.DefineClass("c2", 0, nil)
	c2.Method(f1, func(ctx *Ctx) {
		x := ctx.Arg(0).Int()
		ctx.SendNow(b3, f2, []Value{IntV(x + 1)}, func(ctx *Ctx, v Value) {
			ctx.Reply(IntV(v.Int() + 10))
		})
	})
	c1 := r.DefineClass("c1", 0, nil)
	c1.Method(start, func(ctx *Ctx) {
		ctx.SendNow(b2, f1, []Value{IntV(5)}, func(ctx *Ctx, v Value) {
			got = v.Int()
		})
	})

	b3 = r.NewObjectOn(0, c3)
	b2 = r.NewObjectOn(0, c2)
	b1 := r.NewObjectOn(0, c1)
	r.Inject(b1, start)
	run(t, r)

	if got != (5+1)*2+10 {
		t.Fatalf("chained now-sends got %d, want 22", got)
	}
}

func TestTransmissionOrderPreservedLocally(t *testing.T) {
	// Two messages from the same sender to the same receiver arrive in send
	// order even when the first buffers and the second would too.
	r := newTestRT(t, Options{})
	start := r.Reg.Register("start", 0)
	item := r.Reg.Register("item", 1)

	var got []int64
	var sink Address
	sk := r.DefineClass("sink", 0, nil)
	sk.Method(item, func(ctx *Ctx) { got = append(got, ctx.Arg(0).Int()) })
	src := r.DefineClass("src", 0, nil)
	src.Method(start, func(ctx *Ctx) {
		for i := int64(0); i < 10; i++ {
			ctx.SendPast(sink, item, IntV(i))
		}
	})

	sink = r.NewObjectOn(0, sk)
	s := r.NewObjectOn(0, src)
	r.Inject(s, start)
	run(t, r)

	if len(got) != 10 {
		t.Fatalf("received %d items, want 10", len(got))
	}
	for i := int64(0); i < 10; i++ {
		if got[i] != i {
			t.Fatalf("order = %v, want 0..9", got)
		}
	}
}

func TestStateVariablesArePrivate(t *testing.T) {
	r := newTestRT(t, Options{})
	inc := r.Reg.Register("inc", 0)
	cls := r.DefineClass("ctr", 1, func(ic *InitCtx) { ic.SetState(0, IntV(0)) })
	cls.Method(inc, func(ctx *Ctx) {
		ctx.SetState(0, IntV(ctx.State(0).Int()+1))
	})
	a := r.NewObjectOn(0, cls)
	b := r.NewObjectOn(0, cls)
	for i := 0; i < 3; i++ {
		r.Inject(a, inc)
	}
	r.Inject(b, inc)
	run(t, r)
	if a.Obj.State(0).Int() != 3 || b.Obj.State(0).Int() != 1 {
		t.Fatalf("states = %v,%v want 3,1", a.Obj.State(0), b.Obj.State(0))
	}
}

func TestDefineAfterFreezePanics(t *testing.T) {
	r := newTestRT(t, Options{})
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic defining class after freeze")
		}
	}()
	r.DefineClass("late", 0, nil)
}

func TestRegistryAfterFreezePanics(t *testing.T) {
	r := newTestRT(t, Options{})
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering pattern after freeze")
		}
	}()
	r.Reg.Register("late", 0)
}

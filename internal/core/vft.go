package core

// Mode is the execution mode of a concurrent object (Section 2.1 plus the
// two implementation modes of Sections 4.2 and 5.2).
type Mode uint8

const (
	// ModeDormant: no messages being processed; a send invokes the method
	// immediately on the sender's stack.
	ModeDormant Mode = iota
	// ModeActive: currently executing (or parked with buffered messages);
	// sends buffer through queuing procedures.
	ModeActive
	// ModeWaiting: blocked in selective reception; awaited patterns restore
	// the saved context, others buffer.
	ModeWaiting
	// ModeUninit: a pre-delivered chunk whose creation request has not yet
	// arrived; the generic fault table buffers everything (Section 5.2).
	ModeUninit
	// ModeNeedInit: created but state variables not yet initialized; the
	// first message triggers lazy initialization (Section 4.2).
	ModeNeedInit
	// ModeMultiactive: the object's class declares compatibility groups and
	// several mutually compatible invocations may be live at once. The object
	// keeps this single table for its whole life: every entry performs a
	// runtime compatibility check against the live-invocation counts instead
	// of the serial scheme's table switches.
	ModeMultiactive
)

func (m Mode) String() string {
	switch m {
	case ModeDormant:
		return "dormant"
	case ModeActive:
		return "active"
	case ModeWaiting:
		return "waiting"
	case ModeUninit:
		return "uninit"
	case ModeNeedInit:
		return "needinit"
	case ModeMultiactive:
		return "multiactive"
	default:
		return "mode(?)"
	}
}

// EntryKind classifies virtual-function-table entries. The kind encodes what
// the paper encodes by which table the entry lives in; it is consulted by
// the scheduler when dispatching buffered frames.
type EntryKind uint8

const (
	entryNone    EntryKind = iota // message not understood
	entryBody                     // dormant table: the compiled method body
	entryQueue                    // active table: tiny queuing procedure
	entryRestore                  // waiting table: context restoration routine
	entryInit                     // lazy-initialization wrapper
	entryFault                    // generic fault table: class-independent queuing
	entryNative                   // runtime-internal (reply destinations)
	entryForward                  // forwarder installed by object migration
	entryMulti                    // multiactive table: compatibility-checked dispatch
)

// entryFunc is a virtual-function-table procedure: it receives the runtime
// of the node the object lives on, the object, and the message frame.
type entryFunc func(rt *NodeRT, obj *Object, f *Frame)

type entry struct {
	kind EntryKind
	fn   entryFunc
}

// VFT is one virtual function table: a mode tag plus one entry per
// registered message pattern. Each class owns several VFTs — one per mode —
// and an object's VFTP points at the table for its current mode, which is
// how "several runtime checks in concurrent object execution can be
// avoided" (Section 4.2).
type VFT struct {
	Mode    Mode
	entries []entry
}

// lookup returns the entry for a pattern; entryNone for unknown patterns.
func (v *VFT) lookup(p PatternID) entry {
	if p < 0 || int(p) >= len(v.entries) {
		return entry{}
	}
	return v.entries[p]
}

package parexec

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/remote"
	"repro/internal/sim"
)

// TimeWarpSaver is the composite sim.LaneSaver of the optimistic (Time Warp)
// executor: it snapshots and restores everything outside the engine that a
// node's lane mutates — machine state (clock, receive queue, FIFO clamp
// column, counters), language state (objects, queues, saved contexts,
// scheduling queue), inter-node state (stocks, protocol cursors, in-flight
// records, open batches, retention) and fault state (tallies, rng streams).
//
// Lane l drives node l-1; lane 0 is the host lane, which owns no node state
// and is fenced serial by the executor anyway, so its capture is nil.
type TimeWarpSaver struct {
	rt  *core.Runtime
	m   *machine.Machine
	net *remote.Layer
	inj *fault.Injector // nil on a fault-free machine
}

// twSnap is one lane's composite snapshot.
type twSnap struct {
	mach *machine.NodeSnap
	core *core.NodeSnap
	rem  *remote.NodeSnap
	flt  *fault.NodeSnap
}

// NewTimeWarpSaver builds the composite saver. inj may be nil.
func NewTimeWarpSaver(rt *core.Runtime, m *machine.Machine, net *remote.Layer, inj *fault.Injector) *TimeWarpSaver {
	return &TimeWarpSaver{rt: rt, m: m, net: net, inj: inj}
}

// Capture implements sim.LaneSaver; it runs on the worker goroutine that
// owns the lane, between two of its events.
func (w *TimeWarpSaver) Capture(lane int) any {
	if lane == 0 {
		return nil
	}
	node := lane - 1
	s := &twSnap{
		mach: w.m.Node(node).OptCapture(),
		core: w.rt.OptCaptureNode(node),
		rem:  w.net.OptCaptureNode(node),
	}
	if w.inj != nil {
		s.flt = w.inj.OptCaptureNode(node)
	}
	return s
}

// Restore implements sim.LaneSaver; it runs single-threaded at the window
// barrier.
func (w *TimeWarpSaver) Restore(lane int, snap any) {
	if snap == nil {
		return
	}
	node := lane - 1
	s := snap.(*twSnap)
	w.m.Node(node).OptRestore(s.mach)
	w.rt.OptRestoreNode(node, s.core)
	w.net.OptRestoreNode(node, s.rem)
	if s.flt != nil {
		w.inj.OptRestoreNode(node, s.flt)
	}
}

var _ sim.LaneSaver = (*TimeWarpSaver)(nil)

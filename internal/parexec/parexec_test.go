package parexec

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestQuiescenceEmpty(t *testing.T) {
	ex := New(4, core.Options{})
	if _, err := ex.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestCrossNodeCounter(t *testing.T) {
	const nodes = 8
	const perNode = 200
	ex := New(nodes, core.Options{})
	rt := ex.RT

	inc := rt.Reg.Register("inc", 0)
	kick := rt.Reg.Register("kick", 0)

	counter := rt.DefineClass("counter", 1, func(ic *core.InitCtx) {
		ic.SetState(0, core.IntV(0))
	})
	counter.Method(inc, func(ctx *core.Ctx) {
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+1))
	})

	var target core.Address
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		for i := 0; i < perNode; i++ {
			ctx.SendPast(target, inc)
		}
	})

	target = rt.NewObjectOn(0, counter)
	for n := 0; n < nodes; n++ {
		d := rt.NewObjectOn(n, drv)
		rt.Inject(d, kick)
	}
	if _, err := ex.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// One increment must not be lost: the counter object is touched only by
	// node 0's goroutine, increments arrive as messages.
	if got := target.Obj.State(0).Int(); got != nodes*perNode {
		t.Fatalf("counter = %d, want %d", got, nodes*perNode)
	}
	c := rt.TotalStats()
	if c.RemoteSends == 0 {
		t.Error("expected remote traffic")
	}
}

func TestNowTypeAcrossNodes(t *testing.T) {
	ex := New(2, core.Options{})
	rt := ex.RT

	ask := rt.Reg.Register("ask", 1)
	kick := rt.Reg.Register("kick", 0)

	svc := rt.DefineClass("svc", 0, nil)
	svc.Method(ask, func(ctx *core.Ctx) {
		ctx.Reply(core.IntV(ctx.Arg(0).Int() * 2))
	})

	var target core.Address
	var got int64 = -1
	cl := rt.DefineClass("cl", 0, nil)
	cl.Method(kick, func(ctx *core.Ctx) {
		ctx.SendNow(target, ask, []core.Value{core.IntV(21)}, func(ctx *core.Ctx, v core.Value) {
			got = v.Int()
		})
	})

	target = rt.NewObjectOn(1, svc)
	c := rt.NewObjectOn(0, cl)
	rt.Inject(c, kick)
	if _, err := ex.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("reply = %d, want 42", got)
	}
}

func TestRemoteCreateRoundTrip(t *testing.T) {
	ex := New(4, core.Options{})
	rt := ex.RT

	kick := rt.Reg.Register("kick", 0)
	get := rt.Reg.Register("get", 0)

	worker := rt.DefineClass("worker", 1, func(ic *core.InitCtx) {
		ic.SetState(0, ic.CtorArg(0))
	})
	worker.Method(get, func(ctx *core.Ctx) { ctx.Reply(ctx.State(0)) })

	var got int64 = -1
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		ctx.Create(worker, []core.Value{core.IntV(9)}, func(ctx *core.Ctx, a core.Address) {
			ctx.SendNow(a, get, nil, func(ctx *core.Ctx, v core.Value) { got = v.Int() })
		})
	})

	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if _, err := ex.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("readback = %d, want 9", got)
	}
}

func TestForkJoinTreeParallel(t *testing.T) {
	// A binary fork-join tree spanning all nodes, joined with now-replies.
	ex := New(4, core.Options{})
	rt := ex.RT

	compute := rt.Reg.Register("compute", 1)
	done := rt.Reg.Register("done", 1)

	var cls *core.Class
	cls = rt.DefineClass("fj", 0, nil)
	cls.Method(compute, func(ctx *core.Ctx) {
		depth := ctx.Arg(0).Int()
		if depth == 0 {
			ctx.Reply(core.IntV(1))
			return
		}
		ctx.Create(cls, nil, func(ctx *core.Ctx, left core.Address) {
			ctx.Create(cls, nil, func(ctx *core.Ctx, right core.Address) {
				ctx.SendNow(left, compute, []core.Value{core.IntV(depth - 1)}, func(ctx *core.Ctx, lv core.Value) {
					ctx.SendNow(right, compute, []core.Value{core.IntV(depth - 1)}, func(ctx *core.Ctx, rv core.Value) {
						ctx.Reply(core.IntV(lv.Int() + rv.Int()))
					})
				})
			})
		})
	})

	var result int64 = -1
	sink := rt.DefineClass("sink", 0, nil)
	sink.Method(done, func(ctx *core.Ctx) { result = ctx.Arg(0).Int() })

	var root, sinkAddr core.Address
	kick := rt.Reg.Register("kick", 0)
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		ctx.SendNow(root, compute, []core.Value{core.IntV(8)}, func(ctx *core.Ctx, v core.Value) {
			ctx.SendPast(sinkAddr, done, v)
		})
	})

	root = rt.NewObjectOn(1, cls)
	sinkAddr = rt.NewObjectOn(0, sink)
	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if _, err := ex.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result != 256 {
		t.Fatalf("fork-join leaves = %d, want 256", result)
	}
}

func TestSelectiveReceptionParallel(t *testing.T) {
	ex := New(2, core.Options{})
	rt := ex.RT

	start := rt.Reg.Register("start", 0)
	data := rt.Reg.Register("data", 1)
	kick := rt.Reg.Register("kick", 1)

	var got int64 = -1
	var wAddr, fAddr core.Address
	w := rt.DefineClass("w", 0, nil)
	w.Method(start, func(ctx *core.Ctx) {
		// Ask the feeder for data, then wait selectively: the reply cannot
		// arrive before this method completes (the node loop delivers
		// cross-node envelopes between quanta), so the object is already in
		// waiting mode when data lands.
		ctx.SendPast(fAddr, kick, core.RefV(ctx.Self()))
		ctx.WaitFor(func(ctx *core.Ctx, f *core.Frame) { got = f.Arg(0).Int() }, data)
	})
	feeder := rt.DefineClass("feeder", 0, nil)
	feeder.Method(kick, func(ctx *core.Ctx) {
		ctx.SendPast(ctx.Arg(0).Ref(), data, core.IntV(123))
	})

	wAddr = rt.NewObjectOn(0, w)
	fAddr = rt.NewObjectOn(1, feeder)
	rt.Inject(wAddr, start)
	if _, err := ex.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("selective reception got %d, want 123", got)
	}
}

func TestManyMessagesStress(t *testing.T) {
	// A ring of objects passing a token many times; exercises repeated
	// wake/idle transitions of the quiescence detector.
	const nodes = 4
	ex := New(nodes, core.Options{})
	rt := ex.RT

	token := rt.Reg.Register("token", 1)
	var hops atomic.Int64
	addrs := make([]core.Address, nodes)
	cls := rt.DefineClass("ring", 0, nil)
	cls.Method(token, func(ctx *core.Ctx) {
		hops.Add(1)
		n := ctx.Arg(0).Int()
		if n > 0 {
			// addrs is written before Start and read-only afterwards.
			ctx.SendPast(addrs[(ctx.NodeID()+1)%nodes], token, core.IntV(n-1))
		}
	})

	for i := 0; i < nodes; i++ {
		addrs[i] = rt.NewObjectOn(i, cls)
	}
	rt.Inject(addrs[0], token, core.IntV(4000))
	if _, err := ex.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := hops.Load(); got != 4001 {
		t.Fatalf("hops = %d, want 4001", got)
	}
}

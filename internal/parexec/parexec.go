// Package parexec executes an ABCL runtime with real parallelism: one
// goroutine per node, channels in place of the simulated interconnect, and
// wall-clock time in place of virtual time.
//
// The discrete-event machine (package machine) is the reference substrate —
// it reproduces the paper's numbers deterministically. parexec exists to
// validate that the runtime's scheduling logic (package core) is correct
// under true concurrency: the same objects, tables and scheduler run with
// the Go race detector across genuinely parallel nodes. It also serves as a
// demonstration that the paper's architecture maps onto a modern shared-
// nothing execution (each node's objects are touched only by that node's
// goroutine; all cross-node interaction is message passing).
//
// Termination uses a standard distributed-quiescence credit scheme: a
// global in-flight counter is incremented before any cross-node envelope is
// enqueued and decremented after it is processed; the computation is done
// when no envelope is in flight and every node is idle.
package parexec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Exec drives a runtime over goroutine-backed nodes.
type Exec struct {
	RT *core.Runtime

	nodes    []*pnode
	inflight atomic.Int64
	active   atomic.Int64
	done     chan struct{}
	doneOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
	begin    time.Time
}

// pnode is one goroutine-backed processing element. It implements
// core.ExecNode; all core callbacks run on its own goroutine (or on the
// host goroutine before Start).
type pnode struct {
	ex *Exec
	id int
	rt *core.NodeRT

	mu   sync.Mutex
	q    []func()
	wake chan struct{}

	rrNext int
	instr  int64
}

// Charge accounts computation; under real execution it is bookkeeping only.
func (p *pnode) Charge(instr int) { p.instr += int64(instr) }

// Wake signals the node loop; it never blocks.
func (p *pnode) Wake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Now returns wall-clock time since Start as sim.Time nanoseconds.
func (p *pnode) Now() sim.Time {
	if p.ex.begin.IsZero() {
		return 0
	}
	return sim.Time(time.Since(p.ex.begin))
}

// New builds an Exec with n nodes and a fresh runtime.
func New(n int, opt core.Options) *Exec {
	ex := &Exec{
		done: make(chan struct{}),
		stop: make(chan struct{}),
	}
	execNodes := make([]core.ExecNode, n)
	ex.nodes = make([]*pnode, n)
	cost := machine.DefaultCost()
	for i := 0; i < n; i++ {
		p := &pnode{ex: ex, id: i, wake: make(chan struct{}, 1)}
		ex.nodes[i] = p
		execNodes[i] = p
	}
	ex.RT = core.NewRuntimeOn(execNodes, &cost, opt)
	for i, p := range ex.nodes {
		p.rt = ex.RT.NodeRT(i)
	}
	ex.RT.SetRemote((*parRemote)(ex))
	return ex
}

// push enqueues a cross-node envelope for node id. The in-flight counter is
// incremented before the envelope becomes visible, which is what makes the
// quiescence check sound.
func (ex *Exec) push(id int, fire func()) {
	ex.inflight.Add(1)
	p := ex.nodes[id]
	p.mu.Lock()
	p.q = append(p.q, fire)
	p.mu.Unlock()
	p.Wake()
}

func (p *pnode) pop() func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.q) == 0 {
		return nil
	}
	f := p.q[0]
	copy(p.q, p.q[1:])
	p.q[len(p.q)-1] = nil
	p.q = p.q[:len(p.q)-1]
	return f
}

// Start freezes the runtime and launches the node goroutines. Perform all
// setup (class definitions, NewObjectOn, Inject) before calling Start.
func (ex *Exec) Start() {
	if ex.started {
		panic("parexec: Start called twice")
	}
	ex.started = true
	ex.RT.Freeze()
	ex.begin = time.Now()
	ex.active.Store(int64(len(ex.nodes)))
	for _, p := range ex.nodes {
		ex.wg.Add(1)
		go p.loop()
	}
}

// Wait blocks until the computation is quiescent or the timeout elapses.
func (ex *Exec) Wait(timeout time.Duration) error {
	select {
	case <-ex.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("parexec: no quiescence within %v (inflight=%d active=%d)",
			timeout, ex.inflight.Load(), ex.active.Load())
	}
}

// Shutdown stops all node loops and waits for them to exit.
func (ex *Exec) Shutdown() {
	close(ex.stop)
	ex.wg.Wait()
}

// Run is Start + Wait + Shutdown, returning the elapsed wall time.
func (ex *Exec) Run(timeout time.Duration) (time.Duration, error) {
	ex.Start()
	err := ex.Wait(timeout)
	elapsed := time.Since(ex.begin)
	ex.Shutdown()
	return elapsed, err
}

// TotalInstr sums the accounted instruction counts over all nodes.
func (ex *Exec) TotalInstr() int64 {
	var t int64
	for _, p := range ex.nodes {
		t += p.instr
	}
	return t
}

func (p *pnode) loop() {
	defer p.ex.wg.Done()
	for {
		worked := true
		for worked {
			worked = false
			for f := p.pop(); f != nil; f = p.pop() {
				f()
				p.ex.inflight.Add(-1)
				worked = true
			}
			if p.rt.Step() {
				worked = true
				// Drain the scheduler fully before re-checking the mailbox.
				for p.rt.Step() {
				}
			}
		}
		// Idle: report and check global quiescence.
		if p.ex.active.Add(-1) == 0 && p.ex.inflight.Load() == 0 {
			p.ex.doneOnce.Do(func() { close(p.ex.done) })
		}
		select {
		case <-p.wake:
			p.ex.active.Add(1)
		case <-p.ex.stop:
			return
		}
	}
}

// parRemote implements core.Remote over envelopes. Creation is a blocking
// round trip (there is no latency to hide under real execution; the chunk
// stock is a virtual-time optimization studied on the simulator).
type parRemote Exec

func (x *parRemote) SendMessage(n *core.NodeRT, to core.Address, p core.PatternID, args []core.Value, replyTo core.Address) {
	ex := (*Exec)(x)
	target := to.Node
	// The core stages args in a per-node scratch buffer that is reused by
	// the next remote send; snapshot before the envelope crosses goroutines.
	args = append([]core.Value(nil), args...)
	ex.push(target, func() {
		ex.RT.NodeRT(target).DeliverFrame(to.Obj, &core.Frame{Pattern: p, Args: args, ReplyTo: replyTo}, true)
	})
}

func (x *parRemote) Create(ctx *core.Ctx, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	ex := (*Exec)(x)
	n := ctx.NodeRT()
	p := ex.nodes[n.ID()]
	p.rrNext = (p.rrNext + 1) % len(ex.nodes)
	target := p.rrNext
	if target == n.ID() {
		k(ctx, ctx.NewLocal(cl, ctorArgs...))
		return
	}
	n.C.RemoteCreations++
	self := ctx.SelfObject()
	frame := ctx.CurrentFrame()
	from := n.ID()
	ex.push(target, func() {
		tn := ex.RT.NodeRT(target)
		chunk := ex.RT.NewFaultChunk(target)
		ex.RT.InitChunk(tn, chunk, cl, ctorArgs)
		addr := chunk.Addr()
		ex.push(from, func() {
			ex.RT.NodeRT(from).ResumeSaved(self, frame, func(c2 *core.Ctx) { k(c2, addr) })
		})
	})
	ctx.BlockExternal()
}

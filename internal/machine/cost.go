// Package machine models a stock multicomputer in the style of the Fujitsu
// AP1000: point-to-point nodes on a torus network with asynchronous message
// passing, per-sender in-order delivery, and software-polled reception.
//
// All computation is accounted in abstract processor instructions. A Config
// converts instructions to virtual time through a cycles-per-instruction
// factor and a clock rate, so the instruction-count arguments of the paper
// (Tables 1-3) translate directly into simulated latencies.
package machine

// Cost is the instruction-count model for every primitive runtime operation.
// The defaults reproduce the breakdown published in Table 2 of the paper and
// the derived costs of Table 1. All values are in processor instructions.
type Cost struct {
	// Intra-node dormant (stack-based) send path, per Table 2.
	CheckLocality     int // locality check on every send (3)
	LookupCall        int // virtual function table lookup and call (5)
	SwitchVFTPActive  int // switch VFTP to the active-mode table (3)
	CheckMsgQueue     int // check message queue at method completion (3)
	SwitchVFTPDormant int // switch VFTP back to the dormant table (3)
	PollRemote        int // poll for remote message arrival (5)
	StackReturn       int // adjust stack pointer and return (3)

	// Intra-node active (queue-based) send path. The sum of the queueing
	// costs plus dequeue/dispatch yields the paper's ~9.6µs (~104 instr).
	FrameAlloc      int // heap frame allocation
	StoreMessage    int // copying the message into the frame
	EnqueueMsgQ     int // linking the frame into the object's message queue
	EnqueueSchedQ   int // enqueueing the object on the node scheduling queue
	DequeueDispatch int // dequeue from the scheduling queue and dispatch

	// Blocking / resumption (stack unwinding, Figure 3).
	SaveContext    int // saving locals + continuation into a heap frame
	RestoreContext int // restoring a saved context
	ReplyCheck     int // checking the reply destination after a now-send
	ReplyDestAlloc int // allocating the reply destination object
	SwitchVFTPWait int // switching to a waiting-mode table

	// Multiactive scheduling: the per-delivery compatibility check against
	// the receiver's live-invocation counts. Multiactive objects never switch
	// their table pointer, so this replaces the VFTP-switch pair of the
	// serial dormant path.
	GroupCheck int

	// Object creation.
	CreateLocal int // local object allocation + header init (~2.1µs)
	InitObject  int // lazy state-variable initialization on first message

	// Remote (inter-node) software costs, per Section 6.1.
	RemoteSendSetup   int // message setup in the sender's script (~20)
	RemoteRecvExtract int // polling, extraction, system buffer mgmt (~50)
	RemoteHandlerCall int // script (handler) invocation (~10)
	InterruptEntry    int // interrupt entry/exit when arrival is signalled
	//                       by interrupt instead of polling (Section 5)
	BatchRecvExtract int // extraction of the 2nd+ record of a batched packet:
	//                      the per-packet poll and buffer management are paid
	//                      once per physical packet, so later records only pay
	//                      record parsing and cursor advance

	// Remote creation / chunk stock management.
	ForwardHop    int // re-sending a message through a migration forwarder
	MigratePack   int // packing an object's state for migration
	MigrateUnpack int // unpacking migrated state at the target
	StockPop      int // popping a predelivered chunk address locally
	StockPush     int // replenishing the stock on a category-3 reply
	ChunkInit     int // class-specific initialization of a chunk (category 2)
	ChunkRefill   int // allocating the replacement chunk on the target
	FaultEnqueue  int // extra cost of buffering into an uninitialized chunk

	// Checkpointing: the simulated stable store (battery-backed or mirrored
	// store reachable by DMA, in the spirit of the multicomputer object-store
	// mechanisms literature). A snapshot pays a fixed setup plus a per-word
	// streaming cost for everything captured; a restore pays the symmetric
	// read-back costs.
	CkptSetup       int // per-snapshot fixed overhead (walk + DMA setup)
	CkptStoreWord   int // streaming one 8-byte word into the stable store
	RestoreSetup    int // per-restart fixed overhead (locate + DMA setup)
	RestoreLoadWord int // streaming one 8-byte word back from the stable store
}

// DefaultCost returns the calibration used throughout the paper's tables:
// dormant path 25 instructions (2.3µs at 25MHz / CPI 2.3), active path about
// 104 instructions (9.6µs), remote one-way software cost 80 instructions.
func DefaultCost() Cost {
	return Cost{
		CheckLocality:     3,
		LookupCall:        5,
		SwitchVFTPActive:  3,
		CheckMsgQueue:     3,
		SwitchVFTPDormant: 3,
		PollRemote:        5,
		StackReturn:       3,

		FrameAlloc:      20,
		StoreMessage:    10,
		EnqueueMsgQ:     15,
		EnqueueSchedQ:   15,
		DequeueDispatch: 25,

		SaveContext:    18,
		RestoreContext: 14,
		ReplyCheck:     4,
		ReplyDestAlloc: 6,
		SwitchVFTPWait: 3,
		GroupCheck:     4,

		CreateLocal: 23,
		InitObject:  6,

		RemoteSendSetup:   17,
		RemoteRecvExtract: 42,
		RemoteHandlerCall: 10,
		InterruptEntry:    30,
		BatchRecvExtract:  12,

		ForwardHop:    6,
		MigratePack:   14,
		MigrateUnpack: 12,
		StockPop:      5,
		StockPush:     5,
		ChunkInit:     12,
		ChunkRefill:   18,
		FaultEnqueue:  4,

		CkptSetup:       120,
		CkptStoreWord:   2,
		RestoreSetup:    150,
		RestoreLoadWord: 2,
	}
}

// CkptInstr returns the modelled instruction cost of writing a snapshot of
// `bytes` bytes to the stable store.
func (c Cost) CkptInstr(bytes int) int {
	return c.CkptSetup + c.CkptStoreWord*((bytes+7)/8)
}

// RestoreInstr returns the modelled instruction cost of reading a snapshot
// of `bytes` bytes back from the stable store.
func (c Cost) RestoreInstr(bytes int) int {
	return c.RestoreSetup + c.RestoreLoadWord*((bytes+7)/8)
}

// DormantPath returns the total instruction overhead of an intra-node
// past-type message to a dormant object, excluding the method body
// (Table 2's total of 25).
func (c Cost) DormantPath() int {
	return c.CheckLocality + c.LookupCall + c.SwitchVFTPActive +
		c.CheckMsgQueue + c.SwitchVFTPDormant + c.PollRemote + c.StackReturn
}

// ActivePath returns the total instruction overhead of an intra-node message
// to an active object: buffering, scheduling-queue traffic, dispatch, and
// the method-completion epilogue (queue check, poll, return) that the
// queue-based path cannot avoid.
func (c Cost) ActivePath() int {
	return c.CheckLocality + c.LookupCall + c.FrameAlloc + c.StoreMessage +
		c.EnqueueMsgQ + c.EnqueueSchedQ + c.DequeueDispatch +
		c.CheckMsgQueue + c.PollRemote + c.StackReturn
}

// RemoteSoftwareOneWay returns the per-message software instruction cost of
// an inter-node send up to method-body start: locality check and sender
// setup (the paper's ~20), receiver extraction and handler invocation (~50
// plus ~10 script invocation), and the dormant dispatch at the receiver —
// the paper's ~80 instructions each way.
func (c Cost) RemoteSoftwareOneWay() int {
	return c.CheckLocality + c.RemoteSendSetup + c.RemoteRecvExtract +
		c.RemoteHandlerCall + c.LookupCall + c.SwitchVFTPActive
}

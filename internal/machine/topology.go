package machine

import "fmt"

// Topology computes routing distances between nodes. Distances feed the
// per-hop component of network latency.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Hops returns the number of network hops between two node IDs.
	Hops(a, b int) int
	// Validate checks that the topology can host n nodes.
	Validate(n int) error
}

// Torus2D is a two-dimensional wrap-around mesh, the AP1000's T-net shape.
// Nodes are numbered row-major: id = y*W + x.
type Torus2D struct {
	W, H int
}

// NewTorus2D builds a torus with the given dimensions.
func NewTorus2D(w, h int) Torus2D { return Torus2D{W: w, H: h} }

// SquarishTorus returns a torus whose W*H == n with W and H as close as
// possible, matching how AP1000 configurations were laid out.
func SquarishTorus(n int) Torus2D {
	if n <= 0 {
		return Torus2D{W: 1, H: 1}
	}
	best := Torus2D{W: n, H: 1}
	for h := 1; h*h <= n; h++ {
		if n%h == 0 {
			best = Torus2D{W: n / h, H: h}
		}
	}
	return best
}

func (t Torus2D) Name() string { return fmt.Sprintf("torus-%dx%d", t.W, t.H) }

func (t Torus2D) Validate(n int) error {
	if t.W <= 0 || t.H <= 0 {
		return fmt.Errorf("machine: torus dimensions %dx%d invalid", t.W, t.H)
	}
	if t.W*t.H < n {
		return fmt.Errorf("machine: torus %dx%d too small for %d nodes", t.W, t.H, n)
	}
	return nil
}

func (t Torus2D) Hops(a, b int) int {
	ax, ay := a%t.W, a/t.W
	bx, by := b%t.W, b/t.W
	dx := wrapDist(ax, bx, t.W)
	dy := wrapDist(ay, by, t.H)
	return dx + dy
}

// wrapDist returns the shortest ring distance between coordinates a and b
// on a ring of size n.
func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Mesh2D is a two-dimensional mesh without wrap-around links.
type Mesh2D struct {
	W, H int
}

func (m Mesh2D) Name() string { return fmt.Sprintf("mesh-%dx%d", m.W, m.H) }

func (m Mesh2D) Validate(n int) error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("machine: mesh dimensions %dx%d invalid", m.W, m.H)
	}
	if m.W*m.H < n {
		return fmt.Errorf("machine: mesh %dx%d too small for %d nodes", m.W, m.H, n)
	}
	return nil
}

func (m Mesh2D) Hops(a, b int) int {
	ax, ay := a%m.W, a/m.W
	bx, by := b%m.W, b/m.W
	return abs(ax-bx) + abs(ay-by)
}

// FullyConnected treats every pair of distinct nodes as one hop apart,
// useful for isolating software costs from routing distance.
type FullyConnected struct{}

func (FullyConnected) Name() string         { return "full" }
func (FullyConnected) Validate(n int) error { return nil }
func (FullyConnected) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// Hypercube connects nodes whose IDs differ in one bit; hops equal the
// Hamming distance. Node count should be a power of two.
type Hypercube struct{}

func (Hypercube) Name() string { return "hypercube" }

func (Hypercube) Validate(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("machine: hypercube requires power-of-two node count, got %d", n)
	}
	return nil
}

func (Hypercube) Hops(a, b int) int {
	x := uint(a ^ b)
	h := 0
	for x != 0 {
		h++
		x &= x - 1
	}
	return h
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

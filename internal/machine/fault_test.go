package machine

import (
	"testing"

	"repro/internal/sim"
)

// scriptFaults is a hand-scripted FaultModel: it returns the queued link
// outcomes in order and a fixed pause table.
type scriptFaults struct {
	outcomes [][]sim.Time
	paused   map[int][2]sim.Time // node -> [start, end)
}

func (s *scriptFaults) Link(src, dst int, at sim.Time, size int) []sim.Time {
	if len(s.outcomes) == 0 {
		return []sim.Time{0}
	}
	out := s.outcomes[0]
	s.outcomes = s.outcomes[1:]
	return out
}

func (s *scriptFaults) PausedUntil(node int, at sim.Time) sim.Time {
	if w, ok := s.paused[node]; ok && at >= w[0] && at < w[1] {
		return w[1]
	}
	return at
}

type sinkRec struct {
	drops, dups, pauses int
}

func (s *sinkRec) PacketDropped(src, dst int, at sim.Time, cat int)    { s.drops++ }
func (s *sinkRec) PacketDuplicated(src, dst int, at sim.Time, cat int) { s.dups++ }
func (s *sinkRec) NodePaused(node int, at, until sim.Time)             { s.pauses++ }

func TestSendDropAndDuplicate(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	sf := &scriptFaults{outcomes: [][]sim.Time{
		nil,      // first send dropped
		{0, 700}, // second duplicated, copy delayed 700ns
		{0},      // third clean
	}}
	sink := &sinkRec{}
	m.SetFaults(sf)
	m.SetFaultSink(sink)

	var got []sim.Time
	h := func(n *Node, p *Packet) { got = append(got, p.Arrival) }
	src := m.Node(0)
	for i := 0; i < 3; i++ {
		src.Send(&Packet{Dst: 1, Size: 16, Handler: h})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Drop: 1 delivery lost; dup: 2 copies; clean: 1 → 3 deliveries total.
	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3 (drop + dup + clean): %v", len(got), got)
	}
	if sink.drops != 1 || sink.dups != 1 {
		t.Errorf("sink saw drops=%d dups=%d, want 1/1", sink.drops, sink.dups)
	}
	if src.PacketsDropped != 1 || src.PacketsDuped != 1 {
		t.Errorf("node counters drops=%d dups=%d, want 1/1", src.PacketsDropped, src.PacketsDuped)
	}
	if m.TotalDropped() != 1 || m.TotalDuped() != 1 {
		t.Errorf("machine counters drops=%d dups=%d, want 1/1", m.TotalDropped(), m.TotalDuped())
	}
	// All three attempts count as sent exactly once.
	if src.PacketsSent != 3 {
		t.Errorf("PacketsSent = %d, want 3", src.PacketsSent)
	}
	if m.Node(1).PacketsRecvd != 3 {
		t.Errorf("PacketsRecvd = %d, want 3 (duplicate copies both count)", m.Node(1).PacketsRecvd)
	}
	// FIFO per copy: arrivals are strictly increasing.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("arrival order violated: %v", got)
		}
	}
}

func TestNodePauseDefersExecution(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	// Node 1 pauses from t=0 until t=100µs; a packet sent at t=0 arrives at
	// ~1.5µs but its handler must not run before the window ends.
	sf := &scriptFaults{paused: map[int][2]sim.Time{1: {0, 100 * sim.Microsecond}}}
	sink := &sinkRec{}
	m.SetFaults(sf)
	m.SetFaultSink(sink)

	var ranAt sim.Time = -1
	m.Node(0).Send(&Packet{Dst: 1, Size: 16, Handler: func(n *Node, p *Packet) {
		ranAt = m.Eng.Now()
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ranAt < 100*sim.Microsecond {
		t.Errorf("handler ran at %v, inside the pause window", ranAt)
	}
	if sink.pauses == 0 {
		t.Error("sink never notified of the pause")
	}
	if got := m.Node(1).Clock; got < 100*sim.Microsecond {
		t.Errorf("paused node clock = %v, want >= window end", got)
	}
	// The pause must not count as busy time.
	if m.Node(1).Busy >= 100*sim.Microsecond {
		t.Errorf("pause accrued busy time: %v", m.Node(1).Busy)
	}
}

func TestNilFaultsUnchanged(t *testing.T) {
	// Without a fault model the send path must not change behaviour.
	m := MustNew(DefaultConfig(2))
	n := 0
	m.Node(0).Send(&Packet{Dst: 1, Size: 16, Handler: func(*Node, *Packet) { n++ }})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 || m.TotalDropped() != 0 || m.TotalDuped() != 0 {
		t.Fatalf("fault-free delivery broken: n=%d dropped=%d duped=%d", n, m.TotalDropped(), m.TotalDuped())
	}
}

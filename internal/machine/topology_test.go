package machine

import (
	"testing"
	"testing/quick"
)

func TestTorusHopsBasics(t *testing.T) {
	tor := NewTorus2D(4, 4)
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wrap-around on x
		{0, 12, 1}, // wrap-around on y
		{0, 5, 2},
		{0, 10, 4}, // (2,2) away: 2+2
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := tor.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTorusHopsSymmetryProperty(t *testing.T) {
	tor := NewTorus2D(8, 4)
	f := func(a, b uint8) bool {
		x, y := int(a)%32, int(b)%32
		return tor.Hops(x, y) == tor.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusTriangleInequalityProperty(t *testing.T) {
	tor := NewTorus2D(8, 8)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		return tor.Hops(x, z) <= tor.Hops(x, y)+tor.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusMaxDistance(t *testing.T) {
	// On a WxH torus the diameter is floor(W/2)+floor(H/2).
	tor := NewTorus2D(16, 32)
	max := 0
	for b := 0; b < 512; b++ {
		if h := tor.Hops(0, b); h > max {
			max = h
		}
	}
	if want := 8 + 16; max != want {
		t.Fatalf("torus 16x32 diameter = %d, want %d", max, want)
	}
}

func TestSquarishTorus(t *testing.T) {
	cases := []struct {
		n, w, h int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{12, 4, 3},
		{64, 8, 8},
		{512, 32, 16},
		{7, 7, 1}, // prime: degenerate ring
	}
	for _, c := range cases {
		tor := SquarishTorus(c.n)
		if tor.W*tor.H != c.n {
			t.Errorf("SquarishTorus(%d) = %dx%d, product != n", c.n, tor.W, tor.H)
		}
		if tor.W != c.w || tor.H != c.h {
			t.Errorf("SquarishTorus(%d) = %dx%d, want %dx%d", c.n, tor.W, tor.H, c.w, c.h)
		}
		if err := tor.Validate(c.n); err != nil {
			t.Errorf("SquarishTorus(%d) invalid: %v", c.n, err)
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := Mesh2D{W: 4, H: 4}
	if got := m.Hops(0, 3); got != 3 {
		t.Errorf("mesh has no wrap-around: Hops(0,3) = %d, want 3", got)
	}
	if got := m.Hops(0, 15); got != 6 {
		t.Errorf("Hops(0,15) = %d, want 6", got)
	}
}

func TestFullyConnected(t *testing.T) {
	fc := FullyConnected{}
	if fc.Hops(3, 3) != 0 {
		t.Error("self distance must be 0")
	}
	if fc.Hops(0, 511) != 1 {
		t.Error("all pairs must be 1 hop")
	}
	if err := fc.Validate(12345); err != nil {
		t.Error("fully connected must validate any size")
	}
}

func TestHypercube(t *testing.T) {
	hc := Hypercube{}
	if err := hc.Validate(64); err != nil {
		t.Fatal(err)
	}
	if err := hc.Validate(48); err == nil {
		t.Fatal("non-power-of-two should not validate")
	}
	if got := hc.Hops(0b1010, 0b0110); got != 2 {
		t.Errorf("hamming hops = %d, want 2", got)
	}
	if got := hc.Hops(0, 63); got != 6 {
		t.Errorf("hops(0,63) = %d, want 6", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	if err := (Torus2D{W: 2, H: 2}).Validate(5); err == nil {
		t.Error("undersized torus should fail validation")
	}
	if err := (Torus2D{W: 0, H: 4}).Validate(1); err == nil {
		t.Error("zero dimension should fail validation")
	}
	if err := (Mesh2D{W: 2, H: 2}).Validate(5); err == nil {
		t.Error("undersized mesh should fail validation")
	}
}

package machine

import (
	"fmt"

	"repro/internal/sim"
)

// NetConfig models hardware message latency. The total hardware latency of
// one packet is FixedNs + HopNs*hops + NsPerByte*max(0, size-BaseBytes).
// Defaults reproduce the paper's ~1.5µs per-direction hardware latency for
// the small (4-word) messages of Section 6.1 on adjacent nodes.
type NetConfig struct {
	FixedNs   sim.Time // fixed wire + launch latency per packet
	HopNs     sim.Time // additional latency per routing hop
	BaseBytes int      // bytes covered by the fixed latency
	NsPerByte sim.Time // transfer cost per byte beyond BaseBytes (25MB/s = 40ns/B)
}

// DefaultNet returns the AP1000-flavoured hardware latency model.
func DefaultNet() NetConfig {
	return NetConfig{FixedNs: 1490, HopNs: 10, BaseBytes: 16, NsPerByte: 40}
}

// Latency returns the hardware delivery latency for a packet of size bytes
// traversing hops network hops.
func (nc NetConfig) Latency(hops, size int) sim.Time {
	l := nc.FixedNs + nc.HopNs*sim.Time(hops)
	if size > nc.BaseBytes {
		l += nc.NsPerByte * sim.Time(size-nc.BaseBytes)
	}
	return l
}

// NotifyMode selects how message arrival is signalled to the software
// (Section 5: "Message arrival may be notified by polling as in CM-5 or
// AP1000, or by interrupt as in nCUBE/2 or iPSC/2").
type NotifyMode uint8

const (
	// NotifyPolling: the runtime polls for arrivals; every method epilogue
	// pays the PollRemote cost (the AP1000 configuration of the paper).
	NotifyPolling NotifyMode = iota
	// NotifyInterrupt: arrivals interrupt the processor; polling is free
	// but every received packet pays interrupt entry/exit.
	NotifyInterrupt
)

func (m NotifyMode) String() string {
	if m == NotifyInterrupt {
		return "interrupt"
	}
	return "polling"
}

// Config describes a simulated multicomputer.
type Config struct {
	Nodes    int      // number of processing nodes
	ClockMHz float64  // processor clock (AP1000: 25MHz SPARC)
	CPI      float64  // average cycles per instruction (calibrated 2.3)
	Topology Topology // routing distance model; nil = squarish torus
	Cost     Cost     // instruction-cost model
	Net      NetConfig
	Notify   NotifyMode // arrival notification: polling (default) or interrupt
}

// DefaultConfig returns an AP1000-like machine with n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:    n,
		ClockMHz: 25,
		CPI:      2.3,
		Topology: SquarishTorus(n),
		Cost:     DefaultCost(),
		Net:      DefaultNet(),
	}
}

// NsPerInstr returns virtual nanoseconds consumed per instruction.
func (c Config) NsPerInstr() float64 {
	return c.CPI * 1000 / c.ClockMHz
}

// InstrTime converts an instruction count to virtual time.
func (c Config) InstrTime(instr int) sim.Time {
	return sim.Time(float64(instr)*c.NsPerInstr() + 0.5)
}

// FaultModel injects interconnect and node faults into the machine. The
// model must be deterministic: two runs that present the same sequence of
// calls must return the same answers (package fault provides a seed-driven
// implementation). A nil model means a perfectly reliable machine.
type FaultModel interface {
	// Link is consulted once per packet transmission and returns the extra
	// latency of every physical copy to deliver. A one-element slice {0} is
	// normal delivery; an empty slice drops the packet; more than one
	// element duplicates it, each copy with its own extra latency.
	Link(src, dst int, at sim.Time, size int) []sim.Time
	// PausedUntil reports the virtual time until which node is paused at
	// time at. A result <= at means the node is running normally. Pauses
	// take effect at turn boundaries: a turn already under way completes.
	PausedUntil(node int, at sim.Time) sim.Time
}

// FaultSink observes injected faults, so the runtime above can account them
// in its counters and trace. All callbacks run on the simulation goroutine.
type FaultSink interface {
	PacketDropped(src, dst int, at sim.Time, category int)
	PacketDuplicated(src, dst int, at sim.Time, category int)
	NodePaused(node int, at, until sim.Time)
}

// SetFaults installs a fault model. Call before Run; a nil model restores
// perfect reliability.
func (m *Machine) SetFaults(f FaultModel) { m.faults = f }

// Faults returns the installed fault model (nil when the machine is
// perfectly reliable).
func (m *Machine) Faults() FaultModel { return m.faults }

// SetFaultSink installs a fault observer.
func (m *Machine) SetFaultSink(s FaultSink) { m.faultSink = s }

// FaultSink returns the installed fault observer, if any.
func (m *Machine) FaultSink() FaultSink { return m.faultSink }

// Packet is a self-dispatching message in the Active Message style: the
// sender attaches the handler that runs on the receiving node when the
// packet is polled. Payload is opaque to the machine layer.
type Packet struct {
	Src, Dst int
	Size     int // bytes, for bandwidth modelling
	Arrival  sim.Time
	Category int // handler category (for statistics only)
	Handler  func(n *Node, p *Packet)
	Payload  any

	// Msgs is the number of logical messages this physical packet carries.
	// Zero and one both mean an ordinary single-message packet; the wire-path
	// batching layer sets it to the count of coalesced records so the machine
	// can account logical traffic separately from packet launches.
	Msgs int

	// Ctrl routes the packet over the link's control virtual channel:
	// transport acknowledgments and similar protocol traffic that must not
	// queue behind the data stream. Data sends record their arrival into the
	// per-link FIFO clamp at the *processor clock* of the send, which may lie
	// far ahead of engine time inside a long method body; a controller-
	// generated ack transmitted mid-body would otherwise be clamped behind
	// data that, in hardware terms, has not departed yet. The control channel
	// keeps its own FIFO clamp instead.
	Ctrl bool

	// OnArrive, if set, runs in engine context the moment the packet
	// reaches the destination's message controller — before the software
	// handler is scheduled, and regardless of how backlogged or paused the
	// receiving processor is. It models hardware-level actions such as
	// transport acknowledgments. A packet with OnArrive set and a nil
	// Handler is consumed entirely at the controller and never enters the
	// receive queue.
	OnArrive func(n *Node, p *Packet)

	// pooled marks packets obtained from AcquirePacket; the machine
	// recycles them into the receiving node's free list once consumed.
	// Packets built as plain literals are never recycled.
	pooled bool

	// era stamps the machine era the packet was launched in. A global
	// checkpoint restore bumps the machine's era, revoking every packet
	// still in flight from the rolled-back timeline: a stale-era packet is
	// discarded at the destination controller instead of delivered.
	era uint32
}

// Retain removes p from pool management: the machine will not recycle or
// clear it after its handler runs. Handlers that store a packet beyond the
// handler call (e.g. a reorder buffer) must call Retain first.
func (p *Packet) Retain() { p.pooled = false }

// AcquirePacket returns a zeroed packet from the node's free list (or a new
// one), marked for recycling at the receiver once its handler has run.
func (n *Node) AcquirePacket() *Packet {
	if n.m.opt {
		// Optimistic mode: a rollback may replay this packet's delivery, so
		// it must never be recycled out from under the restored event.
		return &Packet{}
	}
	if last := len(n.pktFree) - 1; last >= 0 {
		p := n.pktFree[last]
		n.pktFree[last] = nil
		n.pktFree = n.pktFree[:last]
		p.pooled = true
		return p
	}
	return &Packet{pooled: true}
}

// ReleasePacket returns a pooled packet to this node's free list. Calling
// it on a non-pooled (or retained) packet is a no-op, so it is always safe
// after a handler has run.
func (n *Node) ReleasePacket(p *Packet) {
	if !p.pooled {
		return
	}
	*p = Packet{}
	n.pktFree = append(n.pktFree, p)
}

// Runner is the per-node scheduler installed by the language runtime.
// Step runs one scheduling quantum (typically: dispatch one buffered
// message) and reports whether more queued work remains.
type Runner interface {
	Step() bool
}

// Node is one processing element. All state is owned by the simulation
// goroutine; a Node is not safe for concurrent use.
type Node struct {
	ID    int
	Clock sim.Time // local virtual clock; may run ahead of engine time
	Busy  sim.Time // accumulated compute time, for utilization

	m             *Machine
	lane          int       // engine event lane (node ID + 1; lane 0 is the host)
	rx            []*Packet // delivered packets awaiting poll, in arrival order
	pktFree       []*Packet // recycled packets available to AcquirePacket
	lastArrival   []sim.Time
	lastCtrl      []sim.Time // FIFO clamp of the control virtual channel
	Runner        Runner
	resumePending bool
	inResume      bool
	downUntil     sim.Time // crash outage: node is dead until this time (0 = up)

	// Counters.
	InstrCount     uint64
	PacketsSent    uint64
	PacketsRecvd   uint64
	BytesSent      uint64
	MsgsSent       uint64 // logical messages launched (>= PacketsSent with batching)
	PacketsDropped uint64 // transmissions lost to injected link faults
	PacketsDuped   uint64 // extra copies injected by link faults
	CrashDrops     uint64 // packets lost at the controller while the node was down
	EraDrops       uint64 // in-flight packets revoked by a checkpoint restore
}

// Machine is the full multicomputer: an event engine plus nodes and the
// interconnect model.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	nodes []*Node

	nsPerInstr float64

	faults    FaultModel
	faultSink FaultSink

	// era is the current machine timeline. A global checkpoint restore
	// bumps it, invalidating every packet launched before the restore (see
	// Packet.era); zero-cost on the default path.
	era uint32

	// opt marks optimistic-execution mode: packet pooling is disabled so a
	// rolled-back delivery can be replayed against an intact packet (see
	// optimistic.go). optStats accumulates the Time Warp run statistics.
	opt      bool
	optStats sim.OptStats

	// Typed event kinds registered with the engine, so the hot delivery
	// and scheduling paths dispatch through a switch instead of allocating
	// a captured closure per event.
	deliverKind sim.Kind // arg: *Packet, fires on the destination's lane
	resumeKind  sim.Kind // arg: *Node, fires on the node's own lane
}

// TotalPackets returns the machine-wide count of transmitted packets.
func (m *Machine) TotalPackets() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.PacketsSent
	}
	return t
}

// TotalMsgs returns the machine-wide count of logical messages launched.
// Without batching it equals TotalPackets; with batching it exceeds it, and
// the ratio is the mean aggregation factor.
func (m *Machine) TotalMsgs() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.MsgsSent
	}
	return t
}

// TotalBytes returns the machine-wide count of transmitted bytes.
func (m *Machine) TotalBytes() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.BytesSent
	}
	return t
}

// TotalDropped returns the machine-wide count of packets lost to injected
// link faults.
func (m *Machine) TotalDropped() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.PacketsDropped
	}
	return t
}

// TotalCrashDrops returns the machine-wide count of packets lost at dead
// message controllers during crash outages.
func (m *Machine) TotalCrashDrops() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.CrashDrops
	}
	return t
}

// TotalDuped returns the machine-wide count of extra packet copies injected
// by link faults.
func (m *Machine) TotalDuped() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.PacketsDuped
	}
	return t
}

// New builds a machine from cfg. It validates the topology against the node
// count.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("machine: node count %d invalid", cfg.Nodes)
	}
	if cfg.ClockMHz <= 0 || cfg.CPI <= 0 {
		return nil, fmt.Errorf("machine: clock %.1fMHz / CPI %.2f invalid", cfg.ClockMHz, cfg.CPI)
	}
	if cfg.Topology == nil {
		cfg.Topology = SquarishTorus(cfg.Nodes)
	}
	if err := cfg.Topology.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	if cfg.Notify == NotifyInterrupt {
		// Interrupt-driven reception: no polling on the fast path, but each
		// arriving packet pays interrupt entry/exit on top of extraction.
		cfg.Cost.RemoteRecvExtract += cfg.Cost.InterruptEntry
		cfg.Cost.PollRemote = 0
	}
	m := &Machine{
		Cfg:        cfg,
		Eng:        sim.NewEngine(),
		nsPerInstr: cfg.NsPerInstr(),
	}
	// One event lane per node plus lane 0 for the host; typed kinds keep
	// the per-packet and per-turn scheduling allocation-free.
	m.Eng.SetLanes(cfg.Nodes + 1)
	m.deliverKind = m.Eng.RegisterHandler(func(at sim.Time, arg any) {
		p := arg.(*Packet)
		m.nodes[p.Dst].deliver(p)
	})
	m.resumeKind = m.Eng.RegisterHandler(func(at sim.Time, arg any) {
		arg.(*Node).resumeAt(at)
	})
	m.nodes = make([]*Node, cfg.Nodes)
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:          i,
			m:           m,
			lane:        i + 1,
			lastArrival: make([]sim.Time, cfg.Nodes),
			lastCtrl:    make([]sim.Time, cfg.Nodes),
		}
	}
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns node id.
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// Nodes returns the node count.
func (m *Machine) Nodes() int { return len(m.nodes) }

// Run drives the simulation until quiescence (no pending events).
func (m *Machine) Run() error {
	_, err := m.Eng.Run()
	return err
}

// Lookahead returns the minimum latency of any cross-node packet: the
// fixed wire cost plus one routing hop. Every cross-node effect lands at
// least this far ahead of the sending node's clock, which is what makes
// conservative parallel execution windows safe.
func (m *Machine) Lookahead() sim.Time {
	return m.Cfg.Net.FixedNs + m.Cfg.Net.HopNs
}

// ParallelRun drives the simulation to quiescence like Run, executing
// independent node lanes concurrently on up to workers goroutines inside
// conservative virtual-time windows bounded by the network lookahead.
// Results are identical to Run.
func (m *Machine) ParallelRun(workers int) error {
	_, err := m.Eng.RunParallel(workers, m.Lookahead())
	return err
}

// ParWindows reports how many conservative windows (one barrier each) the
// last ParallelRun executed.
func (m *Machine) ParWindows() uint64 { return m.Eng.ParWindows() }

// MaxClock returns the largest node clock, i.e. the parallel makespan.
func (m *Machine) MaxClock() sim.Time {
	var max sim.Time
	for _, n := range m.nodes {
		if n.Clock > max {
			max = n.Clock
		}
	}
	return max
}

// Utilization returns total busy time divided by (makespan × nodes).
func (m *Machine) Utilization() float64 {
	span := m.MaxClock()
	if span == 0 {
		return 0
	}
	var busy sim.Time
	for _, n := range m.nodes {
		busy += n.Busy
	}
	return float64(busy) / (float64(span) * float64(len(m.nodes)))
}

// TotalInstr sums instruction counts over all nodes.
func (m *Machine) TotalInstr() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.InstrCount
	}
	return t
}

// Charge advances the node clock by instr instructions of compute.
func (n *Node) Charge(instr int) {
	if instr <= 0 {
		return
	}
	d := sim.Time(float64(instr)*n.m.nsPerInstr + 0.5)
	n.Clock += d
	n.Busy += d
	n.InstrCount += uint64(instr)
}

// ChargeNs advances the node clock by raw virtual time (used for modelled
// computation not expressed in instructions).
func (n *Node) ChargeNs(d sim.Time) {
	if d <= 0 {
		return
	}
	n.Clock += d
	n.Busy += d
}

// SyncClock advances the node's clock to at least t without accruing busy
// time, modelling idle waiting (e.g. a timer expiring on an idle node).
func (n *Node) SyncClock(t sim.Time) {
	if n.Clock < t {
		n.Clock = t
	}
}

// Hops returns the routing distance from this node to dst.
func (n *Node) Hops(dst int) int {
	return n.m.Cfg.Topology.Hops(n.ID, dst)
}

// Send transmits p to its destination node. The packet departs at the
// sender's current clock; hardware latency is added by the interconnect
// model, and per-(src,dst) FIFO ordering is enforced (the paper's
// "preservation of transmission order"). Software send cost must already
// have been charged by the caller.
// Send returns the scheduled arrival time of the first physical copy, or
// Dropped if the fault model discarded the packet. Callers that assume a
// reliable interconnect may ignore the result.
func (n *Node) Send(p *Packet) sim.Time {
	return n.sendAt(n.Clock, p)
}

// ControllerSend transmits p on behalf of the node's message controller at
// virtual time at, independent of the processor's clock. It models
// hardware-originated traffic (e.g. transport acknowledgments) that does
// not occupy the CPU: no software cost is charged and the processor may be
// busy or paused. The fault model and FIFO clamp still apply.
func (n *Node) ControllerSend(at sim.Time, p *Packet) sim.Time {
	return n.sendAt(at, p)
}

func (n *Node) sendAt(at sim.Time, p *Packet) sim.Time {
	if p.Dst < 0 || p.Dst >= len(n.m.nodes) {
		panic(fmt.Sprintf("machine: send to invalid node %d", p.Dst))
	}
	p.Src = n.ID
	p.era = n.m.era
	dst := n.m.nodes[p.Dst]
	hops := n.m.Cfg.Topology.Hops(n.ID, p.Dst)
	base := n.m.Cfg.Net.Latency(hops, p.Size)

	n.PacketsSent++
	n.BytesSent += uint64(p.Size)
	if p.Msgs > 1 {
		n.MsgsSent += uint64(p.Msgs)
	} else {
		n.MsgsSent++
	}

	// Consult the fault model: one extra-latency entry per physical copy.
	copies := oneCopy
	if n.m.faults != nil {
		copies = n.m.faults.Link(n.ID, p.Dst, at, p.Size)
	}
	if len(copies) == 0 {
		n.PacketsDropped++
		if n.m.faultSink != nil {
			n.m.faultSink.PacketDropped(n.ID, p.Dst, at, p.Category)
		}
		// The packet never reaches a receiver, so the sender recycles it.
		n.ReleasePacket(p)
		return Dropped
	}
	first := Dropped
	for i, extra := range copies {
		cp := p
		if i > 0 {
			dup := *p
			cp = &dup
			n.PacketsDuped++
			if n.m.faultSink != nil {
				n.m.faultSink.PacketDuplicated(n.ID, p.Dst, at, p.Category)
			}
		}
		arrival := at + base + extra
		// Per-(src,dst) FIFO ordering is enforced per copy (the paper's
		// "preservation of transmission order"): jitter delays but never
		// reorders a link; only drop+retransmit can reorder logically.
		// Control-channel traffic (Packet.Ctrl) is clamped separately so
		// protocol packets never queue behind the data stream.
		clamp := dst.lastArrival
		if p.Ctrl {
			clamp = dst.lastCtrl
		}
		if last := clamp[n.ID]; arrival <= last {
			arrival = last + 1
		}
		clamp[n.ID] = arrival
		cp.Arrival = arrival
		if i == 0 {
			first = arrival
		}
		n.m.Eng.ScheduleOn(n.lane, dst.lane, arrival, n.m.deliverKind, cp)
	}
	return first
}

// Dropped is returned by Send when the fault model discarded the packet.
const Dropped = sim.Time(-1)

// oneCopy is the fault-free delivery schedule, shared to keep the common
// path allocation-free.
var oneCopy = []sim.Time{0}

// BeginOutage crashes the node until the given virtual time: all packets
// already in its receive queue are lost, and packets arriving while the node
// is down are discarded at the message controller. Higher layers (package
// checkpoint) are responsible for discarding their own per-node state and
// for restoring it at restart; the machine only models the dead interval.
func (n *Node) BeginOutage(until sim.Time) {
	n.downUntil = until
	for i, p := range n.rx {
		n.rx[i] = nil
		n.CrashDrops++
		n.ReleasePacket(p)
	}
	n.rx = n.rx[:0]
}

// EndOutage marks the node as up again, advances its clock to the restart
// time without accruing busy time, and schedules a scheduler turn so restored
// work resumes.
func (n *Node) EndOutage(at sim.Time) {
	n.downUntil = 0
	n.SyncClock(at)
	n.ensureResume()
}

// Down reports whether the node is inside a crash outage at time at.
func (n *Node) Down(at sim.Time) bool { return n.downUntil > at }

// BumpEra starts a new machine timeline: every packet currently in flight
// (scheduled for delivery but not yet delivered) is revoked and will be
// discarded at its destination's controller. Called by the checkpoint
// subsystem when a global restore rolls the runtime back to a snapshot.
func (m *Machine) BumpEra() { m.era++ }

// DropRx discards every delivered-but-unpolled packet, counting them as
// era drops. Used by a global checkpoint restore to clear the receive
// queues of surviving nodes before their state is rolled back.
func (n *Node) DropRx() {
	for i, p := range n.rx {
		n.rx[i] = nil
		n.EraDrops++
		n.ReleasePacket(p)
	}
	n.rx = n.rx[:0]
}

// TotalEraDrops returns the machine-wide count of packets revoked by
// checkpoint restores.
func (m *Machine) TotalEraDrops() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.EraDrops
	}
	return t
}

// deliver runs at the packet's arrival time on the engine: the message
// controller hook fires first, then the packet joins the node's receive
// queue and the node is woken if idle. Controller-only packets (OnArrive
// set, nil Handler) never reach the processor.
func (n *Node) deliver(p *Packet) {
	if p.era != n.m.era {
		// Launched before a global checkpoint restore: the timeline that
		// produced this packet was rolled back, so it never happened.
		n.EraDrops++
		n.ReleasePacket(p)
		return
	}
	if n.downUntil > p.Arrival {
		// The node is crashed: its message controller is dead, so the packet
		// is lost in its entirety — no OnArrive, no ack, no buffering.
		n.CrashDrops++
		n.ReleasePacket(p)
		return
	}
	if p.OnArrive != nil {
		p.OnArrive(n, p)
		if p.Handler == nil {
			// Consumed entirely at the controller: recycle here.
			n.ReleasePacket(p)
			return
		}
	}
	if n.Clock < p.Arrival {
		n.Clock = p.Arrival
	}
	n.rx = append(n.rx, p)
	n.ensureResume()
}

// Wake schedules the node's scheduler loop if it is not already pending,
// e.g. after external work has been queued on its Runner.
func (n *Node) Wake() { n.ensureResume() }

// Now returns the node's local virtual clock.
func (n *Node) Now() sim.Time { return n.Clock }

// EventNow returns the virtual time of the node's lane: the timestamp of
// the event currently firing on it. Unlike Engine.Now, it is safe from
// handlers running inside a ParallelRun window.
func (n *Node) EventNow() sim.Time { return n.m.Eng.LaneNow(n.lane) }

// Lane returns the node's engine event lane.
func (n *Node) Lane() int { return n.lane }

func (n *Node) ensureResume() {
	if n.resumePending || n.inResume {
		return
	}
	n.resumePending = true
	n.m.Eng.ScheduleOn(n.lane, n.lane, n.Clock, n.m.resumeKind, n)
}

// resumeAt is one node turn, fired at virtual time now: poll arrived
// packets, run one scheduler quantum, and reschedule if work remains.
// Keeping turns small interleaves node progress correctly in virtual time.
func (n *Node) resumeAt(now sim.Time) {
	n.resumePending = false
	if n.downUntil > now {
		// The node crashed after this turn was scheduled: nothing runs. The
		// restart path (EndOutage) schedules a fresh turn for the restored
		// state, so a dead turn is simply discarded, not deferred.
		return
	}
	if f := n.m.faults; f != nil {
		if until := f.PausedUntil(n.ID, now); until > now {
			// The node is inside an injected pause window: defer this turn
			// to the window's end. Arriving packets keep buffering in rx.
			if n.m.faultSink != nil {
				n.m.faultSink.NodePaused(n.ID, now, until)
			}
			n.resumePending = true
			n.m.Eng.ScheduleFuncOn(n.lane, n.lane, until, func() {
				// The pause consumed real (virtual) time on this node, but
				// no busy time: advance the clock without accruing work.
				if n.Clock < until {
					n.Clock = until
				}
				n.resumeAt(until)
			})
			return
		}
	}
	n.inResume = true
	n.Poll()
	more := false
	if n.Runner != nil {
		more = n.Runner.Step()
	}
	n.inResume = false
	if more || len(n.rx) > 0 {
		n.ensureResume()
	}
}

// Poll dispatches all arrived packets to their attached handlers, in
// arrival order. Handlers run on this node and may advance its clock.
func (n *Node) Poll() {
	// Cursor walk instead of shifting the queue per packet: handlers never
	// deliver synchronously (delivery is an engine event), but the bound is
	// re-read each iteration in case that ever changes.
	for i := 0; i < len(n.rx); i++ {
		p := n.rx[i]
		n.rx[i] = nil
		n.PacketsRecvd++
		if p.Handler != nil {
			p.Handler(n, p)
		}
		n.ReleasePacket(p)
	}
	n.rx = n.rx[:0]
}

// PendingRx reports the number of delivered-but-unpolled packets.
func (n *Node) PendingRx() int { return len(n.rx) }

package machine

import (
	"fmt"

	"repro/internal/sim"
)

// NetConfig models hardware message latency. The total hardware latency of
// one packet is FixedNs + HopNs*hops + NsPerByte*max(0, size-BaseBytes).
// Defaults reproduce the paper's ~1.5µs per-direction hardware latency for
// the small (4-word) messages of Section 6.1 on adjacent nodes.
type NetConfig struct {
	FixedNs   sim.Time // fixed wire + launch latency per packet
	HopNs     sim.Time // additional latency per routing hop
	BaseBytes int      // bytes covered by the fixed latency
	NsPerByte sim.Time // transfer cost per byte beyond BaseBytes (25MB/s = 40ns/B)
}

// DefaultNet returns the AP1000-flavoured hardware latency model.
func DefaultNet() NetConfig {
	return NetConfig{FixedNs: 1490, HopNs: 10, BaseBytes: 16, NsPerByte: 40}
}

// Latency returns the hardware delivery latency for a packet of size bytes
// traversing hops network hops.
func (nc NetConfig) Latency(hops, size int) sim.Time {
	l := nc.FixedNs + nc.HopNs*sim.Time(hops)
	if size > nc.BaseBytes {
		l += nc.NsPerByte * sim.Time(size-nc.BaseBytes)
	}
	return l
}

// NotifyMode selects how message arrival is signalled to the software
// (Section 5: "Message arrival may be notified by polling as in CM-5 or
// AP1000, or by interrupt as in nCUBE/2 or iPSC/2").
type NotifyMode uint8

const (
	// NotifyPolling: the runtime polls for arrivals; every method epilogue
	// pays the PollRemote cost (the AP1000 configuration of the paper).
	NotifyPolling NotifyMode = iota
	// NotifyInterrupt: arrivals interrupt the processor; polling is free
	// but every received packet pays interrupt entry/exit.
	NotifyInterrupt
)

func (m NotifyMode) String() string {
	if m == NotifyInterrupt {
		return "interrupt"
	}
	return "polling"
}

// Config describes a simulated multicomputer.
type Config struct {
	Nodes    int      // number of processing nodes
	ClockMHz float64  // processor clock (AP1000: 25MHz SPARC)
	CPI      float64  // average cycles per instruction (calibrated 2.3)
	Topology Topology // routing distance model; nil = squarish torus
	Cost     Cost     // instruction-cost model
	Net      NetConfig
	Notify   NotifyMode // arrival notification: polling (default) or interrupt
}

// DefaultConfig returns an AP1000-like machine with n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:    n,
		ClockMHz: 25,
		CPI:      2.3,
		Topology: SquarishTorus(n),
		Cost:     DefaultCost(),
		Net:      DefaultNet(),
	}
}

// NsPerInstr returns virtual nanoseconds consumed per instruction.
func (c Config) NsPerInstr() float64 {
	return c.CPI * 1000 / c.ClockMHz
}

// InstrTime converts an instruction count to virtual time.
func (c Config) InstrTime(instr int) sim.Time {
	return sim.Time(float64(instr)*c.NsPerInstr() + 0.5)
}

// Packet is a self-dispatching message in the Active Message style: the
// sender attaches the handler that runs on the receiving node when the
// packet is polled. Payload is opaque to the machine layer.
type Packet struct {
	Src, Dst int
	Size     int // bytes, for bandwidth modelling
	Arrival  sim.Time
	Category int // handler category 1-4 (for statistics only)
	Handler  func(n *Node, p *Packet)
	Payload  any
}

// Runner is the per-node scheduler installed by the language runtime.
// Step runs one scheduling quantum (typically: dispatch one buffered
// message) and reports whether more queued work remains.
type Runner interface {
	Step() bool
}

// Node is one processing element. All state is owned by the simulation
// goroutine; a Node is not safe for concurrent use.
type Node struct {
	ID    int
	Clock sim.Time // local virtual clock; may run ahead of engine time
	Busy  sim.Time // accumulated compute time, for utilization

	m             *Machine
	rx            []*Packet // delivered packets awaiting poll, in arrival order
	lastArrival   []sim.Time
	Runner        Runner
	resumePending bool
	inResume      bool

	// Counters.
	InstrCount   uint64
	PacketsSent  uint64
	PacketsRecvd uint64
	BytesSent    uint64
}

// Machine is the full multicomputer: an event engine plus nodes and the
// interconnect model.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	nodes []*Node

	nsPerInstr float64

	// Global counters.
	TotalPackets uint64
	TotalBytes   uint64
}

// New builds a machine from cfg. It validates the topology against the node
// count.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("machine: node count %d invalid", cfg.Nodes)
	}
	if cfg.ClockMHz <= 0 || cfg.CPI <= 0 {
		return nil, fmt.Errorf("machine: clock %.1fMHz / CPI %.2f invalid", cfg.ClockMHz, cfg.CPI)
	}
	if cfg.Topology == nil {
		cfg.Topology = SquarishTorus(cfg.Nodes)
	}
	if err := cfg.Topology.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	if cfg.Notify == NotifyInterrupt {
		// Interrupt-driven reception: no polling on the fast path, but each
		// arriving packet pays interrupt entry/exit on top of extraction.
		cfg.Cost.RemoteRecvExtract += cfg.Cost.InterruptEntry
		cfg.Cost.PollRemote = 0
	}
	m := &Machine{
		Cfg:        cfg,
		Eng:        sim.NewEngine(),
		nsPerInstr: cfg.NsPerInstr(),
	}
	m.nodes = make([]*Node, cfg.Nodes)
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:          i,
			m:           m,
			lastArrival: make([]sim.Time, cfg.Nodes),
		}
	}
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns node id.
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// Nodes returns the node count.
func (m *Machine) Nodes() int { return len(m.nodes) }

// Run drives the simulation until quiescence (no pending events).
func (m *Machine) Run() error {
	_, err := m.Eng.Run()
	return err
}

// MaxClock returns the largest node clock, i.e. the parallel makespan.
func (m *Machine) MaxClock() sim.Time {
	var max sim.Time
	for _, n := range m.nodes {
		if n.Clock > max {
			max = n.Clock
		}
	}
	return max
}

// Utilization returns total busy time divided by (makespan × nodes).
func (m *Machine) Utilization() float64 {
	span := m.MaxClock()
	if span == 0 {
		return 0
	}
	var busy sim.Time
	for _, n := range m.nodes {
		busy += n.Busy
	}
	return float64(busy) / (float64(span) * float64(len(m.nodes)))
}

// TotalInstr sums instruction counts over all nodes.
func (m *Machine) TotalInstr() uint64 {
	var t uint64
	for _, n := range m.nodes {
		t += n.InstrCount
	}
	return t
}

// Charge advances the node clock by instr instructions of compute.
func (n *Node) Charge(instr int) {
	if instr <= 0 {
		return
	}
	d := sim.Time(float64(instr)*n.m.nsPerInstr + 0.5)
	n.Clock += d
	n.Busy += d
	n.InstrCount += uint64(instr)
}

// ChargeNs advances the node clock by raw virtual time (used for modelled
// computation not expressed in instructions).
func (n *Node) ChargeNs(d sim.Time) {
	if d <= 0 {
		return
	}
	n.Clock += d
	n.Busy += d
}

// Hops returns the routing distance from this node to dst.
func (n *Node) Hops(dst int) int {
	return n.m.Cfg.Topology.Hops(n.ID, dst)
}

// Send transmits p to its destination node. The packet departs at the
// sender's current clock; hardware latency is added by the interconnect
// model, and per-(src,dst) FIFO ordering is enforced (the paper's
// "preservation of transmission order"). Software send cost must already
// have been charged by the caller.
func (n *Node) Send(p *Packet) {
	if p.Dst < 0 || p.Dst >= len(n.m.nodes) {
		panic(fmt.Sprintf("machine: send to invalid node %d", p.Dst))
	}
	p.Src = n.ID
	dst := n.m.nodes[p.Dst]
	hops := n.m.Cfg.Topology.Hops(n.ID, p.Dst)
	arrival := n.Clock + n.m.Cfg.Net.Latency(hops, p.Size)
	if last := dst.lastArrival[n.ID]; arrival <= last {
		arrival = last + 1
	}
	dst.lastArrival[n.ID] = arrival
	p.Arrival = arrival

	n.PacketsSent++
	n.BytesSent += uint64(p.Size)
	n.m.TotalPackets++
	n.m.TotalBytes += uint64(p.Size)

	n.m.Eng.Schedule(arrival, func() { dst.deliver(p) })
}

// deliver runs at the packet's arrival time on the engine: the packet joins
// the node's receive queue and the node is woken if idle.
func (n *Node) deliver(p *Packet) {
	if n.Clock < p.Arrival {
		n.Clock = p.Arrival
	}
	n.rx = append(n.rx, p)
	n.ensureResume()
}

// Wake schedules the node's scheduler loop if it is not already pending,
// e.g. after external work has been queued on its Runner.
func (n *Node) Wake() { n.ensureResume() }

// Now returns the node's local virtual clock.
func (n *Node) Now() sim.Time { return n.Clock }

func (n *Node) ensureResume() {
	if n.resumePending || n.inResume {
		return
	}
	n.resumePending = true
	n.m.Eng.Schedule(n.Clock, n.resume)
}

// resume is one node turn: poll arrived packets, run one scheduler quantum,
// and reschedule if work remains. Keeping turns small interleaves node
// progress correctly in virtual time.
func (n *Node) resume() {
	n.resumePending = false
	n.inResume = true
	n.Poll()
	more := false
	if n.Runner != nil {
		more = n.Runner.Step()
	}
	n.inResume = false
	if more || len(n.rx) > 0 {
		n.ensureResume()
	}
}

// Poll dispatches all arrived packets to their attached handlers, in
// arrival order. Handlers run on this node and may advance its clock.
func (n *Node) Poll() {
	for len(n.rx) > 0 {
		p := n.rx[0]
		copy(n.rx, n.rx[1:])
		n.rx[len(n.rx)-1] = nil
		n.rx = n.rx[:len(n.rx)-1]
		n.PacketsRecvd++
		if p.Handler != nil {
			p.Handler(n, p)
		}
	}
}

// PendingRx reports the number of delivered-but-unpolled packets.
func (n *Node) PendingRx() int { return len(n.rx) }

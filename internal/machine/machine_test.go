package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefaultCostCalibration(t *testing.T) {
	cfg := DefaultConfig(2)
	c := cfg.Cost

	// Table 2: dormant-path overhead is 25 instructions.
	if got := c.DormantPath(); got != 25 {
		t.Errorf("dormant path = %d instructions, want 25", got)
	}
	// Table 1: 25 instructions at 25MHz / CPI 2.3 is 2.3µs.
	if got := cfg.InstrTime(c.DormantPath()); got != 2300 {
		t.Errorf("dormant path time = %v, want 2.3µs", got)
	}
	// Active path about 9.6µs.
	at := cfg.InstrTime(c.ActivePath())
	if at < 9*sim.Microsecond || at > 10*sim.Microsecond {
		t.Errorf("active path time = %v, want ~9.6µs", at)
	}
	// Local creation about 2.1µs.
	ct := cfg.InstrTime(c.CreateLocal)
	if ct < 2000 || ct > 2200 {
		t.Errorf("local creation time = %v, want ~2.1µs", ct)
	}
	// Remote one-way: 80 instructions software + 1.5µs hardware = ~8.9µs.
	oneWay := cfg.InstrTime(c.RemoteSoftwareOneWay()) + cfg.Net.Latency(1, 16)
	if oneWay < 8800 || oneWay > 9000 {
		t.Errorf("remote one-way latency = %v, want ~8.9µs", oneWay)
	}
}

func TestNsPerInstr(t *testing.T) {
	cfg := DefaultConfig(1)
	if got := cfg.NsPerInstr(); got != 92.0 {
		t.Errorf("NsPerInstr = %v, want 92 (CPI 2.3 at 25MHz)", got)
	}
}

func TestNetLatency(t *testing.T) {
	nc := DefaultNet()
	if got := nc.Latency(1, 16); got != 1500 {
		t.Errorf("neighbor small packet = %v, want 1.5µs", got)
	}
	if got := nc.Latency(1, 16+100); got != 1500+4000 {
		t.Errorf("large packet = %v, want fixed + 100B at 40ns/B", got)
	}
	if nc.Latency(5, 16) <= nc.Latency(1, 16) {
		t.Error("more hops must cost more")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, ClockMHz: 25, CPI: 2.3}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := New(Config{Nodes: 4, ClockMHz: 0, CPI: 2.3}); err == nil {
		t.Error("zero clock should fail")
	}
	cfg := DefaultConfig(4)
	cfg.Topology = Torus2D{W: 1, H: 1}
	if _, err := New(cfg); err == nil {
		t.Error("undersized topology should fail")
	}
	if _, err := New(DefaultConfig(16)); err != nil {
		t.Errorf("default config should build: %v", err)
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	m := MustNew(DefaultConfig(1))
	n := m.Node(0)
	n.Charge(25)
	if n.Clock != 2300 {
		t.Errorf("clock = %v after 25 instructions, want 2.3µs", n.Clock)
	}
	if n.Busy != 2300 {
		t.Errorf("busy = %v, want 2.3µs", n.Busy)
	}
	if n.InstrCount != 25 {
		t.Errorf("instr count = %d, want 25", n.InstrCount)
	}
	n.Charge(0)
	n.Charge(-5)
	if n.Clock != 2300 {
		t.Error("non-positive charges must be no-ops")
	}
	n.ChargeNs(700)
	if n.Clock != 3000 {
		t.Errorf("clock = %v after ChargeNs, want 3µs", n.Clock)
	}
}

func TestSendDeliversWithLatency(t *testing.T) {
	m := MustNew(DefaultConfig(4))
	src, dst := m.Node(0), m.Node(1)
	var deliveredAt sim.Time
	src.Charge(10) // depart at 920ns
	src.Send(&Packet{Dst: 1, Size: 16, Handler: func(n *Node, p *Packet) {
		deliveredAt = n.Clock
		if n.ID != 1 {
			t.Errorf("handler ran on node %d, want 1", n.ID)
		}
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := src.Clock + m.Cfg.Net.Latency(1, 16)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if dst.PacketsRecvd != 1 || src.PacketsSent != 1 {
		t.Error("packet counters not updated")
	}
	if m.TotalPackets() != 1 {
		t.Errorf("machine total packets = %d, want 1", m.TotalPackets())
	}
}

func TestSendFIFOPerPair(t *testing.T) {
	// Two packets from the same source to the same destination must arrive
	// in send order even if sizes would reorder them.
	m := MustNew(DefaultConfig(2))
	src := m.Node(0)
	var order []int
	src.Send(&Packet{Dst: 1, Size: 4096, Handler: func(n *Node, p *Packet) { order = append(order, 1) }})
	src.Send(&Packet{Dst: 1, Size: 16, Handler: func(n *Node, p *Packet) { order = append(order, 2) }})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2] (per-pair FIFO)", order)
	}
}

func TestCrossPairNoOrdering(t *testing.T) {
	// Packets from different sources are independent: a later send over a
	// shorter path may arrive first.
	m := MustNew(DefaultConfig(16)) // 4x4 torus
	far := m.Node(10)               // 4 hops from node 0
	near := m.Node(1)               // 1 hop
	var order []int
	far.Send(&Packet{Dst: 0, Size: 4096, Handler: func(n *Node, p *Packet) { order = append(order, 1) }})
	near.Send(&Packet{Dst: 0, Size: 16, Handler: func(n *Node, p *Packet) { order = append(order, 2) }})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("delivery order = %v, want near packet first", order)
	}
}

func TestDeliveryAdvancesIdleNodeClock(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	m.Node(0).Send(&Packet{Dst: 1, Size: 16})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Node(1).Clock < 1500 {
		t.Errorf("idle receiver clock = %v, want >= delivery time", m.Node(1).Clock)
	}
}

type countRunner struct {
	steps int
	left  int
	node  *Node
	cost  int
}

func (r *countRunner) Step() bool {
	if r.left == 0 {
		return false
	}
	r.left--
	r.steps++
	r.node.Charge(r.cost)
	return r.left > 0
}

func TestRunnerQuantumLoop(t *testing.T) {
	m := MustNew(DefaultConfig(1))
	n := m.Node(0)
	r := &countRunner{left: 5, node: n, cost: 10}
	n.Runner = r
	n.Wake()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if r.steps != 5 {
		t.Fatalf("runner stepped %d times, want 5", r.steps)
	}
	if n.Clock != 5*920 {
		t.Fatalf("clock = %v, want 4.6µs for 50 instructions", n.Clock)
	}
}

func TestQuantumInterleavingAcrossNodes(t *testing.T) {
	// Two nodes with queued work must advance in virtual-time order, not
	// one node running to completion first.
	m := MustNew(DefaultConfig(2))
	var trace []int
	mk := func(id, work, cost int) *countRunner {
		n := m.Node(id)
		r := &countRunner{left: work, node: n, cost: cost}
		n.Runner = r
		return r
	}
	// Node 0 steps cost 100 instr, node 1 steps cost 30 instr; interleaved
	// firing should show node 1 fitting several steps per node-0 step.
	r0, r1 := mk(0, 3, 100), mk(1, 10, 30)
	orig0, orig1 := m.Node(0), m.Node(1)
	wrap := func(n *Node, r *countRunner) Runner {
		return runnerFunc(func() bool {
			more := r.Step()
			trace = append(trace, n.ID)
			return more
		})
	}
	orig0.Runner = wrap(orig0, r0)
	orig1.Runner = wrap(orig1, r1)
	orig0.Wake()
	orig1.Wake()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if r0.steps != 3 || r1.steps != 10 {
		t.Fatalf("steps = %d,%d want 3,10", r0.steps, r1.steps)
	}
	// Node 1's quanta are cheaper so several must appear before node 0's last.
	count1BeforeLast0 := 0
	last0 := -1
	for i, id := range trace {
		if id == 0 {
			last0 = i
		}
	}
	for i, id := range trace {
		if i < last0 && id == 1 {
			count1BeforeLast0++
		}
	}
	if count1BeforeLast0 < 5 {
		t.Fatalf("virtual-time interleaving broken: trace %v", trace)
	}
}

type runnerFunc func() bool

func (f runnerFunc) Step() bool { return f() }

func TestUtilizationAndMakespan(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	m.Node(0).Charge(100)
	m.Node(1).Charge(50)
	if got := m.MaxClock(); got != m.Node(0).Clock {
		t.Errorf("makespan = %v, want node 0 clock", got)
	}
	u := m.Utilization()
	if u < 0.74 || u > 0.76 {
		t.Errorf("utilization = %v, want 0.75", u)
	}
	if m.TotalInstr() != 150 {
		t.Errorf("total instr = %d, want 150", m.TotalInstr())
	}
}

func TestSendInvalidNodePanics(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid destination")
		}
	}()
	m.Node(0).Send(&Packet{Dst: 99})
}

func TestPollDispatchesInArrivalOrder(t *testing.T) {
	m := MustNew(DefaultConfig(4))
	var got []int
	for i := 1; i <= 3; i++ {
		i := i
		src := m.Node(i)
		src.Charge(i * 10) // stagger departure
		src.Send(&Packet{Dst: 0, Size: 16, Handler: func(n *Node, p *Packet) {
			got = append(got, i)
		}})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(got))
	}
	// Node 1 and node 3 are 1 hop from node 0 on a 2x2 torus, node 2... all
	// are within 2 hops; departure stagger dominates, so order is 1,2,3.
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("arrival order = %v, want [1 2 3]", got)
		}
	}
}

func TestNotifyInterruptModeAdjustsCosts(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Notify = NotifyInterrupt
	m := MustNew(cfg)
	if m.Cfg.Cost.PollRemote != 0 {
		t.Error("interrupt mode must zero the polling cost")
	}
	want := DefaultCost().RemoteRecvExtract + DefaultCost().InterruptEntry
	if m.Cfg.Cost.RemoteRecvExtract != want {
		t.Errorf("interrupt extract cost = %d, want %d", m.Cfg.Cost.RemoteRecvExtract, want)
	}
	// Polling mode is untouched.
	m2 := MustNew(DefaultConfig(2))
	if m2.Cfg.Cost.PollRemote != 5 {
		t.Error("polling mode must keep the poll cost")
	}
}

func TestNotifyModeString(t *testing.T) {
	if NotifyPolling.String() != "polling" || NotifyInterrupt.String() != "interrupt" {
		t.Error("notify mode names wrong")
	}
}

func TestMachineAccessors(t *testing.T) {
	m := MustNew(DefaultConfig(4))
	if m.Nodes() != 4 {
		t.Error("Nodes accessor")
	}
	n := m.Node(1)
	if n.Hops(2) != m.Cfg.Topology.Hops(1, 2) {
		t.Error("Node.Hops must delegate to the topology")
	}
	if n.Now() != n.Clock {
		t.Error("Now must mirror the clock")
	}
	if n.PendingRx() != 0 {
		t.Error("fresh node has no pending packets")
	}
	n.ChargeNs(0)
	n.ChargeNs(-5)
	if n.Clock != 0 {
		t.Error("non-positive ChargeNs must be a no-op")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on a bad config")
		}
	}()
	MustNew(Config{Nodes: -1})
}

func TestUtilizationEmptyMachine(t *testing.T) {
	m := MustNew(DefaultConfig(2))
	if m.Utilization() != 0 {
		t.Error("zero-span machine must report zero utilization")
	}
}

func TestTopologyNames(t *testing.T) {
	cases := map[string]Topology{
		"torus-4x2": Torus2D{W: 4, H: 2},
		"mesh-3x3":  Mesh2D{W: 3, H: 3},
		"full":      FullyConnected{},
		"hypercube": Hypercube{},
	}
	for want, topo := range cases {
		if topo.Name() != want {
			t.Errorf("%T name = %q, want %q", topo, topo.Name(), want)
		}
	}
	if err := (Mesh2D{W: -1, H: 2}).Validate(1); err == nil {
		t.Error("negative mesh dimension must fail")
	}
	if (SquarishTorus(0) != Torus2D{W: 1, H: 1}) {
		t.Error("degenerate squarish torus")
	}
}

// Property: under random packet storms from many sources, per-(src,dst)
// delivery order always matches send order, regardless of sizes and timing.
func TestFIFOUnderRandomStormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 6
		m := MustNew(DefaultConfig(nodes))
		type key struct{ src, dst int }
		sent := map[key][]int{}
		recvd := map[key][]int{}
		seq := 0
		for i := 0; i < 200; i++ {
			src := rng.Intn(nodes)
			dst := rng.Intn(nodes)
			if src == dst {
				continue
			}
			m.Node(src).Charge(rng.Intn(50))
			id := seq
			seq++
			k := key{src, dst}
			sent[k] = append(sent[k], id)
			m.Node(src).Send(&Packet{
				Dst:  dst,
				Size: 8 + rng.Intn(2000),
				Handler: func(n *Node, p *Packet) {
					recvd[key{p.Src, n.ID}] = append(recvd[key{p.Src, n.ID}], id)
				},
			})
		}
		if err := m.Run(); err != nil {
			return false
		}
		for k, want := range sent {
			got := recvd[k]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package machine

import "repro/internal/sim"

// Optimistic-execution support. Under the Time Warp runner (see
// internal/sim/optimistic.go) a node's lane may execute speculatively past
// the conservative horizon and be rolled back; the machine contributes two
// things: a packet mode without recycling, and a per-node state snapshot.
//
// Pooling must be off because a rollback re-runs delivery events whose
// *Packet arguments live in the restored lane heap: had a speculative
// handler recycled such a packet, the retried delivery would read a zeroed
// (or reused) struct. With pooling disabled every packet is immutable from
// launch to its final poll, so replaying a delivery is safe.

// SetOptimistic switches the machine into optimistic-execution mode:
// AcquirePacket stops drawing from the per-node free lists and every packet
// becomes garbage-collected rather than recycled. Call before Run.
func (m *Machine) SetOptimistic() { m.opt = true }

// Optimistic reports whether the machine is in optimistic-execution mode.
func (m *Machine) Optimistic() bool { return m.opt }

// NodeSnap is the machine-level rollback snapshot of one node. The FIFO
// clamp is captured column-wise: element (dst, src) of the clamp matrix is
// read and written only by the sending lane src, so node src's snapshot owns
// its outgoing column across all destinations.
type NodeSnap struct {
	clock         sim.Time
	busy          sim.Time
	downUntil     sim.Time
	resumePending bool
	inResume      bool
	rx            []*Packet
	arrivalCol    []sim.Time // nodes[d].lastArrival[id] for every d
	ctrlCol       []sim.Time // nodes[d].lastCtrl[id] for every d

	instrCount     uint64
	packetsSent    uint64
	packetsRecvd   uint64
	bytesSent      uint64
	msgsSent       uint64
	packetsDropped uint64
	packetsDuped   uint64
	crashDrops     uint64
	eraDrops       uint64
}

// OptCapture snapshots the node's machine-level state for a speculative
// window. Called from the worker goroutine that owns the node's lane.
func (n *Node) OptCapture() *NodeSnap {
	s := &NodeSnap{
		clock:         n.Clock,
		busy:          n.Busy,
		downUntil:     n.downUntil,
		resumePending: n.resumePending,
		inResume:      n.inResume,

		instrCount:     n.InstrCount,
		packetsSent:    n.PacketsSent,
		packetsRecvd:   n.PacketsRecvd,
		bytesSent:      n.BytesSent,
		msgsSent:       n.MsgsSent,
		packetsDropped: n.PacketsDropped,
		packetsDuped:   n.PacketsDuped,
		crashDrops:     n.CrashDrops,
		eraDrops:       n.EraDrops,
	}
	if len(n.rx) > 0 {
		s.rx = append([]*Packet(nil), n.rx...)
	}
	s.arrivalCol = make([]sim.Time, len(n.m.nodes))
	s.ctrlCol = make([]sim.Time, len(n.m.nodes))
	for d, dn := range n.m.nodes {
		s.arrivalCol[d] = dn.lastArrival[n.ID]
		s.ctrlCol[d] = dn.lastCtrl[n.ID]
	}
	return s
}

// OptRestore rolls the node's machine-level state back to its snapshot.
// Runs single-threaded at the window barrier.
func (n *Node) OptRestore(s *NodeSnap) {
	n.Clock = s.clock
	n.Busy = s.busy
	n.downUntil = s.downUntil
	n.resumePending = s.resumePending
	n.inResume = s.inResume

	n.InstrCount = s.instrCount
	n.PacketsSent = s.packetsSent
	n.PacketsRecvd = s.packetsRecvd
	n.BytesSent = s.bytesSent
	n.MsgsSent = s.msgsSent
	n.PacketsDropped = s.packetsDropped
	n.PacketsDuped = s.packetsDuped
	n.CrashDrops = s.crashDrops
	n.EraDrops = s.eraDrops

	n.rx = append(n.rx[:0], s.rx...)
	for d, dn := range n.m.nodes {
		dn.lastArrival[n.ID] = s.arrivalCol[d]
		dn.lastCtrl[n.ID] = s.ctrlCol[d]
	}
}

// OptimisticRun drives the simulation to quiescence like ParallelRun but
// under the Time Warp runner: lanes speculate past the network lookahead
// inside adaptive windows and roll back on stragglers. Results are identical
// to Run. The caller provides everything in cfg except Lookahead, which the
// machine owns.
func (m *Machine) OptimisticRun(workers int, cfg sim.OptimisticConfig) error {
	cfg.Lookahead = m.Lookahead()
	_, err := m.Eng.RunOptimistic(workers, cfg)
	st := m.Eng.OptimisticStats()
	m.optStats.Windows += st.Windows
	m.optStats.Speculative += st.Speculative
	m.optStats.Rollbacks += st.Rollbacks
	m.optStats.SerialSteps += st.SerialSteps
	return err
}

// OptStats reports the accumulated Time Warp statistics across every
// OptimisticRun drive of this machine. All values are deterministic.
func (m *Machine) OptStats() sim.OptStats { return m.optStats }

package orderbook

import "testing"

// Funds are conserved and the audit trail is complete whether or not the
// book is annotated; the grouped run overlaps compatible operations while
// transfers stay exclusive (a violated exclusion panics inside the method).
func TestOrderBookConservation(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		res, err := Run(Options{Nodes: 8, Clients: 12, Ops: 30, Grouped: grouped})
		if err != nil {
			t.Fatalf("grouped=%v: %v", grouped, err)
		}
		if res.Total != res.WantTotal {
			t.Errorf("grouped=%v: total %d, want %d", grouped, res.Total, res.WantTotal)
		}
		if res.AuditLen != res.Ops {
			t.Errorf("grouped=%v: audit %d entries, want %d", grouped, res.AuditLen, res.Ops)
		}
		if grouped && res.MaxLive < 2 {
			t.Errorf("grouped book never overlapped (maxLive=%d)", res.MaxLive)
		}
		if !grouped && res.MaxLive != 0 {
			t.Errorf("serial book reported %d live invocations", res.MaxLive)
		}
	}
}

// Both runs execute the identical operation stream, so the op breakdown
// must match exactly; only the schedule (and throughput) may differ.
func TestOrderBookGroupingSpeedsUp(t *testing.T) {
	serial, err := Run(Options{Nodes: 8, Clients: 12, Ops: 30, Grouped: false})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Run(Options{Nodes: 8, Clients: 12, Ops: 30, Grouped: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Reads != grouped.Reads || serial.Deposits != grouped.Deposits || serial.Transfers != grouped.Transfers {
		t.Errorf("op mix diverged: serial %d/%d/%d vs grouped %d/%d/%d",
			serial.Reads, serial.Deposits, serial.Transfers,
			grouped.Reads, grouped.Deposits, grouped.Transfers)
	}
	if grouped.Throughput <= serial.Throughput {
		t.Errorf("grouping did not help: %.1f vs %.1f ops/ms", grouped.Throughput, serial.Throughput)
	}
	if serial.Total != grouped.Total {
		t.Errorf("final totals diverge: %d vs %d", serial.Total, grouped.Total)
	}
}

func TestOrderBookReorderBound(t *testing.T) {
	res, err := Run(Options{Nodes: 4, Clients: 6, Ops: 20, Grouped: true, Reorder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != res.WantTotal {
		t.Errorf("total %d, want %d", res.Total, res.WantTotal)
	}
}

// Package orderbook implements the bank/order-book contention workload: a
// single "book" object holds a set of account balances and serves three
// operation classes with different compatibility:
//
//   - balance(acct)            — read-only; grouped as "reads"
//   - deposit(acct, amt)       — commutative update; grouped as "deposits"
//   - transfer(from, to, amt)  — read-modify-write across two accounts;
//     deliberately left ungrouped, so it runs exclusively
//
// Every operation appends an entry to a remote audit log before replying,
// so each invocation blocks for a wire round trip — the window the
// multiactive scheduler fills with compatible work. Transfers are the
// correctness anchor: because they stay exclusive they can never interleave
// with each other, and the total balance is conserved exactly. The
// workload demonstrates the partial-annotation story of the multiactive
// model: annotate what is provably compatible, leave the rest serial, and
// keep serial semantics for the unannotated methods.
package orderbook

import (
	"fmt"

	abcl "repro"
	"repro/internal/sim"
)

// Options configures a run.
type Options struct {
	Nodes    int // processor count (>= 2: book on node 0, audit log remote)
	Accounts int // balances held by the book (default 8)
	Clients  int // closed-loop client objects
	Ops      int // operations per client
	// TransferPct is the percentage of operations that are transfers
	// (default 10); DepositPct the percentage that are deposits (default
	// 30). The rest are balance reads.
	TransferPct int
	DepositPct  int
	Grouped     bool // declare the compatibility groups (false = fully serial book)
	Reorder     int  // bounded-reordering annotation (0 = strict)
	Seed        int64

	// Profile, when non-nil, attaches the cost-attribution profiler.
	Profile *abcl.ProfileOptions
	// Extra system options appended after everything above (an observer
	// sink, the parallel executor, ...). Later options win.
	Extra []abcl.Option
}

// Result reports a run.
type Result struct {
	Ops        int64 // operations completed
	Reads      int64
	Deposits   int64
	Transfers  int64
	Total      int64 // final sum of balances
	WantTotal  int64 // initial funds + all deposits
	MaxLive    int   // peak concurrent invocations at the book
	AuditLen   int64 // audit-log entries (must equal Ops)
	Elapsed    sim.Time
	Throughput float64 // operations per virtual millisecond
	Stats      abcl.Counters
	Report     abcl.Report
}

const initialBalance = 1000

// Run executes the workload and returns the result.
func Run(opt Options) (Result, error) {
	if opt.Nodes < 2 {
		return Result{}, fmt.Errorf("orderbook: need >= 2 nodes, got %d", opt.Nodes)
	}
	if opt.Clients < 1 || opt.Ops < 1 {
		return Result{}, fmt.Errorf("orderbook: clients and ops must be >= 1")
	}
	accounts := opt.Accounts
	if accounts == 0 {
		accounts = 8
	}
	transferPct := opt.TransferPct
	if transferPct == 0 {
		transferPct = 10
	}
	depositPct := opt.DepositPct
	if depositPct == 0 {
		depositPct = 30
	}
	if transferPct+depositPct > 100 {
		return Result{}, fmt.Errorf("orderbook: transfer%%+deposit%% = %d > 100", transferPct+depositPct)
	}

	opts := []abcl.Option{abcl.WithNodes(opt.Nodes)}
	if opt.Seed != 0 {
		opts = append(opts, abcl.WithSeed(opt.Seed))
	}
	if opt.Profile != nil {
		opts = append(opts, abcl.WithProfiler(*opt.Profile))
	}
	opts = append(opts, opt.Extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		return Result{}, err
	}

	balance := sys.Pattern("ob.balance", 1)   // acct
	deposit := sys.Pattern("ob.deposit", 2)   // acct, amt
	transfer := sys.Pattern("ob.transfer", 3) // from, to, amt
	record := sys.Pattern("ob.record", 1)     // audit entry
	step := sys.Pattern("ob.step", 1)
	done := sys.Pattern("ob.done", 0)

	// The audit log: sharded across the non-book nodes like a replicated
	// journal; every book operation round-trips to one shard before it
	// replies. Entries are counted host-side for the ledger check.
	var auditLen int64
	audit := sys.NewClass("ob.audit", 0, nil).
		Method(record, func(ctx *abcl.Ctx) {
			ctx.Charge(300)
			auditLen++
			ctx.Reply(abcl.Int(0))
		})
	logs := make([]abcl.Address, opt.Nodes-1)
	for i := range logs {
		logs[i] = sys.NewObjectOn(i+1, audit)
	}

	// The book. State: one balance per account, plus a rotating audit-shard
	// cursor. Updates are applied before the audit round trip, so grouped
	// deposits (commutative) and exclusive transfers are both exact.
	cursor := accounts // state index of the shard cursor
	nextLog := func(ctx *abcl.Ctx) abcl.Address {
		cur := ctx.State(cursor).Int()
		ctx.SetState(cursor, abcl.Int(cur+1))
		return logs[cur%int64(len(logs))]
	}
	var reads, deposits, transfers int64
	maxLive := 0
	noteLive := func(ctx *abcl.Ctx) {
		if l := ctx.Self().Obj.LiveInvocations(); l > maxLive {
			maxLive = l
		}
	}
	book := sys.NewClass("ob.book", accounts+1, func(ic *abcl.InitCtx) {
		for a := 0; a < accounts; a++ {
			ic.SetState(a, abcl.Int(initialBalance))
		}
		ic.SetState(cursor, abcl.Int(0))
	}).
		Method(balance, func(ctx *abcl.Ctx) {
			noteLive(ctx)
			acct := int(ctx.Arg(0).Int())
			ctx.SendNow(nextLog(ctx), record, []abcl.Value{abcl.Int(int64(acct))}, func(ctx *abcl.Ctx, _ abcl.Value) {
				reads++
				ctx.Reply(ctx.State(acct))
			})
		}).
		Method(deposit, func(ctx *abcl.Ctx) {
			noteLive(ctx)
			acct := int(ctx.Arg(0).Int())
			amt := ctx.Arg(1).Int()
			v := ctx.State(acct).Int() + amt
			ctx.SetState(acct, abcl.Int(v))
			ctx.SendNow(nextLog(ctx), record, []abcl.Value{abcl.Int(amt)}, func(ctx *abcl.Ctx, _ abcl.Value) {
				deposits++
				ctx.Reply(abcl.Int(v))
			})
		}).
		Method(transfer, func(ctx *abcl.Ctx) {
			noteLive(ctx)
			if l := ctx.Self().Obj.LiveInvocations(); l > 1 {
				// Exclusive by construction: the scheduler must never let a
				// transfer overlap anything else.
				panic(fmt.Sprintf("orderbook: transfer running with %d live invocations", l))
			}
			from := int(ctx.Arg(0).Int())
			to := int(ctx.Arg(1).Int())
			amt := ctx.Arg(2).Int()
			moved := int64(0)
			if ctx.State(from).Int() >= amt {
				ctx.SetState(from, abcl.Int(ctx.State(from).Int()-amt))
				ctx.SetState(to, abcl.Int(ctx.State(to).Int()+amt))
				moved = amt
			}
			ctx.SendNow(nextLog(ctx), record, []abcl.Value{abcl.Int(moved)}, func(ctx *abcl.Ctx, _ abcl.Value) {
				transfers++
				ctx.Reply(abcl.Int(moved))
			})
		})
	if opt.Grouped {
		book.Group("reads", balance).
			Group("deposits", deposit).
			Priority("deposits", 1)
		if opt.Reorder > 0 {
			book.ReorderBound(opt.Reorder)
		}
	}
	bookAddr := sys.NewObjectOn(0, book)

	// Closed-loop clients with a deterministic (client, op index) mix.
	finished := 0
	var collector abcl.Address
	var wantDeposits int64
	mix := func(client, i int) (p abcl.Pattern, args []abcl.Value) {
		h := (client*131 + i*31) % 100
		acct := (client + i) % accounts
		switch {
		case h < transferPct:
			to := (acct + 1 + i%(accounts-1)) % accounts
			return transfer, []abcl.Value{abcl.Int(int64(acct)), abcl.Int(int64(to)), abcl.Int(int64(1 + i%50))}
		case h < transferPct+depositPct:
			return deposit, []abcl.Value{abcl.Int(int64(acct)), abcl.Int(int64(1 + i%20))}
		default:
			return balance, []abcl.Value{abcl.Int(int64(acct))}
		}
	}
	client := sys.NewClass("ob.client", 1, func(ic *abcl.InitCtx) {
		ic.SetState(0, ic.CtorArg(0)) // client id, fixes the op mix
	}).
		Method(step, func(ctx *abcl.Ctx) {
			rem := ctx.Arg(0).Int()
			if rem == 0 {
				ctx.SendPast(collector, done)
				return
			}
			i := opt.Ops - int(rem)
			p, args := mix(int(ctx.State(0).Int()), i)
			next := abcl.Int(rem - 1)
			ctx.SendNow(bookAddr, p, args, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SendPast(ctx.Self(), step, next)
			})
		})
	coll := sys.NewClass("ob.coll", 0, nil).
		Method(done, func(ctx *abcl.Ctx) { finished++ })
	collector = sys.NewObjectOn(0, coll)

	for ci := 0; ci < opt.Clients; ci++ {
		node := 1 + ci%(opt.Nodes-1)
		c := sys.NewObjectOn(node, client, abcl.Int(int64(ci)))
		sys.Send(c, step, abcl.Int(int64(opt.Ops)))
	}
	// Deposits are deterministic from the mix; pre-compute the expected total.
	for ci := 0; ci < opt.Clients; ci++ {
		for i := 0; i < opt.Ops; i++ {
			if p, args := mix(ci, i); p == deposit {
				wantDeposits += args[1].Int()
			}
		}
	}

	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	if finished != opt.Clients {
		return Result{}, fmt.Errorf("orderbook: %d of %d clients finished", finished, opt.Clients)
	}
	var total int64
	for a := 0; a < accounts; a++ {
		total += bookAddr.Obj.State(a).Int()
	}
	rep := sys.Report()
	res := Result{
		Ops:       reads + deposits + transfers,
		Reads:     reads,
		Deposits:  deposits,
		Transfers: transfers,
		Total:     total,
		WantTotal: int64(accounts)*initialBalance + wantDeposits,
		MaxLive:   maxLive,
		AuditLen:  auditLen,
		Elapsed:   rep.Sched.Elapsed,
		Stats:     rep.Sched.Counters,
		Report:    rep,
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Elapsed) / 1e6)
	}
	if res.Ops != int64(opt.Clients)*int64(opt.Ops) {
		return res, fmt.Errorf("orderbook: completed %d ops, want %d", res.Ops, int64(opt.Clients)*int64(opt.Ops))
	}
	if res.Total != res.WantTotal {
		return res, fmt.Errorf("orderbook: funds not conserved: total %d, want %d", res.Total, res.WantTotal)
	}
	if res.AuditLen != res.Ops {
		return res, fmt.Errorf("orderbook: audit log has %d entries, want %d", res.AuditLen, res.Ops)
	}
	return res, nil
}

package diffusion

import (
	"math"
	"testing"

	abcl "repro"
)

func TestMatchesSequentialJacobi(t *testing.T) {
	// The concurrent stencil must be numerically equivalent to the
	// sequential sweep (modulo floating summation order).
	for _, tc := range []struct {
		w, h, iters, nodes int
	}{
		{4, 4, 1, 1},
		{4, 4, 5, 1},
		{6, 5, 8, 4},
		{8, 8, 10, 16},
		{5, 9, 7, 3},
	} {
		res, err := Run(Options{W: tc.w, H: tc.h, Iters: tc.iters, Nodes: tc.nodes})
		if err != nil {
			t.Fatalf("%dx%d iters=%d nodes=%d: %v", tc.w, tc.h, tc.iters, tc.nodes, err)
		}
		want := SequentialResidual(tc.w, tc.h, tc.iters)
		if math.Abs(res.Residual-want) > 1e-9 {
			t.Errorf("%dx%d iters=%d nodes=%d: residual %g, want %g",
				tc.w, tc.h, tc.iters, tc.nodes, res.Residual, want)
		}
	}
}

func TestNaivePolicyEquivalent(t *testing.T) {
	st, err := Run(Options{W: 6, H: 6, Iters: 6, Nodes: 4, Policy: abcl.StackBased})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Run(Options{W: 6, H: 6, Iters: 6, Nodes: 4, Policy: abcl.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Residual-nv.Residual) > 1e-12 {
		t.Fatalf("policies disagree: %g vs %g", st.Residual, nv.Residual)
	}
	if nv.Elapsed <= st.Elapsed {
		t.Errorf("naive (%v) should be slower than stack (%v)", nv.Elapsed, st.Elapsed)
	}
}

func TestBlockPlacementReducesRemoteTraffic(t *testing.T) {
	scatter, err := Run(Options{W: 16, H: 16, Iters: 4, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	block, err := Run(Options{W: 16, H: 16, Iters: 4, Nodes: 8, BlockPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if block.Stats.RemoteSends >= scatter.Stats.RemoteSends {
		t.Errorf("block placement remote sends %d >= scatter %d",
			block.Stats.RemoteSends, scatter.Stats.RemoteSends)
	}
	if math.Abs(block.Residual-scatter.Residual) > 1e-12 {
		t.Error("placement must not change numerics")
	}
}

func TestBlockPlacementFaster(t *testing.T) {
	scatter, err := Run(Options{W: 16, H: 16, Iters: 6, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	block, err := Run(Options{W: 16, H: 16, Iters: 6, Nodes: 8, BlockPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if block.Elapsed >= scatter.Elapsed {
		t.Errorf("block placement (%v) should beat scatter (%v) on a neighbour workload",
			block.Elapsed, scatter.Elapsed)
	}
}

func TestDiffusionDeterminism(t *testing.T) {
	a, err := Run(Options{W: 6, H: 6, Iters: 5, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{W: 6, H: 6, Iters: 5, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Residual != b.Residual ||
		a.Stats.TotalMessages() != b.Stats.TotalMessages() {
		t.Fatal("nondeterministic diffusion runs")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Options{W: 0, H: 4, Iters: 1}); err == nil {
		t.Error("zero width must be rejected")
	}
	if _, err := Run(Options{W: 1, H: 1, Iters: 1}); err == nil {
		t.Error("single cell has no neighbours and must be rejected")
	}
	if _, err := Run(Options{W: 4, H: 4, Iters: 0}); err == nil {
		t.Error("zero iterations must be rejected")
	}
}

func TestWaitHeavyStats(t *testing.T) {
	// Every iteration is a selective-reception join: the waiting machinery
	// must dominate the statistics.
	res, err := Run(Options{W: 8, H: 8, Iters: 8, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Stats
	if c.WaitBlocked+c.WaitFast == 0 {
		t.Fatal("no selective receptions recorded")
	}
	if c.LocalRestores == 0 {
		t.Fatal("no context restorations recorded")
	}
}

func TestSequentialResidualDecreases(t *testing.T) {
	r1 := SequentialResidual(8, 8, 1)
	r20 := SequentialResidual(8, 8, 20)
	if r20 >= r1 {
		t.Fatalf("residual must decrease: %g -> %g", r1, r20)
	}
}

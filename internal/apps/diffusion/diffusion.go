// Package diffusion implements an iterative Jacobi stencil as a grid of
// concurrent objects — the nearest-neighbour communication pattern that
// complements the tree-structured N-queens benchmark. Each grid cell is an
// object that, per iteration, sends its value to its neighbours and
// selectively waits until it has received all of theirs before computing
// the next value.
//
// Iterations are double-buffered by message *pattern* parity (df.val0 /
// df.val1): a neighbour can run at most one iteration ahead, and its
// early values arrive under the other parity's pattern — while a cell waits
// for the current parity, the waiting-mode table buffers the other parity
// in the message queue exactly as Section 4.2 prescribes, and the next
// iteration's WaitFor finds them by its initial queue scan. The stencil is
// thus numerically identical to the sequential Jacobi sweep.
//
// The workload stresses selective message reception (a four-way join every
// iteration), message throughput, and placement locality; it backs the
// topology and placement ablation benchmarks.
package diffusion

import (
	"fmt"
	"math"

	abcl "repro"
	"repro/internal/sim"
)

// Options configures a diffusion run.
type Options struct {
	W, H       int // grid dimensions (cells)
	Iters      int // Jacobi iterations
	Nodes      int // processor count
	Policy     abcl.Policy
	WorkInstr  int  // modelled compute per cell update (default 40)
	BlockPlace bool // true: block decomposition (locality); false: scatter
	Seed       int64
	Faults     abcl.FaultPlan

	// Wire-path options: per-link batching window, delayed cumulative acks,
	// and the reliable protocol they ride on.
	BatchWindow abcl.Time
	AckDelay    abcl.Time
	Reliable    bool

	// CheckpointInterval, when positive, enables periodic coordinated
	// checkpoints (crashes in Faults restart from the latest one).
	CheckpointInterval abcl.Time

	// Profile, when non-nil, attaches the cost-attribution profiler.
	Profile *abcl.ProfileOptions
	// Extra system options appended after everything above (an observer
	// sink, the parallel executor, ...). Later options win.
	Extra []abcl.Option
}

// Result reports a run.
type Result struct {
	Elapsed     sim.Time
	Utilization float64
	Residual    float64 // final max |update| across cells
	Stats       abcl.Counters
	Report      abcl.Report // grouped snapshot; Profile section set when Options.Profile was given
}

// State variable indices for a cell object.
const (
	stIdx    = 0 // grid index
	stVal    = 1 // current value
	stIter   = 2 // remaining iterations
	stResid  = 3 // last absolute update
	stDegree = 4 // neighbour count (2-4 depending on position)
	stParity = 5 // current iteration parity (0/1)
	stAcc0   = 6 // accumulator, parity 0
	stGot0   = 7 // join counter, parity 0
	stAcc1   = 8 // accumulator, parity 1
	stGot1   = 9 // join counter, parity 1
)

// Run executes the stencil and returns the result. The initial condition is
// a hot spot at the grid centre.
func Run(opt Options) (Result, error) {
	if opt.W < 1 || opt.H < 1 || opt.W*opt.H < 2 {
		return Result{}, fmt.Errorf("diffusion: grid %dx%d invalid", opt.W, opt.H)
	}
	if opt.Iters < 1 {
		return Result{}, fmt.Errorf("diffusion: iterations must be >= 1")
	}
	if opt.Nodes < 1 {
		opt.Nodes = 1
	}
	work := opt.WorkInstr
	if work <= 0 {
		work = 40
	}

	opts := []abcl.Option{abcl.WithNodes(opt.Nodes)}
	if opt.Policy != abcl.StackBased {
		opts = append(opts, abcl.WithPolicy(opt.Policy))
	}
	if opt.Seed != 0 {
		opts = append(opts, abcl.WithSeed(opt.Seed))
	}
	if opt.Faults.Enabled() {
		opts = append(opts, abcl.WithFaults(opt.Faults))
	}
	if opt.BatchWindow > 0 {
		opts = append(opts, abcl.WithBatching(opt.BatchWindow, 0))
	}
	if opt.Reliable {
		opts = append(opts, abcl.WithReliable())
	}
	if opt.AckDelay > 0 {
		opts = append(opts, abcl.WithDelayedAcks(opt.AckDelay))
	}
	if opt.CheckpointInterval > 0 {
		opts = append(opts, abcl.WithCheckpoint(opt.CheckpointInterval))
	}
	if opt.Profile != nil {
		opts = append(opts, abcl.WithProfiler(*opt.Profile))
	}
	opts = append(opts, opt.Extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		return Result{}, err
	}

	valP := [2]abcl.Pattern{
		sys.Pattern("df.val0", 1),
		sys.Pattern("df.val1", 1),
	}
	step := sys.Pattern("df.step", 0)
	done := sys.Pattern("df.done", 2) // cell index, final residual

	w, h := opt.W, opt.H
	cells := make([]abcl.Address, w*h)
	var collector abcl.Address
	// Host-side observer fields. A checkpoint restore does not roll these
	// back, so the handler must be idempotent under redelivery (the
	// host-write rule, DESIGN.md §10): the done message identifies its cell
	// and the bitmap makes the count a set union, while the residual max is
	// idempotent by itself.
	reported := make([]bool, w*h)
	finished := 0
	maxResid := 0.0
	coll := sys.Class("df.collector", 0, nil)
	coll.Method(done, func(ctx *abcl.Ctx) {
		idx := int(ctx.Arg(0).Int())
		if !reported[idx] {
			reported[idx] = true
			finished++
		}
		if r := ctx.Arg(1).Float(); r > maxResid {
			maxResid = r
		}
	})

	neighbours := func(idx int) []abcl.Address {
		x, y := idx%w, idx/w
		var out []abcl.Address
		if x > 0 {
			out = append(out, cells[idx-1])
		}
		if x < w-1 {
			out = append(out, cells[idx+1])
		}
		if y > 0 {
			out = append(out, cells[idx-w])
		}
		if y < h-1 {
			out = append(out, cells[idx+w])
		}
		return out
	}

	cell := sys.Class("df.cell", 10, func(ic *abcl.InitCtx) {
		ic.SetState(stIdx, ic.CtorArg(0))
		ic.SetState(stVal, ic.CtorArg(1))
		ic.SetState(stIter, ic.CtorArg(2))
		ic.SetState(stResid, abcl.Float(0))
		ic.SetState(stDegree, ic.CtorArg(3))
		ic.SetState(stParity, abcl.Int(0))
		ic.SetState(stAcc0, abcl.Float(0))
		ic.SetState(stGot0, abcl.Int(0))
		ic.SetState(stAcc1, abcl.Float(0))
		ic.SetState(stGot1, abcl.Int(0))
	})

	accOf := [2]int{stAcc0, stAcc1}
	gotOf := [2]int{stGot0, stGot1}

	absorb := func(ctx *abcl.Ctx, parity int, v float64) {
		ctx.SetState(accOf[parity], abcl.Float(ctx.State(accOf[parity]).Float()+v))
		ctx.SetState(gotOf[parity], abcl.Int(ctx.State(gotOf[parity]).Int()+1))
	}

	broadcast := func(ctx *abcl.Ctx, parity int) {
		idx := int(ctx.State(stIdx).Int())
		v := ctx.State(stVal)
		for _, nb := range neighbours(idx) {
			ctx.SendPast(nb, valP[parity], v)
		}
	}

	// collect joins on the current parity, computes the Jacobi update, and
	// either starts the next iteration or reports to the collector.
	var collect func(ctx *abcl.Ctx)
	collect = func(ctx *abcl.Ctx) {
		p := int(ctx.State(stParity).Int())
		degree := ctx.State(stDegree).Int()
		if ctx.State(gotOf[p]).Int() < degree {
			ctx.WaitFor(func(ctx *abcl.Ctx, f *abcl.Frame) {
				absorb(ctx, p, f.Arg(0).Float())
				collect(ctx)
			}, valP[p])
			return
		}
		ctx.Charge(work)
		old := ctx.State(stVal).Float()
		next := ctx.State(accOf[p]).Float() / float64(degree)
		ctx.SetState(stVal, abcl.Float(next))
		ctx.SetState(stResid, abcl.Float(math.Abs(next-old)))
		ctx.SetState(accOf[p], abcl.Float(0))
		ctx.SetState(gotOf[p], abcl.Int(0))
		it := ctx.State(stIter).Int() - 1
		ctx.SetState(stIter, abcl.Int(it))
		if it == 0 {
			ctx.SendPast(collector, done, ctx.State(stIdx), ctx.State(stResid))
			return
		}
		q := 1 - p
		ctx.SetState(stParity, abcl.Int(int64(q)))
		broadcast(ctx, q)
		collect(ctx)
	}

	cell.Method(step, func(ctx *abcl.Ctx) {
		broadcast(ctx, 0)
		collect(ctx)
	})
	// Values arriving while the cell is dormant (between scheduler turns, or
	// after it finished) are absorbed into their parity's accumulator.
	cell.Method(valP[0], func(ctx *abcl.Ctx) { absorb(ctx, 0, ctx.Arg(0).Float()) })
	cell.Method(valP[1], func(ctx *abcl.Ctx) { absorb(ctx, 1, ctx.Arg(0).Float()) })

	// Placement: contiguous row bands (locality) or scatter.
	place := func(idx int) int {
		if opt.BlockPlace {
			band := (idx / w) * opt.Nodes / h
			if band >= opt.Nodes {
				band = opt.Nodes - 1
			}
			return band
		}
		return idx % opt.Nodes
	}
	for idx := range cells {
		x, y := idx%w, idx/w
		v := 0.0
		if x == w/2 && y == h/2 {
			v = 100.0 // hot spot
		}
		d := int64(0)
		if x > 0 {
			d++
		}
		if x < w-1 {
			d++
		}
		if y > 0 {
			d++
		}
		if y < h-1 {
			d++
		}
		cells[idx] = sys.NewObjectOn(place(idx), cell,
			abcl.Int(int64(idx)), abcl.Float(v), abcl.Int(int64(opt.Iters)), abcl.Int(d))
	}
	collector = sys.NewObjectOn(0, coll)
	for idx := range cells {
		sys.Send(cells[idx], step)
	}

	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	if finished != len(cells) {
		return Result{}, fmt.Errorf("diffusion: %d of %d cells finished", finished, len(cells))
	}
	rep := sys.Report()
	return Result{
		Elapsed:     rep.Sched.Elapsed,
		Utilization: rep.Sched.Utilization,
		Residual:    maxResid,
		Stats:       rep.Sched.Counters,
		Report:      rep,
	}, nil
}

// SequentialResidual computes the same Jacobi iteration sequentially for
// verification: the final max |update| after iters sweeps.
func SequentialResidual(w, h, iters int) float64 {
	cur := make([]float64, w*h)
	next := make([]float64, w*h)
	cur[(h/2)*w+w/2] = 100.0
	resid := make([]float64, w*h)
	for it := 0; it < iters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				idx := y*w + x
				sum, deg := 0.0, 0
				if x > 0 {
					sum += cur[idx-1]
					deg++
				}
				if x < w-1 {
					sum += cur[idx+1]
					deg++
				}
				if y > 0 {
					sum += cur[idx-w]
					deg++
				}
				if y < h-1 {
					sum += cur[idx+w]
					deg++
				}
				next[idx] = sum / float64(deg)
				resid[idx] = math.Abs(next[idx] - cur[idx])
			}
		}
		cur, next = next, cur
	}
	max := 0.0
	for _, r := range resid {
		if r > max {
			max = r
		}
	}
	return max
}

// Package hotkey implements the hot-key counter contention workload: many
// closed-loop clients hammer one counter object whose every method blocks
// on a round trip to a remote store shard. Under serial semantics the
// counter is a convoy — each operation holds the object for a full wire
// round trip — so throughput is one operation per RTT regardless of client
// count. With compatibility groups declared ("reads" over get, "writes"
// over add) the scheduler overlaps the blocked round trips of compatible
// invocations, and throughput scales with the number of concurrent
// clients. The Coverage knob selects how much of the class is annotated,
// making the workload a direct measurement of throughput vs annotation
// coverage.
package hotkey

import (
	"fmt"

	abcl "repro"
	"repro/internal/sim"
)

// Coverage selects how much of the counter class carries compatibility
// annotations.
type Coverage int

const (
	// CoverNone declares no groups: the counter is an ordinary serial
	// object (the baseline).
	CoverNone Coverage = iota
	// CoverPartial groups only the read method; writes stay exclusive.
	CoverPartial
	// CoverFull groups reads and writes separately: reads overlap reads,
	// writes overlap writes, and the two classes exclude each other.
	CoverFull
)

func (c Coverage) String() string {
	switch c {
	case CoverNone:
		return "none"
	case CoverPartial:
		return "partial"
	case CoverFull:
		return "full"
	}
	return fmt.Sprintf("Coverage(%d)", int(c))
}

// ParseCoverage maps a flag string onto a Coverage.
func ParseCoverage(s string) (Coverage, error) {
	switch s {
	case "none":
		return CoverNone, nil
	case "partial":
		return CoverPartial, nil
	case "full":
		return CoverFull, nil
	}
	return CoverNone, fmt.Errorf("hotkey: unknown coverage %q (want none|partial|full)", s)
}

// Options configures a hot-key run.
type Options struct {
	Nodes    int      // processor count (>= 2: counter on 0, store on Nodes-1)
	Clients  int      // closed-loop client objects (spread over nodes 1..)
	Ops      int      // operations per client
	WritePct int      // percentage of operations that are adds (default 20)
	Coverage Coverage // annotation coverage on the counter class
	Reorder  int      // bounded-reordering annotation (0 = strict order)
	Seed     int64
	Faults   abcl.FaultPlan

	// Wire-path and recovery options, so the workload composes with the
	// scenario runner like the other apps.
	BatchWindow        abcl.Time
	AckDelay           abcl.Time
	Reliable           bool
	CheckpointInterval abcl.Time

	// Profile, when non-nil, attaches the cost-attribution profiler.
	Profile *abcl.ProfileOptions
	// Extra system options appended after everything above (an observer
	// sink, the parallel executor, ...). Later options win.
	Extra []abcl.Option
}

// Result reports a run.
type Result struct {
	Ops     int64 // operations completed (reads + writes)
	Reads   int64
	Writes  int64
	Final   int64    // final counter value; must equal Writes
	MaxLive int      // peak concurrent invocations observed at the counter
	Elapsed sim.Time // virtual completion time
	// Throughput is operations per virtual millisecond — the headline
	// number the coverage ablation compares.
	Throughput float64
	Stats      abcl.Counters
	Report     abcl.Report
}

// State variable indices for the counter object. Operation counts live in
// object state rather than host variables so that a checkpoint rollback
// rewinds them together with the value — the host-write rule (DESIGN.md
// §10) for crash scenarios.
const (
	stValue  = 0 // the hot value
	stCursor = 1 // rotating store-shard cursor
	stReads  = 2 // completed read operations
)

// Run executes the workload and returns the result.
func Run(opt Options) (Result, error) {
	if opt.Nodes < 2 {
		return Result{}, fmt.Errorf("hotkey: need >= 2 nodes (counter and store must be remote), got %d", opt.Nodes)
	}
	if opt.Clients < 1 || opt.Ops < 1 {
		return Result{}, fmt.Errorf("hotkey: clients and ops must be >= 1")
	}
	if opt.WritePct < 0 || opt.WritePct > 100 {
		return Result{}, fmt.Errorf("hotkey: write percentage %d out of range", opt.WritePct)
	}
	writePct := opt.WritePct
	if writePct == 0 {
		writePct = 20
	}

	opts := []abcl.Option{abcl.WithNodes(opt.Nodes)}
	if opt.Seed != 0 {
		opts = append(opts, abcl.WithSeed(opt.Seed))
	}
	if opt.Faults.Enabled() {
		opts = append(opts, abcl.WithFaults(opt.Faults))
	}
	if opt.BatchWindow > 0 {
		opts = append(opts, abcl.WithBatching(opt.BatchWindow, 0))
	}
	if opt.Reliable {
		opts = append(opts, abcl.WithReliable())
	}
	if opt.AckDelay > 0 {
		opts = append(opts, abcl.WithDelayedAcks(opt.AckDelay))
	}
	if opt.CheckpointInterval > 0 {
		opts = append(opts, abcl.WithCheckpoint(opt.CheckpointInterval))
	}
	if opt.Profile != nil {
		opts = append(opts, abcl.WithProfiler(*opt.Profile))
	}
	opts = append(opts, opt.Extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		return Result{}, err
	}

	get := sys.Pattern("hk.get", 0)
	add := sys.Pattern("hk.add", 1)
	load := sys.Pattern("hk.load", 0)
	save := sys.Pattern("hk.save", 1)
	step := sys.Pattern("hk.step", 1)
	done := sys.Pattern("hk.done", 0)

	// The store shards: every counter operation round-trips to one of them,
	// modelling the persistence/ownership hop that makes hot objects convoy
	// in real systems. One shard per non-counter node: a serial counter can
	// only ever use one at a time (it is blocked for the whole round trip),
	// while overlapped invocations fan out across all of them.
	store := sys.NewClass("hk.store", 0, nil).
		Method(load, func(ctx *abcl.Ctx) {
			ctx.Charge(500)
			ctx.Reply(abcl.Int(0))
		}).
		Method(save, func(ctx *abcl.Ctx) {
			ctx.Charge(500)
			ctx.Reply(abcl.Int(0))
		})
	shards := make([]abcl.Address, opt.Nodes-1)
	for i := range shards {
		shards[i] = sys.NewObjectOn(i+1, store)
	}

	// The hot counter. Both methods block mid-body on the store round
	// trip; the annotations (if any) let compatible invocations overlap
	// exactly there. The write applies its increment before blocking, so
	// overlapping writes stay commutative and the final value is exact.
	// maxLive is a host-side monotonic maximum — idempotent under replay.
	maxLive := 0
	noteLive := func(ctx *abcl.Ctx) {
		if l := ctx.Self().Obj.LiveInvocations(); l > maxLive {
			maxLive = l
		}
	}
	nextShard := func(ctx *abcl.Ctx) abcl.Address {
		cur := ctx.State(stCursor).Int()
		ctx.SetState(stCursor, abcl.Int(cur+1))
		return shards[cur%int64(len(shards))]
	}
	counter := sys.NewClass("hk.counter", 3, func(ic *abcl.InitCtx) {
		ic.SetState(stValue, abcl.Int(0))
		ic.SetState(stCursor, abcl.Int(0))
		ic.SetState(stReads, abcl.Int(0))
	}).
		Method(get, func(ctx *abcl.Ctx) {
			noteLive(ctx)
			ctx.SendNow(nextShard(ctx), load, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SetState(stReads, abcl.Int(ctx.State(stReads).Int()+1))
				ctx.Reply(ctx.State(stValue))
			})
		}).
		Method(add, func(ctx *abcl.Ctx) {
			noteLive(ctx)
			v := ctx.State(stValue).Int() + ctx.Arg(0).Int()
			ctx.SetState(stValue, abcl.Int(v))
			ctx.SendNow(nextShard(ctx), save, []abcl.Value{abcl.Int(v)}, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.Reply(abcl.Int(v))
			})
		})
	switch opt.Coverage {
	case CoverPartial:
		counter.Group("reads", get)
	case CoverFull:
		counter.Group("reads", get).Group("writes", add).Priority("writes", 1)
	}
	if opt.Reorder > 0 && opt.Coverage != CoverNone {
		counter.ReorderBound(opt.Reorder)
	}
	counterAddr := sys.NewObjectOn(0, counter)

	// Closed-loop clients: each waits for its operation's reply before
	// issuing the next, so at most Clients invocations converge on the
	// counter at once. The op mix is a deterministic function of (client,
	// op index) — every coverage level runs the identical request stream.
	// The done message carries the client id and the collector records a
	// set union, so redelivery after a checkpoint restore is harmless.
	period := 0
	if writePct > 0 {
		period = 100 / writePct
		if period < 1 {
			period = 1
		}
	}
	var collector abcl.Address
	client := sys.NewClass("hk.client", 1, func(ic *abcl.InitCtx) {
		ic.SetState(0, ic.CtorArg(0)) // client id
	}).
		Method(step, func(ctx *abcl.Ctx) {
			rem := ctx.Arg(0).Int()
			if rem == 0 {
				ctx.SendPast(collector, done, ctx.State(0))
				return
			}
			next := abcl.Int(rem - 1)
			i := int64(opt.Ops) - rem
			if period > 0 && i%int64(period) == 0 {
				ctx.SendNow(counterAddr, add, []abcl.Value{abcl.Int(1)}, func(ctx *abcl.Ctx, _ abcl.Value) {
					ctx.SendPast(ctx.Self(), step, next)
				})
				return
			}
			ctx.SendNow(counterAddr, get, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SendPast(ctx.Self(), step, next)
			})
		})
	reported := make([]bool, opt.Clients)
	finished := 0
	coll := sys.NewClass("hk.coll", 0, nil).
		Method(done, func(ctx *abcl.Ctx) {
			if id := int(ctx.Arg(0).Int()); !reported[id] {
				reported[id] = true
				finished++
			}
		})
	collector = sys.NewObjectOn(0, coll)

	clients := make([]abcl.Address, opt.Clients)
	for i := range clients {
		// Clients spread over nodes 1..Nodes-1 (the counter's node stays
		// dedicated to the contended object).
		node := 1 + i%(opt.Nodes-1)
		clients[i] = sys.NewObjectOn(node, client, abcl.Int(int64(i)))
	}
	for _, c := range clients {
		sys.Send(c, step, abcl.Int(int64(opt.Ops)))
	}

	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	if finished != opt.Clients {
		return Result{}, fmt.Errorf("hotkey: %d of %d clients finished", finished, opt.Clients)
	}
	// Per-client write count for the deterministic mix: ops at indices
	// 0, period, 2·period, ...
	writesPerClient := 0
	if period > 0 {
		writesPerClient = (opt.Ops + period - 1) / period
	}
	wantWrites := int64(writesPerClient) * int64(opt.Clients)
	rep := sys.Report()
	reads := counterAddr.Obj.State(stReads).Int()
	writes := counterAddr.Obj.State(stValue).Int()
	res := Result{
		Ops:     reads + writes,
		Reads:   reads,
		Writes:  writes,
		Final:   writes,
		MaxLive: maxLive,
		Elapsed: rep.Sched.Elapsed,
		Stats:   rep.Sched.Counters,
		Report:  rep,
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Elapsed) / 1e6)
	}
	if res.Ops != int64(opt.Clients)*int64(opt.Ops) {
		return res, fmt.Errorf("hotkey: completed %d ops, want %d", res.Ops, int64(opt.Clients)*int64(opt.Ops))
	}
	if res.Writes != wantWrites {
		return res, fmt.Errorf("hotkey: final value %d != %d expected writes (lost update)", res.Writes, wantWrites)
	}
	return res, nil
}

package hotkey

import (
	"testing"

	abcl "repro"
)

// The headline acceptance number: at 16 processors, full annotation
// coverage must buy at least 3x throughput over the unannotated serial
// counter, on the identical request stream.
func TestHotKeyMultiactiveSpeedup(t *testing.T) {
	opts := Options{Nodes: 16, Clients: 16, Ops: 40, WritePct: 20}

	opts.Coverage = CoverNone
	serial, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Coverage = CoverFull
	full, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	if serial.MaxLive != 0 {
		t.Errorf("serial counter observed %d live invocations, want 0", serial.MaxLive)
	}
	if full.MaxLive < 2 {
		t.Errorf("full coverage peaked at %d concurrent invocations, want >= 2", full.MaxLive)
	}
	if serial.Ops != full.Ops || serial.Final != full.Final {
		t.Errorf("coverage changed the answer: serial ops=%d final=%d, full ops=%d final=%d",
			serial.Ops, serial.Final, full.Ops, full.Final)
	}
	speedup := full.Throughput / serial.Throughput
	if speedup < 3.0 {
		t.Errorf("full/none throughput = %.1f/%.1f ops/ms (%.2fx), want >= 3x",
			full.Throughput, serial.Throughput, speedup)
	}
}

// Partial coverage lands between serial and full: reads overlap, writes
// still serialize the object.
func TestHotKeyCoverageMonotonic(t *testing.T) {
	opts := Options{Nodes: 8, Clients: 12, Ops: 25, WritePct: 20}
	var thr [3]float64
	for i, cov := range []Coverage{CoverNone, CoverPartial, CoverFull} {
		opts.Coverage = cov
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("%v: %v", cov, err)
		}
		thr[i] = res.Throughput
	}
	if !(thr[0] < thr[1] && thr[1] < thr[2]) {
		t.Errorf("throughput not monotonic in coverage: none=%.1f partial=%.1f full=%.1f",
			thr[0], thr[1], thr[2])
	}
}

// Bounded reordering may only help: annotating the counter with a reorder
// bound keeps the run exact and must not lose operations.
func TestHotKeyReorderBound(t *testing.T) {
	res, err := Run(Options{Nodes: 8, Clients: 8, Ops: 20, Coverage: CoverFull, Reorder: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 160 {
		t.Errorf("ops = %d, want 160", res.Ops)
	}
}

// Runs are a pure function of the options: repeated executions produce
// identical virtual-time results.
func TestHotKeyDeterminism(t *testing.T) {
	opts := Options{Nodes: 8, Clients: 8, Ops: 20, Coverage: CoverFull}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Ops != b.Ops || a.Stats != b.Stats {
		t.Errorf("runs diverge: %+v vs %+v", a, b)
	}
}

// The workload composes with the reliable wire path: lossy links change
// timing but not the ledger.
func TestHotKeyLossyLinks(t *testing.T) {
	res, err := Run(Options{
		Nodes: 4, Clients: 6, Ops: 15, Coverage: CoverFull,
		Faults: abcl.UniformFaults(0.05, 0.05, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LinkDrops == 0 {
		t.Error("lossy run recorded no drops")
	}
	if lost := res.Stats.LostMessages(); lost != 0 {
		t.Errorf("%d messages lost", lost)
	}
}

func TestParseCoverage(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Coverage
	}{{"none", CoverNone}, {"partial", CoverPartial}, {"full", CoverFull}} {
		got, err := ParseCoverage(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCoverage(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseCoverage("bogus"); err == nil {
		t.Error("bogus coverage accepted")
	}
}

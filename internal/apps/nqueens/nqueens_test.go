package nqueens

import (
	"testing"
	"testing/quick"

	abcl "repro"
	"repro/internal/machine"
)

// knownSolutions[n] is the number of n-queens solutions.
var knownSolutions = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
	9: 352, 10: 724, 11: 2680, 12: 14200, 13: 73712,
}

func TestCountTreeSolutions(t *testing.T) {
	for n := 1; n <= 11; n++ {
		_, sols := CountTree(n)
		if sols != knownSolutions[n] {
			t.Errorf("CountTree(%d) solutions = %d, want %d", n, sols, knownSolutions[n])
		}
	}
}

func TestCountTreeNodesMatchPaper(t *testing.T) {
	// Table 4: N=8 has 2,056 object creations — one per search-tree node.
	nodes, sols := CountTree(8)
	if nodes != 2056 {
		t.Errorf("8-queens tree nodes = %d, want 2056 (paper Table 4)", nodes)
	}
	if sols != 92 {
		t.Errorf("8-queens solutions = %d, want 92", sols)
	}
}

func TestSafe(t *testing.T) {
	// Queen at (0,0): attacks column 0 and both diagonals.
	b := Board{0}
	cases := []struct {
		row  int
		col  int8
		want bool
	}{
		{1, 0, false}, // same column
		{1, 1, false}, // diagonal
		{1, 2, true},
		{2, 2, false}, // diagonal two away
		{2, 1, true},
	}
	for _, c := range cases {
		if got := safe(b, c.row, c.col); got != c.want {
			t.Errorf("safe(%v, %d, %d) = %v, want %v", b, c.row, c.col, got, c.want)
		}
	}
}

func TestValidColumnsAgainstBruteForce(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build an arbitrary (possibly invalid) partial board of size <= 5
		// on a 6x6 problem; validColumns must agree with safe.
		n := 6
		b := Board{}
		for _, r := range raw {
			if len(b) >= 5 {
				break
			}
			b = append(b, int8(r%uint8(n)))
		}
		got := validColumns(b, n)
		j := 0
		for c := int8(0); int(c) < n; c++ {
			ok := safe(b, len(b), c)
			if ok {
				if j >= len(got) || got[j] != c {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequentialSmall(t *testing.T) {
	for n := 1; n <= 8; n++ {
		res, err := Run(Options{N: n, Nodes: 4, Seed: 3})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if res.Solutions != knownSolutions[n] {
			t.Errorf("N=%d parallel solutions = %d, want %d", n, res.Solutions, knownSolutions[n])
		}
		wantNodes, _ := CountTree(n)
		if int64(res.Objects) != wantNodes {
			t.Errorf("N=%d objects = %d, want %d tree nodes", n, res.Objects, wantNodes)
		}
	}
}

func TestParallelTable4Counts(t *testing.T) {
	// Table 4's N=8 column: 92 solutions, 2,056 creations, ~4,104 messages.
	res, err := Run(Options{N: 8, Nodes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 92 {
		t.Errorf("solutions = %d, want 92", res.Solutions)
	}
	if res.Objects != 2056 {
		t.Errorf("creations = %d, want 2056", res.Objects)
	}
	// Messages: one expand + one done per object, plus the root's report.
	if res.Messages < 2*2056 || res.Messages > 2*2056+16 {
		t.Errorf("messages = %d, want ~4112 (paper reports 4104)", res.Messages)
	}
}

func TestParallelSingleNode(t *testing.T) {
	res, err := Run(Options{N: 6, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 4 {
		t.Errorf("solutions = %d, want 4", res.Solutions)
	}
	if res.Stats.RemoteSends != 0 {
		t.Errorf("single node run had %d remote sends", res.Stats.RemoteSends)
	}
}

func TestParallelDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(Options{N: 7, Nodes: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Messages != b.Messages || a.Objects != b.Objects {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestSpeedupImprovesWithNodes(t *testing.T) {
	// Figure 5's premise: more nodes, shorter makespan (for a problem with
	// enough parallelism).
	t1, err := Run(Options{N: 9, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t16, err := Run(Options{N: 9, Nodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if t16.Elapsed >= t1.Elapsed {
		t.Fatalf("16 nodes (%v) not faster than 1 node (%v)", t16.Elapsed, t1.Elapsed)
	}
	speedup := float64(t1.Elapsed) / float64(t16.Elapsed)
	if speedup < 4 {
		t.Errorf("speedup on 16 nodes = %.1f, want >= 4", speedup)
	}
}

func TestStackBeatsNaive(t *testing.T) {
	// Figure 6's premise: stack-based scheduling outperforms naive
	// always-queue scheduling on the same program.
	st, err := Run(Options{N: 8, Nodes: 16, Seed: 1, Policy: abcl.StackBased})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Run(Options{N: 8, Nodes: 16, Seed: 1, Policy: abcl.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if nv.Elapsed <= st.Elapsed {
		t.Fatalf("naive (%v) must be slower than stack-based (%v)", nv.Elapsed, st.Elapsed)
	}
}

func TestDormantFraction(t *testing.T) {
	// Section 6.3: "approximately 75% of local messages are sent to dormant
	// mode objects" in the N-queens programs.
	res, err := Run(Options{N: 9, Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Stats.DormantFraction()
	if f < 0.5 || f > 1.0 {
		t.Errorf("dormant fraction = %.2f, want in the vicinity of 0.75", f)
	}
}

func TestSequentialCalibration(t *testing.T) {
	// Table 4: the sequential N=8 program takes ~84ms on a SPARCstation 1+.
	seq := Sequential(8, machine.DefaultConfig(1), 0)
	ms := seq.Elapsed.Millis()
	if ms < 60 || ms > 110 {
		t.Errorf("sequential N=8 time = %.1fms, want ~84ms", ms)
	}
	if seq.Solutions != 92 {
		t.Errorf("sequential solutions = %d, want 92", seq.Solutions)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{N: 0}); err == nil {
		t.Error("N=0 should be rejected")
	}
}

func TestBoardSizeBytes(t *testing.T) {
	b := Board{1, 2, 3}
	if b.SizeBytes() != 11 {
		t.Errorf("SizeBytes = %d, want 11", b.SizeBytes())
	}
}

func TestWorkInstr(t *testing.T) {
	if WorkInstr(8, 0) != 66*64/10 {
		t.Errorf("WorkInstr(8) = %d", WorkInstr(8, 0))
	}
	if WorkInstr(10, 100) != 1000 {
		t.Errorf("WorkInstr(10,100) = %d", WorkInstr(10, 100))
	}
}

func TestStockDisabledStillCorrect(t *testing.T) {
	res, err := Run(Options{N: 7, Nodes: 8, Seed: 1, StockDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 40 {
		t.Errorf("solutions = %d, want 40", res.Solutions)
	}
	if res.Stats.StockMisses == 0 {
		t.Error("disabled stock must produce misses")
	}
	if res.Stats.StockHits != 0 {
		t.Error("disabled stock must not produce hits")
	}
}

func TestPlacementPoliciesAllCorrect(t *testing.T) {
	for _, p := range []abcl.Placement{
		abcl.PlaceRoundRobin, abcl.PlaceRandom, abcl.PlaceLocal,
		abcl.PlaceLoadBased, abcl.PlaceDepthLocal,
	} {
		res, err := Run(Options{N: 7, Nodes: 8, Seed: 2, Placement: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Solutions != 40 {
			t.Errorf("%s: solutions = %d, want 40", p.Name(), res.Solutions)
		}
	}
}

package nqueens

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// SeqResult reports the sequential depth-first baseline (the C++ program of
// Table 4): the same search charged with the same per-node work but with no
// heap, no messages, and no termination detection — it uses the run-time
// stack only, as the paper describes.
type SeqResult struct {
	N         int
	Solutions int64
	TreeNodes int64 // valid placements visited (== parallel object count)
	Elapsed   sim.Time
}

// Sequential runs the baseline under the given machine configuration's
// clock/CPI (pass machine.DefaultConfig(1) for the paper's SPARCstation-
// class processor) and work factor (tenths; 0 = default).
func Sequential(n int, cfg machine.Config, workFactor int) SeqResult {
	nodes, sols := CountTree(n)
	instr := nodes * int64(WorkInstr(n, workFactor))
	return SeqResult{
		N:         n,
		Solutions: sols,
		TreeNodes: nodes,
		Elapsed:   cfg.InstrTime(int(instr)),
	}
}

// CountTree performs the actual depth-first search, returning the number of
// valid partial placements (search-tree nodes, excluding the empty root)
// and the number of complete solutions.
func CountTree(n int) (nodes, solutions int64) {
	full := uint32(1)<<uint(n) - 1
	// cols/d1/d2 are column and diagonal occupancy bitmasks, shifted per row.
	var rec func(row int, cols, d1, d2 uint32)
	rec = func(row int, cols, d1, d2 uint32) {
		avail := full &^ (cols | d1 | d2)
		for avail != 0 {
			bit := avail & -avail
			avail &^= bit
			nodes++
			if row == n-1 {
				solutions++
				continue
			}
			rec(row+1, cols|bit, ((d1|bit)<<1)&full, (d2|bit)>>1)
		}
	}
	rec(0, 0, 0, 0)
	return nodes, solutions
}

// Package nqueens implements the paper's benchmark application: exhaustive
// N-queens search as a tree of concurrent objects (Section 6.2).
//
// Every valid partial placement of queens becomes one concurrent object.
// An object receives an "expand" message carrying its board, computes the
// valid placements of the next row, creates one child object per valid
// placement (through the system placement policy), and sends each child an
// "expand". Completion is detected by acknowledgement messages tracing back
// the search tree: each object reports its solution count to its parent
// with a "done" message once all children have reported — the paper's
// termination-detection scheme. Message and object counts therefore match
// the paper's Table 4 (one creation and two messages per search-tree node).
package nqueens

import (
	"fmt"

	abcl "repro"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Board is a partial placement: Board[r] is the column of the queen on row
// r. Boards are immutable once sent.
type Board []int8

// SizeBytes implements core.Sizer for wire-size accounting.
func (b Board) SizeBytes() int { return 8 + len(b) }

// DefaultWorkFactor calibrates per-node search work to the paper's
// sequential timings: about 6.6*N*N instructions per tree node reproduces
// the SPARCstation 1+ elapsed times of Table 4 (84ms for N=8, ~462s for
// N=13) given the AP1000 cost model. The factor is in tenths.
const DefaultWorkFactor = 66

// WorkInstr returns the modelled instruction cost of expanding one tree
// node for board size n with the given work factor (tenths).
func WorkInstr(n, factor int) int {
	if factor <= 0 {
		factor = DefaultWorkFactor
	}
	return factor * n * n / 10
}

// Options configures a parallel N-queens run.
type Options struct {
	N          int // board size
	Nodes      int // processor count
	Policy     abcl.Policy
	Placement  abcl.Placement // default: random (for load balance)
	Seed       int64
	StockDepth int // -1 disables the chunk stock
	WorkFactor int // tenths of instructions per N^2; 0 = DefaultWorkFactor
	MaxDepth   int // stack-depth bound; 0 = runtime default
	Faults     abcl.FaultPlan

	// Wire-path options: per-link packet batching, the reliable protocol
	// and delayed (coalesced) acks. Zero values leave them all off.
	BatchWindow   sim.Time
	BatchMaxBytes int
	Reliable      bool
	AckDelay      sim.Time

	// CheckpointInterval, when positive, enables periodic coordinated
	// checkpoints (crashes in Faults restart from the latest one).
	CheckpointInterval sim.Time

	// Profile, when non-nil, enables the cost-attribution profiler; the
	// report lands in Result.Report.Profile.
	Profile *abcl.ProfileOptions
	// Observer, when non-nil, receives every runtime event (abcl.WithObserver).
	Observer abcl.Sink
	// Extra system options appended after everything above (parallel
	// execution, location-cache control, ...). Later options win.
	Extra []abcl.Option
}

// Result reports one parallel run.
type Result struct {
	N           int
	Nodes       int
	Solutions   int64
	Objects     uint64 // search-tree objects created
	Messages    uint64 // object-to-object messages
	Elapsed     sim.Time
	Utilization float64
	MemoryBytes uint64 // modelled heap usage (objects + message frames)
	Packets     uint64 // hardware packets launched
	Stats       stats.Counters
	Report      abcl.Report // grouped snapshot; Profile section set when Options.Profile was given
}

// Run executes a parallel N-queens search and returns its result.
func Run(opt Options) (Result, error) {
	if opt.N < 1 {
		return Result{}, fmt.Errorf("nqueens: N must be >= 1, got %d", opt.N)
	}
	if opt.Nodes < 1 {
		opt.Nodes = 1
	}
	placement := opt.Placement
	if placement == nil {
		placement = abcl.PlaceRandom
	}
	opts := []abcl.Option{abcl.WithNodes(opt.Nodes), abcl.WithPlacement(placement)}
	if opt.Policy != abcl.StackBased {
		opts = append(opts, abcl.WithPolicy(opt.Policy))
	}
	if opt.Seed != 0 {
		opts = append(opts, abcl.WithSeed(opt.Seed))
	}
	switch {
	case opt.StockDepth < 0:
		opts = append(opts, abcl.WithoutChunkStock())
	case opt.StockDepth > 0:
		opts = append(opts, abcl.WithChunkStock(opt.StockDepth))
	}
	if opt.MaxDepth > 0 {
		opts = append(opts, abcl.WithMaxStackDepth(opt.MaxDepth))
	}
	if opt.Faults.Enabled() {
		opts = append(opts, abcl.WithFaults(opt.Faults))
	}
	if opt.BatchWindow > 0 {
		opts = append(opts, abcl.WithBatching(opt.BatchWindow, opt.BatchMaxBytes))
	}
	if opt.Reliable {
		opts = append(opts, abcl.WithReliable())
	}
	if opt.AckDelay > 0 {
		opts = append(opts, abcl.WithDelayedAcks(opt.AckDelay))
	}
	if opt.CheckpointInterval > 0 {
		opts = append(opts, abcl.WithCheckpoint(opt.CheckpointInterval))
	}
	if opt.Profile != nil {
		opts = append(opts, abcl.WithProfiler(*opt.Profile))
	}
	if opt.Observer != nil {
		opts = append(opts, abcl.WithObserver(opt.Observer))
	}
	opts = append(opts, opt.Extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		return Result{}, err
	}
	d := Build(sys, opt.N, opt.WorkFactor)
	d.Start()
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return d.Result()
}

// Driver owns one N-queens computation on a System.
type Driver struct {
	sys  *abcl.System
	n    int
	work int

	patExpand abcl.Pattern
	patDone   abcl.Pattern
	patStart  abcl.Pattern

	nodeCls      *abcl.Class
	collectorCls *abcl.Class
	rootCls      *abcl.Class

	root      abcl.Address
	collector abcl.Address

	solutions  int64
	finishedAt sim.Time
	finished   bool
}

// State variable indices for the search-node class. The spawn cursor lives
// in simulated state rather than in the spawn continuation's closure: a
// checkpoint captures parked continuations by reference, so their captured
// variables must never be mutated after parking (the write-once environment
// contract, DESIGN.md §10) — advancing the cursor through SetState keeps the
// mutation inside the state box the snapshot copies.
const (
	stParent  = 0
	stPending = 1
	stAcc     = 2
	stNext    = 3 // next index into the valid-columns slice while spawning
)

// Build registers the N-queens classes on sys. Call Start before sys.Run.
func Build(sys *abcl.System, n, workFactor int) *Driver {
	d := &Driver{sys: sys, n: n, work: WorkInstr(n, workFactor)}

	d.patExpand = sys.Pattern("nq.expand", 1) // board
	d.patDone = sys.Pattern("nq.done", 1)     // solution count
	d.patStart = sys.Pattern("nq.start", 0)

	// The search-tree object: created with its parent's address, expanded
	// once, then accumulates children's done-counts.
	d.nodeCls = sys.Class("nq.node", 4, func(ic *abcl.InitCtx) {
		ic.SetState(stParent, ic.CtorArg(0))
		ic.SetState(stPending, abcl.Int(0))
		ic.SetState(stAcc, abcl.Int(0))
		ic.SetState(stNext, abcl.Int(0))
	})
	d.nodeCls.Method(d.patExpand, d.expandMethod)
	d.nodeCls.Method(d.patDone, d.doneMethod)

	// The collector records the final solution count and completion time.
	// These are host-side observer fields, so they are not rolled back by a
	// checkpoint restore — which is safe because the method only *sets*
	// values that are deterministic across timelines (the search is
	// confluent), never accumulates (the host-write rule, DESIGN.md §10).
	d.collectorCls = sys.Class("nq.collector", 1, nil)
	d.collectorCls.Method(d.patDone, func(ctx *abcl.Ctx) {
		d.solutions = ctx.Arg(0).Int()
		d.finishedAt = ctx.Now()
		d.finished = true
	})

	// The root behaves like a search node with an empty board.
	d.rootCls = sys.Class("nq.root", 4, func(ic *abcl.InitCtx) {
		ic.SetState(stParent, ic.CtorArg(0))
		ic.SetState(stPending, abcl.Int(0))
		ic.SetState(stAcc, abcl.Int(0))
		ic.SetState(stNext, abcl.Int(0))
	})
	d.rootCls.Method(d.patStart, func(ctx *abcl.Ctx) {
		d.expandBoard(ctx, Board{})
	})
	d.rootCls.Method(d.patDone, d.doneMethod)

	d.collector = sys.NewObjectOn(0, d.collectorCls)
	d.root = sys.NewObjectOn(0, d.rootCls, abcl.Ref(d.collector))
	return d
}

// Start injects the initial expand message.
func (d *Driver) Start() { d.sys.Send(d.root, d.patStart) }

// expandMethod handles nq.expand on a search node.
func (d *Driver) expandMethod(ctx *abcl.Ctx) {
	b := ctx.Arg(0).Any().(Board)
	d.expandBoard(ctx, b)
}

// expandBoard performs the node expansion: charge the modelled search work,
// then either report a solution/dead end or create one child per valid
// next-row placement.
func (d *Driver) expandBoard(ctx *abcl.Ctx, b Board) {
	ctx.Charge(d.work)
	parent := ctx.State(stParent).Ref()
	row := len(b)
	if row == d.n {
		// A complete placement: one solution.
		ctx.SendPast(parent, d.patDone, abcl.Int(1))
		return
	}
	valid := validColumns(b, d.n)
	if len(valid) == 0 {
		ctx.SendPast(parent, d.patDone, abcl.Int(0))
		return
	}
	ctx.SetState(stPending, abcl.Int(int64(len(valid))))
	d.spawnChildren(ctx, b, valid, 0)
}

// spawnChildren creates children for each valid column in CPS order: the
// creation itself can block when the chunk stock runs dry, so the loop is
// expressed as a continuation chain. A single continuation and ctor-arg
// slice serve every child of this node; the continuation re-arms itself
// until the valid columns are exhausted. The loop cursor advances through
// the stNext state variable, never through the closure environment — b and
// valid are captured but write-once, which keeps a parked continuation
// restorable from a checkpoint.
func (d *Driver) spawnChildren(ctx *abcl.Ctx, b Board, valid []int8, i int) {
	if i == len(valid) {
		return
	}
	ctorArgs := []abcl.Value{abcl.Ref(ctx.Self())}
	var k func(*abcl.Ctx, abcl.Address)
	k = func(ctx *abcl.Ctx, addr abcl.Address) {
		j := int(ctx.State(stNext).Int())
		ctx.SendPast(addr, d.patExpand, abcl.Any(nextChild(b, valid[j])))
		j++
		if j == len(valid) {
			return
		}
		ctx.SetState(stNext, abcl.Int(int64(j)))
		ctx.Create(d.nodeCls, ctorArgs, k)
	}
	ctx.SetState(stNext, abcl.Int(int64(i)))
	ctx.Create(d.nodeCls, ctorArgs, k)
}

// nextChild extends b with a queen in column col on the next row.
func nextChild(b Board, col int8) Board {
	child := make(Board, len(b)+1)
	copy(child, b)
	child[len(b)] = col
	return child
}

// doneMethod accumulates a child's solution count; when the last child has
// reported, the node acknowledges up the tree.
func (d *Driver) doneMethod(ctx *abcl.Ctx) {
	acc := ctx.State(stAcc).Int() + ctx.Arg(0).Int()
	pending := ctx.State(stPending).Int() - 1
	ctx.SetState(stAcc, abcl.Int(acc))
	ctx.SetState(stPending, abcl.Int(pending))
	if pending == 0 {
		ctx.SendPast(ctx.State(stParent).Ref(), d.patDone, abcl.Int(acc))
	}
}

// Result summarizes the run. Valid after sys.Run has reached quiescence.
func (d *Driver) Result() (Result, error) {
	if !d.finished {
		return Result{}, fmt.Errorf("nqueens: N=%d run did not complete (termination detection failed)", d.n)
	}
	rep := d.sys.Report()
	c := rep.Sched.Counters
	objects := c.Creations() - 2 // exclude root and collector
	messages := c.TotalMessages()
	return Result{
		N:           d.n,
		Nodes:       rep.Sched.Nodes,
		Solutions:   d.solutions,
		Objects:     objects,
		Messages:    messages,
		Elapsed:     d.finishedAt,
		Utilization: rep.Sched.Utilization,
		MemoryBytes: objects*objectBytes + messages*frameBytes,
		Packets:     rep.Wire.Packets,
		Stats:       c,
		Report:      rep,
	}, nil
}

// Modelled heap footprints: a concurrent object header plus three state
// variables, and a buffered message frame (Table 4's memory accounting).
const (
	objectBytes = 64
	frameBytes  = 28
)

// validColumns returns the columns where a queen may be placed on row
// len(b) without attacking any earlier queen.
func validColumns(b Board, n int) []int8 {
	row := len(b)
	var out []int8
	for c := int8(0); int(c) < n; c++ {
		if safe(b, row, c) {
			out = append(out, c)
		}
	}
	return out
}

// safe reports whether a queen at (row, col) is unattacked by b.
func safe(b Board, row int, col int8) bool {
	for r, c := range b {
		if c == col {
			return false
		}
		d := row - r
		if int(c)-int(col) == d || int(col)-int(c) == d {
			return false
		}
	}
	return true
}

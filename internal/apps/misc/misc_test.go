package misc

import (
	"testing"

	abcl "repro"
)

func TestCounter(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(1))
	cls, inc, add, get := BuildCounter(sys)

	kick := sys.Pattern("t.kick", 0)
	var target abcl.Address
	var got int64 = -1
	drv := sys.Class("t.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendPast(target, inc)
		ctx.SendPast(target, inc)
		ctx.SendPast(target, add, abcl.Int(40))
		ctx.SendNow(target, get, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			got = v.Int()
		})
	})

	target = sys.NewObjectOn(0, cls)
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterAcrossNodes(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(4))
	cls, inc, _, get := BuildCounter(sys)

	kick := sys.Pattern("t.kick", 0)
	var target abcl.Address
	results := make([]int64, 0, 3)
	drv := sys.Class("t.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendPast(target, inc)
		ctx.SendNow(target, get, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			results = append(results, v.Int())
		})
	})

	target = sys.NewObjectOn(3, cls)
	for n := 0; n < 3; n++ {
		d := sys.NewObjectOn(n, drv)
		sys.Send(d, kick)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d replies, want 3", len(results))
	}
	// Each driver read the counter after at least its own increment; the
	// final value across all gets must include all three increments.
	max := int64(0)
	for _, v := range results {
		if v > max {
			max = v
		}
	}
	if max != 3 {
		t.Fatalf("max observed counter = %d, want 3", max)
	}
}

func TestBoundedBufferPutThenTake(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(1))
	bb := BuildBoundedBuffer(sys)

	kick := sys.Pattern("t.kick", 0)
	var buf abcl.Address
	var got []int64
	drv := sys.Class("t.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendPast(buf, bb.Put, abcl.Int(11))
		ctx.SendNow(buf, bb.Take, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			got = append(got, v.Int())
		})
	})

	buf = sys.NewObjectOn(0, bb.Cls)
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("take got %v, want [11]", got)
	}
}

func TestBoundedBufferTakeBeforePut(t *testing.T) {
	// Consumer asks first; the buffer selectively waits for the put.
	sys := abcl.MustNewSystem(abcl.WithNodes(2))
	bb := BuildBoundedBuffer(sys)

	kickC := sys.Pattern("t.kickc", 0)
	kickP := sys.Pattern("t.kickp", 0)
	var buf abcl.Address
	var got int64 = -1
	consumer := sys.Class("t.consumer", 0, nil)
	consumer.Method(kickC, func(ctx *abcl.Ctx) {
		ctx.SendNow(buf, bb.Take, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			got = v.Int()
		})
	})
	producer := sys.Class("t.producer", 0, nil)
	producer.Method(kickP, func(ctx *abcl.Ctx) {
		ctx.Charge(10000) // arrive well after the take
		ctx.SendPast(buf, bb.Put, abcl.Int(33))
	})

	buf = sys.NewObjectOn(0, bb.Cls)
	c := sys.NewObjectOn(1, consumer)
	p := sys.NewObjectOn(1, producer)
	sys.Send(c, kickC)
	sys.Send(p, kickP)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 33 {
		t.Fatalf("take got %d, want 33", got)
	}
}

func TestBoundedBufferOrdering(t *testing.T) {
	// Multiple puts from one producer must be consumed in order.
	sys := abcl.MustNewSystem(abcl.WithNodes(1))
	bb := BuildBoundedBuffer(sys)

	kickP := sys.Pattern("t.kickp", 0)
	kickC := sys.Pattern("t.kickc", 1)
	var buf abcl.Address
	var got []int64
	producer := sys.Class("t.producer", 0, nil)
	producer.Method(kickP, func(ctx *abcl.Ctx) {
		for i := int64(1); i <= 3; i++ {
			ctx.SendPast(buf, bb.Put, abcl.Int(i))
		}
	})
	var consume func(ctx *abcl.Ctx, left int64)
	consume = func(ctx *abcl.Ctx, left int64) {
		if left == 0 {
			return
		}
		ctx.SendNow(buf, bb.Take, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			got = append(got, v.Int())
			consume(ctx, left-1)
		})
	}
	consumer := sys.Class("t.consumer", 0, nil)
	consumer.Method(kickC, func(ctx *abcl.Ctx) { consume(ctx, ctx.Arg(0).Int()) })

	buf = sys.NewObjectOn(0, bb.Cls)
	p := sys.NewObjectOn(0, producer)
	c := sys.NewObjectOn(0, consumer)
	sys.Send(p, kickP)
	sys.Send(c, kickC, abcl.Int(3))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("consumed %v, want [1 2 3]", got)
	}
}

func TestForkJoin(t *testing.T) {
	for _, tc := range []struct {
		depth, nodes int
		want         int64
	}{
		{0, 1, 1},
		{3, 1, 8},
		{5, 4, 32},
		{8, 16, 256},
	} {
		got, err := RunForkJoin(tc.depth, tc.nodes, abcl.StackBased)
		if err != nil {
			t.Fatalf("depth=%d nodes=%d: %v", tc.depth, tc.nodes, err)
		}
		if got != tc.want {
			t.Errorf("depth=%d nodes=%d: leaves = %d, want %d", tc.depth, tc.nodes, got, tc.want)
		}
	}
}

func TestForkJoinNaive(t *testing.T) {
	got, err := RunForkJoin(6, 4, abcl.Naive)
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Fatalf("leaves = %d, want 64", got)
	}
}

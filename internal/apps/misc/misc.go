// Package misc provides small concurrent-object workloads used by tests,
// examples and ablation benchmarks: a counter service, a bounded buffer
// built on selective message reception, and a fork-join computation tree.
package misc

import (
	"fmt"

	abcl "repro"
)

// BuildCounter registers a counter class on sys: it understands
// "ctr.inc" (past), "ctr.add n" (past) and "ctr.get" (now, replies the
// current value).
func BuildCounter(sys *abcl.System) (cls *abcl.Class, inc, add, get abcl.Pattern) {
	inc = sys.Pattern("ctr.inc", 0)
	add = sys.Pattern("ctr.add", 1)
	get = sys.Pattern("ctr.get", 0)
	cls = sys.Class("ctr.counter", 1, func(ic *abcl.InitCtx) {
		ic.SetState(0, abcl.Int(0))
	})
	cls.Method(inc, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	cls.Method(add, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+ctx.Arg(0).Int()))
	})
	cls.Method(get, func(ctx *abcl.Ctx) {
		ctx.Reply(ctx.State(0))
	})
	return cls, inc, add, get
}

// BoundedBuffer is a classic ABCL example: a producer/consumer cell
// implemented with selective message reception. The buffer has capacity 1;
// "bb.put v" stores when empty, "bb.take" replies and empties. When full,
// the buffer *waits* selectively for a take; when empty, for a put — the
// other pattern buffers in its message queue meanwhile.
type BoundedBuffer struct {
	Cls  *abcl.Class
	Put  abcl.Pattern
	Take abcl.Pattern
}

// BuildBoundedBuffer registers the bounded-buffer class on sys.
func BuildBoundedBuffer(sys *abcl.System) *BoundedBuffer {
	b := &BoundedBuffer{
		Put:  sys.Pattern("bb.put", 1),
		Take: sys.Pattern("bb.take", 0),
	}
	b.Cls = sys.Class("bb.buffer", 1, nil)
	// A put stores the value, then selectively waits for the matching take
	// before accepting the next put (capacity 1). Further puts buffer in
	// the message queue, preserving order.
	b.Cls.Method(b.Put, func(ctx *abcl.Ctx) {
		v := ctx.Arg(0)
		ctx.SetState(0, v)
		ctx.WaitFor(func(ctx *abcl.Ctx, f *abcl.Frame) {
			// f is the take message: reply the stored value to its reply
			// destination (take is sent as a now-type message).
			ctx.SendWithReply(f.ReplyTo, replyPattern(sys), []abcl.Value{ctx.State(0)}, abcl.Address{})
		}, b.Take)
	})
	// A take arriving while empty (dormant mode) waits for a put... but the
	// dormant-mode method only runs when no put is pending; in that case we
	// wait for the next put and then reply.
	b.Cls.Method(b.Take, func(ctx *abcl.Ctx) {
		rd := ctx.ReplyTo()
		ctx.WaitFor(func(ctx *abcl.Ctx, f *abcl.Frame) {
			ctx.SendWithReply(rd, replyPattern(sys), []abcl.Value{f.Arg(0)}, abcl.Address{})
		}, b.Put)
	})
	return b
}

// replyPattern returns the runtime's reserved reply pattern.
func replyPattern(sys *abcl.System) abcl.Pattern { return sys.RT.PatReply }

// ForkJoin is a binary computation tree: fj.compute(depth) forks two
// children (created via the placement policy) until depth 0, then results
// join back with now-type replies. It exercises remote creation, now-type
// blocking and termination purely through replies.
type ForkJoin struct {
	Cls     *abcl.Class
	Compute abcl.Pattern
}

// BuildForkJoin registers the fork-join class.
func BuildForkJoin(sys *abcl.System) *ForkJoin {
	fj := &ForkJoin{Compute: sys.Pattern("fj.compute", 1)}
	fj.Cls = sys.Class("fj.node", 0, nil)
	fj.Cls.Method(fj.Compute, func(ctx *abcl.Ctx) {
		depth := ctx.Arg(0).Int()
		ctx.Charge(20) // leaf/body work
		if depth == 0 {
			ctx.Reply(abcl.Int(1))
			return
		}
		ctx.Create(fj.Cls, nil, func(ctx *abcl.Ctx, left abcl.Address) {
			ctx.Create(fj.Cls, nil, func(ctx *abcl.Ctx, right abcl.Address) {
				ctx.SendNow(left, fj.Compute, []abcl.Value{abcl.Int(depth - 1)}, func(ctx *abcl.Ctx, lv abcl.Value) {
					ctx.SendNow(right, fj.Compute, []abcl.Value{abcl.Int(depth - 1)}, func(ctx *abcl.Ctx, rv abcl.Value) {
						ctx.Reply(abcl.Int(lv.Int() + rv.Int()))
					})
				})
			})
		})
	})
	return fj
}

// RunForkJoin builds a system, runs a fork-join tree of the given depth on
// the given node count, and returns the leaf count (must be 2^depth).
func RunForkJoin(depth, nodes int, policy abcl.Policy) (int64, error) {
	if nodes < 1 {
		nodes = 1
	}
	sys, err := abcl.NewSystem(abcl.WithNodes(nodes), abcl.WithPolicy(policy))
	if err != nil {
		return 0, err
	}
	return RunForkJoinOn(sys, depth)
}

// AllToAllOptions configures the all-to-all exchange workload.
type AllToAllOptions struct {
	Nodes  int           // node count; one peer object per node
	Rounds int           // messages each peer sends to every other peer
	Opts   []abcl.Option // extra system options (batching, reliability, faults, ...)
}

// AllToAllResult reports the outcome of one all-to-all exchange.
type AllToAllResult struct {
	Delivered  int64 // messages received across all peers
	Violations int64 // per-sender FIFO order violations observed by receivers
	Elapsed    abcl.Time
	Packets    uint64 // hardware packets launched
	Msgs       uint64 // logical messages carried (>= Packets when batching)
	Stats      abcl.Counters
	// SyncWindows counts the parallel executor's synchronization barriers
	// (0 for sequential runs). Deliberately outside the cross-executor
	// equivalence surface: window schedules differ by strategy even though
	// results are byte-identical.
	SyncWindows uint64 `json:"-"`
}

// RunAllToAll runs a communication-dominated exchange: every node hosts one
// peer object, and every node sends Rounds numbered past-type messages to
// every other node's peer. Receivers verify per-sender FIFO order. The
// pattern is the worst case for per-link batching (traffic spread across
// all N·(N-1) links) and the best case for ack coalescing (many messages
// per link in flight at once).
func RunAllToAll(o AllToAllOptions) (*AllToAllResult, error) {
	if o.Nodes < 2 {
		return nil, fmt.Errorf("misc: all-to-all needs at least 2 nodes, got %d", o.Nodes)
	}
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(o.Nodes)}, o.Opts...)...)
	if err != nil {
		return nil, err
	}
	p := o.Nodes
	// Per-receiver tallies live in per-node slots so that method bodies never
	// share Go state across event lanes.
	received := make([]int64, p)
	violations := make([]int64, p)
	expected := make([][]int64, p)
	for i := range expected {
		expected[i] = make([]int64, p)
	}

	hit := sys.Pattern("a2a.hit", 2)
	kick := sys.Pattern("a2a.kick", 0)
	peerCls := sys.Class("a2a.peer", 0, nil)
	peerCls.Method(hit, func(ctx *abcl.Ctx) {
		me := ctx.NodeID()
		src := ctx.Arg(0).Int()
		seq := ctx.Arg(1).Int()
		received[me]++
		if seq != expected[me][src] {
			violations[me]++
		}
		expected[me][src] = seq + 1
	})

	peers := make([]abcl.Address, p)
	for i := range peers {
		peers[i] = sys.NewObjectOn(i, peerCls)
	}
	// Rounds are sent destination-major: each peer receives its Rounds
	// messages as one back-to-back burst, the traffic shape per-link
	// batching is built for (a multi-record logical transfer).
	srcCls := sys.Class("a2a.src", 0, nil)
	srcCls.Method(kick, func(ctx *abcl.Ctx) {
		me := ctx.NodeID()
		for d := 0; d < p; d++ {
			if d == me {
				continue
			}
			for r := 0; r < o.Rounds; r++ {
				ctx.SendPast(peers[d], hit, abcl.Int(int64(me)), abcl.Int(int64(r)))
			}
		}
	})
	for i := 0; i < p; i++ {
		sys.Send(sys.NewObjectOn(i, srcCls), kick)
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}

	rep := sys.Report()
	res := &AllToAllResult{
		Elapsed:     rep.Sched.Elapsed,
		Packets:     rep.Wire.Packets,
		Msgs:        rep.Wire.LogicalMsgs,
		Stats:       rep.Sched.Counters,
		SyncWindows: sys.SyncWindows(),
	}
	for i := 0; i < p; i++ {
		res.Delivered += received[i]
		res.Violations += violations[i]
	}
	want := int64(p) * int64(p-1) * int64(o.Rounds)
	if res.Delivered != want {
		return res, fmt.Errorf("misc: all-to-all delivered %d messages, want %d", res.Delivered, want)
	}
	if res.Violations != 0 {
		return res, fmt.Errorf("misc: all-to-all observed %d FIFO order violations", res.Violations)
	}
	return res, nil
}

// RunForkJoinOn runs a fork-join tree of the given depth on an existing,
// not-yet-run system (e.g. one built with fault injection enabled) and
// returns the leaf count.
func RunForkJoinOn(sys *abcl.System, depth int) (int64, error) {
	fj := BuildForkJoin(sys)

	done := sys.Pattern("fj.done", 1)
	var result int64 = -1
	sink := sys.Class("fj.sink", 0, nil)
	sink.Method(done, func(ctx *abcl.Ctx) { result = ctx.Arg(0).Int() })

	kick := sys.Pattern("fj.kick", 1)
	var root, sinkAddr abcl.Address
	drv := sys.Class("fj.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendNow(root, fj.Compute, []abcl.Value{ctx.Arg(0)}, func(ctx *abcl.Ctx, v abcl.Value) {
			ctx.SendPast(sinkAddr, done, v)
		})
	})

	root = sys.NewObjectOn(0, fj.Cls)
	sinkAddr = sys.NewObjectOn(0, sink)
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick, abcl.Int(int64(depth)))
	if err := sys.Run(); err != nil {
		return 0, err
	}
	if result < 0 {
		return 0, fmt.Errorf("misc: fork-join did not complete")
	}
	return result, nil
}

// Package pingpong implements the microbenchmarks behind the paper's
// Tables 1 and 3: repeated intra-node and inter-node message passing
// between two objects, measuring per-message latency in virtual time.
package pingpong

import (
	"fmt"

	abcl "repro"
	"repro/internal/sim"
)

// Result reports a ping-pong measurement.
type Result struct {
	Iterations int
	Total      sim.Time
	PerOp      sim.Time // total / iterations
}

// PastLocal measures the intra-node past-type send to a dormant object
// (Table 1 row 1): a driver repeatedly invokes a null method on a dormant
// object on the same node.
func PastLocal(iters int, opts ...abcl.Option) (Result, error) {
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(1)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	ping := sys.Pattern("pp.ping", 0)
	kick := sys.Pattern("pp.kick", 0)

	null := sys.Class("pp.null", 0, nil)
	null.Method(ping, func(ctx *abcl.Ctx) {})

	var target abcl.Address
	var start, end sim.Time
	drv := sys.Class("pp.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		start = ctx.Now()
		for i := 0; i < iters; i++ {
			ctx.SendPast(target, ping)
		}
		end = ctx.Now()
	})

	target = sys.NewObjectOn(0, null)
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return mkResult(iters, end-start)
}

// PastLocalActive measures the intra-node message to an active object
// (Table 1 row 2): the receiver sends to itself, so every message after the
// first is buffered and scheduled through the queue.
func PastLocalActive(iters int, opts ...abcl.Option) (Result, error) {
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(1)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	step := sys.Pattern("pp.step", 1)

	var done sim.Time
	self := sys.Class("pp.self", 0, nil)
	self.Method(step, func(ctx *abcl.Ctx) {
		n := ctx.Arg(0).Int()
		if n > 0 {
			// Self-send: the receiver (self) is active, so the full
			// buffer + schedule + dispatch path is taken every iteration.
			ctx.SendPast(ctx.Self(), step, abcl.Int(n-1))
		} else {
			done = ctx.Now()
		}
	})

	o := sys.NewObjectOn(0, self)
	sys.Send(o, step, abcl.Int(int64(iters)))
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return mkResult(iters, done)
}

// CreateLocal measures intra-node object creation (Table 1 row 3).
func CreateLocal(iters int, opts ...abcl.Option) (Result, error) {
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(1)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	kick := sys.Pattern("pp.kick", 0)
	nop := sys.Pattern("pp.nop", 0)
	leaf := sys.Class("pp.leaf", 0, nil)
	leaf.Method(nop, func(ctx *abcl.Ctx) {})

	var start, end sim.Time
	drv := sys.Class("pp.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		start = ctx.Now()
		for i := 0; i < iters; i++ {
			ctx.NewLocal(leaf)
		}
		end = ctx.Now()
	})
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return mkResult(iters, end-start)
}

// PastRemote measures minimum inter-node latency (Table 1 row 4) exactly as
// the paper does: "repeatedly transmitting one word past-type messages
// between two objects" on adjacent nodes, both dormant at reception.
// Per-op time is the one-way latency.
func PastRemote(iters int, opts ...abcl.Option) (Result, error) {
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(2)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	ball := sys.Pattern("pp.ball", 1)

	var aAddr, bAddr abcl.Address
	var done sim.Time
	mk := func(name string, peer *abcl.Address) *abcl.Class {
		c := sys.Class(name, 0, nil)
		c.Method(ball, func(ctx *abcl.Ctx) {
			n := ctx.Arg(0).Int()
			if n > 0 {
				ctx.SendPast(*peer, ball, abcl.Int(n-1))
			} else {
				done = ctx.Now()
			}
		})
		return c
	}
	ca := mk("pp.a", &bAddr)
	cb := mk("pp.b", &aAddr)
	aAddr = sys.NewObjectOn(0, ca)
	bAddr = sys.NewObjectOn(1, cb)
	sys.Send(aAddr, ball, abcl.Int(int64(iters)))
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return mkResult(iters, done)
}

// NowRemote measures the inter-node request-reply cycle of Table 3: a
// now-type message to a remote object that replies immediately.
func NowRemote(iters int, opts ...abcl.Option) (Result, error) {
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(2)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	ask := sys.Pattern("pp.ask", 0)
	kick := sys.Pattern("pp.kick", 0)

	var target abcl.Address
	svc := sys.Class("pp.svc", 0, nil)
	svc.Method(ask, func(ctx *abcl.Ctx) { ctx.Reply(abcl.Int(0)) })

	var start, end sim.Time
	var doIter func(ctx *abcl.Ctx, n int)
	doIter = func(ctx *abcl.Ctx, n int) {
		if n == 0 {
			end = ctx.Now()
			return
		}
		ctx.SendNow(target, ask, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			doIter(ctx, n-1)
		})
	}
	cl := sys.Class("pp.cl", 0, nil)
	cl.Method(kick, func(ctx *abcl.Ctx) {
		start = ctx.Now()
		doIter(ctx, iters)
	})

	target = sys.NewObjectOn(1, svc)
	c := sys.NewObjectOn(0, cl)
	sys.Send(c, kick)
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return mkResult(iters, end-start)
}

func mkResult(iters int, total sim.Time) (Result, error) {
	if iters <= 0 {
		return Result{}, fmt.Errorf("pingpong: iterations must be positive")
	}
	if total <= 0 {
		return Result{}, fmt.Errorf("pingpong: run did not complete")
	}
	return Result{Iterations: iters, Total: total, PerOp: total / sim.Time(iters)}, nil
}

package pingpong

import (
	"testing"

	"repro/internal/sim"
)

func TestPastLocalMatchesTable1(t *testing.T) {
	res, err := PastLocal(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: 2.3µs per intra-node message to a dormant object.
	if res.PerOp != 2300*sim.Nanosecond {
		t.Errorf("per-op = %v, want exactly 2.3µs", res.PerOp)
	}
}

func TestPastLocalActiveMatchesTable1(t *testing.T) {
	res, err := PastLocalActive(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: ~9.6µs per intra-node message to an active object (the full
	// buffer + schedule + dispatch path).
	if res.PerOp < 9*sim.Microsecond || res.PerOp > 11*sim.Microsecond {
		t.Errorf("per-op = %v, want ~9.6µs", res.PerOp)
	}
}

func TestActiveOverDormantRatio(t *testing.T) {
	// The paper: the active path costs "over 4 times" the dormant path.
	d, err := PastLocal(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PastLocalActive(1000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.PerOp) / float64(d.PerOp)
	if ratio < 4 {
		t.Errorf("active/dormant ratio = %.2f, want > 4", ratio)
	}
}

func TestCreateLocalMatchesTable1(t *testing.T) {
	res, err := CreateLocal(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: ~2.1µs per intra-node creation.
	if res.PerOp < 2000*sim.Nanosecond || res.PerOp > 2200*sim.Nanosecond {
		t.Errorf("per-op = %v, want ~2.1µs", res.PerOp)
	}
}

func TestPastRemoteMatchesTable1(t *testing.T) {
	res, err := PastRemote(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: ~8.9µs minimum inter-node one-way latency.
	if res.PerOp < 8500*sim.Nanosecond || res.PerOp > 9300*sim.Nanosecond {
		t.Errorf("per-op = %v, want ~8.9µs", res.PerOp)
	}
}

func TestNowRemoteMatchesTable3(t *testing.T) {
	res, err := NowRemote(100)
	if err != nil {
		t.Fatal(err)
	}
	// Table 3: ~17.8µs send/reply latency (we expect a close but not exact
	// figure; see EXPERIMENTS.md).
	if res.PerOp < 16*sim.Microsecond || res.PerOp > 21*sim.Microsecond {
		t.Errorf("per-op = %v, want ~17.8µs", res.PerOp)
	}
}

func TestInvalidIterations(t *testing.T) {
	if _, err := PastLocal(0); err == nil {
		t.Error("0 iterations must error")
	}
}

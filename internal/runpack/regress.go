package runpack

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Regress treats every *.zip under dir as a regression test: each pack is
// opened (integrity check) and verified (re-executed and compared). A
// summary for each pack is written to w. The returned error aggregates all
// failures; nil means every pack reproduced.
func Regress(dir string, w io.Writer) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.zip"))
	if err != nil {
		return fmt.Errorf("runpack regress: %w", err)
	}
	if len(paths) == 0 {
		fmt.Fprintf(w, "runpack regress: no packs under %s\n", dir)
		return nil
	}
	sort.Strings(paths)
	var failed []string
	for _, path := range paths {
		p, err := Open(path)
		if err != nil {
			fmt.Fprintf(w, "FAIL %s: %v\n", filepath.Base(path), err)
			failed = append(failed, filepath.Base(path))
			continue
		}
		v, err := Verify(p)
		if err != nil {
			fmt.Fprintf(w, "FAIL %s: %v\n", filepath.Base(path), err)
			failed = append(failed, filepath.Base(path))
			continue
		}
		fmt.Fprint(w, v.Summary(p))
		if !v.OK {
			failed = append(failed, filepath.Base(path))
		}
	}
	fmt.Fprintf(w, "runpack regress: %d/%d packs reproduced\n", len(paths)-len(failed), len(paths))
	if len(failed) > 0 {
		return fmt.Errorf("runpack regress: %d of %d packs failed: %v", len(failed), len(paths), failed)
	}
	return nil
}

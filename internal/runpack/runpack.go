// Package runpack implements verifiable run artifacts: an integrity-checked
// archive (`runpack_<id>.zip`) that captures everything needed to reproduce
// one simulated run — the full configuration (workload, seed, fleet, fault
// schedule, comms and recovery options), the complete runtime event trace
// with its SHA-256 digest, the cost-attribution profile series, and the
// grouped Report — plus three operations over archives:
//
//   - Pack (Create): execute a configuration and emit the archive;
//   - Verify: re-execute the packed configuration and assert that the fresh
//     trace digest, Report JSON and workload answer are byte-identical,
//     reporting the first divergent trace event on failure;
//   - Diff: explain how two packs diverge — differing configuration fields,
//     the first differing trace event, and per-path/per-class cost deltas
//     from the profile sections.
//
// Archives double as CI regression tests: Regress re-verifies every pack
// under a directory (testdata/runpacks in this repository), so a determinism
// regression fails the build with a pinpointed first-divergent event instead
// of a vague flake. Packs are written deterministically (fixed zip metadata,
// content-derived id), so packing the same configuration twice produces
// byte-identical archives.
package runpack

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

// Format identifies the archive layout; bump on incompatible changes.
const Format = "abcl-runpack/1"

// Section names inside the archive.
const (
	SecManifest = "manifest.json"
	SecConfig   = "config.json"
	SecScenario = "scenario.json"
	SecTrace    = "trace.jsonl"
	SecProfile  = "profile.jsonl"
	SecReport   = "report.json"
)

// Crash mirrors abcl.NodeCrash in JSON-friendly form.
type Crash struct {
	Node           int   `json:"node"`
	AtNs           int64 `json:"at_ns"`
	RestartAfterNs int64 `json:"restart_after_ns"`
}

// RunConfig is the complete, replayable configuration of one run: together
// with the runtime's determinism guarantee (same seed ⇒ byte-identical
// traces) it pins every byte of the packed trace and report. Field
// conventions follow the abclsim flags: zero values select the workload
// defaults, Stock -1 disables the chunk stock.
type RunConfig struct {
	Workload  string `json:"workload"`
	Nodes     int    `json:"nodes,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Policy    string `json:"policy,omitempty"`    // "" | "stack" | "naive"
	Placement string `json:"placement,omitempty"` // "" | "random" | "rr" | "local" | "load" | "depth"
	Stock     int    `json:"stock,omitempty"`     // chunk-stock depth; -1 disables

	// Workload parameters (each workload reads its own).
	N         int    `json:"n,omitempty"`          // nqueens board size
	Depth     int    `json:"depth,omitempty"`      // forkjoin tree depth
	Grid      int    `json:"grid,omitempty"`       // diffusion grid edge
	GridIters int    `json:"grid_iters,omitempty"` // diffusion iterations
	Scatter   bool   `json:"scatter,omitempty"`    // diffusion: scatter placement (default block)
	Iters     int    `json:"iters,omitempty"`      // pingpong iterations
	Clients   int    `json:"clients,omitempty"`    // hotkey/orderbook clients
	Ops       int    `json:"ops,omitempty"`        // hotkey/orderbook ops per client
	WritePct  int    `json:"write_pct,omitempty"`  // hotkey write percentage
	Coverage  string `json:"coverage,omitempty"`   // hotkey: none | partial | full
	Ungrouped bool   `json:"ungrouped,omitempty"`  // orderbook: drop the compatibility groups
	Reorder   int    `json:"reorder,omitempty"`    // bounded-reordering annotation

	// Fault schedule.
	Drop     float64 `json:"drop,omitempty"`
	Dup      float64 `json:"dup,omitempty"`
	JitterNs int64   `json:"jitter_ns,omitempty"`
	Crashes  []Crash `json:"crashes,omitempty"`

	// Wire-path, recovery and execution options.
	BatchWindowNs  int64 `json:"batch_window_ns,omitempty"`
	BatchBytes     int   `json:"batch_bytes,omitempty"`
	AckDelayNs     int64 `json:"ack_delay_ns,omitempty"`
	Reliable       bool  `json:"reliable,omitempty"`
	NoLocCache     bool  `json:"no_loc_cache,omitempty"`
	CkptIntervalNs int64 `json:"checkpoint_interval_ns,omitempty"`
	// Executor selects a parallel engine to cross-check at pack time:
	// "conservative" or "optimistic" (with Workers lanes) re-runs the
	// configuration on that executor and compares its Report against the
	// instrumented sequential run. The trace itself is always captured
	// sequentially — parallel windows have no single global interleaving
	// to observe. "" or "sequential" packs without a cross-check.
	Executor string `json:"executor,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// OptimisticWindowNs overrides the Time Warp speculation window for
	// the optimistic executor (0 selects the adaptive default).
	OptimisticWindowNs int64 `json:"optimistic_window_ns,omitempty"`
	// ParallelSim is the deprecated spelling of Executor "conservative"
	// with Workers = ParallelSim; old packs keep verifying unchanged.
	ParallelSim int `json:"parallel_sim,omitempty"`
	// ProfileWindowNs slices the packed profile into a time series.
	ProfileWindowNs int64 `json:"profile_window_ns,omitempty"`

	// Scenario is the embedded spec when Workload == "scenario"; it is
	// stored in its own archive section, not inside config.json.
	Scenario *scenario.Spec `json:"-"`
}

// ExecutorKind normalizes the configured executor name, folding the
// deprecated parallel_sim alias into "conservative". The zero
// configuration is "sequential" (pack without a cross-check).
func (c RunConfig) ExecutorKind() string {
	if c.Executor != "" {
		return c.Executor
	}
	if c.ParallelSim > 1 {
		return "conservative"
	}
	return "sequential"
}

// ExecutorWorkers is the lane count of the cross-check executor (0 when
// no parallel executor is configured).
func (c RunConfig) ExecutorWorkers() int {
	if c.ExecutorKind() == "sequential" {
		return 0
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return c.ParallelSim
}

// ParallelConfigured reports whether the pack cross-checks a parallel
// executor at build and verify time.
func (c RunConfig) ParallelConfigured() bool {
	return c.ExecutorWorkers() > 1
}

// Validate rejects configurations Execute cannot replay.
func (c RunConfig) Validate() error {
	var errs []error
	kind := c.ExecutorKind()
	parallel := c.ParallelConfigured()
	switch c.Workload {
	case "nqueens", "pingpong", "forkjoin", "diffusion", "hotkey", "orderbook":
		if c.Scenario != nil {
			errs = append(errs, fmt.Errorf("runpack: workload %q must not embed a scenario spec", c.Workload))
		}
	case "scenario":
		if c.Scenario == nil {
			errs = append(errs, fmt.Errorf("runpack: scenario workload needs an embedded spec"))
		} else {
			if err := c.Scenario.Validate(); err != nil {
				errs = append(errs, err)
			}
			if c.Scenario.ParallelConfigured() {
				errs = append(errs, fmt.Errorf("runpack: scenario packs run sequentially (drop the spec's executor)"))
			}
		}
		if parallel {
			errs = append(errs, fmt.Errorf("runpack: scenario packs run sequentially (drop the executor)"))
		}
	default:
		errs = append(errs, fmt.Errorf("runpack: unknown workload %q", c.Workload))
	}
	switch kind {
	case "sequential", "conservative", "optimistic":
	default:
		errs = append(errs, fmt.Errorf("runpack: unknown executor %q", c.Executor))
	}
	if c.Executor != "" && c.ParallelSim > 1 {
		errs = append(errs, fmt.Errorf("runpack: executor and the deprecated parallel_sim are mutually exclusive"))
	}
	if c.Workers > 1 && kind == "sequential" {
		errs = append(errs, fmt.Errorf("runpack: workers requires a parallel executor"))
	}
	if c.OptimisticWindowNs != 0 && kind != "optimistic" {
		errs = append(errs, fmt.Errorf("runpack: optimistic_window_ns requires the optimistic executor"))
	}
	if c.Workload == "pingpong" && parallel {
		errs = append(errs, fmt.Errorf("runpack: pingpong packs run sequentially (drop the executor)"))
	}
	if kind == "conservative" && parallel && (c.CkptIntervalNs > 0 || len(c.Crashes) > 0) {
		errs = append(errs, fmt.Errorf("runpack: the conservative executor is incompatible with checkpoints and crash faults"))
	}
	switch c.Policy {
	case "", "stack", "naive":
	default:
		errs = append(errs, fmt.Errorf("runpack: unknown policy %q", c.Policy))
	}
	switch c.Placement {
	case "", "random", "rr", "local", "load", "depth":
	default:
		errs = append(errs, fmt.Errorf("runpack: unknown placement %q", c.Placement))
	}
	return errors.Join(errs...)
}

// SectionSum records one section's integrity digest.
type SectionSum struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Manifest is the archive's integrity record: the format tag, the
// content-derived pack id, the headline trace digest, and a SHA-256 sum for
// every section. Open re-hashes each section against it.
type Manifest struct {
	Format   string `json:"format"`
	ID       string `json:"id"`
	Workload string `json:"workload"`
	// TraceEvents and TraceSHA256 summarize the trace section: the digest
	// that Verify re-derives by re-executing the configuration.
	TraceEvents int    `json:"trace_events"`
	TraceSHA256 string `json:"trace_sha256"`
	// ParallelChecked records that a parallel executor's Report was
	// cross-checked against the sequential run at pack time; Executor
	// names the strategy that was checked (e.g. "conservative(4)").
	ParallelChecked bool                  `json:"parallel_checked,omitempty"`
	Executor        string                `json:"executor,omitempty"`
	Sections        map[string]SectionSum `json:"sections"`
}

// Pack is one archive, opened or freshly built.
type Pack struct {
	Manifest Manifest
	Config   RunConfig
	// TraceJSONL is the full runtime event stream (one JSON object per
	// line); ReportJSON the canonical report document (see ExecResult);
	// ProfileJSONL the profile series derived from the report.
	TraceJSONL   []byte
	ReportJSON   []byte
	ProfileJSONL []byte
}

func sum(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// sections returns the archive payload (everything but the manifest).
func (p *Pack) sections() (map[string][]byte, error) {
	cfg, err := json.MarshalIndent(p.Config, "", "  ")
	if err != nil {
		return nil, err
	}
	secs := map[string][]byte{
		SecConfig:  append(cfg, '\n'),
		SecTrace:   p.TraceJSONL,
		SecProfile: p.ProfileJSONL,
		SecReport:  p.ReportJSON,
	}
	if p.Config.Scenario != nil {
		sp, err := json.MarshalIndent(p.Config.Scenario, "", "  ")
		if err != nil {
			return nil, err
		}
		secs[SecScenario] = append(sp, '\n')
	}
	return secs, nil
}

// seal computes the manifest from the current sections. The pack id is
// derived from the section digests alone, so identical content ⇒ identical
// id, regardless of where or when the pack was written.
func (p *Pack) seal() error {
	secs, err := p.sections()
	if err != nil {
		return err
	}
	m := Manifest{
		Format:          Format,
		Workload:        p.Config.Workload,
		TraceEvents:     bytes.Count(p.TraceJSONL, []byte{'\n'}),
		TraceSHA256:     sum(p.TraceJSONL),
		ParallelChecked: p.Manifest.ParallelChecked,
		Executor:        p.Manifest.Executor,
		Sections:        make(map[string]SectionSum, len(secs)),
	}
	names := make([]string, 0, len(secs))
	for name, b := range secs {
		m.Sections[name] = SectionSum{SHA256: sum(b), Bytes: int64(len(b))}
		names = append(names, name)
	}
	sort.Strings(names)
	id := sha256.New()
	for _, name := range names {
		fmt.Fprintf(id, "%s:%s\n", name, m.Sections[name].SHA256)
	}
	m.ID = hex.EncodeToString(id.Sum(nil))[:12]
	p.Manifest = m
	return nil
}

// DefaultName is the canonical file name of a sealed pack.
func (p *Pack) DefaultName() string { return "runpack_" + p.Manifest.ID + ".zip" }

// WriteFile seals the pack and writes the archive. A directory path (or a
// path ending in a separator) selects the canonical runpack_<id>.zip name
// inside it; the final path is returned. Output is deterministic: fixed zip
// metadata, sections in fixed order.
func (p *Pack) WriteFile(path string) (string, error) {
	if err := p.seal(); err != nil {
		return "", err
	}
	if st, err := os.Stat(path); (err == nil && st.IsDir()) || strings.HasSuffix(path, string(os.PathSeparator)) {
		path = filepath.Join(path, p.DefaultName())
	}
	secs, err := p.sections()
	if err != nil {
		return "", err
	}
	man, err := json.MarshalIndent(p.Manifest, "", "  ")
	if err != nil {
		return "", err
	}
	secs[SecManifest] = append(man, '\n')

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	order := []string{SecManifest, SecConfig, SecScenario, SecTrace, SecProfile, SecReport}
	for _, name := range order {
		b, ok := secs[name]
		if !ok {
			continue
		}
		w, err := zw.CreateHeader(&zip.FileHeader{Name: name, Method: zip.Deflate})
		if err != nil {
			return "", err
		}
		if _, err := w.Write(b); err != nil {
			return "", err
		}
	}
	if err := zw.Close(); err != nil {
		return "", err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	return path, os.WriteFile(path, buf.Bytes(), 0o644)
}

// Open reads an archive and checks its integrity: the format tag, every
// section's SHA-256 sum, and the content-derived id must all match the
// manifest. A pack that fails here is corrupt or hand-edited — distinct
// from a pack that fails Verify, which is intact but no longer reproducible.
func Open(path string) (*Pack, error) {
	zr, err := zip.OpenReader(path)
	if err != nil {
		return nil, fmt.Errorf("runpack %s: %w", path, err)
	}
	defer zr.Close()
	raw := make(map[string][]byte, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("runpack %s: %s: %w", path, f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("runpack %s: %s: %w", path, f.Name, err)
		}
		raw[f.Name] = b
	}
	manBytes, ok := raw[SecManifest]
	if !ok {
		return nil, fmt.Errorf("runpack %s: no %s section", path, SecManifest)
	}
	p := &Pack{}
	if err := json.Unmarshal(manBytes, &p.Manifest); err != nil {
		return nil, fmt.Errorf("runpack %s: %s: %w", path, SecManifest, err)
	}
	if p.Manifest.Format != Format {
		return nil, fmt.Errorf("runpack %s: format %q, want %q", path, p.Manifest.Format, Format)
	}
	for name, want := range p.Manifest.Sections {
		b, ok := raw[name]
		if !ok {
			return nil, fmt.Errorf("runpack %s: integrity: section %s missing", path, name)
		}
		if got := sum(b); got != want.SHA256 {
			return nil, fmt.Errorf("runpack %s: integrity: section %s sha256 %s, manifest says %s", path, name, got[:12], want.SHA256[:12])
		}
	}
	for name := range raw {
		if name == SecManifest {
			continue
		}
		if _, ok := p.Manifest.Sections[name]; !ok {
			return nil, fmt.Errorf("runpack %s: integrity: unmanifested section %s", path, name)
		}
	}
	if err := json.Unmarshal(raw[SecConfig], &p.Config); err != nil {
		return nil, fmt.Errorf("runpack %s: %s: %w", path, SecConfig, err)
	}
	if sp, ok := raw[SecScenario]; ok {
		p.Config.Scenario = &scenario.Spec{}
		if err := json.Unmarshal(sp, p.Config.Scenario); err != nil {
			return nil, fmt.Errorf("runpack %s: %s: %w", path, SecScenario, err)
		}
	}
	p.TraceJSONL = raw[SecTrace]
	p.ProfileJSONL = raw[SecProfile]
	p.ReportJSON = raw[SecReport]
	// Re-derive the id from the (now authenticated) sections; a mismatch
	// means the manifest itself was edited.
	want := p.Manifest.ID
	if err := p.seal(); err != nil {
		return nil, err
	}
	if p.Manifest.ID != want {
		return nil, fmt.Errorf("runpack %s: integrity: id %s, recomputed %s", path, want, p.Manifest.ID)
	}
	return p, nil
}

// Build assembles a sealed pack from a configuration and its execution.
func Build(cfg RunConfig, res *ExecResult) (*Pack, error) {
	p := &Pack{
		Config:       cfg,
		TraceJSONL:   res.Trace,
		ReportJSON:   res.ReportJSON,
		ProfileJSONL: res.ProfileJSONL(),
	}
	p.Manifest.ParallelChecked = res.ParallelChecked
	p.Manifest.Executor = res.Executor
	return p, p.seal()
}

// Create executes the configuration and writes its archive; the final path
// and the sealed pack are returned.
func Create(cfg RunConfig, path string) (*Pack, string, error) {
	res, err := Execute(cfg)
	if err != nil {
		return nil, "", err
	}
	p, err := Build(cfg, res)
	if err != nil {
		return nil, "", err
	}
	out, err := p.WriteFile(path)
	return p, out, err
}

package runpack

import (
	"archive/zip"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// testConfigs are the acceptance matrix: a fault-free workload, a lossy
// batched scenario, a crash-recovery scenario, a conservative-executor run
// (in both the modern and the deprecated parallel_sim spelling), and an
// optimistic (Time Warp) run.
func testConfigs(t *testing.T) map[string]RunConfig {
	t.Helper()
	lossy, err := scenario.Find("nqueens-lossy-batched")
	if err != nil {
		t.Fatal(err)
	}
	crash, err := scenario.Find("nqueens-crash-recover")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]RunConfig{
		"nqueens-plain":      {Workload: "nqueens", N: 6, Nodes: 8, Seed: 1},
		"scenario-lossy":     {Workload: "scenario", Scenario: &lossy},
		"scenario-crash":     {Workload: "scenario", Scenario: &crash},
		"hotkey-parallel":    {Workload: "hotkey", Nodes: 8, Clients: 4, Ops: 10, Seed: 1, ParallelSim: 4},
		"hotkey-cons":        {Workload: "hotkey", Nodes: 8, Clients: 4, Ops: 10, Seed: 1, Executor: "conservative", Workers: 4},
		"hotkey-optimistic":  {Workload: "hotkey", Nodes: 8, Clients: 4, Ops: 10, Seed: 1, Executor: "optimistic", Workers: 4},
		"nqueens-optimistic": {Workload: "nqueens", N: 6, Nodes: 8, Seed: 1, Executor: "optimistic", Workers: 4, CkptIntervalNs: 40_000},
	}
}

// TestRoundTrip packs each acceptance configuration, reopens the archive,
// and verifies it: the re-execution must reproduce the packed trace, report
// and answer byte-for-byte. Packing the same configuration twice must also
// produce byte-identical archives (deterministic zip output).
func TestRoundTrip(t *testing.T) {
	for name, cfg := range testConfigs(t) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			p, path, err := Create(cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.ParallelConfigured() {
				if !p.Manifest.ParallelChecked {
					t.Error("parallel run was not cross-checked")
				}
				if want := cfg.ExecutorKind(); !strings.HasPrefix(p.Manifest.Executor, want) {
					t.Errorf("manifest executor %q, want %s(…)", p.Manifest.Executor, want)
				}
			}
			reopened, err := Open(path)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if reopened.Manifest.ID != p.Manifest.ID {
				t.Fatalf("reopened id %s != packed %s", reopened.Manifest.ID, p.Manifest.ID)
			}
			v, err := Verify(reopened)
			if err != nil {
				t.Fatal(err)
			}
			if !v.OK {
				t.Fatalf("verify failed: %v", v.Mismatches)
			}
			// Determinism: a second pack of the same config is byte-identical.
			_, path2, err := Create(cfg, filepath.Join(dir, "again"))
			if err != nil {
				t.Fatal(err)
			}
			b1, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := os.ReadFile(path2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Error("packing the same configuration twice produced different archives")
			}
		})
	}
}

// TestVerifyNamesFirstDivergentEvent perturbs a packed trace (resealing the
// manifest, so the archive itself stays intact) and asserts Verify fails
// naming exactly the perturbed event.
func TestVerifyNamesFirstDivergentEvent(t *testing.T) {
	cfg := RunConfig{Workload: "nqueens", N: 5, Nodes: 4, Seed: 1}
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(p.TraceJSONL), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace too short to perturb: %d lines", len(lines))
	}
	lines[2] = strings.Replace(lines[2], `"at":`, `"at":9`, 1) // event #3
	p.TraceJSONL = []byte(strings.Join(lines, ""))

	path, err := p.WriteFile(filepath.Join(t.TempDir(), "perturbed.zip"))
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("a resealed perturbed pack must still open: %v", err)
	}
	v, err := Verify(reopened)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("perturbed pack passed verification")
	}
	if v.TraceDivergence == nil {
		t.Fatal("no trace divergence reported")
	}
	if v.TraceDivergence.Event != 3 {
		t.Errorf("first divergent event = %d, want 3", v.TraceDivergence.Event)
	}
	sum := v.Summary(reopened)
	if !strings.Contains(sum, "first divergent trace event (#3)") {
		t.Errorf("summary does not name the divergent event:\n%s", sum)
	}
}

// TestOpenRejectsTampering rewrites one section's bytes without resealing:
// Open must refuse the archive (integrity failure, not a verify failure).
func TestOpenRejectsTampering(t *testing.T) {
	_, path, err := Create(RunConfig{Workload: "nqueens", N: 5, Nodes: 4, Seed: 1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zip.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(t.TempDir(), "tampered.zip")
	out, err := os.Create(tampered)
	if err != nil {
		t.Fatal(err)
	}
	zw := zip.NewWriter(out)
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
		b := buf.Bytes()
		if f.Name == SecTrace {
			b = bytes.Replace(b, []byte(`"at":`), []byte(`"at":7`), 1)
		}
		w, err := zw.Create(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	zr.Close()
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(tampered); err == nil {
		t.Fatal("Open accepted a tampered archive")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Errorf("tampering error does not mention integrity: %v", err)
	}
}

// TestDiff packs two configurations differing in one knob and asserts the
// diff reports the config delta and a first divergent trace event.
func TestDiff(t *testing.T) {
	dir := t.TempDir()
	a, _, err := Create(RunConfig{Workload: "nqueens", N: 5, Nodes: 4, Seed: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Create(RunConfig{Workload: "nqueens", N: 6, Nodes: 4, Seed: 1}, filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if d.Identical {
		t.Fatal("different configs reported identical")
	}
	found := false
	for _, c := range d.ConfigDeltas {
		if strings.HasPrefix(c, "n: ") {
			found = true
		}
	}
	if !found {
		t.Errorf("config deltas missed the board size: %v", d.ConfigDeltas)
	}
	if d.TraceDivergence == nil {
		t.Error("no trace divergence between different runs")
	}
	if d.AnswerA == d.AnswerB {
		t.Error("answers should differ between N=5 and N=6")
	}
	if len(d.PathDeltas) == 0 {
		t.Error("no per-path cost deltas between different runs")
	}
	same := Diff(a, a)
	if !same.Identical {
		t.Error("a pack diffed against itself is not identical")
	}
}

// TestRegress exercises the directory gate: all-good passes, one perturbed
// pack fails the run and is named in the error.
func TestRegress(t *testing.T) {
	dir := t.TempDir()
	cfg := RunConfig{Workload: "nqueens", N: 5, Nodes: 4, Seed: 1}
	if _, _, err := Create(cfg, dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Regress(dir, &out); err != nil {
		t.Fatalf("all-good regress failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1/1 packs reproduced") {
		t.Errorf("regress summary missing:\n%s", out.String())
	}

	// Add a perturbed-but-resealed pack: it opens fine but fails Verify.
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	p.TraceJSONL = bytes.Replace(p.TraceJSONL, []byte(`"at":`), []byte(`"at":5`), 1)
	if _, err := p.WriteFile(filepath.Join(dir, "zz_bad.zip")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = Regress(dir, &out)
	if err == nil {
		t.Fatalf("regress passed with a perturbed pack:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "zz_bad.zip") {
		t.Errorf("regress error does not name the failing pack: %v", err)
	}
}

// TestValidateRejections pins the configuration validator's error cases.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
		want string
	}{
		{"unknown workload", RunConfig{Workload: "quicksort"}, "unknown workload"},
		{"scenario without spec", RunConfig{Workload: "scenario"}, "needs an embedded spec"},
		{"spec outside scenario", RunConfig{Workload: "nqueens", Scenario: &scenario.Spec{}}, "must not embed"},
		{"parallel pingpong", RunConfig{Workload: "pingpong", ParallelSim: 4}, "sequentially"},
		{"optimistic pingpong", RunConfig{Workload: "pingpong", Executor: "optimistic", Workers: 4}, "sequentially"},
		{"parallel crash", RunConfig{Workload: "nqueens", ParallelSim: 4, CkptIntervalNs: 100, Crashes: []Crash{{Node: 1, AtNs: 5, RestartAfterNs: 5}}}, "incompatible with checkpoints"},
		{"conservative ckpt", RunConfig{Workload: "nqueens", Executor: "conservative", Workers: 4, CkptIntervalNs: 100}, "incompatible with checkpoints"},
		{"unknown executor", RunConfig{Workload: "nqueens", Executor: "timewarp", Workers: 4}, "unknown executor"},
		{"both spellings", RunConfig{Workload: "nqueens", Executor: "conservative", Workers: 4, ParallelSim: 4}, "mutually exclusive"},
		{"workers sequential", RunConfig{Workload: "nqueens", Workers: 4}, "requires a parallel executor"},
		{"window without optimistic", RunConfig{Workload: "nqueens", Executor: "conservative", Workers: 4, OptimisticWindowNs: 100}, "requires the optimistic executor"},
		{"bad policy", RunConfig{Workload: "nqueens", Policy: "fifo"}, "unknown policy"},
		{"bad placement", RunConfig{Workload: "nqueens", Placement: "hash"}, "unknown placement"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

package runpack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Divergence pinpoints the first trace event where two executions part
// ways. Event numbers are 1-based; an empty side means that stream ended
// before the other.
type Divergence struct {
	Event int    `json:"event"`
	A     string `json:"a"`
	B     string `json:"b"`
}

// firstDivergence compares two JSONL streams line by line.
func firstDivergence(a, b []byte) *Divergence {
	if bytes.Equal(a, b) {
		return nil
	}
	al := splitLines(a)
	bl := splitLines(b)
	n := len(al)
	if len(bl) > n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		var av, bv string
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return &Divergence{Event: i + 1, A: av, B: bv}
		}
	}
	return nil
}

func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// VerifyResult reports one re-execution of a pack's configuration.
type VerifyResult struct {
	// OK is true when the fresh execution reproduced the pack exactly.
	OK bool
	// Mismatches lists every disagreement (answer, trace digest, report).
	Mismatches []string
	// TraceDivergence names the first trace event where the fresh run left
	// the packed trace (A = packed, B = fresh); nil when traces agree.
	TraceDivergence *Divergence
	// Fresh is the re-execution's evidence, for further inspection.
	Fresh *ExecResult
}

// Verify re-executes the pack's configuration and asserts the run is still
// byte-identical: same trace digest, same report document, same answer. It
// assumes the pack itself is intact (Open already checked the manifest
// sums); a failure here means the code base no longer reproduces the run.
func Verify(p *Pack) (*VerifyResult, error) {
	fresh, err := Execute(p.Config)
	if err != nil {
		return nil, fmt.Errorf("runpack verify: re-execution failed: %w", err)
	}
	v := &VerifyResult{OK: true, Fresh: fresh}
	fail := func(format string, args ...any) {
		v.OK = false
		v.Mismatches = append(v.Mismatches, fmt.Sprintf(format, args...))
	}
	if fresh.TraceSHA256 != p.Manifest.TraceSHA256 {
		fail("trace digest %s (%d events) != packed %s (%d events)",
			short(fresh.TraceSHA256), fresh.TraceEvents,
			short(p.Manifest.TraceSHA256), p.Manifest.TraceEvents)
		v.TraceDivergence = firstDivergence(p.TraceJSONL, fresh.Trace)
	}
	if !bytes.Equal(fresh.ReportJSON, p.ReportJSON) {
		fail("report document differs from packed report.json")
	}
	if packed := packedAnswer(p); packed != "" && packed != fresh.Answer {
		fail("answer %q != packed %q", fresh.Answer, packed)
	}
	return v, nil
}

// packedAnswer extracts the answer field from the packed report document.
func packedAnswer(p *Pack) string {
	var doc reportDoc
	if err := json.Unmarshal(p.ReportJSON, &doc); err != nil {
		return ""
	}
	return doc.Answer
}

// Summary renders a human-readable pass/fail report.
func (v *VerifyResult) Summary(p *Pack) string {
	var b strings.Builder
	if v.OK {
		fmt.Fprintf(&b, "PASS runpack %s: %s reproduced byte-identically (%d trace events, digest %s)\n",
			p.Manifest.ID, p.Config.Workload, p.Manifest.TraceEvents, short(p.Manifest.TraceSHA256))
		if v.Fresh.ParallelChecked {
			fmt.Fprintf(&b, "  %s executor re-checked against the sequential run\n", v.Fresh.Executor)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL runpack %s: %s no longer reproduces\n", p.Manifest.ID, p.Config.Workload)
	for _, m := range v.Mismatches {
		fmt.Fprintf(&b, "  %s\n", m)
	}
	if d := v.TraceDivergence; d != nil {
		fmt.Fprintf(&b, "  first divergent trace event (#%d):\n", d.Event)
		fmt.Fprintf(&b, "    packed: %s\n", orEnd(d.A))
		fmt.Fprintf(&b, "    fresh:  %s\n", orEnd(d.B))
	}
	return b.String()
}

func orEnd(s string) string {
	if s == "" {
		return "(stream ended)"
	}
	return s
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

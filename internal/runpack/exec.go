package runpack

import (
	"bytes"
	"encoding/json"
	"fmt"

	abcl "repro"
	"repro/internal/apps/diffusion"
	"repro/internal/apps/hotkey"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
	"repro/internal/apps/orderbook"
	"repro/internal/apps/pingpong"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExecResult is one reproducible execution of a RunConfig: the canonical
// workload answer, the full instrumented event trace, and the report
// document that lands in the archive byte-for-byte.
type ExecResult struct {
	// Answer is the canonical workload answer (solutions, residual, op
	// ledger, ...), comparable across re-executions.
	Answer    string
	ElapsedNs int64
	// System is the grouped report of the instrumented sequential run
	// (profile section included); nil for pingpong and scenario packs.
	System *abcl.Report
	// Outcome is set for scenario packs: the full baseline-vs-faulted
	// outcome including assertion violations.
	Outcome *scenario.Outcome
	// Trace is the JSONL runtime event stream of the sequential run;
	// TraceSHA256/TraceEvents digest it.
	Trace       []byte
	TraceSHA256 string
	TraceEvents int
	// ParallelChecked records that the configuration also ran on the
	// configured parallel executor and produced an identical answer and
	// report; Executor names the strategy that was cross-checked.
	ParallelChecked bool
	Executor        string
	// ReportJSON is the canonical report document (answer + system or
	// scenario report), the bytes stored in the archive's report.json.
	ReportJSON []byte
}

// reportDoc is the schema of the archive's report.json section.
type reportDoc struct {
	Answer          string            `json:"answer"`
	ElapsedNs       int64             `json:"elapsed_ns"`
	ParallelChecked bool              `json:"parallel_checked,omitempty"`
	Executor        string            `json:"executor,omitempty"`
	System          *abcl.Report      `json:"system,omitempty"`
	Scenario        *scenario.Outcome `json:"scenario,omitempty"`
}

// Profile returns the cost-attribution report captured by the run (the
// faulted run's, for scenario packs), or nil.
func (r *ExecResult) Profile() *profile.Report {
	switch {
	case r.System != nil:
		return r.System.Profile
	case r.Outcome != nil:
		return r.Outcome.Faulted.Profile
	}
	return nil
}

// ProfileJSONL renders the profile as a typed JSONL series (summary, path,
// class, group and slice rows) — the archive's profile.jsonl section, which
// Diff mines for per-path and per-class cost deltas.
func (r *ExecResult) ProfileJSONL() []byte {
	p := r.Profile()
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(struct {
		Type            string   `json:"type"`
		WindowNs        sim.Time `json:"window_ns,omitempty"`
		TotalInstr      uint64   `json:"total_instr"`
		DormantFraction float64  `json:"dormant_fraction"`
	}{"summary", p.Window, p.TotalInstr, p.DormantFraction})
	for _, ps := range p.Paths {
		enc.Encode(struct {
			Type string `json:"type"`
			profile.PathStat
		}{"path", ps})
	}
	for _, cs := range p.Classes {
		enc.Encode(struct {
			Type string `json:"type"`
			profile.ClassStat
		}{"class", cs})
	}
	for _, gs := range p.Groups {
		enc.Encode(struct {
			Type string `json:"type"`
			profile.GroupStat
		}{"group", gs})
	}
	for _, sl := range p.Slices {
		enc.Encode(struct {
			Type string `json:"type"`
			profile.Slice
		}{"slice", sl})
	}
	return buf.Bytes()
}

// executorSpec resolves the configured cross-check executor (only
// meaningful when ParallelConfigured()).
func (c RunConfig) executorSpec() abcl.ExecutorSpec {
	if c.ExecutorKind() == "optimistic" {
		return abcl.Optimistic(c.ExecutorWorkers(), abcl.OptimisticOptions{
			Window: sim.Time(c.OptimisticWindowNs),
		})
	}
	return abcl.Conservative(c.ExecutorWorkers())
}

// Execute runs the configuration deterministically and assembles the
// replay evidence. The run is always executed sequentially with a JSONL
// observer and the cost profiler attached (neither perturbs virtual-time
// results); when a parallel executor is configured (conservative or
// optimistic) the configuration additionally runs on it, and its answer
// and report must match the sequential run exactly — the
// byte-identical-to-sequential guarantee, certified at pack time and
// re-certified by every verify.
func Execute(cfg RunConfig) (*ExecResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	seq, err := runOnce(cfg, sink, false)
	if err != nil {
		return nil, err
	}
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("runpack: trace stream: %w", err)
	}
	res := seq
	res.Trace = buf.Bytes()
	res.TraceSHA256 = sum(res.Trace)
	res.TraceEvents = bytes.Count(res.Trace, []byte{'\n'})
	if cfg.ParallelConfigured() {
		spec := cfg.executorSpec()
		par, err := runOnce(cfg, nil, true)
		if err != nil {
			return nil, fmt.Errorf("runpack: %s cross-run: %w", spec, err)
		}
		if par.Answer != res.Answer {
			return nil, fmt.Errorf("runpack: %s executor diverged from sequential: answer %q != %q", spec, par.Answer, res.Answer)
		}
		seqJSON, parJSON := stripProfile(res.System), stripProfile(par.System)
		if !bytes.Equal(seqJSON, parJSON) {
			return nil, fmt.Errorf("runpack: %s executor diverged from sequential: reports differ:\nsequential: %s\nparallel:   %s", spec, seqJSON, parJSON)
		}
		res.ParallelChecked = true
		res.Executor = spec.String()
	}
	res.ReportJSON, err = json.MarshalIndent(reportDoc{
		Answer:          res.Answer,
		ElapsedNs:       res.ElapsedNs,
		ParallelChecked: res.ParallelChecked,
		Executor:        res.Executor,
		System:          res.System,
		Scenario:        res.Outcome,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	res.ReportJSON = append(res.ReportJSON, '\n')
	return res, nil
}

// stripProfile marshals a report with the profiler section removed, for the
// parallel-vs-sequential comparison (the parallel run is never profiled).
func stripProfile(r *abcl.Report) []byte {
	if r == nil {
		return nil
	}
	c := *r
	c.Profile = nil
	b, _ := json.Marshal(c)
	return b
}

// runOnce executes the workload once. A nil sink runs bare; parallel
// selects the configured parallel executor (and implies no sink and no
// profiler, which the engine would reject as incompatible).
func runOnce(cfg RunConfig, sink trace.Sink, parallel bool) (*ExecResult, error) {
	var prof *abcl.ProfileOptions
	if !parallel {
		prof = &abcl.ProfileOptions{Window: sim.Time(cfg.ProfileWindowNs), Classes: true}
	}
	var extra []abcl.Option
	if sink != nil {
		extra = append(extra, abcl.WithObserver(sink))
	}
	if cfg.NoLocCache {
		extra = append(extra, abcl.WithoutLocationCache())
	}
	if parallel {
		extra = append(extra, abcl.WithExecutor(cfg.executorSpec()))
	}
	plan := cfg.faultPlan()
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 64
	}
	reliable := cfg.Reliable || cfg.AckDelayNs > 0

	switch cfg.Workload {
	case "nqueens":
		n := cfg.N
		if n == 0 {
			n = 10
		}
		res, err := nqueens.Run(nqueens.Options{
			N: n, Nodes: nodes, Policy: cfg.policy(), Placement: cfg.placement(),
			Seed: cfg.Seed, StockDepth: cfg.Stock, Faults: plan,
			BatchWindow: sim.Time(cfg.BatchWindowNs), BatchMaxBytes: cfg.BatchBytes,
			Reliable: reliable, AckDelay: sim.Time(cfg.AckDelayNs),
			CheckpointInterval: sim.Time(cfg.CkptIntervalNs),
			Profile:            prof, Extra: extra,
		})
		if err != nil {
			return nil, err
		}
		return &ExecResult{
			Answer: fmt.Sprintf("solutions=%d objects=%d messages=%d",
				res.Solutions, res.Objects, res.Messages),
			ElapsedNs: int64(res.Elapsed),
			System:    &res.Report,
		}, nil

	case "forkjoin":
		depth := cfg.Depth
		if depth == 0 {
			depth = 10
		}
		opts := []abcl.Option{abcl.WithNodes(nodes), abcl.WithPolicy(cfg.policy())}
		if p := cfg.placement(); p != nil {
			opts = append(opts, abcl.WithPlacement(p))
		}
		if cfg.Seed != 0 {
			opts = append(opts, abcl.WithSeed(cfg.Seed))
		}
		switch {
		case cfg.Stock < 0:
			opts = append(opts, abcl.WithoutChunkStock())
		case cfg.Stock > 0:
			opts = append(opts, abcl.WithChunkStock(cfg.Stock))
		}
		if plan.Enabled() {
			opts = append(opts, abcl.WithFaults(plan))
		}
		if cfg.BatchWindowNs > 0 {
			opts = append(opts, abcl.WithBatching(sim.Time(cfg.BatchWindowNs), cfg.BatchBytes))
		}
		if reliable {
			opts = append(opts, abcl.WithReliable())
		}
		if cfg.AckDelayNs > 0 {
			opts = append(opts, abcl.WithDelayedAcks(sim.Time(cfg.AckDelayNs)))
		}
		if cfg.CkptIntervalNs > 0 {
			opts = append(opts, abcl.WithCheckpoint(sim.Time(cfg.CkptIntervalNs)))
		}
		if prof != nil {
			opts = append(opts, abcl.WithProfiler(*prof))
		}
		opts = append(opts, extra...)
		sys, err := abcl.NewSystem(opts...)
		if err != nil {
			return nil, err
		}
		leaves, err := misc.RunForkJoinOn(sys, depth)
		if err != nil {
			return nil, err
		}
		rep := sys.Report()
		return &ExecResult{
			Answer:    fmt.Sprintf("leaves=%d", leaves),
			ElapsedNs: int64(rep.Sched.Elapsed),
			System:    &rep,
		}, nil

	case "diffusion":
		grid, iters := cfg.Grid, cfg.GridIters
		if grid == 0 {
			grid = 16
		}
		if iters == 0 {
			iters = 10
		}
		res, err := diffusion.Run(diffusion.Options{
			W: grid, H: grid, Iters: iters, Nodes: nodes,
			Policy: cfg.policy(), BlockPlace: !cfg.Scatter,
			Seed: cfg.Seed, Faults: plan,
			BatchWindow: sim.Time(cfg.BatchWindowNs), AckDelay: sim.Time(cfg.AckDelayNs),
			Reliable:           reliable,
			CheckpointInterval: sim.Time(cfg.CkptIntervalNs),
			Profile:            prof, Extra: extra,
		})
		if err != nil {
			return nil, err
		}
		return &ExecResult{
			Answer:    fmt.Sprintf("residual=%.9g", res.Residual),
			ElapsedNs: int64(res.Elapsed),
			System:    &res.Report,
		}, nil

	case "hotkey":
		clients, ops := cfg.Clients, cfg.Ops
		if clients == 0 {
			clients = 16
		}
		if ops == 0 {
			ops = 40
		}
		cov := hotkey.CoverFull
		if cfg.Coverage != "" {
			var err error
			if cov, err = hotkey.ParseCoverage(cfg.Coverage); err != nil {
				return nil, err
			}
		}
		res, err := hotkey.Run(hotkey.Options{
			Nodes: nodes, Clients: clients, Ops: ops,
			WritePct: cfg.WritePct, Coverage: cov, Reorder: cfg.Reorder,
			Seed: cfg.Seed, Faults: plan,
			BatchWindow: sim.Time(cfg.BatchWindowNs), AckDelay: sim.Time(cfg.AckDelayNs),
			Reliable:           reliable,
			CheckpointInterval: sim.Time(cfg.CkptIntervalNs),
			Profile:            prof, Extra: extra,
		})
		if err != nil {
			return nil, err
		}
		return &ExecResult{
			Answer: fmt.Sprintf("ops=%d reads=%d writes=%d final=%d",
				res.Ops, res.Reads, res.Writes, res.Final),
			ElapsedNs: int64(res.Elapsed),
			System:    &res.Report,
		}, nil

	case "orderbook":
		clients, ops := cfg.Clients, cfg.Ops
		if clients == 0 {
			clients = 16
		}
		if ops == 0 {
			ops = 40
		}
		res, err := orderbook.Run(orderbook.Options{
			Nodes: nodes, Clients: clients, Ops: ops,
			Grouped: !cfg.Ungrouped, Reorder: cfg.Reorder, Seed: cfg.Seed,
			Profile: prof, Extra: extra,
		})
		if err != nil {
			return nil, err
		}
		return &ExecResult{
			Answer: fmt.Sprintf("ops=%d reads=%d deposits=%d transfers=%d total=%d",
				res.Ops, res.Reads, res.Deposits, res.Transfers, res.Total),
			ElapsedNs: int64(res.Elapsed),
			System:    &res.Report,
		}, nil

	case "pingpong":
		iters := cfg.Iters
		if iters == 0 {
			iters = 1000
		}
		now := iters / 10
		if now == 0 {
			now = 1
		}
		type bench struct {
			name string
			run  func(int, ...abcl.Option) (pingpong.Result, error)
			n    int
		}
		benches := []bench{
			{"past-local", pingpong.PastLocal, iters},
			{"past-active", pingpong.PastLocalActive, iters},
			{"create-local", pingpong.CreateLocal, iters},
			{"past-remote", pingpong.PastRemote, iters},
			{"now-remote", pingpong.NowRemote, now},
		}
		ans := ""
		var total sim.Time
		for _, b := range benches {
			r, err := b.run(b.n, extra...)
			if err != nil {
				return nil, err
			}
			if ans != "" {
				ans += " "
			}
			ans += fmt.Sprintf("%s=%d", b.name, int64(r.PerOp))
			total += r.Total
		}
		return &ExecResult{Answer: ans, ElapsedNs: int64(total)}, nil

	case "scenario":
		out, err := scenario.RunWith(*cfg.Scenario, scenario.RunOpts{
			Observer: sink,
			Profile:  prof,
		})
		if err != nil {
			return nil, err
		}
		return &ExecResult{
			Answer:    fmt.Sprintf("%s violations=%d", out.Faulted.Answer, len(out.Violations)),
			ElapsedNs: int64(out.Faulted.Elapsed),
			Outcome:   &out,
		}, nil
	}
	return nil, fmt.Errorf("runpack: unknown workload %q", cfg.Workload)
}

// faultPlan translates the config's fault schedule into a FaultPlan.
func (c RunConfig) faultPlan() abcl.FaultPlan {
	var p abcl.FaultPlan
	if c.Drop != 0 || c.Dup != 0 || c.JitterNs != 0 {
		p = abcl.UniformFaults(c.Drop, c.Dup, sim.Time(c.JitterNs))
	}
	for _, cr := range c.Crashes {
		p = p.WithCrash(cr.Node, sim.Time(cr.AtNs), sim.Time(cr.RestartAfterNs))
	}
	return p
}

func (c RunConfig) policy() abcl.Policy {
	if c.Policy == "naive" {
		return abcl.Naive
	}
	return abcl.StackBased
}

func (c RunConfig) placement() abcl.Placement {
	switch c.Placement {
	case "random":
		return abcl.PlaceRandom
	case "rr":
		return abcl.PlaceRoundRobin
	case "local":
		return abcl.PlaceLocal
	case "load":
		return abcl.PlaceLoadBased
	case "depth":
		return abcl.PlaceDepthLocal
	}
	return nil
}

package runpack

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DiffResult explains how two packs diverge: configuration deltas, the
// first differing trace event, answer/report disagreement, and per-path /
// per-class cost deltas mined from the profile sections.
type DiffResult struct {
	// Identical is true when the two packs have the same id (same bytes).
	Identical bool
	// ConfigDeltas lists "field: a -> b" lines for differing config fields.
	ConfigDeltas []string
	// AnswerA/AnswerB are the packed answers (equal or not).
	AnswerA, AnswerB string
	// TraceDivergence is the first differing trace event (A = first pack,
	// B = second); nil when the traces are identical.
	TraceDivergence *Divergence
	// PathDeltas / ClassDeltas are cost deltas between the profile
	// sections, biggest absolute instruction delta first.
	PathDeltas  []CostDelta
	ClassDeltas []CostDelta
}

// CostDelta is one attribution row's change between two packs.
type CostDelta struct {
	Name           string `json:"name"`
	InstrA, InstrB uint64 `json:"-"`
}

func (d CostDelta) String() string {
	pct := ""
	if d.InstrA > 0 {
		pct = fmt.Sprintf(" (%+.1f%%)", 100*(float64(d.InstrB)-float64(d.InstrA))/float64(d.InstrA))
	}
	return fmt.Sprintf("%-16s %12d -> %12d%s", d.Name, d.InstrA, d.InstrB, pct)
}

// Diff compares two opened packs.
func Diff(a, b *Pack) *DiffResult {
	d := &DiffResult{Identical: a.Manifest.ID == b.Manifest.ID}
	d.ConfigDeltas = configDeltas(a.Config, b.Config)
	var da, db reportDoc
	json.Unmarshal(a.ReportJSON, &da)
	json.Unmarshal(b.ReportJSON, &db)
	d.AnswerA, d.AnswerB = da.Answer, db.Answer
	d.TraceDivergence = firstDivergence(a.TraceJSONL, b.TraceJSONL)
	d.PathDeltas = profileDeltas(a.ProfileJSONL, b.ProfileJSONL, "path")
	d.ClassDeltas = profileDeltas(a.ProfileJSONL, b.ProfileJSONL, "class")
	return d
}

// configDeltas compares the two configs field by field through their JSON
// form (scenario specs compare as embedded documents).
func configDeltas(a, b RunConfig) []string {
	am, bm := configMap(a), configMap(b)
	keys := make(map[string]bool)
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []string
	for _, k := range names {
		av, bv := render(am[k]), render(bm[k])
		if av != bv {
			out = append(out, fmt.Sprintf("%s: %s -> %s", k, av, bv))
		}
	}
	return out
}

func configMap(c RunConfig) map[string]any {
	b, _ := json.Marshal(c)
	m := map[string]any{}
	json.Unmarshal(b, &m)
	if c.Scenario != nil {
		sb, _ := json.Marshal(c.Scenario)
		var sv any
		json.Unmarshal(sb, &sv)
		m["scenario"] = sv
	}
	return m
}

func render(v any) string {
	if v == nil {
		return "(unset)"
	}
	b, _ := json.Marshal(v)
	return string(b)
}

// profileDeltas joins two profile.jsonl sections on the given row type
// ("path" or "class") and reports instruction deltas, biggest first.
func profileDeltas(a, b []byte, kind string) []CostDelta {
	am, bm := profileRows(a, kind), profileRows(b, kind)
	if am == nil && bm == nil {
		return nil
	}
	keys := make(map[string]bool)
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	var out []CostDelta
	for k := range keys {
		ia, ib := am[k], bm[k]
		if ia != ib {
			out = append(out, CostDelta{Name: k, InstrA: ia, InstrB: ib})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := absDelta(out[i])
		dj := absDelta(out[j])
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func absDelta(d CostDelta) uint64 {
	if d.InstrB > d.InstrA {
		return d.InstrB - d.InstrA
	}
	return d.InstrA - d.InstrB
}

// profileRows extracts name -> instructions from a profile.jsonl section.
// Path rows key on "path" and charge "instr"; class rows key on "class"
// and charge "body_instr".
func profileRows(sec []byte, kind string) map[string]uint64 {
	if len(sec) == 0 {
		return nil
	}
	rows := make(map[string]uint64)
	for _, line := range splitLines(sec) {
		var row struct {
			Type      string `json:"type"`
			Path      string `json:"path"`
			Class     string `json:"class"`
			Instr     uint64 `json:"instr"`
			BodyInstr uint64 `json:"body_instr"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil || row.Type != kind {
			continue
		}
		switch kind {
		case "path":
			rows[row.Path] = row.Instr
		case "class":
			rows[row.Class] = row.BodyInstr
		}
	}
	return rows
}

// Summary renders the diff for humans.
func (d *DiffResult) Summary(a, b *Pack) string {
	var s strings.Builder
	fmt.Fprintf(&s, "diff %s (%s) vs %s (%s)\n",
		a.Manifest.ID, a.Config.Workload, b.Manifest.ID, b.Config.Workload)
	if d.Identical {
		s.WriteString("  packs are identical (same content id)\n")
		return s.String()
	}
	if len(d.ConfigDeltas) > 0 {
		s.WriteString("  config:\n")
		for _, c := range d.ConfigDeltas {
			fmt.Fprintf(&s, "    %s\n", c)
		}
	} else {
		s.WriteString("  config: identical — same inputs, different execution\n")
	}
	if d.AnswerA != d.AnswerB {
		fmt.Fprintf(&s, "  answer: %q -> %q\n", d.AnswerA, d.AnswerB)
	}
	if dv := d.TraceDivergence; dv != nil {
		fmt.Fprintf(&s, "  first divergent trace event (#%d):\n", dv.Event)
		fmt.Fprintf(&s, "    a: %s\n", orEnd(dv.A))
		fmt.Fprintf(&s, "    b: %s\n", orEnd(dv.B))
	} else {
		s.WriteString("  traces: identical\n")
	}
	writeDeltas := func(title string, ds []CostDelta) {
		if len(ds) == 0 {
			return
		}
		fmt.Fprintf(&s, "  %s (instr):\n", title)
		max := len(ds)
		if max > 8 {
			max = 8
		}
		for _, cd := range ds[:max] {
			fmt.Fprintf(&s, "    %s\n", cd)
		}
		if len(ds) > max {
			fmt.Fprintf(&s, "    ... and %d more\n", len(ds)-max)
		}
	}
	writeDeltas("per-path cost deltas", d.PathDeltas)
	writeDeltas("per-class cost deltas", d.ClassDeltas)
	return s.String()
}

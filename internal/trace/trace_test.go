package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Add(int64ToTime(i), i, EvSend, "x")
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("len=%d total=%d, want 3/3", r.Len(), r.Total())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Node != i {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
}

func TestRingWrapsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Addf(int64ToTime(i), i, EvInvoke, "ev%d", i)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	want := []int{6, 7, 8, 9}
	for i := range want {
		if evs[i].Node != want[i] {
			t.Fatalf("retained = %v, want nodes %v", evs, want)
		}
	}
}

func TestRingDump(t *testing.T) {
	r := NewRing(8)
	r.Add(2300, 0, EvSend, "ping -> obj1")
	r.Add(4600, 1, EvRemoteRecv, "handler cat1")
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"send", "ping -> obj1", "remote-recv", "n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 2000; i++ {
		r.Add(0, 0, EvSend, "")
	}
	if r.Len() != 1024 {
		t.Fatalf("default capacity = %d, want 1024", r.Len())
	}
}

func TestKindString(t *testing.T) {
	if EvSchedule.String() != "schedule" {
		t.Error("kind name wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func int64ToTime(i int) sim.Time { return sim.Time(i) }

// Package trace defines the runtime's event-observation layer: a Sink
// interface every subsystem emits events into, plus the bundled
// implementations — the bounded Ring buffer (debugging, golden tests), the
// streaming JSONL sink (machine-readable export) and the Metrics summary
// sink. Tracing is optional and off the hot path: callers hold a Sink and
// emit events explicitly, guarded by a nil check.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind labels a traced event.
type Kind uint8

// Event kinds.
const (
	EvSend Kind = iota
	EvInvoke
	EvBuffer
	EvBlock
	EvResume
	EvSchedule
	EvDispatch
	EvCreate
	EvRemoteSend
	EvRemoteRecv
	// Fault-injection and reliable-delivery events.
	EvLinkDrop  // a packet was dropped by the fault injector
	EvLinkDup   // an extra copy of a packet was injected
	EvNodePause // a node deferred execution for a fault window
	EvRetry     // the reliable layer retransmitted an unacknowledged message
	EvAck       // an acknowledgment was sent or processed
	EvDupMsg    // a duplicate message was suppressed at the receiver
	EvHold      // an out-of-order message was held for in-order delivery
	// Wire-path optimisation events.
	EvBatch       // a multi-message hardware packet was flushed onto a link
	EvAckCoalesce // a cumulative ack replaced several per-packet acks
	EvLocUpdate   // a remote-location cache update was sent or applied
	// Checkpoint and crash-recovery events.
	EvCkptSave  // a node wrote its snapshot to simulated stable store
	EvCkptRound // the coordinator completed a snapshot round
	EvCrash     // a node crash fault hit
	EvRestore   // a global restore rolled the machine back to a checkpoint
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(EvRestore) + 1

var kindNames = [NumKinds]string{
	EvSend:        "send",
	EvInvoke:      "invoke",
	EvBuffer:      "buffer",
	EvBlock:       "block",
	EvResume:      "resume",
	EvSchedule:    "schedule",
	EvDispatch:    "dispatch",
	EvCreate:      "create",
	EvRemoteSend:  "remote-send",
	EvRemoteRecv:  "remote-recv",
	EvLinkDrop:    "link-drop",
	EvLinkDup:     "link-dup",
	EvNodePause:   "node-pause",
	EvRetry:       "retry",
	EvAck:         "ack",
	EvDupMsg:      "dup-msg",
	EvHold:        "hold",
	EvBatch:       "batch",
	EvAckCoalesce: "ack-coalesce",
	EvLocUpdate:   "loc-update",
	EvCkptSave:    "ckpt-save",
	EvCkptRound:   "ckpt-round",
	EvCrash:       "crash",
	EvRestore:     "restore",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	What string
}

// Sink consumes runtime events. The contract every implementation (and every
// emitter) relies on:
//
//   - Synchronous: Event is called inline from the simulation goroutine; the
//     sink must not hand the event to another goroutine that races the run,
//     and must not call back into the system being observed.
//   - Deterministic order: events arrive in engine order, which is the same
//     for every same-seed run. Per-event timestamps are *not* globally
//     monotonic — a node's clock runs ahead of its event lane inside a
//     method body — so sinks must not assume sorted At values.
//   - No retention of event memory: the Event value is the sink's to copy,
//     but the strings it carries may be formatted into shared buffers in
//     future emitters — a sink that keeps events beyond the call must store
//     its own copy of the value (Ring does; JSONL serializes immediately).
//
// Sinks observe and never perturb: a run with any combination of sinks
// attached executes the identical virtual-time schedule as a run with none.
type Sink interface {
	Event(e Event)
}

// Tee fans events out to several sinks in argument order. Nil sinks are
// dropped; a single survivor is returned undecorated.
func Tee(sinks ...Sink) Sink {
	out := make(tee, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

type tee []Sink

func (t tee) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}

// Ring is a fixed-capacity event buffer; when full, the oldest events are
// overwritten. The zero Ring is unusable; use NewRing.
type Ring struct {
	buf   []Event
	next  int
	count uint64
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Event implements Sink.
func (r *Ring) Event(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.count++
}

// Add records an event.
func (r *Ring) Add(at sim.Time, node int, kind Kind, what string) {
	r.Event(Event{At: at, Node: node, Kind: kind, What: what})
}

// Addf records a formatted event.
func (r *Ring) Addf(at sim.Time, node int, kind Kind, format string, args ...any) {
	r.Add(at, node, kind, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever recorded (including overwritten).
func (r *Ring) Total() uint64 { return r.count }

// Events returns retained events in chronological record order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// String formats the event as one Dump-style line (without the newline).
func (e Event) String() string {
	return fmt.Sprintf("%12v n%-4d %-12s %s", e.At, e.Node, e.Kind, e.What)
}

// Dump writes the retained events, one per line.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

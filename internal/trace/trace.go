// Package trace records runtime events into a bounded ring buffer for
// debugging and for visualizing schedules. Tracing is optional and off the
// hot path: callers hold a *Ring and emit events explicitly.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind labels a traced event.
type Kind uint8

// Event kinds.
const (
	EvSend Kind = iota
	EvInvoke
	EvBuffer
	EvBlock
	EvResume
	EvSchedule
	EvDispatch
	EvCreate
	EvRemoteSend
	EvRemoteRecv
	// Fault-injection and reliable-delivery events.
	EvLinkDrop  // a packet was dropped by the fault injector
	EvLinkDup   // an extra copy of a packet was injected
	EvNodePause // a node deferred execution for a fault window
	EvRetry     // the reliable layer retransmitted an unacknowledged message
	EvAck       // an acknowledgment was sent or processed
	EvDupMsg    // a duplicate message was suppressed at the receiver
	EvHold      // an out-of-order message was held for in-order delivery
	// Wire-path optimisation events.
	EvBatch       // a multi-message hardware packet was flushed onto a link
	EvAckCoalesce // a cumulative ack replaced several per-packet acks
	EvLocUpdate   // a remote-location cache update was sent or applied
	// Checkpoint and crash-recovery events.
	EvCkptSave  // a node wrote its snapshot to simulated stable store
	EvCkptRound // the coordinator completed a snapshot round
	EvCrash     // a node crash fault hit
	EvRestore   // a global restore rolled the machine back to a checkpoint
)

var kindNames = [...]string{
	EvSend:        "send",
	EvInvoke:      "invoke",
	EvBuffer:      "buffer",
	EvBlock:       "block",
	EvResume:      "resume",
	EvSchedule:    "schedule",
	EvDispatch:    "dispatch",
	EvCreate:      "create",
	EvRemoteSend:  "remote-send",
	EvRemoteRecv:  "remote-recv",
	EvLinkDrop:    "link-drop",
	EvLinkDup:     "link-dup",
	EvNodePause:   "node-pause",
	EvRetry:       "retry",
	EvAck:         "ack",
	EvDupMsg:      "dup-msg",
	EvHold:        "hold",
	EvBatch:       "batch",
	EvAckCoalesce: "ack-coalesce",
	EvLocUpdate:   "loc-update",
	EvCkptSave:    "ckpt-save",
	EvCkptRound:   "ckpt-round",
	EvCrash:       "crash",
	EvRestore:     "restore",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	What string
}

// Ring is a fixed-capacity event buffer; when full, the oldest events are
// overwritten. The zero Ring is unusable; use NewRing.
type Ring struct {
	buf   []Event
	next  int
	count uint64
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Add records an event.
func (r *Ring) Add(at sim.Time, node int, kind Kind, what string) {
	e := Event{At: at, Node: node, Kind: kind, What: what}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.count++
}

// Addf records a formatted event.
func (r *Ring) Addf(at sim.Time, node int, kind Kind, format string, args ...any) {
	r.Add(at, node, kind, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever recorded (including overwritten).
func (r *Ring) Total() uint64 { return r.count }

// Events returns retained events in chronological record order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// String formats the event as one Dump-style line (without the newline).
func (e Event) String() string {
	return fmt.Sprintf("%12v n%-4d %-12s %s", e.At, e.Node, e.Kind, e.What)
}

// Dump writes the retained events, one per line.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

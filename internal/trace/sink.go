package trace

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// JSONL streams every event as one JSON object per line:
//
//	{"at":152090,"node":3,"kind":"send","what":"nq.node <- nq.expand (dormant mode)"}
//
// Serialization happens inside Event, so nothing of the event is retained.
// Output is byte-deterministic for a deterministic event stream (same seed
// ⇒ identical file), which the golden-file test relies on. Write errors are
// sticky: the first one is kept, subsequent events are dropped, and the
// caller checks Err after the run.
type JSONL struct {
	w   io.Writer
	err error
}

// NewJSONL returns a streaming JSONL sink writing to w. Wrap w in a
// bufio.Writer for file output; the sink never flushes.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// jsonlEvent is the wire schema of one line.
type jsonlEvent struct {
	At   int64  `json:"at"`
	Node int    `json:"node"`
	Kind string `json:"kind"`
	What string `json:"what"`
}

// Event implements Sink.
func (j *JSONL) Event(e Event) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(jsonlEvent{
		At:   int64(e.At),
		Node: e.Node,
		Kind: e.Kind.String(),
		What: e.What,
	})
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Err returns the first write or marshal error, if any.
func (j *JSONL) Err() error { return j.err }

// Metrics is a summary sink: it keeps per-kind and per-node event counts and
// the observed time range, discarding the event text. Cheap enough to leave
// attached to long runs where a Ring would thrash.
type Metrics struct {
	total  uint64
	byKind [NumKinds]uint64
	byNode []uint64
	first  sim.Time
	last   sim.Time
	any    bool
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return &Metrics{} }

// Event implements Sink.
func (m *Metrics) Event(e Event) {
	m.total++
	if int(e.Kind) < NumKinds {
		m.byKind[e.Kind]++
	}
	for len(m.byNode) <= e.Node {
		m.byNode = append(m.byNode, 0)
	}
	m.byNode[e.Node]++
	if !m.any || e.At < m.first {
		m.first = e.At
	}
	if e.At > m.last {
		m.last = e.At
	}
	m.any = true
}

// MetricsSummary is the JSON-marshalable digest of a Metrics sink.
type MetricsSummary struct {
	Total   uint64            `json:"total_events"`
	FirstNs int64             `json:"first_ns"`
	LastNs  int64             `json:"last_ns"`
	ByKind  map[string]uint64 `json:"by_kind"`
	ByNode  []uint64          `json:"by_node"`
}

// Summary digests the counts. The by-kind map holds only kinds that fired.
func (m *Metrics) Summary() MetricsSummary {
	s := MetricsSummary{
		Total:   m.total,
		FirstNs: int64(m.first),
		LastNs:  int64(m.last),
		ByKind:  make(map[string]uint64),
		ByNode:  append([]uint64(nil), m.byNode...),
	}
	for k, n := range m.byKind {
		if n > 0 {
			s.ByKind[Kind(k).String()] = n
		}
	}
	return s
}

package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var c Counters
	if c.TotalMessages() != 0 || c.Creations() != 0 || c.LocalMessages() != 0 {
		t.Fatal("zero counters must report zero")
	}
	if c.DormantFraction() != 0 {
		t.Fatal("dormant fraction of zero messages must be 0")
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Counters{
		LocalToDormant:  75,
		LocalToActive:   20,
		LocalRestores:   5,
		RemoteSends:     50,
		LocalCreations:  3,
		RemoteCreations: 7,
	}
	if got := c.LocalMessages(); got != 100 {
		t.Errorf("local messages = %d, want 100", got)
	}
	if got := c.TotalMessages(); got != 150 {
		t.Errorf("total messages = %d, want 150", got)
	}
	if got := c.Creations(); got != 10 {
		t.Errorf("creations = %d, want 10", got)
	}
	if got := c.DormantFraction(); got != 0.75 {
		t.Errorf("dormant fraction = %v, want 0.75", got)
	}
}

// randomCounters fills every uint64 field with a random value.
func randomCounters(rng *rand.Rand) Counters {
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(rng.Intn(1000)))
	}
	return c
}

// TestAddCoversEveryField catches the classic bug of adding a counter field
// but forgetting to extend Add: adding c to zero must reproduce c exactly.
func TestAddCoversEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := randomCounters(rng)
		var sum Counters
		sum.Add(&c)
		if sum != c {
			t.Fatalf("Add does not cover every field:\n got %+v\nwant %+v", sum, c)
		}
	}
}

// TestEveryFieldParticipatesInAdd pins the Add contract from both sides: the
// reflective sum covers exactly the uint64 fields, so every Counters field
// must be uint64 (a differently-typed field would be silently skipped), and
// adding a one-in-every-field value to zero must set every field.
func TestEveryFieldParticipatesInAdd(t *testing.T) {
	typ := reflect.TypeOf(Counters{})
	if typ.NumField() == 0 {
		t.Fatal("Counters has no fields")
	}
	for i := 0; i < typ.NumField(); i++ {
		if f := typ.Field(i); f.Type.Kind() != reflect.Uint64 {
			t.Errorf("Counters.%s is %s; Add sums only uint64 fields", f.Name, f.Type)
		}
	}
	var one, sum Counters
	ov := reflect.ValueOf(&one).Elem()
	for i := 0; i < ov.NumField(); i++ {
		ov.Field(i).SetUint(1)
	}
	sum.Add(&one)
	sv := reflect.ValueOf(&sum).Elem()
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Uint() != 1 {
			t.Errorf("Counters.%s did not participate in Add", typ.Field(i).Name)
		}
	}
}

func TestAddIsCommutativeProperty(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a := randomCounters(rand.New(rand.NewSource(seed1)))
		b := randomCounters(rand.New(rand.NewSource(seed2)))
		ab := a
		ab.Add(&b)
		ba := b
		ba.Add(&a)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAccumulates(t *testing.T) {
	var sum Counters
	one := Counters{LocalToDormant: 1, RemoteSends: 2, HeapFrames: 3}
	for i := 0; i < 5; i++ {
		sum.Add(&one)
	}
	if sum.LocalToDormant != 5 || sum.RemoteSends != 10 || sum.HeapFrames != 15 {
		t.Fatalf("accumulation wrong: %+v", sum)
	}
}

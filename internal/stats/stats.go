// Package stats collects runtime event counters for the ABCL system: message
// sends classified by receiver mode, creations, scheduling-queue traffic,
// chunk-stock behaviour and blocking events. Counters are per node and can
// be aggregated for whole-machine reports.
package stats

import "reflect"

// Counters is a set of monotonically increasing event counts. The zero value
// is ready to use. Counters is not safe for concurrent use; in the
// discrete-event simulator each instance is owned by one node.
type Counters struct {
	// Intra-node message sends by receiver state at delivery time.
	LocalToDormant uint64 // invoked immediately on the sender's stack
	LocalToActive  uint64 // buffered via a queuing procedure
	LocalRestores  uint64 // awaited message restoring a waiting object
	LocalToMulti   uint64 // delivered to a multiactive (grouped) receiver

	// Inter-node traffic.
	RemoteSends    uint64 // category-1 messages sent
	RemoteDelivers uint64 // category-1 messages handled

	// Now-type sends.
	NowFastPath    uint64 // reply had arrived when checked: no unwinding
	NowBlocked     uint64 // context saved to heap frame (Figure 3)
	Replies        uint64 // reply messages delivered to reply destinations
	DroppedReplies uint64 // replies to an already-consumed destination

	// Selective reception.
	WaitFast    uint64 // awaited message already buffered: no block
	WaitBlocked uint64 // object switched to waiting mode

	// Object creation.
	LocalCreations  uint64
	RemoteCreations uint64
	StockHits       uint64 // remote creations served from the chunk stock
	StockMisses     uint64 // empty stock: blocking round trip
	FaultBuffered   uint64 // messages buffered by the generic fault table

	// Migration.
	Migrations uint64 // objects moved to another node
	Forwards   uint64 // messages re-sent through a migration forwarder

	// Fault injection (attributed to the sending node for link faults).
	LinkDrops  uint64 // packets dropped by injected link faults
	LinkDups   uint64 // extra packet copies injected by link faults
	NodePauses uint64 // execution windows deferred by injected node pauses

	// Reliable delivery (ack/retry protocol of the inter-node layer).
	RelSent        uint64 // unique reliable messages sent (excluding retries)
	RelDelivered   uint64 // unique reliable messages delivered to handlers
	RelAbandoned   uint64 // messages given up on after the retry limit
	Retransmits    uint64 // retransmissions after an acknowledgment timeout
	AcksSent       uint64 // acknowledgment packets transmitted by receivers
	AcksCoalesced  uint64 // acknowledgments absorbed into a cumulative ack
	DupSuppressed  uint64 // received duplicate copies discarded by dedup
	HeldOutOfOrder uint64 // messages held to restore per-link FIFO order

	// Wire-path batching (per-link aggregation of small packets).
	BatchesSent uint64 // multi-message hardware packets transmitted
	BatchedMsgs uint64 // logical messages carried inside those batches

	// Remote-location cache (forwarding short-circuit after migration).
	LocCacheHits        uint64 // sends rewritten to a cached post-migration address
	LocCacheMisses      uint64 // stale-address deliveries that triggered a location update
	LocCacheInvalidates uint64 // cached addresses overwritten by a newer location

	// Checkpointing and crash recovery.
	CkptSaves    uint64 // node snapshots written to simulated stable store
	CkptBytes    uint64 // stable-store bytes across those snapshots
	CkptRounds   uint64 // coordinated snapshot rounds completed (coordinator)
	NodeCrashes  uint64 // crash faults that hit this node
	NodeRestarts uint64 // restarts completed from a checkpoint
	ReplayedMsgs uint64 // retained in-flight messages re-sent after a restore

	// Scheduling.
	SchedEnqueues uint64
	SchedDequeues uint64
	Preemptions   uint64 // deep-recursion or explicit yields
	HeapFrames    uint64 // contexts saved to heap frames

	// Multiactive scheduling (compatibility groups).
	MultiImmediate  uint64 // compatible invocations started on the sender's stack
	MultiParked     uint64 // conflicting invocations buffered in a group ready queue
	MultiDispatches uint64 // parked invocations dispatched through the scheduler
	MultiOvertakes  uint64 // bounded-reordering precedence overrides
}

// Add accumulates o into c. It sums every uint64 field via reflection so a
// counter added to the struct can never be forgotten here; Add runs only at
// aggregation time (whole-machine reports), never on the per-event hot path.
func (c *Counters) Add(o *Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < cv.NumField(); i++ {
		f := cv.Field(i)
		if f.Kind() == reflect.Uint64 {
			f.SetUint(f.Uint() + ov.Field(i).Uint())
		}
	}
}

// LocalMessages returns the count of intra-node object-to-object sends.
func (c *Counters) LocalMessages() uint64 {
	return c.LocalToDormant + c.LocalToActive + c.LocalRestores + c.LocalToMulti
}

// TotalMessages returns all object-to-object message sends (local sends plus
// remote sends; remote deliveries are the receiving half of RemoteSends and
// are not double counted).
func (c *Counters) TotalMessages() uint64 {
	return c.LocalMessages() + c.RemoteSends
}

// Creations returns all object creations.
func (c *Counters) Creations() uint64 {
	return c.LocalCreations + c.RemoteCreations
}

// LostMessages returns the number of unique reliable messages that were sent
// but never delivered. At quiescence this must be zero for the reliable
// layer's delivery guarantee to hold (abandoned messages count as lost).
func (c *Counters) LostMessages() uint64 {
	if c.RelDelivered >= c.RelSent {
		return 0
	}
	return c.RelSent - c.RelDelivered
}

// MsgsPerBatch returns the mean number of logical messages per multi-message
// hardware packet (zero when batching never coalesced anything).
func (c *Counters) MsgsPerBatch() float64 {
	if c.BatchesSent == 0 {
		return 0
	}
	return float64(c.BatchedMsgs) / float64(c.BatchesSent)
}

// DormantFraction returns the fraction of local messages that were delivered
// to dormant objects — the quantity the paper reports as "approximately 75%"
// for the N-queens programs (Section 6.3).
func (c *Counters) DormantFraction() float64 {
	local := c.LocalMessages()
	if local == 0 {
		return 0
	}
	return float64(c.LocalToDormant) / float64(local)
}

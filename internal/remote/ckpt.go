package remote

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Checkpoint support for the inter-node layer.
//
// A consistent global snapshot needs three things from this layer:
//
//   - Channel state. Rather than recording in-flight packets receiver-side
//     (Chandy–Lamport's channel recording), the sender retains every
//     transmitted record until it is *stable* — covered by the receiver's
//     sequence cursor in a completed snapshot round. At restore time the
//     channel state of the cut is reconstructed exactly: every retained
//     record the restored receive cursors do not cover is re-pended and
//     retransmitted, and the reliable protocol's per-link sequence numbers
//     deduplicate anything the receiver had in fact already consumed.
//
//   - Per-node state: sequence cursors, chunk stocks, placement state
//     (round-robin position, RNG, load samples), the location cache and the
//     advertisement ledger, all captured into a RelImage and restored in
//     place. Stock entries are restored *through their existing pointers* —
//     entry pointers travel inside wire records across the creation round
//     trip, so identity must survive a rollback.
//
//   - Teardown of the rolled-back timeline: pending retransmissions, reorder
//     buffers, delayed-ack ledgers and open batches all describe traffic of
//     a timeline that, after a restore, never happened.
//
// Checkpoint-protocol control messages (markers, snapshot acks) ride the
// reliable layer itself (CatCkpt, wmCkpt): they share each link's data
// sequence space, so they are delivered exactly once and *in order with the
// data stream* — which is precisely the marker property the consistency of
// the cut rests on.

// ckptRec is one retained transmission: enough to rebuild and re-send the
// relMsg under its original sequence number. Contents are immutable after
// the original send (wire-record pooling is disabled while checkpointing is
// on — see wirePooled).
type ckptRec struct {
	size     int
	category int
	inner    func(*machine.Node, *machine.Packet)
	payload  any
}

// retainLink is the retention buffer of one (src, dst) link: recs[i] holds
// sequence number base+i. Appended at send, trimmed at the front as records
// become stable, truncated at the back by a rollback.
type retainLink struct {
	base uint64
	recs []ckptRec
}

// ckptState is the layer-wide retention state, allocated by
// EnableCheckpoint.
type ckptState struct {
	links [][]retainLink // [src][dst]
}

// EnableCheckpoint switches the layer into checkpoint mode: every reliable
// transmission is retained until stable, and wire-record pooling is disabled
// so retained payloads stay immutable. Requires the reliable protocol.
func (l *Layer) EnableCheckpoint() {
	if l.rel == nil {
		panic("remote: checkpointing requires the reliable protocol")
	}
	if l.ck != nil {
		return
	}
	n := l.rt.Nodes()
	ck := &ckptState{links: make([][]retainLink, n)}
	for i := range ck.links {
		ck.links[i] = make([]retainLink, n)
	}
	l.ck = ck
}

// retain records one transmission for replay-after-rollback.
func (ck *ckptState) retain(src, dst int, seq uint64, m *relMsg) {
	lk := &ck.links[src][dst]
	if len(lk.recs) == 0 {
		lk.base = seq
	} else if want := lk.base + uint64(len(lk.recs)); seq != want {
		panic(fmt.Sprintf("remote: retention gap on link %d->%d: seq %d, want %d", src, dst, seq, want))
	}
	lk.recs = append(lk.recs, ckptRec{size: m.size, category: m.category, inner: m.inner, payload: m.payload})
}

// RelImage is one node's inter-node-layer snapshot.
type RelImage struct {
	node         int
	nextSeq      []uint64
	nextExpected []uint64
	rr, rrNext   int
	rng          uint64
	loads        []int32
	loadAt       []sim.Time
	stock        []stockImage
	locCache     map[core.Address]core.Address
	advert       map[advertKey]core.Address
	bytes        int
}

// stockImage captures one chunk-stock entry through its live pointer.
type stockImage struct {
	e      *stockEntry
	seeded bool
	chunks []*core.Object
}

// SizeBytes reports the modelled stable-store footprint of the image.
func (im *RelImage) SizeBytes() int { return im.bytes }

// Node reports which node the image belongs to.
func (im *RelImage) Node() int { return im.node }

// NextExpected reports the captured receive cursor for the src link (the
// per-link "everything below this was consumed before the cut" watermark).
func (im *RelImage) NextExpected(src int) uint64 { return im.nextExpected[src] }

// CaptureRel snapshots one node's inter-node state. Must run between engine
// events, with checkpoint mode enabled.
func (l *Layer) CaptureRel(node int) *RelImage {
	if l.ck == nil {
		panic("remote: CaptureRel without EnableCheckpoint")
	}
	ns := l.nodes[node]
	s := l.rel.senders[node]
	rv := l.rel.receivers[node]
	im := &RelImage{
		node:         node,
		nextSeq:      append([]uint64(nil), s.nextSeq...),
		nextExpected: append([]uint64(nil), rv.nextExpected...),
		rr:           ns.rr,
		rrNext:       ns.rrNext,
		rng:          ns.rng,
		loads:        append([]int32(nil), ns.loads...),
		loadAt:       append([]sim.Time(nil), ns.loadAt...),
	}
	im.bytes = 16*len(im.nextSeq) + 12*len(im.loads) + 16
	if len(ns.stock) > 0 {
		im.stock = make([]stockImage, 0, len(ns.stock))
		for _, e := range ns.stock {
			im.stock = append(im.stock, stockImage{e: e, seeded: e.seeded, chunks: append([]*core.Object(nil), e.chunks...)})
			im.bytes += 8 + 8*len(e.chunks)
		}
	}
	if len(ns.locCache) > 0 {
		im.locCache = make(map[core.Address]core.Address, len(ns.locCache))
		for k, v := range ns.locCache {
			im.locCache[k] = v
		}
		im.bytes += 16 * len(im.locCache)
	}
	if len(ns.advert) > 0 {
		im.advert = make(map[advertKey]core.Address, len(ns.advert))
		for k, v := range ns.advert {
			im.advert[k] = v
		}
		im.bytes += 16 * len(im.advert)
	}
	return im
}

// CkptTeardown discards every piece of in-flight protocol state of the
// rolled-back timeline, in deterministic node order: pending retransmissions
// (timers stopped, records recycled), reorder buffers, delayed-ack ledgers,
// and open batches. Runs once per restore, before the per-node state is
// restored.
func (l *Layer) CkptTeardown() {
	r := l.rel
	n := l.rt.Nodes()
	for src := 0; src < n; src++ {
		s := r.senders[src]
		for dst := 0; dst < n; dst++ {
			pending := s.pending[dst]
			if len(pending) == 0 {
				continue
			}
			seqs := s.scratch[:0]
			for seq := range pending {
				seqs = append(seqs, seq)
			}
			slices.Sort(seqs)
			for _, seq := range seqs {
				m := pending[seq]
				m.acked = true
				m.timer.Stop()
				delete(pending, seq)
				s.releaseMsg(m)
			}
			s.scratch = seqs[:0]
		}
		rv := r.receivers[src]
		for d := range rv.held {
			rv.held[d] = nil
		}
		if r.acks != nil {
			a := r.acks[src]
			a.timer.Stop()
			for i := range a.above {
				a.above[i] = nil
			}
			for i := range a.owed {
				a.owed[i] = 0
			}
			a.owedTo = a.owedTo[:0]
		}
		if l.bat != nil {
			if row := l.bat.links[src]; row != nil {
				for _, lb := range row {
					if lb == nil || len(lb.pkts) == 0 {
						continue
					}
					lb.timer.Stop()
					for _, p := range lb.pkts {
						lb.mn.ReleasePacket(p)
					}
					lb.reset()
				}
			}
		}
	}
}

// CkptRestoreNode rolls one node's inter-node state back to the image. The
// sequence cursors, placement state, load samples, location cache and
// advertisement ledger are overwritten; chunk-stock entries are restored
// through their existing pointers, and entries the image does not know
// (created after the snapshot) are emptied — their chunks belong to the
// forgotten timeline.
func (l *Layer) CkptRestoreNode(im *RelImage) {
	ns := l.nodes[im.node]
	s := l.rel.senders[im.node]
	rv := l.rel.receivers[im.node]
	copy(s.nextSeq, im.nextSeq)
	copy(rv.nextExpected, im.nextExpected)
	ns.rr, ns.rrNext, ns.rng = im.rr, im.rrNext, im.rng
	copy(ns.loads, im.loads)
	copy(ns.loadAt, im.loadAt)
	for _, e := range ns.stock {
		e.seeded = false
		e.chunks = nil
	}
	for i := range im.stock {
		si := &im.stock[i]
		si.e.seeded = si.seeded
		si.e.chunks = append([]*core.Object(nil), si.chunks...)
	}
	ns.locCache = nil
	if len(im.locCache) > 0 {
		ns.locCache = make(map[core.Address]core.Address, len(im.locCache))
		for k, v := range im.locCache {
			ns.locCache[k] = v
		}
	}
	ns.advert = nil
	if len(im.advert) > 0 {
		ns.advert = make(map[advertKey]core.Address, len(im.advert))
		for k, v := range im.advert {
			ns.advert[k] = v
		}
	}
	if l.rel.acks != nil {
		// The delayed-ack ledger restarts from the restored receive cursors:
		// everything below them is consumed, nothing above has arrived in
		// the restored timeline.
		a := l.rel.acks[im.node]
		copy(a.cum, im.nextExpected)
	}
}

// CkptTruncate discards the rolled-back suffix of every retention buffer:
// records with seq >= the restored send cursor belong to the abandoned
// timeline and must never replay. Runs synchronously inside the rollback,
// before any event of the restored timeline can transmit — a new send (or a
// snapshot marker) under a restored sequence number must find its link's
// buffer already truncated.
func (l *Layer) CkptTruncate(imgs []*RelImage) {
	n := l.rt.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			lk := &l.ck.links[src][dst]
			keep := int(imgs[src].nextSeq[dst] - lk.base)
			if keep < 0 {
				keep = 0
			}
			if keep >= len(lk.recs) {
				continue
			}
			for i := keep; i < len(lk.recs); i++ {
				lk.recs[i] = ckptRec{}
			}
			lk.recs = lk.recs[:keep]
		}
	}
}

// CkptReplayNode reconstructs the channel state of the cut for one sending
// node: every retained record (already truncated to the restored send
// cursors by CkptTruncate) that the destination's restored receive cursor
// does not cover is re-pended and retransmitted under its original sequence
// number. Must run on the sending node's lane so retransmission timers are
// armed against fresh event times. Returns the number of replayed records.
func (l *Layer) CkptReplayNode(src int, imgs []*RelImage) int {
	r := l.rel
	s := r.senders[src]
	mn := l.m.Node(src)
	replayed := 0
	for dst := 0; dst < l.rt.Nodes(); dst++ {
		if dst == src {
			continue
		}
		lk := &l.ck.links[src][dst]
		if len(lk.recs) == 0 {
			continue
		}
		start := 0
		if from := imgs[dst].nextExpected[src]; from > lk.base {
			start = int(from - lk.base)
		}
		for i := start; i < len(lk.recs); i++ {
			rec := &lk.recs[i]
			m := r.acquireMsg(mn, s)
			m.dst = dst
			m.seq = lk.base + uint64(i)
			m.size = rec.size
			m.category = rec.category
			m.inner = rec.inner
			m.payload = rec.payload
			m.attempts = 0
			m.acked = false
			if s.pending[dst] == nil {
				s.pending[dst] = make(map[uint64]*relMsg)
			}
			s.pending[dst][m.seq] = m
			replayed++
			r.xmit(mn, m)
		}
	}
	return replayed
}

// CkptStableTrim frees retained records that a completed snapshot round has
// made stable: every record below the receiver's captured cursor is part of
// the receiver's snapshot and will never need replaying.
func (l *Layer) CkptStableTrim(imgs []*RelImage) {
	n := l.rt.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			lk := &l.ck.links[src][dst]
			cur := imgs[dst].nextExpected[src]
			if cur <= lk.base || len(lk.recs) == 0 {
				continue
			}
			drop := int(cur - lk.base)
			if drop > len(lk.recs) {
				drop = len(lk.recs)
			}
			lk.recs = append(lk.recs[:0:0], lk.recs[drop:]...)
			lk.base += uint64(drop)
		}
	}
}

// SendCkpt transmits a checkpoint-protocol control message (marker or
// snapshot acknowledgment) from src to dst through the reliable layer. The
// message shares the link's data sequence space: it is delivered exactly
// once, in order with the data stream, which gives markers the FIFO property
// the consistency of the cut depends on. fn runs at the receiver when the
// message is polled.
func (l *Layer) SendCkpt(src, dst, extraBytes int, fn func()) {
	n := l.rt.NodeRT(src)
	mn := n.MachineNode()
	mn.Charge(l.cost().RemoteSendSetup)
	l.profCharge(mn, profile.Ckpt, l.cost().RemoteSendSetup)
	w := l.acquireWire(src)
	w.kind = wmCkpt
	w.src = src
	w.load = l.piggyback(src)
	w.then = fn
	pkt := mn.AcquirePacket()
	pkt.Dst = dst
	pkt.Size = packetHeaderBytes + extraBytes
	pkt.Category = CatCkpt
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(mn, pkt)
}

package remote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// placementSys builds a quiescent machine+layer for direct Pick calls.
func placementSys(t *testing.T, nodes int, lopt Options) (*core.Runtime, *Layer) {
	t.Helper()
	rt, l := buildSys(t, nodes, core.Options{}, lopt)
	return rt, l
}

func TestRoundRobinCycles(t *testing.T) {
	_, l := placementSys(t, 4, Options{Placement: RoundRobin{}})
	p := RoundRobin{}
	// Each node cycles over all nodes (self included), starting past itself's
	// initial cursor: node 0 yields 1,2,3,0,1,...
	want := []int{1, 2, 3, 0, 1, 2, 3, 0}
	for i, w := range want {
		if got := p.Pick(l, 0, nil); got != w {
			t.Fatalf("pick %d from node 0 = %d, want %d", i, got, w)
		}
	}
	// Per-node cursors are independent: node 2's cycle is unaffected by the
	// eight picks issued from node 0.
	for i, w := range []int{1, 2, 3, 0} {
		if got := p.Pick(l, 2, nil); got != w {
			t.Fatalf("pick %d from node 2 = %d, want %d", i, got, w)
		}
	}
}

func TestPlacementSingleNodeDegenerate(t *testing.T) {
	_, l := placementSys(t, 1, Options{Placement: RoundRobin{}})
	policies := []Placement{RoundRobin{}, Random{}, LocalOnly{}, LoadBased{}, DepthLocal{}}
	for _, p := range policies {
		for i := 0; i < 8; i++ {
			if got := p.Pick(l, 0, nil); got != 0 {
				t.Errorf("%s: pick on a 1-node machine = %d, want 0", p.Name(), got)
			}
		}
	}
}

func TestRoundRobinVersusLoadBased(t *testing.T) {
	// A skewed load picture: every remote node busy except node 3.
	// Round-robin ignores it and blindly cycles to node 1; load-based finds a
	// minimum-load node (the idle self or node 3).
	_, l := placementSys(t, 4, Options{Placement: RoundRobin{}, Seed: 1})
	ns := l.nodes[0]
	for i := 1; i < 4; i++ {
		ns.loads[i] = 5
	}
	ns.loads[3] = 0

	if got := (RoundRobin{}).Pick(l, 0, nil); got != 1 {
		t.Fatalf("round-robin pick = %d, want 1 (blind cycle)", got)
	}
	// A sample size covering many draws makes every node a candidate under
	// the deterministic per-node generator.
	lb := LoadBased{Candidates: 16}
	for i := 0; i < 8; i++ {
		got := lb.Pick(l, 0, nil)
		if got == 1 || got == 2 {
			t.Fatalf("load-based pick = %d, want an idle node (0 or 3)", got)
		}
	}
}

func TestLoadBasedDefaultsAndOwnLoad(t *testing.T) {
	// knownLoad for the picking node itself reads the live scheduling queue,
	// not a piggybacked sample.
	_, l := placementSys(t, 2, Options{Placement: LoadBased{}, Seed: 1})
	ns := l.nodes[0]
	ns.loads[0] = 99 // must be ignored for self
	if got := ns.knownLoad(0, l); got != 0 {
		t.Fatalf("own knownLoad = %d, want live queue length 0", got)
	}
}

func TestLoadBasedStaleSampleExpiry(t *testing.T) {
	const horizon = sim.Time(1000)
	_, l := placementSys(t, 4, Options{Placement: LoadBased{}, Seed: 1, LoadHorizon: horizon})
	ns := l.nodes[0]
	l.m.Node(0).SyncClock(2000)

	// Node 2 advertised an attractive zero load, but the sample is outside
	// the horizon; node 1's worse sample is fresh.
	ns.loads[2], ns.loadAt[2] = 0, 500
	ns.loads[1], ns.loadAt[1] = 3, 1500

	if got := ns.knownLoad(2, l); got != staleLoad {
		t.Fatalf("expired sample knownLoad = %d, want staleLoad", got)
	}
	if got := ns.knownLoad(1, l); got != 3 {
		t.Fatalf("fresh sample knownLoad = %d, want 3", got)
	}
	// A node never heard from (loadAt zero) is unknown, not idle.
	if got := ns.knownLoad(3, l); got != staleLoad {
		t.Fatalf("never-sampled knownLoad = %d, want staleLoad", got)
	}
	// Pick must not chase the stale minimum.
	lb := LoadBased{Candidates: 16}
	for i := 0; i < 8; i++ {
		if got := lb.Pick(l, 0, nil); got == 2 || got == 3 {
			t.Fatalf("load-based pick = %d under horizon, want a node with fresh information", got)
		}
	}

	// Without a horizon the same stale zero is taken at face value.
	_, l2 := placementSys(t, 4, Options{Placement: LoadBased{}, Seed: 1})
	ns2 := l2.nodes[0]
	l2.m.Node(0).SyncClock(2000)
	ns2.loads[2], ns2.loadAt[2] = 0, 500
	if got := ns2.knownLoad(2, l2); got != 0 {
		t.Fatalf("no-horizon knownLoad = %d, want 0 (stale sample trusted)", got)
	}
}

package remote

import (
	"testing"

	"repro/internal/core"
)

// buildCounterSys returns a 3-node system with a counter class and helpers.
func buildCounterSys(t *testing.T) (*core.Runtime, *Layer, *core.Class, core.PatternID, core.PatternID) {
	t.Helper()
	rt, l := buildSys(t, 3, core.Options{}, DefaultOptions())
	inc := rt.Reg.Register("inc", 0)
	get := rt.Reg.Register("get", 0)
	counter := rt.DefineClass("counter", 1, func(ic *core.InitCtx) {
		ic.SetState(0, core.IntV(0))
	})
	counter.Method(inc, func(ctx *core.Ctx) {
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+1))
	})
	counter.Method(get, func(ctx *core.Ctx) { ctx.Reply(ctx.State(0)) })
	return rt, l, counter, inc, get
}

func TestMigratePreservesState(t *testing.T) {
	rt, l, counter, inc, get := buildCounterSys(t)
	kick := rt.Reg.Register("kick", 0)

	target := rt.NewObjectOn(0, counter)
	var drvAddr core.Address
	var readback int64 = -1
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		for i := 0; i < 5; i++ {
			ctx.SendPast(target, inc)
		}
		ctx.SendNow(target, get, nil, func(ctx *core.Ctx, v core.Value) {
			readback = v.Int()
		})
	})
	drvAddr = rt.NewObjectOn(0, drv)
	rt.Inject(drvAddr, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if readback != 5 {
		t.Fatalf("pre-migration count = %d, want 5", readback)
	}

	// Migrate the counter to node 2, then keep using the OLD address.
	var newAddr core.Address
	if err := l.Migrate(target.Obj, 2, func(a core.Address) { newAddr = a }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if newAddr.IsNil() || newAddr.Node != 2 {
		t.Fatalf("migrated to %v, want node 2", newAddr)
	}
	if newAddr.Obj.State(0).Int() != 5 {
		t.Fatalf("migrated state = %v, want 5", newAddr.Obj.State(0))
	}
	if target.Obj.ForwardTarget() != newAddr {
		t.Fatal("old object must forward to the new address")
	}

	// Sends through the stale address must still work.
	readback = -1
	rt.Inject(drvAddr, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if readback != 10 {
		t.Fatalf("post-migration count = %d, want 10", readback)
	}
	c := rt.TotalStats()
	if c.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", c.Migrations)
	}
	if c.Forwards == 0 {
		t.Error("stale-address sends must be forwarded")
	}
}

func TestMigrateBuffersInFlightMessages(t *testing.T) {
	rt, l, counter, inc, get := buildCounterSys(t)
	target := rt.NewObjectOn(0, counter)

	// Defined before the first run freezes the pattern set.
	kick := rt.Reg.Register("kick", 0)
	var got int64 = -1
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		ctx.SendNow(target, get, nil, func(ctx *core.Ctx, v core.Value) { got = v.Int() })
	})
	d := rt.NewObjectOn(2, drv)

	// Begin migration, then let messages arrive at the old address before
	// the transfer completes — they must buffer and then forward.
	if err := l.Migrate(target.Obj, 1, nil); err != nil {
		t.Fatal(err)
	}
	n0 := rt.NodeRT(0)
	for i := 0; i < 3; i++ {
		n0.DeliverFrame(target.Obj, &core.Frame{Pattern: inc}, true)
	}
	if target.Obj.QueueLen() != 3 {
		t.Fatalf("mid-transfer queue = %d, want 3 buffered", target.Obj.QueueLen())
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("count after flushed migration = %d, want 3", got)
	}
}

func TestMigrateValidation(t *testing.T) {
	rt, l, counter, _, _ := buildCounterSys(t)
	obj := rt.NewObjectOn(0, counter)
	rt.Freeze()

	if err := l.Migrate(obj.Obj, 0, nil); err == nil {
		t.Error("same-node migration must be rejected")
	}
	if err := l.Migrate(obj.Obj, 99, nil); err == nil {
		t.Error("out-of-range target must be rejected")
	}
	chunk := rt.NewFaultChunk(0)
	if err := l.Migrate(chunk, 1, nil); err == nil {
		t.Error("chunk migration must be rejected")
	}
}

func TestMigrateNonQuiescentPanics(t *testing.T) {
	rt, l, counter, inc, _ := buildCounterSys(t)
	obj := rt.NewObjectOn(0, counter)
	rt.Freeze()
	// Buffer a message so the object is not quiescent.
	rt.Inject(obj, inc)
	defer func() {
		if recover() == nil {
			t.Fatal("migrating an object with queued work must panic")
		}
	}()
	_ = l.Migrate(obj.Obj, 1, nil)
}

func TestMigrateChainForwarding(t *testing.T) {
	// Migrate twice: old -> node1 -> node2; the original address must chase
	// two forwarders and still reach the object.
	rt, l, counter, inc, get := buildCounterSys(t)
	orig := rt.NewObjectOn(0, counter)

	kick := rt.Reg.Register("kick", 0)
	var got int64 = -1
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		ctx.SendPast(orig, inc) // through two forwarders
		ctx.SendNow(orig, get, nil, func(ctx *core.Ctx, v core.Value) { got = v.Int() })
	})
	d := rt.NewObjectOn(0, drv)
	rt.Freeze()

	var first core.Address
	if err := l.Migrate(orig.Obj, 1, func(a core.Address) { first = a }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := l.Migrate(first.Obj, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("count through forwarder chain = %d, want 1", got)
	}
	if c := rt.TotalStats(); c.Forwards < 4 {
		t.Errorf("forwards = %d, want >= 4 (two messages x two hops)", c.Forwards)
	}
}

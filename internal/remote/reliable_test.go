package remote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
)

// buildFaulty returns a runtime+layer over a machine with the given fault
// plan installed and the reliable protocol enabled.
func buildFaulty(t *testing.T, nodes int, plan fault.Plan, seed int64) (*core.Runtime, *Layer) {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.NewInjector(plan, seed, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaults(in)
	rt := core.NewRuntime(m, core.Options{})
	l := Attach(rt, Options{
		StockDepth: 2, Placement: RoundRobin{}, Seed: seed, Reliable: true,
	})
	return rt, l
}

// counterStream is a two-node workload: node 0 sends numbered increments to
// a counter on node 1; the counter records arrival order.
func runCounterStream(t *testing.T, plan fault.Plan, seed int64, msgs int) ([]int64, *core.Runtime, *Layer) {
	t.Helper()
	rt, l := buildFaulty(t, 2, plan, seed)
	inc := rt.Reg.Register("rel.inc", 1)
	kick := rt.Reg.Register("rel.kick", 1)

	var order []int64
	var target core.Address
	cnt := rt.DefineClass("rel.counter", 0, nil)
	cnt.Method(inc, func(ctx *core.Ctx) { order = append(order, ctx.Arg(0).Int()) })
	snd := rt.DefineClass("rel.sender", 0, nil)
	snd.Method(kick, func(ctx *core.Ctx) {
		n := ctx.Arg(0).Int()
		for i := int64(0); i < n; i++ {
			ctx.SendPast(target, inc, core.IntV(i))
		}
	})

	target = rt.NewObjectOn(1, cnt)
	s := rt.NewObjectOn(0, snd)
	rt.Inject(s, kick, core.IntV(int64(msgs)))
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return order, rt, l
}

func TestReliableExactlyOnceInOrder(t *testing.T) {
	// 20% drop + 15% duplication + jitter: every message must still arrive
	// exactly once and in send order.
	plan := fault.UniformLinks(0.20, 0.15, 3*sim.Microsecond)
	const msgs = 200
	order, rt, l := runCounterStream(t, plan, 11, msgs)
	if len(order) != msgs {
		t.Fatalf("delivered %d messages, want %d", len(order), msgs)
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order[%d] = %d: FIFO violated", i, v)
		}
	}
	c := rt.TotalStats()
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d, want 0/0", c.LostMessages(), c.RelAbandoned)
	}
	if c.Retransmits == 0 {
		t.Error("20% drop produced no retransmits")
	}
	if c.DupSuppressed == 0 {
		t.Error("duplication + retransmission produced no suppressed duplicates")
	}
	if l.rel.Unacked() != 0 {
		t.Errorf("%d messages still unacked at quiescence", l.rel.Unacked())
	}
}

func TestReliableCleanLinkNoRetries(t *testing.T) {
	// Protocol on, faults off: exactly-once trivially, zero retransmits,
	// one ack per message.
	order, rt, _ := runCounterStream(t, fault.Plan{}, 1, 50)
	if len(order) != 50 {
		t.Fatalf("delivered %d, want 50", len(order))
	}
	c := rt.TotalStats()
	if c.Retransmits != 0 || c.DupSuppressed != 0 || c.HeldOutOfOrder != 0 {
		t.Errorf("clean link: retransmits=%d dups=%d held=%d, want all 0",
			c.Retransmits, c.DupSuppressed, c.HeldOutOfOrder)
	}
	if c.AcksSent != c.RelSent {
		t.Errorf("acks=%d for %d messages", c.AcksSent, c.RelSent)
	}
}

func TestReliableSurvivesNodePause(t *testing.T) {
	// The receiver's processor pauses for 1ms right as traffic starts: its
	// message controller keeps acking, packets buffer, and every message is
	// still delivered exactly once in order when it wakes.
	plan := fault.UniformLinks(0.1, 0, 0).WithPause(1, 5*sim.Microsecond, sim.Millisecond)
	order, rt, _ := runCounterStream(t, plan, 5, 60)
	if len(order) != 60 {
		t.Fatalf("delivered %d messages, want 60", len(order))
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order[%d] = %d: FIFO violated across the pause", i, v)
		}
	}
	c := rt.TotalStats()
	if c.NodePauses == 0 {
		t.Error("pause window never took effect")
	}
	if c.LostMessages() != 0 {
		t.Errorf("lost %d messages across the pause", c.LostMessages())
	}
}

func TestReliableDeterminism(t *testing.T) {
	plan := fault.UniformLinks(0.25, 0.2, 5*sim.Microsecond)
	a, rta, _ := runCounterStream(t, plan, 42, 100)
	b, rtb, _ := runCounterStream(t, plan, 42, 100)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	ca, cb := rta.TotalStats(), rtb.TotalStats()
	if ca != cb {
		t.Errorf("same seed+plan produced different counters:\n%+v\nvs\n%+v", ca, cb)
	}
}

func TestReliableRemoteCreationAndReplies(t *testing.T) {
	// Remote creation (chunk-stock refill) and now-type replies under 15%
	// drop: the fork-join style round trip must complete correctly.
	rt, _ := buildFaulty(t, 4, fault.UniformLinks(0.15, 0.1, 2*sim.Microsecond), 9)
	ask := rt.Reg.Register("rc.ask", 1)
	kick := rt.Reg.Register("rc.kick", 0)

	var sum int64
	var done int
	svc := rt.DefineClass("rc.svc", 0, nil)
	svc.Method(ask, func(ctx *core.Ctx) { ctx.Reply(core.IntV(ctx.Arg(0).Int() * 2)) })
	drv := rt.DefineClass("rc.drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		// Create remotely (exercises chunk stock + create + refill under
		// faults), then do a now-type round trip with the created object.
		ctx.Create(svc, nil, func(ctx *core.Ctx, a core.Address) {
			ctx.SendNow(a, ask, []core.Value{core.IntV(21)}, func(ctx *core.Ctx, v core.Value) {
				sum += v.Int()
				done++
			})
		})
	})

	d := rt.NewObjectOn(0, drv)
	for i := 0; i < 8; i++ {
		rt.Inject(d, kick)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 8 || sum != 8*42 {
		t.Fatalf("done=%d sum=%d, want 8 replies summing to 336", done, sum)
	}
	c := rt.TotalStats()
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d", c.LostMessages(), c.RelAbandoned)
	}
}

func TestReliableMigrationUnderFaults(t *testing.T) {
	// Migration's state packet and ack both ride the reliable layer.
	rt, l := buildFaulty(t, 2, fault.UniformLinks(0.2, 0.1, 0), 13)
	poke := rt.Reg.Register("mg.poke", 0)
	var pokes int
	cl := rt.DefineClass("mg.obj", 1, func(ic *core.InitCtx) { ic.SetState(0, core.IntV(7)) })
	cl.Method(poke, func(ctx *core.Ctx) { pokes++ })

	a := rt.NewObjectOn(0, cl)
	rt.Inject(a, poke) // initialize
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var newAddr core.Address
	if err := l.Migrate(a.Obj, 1, func(na core.Address) { newAddr = na }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if newAddr.IsNil() || newAddr.Node != 1 {
		t.Fatalf("migration did not complete: %+v", newAddr)
	}
	// The old address still works (forwarder), across the faulty link.
	rt.Inject(a, poke)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if pokes != 2 {
		t.Fatalf("pokes = %d, want 2 (one pre-, one post-migration)", pokes)
	}
	if c := rt.TotalStats(); c.LostMessages() != 0 {
		t.Errorf("lost %d messages during migration", c.LostMessages())
	}
}

package remote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// buildFaulty returns a runtime+layer over a machine with the given fault
// plan installed and the reliable protocol enabled.
func buildFaulty(t *testing.T, nodes int, plan fault.Plan, seed int64) (*core.Runtime, *Layer) {
	return buildFaultyOpts(t, nodes, plan, Options{
		StockDepth: 2, Placement: RoundRobin{}, Seed: seed, Reliable: true,
	}, seed)
}

// buildFaultyOpts is buildFaulty with full control over the layer options,
// for the batching/delayed-ack variants of the fault tests.
func buildFaultyOpts(t *testing.T, nodes int, plan fault.Plan, opt Options, seed int64) (*core.Runtime, *Layer) {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.NewInjector(plan, seed, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaults(in)
	rt := core.NewRuntime(m, core.Options{})
	l := Attach(rt, opt)
	return rt, l
}

// counterStream is a two-node workload: node 0 sends numbered increments to
// a counter on node 1; the counter records arrival order.
func runCounterStream(t *testing.T, plan fault.Plan, seed int64, msgs int) ([]int64, *core.Runtime, *Layer) {
	t.Helper()
	rt, l := buildFaulty(t, 2, plan, seed)
	return runCounterStreamOn(t, rt, l, msgs)
}

func runCounterStreamOn(t *testing.T, rt *core.Runtime, l *Layer, msgs int) ([]int64, *core.Runtime, *Layer) {
	t.Helper()
	inc := rt.Reg.Register("rel.inc", 1)
	kick := rt.Reg.Register("rel.kick", 1)

	var order []int64
	var target core.Address
	cnt := rt.DefineClass("rel.counter", 0, nil)
	cnt.Method(inc, func(ctx *core.Ctx) { order = append(order, ctx.Arg(0).Int()) })
	snd := rt.DefineClass("rel.sender", 0, nil)
	snd.Method(kick, func(ctx *core.Ctx) {
		n := ctx.Arg(0).Int()
		for i := int64(0); i < n; i++ {
			ctx.SendPast(target, inc, core.IntV(i))
		}
	})

	target = rt.NewObjectOn(1, cnt)
	s := rt.NewObjectOn(0, snd)
	rt.Inject(s, kick, core.IntV(int64(msgs)))
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return order, rt, l
}

func TestReliableExactlyOnceInOrder(t *testing.T) {
	// 20% drop + 15% duplication + jitter: every message must still arrive
	// exactly once and in send order.
	plan := fault.UniformLinks(0.20, 0.15, 3*sim.Microsecond)
	const msgs = 200
	order, rt, l := runCounterStream(t, plan, 11, msgs)
	if len(order) != msgs {
		t.Fatalf("delivered %d messages, want %d", len(order), msgs)
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order[%d] = %d: FIFO violated", i, v)
		}
	}
	c := rt.TotalStats()
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d, want 0/0", c.LostMessages(), c.RelAbandoned)
	}
	if c.Retransmits == 0 {
		t.Error("20% drop produced no retransmits")
	}
	if c.DupSuppressed == 0 {
		t.Error("duplication + retransmission produced no suppressed duplicates")
	}
	if l.rel.Unacked() != 0 {
		t.Errorf("%d messages still unacked at quiescence", l.rel.Unacked())
	}
}

func TestReliableCleanLinkNoRetries(t *testing.T) {
	// Protocol on, faults off: exactly-once trivially, zero retransmits,
	// one ack per message.
	order, rt, _ := runCounterStream(t, fault.Plan{}, 1, 50)
	if len(order) != 50 {
		t.Fatalf("delivered %d, want 50", len(order))
	}
	c := rt.TotalStats()
	if c.Retransmits != 0 || c.DupSuppressed != 0 || c.HeldOutOfOrder != 0 {
		t.Errorf("clean link: retransmits=%d dups=%d held=%d, want all 0",
			c.Retransmits, c.DupSuppressed, c.HeldOutOfOrder)
	}
	if c.AcksSent != c.RelSent {
		t.Errorf("acks=%d for %d messages", c.AcksSent, c.RelSent)
	}
}

func TestReliableSurvivesNodePause(t *testing.T) {
	// The receiver's processor pauses for 1ms right as traffic starts: its
	// message controller keeps acking, packets buffer, and every message is
	// still delivered exactly once in order when it wakes.
	plan := fault.UniformLinks(0.1, 0, 0).WithPause(1, 5*sim.Microsecond, sim.Millisecond)
	order, rt, _ := runCounterStream(t, plan, 5, 60)
	if len(order) != 60 {
		t.Fatalf("delivered %d messages, want 60", len(order))
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order[%d] = %d: FIFO violated across the pause", i, v)
		}
	}
	c := rt.TotalStats()
	if c.NodePauses == 0 {
		t.Error("pause window never took effect")
	}
	if c.LostMessages() != 0 {
		t.Errorf("lost %d messages across the pause", c.LostMessages())
	}
}

func TestReliableDeterminism(t *testing.T) {
	plan := fault.UniformLinks(0.25, 0.2, 5*sim.Microsecond)
	a, rta, _ := runCounterStream(t, plan, 42, 100)
	b, rtb, _ := runCounterStream(t, plan, 42, 100)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	ca, cb := rta.TotalStats(), rtb.TotalStats()
	if ca != cb {
		t.Errorf("same seed+plan produced different counters:\n%+v\nvs\n%+v", ca, cb)
	}
}

func TestReliableRemoteCreationAndReplies(t *testing.T) {
	// Remote creation (chunk-stock refill) and now-type replies under 15%
	// drop: the fork-join style round trip must complete correctly.
	rt, _ := buildFaulty(t, 4, fault.UniformLinks(0.15, 0.1, 2*sim.Microsecond), 9)
	ask := rt.Reg.Register("rc.ask", 1)
	kick := rt.Reg.Register("rc.kick", 0)

	var sum int64
	var done int
	svc := rt.DefineClass("rc.svc", 0, nil)
	svc.Method(ask, func(ctx *core.Ctx) { ctx.Reply(core.IntV(ctx.Arg(0).Int() * 2)) })
	drv := rt.DefineClass("rc.drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		// Create remotely (exercises chunk stock + create + refill under
		// faults), then do a now-type round trip with the created object.
		ctx.Create(svc, nil, func(ctx *core.Ctx, a core.Address) {
			ctx.SendNow(a, ask, []core.Value{core.IntV(21)}, func(ctx *core.Ctx, v core.Value) {
				sum += v.Int()
				done++
			})
		})
	})

	d := rt.NewObjectOn(0, drv)
	for i := 0; i < 8; i++ {
		rt.Inject(d, kick)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 8 || sum != 8*42 {
		t.Fatalf("done=%d sum=%d, want 8 replies summing to 336", done, sum)
	}
	c := rt.TotalStats()
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d", c.LostMessages(), c.RelAbandoned)
	}
}

func TestReliableMigrationUnderFaults(t *testing.T) {
	// Migration's state packet and ack both ride the reliable layer.
	rt, l := buildFaulty(t, 2, fault.UniformLinks(0.2, 0.1, 0), 13)
	poke := rt.Reg.Register("mg.poke", 0)
	var pokes int
	cl := rt.DefineClass("mg.obj", 1, func(ic *core.InitCtx) { ic.SetState(0, core.IntV(7)) })
	cl.Method(poke, func(ctx *core.Ctx) { pokes++ })

	a := rt.NewObjectOn(0, cl)
	rt.Inject(a, poke) // initialize
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var newAddr core.Address
	if err := l.Migrate(a.Obj, 1, func(na core.Address) { newAddr = na }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if newAddr.IsNil() || newAddr.Node != 1 {
		t.Fatalf("migration did not complete: %+v", newAddr)
	}
	// The old address still works (forwarder), across the faulty link.
	rt.Inject(a, poke)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if pokes != 2 {
		t.Fatalf("pokes = %d, want 2 (one pre-, one post-migration)", pokes)
	}
	if c := rt.TotalStats(); c.LostMessages() != 0 {
		t.Errorf("lost %d messages during migration", c.LostMessages())
	}
}

// wireOpts is the reliable protocol with the full wire path on: per-link
// batching plus delayed cumulative acks.
func wireOpts(seed int64) Options {
	return Options{
		StockDepth: 2, Placement: RoundRobin{}, Seed: seed, Reliable: true,
		BatchWindow: 10 * sim.Microsecond,
		AckDelay:    50 * sim.Microsecond,
	}
}

func TestReliableBatchedUnderFaults(t *testing.T) {
	// 10% drop + 10% duplication with batching and delayed acks on: the
	// exactly-once, in-order guarantee must be unchanged, and both
	// coalescing mechanisms must actually engage.
	plan := fault.UniformLinks(0.10, 0.10, 3*sim.Microsecond)
	const msgs = 300
	rt, l := buildFaultyOpts(t, 2, plan, wireOpts(17), 17)
	order, _, _ := runCounterStreamOn(t, rt, l, msgs)
	if len(order) != msgs {
		t.Fatalf("delivered %d messages, want %d", len(order), msgs)
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order[%d] = %d: FIFO violated under batching+faults", i, v)
		}
	}
	c := rt.TotalStats()
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d, want 0/0", c.LostMessages(), c.RelAbandoned)
	}
	if c.BatchesSent == 0 || c.AcksCoalesced == 0 {
		t.Errorf("batches=%d coalesced-acks=%d: wire-path options never engaged",
			c.BatchesSent, c.AcksCoalesced)
	}
	if l.rel.Unacked() != 0 {
		t.Errorf("%d messages still unacked at quiescence", l.rel.Unacked())
	}
}

func TestReliableBatchedDeterminism(t *testing.T) {
	// Batching + delayed acks under 10% drop + 10% dup: two runs with the
	// same seed and plan must produce identical deliveries and counters.
	plan := fault.UniformLinks(0.10, 0.10, 5*sim.Microsecond)
	run := func() ([]int64, stats.Counters) {
		rt, l := buildFaultyOpts(t, 2, plan, wireOpts(42), 42)
		order, _, _ := runCounterStreamOn(t, rt, l, 150)
		return order, rt.TotalStats()
	}
	a, ca := run()
	b, cb := run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if ca != cb {
		t.Errorf("same seed+plan produced different counters:\n%+v\nvs\n%+v", ca, cb)
	}
}

func TestReliableDelayedAcksReduceAckTraffic(t *testing.T) {
	// On a clean link, immediate mode sends one ack per message; the
	// delayed-ack timer must cut that by at least half on the same stream.
	immediate, rtI, _ := runCounterStream(t, fault.Plan{}, 3, 200)
	rtD, l := buildFaultyOpts(t, 2, fault.Plan{}, wireOpts(3), 3)
	delayed, _, _ := runCounterStreamOn(t, rtD, l, 200)
	if len(immediate) != 200 || len(delayed) != 200 {
		t.Fatalf("deliveries: immediate=%d delayed=%d, want 200/200", len(immediate), len(delayed))
	}
	ci, cd := rtI.TotalStats(), rtD.TotalStats()
	if cd.AcksSent*2 > ci.AcksSent {
		t.Errorf("delayed acks sent %d ack packets vs %d immediate: want <= half",
			cd.AcksSent, ci.AcksSent)
	}
	if cd.Retransmits != 0 {
		t.Errorf("clean link with delayed acks produced %d retransmits", cd.Retransmits)
	}
}

func TestLoadHorizonStaleness(t *testing.T) {
	// A piggybacked load sample is trusted inside the horizon and treated
	// as unknown (staleLoad) beyond it.
	m, err := machine.New(machine.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(m, core.Options{})
	l := Attach(rt, Options{
		StockDepth: 2, Placement: RoundRobin{}, Seed: 1,
		LoadHorizon: 100 * sim.Microsecond,
	})
	ns := l.nodes[0]
	if got := ns.knownLoad(1, l); got != staleLoad {
		t.Errorf("no sample yet: knownLoad = %d, want staleLoad", got)
	}
	l.noteLoad(0, 1, 7, 50*sim.Microsecond)
	m.Node(0).Clock = 120 * sim.Microsecond // sample age 70µs < horizon
	if got := ns.knownLoad(1, l); got != 7 {
		t.Errorf("fresh sample: knownLoad = %d, want 7", got)
	}
	m.Node(0).Clock = 200 * sim.Microsecond // sample age 150µs > horizon
	if got := ns.knownLoad(1, l); got != staleLoad {
		t.Errorf("expired sample: knownLoad = %d, want staleLoad", got)
	}
}

func TestLocationCacheInvalidate(t *testing.T) {
	// A newer advertised location for an already-cached object overwrites
	// the old entry and counts an invalidation.
	m, err := machine.New(machine.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(m, core.Options{})
	l := Attach(rt, Options{StockDepth: 2, Placement: RoundRobin{}, Seed: 1})
	stale := core.Address{Node: 1, Obj: &core.Object{}}
	freshA := core.Address{Node: 2, Obj: &core.Object{}}
	freshB := core.Address{Node: 0, Obj: &core.Object{}}
	mn := m.Node(0)
	l.learnLocation(mn, stale, freshA)
	l.learnLocation(mn, stale, freshA) // same fact: no invalidation
	if c := rt.NodeRT(0).C.LocCacheInvalidates; c != 0 {
		t.Fatalf("re-learning the same location counted %d invalidations", c)
	}
	l.learnLocation(mn, stale, freshB)
	if c := rt.NodeRT(0).C.LocCacheInvalidates; c != 1 {
		t.Errorf("overwrite counted %d invalidations, want 1", c)
	}
	if got := l.nodes[0].locCache[stale]; got != freshB {
		t.Errorf("cache maps stale object to %+v, want %+v", got, freshB)
	}
}

package remote

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Optimistic-execution support: the inter-node layer's half of a lane's
// rollback snapshot, plus the pooling gates speculation requires.
//
// Record recycling (wireMsg payloads, wireBatch containers, relMsg
// retransmission records) is disabled in optimistic mode for the same reason
// checkpoint retention disables wire pooling: a rollback replays delivery
// events whose payload records must still hold their original content, and a
// speculative release would rewrite them. With pooling off, every record is
// immutable from fill to collection.
//
// The snapshot itself is lane-owned by construction: senders[n], the
// batcher's links[n] row, the retention links[n] row and nodeState[n] are
// only touched from node n's lane (acks arrive back on the sender's lane),
// and receivers[n]/acks[n] only from the receiving lane — so each node's
// capture runs race-free on its own worker. Embedded sim.Timer values
// (retransmission, batch flush, delayed ack) are restored by the engine's
// own timer snapshot; the value copies taken here restore the surrounding
// record fields and coincide with the engine's values, both being taken at
// the same capture instant.

// EnableOptimistic switches the layer into optimistic-execution mode.
// Call before Run, after Attach and after the reliable protocol (if any)
// is configured.
func (l *Layer) EnableOptimistic() {
	l.optim = true
	if l.rel != nil {
		for _, s := range l.rel.senders {
			s.noPool = true
		}
	}
}

// Optimistic reports whether the layer is in optimistic-execution mode.
func (l *Layer) Optimistic() bool { return l.optim }

// stockSnap is the captured state of one live chunk-stock entry; the entry
// pointer is kept because wire records reference entries by identity.
type stockSnap struct {
	e      *stockEntry
	seeded bool
	chunks []*core.Object
}

// savedRel pairs an in-flight retransmission record with its captured value.
type savedRel struct {
	m *relMsg
	v relMsg
}

// lbSnap is the captured state of one open link batch (lb nil: the link had
// no batch object at capture time).
type lbSnap struct {
	lb         *linkBatch
	pkts       []*machine.Packet
	bytes      int
	firstClock sim.Time
	maxClock   sim.Time
}

// NodeSnap is the layer-level rollback snapshot of one node.
type NodeSnap struct {
	rr, rrNext int
	rng        uint64
	loads      []int32
	loadAt     []sim.Time
	sent       [3]uint64
	stock      []stockSnap
	locCache   map[core.Address]core.Address
	advert     map[advertKey]core.Address

	// Reliable protocol: sending half (sequence cursors, in-flight records
	// with their values), receiving half (expectation cursors, reorder
	// buffer), delayed-ack ledger.
	nextSeq      []uint64
	pending      []map[uint64]*relMsg
	pendingVals  []savedRel
	nextExpected []uint64
	held         []map[uint64]*heldDelivery
	ackCum       []uint64
	ackAbove     [][]uint64
	ackOwed      []int
	ackOwedSince []sim.Time
	ackOwedTo    []int

	bat []lbSnap // per destination; nil slice when batching is off
	ret []int    // retention record counts per destination; nil without ckpt
}

// OptCaptureNode snapshots node's layer state for a speculative window.
// Runs on the worker goroutine that owns the node's lane.
func (l *Layer) OptCaptureNode(node int) *NodeSnap {
	ns := l.nodes[node]
	s := &NodeSnap{
		rr:     ns.rr,
		rrNext: ns.rrNext,
		rng:    ns.rng,
		loads:  append([]int32(nil), ns.loads...),
		loadAt: append([]sim.Time(nil), ns.loadAt...),
		sent:   ns.sent,
	}
	for _, e := range ns.stock {
		s.stock = append(s.stock, stockSnap{e: e, seeded: e.seeded,
			chunks: append([]*core.Object(nil), e.chunks...)})
	}
	if ns.locCache != nil {
		s.locCache = make(map[core.Address]core.Address, len(ns.locCache))
		for k, v := range ns.locCache {
			s.locCache[k] = v
		}
	}
	if ns.advert != nil {
		s.advert = make(map[advertKey]core.Address, len(ns.advert))
		for k, v := range ns.advert {
			s.advert[k] = v
		}
	}
	if r := l.rel; r != nil {
		sn := r.senders[node]
		s.nextSeq = append([]uint64(nil), sn.nextSeq...)
		s.pending = make([]map[uint64]*relMsg, len(sn.pending))
		for dst, pm := range sn.pending {
			if pm == nil {
				continue
			}
			cp := make(map[uint64]*relMsg, len(pm))
			for seq, m := range pm {
				cp[seq] = m
				s.pendingVals = append(s.pendingVals, savedRel{m: m, v: *m})
			}
			s.pending[dst] = cp
		}
		rv := r.receivers[node]
		s.nextExpected = append([]uint64(nil), rv.nextExpected...)
		s.held = make([]map[uint64]*heldDelivery, len(rv.held))
		for src, hm := range rv.held {
			if hm == nil {
				continue
			}
			cp := make(map[uint64]*heldDelivery, len(hm))
			for seq, h := range hm {
				cp[seq] = h
			}
			s.held[src] = cp
		}
		if r.acks != nil {
			if a := r.acks[node]; a != nil {
				s.ackCum = append([]uint64(nil), a.cum...)
				s.ackAbove = make([][]uint64, len(a.above))
				for i, ab := range a.above {
					s.ackAbove[i] = append([]uint64(nil), ab...)
				}
				s.ackOwed = append([]int(nil), a.owed...)
				s.ackOwedSince = append([]sim.Time(nil), a.owedSince...)
				s.ackOwedTo = append([]int(nil), a.owedTo...)
			}
		}
	}
	if b := l.bat; b != nil {
		s.bat = make([]lbSnap, len(b.links))
		if row := b.links[node]; row != nil {
			for dst, lb := range row {
				if lb == nil {
					continue
				}
				s.bat[dst] = lbSnap{lb: lb,
					pkts:       append([]*machine.Packet(nil), lb.pkts...),
					bytes:      lb.bytes,
					firstClock: lb.firstClock,
					maxClock:   lb.maxClock}
			}
		}
	}
	if l.ck != nil {
		row := l.ck.links[node]
		s.ret = make([]int, len(row))
		for dst := range row {
			s.ret[dst] = len(row[dst].recs)
		}
	}
	return s
}

// OptRestoreNode rolls node's layer state back to its snapshot. Runs
// single-threaded at the window barrier. Snapshots are single-use: restored
// maps and slices are handed back to the live state by reference.
func (l *Layer) OptRestoreNode(node int, s *NodeSnap) {
	ns := l.nodes[node]
	ns.rr = s.rr
	ns.rrNext = s.rrNext
	ns.rng = s.rng
	copy(ns.loads, s.loads)
	copy(ns.loadAt, s.loadAt)
	ns.sent = s.sent
	known := make(map[*stockEntry]bool, len(s.stock))
	for _, es := range s.stock {
		known[es.e] = true
		es.e.seeded = es.seeded
		es.e.chunks = append(es.e.chunks[:0:0], es.chunks...)
	}
	// Entries materialized after the capture revert to empty; an empty
	// non-seeded entry behaves exactly like an absent key.
	for _, e := range ns.stock {
		if !known[e] {
			e.seeded = false
			e.chunks = nil
		}
	}
	ns.locCache = s.locCache
	ns.advert = s.advert
	if r := l.rel; r != nil {
		sn := r.senders[node]
		copy(sn.nextSeq, s.nextSeq)
		copy(sn.pending, s.pending)
		for _, sv := range s.pendingVals {
			*sv.m = sv.v
		}
		rv := r.receivers[node]
		copy(rv.nextExpected, s.nextExpected)
		copy(rv.held, s.held)
		if r.acks != nil {
			if a := r.acks[node]; a != nil {
				copy(a.cum, s.ackCum)
				copy(a.above, s.ackAbove)
				copy(a.owed, s.ackOwed)
				copy(a.owedSince, s.ackOwedSince)
				a.owedTo = append(a.owedTo[:0:0], s.ackOwedTo...)
			}
		}
	}
	if b := l.bat; b != nil {
		if row := b.links[node]; row != nil {
			for dst, lb := range row {
				if lb == nil {
					continue
				}
				if sv := &s.bat[dst]; sv.lb != nil {
					lb.pkts = append(lb.pkts[:0:0], sv.pkts...)
					lb.bytes = sv.bytes
					lb.firstClock = sv.firstClock
					lb.maxClock = sv.maxClock
				} else {
					// Opened speculatively: back to idle (its flush timer was
					// revoked with the lane's birth log).
					lb.reset()
				}
			}
		}
	}
	if l.ck != nil {
		row := l.ck.links[node]
		for dst := range row {
			recs := row[dst].recs
			for i := s.ret[dst]; i < len(recs); i++ {
				recs[i] = ckptRec{}
			}
			row[dst].recs = recs[:s.ret[dst]]
		}
	}
}

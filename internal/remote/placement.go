// Package remote implements the inter-node software architecture of
// Section 5: Active-Message-style self-dispatching packet handlers
// (category 1: object messages, category 2: remote-creation requests,
// category 3: chunk-replenish replies, category 4: services such as load
// monitoring), and latency-hiding remote object creation backed by
// per-node stocks of pre-delivered memory chunks.
package remote

import "repro/internal/core"

// Placement chooses the node on which a remote create places the new
// object — the paper's "the system determines where the object is created
// based on local information" (Section 2.5).
type Placement interface {
	Name() string
	// Pick returns the target node for a creation issued from node `from`.
	// It must use only information local to `from`.
	Pick(l *Layer, from int, cl *core.Class) int
}

// RoundRobin cycles each node's creations over all nodes (including the
// creating node itself, which yields a local create).
type RoundRobin struct{}

func (RoundRobin) Name() string { return "round-robin" }

func (RoundRobin) Pick(l *Layer, from int, cl *core.Class) int {
	ns := l.nodes[from]
	ns.rrNext = (ns.rrNext + 1) % len(l.nodes)
	return ns.rrNext
}

// Random places uniformly at random using a deterministic per-node
// generator, so simulations are reproducible.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Pick(l *Layer, from int, cl *core.Class) int {
	ns := l.nodes[from]
	return int(ns.nextRand() % uint64(len(l.nodes)))
}

// LocalOnly always creates on the requesting node; useful as a baseline and
// for single-node tests.
type LocalOnly struct{}

func (LocalOnly) Name() string { return "local" }

func (LocalOnly) Pick(l *Layer, from int, cl *core.Class) int { return from }

// LoadBased samples K random candidate nodes and picks the one with the
// lowest known load. Load information is piggybacked on every packet
// (category-4 service data riding along with categories 1-3), so the view
// is local and possibly stale — exactly the paper's "based on local
// information".
type LoadBased struct {
	// Candidates is the sample size; zero means 4.
	Candidates int
}

func (LoadBased) Name() string { return "load-based" }

func (p LoadBased) Pick(l *Layer, from int, cl *core.Class) int {
	k := p.Candidates
	if k <= 0 {
		k = 4
	}
	ns := l.nodes[from]
	best := int(ns.nextRand() % uint64(len(l.nodes)))
	bestLoad := ns.knownLoad(best, l)
	for i := 1; i < k; i++ {
		cand := int(ns.nextRand() % uint64(len(l.nodes)))
		if load := ns.knownLoad(cand, l); load < bestLoad {
			best, bestLoad = cand, load
		}
	}
	return best
}

// DepthLocal is a fork-join-friendly policy: creations spread remotely
// (randomly) while the creating node is lightly loaded, and stay local once
// the node already has queued work — a cheap approximation of the
// depth-bounded spreading used for tree-structured computations.
type DepthLocal struct {
	// Threshold is the scheduling-queue length above which creations stay
	// local; zero means 2.
	Threshold int
}

func (DepthLocal) Name() string { return "depth-local" }

func (p DepthLocal) Pick(l *Layer, from int, cl *core.Class) int {
	th := p.Threshold
	if th <= 0 {
		th = 2
	}
	if l.rt.NodeRT(from).SchedQueueLen() >= th {
		return from
	}
	ns := l.nodes[from]
	return int(ns.nextRand() % uint64(len(l.nodes)))
}

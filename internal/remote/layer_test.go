package remote

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// buildSys returns a machine+runtime+layer with the given node count.
func buildSys(t *testing.T, nodes int, ropt core.Options, lopt Options) (*core.Runtime, *Layer) {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(m, ropt)
	l := Attach(rt, lopt)
	return rt, l
}

func TestRemotePastSendLatency(t *testing.T) {
	// Table 1's inter-node latency: ~8.9µs one way between adjacent nodes
	// for a one-word past-type message to a dormant object.
	rt, _ := buildSys(t, 2, core.Options{}, DefaultOptions())
	ping := rt.Reg.Register("ping", 1)
	kick := rt.Reg.Register("kick", 0)

	var arrivedAt sim.Time
	var target core.Address
	recv := rt.DefineClass("recv", 0, nil)
	recv.Method(ping, func(ctx *core.Ctx) { arrivedAt = ctx.Now() })
	send := rt.DefineClass("send", 0, nil)
	var sentAt sim.Time
	send.Method(kick, func(ctx *core.Ctx) {
		sentAt = ctx.Now()
		ctx.SendPast(target, ping, core.IntV(1))
	})

	target = rt.NewObjectOn(1, recv)
	s := rt.NewObjectOn(0, send)
	rt.Inject(s, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	lat := arrivedAt - sentAt
	// Software 3+20 sender + 1.5µs wire + (50+10+5+3+...) receiver side up
	// to method start; the paper's 8.9µs covers send initiation to method
	// dispatch. Accept 8-10µs.
	if lat < 8700 || lat > 9100 {
		t.Fatalf("one-way latency = %v, want ~8.9µs", lat)
	}
	c := rt.TotalStats()
	if c.RemoteSends != 1 || c.RemoteDelivers != 1 {
		t.Errorf("remote sends/delivers = %d/%d, want 1/1", c.RemoteSends, c.RemoteDelivers)
	}
}

func TestRemoteNowTypeRoundTrip(t *testing.T) {
	// Table 3's send/reply latency: ~17.8µs for a request-reply cycle.
	rt, _ := buildSys(t, 2, core.Options{}, DefaultOptions())
	ask := rt.Reg.Register("ask", 1)
	kick := rt.Reg.Register("kick", 0)

	var target core.Address
	var start, end sim.Time
	var got int64
	svc := rt.DefineClass("svc", 0, nil)
	svc.Method(ask, func(ctx *core.Ctx) { ctx.Reply(core.IntV(ctx.Arg(0).Int() + 1)) })
	cl := rt.DefineClass("cl", 0, nil)
	cl.Method(kick, func(ctx *core.Ctx) {
		start = ctx.Now()
		ctx.SendNow(target, ask, []core.Value{core.IntV(1)}, func(ctx *core.Ctx, v core.Value) {
			end = ctx.Now()
			got = v.Int()
		})
	})

	target = rt.NewObjectOn(1, svc)
	c := rt.NewObjectOn(0, cl)
	rt.Inject(c, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("remote now-send reply = %d, want 2", got)
	}
	rtt := end - start
	if rtt < 17*sim.Microsecond || rtt > 20*sim.Microsecond {
		t.Fatalf("round trip = %v, want ~17.8µs", rtt)
	}
	s := rt.TotalStats()
	if s.NowBlocked != 1 || s.NowFastPath != 0 {
		t.Errorf("remote now-send must block: fast=%d blocked=%d", s.NowFastPath, s.NowBlocked)
	}
}

func TestRemoteFIFO(t *testing.T) {
	rt, _ := buildSys(t, 2, core.Options{}, DefaultOptions())
	item := rt.Reg.Register("item", 1)
	kick := rt.Reg.Register("kick", 0)

	var got []int64
	var target core.Address
	sink := rt.DefineClass("sink", 0, nil)
	sink.Method(item, func(ctx *core.Ctx) { got = append(got, ctx.Arg(0).Int()) })
	src := rt.DefineClass("src", 0, nil)
	src.Method(kick, func(ctx *core.Ctx) {
		for i := int64(0); i < 20; i++ {
			ctx.SendPast(target, item, core.IntV(i))
		}
	})

	target = rt.NewObjectOn(1, sink)
	s := rt.NewObjectOn(0, src)
	rt.Inject(s, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("received %d, want 20", len(got))
	}
	for i := int64(0); i < 20; i++ {
		if got[i] != i {
			t.Fatalf("transmission order violated: %v", got)
		}
	}
}

func TestRemoteCreateStockHit(t *testing.T) {
	rt, l := buildSys(t, 2, core.Options{}, Options{StockDepth: 2, Placement: LocalOnly{}, Seed: 1})
	kick := rt.Reg.Register("kick", 0)
	get := rt.Reg.Register("get", 0)

	inits := 0
	worker := rt.DefineClass("worker", 1, func(ic *core.InitCtx) {
		inits++
		ic.SetState(0, ic.CtorArg(0))
	})
	var got int64 = -1
	worker.Method(get, func(ctx *core.Ctx) { ctx.Reply(core.IntV(ctx.State(0).Int())) })

	var addrKnownImmediately bool
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		before := ctx.Now()
		l.CreateOn(ctx, 1, worker, []core.Value{core.IntV(42)}, func(ctx *core.Ctx, a core.Address) {
			// Fast path: continuation runs with only local cost, long before
			// any network round trip could complete.
			addrKnownImmediately = ctx.Now()-before < 5*sim.Microsecond
			if a.Node != 1 {
				t.Errorf("created on node %d, want 1", a.Node)
			}
			ctx.SendNow(a, get, nil, func(ctx *core.Ctx, v core.Value) { got = v.Int() })
		})
	})

	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !addrKnownImmediately {
		t.Error("stock hit must yield the address locally (latency hiding)")
	}
	if got != 42 {
		t.Fatalf("state readback = %d, want 42", got)
	}
	if inits != 1 {
		t.Fatalf("object initialized %d times, want 1", inits)
	}
	s := rt.TotalStats()
	if s.StockHits != 1 || s.StockMisses != 0 {
		t.Errorf("stock hits/misses = %d/%d, want 1/0", s.StockHits, s.StockMisses)
	}
	// The replenishment reply must have restored the stock to full depth.
	if lvl := l.StockLevel(0, 1, worker); lvl != 2 {
		t.Errorf("stock level after replenish = %d, want 2", lvl)
	}
}

func TestRemoteCreateStockMissBlocks(t *testing.T) {
	// StockDepth 0 is the ablation: every remote create is a blocking round
	// trip (split-phase), the behaviour the paper's scheme avoids.
	rt, l := buildSys(t, 2, core.Options{}, Options{StockDepth: 0, Placement: LocalOnly{}, Seed: 1})
	kick := rt.Reg.Register("kick", 0)
	get := rt.Reg.Register("get", 0)

	worker := rt.DefineClass("worker", 1, func(ic *core.InitCtx) { ic.SetState(0, ic.CtorArg(0)) })
	var got int64 = -1
	worker.Method(get, func(ctx *core.Ctx) { ctx.Reply(core.IntV(ctx.State(0).Int())) })

	var createElapsed sim.Time
	drv := rt.DefineClass("drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		before := ctx.Now()
		l.CreateOn(ctx, 1, worker, []core.Value{core.IntV(7)}, func(ctx *core.Ctx, a core.Address) {
			createElapsed = ctx.Now() - before
			ctx.SendNow(a, get, nil, func(ctx *core.Ctx, v core.Value) { got = v.Int() })
		})
	})

	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("state readback = %d, want 7", got)
	}
	if createElapsed < 10*sim.Microsecond {
		t.Fatalf("blocking create took %v, want a full round trip", createElapsed)
	}
	s := rt.TotalStats()
	if s.StockMisses != 1 || s.StockHits != 0 {
		t.Errorf("stock hits/misses = %d/%d, want 0/1", s.StockHits, s.StockMisses)
	}
}

func TestStockExhaustionAndReplenish(t *testing.T) {
	// Depth 2, three rapid creations to the same target: two hits, one miss.
	rt, l := buildSys(t, 2, core.Options{}, Options{StockDepth: 2, Placement: LocalOnly{}, Seed: 1})
	kick := rt.Reg.Register("kick", 0)
	nop := rt.Reg.Register("nop", 0)

	worker := rt.DefineClass("worker", 0, nil)
	worker.Method(nop, func(ctx *core.Ctx) {})

	created := 0
	drv := rt.DefineClass("drv", 0, nil)
	var createNext func(ctx *core.Ctx)
	createNext = func(ctx *core.Ctx) {
		l.CreateOn(ctx, 1, worker, nil, func(ctx *core.Ctx, a core.Address) {
			created++
			if created < 3 {
				createNext(ctx)
			}
		})
	}
	drv.Method(kick, func(ctx *core.Ctx) { createNext(ctx) })

	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if created != 3 {
		t.Fatalf("created %d objects, want 3", created)
	}
	s := rt.TotalStats()
	if s.StockHits != 2 || s.StockMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", s.StockHits, s.StockMisses)
	}
	// Eventually all replenishments arrive: 2 from hits, 1 from the miss.
	if lvl := l.StockLevel(0, 1, worker); lvl != 2 {
		t.Errorf("final stock level = %d, want 2", lvl)
	}
}

// bigPayload gives constructor arguments a large wire size so the creation
// request is slow on the wire and third-party messages can overtake it.
type bigPayload struct{ n int }

func (b bigPayload) SizeBytes() int { return b.n }

func TestFigure4EarlyMessageRace(t *testing.T) {
	// A on node 0 creates O on node 1 with a large constructor payload,
	// then tells C on node 2 about O; C's small message to O overtakes the
	// big creation request, hits the generic fault table, and is processed
	// after initialization (Figure 4).
	rt, l := buildSys(t, 3, core.Options{}, Options{StockDepth: 1, Placement: LocalOnly{}, Seed: 1})
	kick := rt.Reg.Register("kick", 0)
	tell := rt.Reg.Register("tell", 1)
	poke := rt.Reg.Register("poke", 0)

	var initializedAt, pokeSentAt sim.Time
	var pokeProcessed bool
	oCls := rt.DefineClass("O", 1, func(ic *core.InitCtx) {
		ic.SetState(0, core.IntV(1))
	})
	oCls.Method(poke, func(ctx *core.Ctx) {
		if ctx.State(0).Int() != 1 {
			t.Error("poke ran before initialization")
		}
		pokeProcessed = true
	})
	_ = initializedAt

	cCls := rt.DefineClass("C", 0, nil)
	cCls.Method(tell, func(ctx *core.Ctx) {
		pokeSentAt = ctx.Now()
		ctx.SendPast(ctx.Arg(0).Ref(), poke)
	})

	var cAddr core.Address
	aCls := rt.DefineClass("A", 0, nil)
	aCls.Method(kick, func(ctx *core.Ctx) {
		big := core.AnyV(bigPayload{n: 4096}) // ~160µs of wire time
		l.CreateOn(ctx, 1, oCls, []core.Value{big}, func(ctx *core.Ctx, o core.Address) {
			ctx.SendPast(cAddr, tell, core.RefV(o))
		})
	})

	cAddr = rt.NewObjectOn(2, cCls)
	a := rt.NewObjectOn(0, aCls)
	rt.Inject(a, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !pokeProcessed {
		t.Fatal("poke was never processed")
	}
	s := rt.TotalStats()
	if s.FaultBuffered == 0 {
		t.Fatalf("expected the early message to hit the fault table (sent at %v)", pokeSentAt)
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	rt, l := buildSys(t, 4, core.Options{}, Options{StockDepth: 1, Placement: RoundRobin{}, Seed: 1})
	rt.Freeze()
	var picks []int
	for i := 0; i < 8; i++ {
		picks = append(picks, l.Placement().Pick(l, 0, nil))
	}
	want := []int{1, 2, 3, 0, 1, 2, 3, 0}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("round robin picks = %v, want %v", picks, want)
		}
	}
}

func TestPlacementRandomDeterministic(t *testing.T) {
	mk := func() []int {
		rt, l := buildSys(t, 16, core.Options{}, Options{StockDepth: 1, Placement: Random{}, Seed: 42})
		rt.Freeze()
		var picks []int
		for i := 0; i < 32; i++ {
			picks = append(picks, l.Placement().Pick(l, 3, nil))
		}
		return picks
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random placement must be deterministic per seed")
		}
		if a[i] < 0 || a[i] >= 16 {
			t.Fatalf("pick out of range: %d", a[i])
		}
	}
	// Sanity: not all identical.
	allSame := true
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("random placement degenerate")
	}
}

func TestPlacementLoadBased(t *testing.T) {
	rt, l := buildSys(t, 4, core.Options{}, Options{StockDepth: 1, Placement: LoadBased{Candidates: 4}, Seed: 7})
	rt.Freeze()
	// Make node 2 look heavily loaded in node 0's view; others idle.
	l.nodes[0].loads[1] = 0
	l.nodes[0].loads[2] = 1000
	l.nodes[0].loads[3] = 0
	heavyPicks := 0
	for i := 0; i < 64; i++ {
		if l.Placement().Pick(l, 0, nil) == 2 {
			heavyPicks++
		}
	}
	if heavyPicks > 4 {
		t.Fatalf("load-based placement picked the loaded node %d/64 times", heavyPicks)
	}
}

func TestLoadPiggybacking(t *testing.T) {
	rt, l := buildSys(t, 2, core.Options{}, DefaultOptions())
	ping := rt.Reg.Register("ping", 0)
	kick := rt.Reg.Register("kick", 0)
	var target core.Address
	recv := rt.DefineClass("recv", 0, nil)
	recv.Method(ping, func(ctx *core.Ctx) {})
	send := rt.DefineClass("send", 0, nil)
	send.Method(kick, func(ctx *core.Ctx) { ctx.SendPast(target, ping) })
	target = rt.NewObjectOn(1, recv)
	s := rt.NewObjectOn(0, send)
	rt.Inject(s, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 1 must have received node 0's (zero) load — the entry exists and
	// was written; we can only observe non-panic and the counter here.
	if l.MsgsSent() != 1 {
		t.Fatalf("category-1 sends = %d, want 1", l.MsgsSent())
	}
}

func TestCrossNodePingPongMany(t *testing.T) {
	// Sustained bidirectional traffic: 2 objects bouncing a counter 200
	// times across nodes; verifies quiescence and counter totals.
	rt, _ := buildSys(t, 2, core.Options{}, DefaultOptions())
	ball := rt.Reg.Register("ball", 1)

	var aAddr, bAddr core.Address
	bounces := 0
	mk := func(name string, peer *core.Address) *core.Class {
		c := rt.DefineClass(name, 0, nil)
		c.Method(ball, func(ctx *core.Ctx) {
			n := ctx.Arg(0).Int()
			bounces++
			if n > 0 {
				ctx.SendPast(*peer, ball, core.IntV(n-1))
			}
		})
		return c
	}
	ca := mk("A", &bAddr)
	cb := mk("B", &aAddr)
	aAddr = rt.NewObjectOn(0, ca)
	bAddr = rt.NewObjectOn(1, cb)
	rt.Inject(aAddr, ball, core.IntV(200))
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if bounces != 201 {
		t.Fatalf("bounces = %d, want 201", bounces)
	}
	s := rt.TotalStats()
	if s.RemoteSends != 200 {
		t.Errorf("remote sends = %d, want 200", s.RemoteSends)
	}
}

func TestLayerCreateViaPolicy(t *testing.T) {
	rt, l := buildSys(t, 4, core.Options{}, Options{StockDepth: 1, Placement: RoundRobin{}, Seed: 1})
	kick := rt.Reg.Register("t.kick", 0)
	nop := rt.Reg.Register("t.nop", 0)
	worker := rt.DefineClass("t.worker", 0, nil)
	worker.Method(nop, func(ctx *core.Ctx) {})

	var placed []int
	drv := rt.DefineClass("t.drv", 0, nil)
	var createNext func(ctx *core.Ctx, left int)
	createNext = func(ctx *core.Ctx, left int) {
		if left == 0 {
			return
		}
		ctx.Create(worker, nil, func(ctx *core.Ctx, a core.Address) {
			placed = append(placed, a.Node)
			createNext(ctx, left-1)
		})
	}
	drv.Method(kick, func(ctx *core.Ctx) { createNext(ctx, 4) })

	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Round-robin from node 0: 1, 2, 3, 0 (the last is a local create).
	want := []int{1, 2, 3, 0}
	if len(placed) != 4 {
		t.Fatalf("placed = %v", placed)
	}
	for i := range want {
		if placed[i] != want[i] {
			t.Fatalf("placement = %v, want %v", placed, want)
		}
	}
	if l.Placement().Name() != "round-robin" {
		t.Error("placement name")
	}
}

func TestPlacementNamesAndAccessors(t *testing.T) {
	rt, l := buildSys(t, 4, core.Options{}, Options{StockDepth: 3, Placement: DepthLocal{}, Seed: 1})
	rt.Freeze()
	names := map[string]Placement{
		"round-robin": RoundRobin{},
		"random":      Random{},
		"local":       LocalOnly{},
		"load-based":  LoadBased{},
		"depth-local": DepthLocal{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("placement %T name = %q, want %q", p, p.Name(), want)
		}
	}
	if l.StockDepth() != 3 {
		t.Errorf("stock depth accessor = %d", l.StockDepth())
	}
	if s := l.String(); !strings.Contains(s, "depth-local") || !strings.Contains(s, "stock=3") {
		t.Errorf("layer string %q", s)
	}
	if (LocalOnly{}).Pick(l, 2, nil) != 2 {
		t.Error("local-only must pick the caller's node")
	}
}

func TestDepthLocalPlacement(t *testing.T) {
	rt, l := buildSys(t, 4, core.Options{}, Options{StockDepth: 1, Placement: DepthLocal{Threshold: 1}, Seed: 9})
	rt.Freeze()
	// Idle node: spreads (some pick must differ from 0 over many tries).
	spread := false
	for i := 0; i < 16; i++ {
		if l.Placement().Pick(l, 0, nil) != 0 {
			spread = true
		}
	}
	if !spread {
		t.Error("idle depth-local must spread remotely")
	}
}

func TestAttachWithNilPlacementDefaults(t *testing.T) {
	rt, l := buildSys(t, 2, core.Options{}, Options{StockDepth: 1})
	rt.Freeze()
	if l.Placement() == nil || l.Placement().Name() != "round-robin" {
		t.Error("nil placement must default to round-robin")
	}
}

func TestCategoryCounters(t *testing.T) {
	rt, l := buildSys(t, 2, core.Options{}, Options{StockDepth: 1, Placement: LocalOnly{}, Seed: 1})
	kick := rt.Reg.Register("t.kick", 0)
	nop := rt.Reg.Register("t.nop", 0)
	worker := rt.DefineClass("t.worker", 0, nil)
	worker.Method(nop, func(ctx *core.Ctx) {})
	drv := rt.DefineClass("t.drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		l.CreateOn(ctx, 1, worker, nil, func(ctx *core.Ctx, a core.Address) {
			ctx.SendPast(a, nop)
		})
	})
	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if l.CreatesSent() != 1 {
		t.Errorf("category-2 sends = %d, want 1", l.CreatesSent())
	}
	if l.ChunksSent() != 1 {
		t.Errorf("category-3 sends = %d, want 1", l.ChunksSent())
	}
	if l.MsgsSent() != 1 {
		t.Errorf("category-1 sends = %d, want 1", l.MsgsSent())
	}
}

func TestCrossNodeReplyDelegation(t *testing.T) {
	// Caller on node 0 asks a middleman on node 1, which forwards the
	// request (with the caller's reply destination) to a worker on node 2;
	// the worker's reply travels straight back to node 0.
	rt, _ := buildSys(t, 3, core.Options{}, DefaultOptions())
	work := rt.Reg.Register("d.work", 0)
	kick := rt.Reg.Register("d.kick", 0)

	var middle, workerAddr core.Address
	var got string
	workerCls := rt.DefineClass("d.worker", 0, nil)
	workerCls.Method(work, func(ctx *core.Ctx) {
		ctx.Reply(core.StrV("via-delegation"))
	})
	middleCls := rt.DefineClass("d.middle", 0, nil)
	middleCls.Method(work, func(ctx *core.Ctx) {
		ctx.SendWithReply(workerAddr, work, nil, ctx.ReplyTo())
	})
	callerCls := rt.DefineClass("d.caller", 0, nil)
	callerCls.Method(kick, func(ctx *core.Ctx) {
		ctx.SendNow(middle, work, nil, func(ctx *core.Ctx, v core.Value) {
			got = v.Str()
		})
	})

	workerAddr = rt.NewObjectOn(2, workerCls)
	middle = rt.NewObjectOn(1, middleCls)
	caller := rt.NewObjectOn(0, callerCls)
	rt.Inject(caller, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "via-delegation" {
		t.Fatalf("delegated reply = %q", got)
	}
	// Three legs: caller->middle, middle->worker, worker->replydest(node 0).
	if c := rt.TotalStats(); c.RemoteSends != 3 {
		t.Errorf("remote sends = %d, want 3", c.RemoteSends)
	}
}

func TestHintedSendAcrossNodes(t *testing.T) {
	// A hinted send without HintKnownLocal to a remote receiver must fall
	// through to the network path and work normally.
	rt, _ := buildSys(t, 2, core.Options{}, DefaultOptions())
	ping := rt.Reg.Register("h.ping", 0)
	kick := rt.Reg.Register("h.kick", 0)
	ran := false
	var target core.Address
	recv := rt.DefineClass("h.recv", 0, nil)
	recv.Method(ping, func(ctx *core.Ctx) { ran = true })
	drv := rt.DefineClass("h.drv", 0, nil)
	drv.Method(kick, func(ctx *core.Ctx) {
		ctx.SendPastHinted(target, ping, core.HintNoPoll)
	})
	target = rt.NewObjectOn(1, recv)
	d := rt.NewObjectOn(0, drv)
	rt.Inject(d, kick)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("hinted remote send never arrived")
	}
}

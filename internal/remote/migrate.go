package remote

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Object migration: a category-4 remote service (Section 5.1 lists
// migration among the "other services" handled by self-dispatching
// messages). Because mail addresses embed real pointers, the old address
// stays valid: migration installs a forwarder there, and messages sent to
// the stale address take one extra hop.
//
// Protocol (initiated host-side or by a management object on the owner
// node):
//
//  1. the owner extracts the object's state and switches the old object to
//     fault mode (messages arriving mid-transfer buffer there);
//  2. a category-4 packet carries class identity and state to the target,
//     which materializes the object (a chunk adopting the state);
//  3. a category-4 ack returns the new address; the owner installs the
//     forwarder and flushes anything buffered during the transfer.

// Migrate moves a quiescent dormant object from its current node to target.
// onDone (optional) observes the new address once the forwarder is
// installed. Migrate must be called from host context between runs or from
// the owner node's execution context; the transfer itself happens in
// simulated time.
func (l *Layer) Migrate(obj *core.Object, target int, onDone func(core.Address)) error {
	if target < 0 || target >= l.rt.Nodes() {
		return fmt.Errorf("remote: migration target %d out of range", target)
	}
	src := obj.NodeID()
	if target == src {
		return fmt.Errorf("remote: object already on node %d", target)
	}
	cl := obj.Class()
	if cl == nil {
		return fmt.Errorf("remote: cannot migrate an uninitialized chunk")
	}
	if cl.Multiactive() {
		// The transfer protocol assumes a quiescent serial object; a
		// multiactive object's live-invocation set cannot ride the wire.
		return fmt.Errorf("remote: cannot migrate multiactive object of class %s", cl.Name)
	}
	n := l.rt.NodeRT(src)
	c := l.cost()

	image := l.rt.BeginMigration(n, obj) // old object now buffers
	n.C.Migrations++
	n.MachineNode().Charge(c.RemoteSendSetup + c.MigratePack)
	l.profCharge(n.MachineNode(), profile.Forward, c.RemoteSendSetup+c.MigratePack)

	size := packetHeaderBytes + image.SizeBytes()
	load := l.piggyback(src)
	l.transmit(n.MachineNode(), &machine.Packet{
		Dst:      target,
		Size:     size,
		Category: CatService,
		Handler: func(mn *machine.Node, pkt *machine.Packet) {
			mn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.MigrateUnpack)
			l.profCharge(mn, profile.Forward, c.RemoteRecvExtract+c.RemoteHandlerCall+c.MigrateUnpack)
			l.noteLoad(mn.ID, src, load, pkt.Arrival)
			tn := l.rt.NodeRT(mn.ID)
			// Materialize at the target: a chunk adopting the class + state.
			moved := l.rt.NewFaultChunk(mn.ID)
			l.rt.InitChunk(tn, moved, cl, nil)
			l.rt.AdoptMigratedState(tn, moved, cl, image)
			addr := moved.Addr()
			// Ack with the new address; the owner installs the forwarder.
			tn.MachineNode().Charge(c.RemoteSendSetup)
			l.profCharge(tn.MachineNode(), profile.Forward, c.RemoteSendSetup)
			ackLoad := l.piggyback(mn.ID)
			l.transmit(tn.MachineNode(), &machine.Packet{
				Dst:      src,
				Size:     packetHeaderBytes + 8,
				Category: CatService,
				Handler: func(mn2 *machine.Node, pkt2 *machine.Packet) {
					mn2.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall)
					l.profCharge(mn2, profile.Forward, c.RemoteRecvExtract+c.RemoteHandlerCall)
					l.noteLoad(mn2.ID, mn.ID, ackLoad, pkt2.Arrival)
					on := l.rt.NodeRT(mn2.ID)
					l.rt.CompleteMigration(on, obj, addr)
					if onDone != nil {
						onDone(addr)
					}
				},
			})
		},
	})
	return nil
}

package remote

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Per-link packet batching.
//
// The AP1000-style interconnect charges a fixed launch latency (~1.5µs,
// NetConfig.FixedNs) for every hardware packet regardless of size, so the
// small 4-word messages of the paper waste most of a launch on framing. When
// batching is enabled (Options.BatchWindow > 0), wire records headed to the
// same destination node within one aggregation window — or until a byte
// budget fills — are coalesced into a single CatBatch packet: the fixed
// launch cost and the routing header are paid once, while per-byte and
// per-hop costs remain faithful to the records actually carried.
//
// The batch is pure framing. Each record keeps its own receive handler and
// controller hook; at the destination the container's controller hook runs
// every record's hook at the (shared) arrival instant, and its poll-time
// handler runs the records' software handlers in enqueue order. Per-link
// FIFO order is therefore preserved: records leave in enqueue order inside
// containers that the machine's per-(src,dst) arrival clamp keeps ordered.
//
// Batching is off by default, and the default path is byte-identical to the
// unbatched engine: Layer.send degenerates to machine.Node.Send.

// batchPerMsgBytes is the per-record framing inside a batch: a short
// kind/length tag replacing the full packet header of a standalone send.
const batchPerMsgBytes = 2

// batchHeaderSave is the wire saving per coalesced record: each record drops
// its own packet header, keeping only the tag.
const batchHeaderSave = packetHeaderBytes - batchPerMsgBytes

// DefaultBatchBytes caps a batch's payload when batching is enabled with a
// zero byte budget.
const DefaultBatchBytes = 512

// batcher is the machine-wide batching state: one lazily allocated linkBatch
// per (src, dst) pair that actually communicates. All per-link state is
// touched only from the sender's event lane, keeping ParallelRun safe.
type batcher struct {
	l        *Layer
	window   sim.Time
	maxBytes int
	links    [][]*linkBatch // [src][dst]; inner slices allocated on first use
}

func newBatcher(l *Layer, window sim.Time, maxBytes int) *batcher {
	if maxBytes <= 0 {
		maxBytes = DefaultBatchBytes
	}
	return &batcher{
		l:        l,
		window:   window,
		maxBytes: maxBytes,
		links:    make([][]*linkBatch, l.rt.Nodes()),
	}
}

// linkBatch accumulates outbound records for one (src, dst) link until the
// window timer fires or the byte budget fills.
type linkBatch struct {
	b          *batcher
	mn         *machine.Node // sending node
	dst        int
	pkts       []*machine.Packet // pending records, in enqueue (= seq) order
	bytes      int               // sum of the records' standalone wire sizes
	firstClock sim.Time          // sender clock when the batch was opened
	maxClock   sim.Time          // latest sender clock among enqueued records
	timer      sim.Timer
	flushFn    func()
}

func (b *batcher) link(mn *machine.Node, dst int) *linkBatch {
	row := b.links[mn.ID]
	if row == nil {
		row = make([]*linkBatch, len(b.links))
		b.links[mn.ID] = row
	}
	lb := row[dst]
	if lb == nil {
		lb = &linkBatch{b: b, mn: mn, dst: dst}
		lb.flushFn = lb.flush
		row[dst] = lb
	}
	return lb
}

// enqueue defers pkt into the link's open batch, opening one (and arming its
// flush timer) if the link was idle.
func (b *batcher) enqueue(mn *machine.Node, pkt *machine.Packet) {
	lb := b.link(mn, pkt.Dst)
	// The window bounds the spread of the records' *write clocks*, not just
	// the flush timer: a long method body advances the processor clock far
	// beyond the lane's event time, and its flush timer cannot fire until the
	// event completes. Without this check every send of the body would share
	// one batch no matter how far apart the records were actually written.
	if len(lb.pkts) > 0 && mn.Clock > lb.firstClock+b.window {
		lb.flush()
	}
	if len(lb.pkts) == 0 {
		lb.firstClock = mn.Clock
		lb.maxClock = 0
		// The flush fires just after the writing event completes (the
		// sender's clock may run far ahead of its lane inside a method
		// body, so the deadline is measured from the record's write clock).
		// Holding the batch open for the full window instead would tax
		// every lone record with the window as pure latency; the records
		// worth coalescing are written close together in one body, and all
		// of those are enqueued before this timer can fire. The departure
		// is backdated to the last record's write clock in flush, so a
		// lone record leaves (virtually) when an unbatched send would
		// have. A timer left pending by an earlier flush of this link is
		// an earlier-than-window deadline; re-arming a pending timer is
		// illegal, and an early flush is merely conservative.
		if !lb.timer.Pending() {
			d := sim.Time(1)
			if ahead := mn.Clock - mn.EventNow(); ahead > 0 {
				d += ahead
			}
			b.l.m.Eng.StartTimer(mn.Lane(), mn.Lane(), &lb.timer, d, lb.flushFn)
		}
	}
	lb.pkts = append(lb.pkts, pkt)
	lb.bytes += pkt.Size
	if mn.Clock > lb.maxClock {
		lb.maxClock = mn.Clock
	}
	if lb.bytes >= b.maxBytes {
		lb.flush()
	}
}

// flush launches the open batch. It runs from the window timer or a
// byte-budget overflow; a timer firing on an already-flushed link is a no-op.
func (lb *linkBatch) flush() {
	n := len(lb.pkts)
	if n == 0 {
		return
	}
	mn := lb.mn
	l := lb.b.l
	if mn.Down(mn.EventNow()) {
		// The sender crashed with this batch open: a dead node launches
		// nothing. The records stay queued; the restart's global restore
		// tears the batch down and replays what the restored cut still owes.
		return
	}
	// The batch departs when assembly completes: after the last record was
	// written, and no earlier than the deadline event itself. The launch is
	// the message controller's work, so no processor time is charged here —
	// each record's software cost was charged at its original send.
	at := lb.maxClock
	if ev := mn.EventNow(); ev > at {
		at = ev
	}
	if n == 1 {
		// A lone record gains nothing from framing: it departs as the
		// ordinary packet it already is, just window-delayed. It still
		// carries any acknowledgments owed to its destination — request/
		// reply traffic rarely fills a batch, but almost always has a
		// reverse-direction data packet for the ack to ride.
		p := lb.pkts[0]
		lb.reset()
		if l.rel != nil {
			p.Size += l.rel.piggybackOnPacket(mn, p, at)
		}
		mn.ControllerSend(at, p)
		return
	}
	wb := l.acquireBatch(mn.ID)
	wb.pkts = append(wb.pkts, lb.pkts...)
	size := packetHeaderBytes + lb.bytes - n*batchHeaderSave
	lb.reset()
	if l.rel != nil {
		// A reverse-direction batch carries any acknowledgments this node
		// owes the destination for free (plus a few bytes of framing).
		size += l.rel.piggybackAck(mn, lb.dst, wb, at)
	}
	pkt := mn.AcquirePacket()
	pkt.Dst = lb.dst
	pkt.Size = size
	pkt.Category = CatBatch
	pkt.Msgs = n
	pkt.Payload = wb
	pkt.OnArrive = l.hBatchArr
	pkt.Handler = l.hBatchDel
	c := &l.rt.NodeRT(mn.ID).C
	c.BatchesSent++
	c.BatchedMsgs += uint64(n)
	l.tracef(at, mn.ID, trace.EvBatch, "batch of %d records to n%d (%dB)", n, lb.dst, size)
	mn.ControllerSend(at, pkt)
}

func (lb *linkBatch) reset() {
	for i := range lb.pkts {
		lb.pkts[i] = nil
	}
	lb.pkts = lb.pkts[:0]
	lb.bytes = 0
}

// wireBatch is the payload of a CatBatch packet: the coalesced records in
// enqueue order, plus an optional piggybacked cumulative acknowledgment.
// Containers are pooled like wireMsg records: the sender fills one from its
// node's free list, the receiver recycles it into its own.
type wireBatch struct {
	pkts []*machine.Packet
	// Piggybacked ack (for the reliable layer): the batch source
	// acknowledges every seq < ackCum plus the listed out-of-order seqs on
	// the reverse (batch destination -> batch source) data link.
	hasAck bool
	ackCum uint64
	ackSel []uint64
}

func (l *Layer) acquireBatch(src int) *wireBatch {
	ns := l.nodes[src]
	if last := len(ns.batchFree) - 1; last >= 0 {
		wb := ns.batchFree[last]
		ns.batchFree[last] = nil
		ns.batchFree = ns.batchFree[:last]
		return wb
	}
	return &wireBatch{}
}

func (l *Layer) releaseBatch(dst int, wb *wireBatch) {
	wb.pkts = wb.pkts[:0]
	wb.hasAck = false
	wb.ackCum = 0
	wb.ackSel = wb.ackSel[:0]
	ns := l.nodes[dst]
	ns.batchFree = append(ns.batchFree, wb)
}

// handleBatchArrive runs at the destination's message controller the moment
// the batch lands: the piggybacked ack is processed and every record's
// controller hook (the reliable layer's ack generation) fires, exactly as if
// the record had arrived as its own packet at the same instant.
func (l *Layer) handleBatchArrive(rn *machine.Node, p *machine.Packet) {
	wb := p.Payload.(*wireBatch)
	if wb.hasAck {
		l.rel.ackCumReceived(rn, p.Src, wb.ackCum, wb.ackSel)
	}
	for _, sub := range wb.pkts {
		sub.Src = p.Src
		sub.Arrival = p.Arrival
		if sub.OnArrive != nil {
			sub.OnArrive(rn, sub)
		}
	}
}

// handleBatchDeliver runs at poll time: every record's software handler runs
// in enqueue order. The processor pays full extraction for the first record
// (header parse, buffer management) and the reduced BatchRecvExtract for the
// rest; the discount is applied inside handleWire via the node's batchPos
// cursor.
func (l *Layer) handleBatchDeliver(rn *machine.Node, p *machine.Packet) {
	wb := p.Payload.(*wireBatch)
	ns := l.nodes[rn.ID]
	// Recycling the records and the container is only safe when the fault
	// model cannot have handed out a duplicate copy sharing this payload;
	// under faults — and under optimistic execution, where a rollback may
	// replay the delivery — both are left to the garbage collector.
	recycle := l.m.Faults() == nil && !l.optim
	for i, sub := range wb.pkts {
		ns.batchPos = i + 1
		if sub.Handler != nil {
			sub.Handler(rn, sub)
		}
		if recycle {
			rn.ReleasePacket(sub)
			wb.pkts[i] = nil
		}
	}
	ns.batchPos = 0
	if recycle {
		l.releaseBatch(rn.ID, wb)
	}
}

// send puts pkt on the physical wire: deferred into the destination link's
// open batch when batching is enabled, transmitted immediately otherwise.
// The boolean reports deferral, in which case the arrival time is not yet
// known (zero).
func (l *Layer) send(mn *machine.Node, pkt *machine.Packet) (sim.Time, bool) {
	if l.bat != nil && pkt.Dst != mn.ID {
		l.bat.enqueue(mn, pkt)
		return 0, true
	}
	return mn.Send(pkt), false
}

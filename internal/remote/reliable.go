package remote

import (
	"fmt"
	"slices"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Reliable delivery over a faulty interconnect.
//
// The paper assumes the AP1000's hardware delivers every packet exactly once
// and in per-link FIFO order, and the whole runtime above (message
// transmission, chunk-stock refill, reply delivery, migration) leans on that
// guarantee. When the machine injects link faults, this file restores the
// same contract in software so no method-body code changes:
//
//   - every data packet (categories 1-4) carries a per-(src,dst) sequence
//     number (relHeaderBytes on the wire);
//   - the sender keeps the packet until acknowledged, retransmitting on an
//     exponential-backoff timer in virtual time;
//   - the receiver acknowledges every copy it sees, suppresses duplicates,
//     and holds out-of-order arrivals until the gap fills, delivering
//     strictly in sequence order per link.
//
// Acks are plain packets (category 5) outside the protocol: a lost ack is
// repaired by the data retransmission it fails to cancel, and a duplicated
// ack is idempotent at the sender. In-order delivery means the handlers
// above observe exactly the fault-free machine's semantics — only timing
// and packet counts differ.
//
// With Options.AckDelay set, per-copy acks are replaced by *cumulative*
// acknowledgments: the receiver's controller records which sequence numbers
// have physically arrived per inbound link and, on a delayed-ack timer (or
// piggybacked on a reverse-direction batch), tells the sender "everything
// below cum has arrived, plus these out-of-order seqs". Dedup, reordering
// and retransmission semantics are unchanged — only the ack traffic shrinks.

// relHeaderBytes models the sequence number + flags added to every reliable
// data packet.
const relHeaderBytes = 8

// ackBytes is the wire size of an acknowledgment packet.
const ackBytes = packetHeaderBytes + 8

// maxSelAcks caps the selective (out-of-order) seq list carried by one
// cumulative acknowledgment; arrivals beyond the cap are re-acked by a later
// ack or repaired by retransmission.
const maxSelAcks = 32

// relMsg is one unacknowledged in-flight message at its sender. Records are
// pooled per sender: the retransmission timer is embedded (re-armed in place,
// never reallocated) and retryFn is built once, on first allocation.
type relMsg struct {
	dst      int
	seq      uint64
	size     int // wire size including relHeaderBytes
	category int
	inner    func(*machine.Node, *machine.Packet)
	payload  any // forwarded to every attempt's packet
	attempts int
	acked    bool
	timer    sim.Timer
	retryFn  func()
}

// relSender is the per-node sending half: sequence counters, the
// retransmission buffer, and the relMsg recycling pool.
type relSender struct {
	nextSeq []uint64             // per destination
	pending []map[uint64]*relMsg // per destination: seq -> in-flight message

	free []*relMsg // reusable records whose timer slot is resolved
	// retired holds acknowledged records whose stopped timer slot is still
	// queued in the lane heap; they migrate to free once the slot is popped
	// or swept (re-arming a still-queued timer is illegal).
	retired []*relMsg

	// scratch collects the pending seqs a cumulative ack covers, sorted
	// before completion so recycling and tracing stay deterministic (map
	// iteration order must never leak into event order).
	scratch []uint64

	// noPool disables record recycling (optimistic execution): a rollback
	// restores in-flight records through their original pointers, which a
	// speculative release-and-reuse would alias to a different message.
	noPool bool
}

// acquireMsg returns a recycled relMsg or allocates one with its retry
// closure bound to this sender's node.
func (r *reliable) acquireMsg(mn *machine.Node, s *relSender) *relMsg {
	if s.noPool {
		m := &relMsg{}
		m.retryFn = func() { r.retry(mn, m) }
		return m
	}
	if len(s.retired) > 0 {
		kept := s.retired[:0]
		for _, m := range s.retired {
			if m.timer.Pending() {
				kept = append(kept, m)
			} else {
				s.free = append(s.free, m)
			}
		}
		for i := len(kept); i < len(s.retired); i++ {
			s.retired[i] = nil
		}
		s.retired = kept
	}
	if n := len(s.free); n > 0 {
		m := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return m
	}
	m := &relMsg{}
	m.retryFn = func() { r.retry(mn, m) }
	return m
}

// releaseMsg recycles a finished (acked or abandoned) record.
func (s *relSender) releaseMsg(m *relMsg) {
	m.inner = nil
	m.payload = nil
	if s.noPool {
		return
	}
	if m.timer.Pending() {
		s.retired = append(s.retired, m)
		return
	}
	s.free = append(s.free, m)
}

// relReceiver is the per-node receiving half: per-source cursor and reorder
// buffer.
type relReceiver struct {
	nextExpected []uint64                   // per source
	held         []map[uint64]*heldDelivery // per source: seq -> waiting copy
}

type heldDelivery struct {
	inner func(*machine.Node, *machine.Packet)
	pkt   *machine.Packet
}

// reliable is the machine-wide protocol state (one instance per Layer; all
// access happens on the simulation goroutine).
type reliable struct {
	l           *Layer
	rto         sim.Time
	maxBackoff  sim.Time
	maxAttempts int
	ackDelay    sim.Time // > 0 enables cumulative delayed acks
	senders     []*relSender
	receivers   []*relReceiver
	acks        []*ackState // per node; nil unless ackDelay > 0
}

func newReliable(l *Layer) *reliable {
	n := l.rt.Nodes()
	r := &reliable{
		l:           l,
		rto:         l.opt.RetryTimeout,
		maxBackoff:  l.opt.MaxBackoff,
		maxAttempts: l.opt.MaxAttempts,
		senders:     make([]*relSender, n),
		receivers:   make([]*relReceiver, n),
	}
	if r.rto <= 0 {
		r.rto = DefaultRetryTimeout
	}
	if r.maxBackoff < r.rto {
		r.maxBackoff = DefaultMaxBackoff
	}
	if r.maxAttempts <= 0 {
		r.maxAttempts = DefaultMaxAttempts
	}
	for i := 0; i < n; i++ {
		r.senders[i] = &relSender{
			nextSeq: make([]uint64, n),
			pending: make([]map[uint64]*relMsg, n),
		}
		r.receivers[i] = &relReceiver{
			nextExpected: make([]uint64, n),
			held:         make([]map[uint64]*heldDelivery, n),
		}
	}
	if l.opt.AckDelay > 0 {
		r.ackDelay = l.opt.AckDelay
		r.acks = make([]*ackState, n)
		for i := 0; i < n; i++ {
			r.acks[i] = newAckState(r, l.m.Node(i), n)
		}
	}
	return r
}

// send assigns the next sequence number on the (src, dst) link, records the
// message as in-flight, and transmits the first copy. Same-node packets (the
// machine would loop them back untouched) skip the protocol.
func (r *reliable) send(mn *machine.Node, pkt *machine.Packet) {
	src, dst := mn.ID, pkt.Dst
	if src == dst {
		mn.Send(pkt)
		return
	}
	s := r.senders[src]
	seq := s.nextSeq[dst]
	s.nextSeq[dst]++
	m := r.acquireMsg(mn, s)
	m.dst = dst
	m.seq = seq
	m.size = pkt.Size + relHeaderBytes
	m.category = pkt.Category
	m.inner = pkt.Handler
	m.payload = pkt.Payload
	m.attempts = 0
	m.acked = false
	// Per-attempt copies are built in xmit; the caller's packet is done.
	mn.ReleasePacket(pkt)
	if s.pending[dst] == nil {
		s.pending[dst] = make(map[uint64]*relMsg)
	}
	s.pending[dst][seq] = m
	if r.l.ck != nil {
		r.l.ck.retain(src, dst, seq, m)
	}
	r.l.rt.NodeRT(src).C.RelSent++
	r.xmit(mn, m)
}

// xmit transmits one copy of m and arms the retransmission timer for the
// current attempt.
func (r *reliable) xmit(mn *machine.Node, m *relMsg) {
	src := mn.ID
	seq := m.seq
	// Capture inner locally: a straggler copy of this attempt may arrive
	// after m has been recycled for a different message.
	inner := m.inner
	p := mn.AcquirePacket()
	p.Dst = m.dst
	p.Size = m.size
	p.Category = m.category
	p.Payload = m.payload
	// The receiving message controller acknowledges every physical
	// copy the instant it arrives, independent of how backlogged or
	// paused the receiving processor is.
	p.OnArrive = func(rn *machine.Node, p *machine.Packet) {
		if r.acks != nil {
			r.noteArrival(rn, src, seq)
		} else {
			r.sendAck(rn, src, seq, p.Arrival)
		}
	}
	p.Handler = func(rn *machine.Node, p *machine.Packet) {
		r.receive(rn, src, seq, inner, p)
	}
	arrival, batched := r.l.send(mn, p)
	backoff := r.rto << uint(m.attempts)
	if backoff > r.maxBackoff || backoff <= 0 {
		backoff = r.maxBackoff
	}
	// Time out relative to the copy's scheduled arrival (which includes
	// link queueing), not the send instant — a congested link must not
	// trigger spurious retransmissions. A dropped copy times out from now.
	// Delayed acks and batching defer the acknowledgment further: budget
	// the ack delay, and for a batched copy (whose departure is unknown
	// until its batch flushes) the full window plus the wire latency.
	delay := backoff + r.ackDelay
	if batched {
		// The copy departs with its batch: no later than the record's write
		// clock plus the window (the batcher bounds the clock spread), plus
		// the wire time of a full batch as a conservative transit bound.
		delay += r.l.bat.window + r.l.m.Cfg.Net.Latency(mn.Hops(m.dst), r.l.bat.maxBytes)
		if ahead := mn.Clock - mn.EventNow(); ahead > 0 {
			delay += ahead
		}
	} else if now := mn.EventNow(); arrival > now {
		delay += arrival - now
	}
	r.l.m.Eng.StartTimer(mn.Lane(), mn.Lane(), &m.timer, delay, m.retryFn)
}

// retry fires when the ack timer expires: retransmit with backoff, or
// abandon the message past the attempt limit.
func (r *reliable) retry(mn *machine.Node, m *relMsg) {
	if m.acked {
		return
	}
	if mn.Down(mn.EventNow()) {
		// The sender is inside a crash outage: a dead node transmits nothing.
		// The record stays pending; the restart's global restore re-pends and
		// retransmits everything the restored cut still owes.
		return
	}
	c := &r.l.rt.NodeRT(mn.ID).C
	if m.attempts+1 >= r.maxAttempts {
		// Give up loudly: the message counts as lost so scenario assertions
		// and LostMessages() surface it.
		c.RelAbandoned++
		s := r.senders[mn.ID]
		delete(s.pending[m.dst], m.seq)
		r.l.tracef(mn.EventNow(), mn.ID, trace.EvRetry,
			"abandon seq %d to n%d after %d attempts", m.seq, m.dst, r.maxAttempts)
		s.releaseMsg(m)
		return
	}
	m.attempts++
	c.Retransmits++
	// The timer expired on a possibly idle node: bring its clock up to the
	// timeout instant, then charge the software cost of the retransmission.
	mn.SyncClock(mn.EventNow())
	mn.Charge(r.l.cost().RemoteSendSetup)
	if np := r.l.prof(mn.ID); np != nil {
		np.ChargeInstr(profile.Retransmit, r.l.cost().RemoteSendSetup, mn.Now())
		np.Packet(profile.Retransmit, m.size, mn.Now())
	}
	r.l.tracef(mn.Now(), mn.ID, trace.EvRetry,
		"retransmit seq %d to n%d (attempt %d)", m.seq, m.dst, m.attempts+1)
	r.xmit(mn, m)
}

// receive runs at the receiver for every delivered copy of a data packet:
// always acknowledge, suppress duplicates, and deliver in sequence order.
func (r *reliable) receive(rn *machine.Node, src int, seq uint64, inner func(*machine.Node, *machine.Packet), pkt *machine.Packet) {
	rv := r.receivers[rn.ID]
	c := &r.l.rt.NodeRT(rn.ID).C

	next := rv.nextExpected[src]
	switch {
	case seq < next:
		c.DupSuppressed++
		r.l.tracef(rn.Now(), rn.ID, trace.EvDupMsg, "drop dup seq %d from n%d", seq, src)
		return
	case seq == next:
		r.deliver(rn, c, inner, pkt)
		rv.nextExpected[src]++
		// Flush any consecutive held messages the gap was blocking.
		held := rv.held[src]
		for held != nil {
			h, ok := held[rv.nextExpected[src]]
			if !ok {
				break
			}
			delete(held, rv.nextExpected[src])
			r.deliver(rn, c, h.inner, h.pkt)
			rv.nextExpected[src]++
		}
	default: // seq > next: a gap — hold for in-order delivery
		if rv.held[src] == nil {
			rv.held[src] = make(map[uint64]*heldDelivery)
		}
		if _, dup := rv.held[src][seq]; dup {
			c.DupSuppressed++
			r.l.tracef(rn.Now(), rn.ID, trace.EvDupMsg, "drop dup held seq %d from n%d", seq, src)
			return
		}
		// The packet outlives this handler; keep it out of the pool.
		pkt.Retain()
		rv.held[src][seq] = &heldDelivery{inner: inner, pkt: pkt}
		c.HeldOutOfOrder++
		r.l.tracef(rn.Now(), rn.ID, trace.EvHold,
			"hold seq %d from n%d (awaiting %d)", seq, src, next)
	}
}

// deliver hands one in-order message to its attached handler.
func (r *reliable) deliver(rn *machine.Node, c *stats.Counters, inner func(*machine.Node, *machine.Packet), pkt *machine.Packet) {
	c.RelDelivered++
	inner(rn, pkt)
}

// sendAck transmits a category-5 acknowledgment for (src link, seq) back to
// the sender. Acks are generated and consumed by the message controllers —
// they occupy wire bandwidth but no processor time — and ride the faulty
// interconnect unprotected: a lost ack is repaired by the data
// retransmission it fails to cancel, a duplicated ack is idempotent.
func (r *reliable) sendAck(rn *machine.Node, src int, seq uint64, at sim.Time) {
	rcv := rn.ID
	r.l.rt.NodeRT(rcv).C.AcksSent++
	if np := r.l.prof(rcv); np != nil {
		np.Packet(profile.Ack, ackBytes, at)
	}
	rn.ControllerSend(at, &machine.Packet{
		Dst:      src,
		Size:     ackBytes,
		Category: CatAck,
		Ctrl:     true,
		OnArrive: func(sn *machine.Node, p *machine.Packet) {
			r.ackReceived(sn, rcv, seq)
		},
	})
}

// ackState is one node's delayed-acknowledgment ledger: which sequence
// numbers have physically arrived on each inbound link, and which arrivals
// still owe their sender an acknowledgment. All state is touched only on
// the receiving node's lane.
type ackState struct {
	r         *reliable
	rn        *machine.Node
	cum       []uint64   // per source: every seq < cum has arrived here
	above     [][]uint64 // per source: sorted arrived seqs beyond a gap
	owed      []int      // per source: arrivals not yet acknowledged
	owedSince []sim.Time // per source: arrival time of the first owed copy
	owedTo    []int      // sources with owed arrivals, in first-owed order
	timer     sim.Timer
	fireFn    func()
}

func newAckState(r *reliable, rn *machine.Node, n int) *ackState {
	a := &ackState{
		r:         r,
		rn:        rn,
		cum:       make([]uint64, n),
		above:     make([][]uint64, n),
		owed:      make([]int, n),
		owedSince: make([]sim.Time, n),
	}
	a.fireFn = a.flush
	return a
}

// noteArrival records the controller-level arrival of seq on the src link
// and schedules a cumulative acknowledgment instead of acking the copy
// immediately. Runs in the data packet's OnArrive hook.
func (r *reliable) noteArrival(rn *machine.Node, src int, seq uint64) {
	a := r.acks[rn.ID]
	switch {
	case seq == a.cum[src]:
		a.cum[src]++
		ab := a.above[src]
		for len(ab) > 0 && ab[0] == a.cum[src] {
			ab = ab[1:]
			a.cum[src]++
		}
		a.above[src] = ab
	case seq > a.cum[src]:
		if i, ok := slices.BinarySearch(a.above[src], seq); !ok {
			a.above[src] = slices.Insert(a.above[src], i, seq)
		}
		// seq < cum: a duplicate copy; the pending cumulative ack covers it.
	}
	if a.owed[src] == 0 {
		a.owedTo = append(a.owedTo, src)
		a.owedSince[src] = rn.EventNow()
	}
	a.owed[src]++
	if !a.timer.Pending() {
		r.l.m.Eng.StartTimer(rn.Lane(), rn.Lane(), &a.timer, r.ackDelay, a.fireFn)
	}
}

// flush emits the owed acknowledgments of every inbound link whose delay has
// elapsed. It fires on the delayed-ack timer; links already covered by a
// piggybacked ack since the timer was armed are skipped, and links whose
// first owed arrival is more recent than the ack delay keep waiting (the
// timer re-arms for the earliest of them), preserving each link's full
// coalescing and piggybacking window.
func (a *ackState) flush() {
	now := a.rn.EventNow()
	if a.rn.Down(now) {
		// Dead controllers acknowledge nothing; the crash discarded the owed
		// arrivals along with the rest of the node, and the restore resets
		// this ledger from the restored cursors.
		return
	}
	kept := a.owedTo[:0]
	var nextDue sim.Time = -1
	for _, src := range a.owedTo {
		if a.owed[src] == 0 {
			continue
		}
		due := a.owedSince[src] + a.r.ackDelay
		if due <= now {
			a.emit(src, now)
			continue
		}
		kept = append(kept, src)
		if nextDue < 0 || due < nextDue {
			nextDue = due
		}
	}
	a.owedTo = kept
	if nextDue >= 0 {
		a.r.l.m.Eng.StartTimer(a.rn.Lane(), a.rn.Lane(), &a.timer, nextDue-now, a.fireFn)
	}
}

// emit sends one cumulative acknowledgment packet for the src link,
// replacing owed-1 individual ack packets. Like per-copy acks it is
// controller traffic: wire bandwidth, no processor time.
func (a *ackState) emit(src int, at sim.Time) {
	r := a.r
	rcv := a.rn.ID
	cum := a.cum[src]
	var sel []uint64
	if ab := a.above[src]; len(ab) > 0 {
		k := len(ab)
		if k > maxSelAcks {
			k = maxSelAcks
		}
		sel = append([]uint64(nil), ab[:k]...)
	}
	owed := a.owed[src]
	a.owed[src] = 0
	c := &r.l.rt.NodeRT(rcv).C
	c.AcksSent++
	if np := r.l.prof(rcv); np != nil {
		np.Packet(profile.Ack, ackBytes+8*len(sel), at)
	}
	if owed > 1 {
		c.AcksCoalesced += uint64(owed - 1)
		r.l.tracef(at, rcv, trace.EvAckCoalesce,
			"cum ack %d to n%d covers %d arrivals", cum, src, owed)
	}
	a.rn.ControllerSend(at, &machine.Packet{
		Dst:      src,
		Size:     ackBytes + 8*len(sel),
		Category: CatAck,
		Ctrl:     true,
		OnArrive: func(sn *machine.Node, p *machine.Packet) {
			r.ackCumReceived(sn, rcv, cum, sel)
		},
	})
}

// piggybackAck attaches the acknowledgments this node owes dst to a
// reverse-direction batch departing at the given instant, replacing the owed
// standalone ack packets entirely. It returns the extra wire bytes the ack
// contributes.
func (r *reliable) piggybackAck(mn *machine.Node, dst int, wb *wireBatch, at sim.Time) int {
	if r.acks == nil {
		return 0
	}
	a := r.acks[mn.ID]
	owed := a.owed[dst]
	if owed == 0 || at > a.owedSince[dst]+r.ackDelay {
		// See piggybackOnPacket: a late-departing carrier must not steal
		// acks the standalone timer would deliver sooner.
		return 0
	}
	a.owed[dst] = 0
	wb.hasAck = true
	wb.ackCum = a.cum[dst]
	if ab := a.above[dst]; len(ab) > 0 {
		k := len(ab)
		if k > maxSelAcks {
			k = maxSelAcks
		}
		wb.ackSel = append(wb.ackSel[:0], ab[:k]...)
	}
	c := &r.l.rt.NodeRT(mn.ID).C
	c.AcksCoalesced += uint64(owed)
	if np := r.l.prof(mn.ID); np != nil {
		np.PacketBytes(profile.Ack, 8+8*len(wb.ackSel))
	}
	r.l.tracef(mn.EventNow(), mn.ID, trace.EvAckCoalesce,
		"piggyback ack %d on batch to n%d covers %d arrivals", wb.ackCum, dst, owed)
	return 8 + 8*len(wb.ackSel)
}

// piggybackOnPacket attaches the acknowledgments this node owes the packet's
// destination onto a lone outbound packet (the degenerate one-record batch)
// departing at the given instant, chaining the packet's arrival hook and
// growing its wire size by the ack framing. Like piggybackAck it replaces the
// owed standalone ack packets.
func (r *reliable) piggybackOnPacket(mn *machine.Node, p *machine.Packet, at sim.Time) int {
	if r.acks == nil {
		return 0
	}
	a := r.acks[mn.ID]
	dst := p.Dst
	owed := a.owed[dst]
	if owed == 0 || at > a.owedSince[dst]+r.ackDelay {
		// Nothing owed, or the carrier departs later than the standalone
		// delayed ack would: stealing the owed acks here would stretch the
		// ack latency past the bound the retransmission timeout budgets.
		return 0
	}
	a.owed[dst] = 0
	cum := a.cum[dst]
	var sel []uint64
	if ab := a.above[dst]; len(ab) > 0 {
		k := len(ab)
		if k > maxSelAcks {
			k = maxSelAcks
		}
		sel = append([]uint64(nil), ab[:k]...)
	}
	c := &r.l.rt.NodeRT(mn.ID).C
	c.AcksCoalesced += uint64(owed)
	if np := r.l.prof(mn.ID); np != nil {
		np.PacketBytes(profile.Ack, 8+8*len(sel))
	}
	r.l.tracef(mn.EventNow(), mn.ID, trace.EvAckCoalesce,
		"piggyback ack %d on packet to n%d covers %d arrivals", cum, dst, owed)
	rcv := mn.ID
	orig := p.OnArrive
	p.OnArrive = func(sn *machine.Node, pk *machine.Packet) {
		r.ackCumReceived(sn, rcv, cum, sel)
		if orig != nil {
			orig(sn, pk)
		}
	}
	return 8 + 8*len(sel)
}

// ackCumReceived completes every pending message a cumulative ack covers:
// all seqs below cum on the (sender -> rcv) link plus the selectively
// listed out-of-order arrivals.
func (r *reliable) ackCumReceived(sn *machine.Node, rcv int, cum uint64, sel []uint64) {
	s := r.senders[sn.ID]
	if pending := s.pending[rcv]; len(pending) > 0 {
		scratch := s.scratch[:0]
		for seq := range pending {
			if seq < cum {
				scratch = append(scratch, seq)
			}
		}
		slices.Sort(scratch)
		for _, seq := range scratch {
			r.ackReceived(sn, rcv, seq)
		}
		s.scratch = scratch[:0]
	}
	for _, seq := range sel {
		r.ackReceived(sn, rcv, seq)
	}
}

// ackReceived runs at the sender's message controller: it marks (dst, seq)
// delivered and cancels the retransmission timer. Duplicate and stale acks
// are idempotent.
func (r *reliable) ackReceived(sn *machine.Node, dst int, seq uint64) {
	s := r.senders[sn.ID]
	pending := s.pending[dst]
	m := pending[seq]
	if m == nil || m.acked {
		return
	}
	m.acked = true
	m.timer.Stop()
	delete(pending, seq)
	s.releaseMsg(m)
	r.l.tracef(sn.EventNow(), sn.ID, trace.EvAck, "acked seq %d by n%d", seq, dst)
}

// Unacked reports the number of in-flight (sent but unacknowledged)
// messages across all nodes — zero at quiescence unless messages were
// abandoned.
func (r *reliable) Unacked() int {
	total := 0
	for _, s := range r.senders {
		for _, p := range s.pending {
			total += len(p)
		}
	}
	return total
}

// String describes the protocol configuration.
func (r *reliable) String() string {
	s := fmt.Sprintf("reliable{rto=%v maxBackoff=%v maxAttempts=%d", r.rto, r.maxBackoff, r.maxAttempts)
	if r.ackDelay > 0 {
		s += fmt.Sprintf(" ackDelay=%v", r.ackDelay)
	}
	return s + "}"
}

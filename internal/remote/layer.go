package remote

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Handler categories (Section 5.1), recorded on packets for statistics.
const (
	CatMessage = 1 // normal message transmission between objects
	CatCreate  = 2 // request for remote object creation
	CatChunk   = 3 // reply to remote memory allocation request
	CatService = 4 // other services (load info is piggybacked instead)
	CatAck     = 5 // reliable-delivery acknowledgment (not in the paper)
	CatBatch   = 6 // multi-record hardware packet (per-link batching)
	CatCkpt    = 7 // checkpoint-protocol control (markers, snapshot acks)
)

// packetHeaderBytes models the paper's compact message format: "a total of
// 4 words including routing information, the mail address of the receiver
// object and the message argument" — routing plus handler address fit in
// 8 bytes, the receiver address and arguments are accounted separately.
const packetHeaderBytes = 8

// Options configures the inter-node layer.
type Options struct {
	// StockDepth is the number of pre-delivered chunks kept per
	// (target node, class) pair. Zero disables the stock entirely, forcing
	// every remote creation through a blocking round trip (the ablation
	// baseline for the paper's latency-hiding scheme).
	StockDepth int
	// Placement picks creation targets; nil means RoundRobin.
	Placement Placement
	// Seed initializes the deterministic per-node generators used by
	// randomized placement policies.
	Seed int64

	// Reliable enables the acknowledgment/retry protocol: every inter-node
	// packet carries a per-link sequence number, is retransmitted with
	// exponential backoff until acknowledged, and is deduplicated and
	// delivered in per-link FIFO order at the receiver. Required when the
	// machine injects link faults; off by default because the paper's
	// AP1000 interconnect is reliable and the protocol adds ack traffic.
	Reliable bool
	// RetryTimeout is the base acknowledgment timeout before the first
	// retransmission; it doubles per attempt up to MaxBackoff. Zero selects
	// DefaultRetryTimeout.
	RetryTimeout sim.Time
	// MaxBackoff caps the exponential backoff. Zero selects
	// DefaultMaxBackoff.
	MaxBackoff sim.Time
	// MaxAttempts bounds retransmissions per message; beyond it the message
	// is abandoned (counted in Counters.RelAbandoned, never silently).
	// Zero selects DefaultMaxAttempts.
	MaxAttempts int
	// Trace, when non-nil, receives reliable-delivery events (retries,
	// acks, duplicate suppression, reorder holds).
	Trace trace.Sink
	// Prof, when non-nil, receives per-path attribution for the layer's
	// instruction charges and wire records.
	Prof *profile.Profiler

	// BatchWindow enables per-link packet batching: wire records to the
	// same destination node within this virtual-time window coalesce into
	// one hardware packet, amortising the fixed launch latency. Zero
	// disables batching, keeping the wire path byte-identical to the
	// unbatched engine.
	BatchWindow sim.Time
	// BatchMaxBytes flushes an open batch early once its payload reaches
	// this size; zero selects DefaultBatchBytes.
	BatchMaxBytes int
	// AckDelay replaces the reliable layer's per-copy acknowledgments with
	// cumulative acks emitted on a delayed-ack timer and piggybacked on
	// reverse-direction batches. Effective only with Reliable; zero keeps
	// immediate per-packet acks.
	AckDelay sim.Time
	// LoadHorizon makes load-based placement ignore piggybacked load
	// samples older than this; zero keeps samples forever (the historical
	// behaviour).
	LoadHorizon sim.Time
	// NoLocationCache disables the remote-location cache that
	// short-circuits migration forwarders. The cache is on by default: it
	// is inert until an object migrates.
	NoLocationCache bool
}

// Reliable-delivery protocol defaults. The base timeout covers a small
// message's round trip (~2×1.5µs hardware + ~9µs software each way) with
// headroom for queueing at a loaded receiver.
const (
	DefaultRetryTimeout sim.Time = 60 * sim.Microsecond
	DefaultMaxBackoff   sim.Time = 2 * sim.Millisecond
	DefaultMaxAttempts           = 64
)

// DefaultOptions returns the configuration used by the paper-style runs.
func DefaultOptions() Options {
	return Options{StockDepth: 2, Placement: RoundRobin{}, Seed: 1}
}

// Layer is the inter-node runtime: it implements core.Remote and owns the
// chunk stocks and placement state of every node.
type Layer struct {
	rt    *core.Runtime
	m     *machine.Machine
	opt   Options
	nodes []*nodeState
	rel   *reliable  // nil unless Options.Reliable
	bat   *batcher   // nil unless Options.BatchWindow > 0
	ck    *ckptState // nil unless EnableCheckpoint was called
	locOn bool       // remote-location cache enabled
	optim bool       // optimistic-execution mode (see optimistic.go)

	// hWire is the shared receive handler for all layer packets; the
	// per-send state travels in the packet's Payload as a *wireMsg instead
	// of a freshly allocated closure. hBatchArr/hBatchDel are the shared
	// controller and poll handlers of CatBatch containers.
	hWire     func(*machine.Node, *machine.Packet)
	hBatchArr func(*machine.Node, *machine.Packet)
	hBatchDel func(*machine.Node, *machine.Packet)
}

// wireMsg is the decoded payload of one layer packet. Records are pooled:
// the sender fills one from its node's free list, the receive handler
// recycles it into the receiving node's — they migrate between per-node
// pools exactly like the packets that carry them, so each pool is only
// touched by its own lane. Recycling is skipped when the machine can
// duplicate packets (see wirePooled): a duplicated packet shares the record
// and the handler runs once per copy.
type wireMsg struct {
	kind      uint8
	src       int
	load      int32
	to        core.Address   // wmMessage: receiver
	pat       core.PatternID // wmMessage: pattern
	args      []core.Value   // message or constructor arguments (owned copy)
	argBuf    [2]core.Value  // inline store backing args for small lists
	replyTo   core.Address
	chunk     *core.Object // wmCreate: chunk to initialize; wmChunk: stock refill
	cl        *core.Class
	entry     *stockEntry        // requester's stock slot, carried through the round trip
	then      func()             // wmChunk: blocked-creation resume
	onCreated func(core.Address) // wmBlockingCreate: requester callback
}

const (
	wmMessage = uint8(iota + 1)
	wmCreate
	wmBlockingCreate
	wmChunk
	wmLocUpd // location update: `to` moved to `replyTo` (forward short-circuit)
	wmCkpt   // checkpoint-protocol control: `then` runs at the receiver
)

// setArgs copies args into the record — inline when they fit, a fresh slice
// otherwise. Senders hand the layer a transient slice (core.Remote's
// SendMessage contract stages arguments in a per-node scratch buffer), so
// the record must own its copy until delivery.
func (w *wireMsg) setArgs(args []core.Value) {
	switch {
	case len(args) == 0:
		w.args = nil
	case len(args) <= len(w.argBuf):
		nc := copy(w.argBuf[:], args)
		w.args = w.argBuf[:nc:nc]
	default:
		w.args = append([]core.Value(nil), args...)
	}
}

// wirePooled reports whether wireMsg records may be recycled: safe unless a
// fault model can hand a duplicated packet (and its shared Payload record)
// to the handler twice. The reliable protocol deduplicates by sequence
// number before the handler runs, so it restores pooling under faults.
func (l *Layer) wirePooled() bool {
	if l.ck != nil {
		// Checkpoint retention holds payload records by reference until they
		// become stable; recycling would rewrite a record the replay path may
		// still need verbatim.
		return false
	}
	if l.optim {
		// A rollback replays deliveries whose payload records must still
		// hold their original content.
		return false
	}
	return l.m.Faults() == nil || l.rel != nil
}

func (l *Layer) acquireWire(src int) *wireMsg {
	ns := l.nodes[src]
	if last := len(ns.wireFree) - 1; last >= 0 {
		w := ns.wireFree[last]
		ns.wireFree[last] = nil
		ns.wireFree = ns.wireFree[:last]
		return w
	}
	return &wireMsg{}
}

func (l *Layer) releaseWire(dst int, w *wireMsg) {
	if !l.wirePooled() {
		return
	}
	*w = wireMsg{}
	ns := l.nodes[dst]
	ns.wireFree = append(ns.wireFree, w)
}

// handleWire is the single receive-side dispatcher for categories 1-3: the
// compiler-generated specialized handlers of Section 5.1, indexed by the
// payload's kind tag rather than modelled as per-send closures.
func (l *Layer) handleWire(rn *machine.Node, p *machine.Packet) {
	w := p.Payload.(*wireMsg)
	c := l.cost()
	extract := c.RemoteRecvExtract
	if l.nodes[rn.ID].batchPos > 1 {
		// Second-or-later record of a batched packet: the poll, header
		// parse and buffer management were paid by the first record.
		extract = c.BatchRecvExtract
	}
	l.noteLoad(rn.ID, w.src, w.load, p.Arrival)
	nrt := l.rt.NodeRT(rn.ID)
	switch w.kind {
	case wmMessage:
		rn.Charge(extract + c.RemoteHandlerCall)
		l.profCharge(rn, profile.RemoteRecv, extract+c.RemoteHandlerCall)
		if l.locOn {
			if fwd := w.to.Obj.ForwardTarget(); !fwd.IsNil() {
				// Stale address: the object migrated away. Tell the sender
				// where it lives now, then let the forwarder re-send.
				l.advertiseLocation(rn, w.src, w.to, fwd)
			}
		}
		nrt.DeliverFrame(w.to.Obj, nrt.NewFrame(w.pat, w.args, w.replyTo), true)
	case wmCreate:
		rn.Charge(extract + c.RemoteHandlerCall + c.ChunkInit)
		l.profCharge(rn, profile.Create, extract+c.RemoteHandlerCall+c.ChunkInit)
		nrt.SetPath(profile.Create)
		l.rt.InitChunk(nrt, w.chunk, w.cl, w.args)
		// Step 4: allocate the replacement chunk and return its address.
		rn.Charge(c.ChunkRefill)
		l.profCharge(rn, profile.Create, c.ChunkRefill)
		l.sendChunkReply(nrt, w.src, l.rt.NewFaultChunk(rn.ID), w.entry, nil)
	case wmBlockingCreate:
		rn.Charge(extract + c.RemoteHandlerCall + c.ChunkInit)
		l.profCharge(rn, profile.Create, extract+c.RemoteHandlerCall+c.ChunkInit)
		nrt.SetPath(profile.Create)
		created := l.rt.NewFaultChunk(rn.ID)
		l.rt.InitChunk(nrt, created, w.cl, w.args)
		rn.Charge(c.ChunkRefill)
		l.profCharge(rn, profile.Create, c.ChunkRefill)
		addr := created.Addr()
		onCreated := w.onCreated
		l.sendChunkReply(nrt, w.src, l.rt.NewFaultChunk(rn.ID), w.entry, func() { onCreated(addr) })
	case wmLocUpd:
		rn.Charge(extract + c.RemoteHandlerCall)
		l.profCharge(rn, profile.Forward, extract+c.RemoteHandlerCall)
		l.learnLocation(rn, w.to, w.replyTo)
	case wmCkpt:
		rn.Charge(extract + c.RemoteHandlerCall)
		l.profCharge(rn, profile.Ckpt, extract+c.RemoteHandlerCall)
		nrt.SetPath(profile.Ckpt)
		if w.then != nil {
			w.then()
		}
	case wmChunk:
		rn.Charge(extract + c.RemoteHandlerCall + c.StockPush)
		l.profCharge(rn, profile.Create, extract+c.RemoteHandlerCall+c.StockPush)
		nrt.SetPath(profile.Create)
		if l.opt.StockDepth > 0 {
			// The stock is capped at its configured depth: a chunk that
			// would overfill it (after a miss) is simply dropped back to
			// the target's allocator. The entry pointer is the requester's
			// own slot, carried through the round trip — and this packet is
			// addressed to the requester, so the append stays lane-local.
			if e := w.entry; len(e.chunks) < l.opt.StockDepth {
				e.chunks = append(e.chunks, w.chunk)
			}
		}
		if w.then != nil {
			w.then()
		}
	default:
		panic(fmt.Sprintf("remote: unknown wire kind %d", w.kind))
	}
	l.releaseWire(rn.ID, w)
}

// MsgsSent returns the machine-wide count of category-1 sends.
func (l *Layer) MsgsSent() uint64 { return l.sumCounter(0) }

// CreatesSent returns the machine-wide count of category-2 sends.
func (l *Layer) CreatesSent() uint64 { return l.sumCounter(1) }

// ChunksSent returns the machine-wide count of category-3 sends.
func (l *Layer) ChunksSent() uint64 { return l.sumCounter(2) }

func (l *Layer) sumCounter(i int) uint64 {
	var t uint64
	for _, ns := range l.nodes {
		t += ns.sent[i]
	}
	return t
}

type stockKey struct {
	node int
	cls  *core.Class
}

// stockEntry is one node's chunk stock for a (target, class) pair. It is
// looked up once per remote creation; the refill round trip carries the
// entry pointer itself, so the category-2/3 handlers touch no maps.
type stockEntry struct {
	seeded bool
	chunks []*core.Object
}

// stockEntry returns (creating on first use) the stock slot for key.
func (ns *nodeState) stockEntry(key stockKey) *stockEntry {
	e := ns.stock[key]
	if e == nil {
		e = &stockEntry{}
		ns.stock[key] = e
	}
	return e
}

type nodeState struct {
	id     int
	rr     int
	rrNext int
	rng    uint64
	stock  map[stockKey]*stockEntry
	loads  []int32    // last known scheduling-queue lengths, piggybacked
	loadAt []sim.Time // arrival time of each load sample (staleness horizon)
	sent   [3]uint64  // category 1/2/3 sends, node-local (lane-safe)

	wireFree  []*wireMsg   // recycled payload records (lane-local)
	batchFree []*wireBatch // recycled batch containers (lane-local)
	batchPos  int          // 1-based record cursor while delivering a batch

	// Remote-location cache: stale address -> latest known home, filled by
	// wmLocUpd messages from forwarding nodes. advert is the forwarding
	// side: the location last advertised per (sender, migrated object), so
	// each sender is told about each migration generation exactly once.
	locCache map[core.Address]core.Address
	advert   map[advertKey]core.Address
}

type advertKey struct {
	src int
	obj *core.Object
}

func (ns *nodeState) nextRand() uint64 {
	// xorshift64: deterministic, node-local.
	x := ns.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ns.rng = x
	return x
}

// staleLoad makes out-of-horizon samples lose to any fresh information when
// load-based placement compares candidates.
const staleLoad = int(1) << 30

func (ns *nodeState) knownLoad(node int, l *Layer) int {
	if node == ns.id {
		return l.rt.NodeRT(node).SchedQueueLen()
	}
	if h := l.opt.LoadHorizon; h > 0 {
		if at := ns.loadAt[node]; at == 0 || at+h < l.m.Node(ns.id).Now() {
			// No sample inside the horizon: treat the peer as unknown
			// rather than idle, so placement stops chasing stale minima.
			return staleLoad
		}
	}
	return int(ns.loads[node])
}

// Attach builds the layer and installs it into the runtime. Must run before
// the runtime freezes.
func Attach(rt *core.Runtime, opt Options) *Layer {
	if opt.Placement == nil {
		opt.Placement = RoundRobin{}
	}
	l := &Layer{rt: rt, m: rt.M, opt: opt, locOn: !opt.NoLocationCache}
	l.hWire = l.handleWire
	l.nodes = make([]*nodeState, rt.Nodes())
	for i := range l.nodes {
		l.nodes[i] = &nodeState{
			id:     i,
			rng:    uint64(opt.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 1,
			stock:  make(map[stockKey]*stockEntry),
			loads:  make([]int32, rt.Nodes()),
			loadAt: make([]sim.Time, rt.Nodes()),
		}
	}
	if opt.Reliable {
		l.rel = newReliable(l)
	}
	if opt.BatchWindow > 0 {
		l.bat = newBatcher(l, opt.BatchWindow, opt.BatchMaxBytes)
		l.hBatchArr = l.handleBatchArrive
		l.hBatchDel = l.handleBatchDeliver
	}
	if rt.M.Faults() != nil && rt.M.FaultSink() == nil {
		rt.M.SetFaultSink(statsSink{l})
	}
	rt.SetRemote(l)
	return l
}

// statsSink attributes machine-level fault events to the affected node's
// counters and the trace ring. Drops and duplications are charged to the
// sending node; pauses to the paused node.
type statsSink struct{ l *Layer }

func (s statsSink) PacketDropped(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDrops++
	s.l.tracef(at, src, trace.EvLinkDrop, "dropped cat-%d packet to n%d", category, dst)
}

func (s statsSink) PacketDuplicated(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDups++
	s.l.tracef(at, src, trace.EvLinkDup, "duplicated cat-%d packet to n%d", category, dst)
}

func (s statsSink) NodePaused(node int, at, until sim.Time) {
	s.l.rt.NodeRT(node).C.NodePauses++
	s.l.tracef(at, node, trace.EvNodePause, "paused until %v", until)
}

// transmit sends a packet either directly over the machine's interconnect
// (through the per-link batcher when batching is on) or, when the reliable
// protocol is enabled, through the ack/retry layer. All inter-node traffic
// of the layer (categories 1-4) funnels through here.
func (l *Layer) transmit(mn *machine.Node, pkt *machine.Packet) {
	// Attribute the logical wire record once, here at the funnel; batch
	// containers and retransmitted copies are attributed at their own sites
	// so nothing is counted twice.
	if np := l.prof(mn.ID); np != nil {
		np.Packet(pathForCategory(pkt.Category), pkt.Size, mn.Now())
	}
	if l.rel != nil {
		l.rel.send(mn, pkt)
		return
	}
	l.send(mn, pkt)
}

// Reliable reports whether the ack/retry protocol is active.
func (l *Layer) Reliable() bool { return l.rel != nil }

// tracef records a reliable-delivery event when tracing is enabled.
func (l *Layer) tracef(at sim.Time, node int, kind trace.Kind, format string, args ...any) {
	if l.opt.Trace != nil {
		l.opt.Trace.Event(trace.Event{
			At:   at,
			Node: node,
			Kind: kind,
			What: fmt.Sprintf(format, args...),
		})
	}
}

// prof returns node's attribution accumulator (nil when profiling is off).
func (l *Layer) prof(node int) *profile.NodeProf {
	if l.opt.Prof == nil {
		return nil
	}
	return l.opt.Prof.Node(node)
}

// profCharge attributes instructions the layer charged directly on a
// machine node (those charges bypass the core's attribution register).
func (l *Layer) profCharge(mn *machine.Node, p profile.Path, instr int) {
	if np := l.prof(mn.ID); np != nil {
		np.ChargeInstr(p, instr, mn.Now())
	}
}

// pathForCategory maps a packet category to its attribution path.
func pathForCategory(cat int) profile.Path {
	switch cat {
	case CatMessage:
		return profile.RemoteSend
	case CatCreate, CatChunk:
		return profile.Create
	case CatService:
		return profile.Forward
	case CatAck:
		return profile.Ack
	case CatCkpt:
		return profile.Ckpt
	}
	return profile.Other
}

// Placement returns the active placement policy.
func (l *Layer) Placement() Placement { return l.opt.Placement }

// StockDepth returns the configured chunk-stock depth.
func (l *Layer) StockDepth() int { return l.opt.StockDepth }

// cost returns the machine's instruction-cost table.
func (l *Layer) cost() *machine.Cost { return &l.m.Cfg.Cost }

// piggyback records the sender's load in the packet and, at delivery,
// updates the receiver's view — the category-4 load-monitoring service
// riding on every packet.
func (l *Layer) piggyback(src int) int32 {
	return int32(l.rt.NodeRT(src).SchedQueueLen())
}

// noteLoad stores a piggybacked load sample with the arrival time it was
// observed at, so placement can discount samples beyond the LoadHorizon.
func (l *Layer) noteLoad(dst, src int, load int32, at sim.Time) {
	ns := l.nodes[dst]
	ns.loads[src] = load
	ns.loadAt[src] = at
}

// SendMessage implements core.Remote: category-1 normal message
// transmission. The compiler-generated specialized handler is modelled by a
// closure carrying the receiver and the typed arguments — no runtime tags
// travel on the wire (Section 5.1).
func (l *Layer) SendMessage(n *core.NodeRT, to core.Address, p core.PatternID, args []core.Value, replyTo core.Address) {
	src := n.ID()
	if ns := l.nodes[src]; len(ns.locCache) > 0 {
		if fresh, ok := ns.locCache[to]; ok {
			// Collapse chains left by repeated migrations, compressing the
			// path for subsequent sends.
			for hops := 0; hops < 8; hops++ {
				next, ok := ns.locCache[fresh]
				if !ok {
					break
				}
				fresh = next
			}
			ns.locCache[to] = fresh
			n.C.LocCacheHits++
			to = fresh
			if to.Node == src {
				// The object migrated to this very node: re-enter the local
				// send path instead of putting a packet on the wire.
				n.Send(to, p, args, replyTo)
				return
			}
		}
	}
	c := l.cost()
	mn := n.MachineNode()
	mn.Charge(c.RemoteSendSetup)
	l.profCharge(mn, profile.RemoteSend, c.RemoteSendSetup)
	if np := l.prof(src); np != nil {
		np.CountEvent(profile.RemoteSend, mn.Now())
	}
	l.nodes[src].sent[0]++
	size := packetHeaderBytes + core.ArgsSize(args)
	if !replyTo.IsNil() {
		size += 8
	}
	w := l.acquireWire(src)
	w.kind = wmMessage
	w.src = src
	w.load = l.piggyback(src)
	w.to = to
	w.pat = p
	w.setArgs(args)
	w.replyTo = replyTo
	pkt := mn.AcquirePacket()
	pkt.Dst = to.Node
	pkt.Size = size
	pkt.Category = CatMessage
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(mn, pkt)
}

// Create implements core.Remote: remote object creation with latency hiding
// (Section 5.2). The placement policy picks a target; a same-node pick is a
// plain local create. Otherwise the mail address is obtained locally from
// the chunk stock and k continues immediately; only on an empty stock does
// the creating object block for a round trip.
func (l *Layer) Create(ctx *core.Ctx, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	target := l.opt.Placement.Pick(l, ctx.NodeID(), cl)
	l.CreateOn(ctx, target, cl, ctorArgs, k)
}

// CreateOn creates an object on an explicit target node.
func (l *Layer) CreateOn(ctx *core.Ctx, target int, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	if target == ctx.NodeID() {
		k(ctx, ctx.NewLocal(cl, ctorArgs...))
		return
	}
	n := ctx.NodeRT()
	c := l.cost()
	ns := l.nodes[n.ID()]
	e := ns.stockEntry(stockKey{node: target, cls: cl})

	if !e.seeded && l.opt.StockDepth > 0 {
		// Pre-delivery: at boot every node receives an initial stock of
		// chunk addresses for its peers. Modelled as already present (the
		// paper's "predelivered stocks"), materialized on first use to keep
		// memory proportional to the pairs actually communicating.
		e.seeded = true
		for i := 0; i < l.opt.StockDepth; i++ {
			// The chunk is homed on target but allocated from the requester's
			// lane; NewFaultChunkFrom keeps the registration safe (and
			// revocable) under optimistic execution.
			e.chunks = append(e.chunks, l.rt.NewFaultChunkFrom(n.ID(), target))
		}
	}

	if len(e.chunks) > 0 {
		chunk := e.chunks[len(e.chunks)-1]
		e.chunks = e.chunks[:len(e.chunks)-1]
		n.MachineNode().Charge(c.StockPop)
		l.profCharge(n.MachineNode(), profile.Create, c.StockPop)
		if np := l.prof(n.ID()); np != nil {
			np.CountEvent(profile.Create, n.MachineNode().Now())
		}
		n.C.StockHits++
		n.C.RemoteCreations++
		l.sendCreateRequest(n, target, chunk, cl, ctorArgs, e)
		// Step 1 of the protocol: the mail address is known locally, before
		// the creation message even departs — latency hidden, no context
		// switch.
		k(ctx, chunk.Addr())
		return
	}

	// Empty stock: the creating object must block until the target both
	// creates the object and replies (split-phase round trip).
	if np := l.prof(n.ID()); np != nil {
		np.CountEvent(profile.Create, n.MachineNode().Now())
	}
	n.C.StockMisses++
	n.C.RemoteCreations++
	self := ctx.SelfObject()
	frame := ctx.CurrentFrame()
	if l.ck != nil {
		// The frame pointer rides the request's onCreated closure, which
		// checkpoint retention may replay after a crash — long after the
		// original invocation completed and released the frame. Pin it out
		// of the pool so the replayed resume finds its content intact.
		n.PinFrame(frame)
	}
	l.sendBlockingCreate(n, target, cl, ctorArgs, e, func(addr core.Address) {
		n.ResumeSaved(self, frame, func(ctx2 *core.Ctx) { k(ctx2, addr) })
	})
	ctx.BlockExternal()
}

// sendCreateRequest transmits the category-2 creation request for a chunk
// whose address the requester already holds. The target initializes the
// chunk (class-specific handler), allocates a replacement chunk, and sends
// its address back as a category-3 reply.
func (l *Layer) sendCreateRequest(n *core.NodeRT, target int, chunk *core.Object, cl *core.Class, ctorArgs []core.Value, e *stockEntry) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.profCharge(sn, profile.Create, l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[1]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmCreate
	w.src = src
	w.load = l.piggyback(src)
	w.chunk = chunk
	w.cl = cl
	w.setArgs(ctorArgs)
	w.entry = e
	pkt := sn.AcquirePacket()
	pkt.Dst = target
	pkt.Size = packetHeaderBytes + 8 + core.ArgsSize(ctorArgs)
	pkt.Category = CatCreate
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// sendBlockingCreate is the stock-miss path: a category-2 request without a
// pre-held chunk. The target allocates, initializes, and replies with both
// the created object's address and a replacement chunk for the stock.
func (l *Layer) sendBlockingCreate(n *core.NodeRT, target int, cl *core.Class, ctorArgs []core.Value, e *stockEntry, onCreated func(core.Address)) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.profCharge(sn, profile.Create, l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[1]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmBlockingCreate
	w.src = src
	w.load = l.piggyback(src)
	w.cl = cl
	w.setArgs(ctorArgs)
	w.entry = e
	w.onCreated = onCreated
	pkt := sn.AcquirePacket()
	pkt.Dst = target
	pkt.Size = packetHeaderBytes + core.ArgsSize(ctorArgs)
	pkt.Category = CatCreate
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// sendChunkReply is the category-3 handler: deliver a replacement chunk
// address to the requester's stock, and optionally resume a creation that
// blocked on an empty stock.
func (l *Layer) sendChunkReply(n *core.NodeRT, requester int, chunk *core.Object, e *stockEntry, then func()) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.profCharge(sn, profile.Create, l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[2]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmChunk
	w.src = src
	w.load = l.piggyback(src)
	w.chunk = chunk
	w.entry = e
	w.then = then
	pkt := sn.AcquirePacket()
	pkt.Dst = requester
	pkt.Size = packetHeaderBytes + 8
	pkt.Category = CatChunk
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// advertiseLocation tells a stale sender where a migrated object lives now —
// the forwarding short-circuit. It runs at the forwarding node when a
// category-1 message arrives for an object that has moved away. One update
// travels per (sender, migration generation): the advert map remembers what
// each sender was last told, so steady-state forwarding adds no traffic.
func (l *Layer) advertiseLocation(rn *machine.Node, src int, stale, fwd core.Address) {
	if src == rn.ID {
		return
	}
	// Chase a local forwarding chain (the object may have passed through
	// this node more than once); forwarders on other nodes belong to other
	// lanes and cannot be inspected here.
	final := fwd
	for hops := 0; hops < 8 && final.Node == rn.ID; hops++ {
		next := final.Obj.ForwardTarget()
		if next.IsNil() {
			break
		}
		final = next
	}
	ns := l.nodes[rn.ID]
	if ns.advert == nil {
		ns.advert = make(map[advertKey]core.Address)
	}
	key := advertKey{src: src, obj: stale.Obj}
	if ns.advert[key] == final {
		return
	}
	ns.advert[key] = final
	c := l.cost()
	l.rt.NodeRT(rn.ID).C.LocCacheMisses++
	rn.Charge(c.RemoteSendSetup)
	l.profCharge(rn, profile.Forward, c.RemoteSendSetup)
	w := l.acquireWire(rn.ID)
	w.kind = wmLocUpd
	w.src = rn.ID
	w.load = l.piggyback(rn.ID)
	w.to = stale
	w.replyTo = final
	pkt := rn.AcquirePacket()
	pkt.Dst = src
	pkt.Size = packetHeaderBytes + 16 // stale + authoritative address
	pkt.Category = CatService
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.tracef(rn.Now(), rn.ID, trace.EvLocUpdate,
		"advertise to n%d: object moved n%d -> n%d", src, stale.Node, final.Node)
	l.transmit(rn, pkt)
}

// learnLocation installs an advertised location in the stale sender's cache.
// A newer address for an already-cached object overwrites (invalidates) the
// old entry; chains from repeated migrations collapse at lookup time.
func (l *Layer) learnLocation(rn *machine.Node, stale, fresh core.Address) {
	if fresh.IsNil() || stale == fresh {
		return
	}
	ns := l.nodes[rn.ID]
	cc := &l.rt.NodeRT(rn.ID).C
	if ns.locCache == nil {
		ns.locCache = make(map[core.Address]core.Address)
	}
	if old, ok := ns.locCache[stale]; ok {
		if old == fresh {
			return
		}
		cc.LocCacheInvalidates++
	}
	ns.locCache[stale] = fresh
	l.tracef(rn.Now(), rn.ID, trace.EvLocUpdate,
		"learned: n%d object now at n%d", stale.Node, fresh.Node)
}

// LocationCache reports whether the remote-location cache is enabled.
func (l *Layer) LocationCache() bool { return l.locOn }

// Batching reports the active batch window and byte budget (zeroes when
// batching is disabled).
func (l *Layer) Batching() (sim.Time, int) {
	if l.bat == nil {
		return 0, 0
	}
	return l.bat.window, l.bat.maxBytes
}

// AckDelay reports the delayed-ack interval (zero when acks are immediate or
// the reliable protocol is off).
func (l *Layer) AckDelay() sim.Time {
	if l.rel == nil {
		return 0
	}
	return l.rel.ackDelay
}

// StockLevel reports the current stock depth a node holds for a target/class
// pair (for tests and reports).
func (l *Layer) StockLevel(node, target int, cl *core.Class) int {
	e := l.nodes[node].stock[stockKey{node: target, cls: cl}]
	if e == nil {
		return 0
	}
	return len(e.chunks)
}

// String describes the layer configuration.
func (l *Layer) String() string {
	s := fmt.Sprintf("remote{stock=%d placement=%s", l.opt.StockDepth, l.opt.Placement.Name())
	if l.bat != nil {
		s += fmt.Sprintf(" batch=%v/%dB", l.bat.window, l.bat.maxBytes)
	}
	if l.rel != nil {
		if l.rel.ackDelay > 0 {
			s += fmt.Sprintf(" reliable ackDelay=%v", l.rel.ackDelay)
		} else {
			s += " reliable"
		}
	}
	if !l.locOn {
		s += " locCache=off"
	}
	return s + "}"
}

package remote

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Handler categories (Section 5.1), recorded on packets for statistics.
const (
	CatMessage = 1 // normal message transmission between objects
	CatCreate  = 2 // request for remote object creation
	CatChunk   = 3 // reply to remote memory allocation request
	CatService = 4 // other services (load info is piggybacked instead)
	CatAck     = 5 // reliable-delivery acknowledgment (not in the paper)
)

// packetHeaderBytes models the paper's compact message format: "a total of
// 4 words including routing information, the mail address of the receiver
// object and the message argument" — routing plus handler address fit in
// 8 bytes, the receiver address and arguments are accounted separately.
const packetHeaderBytes = 8

// Options configures the inter-node layer.
type Options struct {
	// StockDepth is the number of pre-delivered chunks kept per
	// (target node, class) pair. Zero disables the stock entirely, forcing
	// every remote creation through a blocking round trip (the ablation
	// baseline for the paper's latency-hiding scheme).
	StockDepth int
	// Placement picks creation targets; nil means RoundRobin.
	Placement Placement
	// Seed initializes the deterministic per-node generators used by
	// randomized placement policies.
	Seed int64

	// Reliable enables the acknowledgment/retry protocol: every inter-node
	// packet carries a per-link sequence number, is retransmitted with
	// exponential backoff until acknowledged, and is deduplicated and
	// delivered in per-link FIFO order at the receiver. Required when the
	// machine injects link faults; off by default because the paper's
	// AP1000 interconnect is reliable and the protocol adds ack traffic.
	Reliable bool
	// RetryTimeout is the base acknowledgment timeout before the first
	// retransmission; it doubles per attempt up to MaxBackoff. Zero selects
	// DefaultRetryTimeout.
	RetryTimeout sim.Time
	// MaxBackoff caps the exponential backoff. Zero selects
	// DefaultMaxBackoff.
	MaxBackoff sim.Time
	// MaxAttempts bounds retransmissions per message; beyond it the message
	// is abandoned (counted in Counters.RelAbandoned, never silently).
	// Zero selects DefaultMaxAttempts.
	MaxAttempts int
	// Trace, when non-nil, receives reliable-delivery events (retries,
	// acks, duplicate suppression, reorder holds).
	Trace *trace.Ring
}

// Reliable-delivery protocol defaults. The base timeout covers a small
// message's round trip (~2×1.5µs hardware + ~9µs software each way) with
// headroom for queueing at a loaded receiver.
const (
	DefaultRetryTimeout sim.Time = 60 * sim.Microsecond
	DefaultMaxBackoff   sim.Time = 2 * sim.Millisecond
	DefaultMaxAttempts           = 64
)

// DefaultOptions returns the configuration used by the paper-style runs.
func DefaultOptions() Options {
	return Options{StockDepth: 2, Placement: RoundRobin{}, Seed: 1}
}

// Layer is the inter-node runtime: it implements core.Remote and owns the
// chunk stocks and placement state of every node.
type Layer struct {
	rt    *core.Runtime
	m     *machine.Machine
	opt   Options
	nodes []*nodeState
	rel   *reliable // nil unless Options.Reliable

	// Counters (whole machine).
	MsgsSent    uint64 // category 1
	CreatesSent uint64 // category 2
	ChunksSent  uint64 // category 3
}

type stockKey struct {
	node int
	cls  *core.Class
}

type nodeState struct {
	id     int
	rr     int
	rrNext int
	rng    uint64
	stock  map[stockKey][]*core.Object
	seeded map[stockKey]bool
	loads  []int32 // last known scheduling-queue lengths, piggybacked
}

func (ns *nodeState) nextRand() uint64 {
	// xorshift64: deterministic, node-local.
	x := ns.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ns.rng = x
	return x
}

func (ns *nodeState) knownLoad(node int, l *Layer) int {
	if node == ns.id {
		return l.rt.NodeRT(node).SchedQueueLen()
	}
	return int(ns.loads[node])
}

// Attach builds the layer and installs it into the runtime. Must run before
// the runtime freezes.
func Attach(rt *core.Runtime, opt Options) *Layer {
	if opt.Placement == nil {
		opt.Placement = RoundRobin{}
	}
	l := &Layer{rt: rt, m: rt.M, opt: opt}
	l.nodes = make([]*nodeState, rt.Nodes())
	for i := range l.nodes {
		l.nodes[i] = &nodeState{
			id:     i,
			rng:    uint64(opt.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 1,
			stock:  make(map[stockKey][]*core.Object),
			seeded: make(map[stockKey]bool),
			loads:  make([]int32, rt.Nodes()),
		}
	}
	if opt.Reliable {
		l.rel = newReliable(l)
	}
	if rt.M.Faults() != nil && rt.M.FaultSink() == nil {
		rt.M.SetFaultSink(statsSink{l})
	}
	rt.SetRemote(l)
	return l
}

// statsSink attributes machine-level fault events to the affected node's
// counters and the trace ring. Drops and duplications are charged to the
// sending node; pauses to the paused node.
type statsSink struct{ l *Layer }

func (s statsSink) PacketDropped(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDrops++
	s.l.tracef(at, src, trace.EvLinkDrop, "dropped cat-%d packet to n%d", category, dst)
}

func (s statsSink) PacketDuplicated(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDups++
	s.l.tracef(at, src, trace.EvLinkDup, "duplicated cat-%d packet to n%d", category, dst)
}

func (s statsSink) NodePaused(node int, at, until sim.Time) {
	s.l.rt.NodeRT(node).C.NodePauses++
	s.l.tracef(at, node, trace.EvNodePause, "paused until %v", until)
}

// transmit sends a packet either directly over the machine's interconnect
// or, when the reliable protocol is enabled, through the ack/retry layer.
// All inter-node traffic of the layer (categories 1-4) funnels through here.
func (l *Layer) transmit(mn *machine.Node, pkt *machine.Packet) {
	if l.rel != nil {
		l.rel.send(mn, pkt)
		return
	}
	mn.Send(pkt)
}

// Reliable reports whether the ack/retry protocol is active.
func (l *Layer) Reliable() bool { return l.rel != nil }

// tracef records a reliable-delivery event when tracing is enabled.
func (l *Layer) tracef(at sim.Time, node int, kind trace.Kind, format string, args ...any) {
	if l.opt.Trace != nil {
		l.opt.Trace.Addf(at, node, kind, format, args...)
	}
}

// Placement returns the active placement policy.
func (l *Layer) Placement() Placement { return l.opt.Placement }

// StockDepth returns the configured chunk-stock depth.
func (l *Layer) StockDepth() int { return l.opt.StockDepth }

// cost returns the machine's instruction-cost table.
func (l *Layer) cost() *machine.Cost { return &l.m.Cfg.Cost }

// piggyback records the sender's load in the packet and, at delivery,
// updates the receiver's view — the category-4 load-monitoring service
// riding on every packet.
func (l *Layer) piggyback(src int) int32 {
	return int32(l.rt.NodeRT(src).SchedQueueLen())
}

func (l *Layer) noteLoad(dst, src int, load int32) {
	l.nodes[dst].loads[src] = load
}

// SendMessage implements core.Remote: category-1 normal message
// transmission. The compiler-generated specialized handler is modelled by a
// closure carrying the receiver and the typed arguments — no runtime tags
// travel on the wire (Section 5.1).
func (l *Layer) SendMessage(n *core.NodeRT, to core.Address, p core.PatternID, args []core.Value, replyTo core.Address) {
	c := l.cost()
	n.MachineNode().Charge(c.RemoteSendSetup)
	l.MsgsSent++
	size := packetHeaderBytes + core.ArgsSize(args)
	if !replyTo.IsNil() {
		size += 8
	}
	load := l.piggyback(n.ID())
	src := n.ID()
	l.transmit(n.MachineNode(), &machine.Packet{
		Dst:      to.Node,
		Size:     size,
		Category: CatMessage,
		Handler: func(mn *machine.Node, pkt *machine.Packet) {
			mn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall)
			l.noteLoad(mn.ID, src, load)
			nrt := l.rt.NodeRT(mn.ID)
			nrt.DeliverFrame(to.Obj, &core.Frame{Pattern: p, Args: args, ReplyTo: replyTo}, true)
		},
	})
}

// Create implements core.Remote: remote object creation with latency hiding
// (Section 5.2). The placement policy picks a target; a same-node pick is a
// plain local create. Otherwise the mail address is obtained locally from
// the chunk stock and k continues immediately; only on an empty stock does
// the creating object block for a round trip.
func (l *Layer) Create(ctx *core.Ctx, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	target := l.opt.Placement.Pick(l, ctx.NodeID(), cl)
	l.CreateOn(ctx, target, cl, ctorArgs, k)
}

// CreateOn creates an object on an explicit target node.
func (l *Layer) CreateOn(ctx *core.Ctx, target int, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	if target == ctx.NodeID() {
		k(ctx, ctx.NewLocal(cl, ctorArgs...))
		return
	}
	n := ctx.NodeRT()
	c := l.cost()
	ns := l.nodes[n.ID()]
	key := stockKey{node: target, cls: cl}

	if !ns.seeded[key] && l.opt.StockDepth > 0 {
		// Pre-delivery: at boot every node receives an initial stock of
		// chunk addresses for its peers. Modelled as already present (the
		// paper's "predelivered stocks"), materialized on first use to keep
		// memory proportional to the pairs actually communicating.
		ns.seeded[key] = true
		for i := 0; i < l.opt.StockDepth; i++ {
			ns.stock[key] = append(ns.stock[key], l.rt.NewFaultChunk(target))
		}
	}

	if st := ns.stock[key]; len(st) > 0 {
		chunk := st[len(st)-1]
		ns.stock[key] = st[:len(st)-1]
		n.MachineNode().Charge(c.StockPop)
		n.C.StockHits++
		n.C.RemoteCreations++
		l.sendCreateRequest(n, target, chunk, cl, ctorArgs, key)
		// Step 1 of the protocol: the mail address is known locally, before
		// the creation message even departs — latency hidden, no context
		// switch.
		k(ctx, chunk.Addr())
		return
	}

	// Empty stock: the creating object must block until the target both
	// creates the object and replies (split-phase round trip).
	n.C.StockMisses++
	n.C.RemoteCreations++
	self := ctx.SelfObject()
	frame := ctx.CurrentFrame()
	l.sendBlockingCreate(n, target, cl, ctorArgs, key, func(addr core.Address) {
		n.ResumeSaved(self, frame, func(ctx2 *core.Ctx) { k(ctx2, addr) })
	})
	ctx.BlockExternal()
}

// sendCreateRequest transmits the category-2 creation request for a chunk
// whose address the requester already holds. The target initializes the
// chunk (class-specific handler), allocates a replacement chunk, and sends
// its address back as a category-3 reply.
func (l *Layer) sendCreateRequest(n *core.NodeRT, target int, chunk *core.Object, cl *core.Class, ctorArgs []core.Value, key stockKey) {
	c := l.cost()
	n.MachineNode().Charge(c.RemoteSendSetup)
	l.CreatesSent++
	src := n.ID()
	load := l.piggyback(src)
	l.transmit(n.MachineNode(), &machine.Packet{
		Dst:      target,
		Size:     packetHeaderBytes + 8 + core.ArgsSize(ctorArgs),
		Category: CatCreate,
		Handler: func(mn *machine.Node, pkt *machine.Packet) {
			mn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.ChunkInit)
			l.noteLoad(mn.ID, src, load)
			nrt := l.rt.NodeRT(mn.ID)
			l.rt.InitChunk(nrt, chunk, cl, ctorArgs)
			// Step 4: allocate the replacement chunk and return its address.
			mn.Charge(c.ChunkRefill)
			replacement := l.rt.NewFaultChunk(mn.ID)
			l.sendChunkReply(nrt, src, replacement, key, nil)
		},
	})
}

// sendBlockingCreate is the stock-miss path: a category-2 request without a
// pre-held chunk. The target allocates, initializes, and replies with both
// the created object's address and a replacement chunk for the stock.
func (l *Layer) sendBlockingCreate(n *core.NodeRT, target int, cl *core.Class, ctorArgs []core.Value, key stockKey, onCreated func(core.Address)) {
	c := l.cost()
	n.MachineNode().Charge(c.RemoteSendSetup)
	l.CreatesSent++
	src := n.ID()
	load := l.piggyback(src)
	l.transmit(n.MachineNode(), &machine.Packet{
		Dst:      target,
		Size:     packetHeaderBytes + core.ArgsSize(ctorArgs),
		Category: CatCreate,
		Handler: func(mn *machine.Node, pkt *machine.Packet) {
			mn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.ChunkInit)
			l.noteLoad(mn.ID, src, load)
			nrt := l.rt.NodeRT(mn.ID)
			created := l.rt.NewFaultChunk(mn.ID)
			l.rt.InitChunk(nrt, created, cl, ctorArgs)
			mn.Charge(c.ChunkRefill)
			replacement := l.rt.NewFaultChunk(mn.ID)
			addr := created.Addr()
			l.sendChunkReply(nrt, src, replacement, key, func() { onCreated(addr) })
		},
	})
}

// sendChunkReply is the category-3 handler: deliver a replacement chunk
// address to the requester's stock, and optionally resume a creation that
// blocked on an empty stock.
func (l *Layer) sendChunkReply(n *core.NodeRT, requester int, chunk *core.Object, key stockKey, then func()) {
	c := l.cost()
	n.MachineNode().Charge(c.RemoteSendSetup)
	l.ChunksSent++
	src := n.ID()
	load := l.piggyback(src)
	l.transmit(n.MachineNode(), &machine.Packet{
		Dst:      requester,
		Size:     packetHeaderBytes + 8,
		Category: CatChunk,
		Handler: func(mn *machine.Node, pkt *machine.Packet) {
			mn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.StockPush)
			l.noteLoad(mn.ID, src, load)
			if l.opt.StockDepth > 0 {
				ns := l.nodes[mn.ID]
				// The stock is capped at its configured depth: a chunk that
				// would overfill it (after a miss) is simply dropped back to
				// the target's allocator.
				if st := ns.stock[key]; len(st) < l.opt.StockDepth {
					ns.stock[key] = append(st, chunk)
				}
			}
			if then != nil {
				then()
			}
		},
	})
}

// StockLevel reports the current stock depth a node holds for a target/class
// pair (for tests and reports).
func (l *Layer) StockLevel(node, target int, cl *core.Class) int {
	return len(l.nodes[node].stock[stockKey{node: target, cls: cl}])
}

// String describes the layer configuration.
func (l *Layer) String() string {
	return fmt.Sprintf("remote{stock=%d placement=%s}", l.opt.StockDepth, l.opt.Placement.Name())
}

package remote

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Handler categories (Section 5.1), recorded on packets for statistics.
const (
	CatMessage = 1 // normal message transmission between objects
	CatCreate  = 2 // request for remote object creation
	CatChunk   = 3 // reply to remote memory allocation request
	CatService = 4 // other services (load info is piggybacked instead)
	CatAck     = 5 // reliable-delivery acknowledgment (not in the paper)
)

// packetHeaderBytes models the paper's compact message format: "a total of
// 4 words including routing information, the mail address of the receiver
// object and the message argument" — routing plus handler address fit in
// 8 bytes, the receiver address and arguments are accounted separately.
const packetHeaderBytes = 8

// Options configures the inter-node layer.
type Options struct {
	// StockDepth is the number of pre-delivered chunks kept per
	// (target node, class) pair. Zero disables the stock entirely, forcing
	// every remote creation through a blocking round trip (the ablation
	// baseline for the paper's latency-hiding scheme).
	StockDepth int
	// Placement picks creation targets; nil means RoundRobin.
	Placement Placement
	// Seed initializes the deterministic per-node generators used by
	// randomized placement policies.
	Seed int64

	// Reliable enables the acknowledgment/retry protocol: every inter-node
	// packet carries a per-link sequence number, is retransmitted with
	// exponential backoff until acknowledged, and is deduplicated and
	// delivered in per-link FIFO order at the receiver. Required when the
	// machine injects link faults; off by default because the paper's
	// AP1000 interconnect is reliable and the protocol adds ack traffic.
	Reliable bool
	// RetryTimeout is the base acknowledgment timeout before the first
	// retransmission; it doubles per attempt up to MaxBackoff. Zero selects
	// DefaultRetryTimeout.
	RetryTimeout sim.Time
	// MaxBackoff caps the exponential backoff. Zero selects
	// DefaultMaxBackoff.
	MaxBackoff sim.Time
	// MaxAttempts bounds retransmissions per message; beyond it the message
	// is abandoned (counted in Counters.RelAbandoned, never silently).
	// Zero selects DefaultMaxAttempts.
	MaxAttempts int
	// Trace, when non-nil, receives reliable-delivery events (retries,
	// acks, duplicate suppression, reorder holds).
	Trace *trace.Ring
}

// Reliable-delivery protocol defaults. The base timeout covers a small
// message's round trip (~2×1.5µs hardware + ~9µs software each way) with
// headroom for queueing at a loaded receiver.
const (
	DefaultRetryTimeout sim.Time = 60 * sim.Microsecond
	DefaultMaxBackoff   sim.Time = 2 * sim.Millisecond
	DefaultMaxAttempts           = 64
)

// DefaultOptions returns the configuration used by the paper-style runs.
func DefaultOptions() Options {
	return Options{StockDepth: 2, Placement: RoundRobin{}, Seed: 1}
}

// Layer is the inter-node runtime: it implements core.Remote and owns the
// chunk stocks and placement state of every node.
type Layer struct {
	rt    *core.Runtime
	m     *machine.Machine
	opt   Options
	nodes []*nodeState
	rel   *reliable // nil unless Options.Reliable

	// hWire is the shared receive handler for all layer packets; the
	// per-send state travels in the packet's Payload as a *wireMsg instead
	// of a freshly allocated closure.
	hWire func(*machine.Node, *machine.Packet)
}

// wireMsg is the decoded payload of one layer packet. Records are pooled:
// the sender fills one from its node's free list, the receive handler
// recycles it into the receiving node's — they migrate between per-node
// pools exactly like the packets that carry them, so each pool is only
// touched by its own lane. Recycling is skipped when the machine can
// duplicate packets (see wirePooled): a duplicated packet shares the record
// and the handler runs once per copy.
type wireMsg struct {
	kind      uint8
	src       int
	load      int32
	to        core.Address   // wmMessage: receiver
	pat       core.PatternID // wmMessage: pattern
	args      []core.Value   // message or constructor arguments (owned copy)
	argBuf    [2]core.Value  // inline store backing args for small lists
	replyTo   core.Address
	chunk     *core.Object // wmCreate: chunk to initialize; wmChunk: stock refill
	cl        *core.Class
	entry     *stockEntry        // requester's stock slot, carried through the round trip
	then      func()             // wmChunk: blocked-creation resume
	onCreated func(core.Address) // wmBlockingCreate: requester callback
}

const (
	wmMessage = uint8(iota + 1)
	wmCreate
	wmBlockingCreate
	wmChunk
)

// setArgs copies args into the record — inline when they fit, a fresh slice
// otherwise. Senders hand the layer a transient slice (core.Remote's
// SendMessage contract stages arguments in a per-node scratch buffer), so
// the record must own its copy until delivery.
func (w *wireMsg) setArgs(args []core.Value) {
	switch {
	case len(args) == 0:
		w.args = nil
	case len(args) <= len(w.argBuf):
		nc := copy(w.argBuf[:], args)
		w.args = w.argBuf[:nc:nc]
	default:
		w.args = append([]core.Value(nil), args...)
	}
}

// wirePooled reports whether wireMsg records may be recycled: safe unless a
// fault model can hand a duplicated packet (and its shared Payload record)
// to the handler twice. The reliable protocol deduplicates by sequence
// number before the handler runs, so it restores pooling under faults.
func (l *Layer) wirePooled() bool {
	return l.m.Faults() == nil || l.rel != nil
}

func (l *Layer) acquireWire(src int) *wireMsg {
	ns := l.nodes[src]
	if last := len(ns.wireFree) - 1; last >= 0 {
		w := ns.wireFree[last]
		ns.wireFree[last] = nil
		ns.wireFree = ns.wireFree[:last]
		return w
	}
	return &wireMsg{}
}

func (l *Layer) releaseWire(dst int, w *wireMsg) {
	if !l.wirePooled() {
		return
	}
	*w = wireMsg{}
	ns := l.nodes[dst]
	ns.wireFree = append(ns.wireFree, w)
}

// handleWire is the single receive-side dispatcher for categories 1-3: the
// compiler-generated specialized handlers of Section 5.1, indexed by the
// payload's kind tag rather than modelled as per-send closures.
func (l *Layer) handleWire(rn *machine.Node, p *machine.Packet) {
	w := p.Payload.(*wireMsg)
	c := l.cost()
	l.noteLoad(rn.ID, w.src, w.load)
	nrt := l.rt.NodeRT(rn.ID)
	switch w.kind {
	case wmMessage:
		rn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall)
		nrt.DeliverFrame(w.to.Obj, nrt.NewFrame(w.pat, w.args, w.replyTo), true)
	case wmCreate:
		rn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.ChunkInit)
		l.rt.InitChunk(nrt, w.chunk, w.cl, w.args)
		// Step 4: allocate the replacement chunk and return its address.
		rn.Charge(c.ChunkRefill)
		l.sendChunkReply(nrt, w.src, l.rt.NewFaultChunk(rn.ID), w.entry, nil)
	case wmBlockingCreate:
		rn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.ChunkInit)
		created := l.rt.NewFaultChunk(rn.ID)
		l.rt.InitChunk(nrt, created, w.cl, w.args)
		rn.Charge(c.ChunkRefill)
		addr := created.Addr()
		onCreated := w.onCreated
		l.sendChunkReply(nrt, w.src, l.rt.NewFaultChunk(rn.ID), w.entry, func() { onCreated(addr) })
	case wmChunk:
		rn.Charge(c.RemoteRecvExtract + c.RemoteHandlerCall + c.StockPush)
		if l.opt.StockDepth > 0 {
			// The stock is capped at its configured depth: a chunk that
			// would overfill it (after a miss) is simply dropped back to
			// the target's allocator. The entry pointer is the requester's
			// own slot, carried through the round trip — and this packet is
			// addressed to the requester, so the append stays lane-local.
			if e := w.entry; len(e.chunks) < l.opt.StockDepth {
				e.chunks = append(e.chunks, w.chunk)
			}
		}
		if w.then != nil {
			w.then()
		}
	default:
		panic(fmt.Sprintf("remote: unknown wire kind %d", w.kind))
	}
	l.releaseWire(rn.ID, w)
}

// MsgsSent returns the machine-wide count of category-1 sends.
func (l *Layer) MsgsSent() uint64 { return l.sumCounter(0) }

// CreatesSent returns the machine-wide count of category-2 sends.
func (l *Layer) CreatesSent() uint64 { return l.sumCounter(1) }

// ChunksSent returns the machine-wide count of category-3 sends.
func (l *Layer) ChunksSent() uint64 { return l.sumCounter(2) }

func (l *Layer) sumCounter(i int) uint64 {
	var t uint64
	for _, ns := range l.nodes {
		t += ns.sent[i]
	}
	return t
}

type stockKey struct {
	node int
	cls  *core.Class
}

// stockEntry is one node's chunk stock for a (target, class) pair. It is
// looked up once per remote creation; the refill round trip carries the
// entry pointer itself, so the category-2/3 handlers touch no maps.
type stockEntry struct {
	seeded bool
	chunks []*core.Object
}

// stockEntry returns (creating on first use) the stock slot for key.
func (ns *nodeState) stockEntry(key stockKey) *stockEntry {
	e := ns.stock[key]
	if e == nil {
		e = &stockEntry{}
		ns.stock[key] = e
	}
	return e
}

type nodeState struct {
	id     int
	rr     int
	rrNext int
	rng    uint64
	stock  map[stockKey]*stockEntry
	loads  []int32   // last known scheduling-queue lengths, piggybacked
	sent   [3]uint64 // category 1/2/3 sends, node-local (lane-safe)

	wireFree []*wireMsg // recycled payload records (lane-local)
}

func (ns *nodeState) nextRand() uint64 {
	// xorshift64: deterministic, node-local.
	x := ns.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ns.rng = x
	return x
}

func (ns *nodeState) knownLoad(node int, l *Layer) int {
	if node == ns.id {
		return l.rt.NodeRT(node).SchedQueueLen()
	}
	return int(ns.loads[node])
}

// Attach builds the layer and installs it into the runtime. Must run before
// the runtime freezes.
func Attach(rt *core.Runtime, opt Options) *Layer {
	if opt.Placement == nil {
		opt.Placement = RoundRobin{}
	}
	l := &Layer{rt: rt, m: rt.M, opt: opt}
	l.hWire = l.handleWire
	l.nodes = make([]*nodeState, rt.Nodes())
	for i := range l.nodes {
		l.nodes[i] = &nodeState{
			id:    i,
			rng:   uint64(opt.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 1,
			stock: make(map[stockKey]*stockEntry),
			loads: make([]int32, rt.Nodes()),
		}
	}
	if opt.Reliable {
		l.rel = newReliable(l)
	}
	if rt.M.Faults() != nil && rt.M.FaultSink() == nil {
		rt.M.SetFaultSink(statsSink{l})
	}
	rt.SetRemote(l)
	return l
}

// statsSink attributes machine-level fault events to the affected node's
// counters and the trace ring. Drops and duplications are charged to the
// sending node; pauses to the paused node.
type statsSink struct{ l *Layer }

func (s statsSink) PacketDropped(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDrops++
	s.l.tracef(at, src, trace.EvLinkDrop, "dropped cat-%d packet to n%d", category, dst)
}

func (s statsSink) PacketDuplicated(src, dst int, at sim.Time, category int) {
	s.l.rt.NodeRT(src).C.LinkDups++
	s.l.tracef(at, src, trace.EvLinkDup, "duplicated cat-%d packet to n%d", category, dst)
}

func (s statsSink) NodePaused(node int, at, until sim.Time) {
	s.l.rt.NodeRT(node).C.NodePauses++
	s.l.tracef(at, node, trace.EvNodePause, "paused until %v", until)
}

// transmit sends a packet either directly over the machine's interconnect
// or, when the reliable protocol is enabled, through the ack/retry layer.
// All inter-node traffic of the layer (categories 1-4) funnels through here.
func (l *Layer) transmit(mn *machine.Node, pkt *machine.Packet) {
	if l.rel != nil {
		l.rel.send(mn, pkt)
		return
	}
	mn.Send(pkt)
}

// Reliable reports whether the ack/retry protocol is active.
func (l *Layer) Reliable() bool { return l.rel != nil }

// tracef records a reliable-delivery event when tracing is enabled.
func (l *Layer) tracef(at sim.Time, node int, kind trace.Kind, format string, args ...any) {
	if l.opt.Trace != nil {
		l.opt.Trace.Addf(at, node, kind, format, args...)
	}
}

// Placement returns the active placement policy.
func (l *Layer) Placement() Placement { return l.opt.Placement }

// StockDepth returns the configured chunk-stock depth.
func (l *Layer) StockDepth() int { return l.opt.StockDepth }

// cost returns the machine's instruction-cost table.
func (l *Layer) cost() *machine.Cost { return &l.m.Cfg.Cost }

// piggyback records the sender's load in the packet and, at delivery,
// updates the receiver's view — the category-4 load-monitoring service
// riding on every packet.
func (l *Layer) piggyback(src int) int32 {
	return int32(l.rt.NodeRT(src).SchedQueueLen())
}

func (l *Layer) noteLoad(dst, src int, load int32) {
	l.nodes[dst].loads[src] = load
}

// SendMessage implements core.Remote: category-1 normal message
// transmission. The compiler-generated specialized handler is modelled by a
// closure carrying the receiver and the typed arguments — no runtime tags
// travel on the wire (Section 5.1).
func (l *Layer) SendMessage(n *core.NodeRT, to core.Address, p core.PatternID, args []core.Value, replyTo core.Address) {
	c := l.cost()
	mn := n.MachineNode()
	mn.Charge(c.RemoteSendSetup)
	l.nodes[n.ID()].sent[0]++
	size := packetHeaderBytes + core.ArgsSize(args)
	if !replyTo.IsNil() {
		size += 8
	}
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmMessage
	w.src = src
	w.load = l.piggyback(src)
	w.to = to
	w.pat = p
	w.setArgs(args)
	w.replyTo = replyTo
	pkt := mn.AcquirePacket()
	pkt.Dst = to.Node
	pkt.Size = size
	pkt.Category = CatMessage
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(mn, pkt)
}

// Create implements core.Remote: remote object creation with latency hiding
// (Section 5.2). The placement policy picks a target; a same-node pick is a
// plain local create. Otherwise the mail address is obtained locally from
// the chunk stock and k continues immediately; only on an empty stock does
// the creating object block for a round trip.
func (l *Layer) Create(ctx *core.Ctx, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	target := l.opt.Placement.Pick(l, ctx.NodeID(), cl)
	l.CreateOn(ctx, target, cl, ctorArgs, k)
}

// CreateOn creates an object on an explicit target node.
func (l *Layer) CreateOn(ctx *core.Ctx, target int, cl *core.Class, ctorArgs []core.Value, k func(*core.Ctx, core.Address)) {
	if target == ctx.NodeID() {
		k(ctx, ctx.NewLocal(cl, ctorArgs...))
		return
	}
	n := ctx.NodeRT()
	c := l.cost()
	ns := l.nodes[n.ID()]
	e := ns.stockEntry(stockKey{node: target, cls: cl})

	if !e.seeded && l.opt.StockDepth > 0 {
		// Pre-delivery: at boot every node receives an initial stock of
		// chunk addresses for its peers. Modelled as already present (the
		// paper's "predelivered stocks"), materialized on first use to keep
		// memory proportional to the pairs actually communicating.
		e.seeded = true
		for i := 0; i < l.opt.StockDepth; i++ {
			e.chunks = append(e.chunks, l.rt.NewFaultChunk(target))
		}
	}

	if len(e.chunks) > 0 {
		chunk := e.chunks[len(e.chunks)-1]
		e.chunks = e.chunks[:len(e.chunks)-1]
		n.MachineNode().Charge(c.StockPop)
		n.C.StockHits++
		n.C.RemoteCreations++
		l.sendCreateRequest(n, target, chunk, cl, ctorArgs, e)
		// Step 1 of the protocol: the mail address is known locally, before
		// the creation message even departs — latency hidden, no context
		// switch.
		k(ctx, chunk.Addr())
		return
	}

	// Empty stock: the creating object must block until the target both
	// creates the object and replies (split-phase round trip).
	n.C.StockMisses++
	n.C.RemoteCreations++
	self := ctx.SelfObject()
	frame := ctx.CurrentFrame()
	l.sendBlockingCreate(n, target, cl, ctorArgs, e, func(addr core.Address) {
		n.ResumeSaved(self, frame, func(ctx2 *core.Ctx) { k(ctx2, addr) })
	})
	ctx.BlockExternal()
}

// sendCreateRequest transmits the category-2 creation request for a chunk
// whose address the requester already holds. The target initializes the
// chunk (class-specific handler), allocates a replacement chunk, and sends
// its address back as a category-3 reply.
func (l *Layer) sendCreateRequest(n *core.NodeRT, target int, chunk *core.Object, cl *core.Class, ctorArgs []core.Value, e *stockEntry) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[1]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmCreate
	w.src = src
	w.load = l.piggyback(src)
	w.chunk = chunk
	w.cl = cl
	w.setArgs(ctorArgs)
	w.entry = e
	pkt := sn.AcquirePacket()
	pkt.Dst = target
	pkt.Size = packetHeaderBytes + 8 + core.ArgsSize(ctorArgs)
	pkt.Category = CatCreate
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// sendBlockingCreate is the stock-miss path: a category-2 request without a
// pre-held chunk. The target allocates, initializes, and replies with both
// the created object's address and a replacement chunk for the stock.
func (l *Layer) sendBlockingCreate(n *core.NodeRT, target int, cl *core.Class, ctorArgs []core.Value, e *stockEntry, onCreated func(core.Address)) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[1]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmBlockingCreate
	w.src = src
	w.load = l.piggyback(src)
	w.cl = cl
	w.setArgs(ctorArgs)
	w.entry = e
	w.onCreated = onCreated
	pkt := sn.AcquirePacket()
	pkt.Dst = target
	pkt.Size = packetHeaderBytes + core.ArgsSize(ctorArgs)
	pkt.Category = CatCreate
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// sendChunkReply is the category-3 handler: deliver a replacement chunk
// address to the requester's stock, and optionally resume a creation that
// blocked on an empty stock.
func (l *Layer) sendChunkReply(n *core.NodeRT, requester int, chunk *core.Object, e *stockEntry, then func()) {
	sn := n.MachineNode()
	sn.Charge(l.cost().RemoteSendSetup)
	l.nodes[n.ID()].sent[2]++
	src := n.ID()
	w := l.acquireWire(src)
	w.kind = wmChunk
	w.src = src
	w.load = l.piggyback(src)
	w.chunk = chunk
	w.entry = e
	w.then = then
	pkt := sn.AcquirePacket()
	pkt.Dst = requester
	pkt.Size = packetHeaderBytes + 8
	pkt.Category = CatChunk
	pkt.Handler = l.hWire
	pkt.Payload = w
	l.transmit(sn, pkt)
}

// StockLevel reports the current stock depth a node holds for a target/class
// pair (for tests and reports).
func (l *Layer) StockLevel(node, target int, cl *core.Class) int {
	e := l.nodes[node].stock[stockKey{node: target, cls: cl}]
	if e == nil {
		return 0
	}
	return len(e.chunks)
}

// String describes the layer configuration.
func (l *Layer) String() string {
	return fmt.Sprintf("remote{stock=%d placement=%s}", l.opt.StockDepth, l.opt.Placement.Name())
}

// Package conformance generates random *confluent* ABCL programs and checks
// that their observable results are identical across scheduling policies
// (stack-based vs naive), across runs (determinism), and across execution
// engines (discrete-event simulation vs the goroutine-per-node parallel
// driver).
//
// Confluence is by construction: all state updates are commutative
// accumulations (sums and counters) over values carried by the messages
// themselves, and every message carries a hop budget, so termination and
// the final sums are independent of delivery interleaving. What the checks
// catch is therefore lost, duplicated, or corrupted messages, creations and
// replies anywhere in the runtime — under every scheduler path.
package conformance

import (
	"math/rand"

	"repro/internal/core"
)

// Program is a generated workload bound to pattern/class definitions.
type Program struct {
	Seed  int64
	Nodes int

	// Object-count knobs (set by Generate).
	relays, askers, spawners, gates int
	injections                      int
	maxBudget                       int

	// Per-build state (reset by Build).
	patPoke   core.PatternID // poke budget value   (past)
	patAdd    core.PatternID // add1 value          (now: replies value+1)
	patOpen   core.PatternID // open value          (past, gates)
	patData   core.PatternID // data value          (past, gates)
	patSpawn  core.PatternID // spawn depth value child (past, spawners)
	patReport core.PatternID // report value        (past, collector)

	accs    []core.Address // all accumulating objects, in creation order
	targets []core.Address // forwarding table shared by all relays
	adder   core.Address
	// collector accumulates the contributions of dynamically created
	// spawner children. Keeping that tally inside the simulation (rather
	// than in a host-side slice of child addresses) keeps Observe valid
	// under engines that replay or roll back events — host state cannot
	// be rewound, object state can.
	collector core.Address
	rng       *rand.Rand
}

// Generate derives a program shape from the seed.
func Generate(seed int64, nodes int) *Program {
	rng := rand.New(rand.NewSource(seed))
	return &Program{
		Seed:       seed,
		Nodes:      nodes,
		relays:     2 + rng.Intn(6),
		askers:     1 + rng.Intn(3),
		spawners:   1 + rng.Intn(3),
		gates:      1 + rng.Intn(3),
		injections: 3 + rng.Intn(8),
		maxBudget:  8 + rng.Intn(24),
	}
}

// Expected is the policy- and engine-independent observable outcome.
type Expected struct {
	Sum       int64  // total of all accumulator states
	Creations uint64 // total object creations (excluding setup)
	Messages  uint64 // total object-to-object sends
}

// Build defines the program's patterns, classes and objects on rt, and
// returns the injection thunk to call before running. rt must be fresh.
func (p *Program) Build(rt *core.Runtime) func() {
	p.rng = rand.New(rand.NewSource(p.Seed * 7919))
	p.patPoke = rt.Reg.Register("conf.poke", 2)
	p.patAdd = rt.Reg.Register("conf.add1", 1)
	p.patOpen = rt.Reg.Register("conf.open", 1)
	p.patData = rt.Reg.Register("conf.data", 1)
	p.patSpawn = rt.Reg.Register("conf.spawn", 3)
	p.patReport = rt.Reg.Register("conf.report", 1)
	p.accs = nil
	p.targets = nil

	// Adder: a pure now-type service.
	adderCls := rt.DefineClass("conf.adder", 0, nil)
	adderCls.Method(p.patAdd, func(ctx *core.Ctx) {
		ctx.Reply(core.IntV(ctx.Arg(0).Int() + 1))
	})

	// Relay: accumulates the value, forwards with decremented budget to a
	// pseudo-random (but message-determined) entry of the target table.
	zero1 := func(ic *core.InitCtx) { ic.SetState(0, core.IntV(0)) }
	relayCls := rt.DefineClass("conf.relay", 1, zero1)
	relayCls.Method(p.patPoke, func(ctx *core.Ctx) {
		budget, v := ctx.Arg(0).Int(), ctx.Arg(1).Int()
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+v))
		if budget > 0 {
			// The next hop is derived from the message contents, so every
			// interleaving forwards identically.
			next := p.targets[int(uint64(v*2654435761+budget)%uint64(len(p.targets)))]
			ctx.SendPast(next, p.patPoke, core.IntV(budget-1), core.IntV(v))
		}
	})

	// Asker: accumulates, asks the adder (now-type), accumulates the reply,
	// then forwards the remaining budget.
	askerCls := rt.DefineClass("conf.asker", 1, zero1)
	askerCls.Method(p.patPoke, func(ctx *core.Ctx) {
		budget, v := ctx.Arg(0).Int(), ctx.Arg(1).Int()
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+v))
		ctx.SendNow(p.adder, p.patAdd, []core.Value{core.IntV(v)}, func(ctx *core.Ctx, r core.Value) {
			ctx.SetState(0, core.IntV(ctx.State(0).Int()+r.Int()))
			if budget > 0 {
				next := p.targets[int(uint64(v*40503+budget)%uint64(len(p.targets)))]
				ctx.SendPast(next, p.patPoke, core.IntV(budget-1), core.IntV(v+1))
			}
		})
	})

	// Gate: on open, selectively waits for data (unless data already
	// arrived, in which case the plain data method has accumulated it) and
	// accumulates it. state1 tracks whether data was consumed early.
	gateCls := rt.DefineClass("conf.gate", 2, func(ic *core.InitCtx) {
		ic.SetState(0, core.IntV(0))
		ic.SetState(1, core.IntV(0))
	})
	gateCls.Method(p.patOpen, func(ctx *core.Ctx) {
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+ctx.Arg(0).Int()))
		if ctx.State(1).Int() != 0 {
			return // data already arrived through the fallback method
		}
		ctx.WaitFor(func(ctx *core.Ctx, f *core.Frame) {
			ctx.SetState(0, core.IntV(ctx.State(0).Int()+f.Arg(0).Int()))
		}, p.patData)
	})
	gateCls.Method(p.patData, func(ctx *core.Ctx) {
		// Fallback for data overtaking open: same accumulation.
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+ctx.Arg(0).Int()))
		ctx.SetState(1, core.IntV(1))
	})

	// Collector: accumulates the reported contributions of dynamically
	// created children, so dynamic accumulation stays observable without
	// the harness holding child addresses on the host side.
	collectorCls := rt.DefineClass("conf.collector", 1, zero1)
	collectorCls.Method(p.patReport, func(ctx *core.Ctx) {
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+ctx.Arg(0).Int()))
	})

	// Spawner: accumulates, creates a child spawner via the placement
	// policy and pokes it. Dynamically created children (arg 2 set) also
	// report their contribution to the collector, which is what Observe
	// reads — the children themselves are not enumerable from the host.
	var spawnerCls *core.Class
	spawnerCls = rt.DefineClass("conf.spawner", 1, zero1)
	spawnerCls.Method(p.patSpawn, func(ctx *core.Ctx) {
		depth, v := ctx.Arg(0).Int(), ctx.Arg(1).Int()
		ctx.SetState(0, core.IntV(ctx.State(0).Int()+v))
		if ctx.Arg(2).Int() != 0 {
			ctx.SendPast(p.collector, p.patReport, core.IntV(v))
		}
		if depth == 0 {
			return
		}
		ctx.Create(spawnerCls, nil, func(ctx *core.Ctx, child core.Address) {
			ctx.SendPast(child, p.patSpawn, core.IntV(depth-1), core.IntV(v), core.IntV(1))
		})
	})

	// Lay out the fixed objects round-robin across nodes.
	node := 0
	place := func(cls *core.Class) core.Address {
		a := rt.NewObjectOn(node%p.Nodes, cls)
		node++
		return a
	}
	p.adder = place(adderCls)
	p.collector = place(collectorCls)
	for i := 0; i < p.relays; i++ {
		a := place(relayCls)
		p.accs = append(p.accs, a)
		p.targets = append(p.targets, a)
	}
	for i := 0; i < p.askers; i++ {
		a := place(askerCls)
		p.accs = append(p.accs, a)
		p.targets = append(p.targets, a)
	}
	var gates, spawners []core.Address
	for i := 0; i < p.gates; i++ {
		a := place(gateCls)
		p.accs = append(p.accs, a)
		gates = append(gates, a)
	}
	for i := 0; i < p.spawners; i++ {
		a := place(spawnerCls)
		p.accs = append(p.accs, a)
		spawners = append(spawners, a)
	}

	rng := rand.New(rand.NewSource(p.Seed * 104729))
	return func() {
		for i := 0; i < p.injections; i++ {
			v := int64(1 + rng.Intn(9))
			budget := int64(1 + rng.Intn(p.maxBudget))
			switch rng.Intn(3) {
			case 0:
				t := p.targets[rng.Intn(len(p.targets))]
				rt.Inject(t, p.patPoke, core.IntV(budget), core.IntV(v))
			case 1:
				s := spawners[rng.Intn(len(spawners))]
				rt.Inject(s, p.patSpawn, core.IntV(budget%6), core.IntV(v), core.IntV(0))
			case 2:
				g := gates[rng.Intn(len(gates))]
				rt.Inject(g, p.patOpen, core.IntV(v))
				rt.Inject(g, p.patData, core.IntV(v+1))
			}
		}
	}
}

// Observe reads the outcome of a quiescent run. Every accumulator it reads
// — the fixed objects plus the collector that stands in for the dynamic
// children — is simulation state, so the observation is valid under every
// engine, including ones that replay or roll back events.
func (p *Program) Observe(rt *core.Runtime) Expected {
	var sum int64
	read := func(a core.Address) int64 {
		v := a.Obj.State(0)
		if v.IsNil() {
			return 0 // never received a message: lazy init never ran
		}
		return v.Int()
	}
	for _, a := range p.accs {
		sum += read(a)
	}
	sum += read(p.collector)
	c := rt.TotalStats()
	return Expected{
		Sum:       sum,
		Creations: c.Creations(),
		Messages:  c.TotalMessages(),
	}
}

// Reset clears per-run observation state so the Program can be rebuilt on a
// fresh runtime. (All observation state now lives inside the simulation and
// is rebuilt by Build; Reset is kept for the harness call sites.)
func (p *Program) Reset() {}

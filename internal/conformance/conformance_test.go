package conformance

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/parexec"
	"repro/internal/remote"
	"repro/internal/sim"
)

// runDES executes the program on the discrete-event simulator.
func runDES(t *testing.T, p *Program, policy core.Policy) Expected {
	t.Helper()
	p.Reset()
	m, err := machine.New(machine.DefaultConfig(p.Nodes))
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(m, core.Options{Policy: policy})
	remote.Attach(rt, remote.Options{StockDepth: 2, Placement: remote.RoundRobin{}, Seed: 1})
	inject := p.Build(rt)
	inject()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return p.Observe(rt)
}

// runPar executes the program on the goroutine-per-node driver.
func runPar(t *testing.T, p *Program) Expected {
	t.Helper()
	p.Reset()
	ex := parexec.New(p.Nodes, core.Options{})
	inject := p.Build(ex.RT)
	inject()
	if _, err := ex.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return p.Observe(ex.RT)
}

const seeds = 25

func TestStackVsNaiveEquivalence(t *testing.T) {
	// The two scheduling policies must produce identical observable results
	// for every generated program: same accumulated sums, same creations,
	// same message counts — only timing may differ.
	for seed := int64(1); seed <= seeds; seed++ {
		nodes := 1 + int(seed)%7
		st := runDES(t, Generate(seed, nodes), core.PolicyStackBased)
		nv := runDES(t, Generate(seed, nodes), core.PolicyNaive)
		if st != nv {
			t.Errorf("seed %d (%d nodes): stack %+v != naive %+v", seed, nodes, st, nv)
		}
		if st.Sum == 0 || st.Messages == 0 {
			t.Errorf("seed %d: degenerate program (sum=%d msgs=%d)", seed, st.Sum, st.Messages)
		}
	}
}

func TestDESDeterminism(t *testing.T) {
	// Two DES runs of the same program are bit-identical in every counter.
	for seed := int64(1); seed <= seeds; seed++ {
		nodes := 2 + int(seed)%6
		a := runDES(t, Generate(seed, nodes), core.PolicyStackBased)
		b := runDES(t, Generate(seed, nodes), core.PolicyStackBased)
		if a != b {
			t.Errorf("seed %d: nondeterministic: %+v vs %+v", seed, a, b)
		}
	}
}

func TestDESVsParallelEquivalence(t *testing.T) {
	// The discrete-event simulation and the real-parallel engine must agree
	// on sums and creations. Message counts can differ slightly between
	// engines only in that... they must not: the same sends happen either
	// way, so we compare everything.
	for seed := int64(1); seed <= seeds; seed++ {
		nodes := 2 + int(seed)%4
		des := runDES(t, Generate(seed, nodes), core.PolicyStackBased)
		par := runPar(t, Generate(seed, nodes))
		if des.Sum != par.Sum {
			t.Errorf("seed %d: DES sum %d != parallel sum %d", seed, des.Sum, par.Sum)
		}
		if des.Creations != par.Creations {
			t.Errorf("seed %d: DES creations %d != parallel %d", seed, des.Creations, par.Creations)
		}
		if des.Messages != par.Messages {
			t.Errorf("seed %d: DES messages %d != parallel %d", seed, des.Messages, par.Messages)
		}
	}
}

func TestSingleNodeMatchesMultiNode(t *testing.T) {
	// The program's functional outcome is placement independent: running
	// everything on one node gives the same sums as spreading over many.
	for seed := int64(1); seed <= 10; seed++ {
		one := runDES(t, Generate(seed, 1), core.PolicyStackBased)
		many := runDES(t, Generate(seed, 8), core.PolicyStackBased)
		if one.Sum != many.Sum {
			t.Errorf("seed %d: 1-node sum %d != 8-node sum %d", seed, one.Sum, many.Sum)
		}
		if one.Creations != many.Creations {
			t.Errorf("seed %d: creations differ: %d vs %d", seed, one.Creations, many.Creations)
		}
	}
}

func TestStockDepthIsFunctionallyInvisible(t *testing.T) {
	// Chunk-stock depth changes latency, never results.
	run := func(seed int64, depth int) Expected {
		p := Generate(seed, 6)
		p.Reset()
		m, err := machine.New(machine.DefaultConfig(6))
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(m, core.Options{})
		remote.Attach(rt, remote.Options{StockDepth: depth, Placement: remote.RoundRobin{}, Seed: 1})
		inject := p.Build(rt)
		inject()
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Observe(rt)
	}
	for seed := int64(1); seed <= 10; seed++ {
		with := run(seed, 3)
		without := run(seed, 0)
		if with.Sum != without.Sum || with.Creations != without.Creations {
			t.Errorf("seed %d: stock changed results: %+v vs %+v", seed, with, without)
		}
	}
}

func TestFaultsAreFunctionallyInvisible(t *testing.T) {
	// A lossy interconnect under the reliable-delivery protocol changes
	// timing and packet counts, never results: every generated program
	// reaches quiescence with the same sums and creations as its
	// fault-free run, and no message is lost.
	run := func(seed int64, nodes int, plan fault.Plan) Expected {
		p := Generate(seed, nodes)
		p.Reset()
		m, err := machine.New(machine.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		reliable := plan.Enabled()
		if reliable {
			inj, err := fault.NewInjector(plan, seed, nodes)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFaults(inj)
		}
		rt := core.NewRuntime(m, core.Options{})
		remote.Attach(rt, remote.Options{
			StockDepth: 2, Placement: remote.RoundRobin{}, Seed: 1, Reliable: reliable,
		})
		inject := p.Build(rt)
		inject()
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if c := rt.TotalStats(); c.LostMessages() != 0 || c.RelAbandoned != 0 {
			t.Errorf("seed %d: lost=%d abandoned=%d", seed, c.LostMessages(), c.RelAbandoned)
		}
		return p.Observe(rt)
	}
	plan := fault.UniformLinks(0.10, 0.05, 2*sim.Microsecond)
	for seed := int64(1); seed <= seeds; seed++ {
		nodes := 2 + int(seed)%6
		clean := run(seed, nodes, fault.Plan{})
		faulted := run(seed, nodes, plan)
		if clean != faulted {
			t.Errorf("seed %d (%d nodes): faults changed results: %+v vs %+v",
				seed, nodes, clean, faulted)
		}
	}
}

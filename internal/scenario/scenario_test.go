package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBundledScenariosPass is the conformance suite: every shipped
// scenario must reach quiescence under its faults with the same answer as
// its fault-free baseline and zero lost messages.
func TestBundledScenariosPass(t *testing.T) {
	specs, err := Bundled()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 3 {
		t.Fatalf("expected several bundled scenarios, found %d", len(specs))
	}
	for _, sp := range specs {
		t.Run(sp.Name, func(t *testing.T) {
			o, err := Run(sp)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range o.Violations {
				t.Error(v)
			}
			if t.Failed() {
				t.Log(o.Report())
			}
		})
	}
}

// TestScenarioDeterminism re-runs one bundled scenario and requires the
// byte-identical outcome: same counters, same elapsed time, same answer.
func TestScenarioDeterminism(t *testing.T) {
	sp, err := Find("forkjoin-dup-jitter")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Faulted.Stats != b.Faulted.Stats {
		t.Errorf("same spec produced different counters:\n%+v\nvs\n%+v", a.Faulted.Stats, b.Faulted.Stats)
	}
	if a.Faulted.Elapsed != b.Faulted.Elapsed || a.Faulted.Answer != b.Faulted.Answer {
		t.Errorf("same spec produced different runs: %v/%s vs %v/%s",
			a.Faulted.Elapsed, a.Faulted.Answer, b.Faulted.Elapsed, b.Faulted.Answer)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"missing name", `{"workload":"forkjoin","nodes":2}`},
		{"bad workload", `{"name":"x","workload":"nope","nodes":2}`},
		{"zero nodes", `{"name":"x","workload":"forkjoin"}`},
		{"drop = 1", `{"name":"x","workload":"forkjoin","nodes":2,"faults":{"links":[{"drop":1.0}]}}`},
		{"pause out of range", `{"name":"x","workload":"forkjoin","nodes":2,"faults":{"pauses":[{"node":9,"at_ns":0,"for_ns":10}]}}`},
	}
	for _, tc := range cases {
		var sp Spec
		if err := json.Unmarshal([]byte(tc.json), &sp); err != nil {
			continue // malformed JSON is also a pass for this test
		}
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
	}
}

// TestLinkWildcardDefault pins that omitted src/dst mean "any node".
func TestLinkWildcardDefault(t *testing.T) {
	var l Link
	if err := json.Unmarshal([]byte(`{"drop":0.5}`), &l); err != nil {
		t.Fatal(err)
	}
	if l.Src != -1 || l.Dst != -1 {
		t.Errorf("omitted src/dst = (%d,%d), want wildcard (-1,-1)", l.Src, l.Dst)
	}
}

// TestProfileWindowKnob asserts the profiling spec field: the profiler
// attaches to both runs, slices the time series by the requested window,
// changes no checked result (the run still passes), and its digest lands
// in the report.
func TestProfileWindowKnob(t *testing.T) {
	plain := Spec{Name: "prof", Workload: "forkjoin", Nodes: 4, Depth: 5}
	profiled := plain
	profiled.ProfileWindowNs = 20_000
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(profiled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Faulted.Profile != nil {
		t.Error("unprofiled scenario produced a profile report")
	}
	p := b.Faulted.Profile
	if p == nil {
		t.Fatal("profiled scenario produced no profile report")
	}
	if b.Baseline.Profile == nil {
		t.Error("baseline run produced no profile report")
	}
	if len(p.Slices) < 2 {
		t.Errorf("window 20µs produced %d slices, want several", len(p.Slices))
	}
	if !b.OK() {
		t.Errorf("profiled scenario failed: %v", b.Violations)
	}
	if a.Faulted.Answer != b.Faulted.Answer || a.Faulted.Elapsed != b.Faulted.Elapsed {
		t.Error("attaching the profiler changed the scenario outcome")
	}
	if rep := b.Report(); !strings.Contains(rep, "profile:") {
		t.Errorf("report lacks the profile digest:\n%s", rep)
	}
}

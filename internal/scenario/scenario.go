// Package scenario executes declarative fault-injection scenarios: a JSON
// spec names a workload, a fleet size, a fault schedule (link drop /
// duplication / jitter rules, node pause windows and node crashes that
// recover from coordinated checkpoints) and assertions. The
// runner executes the workload twice with the same seed — once on a
// fault-free machine, once under the declared faults — and checks that the
// faulted run reaches quiescence, computes the same answer, loses no
// messages, and satisfies the spec's extra assertions.
//
// The format is intentionally small and declarative (compare the fleet /
// events / assertions scenario files of distributed-system simulators):
// everything a scenario can express is reproducible from (spec, seed)
// alone.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	abcl "repro"
	"repro/internal/apps/diffusion"
	"repro/internal/apps/hotkey"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Link is one link-fault rule. Src/Dst -1 — the default when omitted —
// matches any node; the first matching rule wins.
type Link struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Drop   float64 `json:"drop,omitempty"`
	Dup    float64 `json:"dup,omitempty"`
	Jitter int64   `json:"jitter_ns,omitempty"`
}

// UnmarshalJSON defaults omitted src/dst to the wildcard.
func (l *Link) UnmarshalJSON(data []byte) error {
	type raw Link
	r := raw{Src: abcl.Wildcard, Dst: abcl.Wildcard}
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	*l = Link(r)
	return nil
}

// Pause suspends one node's processor for a virtual-time window.
type Pause struct {
	Node int   `json:"node"`
	At   int64 `json:"at_ns"`
	For  int64 `json:"for_ns"`
}

// Crash kills one node at a virtual time; the machine rolls back to the
// latest coordinated checkpoint when the node restarts RestartAfter later.
type Crash struct {
	Node         int   `json:"node"`
	At           int64 `json:"at_ns"`
	RestartAfter int64 `json:"restart_after_ns"`
}

// Faults is the declarative fault schedule of a scenario.
type Faults struct {
	Links   []Link  `json:"links,omitempty"`
	Pauses  []Pause `json:"pauses,omitempty"`
	Crashes []Crash `json:"crashes,omitempty"`
}

// Plan translates the schedule into a FaultPlan.
func (f Faults) Plan() abcl.FaultPlan {
	var p abcl.FaultPlan
	for _, l := range f.Links {
		p.Links = append(p.Links, abcl.LinkFault{
			Src: l.Src, Dst: l.Dst,
			Drop: l.Drop, Dup: l.Dup, Jitter: sim.Time(l.Jitter),
		})
	}
	for _, pa := range f.Pauses {
		p.Pauses = append(p.Pauses, abcl.NodePause{
			Node: pa.Node, At: sim.Time(pa.At), For: sim.Time(pa.For),
		})
	}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, abcl.NodeCrash{
			Node: c.Node, At: sim.Time(c.At), RestartAfter: sim.Time(c.RestartAfter),
		})
	}
	return p
}

// Assert lists the optional assertions of a scenario. Quiescence, an
// answer identical to the fault-free baseline, zero lost messages and zero
// abandoned messages are always checked — they are the point of the
// reliable-delivery subsystem, not an option.
type Assert struct {
	// MinRetries requires at least this many retransmissions (proof the
	// faults actually bit).
	MinRetries uint64 `json:"min_retries,omitempty"`
	// MinDrops requires at least this many injected link drops.
	MinDrops uint64 `json:"min_drops,omitempty"`
	// MinDupSuppressed requires at least this many suppressed duplicates.
	MinDupSuppressed uint64 `json:"min_dup_suppressed,omitempty"`
	// MinPauses requires at least this many node-pause activations.
	MinPauses uint64 `json:"min_pauses,omitempty"`
	// MaxSlowdown bounds faulted elapsed time as a multiple of the
	// baseline's (0 = unchecked).
	MaxSlowdown float64 `json:"max_slowdown,omitempty"`
	// MinRestarts requires at least this many crash restarts (proof the
	// declared crashes fired before the workload finished).
	MinRestarts uint64 `json:"min_restarts,omitempty"`
	// MinCkptRounds requires at least this many completed coordinated
	// checkpoint rounds in the faulted run.
	MinCkptRounds uint64 `json:"min_ckpt_rounds,omitempty"`
}

// Spec is one declarative scenario.
type Spec struct {
	Name     string `json:"name"`
	Workload string `json:"workload"` // nqueens | forkjoin | diffusion | hotkey
	Nodes    int    `json:"nodes"`
	Seed     int64  `json:"seed,omitempty"`

	// Workload parameters (each workload reads its own).
	N        int    `json:"n,omitempty"`        // nqueens board size
	Depth    int    `json:"depth,omitempty"`    // forkjoin tree depth
	Grid     int    `json:"grid,omitempty"`     // diffusion grid edge
	Iters    int    `json:"iters,omitempty"`    // diffusion iterations
	Clients  int    `json:"clients,omitempty"`  // hotkey client objects
	Ops      int    `json:"ops,omitempty"`      // hotkey operations per client
	Coverage string `json:"coverage,omitempty"` // hotkey annotation coverage: none|partial|full

	// Wire-path options, applied to the baseline and the faulted run alike
	// so the two runs stay comparable. A positive AckDelayNs forces the
	// reliable protocol on in the (fault-free) baseline too, since delayed
	// acks only exist inside it.
	BatchWindowNs int64 `json:"batch_window_ns,omitempty"`
	AckDelayNs    int64 `json:"ack_delay_ns,omitempty"`

	// CheckpointIntervalNs, when positive, enables periodic coordinated
	// checkpoints. Like the wire-path options it applies to the baseline
	// too, so both runs pay the same snapshot cost and the crash-recovery
	// claim — same answer as a fault-free run of the same configuration —
	// is exactly what the answer check verifies.
	CheckpointIntervalNs int64 `json:"checkpoint_interval_ns,omitempty"`

	// ProfileWindowNs, when positive, attaches the cost-attribution
	// profiler with this time-series window to both runs. The profiler
	// only observes (it never perturbs the schedule), so the answer and
	// ledger checks are unaffected; the faulted run's per-path and
	// per-slice "where did the time go" digest is appended to the report.
	ProfileWindowNs int64 `json:"profile_window_ns,omitempty"`

	// Executor selects the execution engine for both runs: "" or
	// "sequential" (the default), "conservative" or "optimistic" with
	// Workers lanes. Parallel engines forbid observers, so a spec that
	// names one cannot be packed (runpack traces are captured
	// sequentially). OptimisticWindowNs overrides the Time Warp
	// speculation window (0 = adaptive default).
	Executor           string `json:"executor,omitempty"`
	Workers            int    `json:"workers,omitempty"`
	OptimisticWindowNs int64  `json:"optimistic_window_ns,omitempty"`

	Faults Faults `json:"faults"`
	Assert Assert `json:"assert"`
}

// ParallelConfigured reports whether the spec names a parallel execution
// engine (which forbids observers, and therefore packing).
func (sp Spec) ParallelConfigured() bool {
	return (sp.Executor == "conservative" || sp.Executor == "optimistic") && sp.Workers > 1
}

// executorOption translates the spec's executor knob into a System
// option; ok is false for sequential specs.
func (sp Spec) executorOption() (abcl.Option, bool) {
	if !sp.ParallelConfigured() {
		return nil, false
	}
	if sp.Executor == "optimistic" {
		return abcl.WithExecutor(abcl.Optimistic(sp.Workers, abcl.OptimisticOptions{
			Window: sim.Time(sp.OptimisticWindowNs),
		})), true
	}
	return abcl.WithExecutor(abcl.Conservative(sp.Workers)), true
}

// Validate rejects malformed specs before anything runs. Like NewSystem's
// option validation, every complaint — missing fields, unknown workloads,
// bad fault schedules — is collected and returned as one joined error, so a
// broken spec reports all of its problems at once.
func (sp Spec) Validate() error {
	var errs []error
	name := sp.Name
	if name == "" {
		name = "(unnamed)"
		errs = append(errs, fmt.Errorf("scenario: missing name"))
	}
	if sp.Nodes < 1 {
		errs = append(errs, fmt.Errorf("scenario %s: nodes must be >= 1", name))
	}
	switch sp.Workload {
	case "nqueens", "forkjoin", "diffusion":
	case "hotkey":
		if sp.Nodes < 2 {
			errs = append(errs, fmt.Errorf("scenario %s: hotkey needs >= 2 nodes", name))
		}
		if sp.Coverage != "" {
			if _, err := hotkey.ParseCoverage(sp.Coverage); err != nil {
				errs = append(errs, fmt.Errorf("scenario %s: %w", name, err))
			}
		}
	default:
		errs = append(errs, fmt.Errorf("scenario %s: unknown workload %q", name, sp.Workload))
	}
	switch sp.Executor {
	case "", "sequential", "conservative", "optimistic":
	default:
		errs = append(errs, fmt.Errorf("scenario %s: unknown executor %q", name, sp.Executor))
	}
	if sp.Workers > 1 && (sp.Executor == "" || sp.Executor == "sequential") {
		errs = append(errs, fmt.Errorf("scenario %s: workers requires a parallel executor", name))
	}
	if sp.OptimisticWindowNs != 0 && sp.Executor != "optimistic" {
		errs = append(errs, fmt.Errorf("scenario %s: optimistic_window_ns requires the optimistic executor", name))
	}
	if sp.Executor == "conservative" && sp.ParallelConfigured() &&
		(sp.CheckpointIntervalNs > 0 || len(sp.Faults.Crashes) > 0) {
		errs = append(errs, fmt.Errorf("scenario %s: the conservative executor is incompatible with checkpoints and crash faults", name))
	}
	// The fault schedule is only checkable against a sane fleet size; with
	// nodes < 1 every rule would drown in out-of-range noise.
	if sp.Nodes >= 1 {
		if err := sp.Faults.Plan().Validate(sp.Nodes); err != nil {
			errs = append(errs, fmt.Errorf("scenario %s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// RunResult is one execution of the scenario's workload.
type RunResult struct {
	Answer  string // canonical workload answer, comparable across runs
	Elapsed sim.Time
	Packets uint64
	Stats   stats.Counters
	Profile *abcl.ProfileReport // set when the spec asked for profiling
}

// Outcome reports a full scenario execution: the fault-free baseline, the
// faulted run, and any assertion violations (empty = pass).
type Outcome struct {
	Spec       Spec
	Baseline   RunResult
	Faulted    RunResult
	Violations []string
}

// OK reports whether every assertion held.
func (o Outcome) OK() bool { return len(o.Violations) == 0 }

// RunOpts carries cross-cutting instrumentation for a scenario execution;
// the zero value runs the scenario bare. The runpack subsystem uses it to
// capture a replayable event trace of a whole scenario.
type RunOpts struct {
	// Observer, when non-nil, receives every runtime event of the baseline
	// run followed by every event of the faulted run (the two systems
	// execute strictly in that order).
	Observer trace.Sink
	// Profile, when non-nil, attaches the cost-attribution profiler to both
	// runs, overriding the spec's ProfileWindowNs.
	Profile *abcl.ProfileOptions
}

// Run executes the scenario: baseline first, then the faulted run, then the
// assertions. The error return is for infrastructure failures (bad spec,
// workload error); assertion failures land in Outcome.Violations.
func Run(sp Spec) (Outcome, error) { return RunWith(sp, RunOpts{}) }

// RunWith is Run with instrumentation attached to both executions.
func RunWith(sp Spec, ro RunOpts) (Outcome, error) {
	if err := sp.Validate(); err != nil {
		return Outcome{}, err
	}
	base, err := runWorkload(sp, abcl.FaultPlan{}, ro)
	if err != nil {
		return Outcome{}, fmt.Errorf("scenario %s: baseline: %w", sp.Name, err)
	}
	faulted, err := runWorkload(sp, sp.Faults.Plan(), ro)
	if err != nil {
		return Outcome{}, fmt.Errorf("scenario %s: faulted: %w", sp.Name, err)
	}
	o := Outcome{Spec: sp, Baseline: base, Faulted: faulted}
	o.check()
	return o, nil
}

func (o *Outcome) check() {
	sp := o.Spec
	c := o.Faulted.Stats
	fail := func(format string, args ...any) {
		o.Violations = append(o.Violations, fmt.Sprintf(format, args...))
	}
	if o.Faulted.Answer != o.Baseline.Answer {
		fail("answer diverged under faults: %s != %s (baseline)", o.Faulted.Answer, o.Baseline.Answer)
	}
	// The sent/delivered ledger is only meaningful without crashes: counters
	// are monotonic across a rollback, so a send the restore truncated (sent
	// once, re-sent and delivered once after the rollback) leaves the ledger
	// permanently off by one. Under crashes the delivery guarantee is carried
	// by the answer check plus the abandoned count instead.
	if len(sp.Faults.Crashes) == 0 {
		if lost := c.LostMessages(); lost != 0 {
			fail("%d messages lost", lost)
		}
	}
	if c.RelAbandoned != 0 {
		fail("%d messages abandoned after max retries", c.RelAbandoned)
	}
	if c.Retransmits < sp.Assert.MinRetries {
		fail("retransmits = %d, want >= %d", c.Retransmits, sp.Assert.MinRetries)
	}
	if c.LinkDrops < sp.Assert.MinDrops {
		fail("link drops = %d, want >= %d", c.LinkDrops, sp.Assert.MinDrops)
	}
	if c.DupSuppressed < sp.Assert.MinDupSuppressed {
		fail("dup-suppressed = %d, want >= %d", c.DupSuppressed, sp.Assert.MinDupSuppressed)
	}
	if c.NodePauses < sp.Assert.MinPauses {
		fail("node pauses = %d, want >= %d", c.NodePauses, sp.Assert.MinPauses)
	}
	if m := sp.Assert.MaxSlowdown; m > 0 && o.Baseline.Elapsed > 0 {
		slow := float64(o.Faulted.Elapsed) / float64(o.Baseline.Elapsed)
		if slow > m {
			fail("slowdown %.2fx exceeds limit %.2fx", slow, m)
		}
	}
	if c.NodeRestarts < sp.Assert.MinRestarts {
		fail("node restarts = %d, want >= %d", c.NodeRestarts, sp.Assert.MinRestarts)
	}
	if c.CkptRounds < sp.Assert.MinCkptRounds {
		fail("checkpoint rounds = %d, want >= %d", c.CkptRounds, sp.Assert.MinCkptRounds)
	}
	// Every declared crash must have restarted by quiescence — a crash whose
	// outage outlives the workload would silently weaken the recovery claim.
	if want := uint64(len(sp.Faults.Crashes)); c.NodeRestarts < want {
		fail("node restarts = %d, want %d (one per declared crash)", c.NodeRestarts, want)
	}
}

// runWorkload executes the spec's workload once under the given plan.
func runWorkload(sp Spec, plan abcl.FaultPlan, ro RunOpts) (RunResult, error) {
	seed := sp.Seed
	if seed == 0 {
		seed = abcl.DefaultSeed
	}
	batch := sim.Time(sp.BatchWindowNs)
	ackDelay := sim.Time(sp.AckDelayNs)
	ckpt := sim.Time(sp.CheckpointIntervalNs)
	prof := ro.Profile
	if prof == nil && sp.ProfileWindowNs > 0 {
		prof = &abcl.ProfileOptions{Window: sim.Time(sp.ProfileWindowNs)}
	}
	var extra []abcl.Option
	if ro.Observer != nil {
		extra = append(extra, abcl.WithObserver(ro.Observer))
	}
	if opt, ok := sp.executorOption(); ok {
		extra = append(extra, opt)
	}
	switch sp.Workload {
	case "nqueens":
		n := sp.N
		if n == 0 {
			n = 6
		}
		res, err := nqueens.Run(nqueens.Options{
			N: n, Nodes: sp.Nodes, Seed: seed, Faults: plan,
			Placement:   abcl.PlaceRoundRobin, // deterministic across runs
			BatchWindow: batch, AckDelay: ackDelay, Reliable: ackDelay > 0,
			CheckpointInterval: ckpt,
			Profile:            prof,
			Extra:              extra,
		})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			Answer:  fmt.Sprintf("solutions=%d", res.Solutions),
			Elapsed: res.Elapsed,
			Stats:   res.Stats,
			Profile: res.Report.Profile,
		}, nil
	case "forkjoin":
		depth := sp.Depth
		if depth == 0 {
			depth = 6
		}
		opts := []abcl.Option{abcl.WithNodes(sp.Nodes), abcl.WithSeed(seed), abcl.WithFaults(plan)}
		if batch > 0 {
			opts = append(opts, abcl.WithBatching(batch, 0))
		}
		if ackDelay > 0 {
			opts = append(opts, abcl.WithReliable(), abcl.WithDelayedAcks(ackDelay))
		}
		if ckpt > 0 {
			opts = append(opts, abcl.WithCheckpoint(ckpt))
		}
		if prof != nil {
			opts = append(opts, abcl.WithProfiler(*prof))
		}
		opts = append(opts, extra...)
		sys, err := abcl.NewSystem(opts...)
		if err != nil {
			return RunResult{}, err
		}
		leaves, err := misc.RunForkJoinOn(sys, depth)
		if err != nil {
			return RunResult{}, err
		}
		rep := sys.Report()
		return RunResult{
			Answer:  fmt.Sprintf("leaves=%d", leaves),
			Elapsed: rep.Sched.Elapsed,
			Packets: rep.Wire.Packets,
			Stats:   rep.Sched.Counters,
			Profile: rep.Profile,
		}, nil
	case "hotkey":
		clients, ops := sp.Clients, sp.Ops
		if clients == 0 {
			clients = 8
		}
		if ops == 0 {
			ops = 20
		}
		cov := hotkey.CoverFull
		if sp.Coverage != "" {
			cov, _ = hotkey.ParseCoverage(sp.Coverage) // validated by Validate
		}
		res, err := hotkey.Run(hotkey.Options{
			Nodes: sp.Nodes, Clients: clients, Ops: ops,
			Coverage: cov, Seed: seed, Faults: plan,
			BatchWindow: batch, AckDelay: ackDelay, Reliable: ackDelay > 0,
			CheckpointInterval: ckpt,
			Profile:            prof,
			Extra:              extra,
		})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			// The op ledger and final value are interleaving-independent, so
			// they stay comparable between the baseline and the faulted run
			// even though faults reorder the overlapped invocations.
			Answer:  fmt.Sprintf("ops=%d final=%d", res.Ops, res.Final),
			Elapsed: res.Elapsed,
			Stats:   res.Stats,
			Profile: res.Report.Profile,
		}, nil
	case "diffusion":
		grid, iters := sp.Grid, sp.Iters
		if grid == 0 {
			grid = 8
		}
		if iters == 0 {
			iters = 5
		}
		res, err := diffusion.Run(diffusion.Options{
			W: grid, H: grid, Iters: iters, Nodes: sp.Nodes,
			BlockPlace: true, Seed: seed, Faults: plan,
			BatchWindow: batch, AckDelay: ackDelay, Reliable: ackDelay > 0,
			CheckpointInterval: ckpt,
			Profile:            prof,
			Extra:              extra,
		})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			Answer:  fmt.Sprintf("residual=%.9g", res.Residual),
			Elapsed: res.Elapsed,
			Stats:   res.Stats,
			Profile: res.Report.Profile,
		}, nil
	}
	return RunResult{}, fmt.Errorf("unknown workload %q", sp.Workload)
}

// Load reads one scenario spec from a JSON file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %w", path, err)
	}
	return sp, sp.Validate()
}

// Report writes a human-readable outcome summary.
func (o Outcome) Report() string {
	c := o.Faulted.Stats
	s := fmt.Sprintf("scenario %-24s %-9s  %s\n", o.Spec.Name, o.Spec.Workload, o.Faulted.Answer)
	s += fmt.Sprintf("  baseline %-12v faulted %-12v (%.2fx)\n",
		o.Baseline.Elapsed, o.Faulted.Elapsed, slowdown(o.Baseline.Elapsed, o.Faulted.Elapsed))
	s += fmt.Sprintf("  drops=%d dups=%d pauses=%d retransmits=%d dup-suppressed=%d held=%d lost=%d\n",
		c.LinkDrops, c.LinkDups, c.NodePauses,
		c.Retransmits, c.DupSuppressed, c.HeldOutOfOrder, c.LostMessages())
	if c.CkptRounds > 0 || c.NodeCrashes > 0 {
		s += fmt.Sprintf("  checkpoint: rounds=%d stable-bytes=%d crashes=%d restarts=%d replayed=%d\n",
			c.CkptRounds, c.CkptBytes, c.NodeCrashes, c.NodeRestarts, c.ReplayedMsgs)
	}
	s += profileDigest(o.Faulted.Profile)
	if o.OK() {
		s += "  PASS\n"
	} else {
		for _, v := range o.Violations {
			s += fmt.Sprintf("  FAIL: %s\n", v)
		}
	}
	return s
}

// profileDigest condenses a profile report into two "where did the time
// go" lines: the heaviest attribution paths, and the busiest time slice.
// Empty when the spec did not ask for profiling.
func profileDigest(p *abcl.ProfileReport) string {
	if p == nil {
		return ""
	}
	paths := append([]abcl.PathStat(nil), p.Paths...)
	sort.Slice(paths, func(i, j int) bool { return paths[i].Instr > paths[j].Instr })
	if len(paths) > 3 {
		paths = paths[:3]
	}
	s := fmt.Sprintf("  profile: dormant=%.0f%% of local deliveries; heaviest paths:", p.DormantFraction*100)
	for _, ps := range paths {
		s += fmt.Sprintf(" %s %.0f%%", ps.Path, ps.InstrShare*100)
	}
	s += "\n"
	if len(p.Slices) > 0 {
		busy := 0
		for i, sl := range p.Slices {
			if sl.Instr > p.Slices[busy].Instr {
				busy = i
			}
		}
		sl := p.Slices[busy]
		s += fmt.Sprintf("  profile: %d slices of %v; busiest [%v,%v) instr=%d packets=%d\n",
			len(p.Slices), p.Window, sl.Start, sl.Start+p.Window, sl.Instr, sl.Packets)
	}
	return s
}

func slowdown(base, faulted sim.Time) float64 {
	if base <= 0 {
		return 0
	}
	return float64(faulted) / float64(base)
}

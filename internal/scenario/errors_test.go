package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadMalformedJSON pins that a syntactically broken spec file fails
// with an error naming the file, not a zero-value Spec that fails later.
func TestLoadMalformedJSON(t *testing.T) {
	path := writeSpec(t, `{"name": "broken", "workload":`)
	if _, err := Load(path); err == nil {
		t.Fatal("want error for malformed JSON")
	} else if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
}

// TestLoadUnknownWorkload pins the unknown-workload complaint, with the
// offending name quoted.
func TestLoadUnknownWorkload(t *testing.T) {
	path := writeSpec(t, `{"name": "typo", "workload": "quicksort", "nodes": 4}`)
	_, err := Load(path)
	if err == nil {
		t.Fatal("want error for unknown workload")
	}
	if !strings.Contains(err.Error(), `unknown workload "quicksort"`) {
		t.Errorf("error does not quote the workload: %v", err)
	}
}

// TestValidateAggregatesErrors asserts Validate collects every complaint
// into one joined error (one per line, errors.Join style) instead of
// stopping at the first: a spec with three independent problems must
// surface all three at once.
func TestValidateAggregatesErrors(t *testing.T) {
	sp := Spec{Workload: "nope"} // missing name, zero nodes, unknown workload
	err := sp.Validate()
	if err == nil {
		t.Fatal("want validation errors")
	}
	text := err.Error()
	for _, want := range []string{
		"missing name",
		"nodes must be >= 1",
		`unknown workload "nope"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("aggregated error missing %q:\n%s", want, text)
		}
	}
	if got := len(strings.Split(text, "\n")); got != 3 {
		t.Errorf("joined error has %d lines, want 3:\n%s", got, text)
	}
}

// TestValidatePauseCrashOverlap pins the overlap rejection: a pause window
// and a crash outage on the same node at the same time have no well-defined
// semantics, and the error names both windows.
func TestValidatePauseCrashOverlap(t *testing.T) {
	sp := Spec{
		Name: "overlap", Workload: "forkjoin", Nodes: 4,
		CheckpointIntervalNs: 1000,
		Faults: Faults{
			Pauses:  []Pause{{Node: 2, At: 100, For: 500}},
			Crashes: []Crash{{Node: 2, At: 300, RestartAfter: 400}},
		},
	}
	err := sp.Validate()
	if err == nil {
		t.Fatal("want error for overlapping pause and crash on one node")
	}
	if !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("error does not mention the overlap: %v", err)
	}
	if !strings.Contains(err.Error(), "scenario overlap:") {
		t.Errorf("error does not carry the scenario name: %v", err)
	}
}

// TestValidateHotkeyFleet pins the hotkey minimum-fleet and coverage checks.
func TestValidateHotkeyFleet(t *testing.T) {
	sp := Spec{Name: "tiny", Workload: "hotkey", Nodes: 1, Coverage: "most"}
	err := sp.Validate()
	if err == nil {
		t.Fatal("want error for a 1-node hotkey scenario with bad coverage")
	}
	text := err.Error()
	if !strings.Contains(text, ">= 2 nodes") {
		t.Errorf("error missing the fleet complaint: %v", err)
	}
	if !strings.Contains(text, "most") {
		t.Errorf("error missing the coverage complaint: %v", err)
	}
}

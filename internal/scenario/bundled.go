package scenario

import (
	"embed"
	"encoding/json"
	"fmt"
	"sort"
)

//go:embed scenarios/*.json
var bundledFS embed.FS

// Bundled returns the scenarios shipped with the repository, sorted by
// name. They double as the conformance suite for the fault-injection and
// reliable-delivery subsystem.
func Bundled() ([]Spec, error) {
	entries, err := bundledFS.ReadDir("scenarios")
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, 0, len(entries))
	for _, e := range entries {
		data, err := bundledFS.ReadFile("scenarios/" + e.Name())
		if err != nil {
			return nil, err
		}
		var sp Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", e.Name(), err)
		}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// Find returns the bundled scenario with the given name.
func Find(name string) (Spec, error) {
	specs, err := Bundled()
	if err != nil {
		return Spec{}, err
	}
	for _, sp := range specs {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: no bundled scenario named %q", name)
}

// Package checkpoint is the consistent-snapshot and crash-recovery subsystem
// of the simulated multicomputer. It periodically captures a coordinated
// global checkpoint — a Chandy–Lamport-style consistent cut over the
// machine's FIFO links — and, when a node crash fault fires, rolls the whole
// machine back to the last complete checkpoint round and resumes execution
// from it.
//
// # Snapshot rounds
//
// Node 0 coordinates. On each interval tick it captures its own state and
// sends a marker on every outgoing channel; every other node captures its
// state on the first marker of the round it sees, then propagates markers on
// all of its own outgoing channels and acknowledges to the coordinator. The
// round is complete when the coordinator holds all n-1 acknowledgments.
// Markers ride the reliable layer's per-link sequence space (remote.SendCkpt),
// so a channel's post-snapshot traffic can never overtake its marker — the
// FIFO property the consistency of the cut rests on.
//
// A node's snapshot has three parts, each charged against the simulated
// stable store (machine.Cost.CkptInstr):
//
//   - language state: every hosted object with its state box, buffered
//     message queue, saved contexts and scheduling-queue position
//     (core.CaptureNode, through the Snapshotter codec registry);
//   - inter-node state: sequence cursors, chunk stocks, placement state,
//     location cache (remote.CaptureRel);
//   - channel state, held implicitly: the reliable layer retains every
//     transmitted record until a completed round's receive cursors cover it.
//
// # Crash recovery
//
// A crash (fault.NodeCrash) kills its node mid-run: receive buffers, object
// state and protocol windows are volatile and lost. At restart the subsystem
// performs a global rollback: every node — not just the crashed one — is
// restored to the last complete round, the machine era is bumped so all
// in-flight packets of the rolled-back timeline are revoked, and the
// retained in-flight records of the cut are re-pended and retransmitted.
// Restoring all nodes (rather than replaying the lost node against live
// peers) is what makes recovery exact: the restored cut is a state the
// fault-free machine could have been in, and execution from it is just a
// fresh deterministic run.
package checkpoint

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/trace"
)

// markerBytes is the wire payload of a snapshot marker beyond the packet
// header: the round number.
const markerBytes = 8

// Snapshot is one complete coordinated checkpoint: a consistent global state
// the machine can restart from.
type Snapshot struct {
	Round int
	At    sim.Time
	core  []*core.NodeImage
	rel   []*remote.RelImage
}

// SizeBytes reports the total modelled stable-store footprint of the round.
func (s *Snapshot) SizeBytes() int {
	total := 0
	for i := range s.core {
		total += s.core[i].SizeBytes() + s.rel[i].SizeBytes()
	}
	return total
}

// Manager drives the snapshot protocol and executes crash/restart events.
// All methods run on the simulation goroutine; the subsystem is incompatible
// with the parallel executor (a restore touches every lane at once).
type Manager struct {
	rt       *core.Runtime
	l        *remote.Layer
	m        *machine.Machine
	interval sim.Time
	tr       trace.Sink
	prof     *profile.Profiler

	reg *Registry

	n       int
	round   int       // last round started
	cur     *Snapshot // in-progress round; nil when idle
	snapped []bool    // per node: captured in the current round
	acks    int       // coordinator: snapshot-acks received for the round
	stable  *Snapshot // last complete round — the restore target

	// nextTickAt is the virtual time of the next armed coordinator tick
	// (zero when the tick chain has ended). The optimistic executor fences
	// its speculative windows on it so no window spans the start of a round.
	nextTickAt sim.Time
}

// New builds a manager over an attached runtime/layer pair. interval is the
// coordinator's tick period; zero means no periodic rounds — only the
// baseline round-0 checkpoint captured at Start (enough for crash plans that
// tolerate restarting from the beginning). reg may be nil (plain-copy codec
// for every class).
func New(rt *core.Runtime, l *remote.Layer, interval sim.Time, reg *Registry) *Manager {
	if reg == nil {
		reg = NewRegistry()
	}
	g := &Manager{
		rt:       rt,
		l:        l,
		m:        rt.M,
		interval: interval,
		reg:      reg,
		n:        rt.Nodes(),
	}
	g.snapped = make([]bool, g.n)
	return g
}

// SetTrace attaches an event sink for checkpoint events.
func (g *Manager) SetTrace(tr trace.Sink) { g.tr = tr }

// SetProfiler attaches the cost-attribution profiler; snapshot and restore
// charges then land on the ckpt path with their stable-store bytes.
func (g *Manager) SetProfiler(p *profile.Profiler) { g.prof = p }

// Registry returns the manager's codec registry.
func (g *Manager) Registry() *Registry { return g.reg }

// Stable returns the last complete checkpoint (the current restore target).
func (g *Manager) Stable() *Snapshot { return g.stable }

// Rounds returns the number of completed snapshot rounds, including the
// baseline round 0.
func (g *Manager) Rounds() int {
	if g.stable == nil {
		return 0
	}
	return g.stable.Round + 1
}

// Start captures the baseline round-0 checkpoint, schedules the periodic
// rounds, and installs the crash/restart events of the plan. Must run after
// the application's setup (classes defined, bootstrap objects created,
// initial messages injected) and before the machine runs: the baseline
// checkpoint is trivially consistent because no event has fired yet, which
// also covers crashes that strike before the first periodic round completes.
func (g *Manager) Start(crashes []fault.NodeCrash) {
	g.rt.Freeze()
	if !g.rt.SnapshotsEnabled() {
		panic("checkpoint: runtime was built without EnableSnapshots")
	}
	g.l.EnableCheckpoint()
	g.stable = g.capture(0, 0)
	if g.interval > 0 {
		g.scheduleTick(g.interval)
	}
	for _, c := range crashes {
		c := c
		mn := g.m.Node(c.Node)
		restart := c.At + c.RestartAfter
		g.m.Eng.ScheduleFuncOn(0, mn.Lane(), c.At, func() {
			mn.BeginOutage(restart)
			g.rt.NodeRT(c.Node).C.NodeCrashes++
			g.tracef(c.At, c.Node, trace.EvCrash, "crash, restart at %v", restart)
		})
		g.m.Eng.ScheduleFuncOn(0, 0, restart, func() {
			g.restore(restart, c.Node)
		})
	}
}

// Snapshot captures a direct (marker-free) global checkpoint and promotes it
// to the stable restore target. Valid only when the machine is quiescent —
// between Run calls no event is in flight, so every direct cut is consistent.
func (g *Manager) Snapshot() *Snapshot {
	g.round++
	g.stable = g.capture(g.round, g.m.MaxClock())
	return g.stable
}

// Restore rolls the whole machine back to the last stable checkpoint. Valid
// only when the machine is quiescent; the per-node completion (stable-store
// read charge, in-flight replay, wake) runs as lane events at the start of
// the next Run, which resumes execution from the restored state.
func (g *Manager) Restore() {
	g.restore(g.m.MaxClock(), -1)
}

// capture snapshots every node directly, without markers — valid only when
// no event is in flight (round 0, or a quiescent machine).
func (g *Manager) capture(round int, at sim.Time) *Snapshot {
	snap := &Snapshot{Round: round, At: at,
		core: make([]*core.NodeImage, g.n), rel: make([]*remote.RelImage, g.n)}
	g.cur = snap
	for i := 0; i < g.n; i++ {
		g.snapNode(i)
	}
	g.cur = nil
	g.l.CkptStableTrim(snap.rel)
	return snap
}

// scheduleTick arms the coordinator's next interval tick.
func (g *Manager) scheduleTick(at sim.Time) {
	g.nextTickAt = at
	ln := g.m.Node(0).Lane()
	g.m.Eng.ScheduleFuncOn(ln, ln, at, func() { g.tick(at) })
}

// NextTick returns the virtual time of the next armed coordinator tick, or
// zero when no tick is pending. The optimistic executor uses it as a window
// fence: a speculative window never extends past the start of a round, so
// the marker protocol always begins from committed state.
func (g *Manager) NextTick() sim.Time { return g.nextTickAt }

// RoundInFlight reports whether a snapshot round is currently collecting.
// The optimistic executor steps serially while true: a round's captures and
// marker traffic span many lanes and must observe a committed global state.
func (g *Manager) RoundInFlight() bool { return g.cur != nil }

// tick begins a snapshot round on the coordinator, unless a node is dead
// (the round could never collect its ack, so it is skipped until every node
// is back up) or the previous round is still collecting.
func (g *Manager) tick(now sim.Time) {
	// The tick chain must not keep a finished machine alive: the engine runs
	// until its queue drains, so when this tick was the last live event the
	// application has quiesced and the periodic rounds end with it. Dead
	// (stopped) timer slots don't count — each round's own marker traffic
	// leaves retry-timer slots behind that would otherwise read as pending
	// work and sustain the rounds forever.
	if g.m.Eng.LivePending() == 0 {
		g.nextTickAt = 0
		return
	}
	g.scheduleTick(now + g.interval)
	if g.cur != nil {
		return
	}
	for i := 0; i < g.n; i++ {
		if g.m.Node(i).Down(now) {
			return
		}
	}
	g.round++
	g.cur = &Snapshot{Round: g.round, At: now,
		core: make([]*core.NodeImage, g.n), rel: make([]*remote.RelImage, g.n)}
	for i := range g.snapped {
		g.snapped[i] = false
	}
	g.acks = 0
	g.m.Node(0).SyncClock(now)
	g.snapNode(0)
	r := g.round
	for d := 1; d < g.n; d++ {
		d := d
		g.l.SendCkpt(0, d, markerBytes, func() { g.onMarker(r, d) })
	}
	if g.n == 1 {
		g.completeRound()
	}
}

// onMarker runs at node d when a round-r marker is polled: first marker of
// the round captures the node and propagates markers; later markers of the
// same round (one arrives per inbound channel) are the cut's channel
// delimiters and need no action beyond their in-band position.
func (g *Manager) onMarker(r, d int) {
	if g.cur == nil || g.cur.Round != r || g.snapped[d] {
		return
	}
	g.snapNode(d)
	for p := 0; p < g.n; p++ {
		if p == d {
			continue
		}
		p := p
		g.l.SendCkpt(d, p, markerBytes, func() { g.onMarker(r, p) })
	}
	g.l.SendCkpt(d, 0, markerBytes, func() { g.onAck(r) })
}

// onAck runs at the coordinator when a snapshot acknowledgment arrives; the
// n-1th acknowledgment completes the round.
func (g *Manager) onAck(r int) {
	if g.cur == nil || g.cur.Round != r {
		return
	}
	g.acks++
	if g.acks == g.n-1 {
		g.completeRound()
	}
}

// completeRound promotes the collected round to the stable restore target,
// lets the reliable layer free retained records the round's receive cursors
// cover, and drops the previous stable round.
func (g *Manager) completeRound() {
	snap := g.cur
	g.cur = nil
	g.stable = snap
	g.l.CkptStableTrim(snap.rel)
	g.rt.NodeRT(0).C.CkptRounds++
	g.tracef(snap.At, 0, trace.EvCkptRound,
		"round %d complete (%d bytes)", snap.Round, snap.SizeBytes())
}

// snapNode captures one node's language and inter-node state into the
// current round and charges the stable-store write.
func (g *Manager) snapNode(i int) {
	ci := g.rt.CaptureNode(i, g.reg.encode)
	ri := g.l.CaptureRel(i)
	g.cur.core[i] = ci
	g.cur.rel[i] = ri
	g.snapped[i] = true
	bytes := ci.SizeBytes() + ri.SizeBytes()
	mn := g.m.Node(i)
	mn.Charge(g.m.Cfg.Cost.CkptInstr(bytes))
	if g.prof != nil {
		np := g.prof.Node(i)
		np.ChargeInstr(profile.Ckpt, g.m.Cfg.Cost.CkptInstr(bytes), mn.Now())
		np.CountEvent(profile.Ckpt, mn.Now())
		np.StableWrite(bytes)
	}
	c := &g.rt.NodeRT(i).C
	c.CkptSaves++
	c.CkptBytes += uint64(bytes)
	g.tracef(mn.Now(), i, trace.EvCkptSave,
		"snapshot round %d: %d objects, %d bytes", g.cur.Round, ci.Objects(), bytes)
}

// restore executes a global rollback: the whole machine returns to the last
// complete checkpoint round and execution resumes from it. node is the
// crashed node whose restart triggered the rollback, or -1 for a manual
// Restore. Runs as a host-lane event; incompatible with the parallel
// executor.
func (g *Manager) restore(at sim.Time, node int) {
	snap := g.stable
	if snap == nil {
		panic("checkpoint: restore without a stable checkpoint")
	}
	// The in-progress round (if any) dies with the timeline that was
	// collecting it: its markers and acks are rolled back with everything
	// else.
	g.cur = nil
	g.acks = 0
	// Tear down the rolled-back timeline's protocol state, revoke its
	// in-flight packets, and clear the survivors' receive queues.
	g.l.CkptTeardown()
	g.m.BumpEra()
	for i := 0; i < g.n; i++ {
		g.m.Node(i).DropRx()
	}
	for i := 0; i < g.n; i++ {
		g.rt.RestoreNode(snap.core[i], g.reg.decode)
		g.l.CkptRestoreNode(snap.rel[i])
	}
	// Truncation must be synchronous with the cursor restore: any event of
	// the restored timeline (a periodic tick's marker, say) may transmit
	// under a restored sequence number before the per-node replay events run.
	g.l.CkptTruncate(snap.rel)
	if node >= 0 {
		g.m.Node(node).EndOutage(at)
		g.rt.NodeRT(node).C.NodeRestarts++
		g.tracef(at, node, trace.EvRestore,
			"restart: global rollback to round %d (captured at %v)", snap.Round, snap.At)
	} else {
		g.tracef(at, 0, trace.EvRestore,
			"manual rollback to round %d (captured at %v)", snap.Round, snap.At)
	}
	// Per-node completion runs as a lane event on each node: the stable-store
	// read is charged against a fresh clock, retained in-flight records of
	// the cut are re-pended and retransmitted (arming retry timers against
	// the node's own lane), and the node is woken to resume restored work. A
	// node still inside its own crash outage skips the charge and replay —
	// its restart will run this whole sequence again.
	for i := 0; i < g.n; i++ {
		i := i
		mn := g.m.Node(i)
		g.m.Eng.ScheduleFuncOn(0, mn.Lane(), at, func() {
			if mn.Down(at) {
				return
			}
			mn.SyncClock(at)
			bytes := snap.core[i].SizeBytes() + snap.rel[i].SizeBytes()
			mn.Charge(g.m.Cfg.Cost.RestoreInstr(bytes))
			if g.prof != nil {
				np := g.prof.Node(i)
				np.ChargeInstr(profile.Ckpt, g.m.Cfg.Cost.RestoreInstr(bytes), mn.Now())
				np.StableWrite(bytes)
			}
			if replayed := g.l.CkptReplayNode(i, snap.rel); replayed > 0 {
				g.rt.NodeRT(i).C.ReplayedMsgs += uint64(replayed)
			}
			mn.Wake()
		})
	}
}

// tracef records a checkpoint event when tracing is enabled.
func (g *Manager) tracef(at sim.Time, node int, kind trace.Kind, format string, args ...any) {
	if g.tr != nil {
		g.tr.Event(trace.Event{
			At:   at,
			Node: node,
			Kind: kind,
			What: fmt.Sprintf(format, args...),
		})
	}
}

// String describes the configuration for logs.
func (g *Manager) String() string {
	if g.interval <= 0 {
		return "checkpoint{round-0 only}"
	}
	return fmt.Sprintf("checkpoint{interval=%v}", g.interval)
}

package checkpoint

import "repro/internal/core"

// Snapshotter converts one class's state box to and from its stable-store
// image. Implementations must be pure: Encode must not mutate the state box,
// Decode must not retain the image, and Decode(Encode(s)) must reproduce s
// exactly — recovery correctness rests on the round trip being lossless.
// Classes without a registered Snapshotter use the default codec: a plain,
// reflection-free copy of the []core.Value box, which is exact for every
// bundled application (their state is held entirely in the box).
type Snapshotter interface {
	// Encode returns the stable-store image of a state box.
	Encode(state []core.Value) []core.Value
	// Decode reconstructs the state box from an image produced by Encode.
	// The returned slice must have the class's StateSize length.
	Decode(image []core.Value) []core.Value
}

// Registry maps classes to their Snapshotters. The zero registry (or a class
// with no registration) uses the default plain-copy codec.
type Registry struct {
	codecs map[*core.Class]Snapshotter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{codecs: make(map[*core.Class]Snapshotter)}
}

// Register installs a Snapshotter for a class, replacing any previous one.
func (r *Registry) Register(cl *core.Class, s Snapshotter) {
	r.codecs[cl] = s
}

// encode is the core.SnapshotCodec used at capture time.
func (r *Registry) encode(cl *core.Class, state []core.Value) []core.Value {
	if s := r.codecs[cl]; s != nil {
		return s.Encode(state)
	}
	return append([]core.Value(nil), state...)
}

// decode is the core.SnapshotCodec used at restore time. The default codec
// returns the image itself: core.RestoreNode copies it into the live box, so
// aliasing the stable image is safe.
func (r *Registry) decode(cl *core.Class, image []core.Value) []core.Value {
	if s := r.codecs[cl]; s != nil {
		return s.Decode(image)
	}
	return image
}

// Package profile is the cost-attribution profiler of the observability
// layer: every simulated instruction, wire record and stable-store byte is
// charged to a *path* — the paper's Section 6 cost categories (stack-invoked
// dormant sends, queued active sends, context restorations, heap-frame
// now-blocks, the remote send/receive halves, creation, checkpointing,
// retransmission) — and optionally to the receiver's class. Accumulation is
// per node, so the discrete-event lanes never share a cache line, and the
// whole subsystem costs a single nil check per charge when disabled.
//
// A Profiler only observes: it charges nothing to the simulated machine and
// never reads state the engine could branch on, so enabling it cannot change
// virtual-time results (asserted by TestProfilerEquivalence).
package profile

import (
	"repro/internal/sim"
)

// Path is a cost-attribution category. The zero value is Other, so charges
// from contexts that never set a path (host-side bootstrap, test harnesses)
// stay visible instead of polluting a real category.
type Path uint8

// Attribution paths. The local/remote/now/restore rows mirror the paper's
// Section 6 message-path taxonomy; the rest cover the runtime subsystems
// added since (creation protocol, migration forwarding, scheduling-queue
// traffic, checkpointing, the reliable protocol's retransmissions and acks).
const (
	Other        Path = iota // unattributed: host bootstrap, spurious work
	LocalDormant             // intra-node send invoked on the sender's stack
	LocalActive              // intra-node send buffered by a queuing procedure
	Restore                  // context restoration: awaited messages, resumes
	NowBlocked               // now-type send machinery (reply dest, save, reply)
	RemoteSend               // sender half of an inter-node message
	RemoteRecv               // receiver half: extraction, handler, dispatch
	Create                   // creation protocol: local create, stock, chunks
	Forward                  // migration forwarders and location updates
	Sched                    // preemption and yield traffic
	Body                     // user-modelled computation inside method bodies
	Ckpt                     // checkpoint capture/restore and marker traffic
	Retransmit               // reliable-protocol retransmissions
	Ack                      // reliable-protocol acknowledgment traffic
	Multi                    // multiactive dispatch: group checks, ready queues
	NumPaths
)

var pathNames = [NumPaths]string{
	Other:        "other",
	LocalDormant: "local-dormant",
	LocalActive:  "local-active",
	Restore:      "restore",
	NowBlocked:   "now-blocked",
	RemoteSend:   "remote-send",
	RemoteRecv:   "remote-recv",
	Create:       "create",
	Forward:      "forward",
	Sched:        "sched",
	Body:         "body",
	Ckpt:         "ckpt",
	Retransmit:   "retransmit",
	Ack:          "ack",
	Multi:        "multi",
}

func (p Path) String() string {
	if p < NumPaths {
		return pathNames[p]
	}
	return "path(?)"
}

// Options configures a Profiler.
type Options struct {
	// Window, when positive, slices every accumulator into time-series
	// buckets of this width (phase-sliced instructions, packets, queue
	// depths and utilization). Zero keeps totals only.
	Window sim.Time
	// Classes enables per-class attribution: deliveries by receiver mode and
	// method-body instructions, keyed by the receiver's class.
	Classes bool
	// InstrNs is the virtual-time cost of one instruction in nanoseconds,
	// used to derive per-slice utilization. Zero leaves utilization at zero.
	InstrNs float64
}

// Slice is one time-series bucket: activity inside [Start, Start+Window).
type Slice struct {
	Start       sim.Time `json:"start_ns"`
	Instr       uint64   `json:"instr"`
	Events      uint64   `json:"events"`
	Packets     uint64   `json:"packets"`
	MaxQueue    int      `json:"max_queue"`
	Utilization float64  `json:"utilization,omitempty"`
}

// NodeProf is one node's accumulator set. It is touched only from the node's
// own event lane, like the stats.Counters it lives beside.
type NodeProf struct {
	win     sim.Time
	classes bool

	instr   [NumPaths]uint64
	events  [NumPaths]uint64
	packets [NumPaths]uint64
	bytes   [NumPaths]uint64
	stable  uint64

	classInstr []uint64    // per class id: method-body instructions
	classDeliv [][4]uint64 // per class id: dormant/active/restore/multi deliveries
	groups     [][3]uint64 // per registered group id: started/parked/dispatched

	slices []Slice
}

// Delivery modes for ClassDeliver.
const (
	DeliverDormant = 0
	DeliverActive  = 1
	DeliverRestore = 2
	DeliverMulti   = 3
)

// Group event kinds for GroupEvent.
const (
	GroupStarted    = 0 // a compatible invocation began immediately
	GroupParked     = 1 // a conflicting invocation was buffered in the ready queue
	GroupDispatched = 2 // a parked invocation was dispatched by the scheduler
)

// ChargeInstr attributes instr simulated instructions to path p at time at.
func (np *NodeProf) ChargeInstr(p Path, instr int, at sim.Time) {
	np.instr[p] += uint64(instr)
	if np.win > 0 {
		np.slice(at).Instr += uint64(instr)
	}
}

// CountEvent counts one occurrence of path p (one message, one creation, one
// checkpoint save, ...), so per-event instruction costs can be derived.
func (np *NodeProf) CountEvent(p Path, at sim.Time) {
	np.events[p]++
	if np.win > 0 {
		np.slice(at).Events++
	}
}

// Packet attributes one wire record of the given size to path p.
func (np *NodeProf) Packet(p Path, bytes int, at sim.Time) {
	np.packets[p]++
	np.bytes[p] += uint64(bytes)
	if np.win > 0 {
		np.slice(at).Packets++
	}
}

// PacketBytes attributes wire bytes without a record of their own (ack
// framing piggybacked on a data packet).
func (np *NodeProf) PacketBytes(p Path, bytes int) {
	np.bytes[p] += uint64(bytes)
}

// StableWrite attributes bytes moved to or from the simulated stable store.
func (np *NodeProf) StableWrite(bytes int) {
	np.stable += uint64(bytes)
}

// QueueDepth samples the node's scheduling-queue depth for the time series.
func (np *NodeProf) QueueDepth(depth int, at sim.Time) {
	if np.win > 0 {
		if s := np.slice(at); depth > s.MaxQueue {
			s.MaxQueue = depth
		}
	}
}

// ClassDeliver counts one delivery to class cls in the given mode
// (DeliverDormant/DeliverActive/DeliverRestore).
func (np *NodeProf) ClassDeliver(cls int, mode int) {
	if !np.classes {
		return
	}
	np.growClass(cls)
	np.classDeliv[cls][mode]++
}

// ClassInstr attributes method-body instructions to class cls.
func (np *NodeProf) ClassInstr(cls int, instr int) {
	if !np.classes {
		return
	}
	np.growClass(cls)
	np.classInstr[cls] += uint64(instr)
}

// GroupEvent counts one multiactive scheduling event for the registered
// group gid (GroupStarted/GroupParked/GroupDispatched). Group ids come from
// Profiler.RegisterGroup; gid < 0 (no profiler registration) is ignored.
func (np *NodeProf) GroupEvent(gid int, kind int) {
	if gid < 0 {
		return
	}
	for len(np.groups) <= gid {
		np.groups = append(np.groups, [3]uint64{})
	}
	np.groups[gid][kind]++
}

func (np *NodeProf) growClass(cls int) {
	for len(np.classInstr) <= cls {
		np.classInstr = append(np.classInstr, 0)
		np.classDeliv = append(np.classDeliv, [4]uint64{})
	}
}

func (np *NodeProf) slice(at sim.Time) *Slice {
	idx := 0
	if at > 0 {
		idx = int(at / np.win)
	}
	for len(np.slices) <= idx {
		np.slices = append(np.slices, Slice{Start: sim.Time(len(np.slices)) * np.win})
	}
	return &np.slices[idx]
}

// Profiler owns the per-node accumulators and the class-name registry.
type Profiler struct {
	opt        Options
	nodes      []NodeProf
	classNames []string
	groupNames []groupName
}

type groupName struct {
	class string
	group string
}

// New builds a profiler for a machine of n nodes.
func New(n int, opt Options) *Profiler {
	p := &Profiler{opt: opt, nodes: make([]NodeProf, n)}
	for i := range p.nodes {
		p.nodes[i].win = opt.Window
		p.nodes[i].classes = opt.Classes
	}
	return p
}

// Node returns node i's accumulator.
func (p *Profiler) Node(i int) *NodeProf { return &p.nodes[i] }

// RegisterClass records the name of class id for reports. Called by the
// runtime at freeze.
func (p *Profiler) RegisterClass(id int, name string) {
	for len(p.classNames) <= id {
		p.classNames = append(p.classNames, "")
	}
	p.classNames[id] = name
}

// RegisterGroup records one compatibility group of a multiactive class and
// returns its dense group id, used by NodeProf.GroupEvent. Called by the
// runtime at freeze, so ids are identical across same-program runs.
func (p *Profiler) RegisterGroup(class, group string) int {
	p.groupNames = append(p.groupNames, groupName{class: class, group: group})
	return len(p.groupNames) - 1
}

// PathStat is one row of the per-path cost table.
type PathStat struct {
	Path          string  `json:"path"`
	Events        uint64  `json:"events,omitempty"`
	Instr         uint64  `json:"instr"`
	InstrPerEvent float64 `json:"instr_per_event,omitempty"`
	InstrShare    float64 `json:"instr_share"`
	Packets       uint64  `json:"packets,omitempty"`
	WireBytes     uint64  `json:"wire_bytes,omitempty"`
	StableBytes   uint64  `json:"stable_bytes,omitempty"`
}

// ClassStat is one row of the per-class table: deliveries by receiver mode
// and the method-body instructions the class consumed.
type ClassStat struct {
	Class     string `json:"class"`
	Dormant   uint64 `json:"dormant"`
	Active    uint64 `json:"active"`
	Restore   uint64 `json:"restore"`
	Multi     uint64 `json:"multi,omitempty"`
	BodyInstr uint64 `json:"body_instr"`
}

// GroupStat is one row of the per-group table of a multiactive class:
// invocations that started immediately (compatible with everything live),
// that were parked in the group's ready queue by a conflict, and parked ones
// later dispatched through the scheduler.
type GroupStat struct {
	Class      string `json:"class"`
	Group      string `json:"group"`
	Started    uint64 `json:"started"`
	Parked     uint64 `json:"parked"`
	Dispatched uint64 `json:"dispatched"`
}

// NodeStat is one node's attribution totals.
type NodeStat struct {
	Node    int    `json:"node"`
	Instr   uint64 `json:"instr"`
	Packets uint64 `json:"packets"`
}

// Report is the machine-wide aggregation of a run's attribution.
type Report struct {
	Window sim.Time `json:"window_ns,omitempty"`
	// TotalInstr is the sum of attributed instructions across paths.
	TotalInstr uint64 `json:"total_instr"`
	// DormantFraction is dormant deliveries over all local deliveries — the
	// paper's "approximately 75%" (Section 6.3), derived here from the
	// profiler's own event counts rather than the global counters.
	DormantFraction float64     `json:"dormant_fraction"`
	Paths           []PathStat  `json:"paths"`
	Classes         []ClassStat `json:"classes,omitempty"`
	Groups          []GroupStat `json:"groups,omitempty"`
	Slices          []Slice     `json:"slices,omitempty"`
	Nodes           []NodeStat  `json:"nodes,omitempty"`
}

// Report aggregates every node's accumulators. Paths with no activity are
// omitted; rows appear in taxonomy order.
func (p *Profiler) Report() *Report {
	r := &Report{Window: p.opt.Window}
	var instr, events, packets, bytes [NumPaths]uint64
	var stable uint64
	for i := range p.nodes {
		np := &p.nodes[i]
		var nodeInstr, nodePackets uint64
		for pa := Path(0); pa < NumPaths; pa++ {
			instr[pa] += np.instr[pa]
			events[pa] += np.events[pa]
			packets[pa] += np.packets[pa]
			bytes[pa] += np.bytes[pa]
			nodeInstr += np.instr[pa]
			nodePackets += np.packets[pa]
		}
		stable += np.stable
		r.TotalInstr += nodeInstr
		r.Nodes = append(r.Nodes, NodeStat{Node: i, Instr: nodeInstr, Packets: nodePackets})
	}
	for pa := Path(0); pa < NumPaths; pa++ {
		if instr[pa] == 0 && events[pa] == 0 && packets[pa] == 0 && bytes[pa] == 0 {
			continue
		}
		ps := PathStat{
			Path:      pa.String(),
			Events:    events[pa],
			Instr:     instr[pa],
			Packets:   packets[pa],
			WireBytes: bytes[pa],
		}
		if pa == Ckpt {
			ps.StableBytes = stable
		}
		if events[pa] > 0 {
			ps.InstrPerEvent = float64(instr[pa]) / float64(events[pa])
		}
		if r.TotalInstr > 0 {
			ps.InstrShare = float64(instr[pa]) / float64(r.TotalInstr)
		}
		r.Paths = append(r.Paths, ps)
	}
	if local := events[LocalDormant] + events[LocalActive] + events[Restore]; local > 0 {
		r.DormantFraction = float64(events[LocalDormant]) / float64(local)
	}
	r.Classes = p.classReport()
	r.Groups = p.groupReport()
	r.Slices = p.mergeSlices()
	return r
}

// groupReport aggregates the per-group accumulators across nodes. Rows appear
// in registration (freeze) order; groups with no activity are kept so a
// contention study sees every declared group, active or idle.
func (p *Profiler) groupReport() []GroupStat {
	if len(p.groupNames) == 0 {
		return nil
	}
	out := make([]GroupStat, len(p.groupNames))
	for gid, gn := range p.groupNames {
		out[gid] = GroupStat{Class: gn.class, Group: gn.group}
		for i := range p.nodes {
			np := &p.nodes[i]
			if gid < len(np.groups) {
				out[gid].Started += np.groups[gid][GroupStarted]
				out[gid].Parked += np.groups[gid][GroupParked]
				out[gid].Dispatched += np.groups[gid][GroupDispatched]
			}
		}
	}
	return out
}

func (p *Profiler) classReport() []ClassStat {
	if !p.opt.Classes {
		return nil
	}
	n := 0
	for i := range p.nodes {
		if l := len(p.nodes[i].classInstr); l > n {
			n = l
		}
	}
	if len(p.classNames) > n {
		n = len(p.classNames)
	}
	out := make([]ClassStat, 0, n)
	for cls := 0; cls < n; cls++ {
		cs := ClassStat{Class: className(p.classNames, cls)}
		for i := range p.nodes {
			np := &p.nodes[i]
			if cls < len(np.classInstr) {
				cs.BodyInstr += np.classInstr[cls]
				cs.Dormant += np.classDeliv[cls][DeliverDormant]
				cs.Active += np.classDeliv[cls][DeliverActive]
				cs.Restore += np.classDeliv[cls][DeliverRestore]
				cs.Multi += np.classDeliv[cls][DeliverMulti]
			}
		}
		if cs.BodyInstr == 0 && cs.Dormant == 0 && cs.Active == 0 && cs.Restore == 0 && cs.Multi == 0 {
			continue
		}
		out = append(out, cs)
	}
	return out
}

func className(names []string, id int) string {
	if id < len(names) && names[id] != "" {
		return names[id]
	}
	return "class(?)"
}

func (p *Profiler) mergeSlices() []Slice {
	if p.opt.Window <= 0 {
		return nil
	}
	n := 0
	for i := range p.nodes {
		if l := len(p.nodes[i].slices); l > n {
			n = l
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Slice, n)
	for k := range out {
		out[k].Start = sim.Time(k) * p.opt.Window
	}
	for i := range p.nodes {
		for k, s := range p.nodes[i].slices {
			out[k].Instr += s.Instr
			out[k].Events += s.Events
			out[k].Packets += s.Packets
			if s.MaxQueue > out[k].MaxQueue {
				out[k].MaxQueue = s.MaxQueue
			}
		}
	}
	if p.opt.InstrNs > 0 {
		denom := float64(p.opt.Window) * float64(len(p.nodes))
		for k := range out {
			out[k].Utilization = p.opt.InstrNs * float64(out[k].Instr) / denom
		}
	}
	return out
}

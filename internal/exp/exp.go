// Package exp defines the paper's experiments as testable functions: each
// table and figure of the evaluation section has a generator returning
// structured rows, consumed by cmd/tables and cmd/figures for printing and
// by the test suite as a reproduction regression harness.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	abcl "repro"
	"repro/internal/apps/nqueens"
	"repro/internal/apps/pingpong"
	"repro/internal/machine"
	"repro/internal/sim"
)

// forEachIndexed runs fn(i) for i in [0, n) on up to GOMAXPROCS goroutines
// and returns the first error by index. Each sweep point builds its own
// System, so points share no state; results land in pre-indexed slots, which
// keeps output order (and therefore printed tables) identical to the
// sequential loop.
func forEachIndexed(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table1Row is one basic-operation cost (paper's Table 1).
type Table1Row struct {
	Name    string
	PaperUs float64
	SimUs   float64
}

// Table1 measures the four basic operations.
func Table1(iters int) ([]Table1Row, error) {
	d, err := pingpong.PastLocal(iters)
	if err != nil {
		return nil, err
	}
	a, err := pingpong.PastLocalActive(iters)
	if err != nil {
		return nil, err
	}
	c, err := pingpong.CreateLocal(iters)
	if err != nil {
		return nil, err
	}
	r, err := pingpong.PastRemote(iters)
	if err != nil {
		return nil, err
	}
	return []Table1Row{
		{"Intra-node Message (to Dormant)", 2.3, d.PerOp.Micros()},
		{"Intra-node Message (to Active)", 9.6, a.PerOp.Micros()},
		{"Intra-node Creation", 2.1, c.PerOp.Micros()},
		{"Latency of Inter-node Message", 8.9, r.PerOp.Micros()},
	}, nil
}

// Table2Row is one step of the dormant-path breakdown (paper's Table 2).
type Table2Row struct {
	Name  string
	Paper int
	Sim   int
}

// Table2 returns the instruction breakdown plus the totals row.
func Table2() []Table2Row {
	cost := machine.DefaultCost()
	return []Table2Row{
		{"Check Locality", 3, cost.CheckLocality},
		{"Lookup and Call", 5, cost.LookupCall},
		{"Switch VFTP to Active Mode", 3, cost.SwitchVFTPActive},
		{"Execution of Method Body", 0, 0},
		{"Check Message Queue", 3, cost.CheckMsgQueue},
		{"Switch VFTP to Dormant Mode", 3, cost.SwitchVFTPDormant},
		{"Polling of Remote Message", 5, cost.PollRemote},
		{"Adjusting Stack Pointer and Return", 3, cost.StackReturn},
		{"Total", 25, cost.DormantPath()},
	}
}

// Table3Row is one system's send/reply latency (paper's Table 3).
type Table3Row struct {
	System   string
	Instr    int
	TimeUs   float64
	Cycles   float64
	ClockMHz float64
	Source   string
}

// Table3 measures this simulation's request-reply cycle and lines it up
// against the paper's own figure and the fine-grain-machine literature
// constants it compares to.
func Table3(iters int) ([]Table3Row, error) {
	now, err := pingpong.NowRemote(iters)
	if err != nil {
		return nil, err
	}
	cfg := machine.DefaultConfig(2)
	cycles := now.PerOp.Micros() * cfg.ClockMHz
	instr := int(cycles/cfg.CPI + 0.5)
	return []Table3Row{
		{"ABCL/onAP1000", instr, now.PerOp.Micros(), cycles, cfg.ClockMHz, "this simulation"},
		{"ABCL/onAP1000 (paper)", 160, 17.8, 450, 25.0, "paper's measurement"},
		{"ABCL/onEM4 [14]", 100, 8.8, 110, 12.5, "literature"},
		{"CST (on J-Machine) [5]", 110, 4.4, 220, 50.0, "literature"},
	}, nil
}

// Table4Col is one problem-size column of the paper's Table 4.
type Table4Col struct {
	N          int
	Solutions  int64
	Objects    int64
	Messages   int64
	MemKB      float64
	SeqElapsed sim.Time
}

// Table4 computes the scale of the N-queens program for each size. The
// counts are exact properties of the search tree; the sequential time uses
// the calibrated work model.
func Table4(ns []int) []Table4Col {
	out := make([]Table4Col, 0, len(ns))
	for _, n := range ns {
		seq := nqueens.Sequential(n, machine.DefaultConfig(1), 0)
		objs := seq.TreeNodes
		msgs := 2*objs + 1
		out = append(out, Table4Col{
			N:          n,
			Solutions:  seq.Solutions,
			Objects:    objs,
			Messages:   msgs,
			MemKB:      float64(objs*64+msgs*28) / 1024,
			SeqElapsed: seq.Elapsed,
		})
	}
	return out
}

// PathCost is the measured per-path cost breakdown of one N-queens run: the
// live counterpart of Section 6's message-path cost taxonomy, sourced from
// the cost-attribution profiler rather than static instruction ladders.
type PathCost struct {
	N     int
	Nodes int
	// Report carries the per-path rows, the dormant fraction (the paper's
	// "approximately 75%", Section 6.3) and the per-class breakdown.
	Report *abcl.ProfileReport
}

// PathBreakdown runs a profiled N-queens search and returns its cost
// attribution. The profiler only observes, so the run's virtual-time results
// equal an unprofiled run with the same seed.
func PathBreakdown(n, nodes int, seed int64) (PathCost, error) {
	res, err := nqueens.Run(nqueens.Options{
		N: n, Nodes: nodes, Seed: seed,
		Profile: &abcl.ProfileOptions{Classes: true},
	})
	if err != nil {
		return PathCost{}, fmt.Errorf("exp: path breakdown N=%d P=%d: %w", n, nodes, err)
	}
	return PathCost{N: n, Nodes: nodes, Report: res.Report.Profile}, nil
}

// SpeedupPoint is one point of the paper's Figure 5.
type SpeedupPoint struct {
	N           int
	Procs       int
	Elapsed     sim.Time
	Speedup     float64
	Utilization float64
}

// Figure5 sweeps node counts for each problem size, computing speedup
// against the sequential baseline. The sweep points are independent
// simulations and run concurrently across GOMAXPROCS; the returned order is
// the same nested (size, procs) order as a sequential sweep.
func Figure5(ns, procs []int, seed int64) ([]SpeedupPoint, error) {
	seqElapsed := make(map[int]sim.Time, len(ns))
	for _, n := range ns {
		seqElapsed[n] = nqueens.Sequential(n, machine.DefaultConfig(1), 0).Elapsed
	}
	out := make([]SpeedupPoint, len(ns)*len(procs))
	err := forEachIndexed(len(out), func(i int) error {
		n, p := ns[i/len(procs)], procs[i%len(procs)]
		res, err := nqueens.Run(nqueens.Options{N: n, Nodes: p, Seed: seed})
		if err != nil {
			return fmt.Errorf("exp: figure 5 N=%d P=%d: %w", n, p, err)
		}
		out[i] = SpeedupPoint{
			N:           n,
			Procs:       p,
			Elapsed:     res.Elapsed,
			Speedup:     float64(seqElapsed[n]) / float64(res.Elapsed),
			Utilization: res.Utilization,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure6Row is one problem size of the paper's Figure 6.
type Figure6Row struct {
	N           int
	NaiveMs     float64
	StackMs     float64
	SpeedupPct  float64 // naive/stack - 1, in percent
	DormantFrac float64 // fraction of local messages to dormant objects
}

// Figure6 compares naive and stack-based scheduling on the N-queens
// programs at the given node count. Problem sizes run concurrently across
// GOMAXPROCS; row order matches the input sizes.
func Figure6(ns []int, procs int, seed int64) ([]Figure6Row, error) {
	out := make([]Figure6Row, len(ns))
	err := forEachIndexed(len(ns), func(i int) error {
		n := ns[i]
		st, err := nqueens.Run(nqueens.Options{N: n, Nodes: procs, Seed: seed, Policy: abcl.StackBased})
		if err != nil {
			return fmt.Errorf("exp: figure 6 N=%d stack: %w", n, err)
		}
		nv, err := nqueens.Run(nqueens.Options{N: n, Nodes: procs, Seed: seed, Policy: abcl.Naive})
		if err != nil {
			return fmt.Errorf("exp: figure 6 N=%d naive: %w", n, err)
		}
		out[i] = Figure6Row{
			N:           n,
			NaiveMs:     nv.Elapsed.Millis(),
			StackMs:     st.Elapsed.Millis(),
			SpeedupPct:  100 * (float64(nv.Elapsed)/float64(st.Elapsed) - 1),
			DormantFrac: st.Stats.DormantFraction(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reproduction regression suite: asserts that every table and figure stays
// within its documented distance of the paper's published values (see
// EXPERIMENTS.md). A change that silently drifts the reproduction fails
// here.
package exp

import (
	"math"
	"testing"
)

func TestTable1WithinTolerance(t *testing.T) {
	rows, err := Table1(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table 1 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		rel := math.Abs(r.SimUs-r.PaperUs) / r.PaperUs
		if rel > 0.02 {
			t.Errorf("%s: sim %.2fµs vs paper %.1fµs (%.1f%% off, tolerance 2%%)",
				r.Name, r.SimUs, r.PaperUs, 100*rel)
		}
	}
}

func TestTable2Exact(t *testing.T) {
	rows := Table2()
	for _, r := range rows {
		if r.Sim != r.Paper {
			t.Errorf("%s: sim %d vs paper %d instructions", r.Name, r.Sim, r.Paper)
		}
	}
	last := rows[len(rows)-1]
	if last.Name != "Total" || last.Sim != 25 {
		t.Fatalf("total row wrong: %+v", last)
	}
}

func TestTable3WithinTolerance(t *testing.T) {
	rows, err := Table3(100)
	if err != nil {
		t.Fatal(err)
	}
	sim, paper := rows[0], rows[1]
	rel := math.Abs(sim.TimeUs-paper.TimeUs) / paper.TimeUs
	if rel > 0.12 {
		t.Errorf("send/reply: sim %.1fµs vs paper %.1fµs (%.1f%% off, tolerance 12%%)",
			sim.TimeUs, paper.TimeUs, 100*rel)
	}
	// The paper's qualitative claim: within ~2x of the J-Machine and ~4x of
	// EM-4 when normalized to cycles.
	cst, em4 := rows[3], rows[2]
	if sim.Cycles > 2.5*cst.Cycles {
		t.Errorf("cycles %f vs CST %f: claim 'about twice' broken", sim.Cycles, cst.Cycles)
	}
	if sim.Cycles > 5*em4.Cycles {
		t.Errorf("cycles %f vs EM4 %f: claim 'about 4 times' broken", sim.Cycles, em4.Cycles)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	cols := Table4([]int{8, 13})
	n8, n13 := cols[0], cols[1]

	if n8.Solutions != 92 || n8.Objects != 2056 {
		t.Errorf("N=8: solutions=%d objects=%d, want 92/2056", n8.Solutions, n8.Objects)
	}
	if math.Abs(float64(n8.Messages-4104))/4104 > 0.01 {
		t.Errorf("N=8 messages = %d, want within 1%% of 4104", n8.Messages)
	}
	// Sequential N=8 on the SS1+-class model: 84ms +/- 15%.
	if ms := n8.SeqElapsed.Millis(); ms < 71 || ms > 97 {
		t.Errorf("N=8 sequential = %.1fms, want ~84ms", ms)
	}

	if n13.Solutions != 73712 {
		t.Errorf("N=13 solutions = %d, want 73712", n13.Solutions)
	}
	// Paper: 9,349,765 messages. Ours must be within 0.01%.
	if math.Abs(float64(n13.Messages-9349765))/9349765 > 1e-4 {
		t.Errorf("N=13 messages = %d, want within 0.01%% of 9349765", n13.Messages)
	}
	// Paper: 549,463KB total memory. Within 1%.
	if math.Abs(n13.MemKB-549463)/549463 > 0.01 {
		t.Errorf("N=13 memory = %.0fKB, want within 1%% of 549463KB", n13.MemKB)
	}
	// Paper: 461,955ms sequential. Within 8%.
	if ms := n13.SeqElapsed.Millis(); math.Abs(ms-461955)/461955 > 0.08 {
		t.Errorf("N=13 sequential = %.0fms, want within 8%% of 461955ms", ms)
	}
}

func TestFigure5Shape(t *testing.T) {
	// A compressed sweep preserving the figure's shape claims.
	pts, err := Figure5([]int{8}, []int{1, 16, 64, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	byProcs := map[int]SpeedupPoint{}
	for _, p := range pts {
		byProcs[p.Procs] = p
	}
	// Monotone improvement over the sweep.
	if !(byProcs[1].Speedup < byProcs[16].Speedup &&
		byProcs[16].Speedup < byProcs[64].Speedup &&
		byProcs[64].Speedup < byProcs[256].Speedup) {
		t.Errorf("speedup not monotone: %+v", pts)
	}
	// Paper: ~20x at 64 processors for N=8. Accept 15-35.
	if s := byProcs[64].Speedup; s < 15 || s > 35 {
		t.Errorf("N=8 speedup at 64 procs = %.1f, paper reports ~20", s)
	}
	// Small problem saturates: efficiency at 256 must be well below ideal.
	if e := byProcs[256].Speedup / 256; e > 0.5 {
		t.Errorf("N=8 at 256 procs should saturate, efficiency %.2f", e)
	}
}

func TestFigure5LargeProblemEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	pts, err := Figure5([]int{11}, []int{512}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	// The paper reaches 440/512 = 86% for N=13; N=11 (28x smaller) must
	// still exceed 50% parallel efficiency and 80% machine utilization.
	if eff := p.Speedup / 512; eff < 0.5 {
		t.Errorf("N=11 efficiency at 512 procs = %.2f, want > 0.5", eff)
	}
	if p.Utilization < 0.8 {
		t.Errorf("utilization = %.2f, want > 0.8", p.Utilization)
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6([]int{9, 10}, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NaiveMs <= r.StackMs {
			t.Errorf("N=%d: naive %.1fms not slower than stack %.1fms", r.N, r.NaiveMs, r.StackMs)
		}
		// Paper: ~30% speedup; accept 5-60% across sizes and node counts.
		if r.SpeedupPct < 5 || r.SpeedupPct > 60 {
			t.Errorf("N=%d: stack-vs-naive speedup %.1f%%, outside plausible band", r.N, r.SpeedupPct)
		}
		// Paper: ~75% of local messages to dormant objects; accept 0.6-0.95.
		if r.DormantFrac < 0.6 || r.DormantFrac > 0.95 {
			t.Errorf("N=%d: dormant fraction %.2f, paper reports ~0.75", r.N, r.DormantFrac)
		}
	}
}

// Acceptance tests for the wire-path optimisations: per-link packet
// batching, coalesced acknowledgments and the remote-location cache.
//
// The contract has two sides. With the options off (the default), the engine
// must be byte-identical to the pre-batching wire path: no new counters
// tick, every logical message is its own hardware packet, and results are
// reproducible run to run. With the options on, answers and delivery
// guarantees are unchanged while the packet and ack counts drop.
package abcl_test

import (
	"testing"

	abcl "repro"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
)

// queensRun runs one N-queens instance on a fresh system built with opts.
func queensRun(t *testing.T, opts ...abcl.Option) (*abcl.System, nqueens.Result) {
	t.Helper()
	sys, err := abcl.NewSystem(append([]abcl.Option{abcl.WithNodes(16), abcl.WithSeed(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	d := nqueens.Build(sys, 7, 0)
	d.Start()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// With everything at defaults the new wire-path machinery must be inert:
// zero batches, zero coalesced acks, zero location-cache activity, and one
// hardware packet per logical message.
func TestWirePathDefaultsInert(t *testing.T) {
	sys, res := queensRun(t)
	if res.Solutions != 40 {
		t.Fatalf("N=7 solutions = %d, want 40", res.Solutions)
	}
	c := sys.Report().Sched.Counters
	if c.BatchesSent != 0 || c.BatchedMsgs != 0 {
		t.Errorf("default run sent %d batches (%d records), want none", c.BatchesSent, c.BatchedMsgs)
	}
	if c.AcksCoalesced != 0 || c.AcksSent != 0 {
		t.Errorf("default run produced ack traffic: sent=%d coalesced=%d", c.AcksSent, c.AcksCoalesced)
	}
	if c.LocCacheHits != 0 || c.LocCacheMisses != 0 || c.LocCacheInvalidates != 0 {
		t.Errorf("location cache active without migration: hits=%d misses=%d inval=%d",
			c.LocCacheHits, c.LocCacheMisses, c.LocCacheInvalidates)
	}
	wire := sys.Report().Wire
	if wire.BatchWindow != 0 || wire.BatchMaxBytes != 0 {
		t.Errorf("batch window = (%v, %d), want zeroes", wire.BatchWindow, wire.BatchMaxBytes)
	}
	if wire.Packets != wire.LogicalMsgs {
		t.Errorf("packets=%d logical msgs=%d: unbatched runs must map 1:1",
			wire.Packets, wire.LogicalMsgs)
	}
}

// Disabling the (inert) location cache must not perturb anything: virtual
// times, counters and answers stay byte-identical to the default run.
func TestWirePathEquivalence(t *testing.T) {
	sysA, resA := queensRun(t)
	sysB, resB := queensRun(t, abcl.WithoutLocationCache())
	// The report echoes the configuration under test; mask that one
	// deliberate difference so the comparison covers only run results.
	resB.Report.Wire.LocationCache = resA.Report.Wire.LocationCache
	if resA != resB {
		t.Errorf("WithoutLocationCache changed the result:\n%+v\nvs\n%+v", resA, resB)
	}
	repA, repB := sysA.Report(), sysB.Report()
	if a, b := repA.Sched.Elapsed, repB.Sched.Elapsed; a != b {
		t.Errorf("elapsed differs: %v vs %v", a, b)
	}
	if a, b := repA.Sched.Counters, repB.Sched.Counters; a != b {
		t.Errorf("counters differ:\n%+v\nvs\n%+v", a, b)
	}
	if a, b := repA.Wire.Packets, repB.Wire.Packets; a != b {
		t.Errorf("packet counts differ: %d vs %d", a, b)
	}
}

// Batching must preserve answers and object/message counts exactly, and be
// deterministic across repeated runs.
func TestWirePathBatchingDeterminism(t *testing.T) {
	_, plain := queensRun(t)
	sys1, run1 := queensRun(t, abcl.WithBatching(3*abcl.Microsecond, 0))
	sys2, run2 := queensRun(t, abcl.WithBatching(3*abcl.Microsecond, 0))

	if run1.Solutions != plain.Solutions || run1.Objects != plain.Objects || run1.Messages != plain.Messages {
		t.Errorf("batching changed the computation: batched %+v vs plain %+v", run1, plain)
	}
	if run1 != run2 {
		t.Errorf("batched runs diverge:\n%+v\nvs\n%+v", run1, run2)
	}
	rep1, rep2 := sys1.Report(), sys2.Report()
	if a, b := rep1.Sched.Counters, rep2.Sched.Counters; a != b {
		t.Errorf("batched counters diverge:\n%+v\nvs\n%+v", a, b)
	}
	if rep1.Sched.Counters.BatchesSent == 0 {
		t.Error("batching enabled but no batch was ever sent")
	}
	if rep1.Wire.Packets >= plain.Packets {
		t.Errorf("batched run launched %d packets, plain %d: no coalescing happened",
			rep1.Wire.Packets, plain.Packets)
	}
}

// The headline acceptance numbers, measured on the communication-dominated
// all-to-all exchange in reliable mode: batching + delayed acks must at
// least halve both the packets-per-message ratio and the standalone ack
// count, without touching delivery guarantees.
func TestWirePathPacketReduction(t *testing.T) {
	plain, err := misc.RunAllToAll(misc.AllToAllOptions{
		Nodes: 16, Rounds: 8,
		Opts: []abcl.Option{abcl.WithReliable()},
	})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := misc.RunAllToAll(misc.AllToAllOptions{
		Nodes: 16, Rounds: 8,
		Opts: []abcl.Option{
			abcl.WithReliable(),
			abcl.WithBatching(25*abcl.Microsecond, 0),
			abcl.WithDelayedAcks(25 * abcl.Microsecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// RunAllToAll already verified full delivery and per-link FIFO order for
	// both runs; here we compare the wire traffic.
	if plain.Stats.RelSent != tuned.Stats.RelSent {
		t.Fatalf("workloads diverge: %d vs %d reliable sends", plain.Stats.RelSent, tuned.Stats.RelSent)
	}
	if tuned.Packets*2 > plain.Packets {
		t.Errorf("packets: plain=%d tuned=%d, want at least a 2x reduction", plain.Packets, tuned.Packets)
	}
	if tuned.Stats.AcksSent*2 > plain.Stats.AcksSent {
		t.Errorf("ack packets: plain=%d tuned=%d, want at least a 2x reduction",
			plain.Stats.AcksSent, tuned.Stats.AcksSent)
	}
	if tuned.Stats.AcksCoalesced == 0 {
		t.Error("delayed acks on but nothing was coalesced")
	}
	if tuned.Stats.Retransmits != 0 {
		t.Errorf("%d spurious retransmits on a fault-free machine", tuned.Stats.Retransmits)
	}
}

// Reliable delivery with batching and delayed acks must survive a lossy,
// duplicating interconnect with no lost messages and no order violations.
func TestWirePathReliableBatchedUnderFaults(t *testing.T) {
	res, err := misc.RunAllToAll(misc.AllToAllOptions{
		Nodes: 8, Rounds: 6,
		Opts: []abcl.Option{
			abcl.WithFaults(abcl.UniformFaults(0.10, 0.10, 2*abcl.Microsecond)),
			abcl.WithBatching(25*abcl.Microsecond, 0),
			abcl.WithDelayedAcks(25 * abcl.Microsecond),
			abcl.WithSeed(7),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Stats
	if c.LostMessages() != 0 || c.RelAbandoned != 0 {
		t.Errorf("lost=%d abandoned=%d under faults, want 0/0", c.LostMessages(), c.RelAbandoned)
	}
	if c.Retransmits == 0 {
		t.Error("10%% drop produced no retransmits")
	}
	if c.BatchesSent == 0 || c.AcksCoalesced == 0 {
		t.Errorf("optimisations idle under faults: batches=%d coalesced=%d", c.BatchesSent, c.AcksCoalesced)
	}
}

// The remote-location cache short-circuits migration forwarders: after one
// forwarded message the sender learns the new address, and subsequent
// traffic goes direct instead of taking the forwarding hop.
func TestWirePathLocationCache(t *testing.T) {
	sys, err := abcl.NewSystem(abcl.WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	inc := sys.Pattern("lc.inc", 0)
	kick := sys.Pattern("lc.kick", 0)
	counter := sys.Class("lc.counter", 1, func(ic *abcl.InitCtx) { ic.SetState(0, abcl.Int(0)) })
	counter.Method(inc, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	target := sys.NewObjectOn(0, counter)
	drv := sys.Class("lc.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		for j := 0; j < 20; j++ {
			ctx.SendPast(target, inc)
		}
	})
	d := sys.NewObjectOn(1, drv)
	sys.RT.Freeze()
	if err := sys.Net.Migrate(target.Obj, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	// First wave: every message goes to the stale address on node 0 and is
	// forwarded to node 2; the forwarder advertises the new address once.
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	c1 := sys.Report().Sched.Counters
	if c1.Forwards == 0 || c1.LocCacheMisses == 0 {
		t.Fatalf("first wave: forwards=%d adverts=%d, want both > 0", c1.Forwards, c1.LocCacheMisses)
	}

	// Second wave: the sender's cache rewrites every send to the new home.
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	c2 := sys.Report().Sched.Counters
	if c2.LocCacheHits < 20 {
		t.Errorf("second wave: %d cache hits, want >= 20", c2.LocCacheHits)
	}
	if c2.Forwards != c1.Forwards {
		t.Errorf("second wave still forwarded: %d -> %d forwards", c1.Forwards, c2.Forwards)
	}
	if c2.LocCacheMisses != c1.LocCacheMisses {
		t.Errorf("steady state re-advertised: %d -> %d adverts", c1.LocCacheMisses, c2.LocCacheMisses)
	}
}

// With the cache disabled every post-migration message keeps paying the
// forwarding hop — the ablation baseline for the short-circuit.
func TestWirePathLocationCacheDisabled(t *testing.T) {
	sys, err := abcl.NewSystem(abcl.WithNodes(3), abcl.WithoutLocationCache())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Report().Wire.LocationCache {
		t.Fatal("Report().Wire.LocationCache = true after WithoutLocationCache")
	}
	inc := sys.Pattern("lc2.inc", 0)
	kick := sys.Pattern("lc2.kick", 0)
	counter := sys.Class("lc2.counter", 1, func(ic *abcl.InitCtx) { ic.SetState(0, abcl.Int(0)) })
	counter.Method(inc, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	target := sys.NewObjectOn(0, counter)
	drv := sys.Class("lc2.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		for j := 0; j < 20; j++ {
			ctx.SendPast(target, inc)
		}
	})
	d := sys.NewObjectOn(1, drv)
	sys.RT.Freeze()
	if err := sys.Net.Migrate(target.Obj, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sys.Send(d, kick)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	c := sys.Report().Sched.Counters
	if c.Forwards != 40 {
		t.Errorf("forwards = %d, want 40 (every message takes the hop)", c.Forwards)
	}
	if c.LocCacheHits != 0 || c.LocCacheMisses != 0 {
		t.Errorf("cache disabled but active: hits=%d misses=%d", c.LocCacheHits, c.LocCacheMisses)
	}
}

package abcl_test

import (
	"reflect"
	"testing"

	abcl "repro"
	"repro/internal/apps/hotkey"
	"repro/internal/apps/misc"
	"repro/internal/conformance"
)

// optExec is the Time Warp executor configuration the equivalence suite
// runs under. Four workers over small node counts keeps every lane hot.
func optExec() abcl.Option {
	return abcl.WithExecutor(abcl.Optimistic(4, abcl.OptimisticOptions{}))
}

// runConformance executes one generated conformance program through the
// facade under the given executor and returns its observation plus the
// full report.
func runConformance(t *testing.T, seed int64, nodes int, exec abcl.Option) (conformance.Expected, abcl.Report) {
	t.Helper()
	p := conformance.Generate(seed, nodes)
	p.Reset()
	sys, err := abcl.NewSystem(abcl.WithNodes(nodes), abcl.WithSeed(1), exec)
	if err != nil {
		t.Fatal(err)
	}
	inject := p.Build(sys.RT)
	inject()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return p.Observe(sys.RT), sys.Report()
}

// TestOptimisticConformance: the Time Warp executor is byte-identical to
// the sequential engine on every generated conformance program — same
// observations, same full report (virtual time, all counters).
func TestOptimisticConformance(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		nodes := 2 + int(seed)%6
		seqObs, seqRep := runConformance(t, seed, nodes, abcl.WithExecutor(abcl.Sequential()))
		optObs, optRep := runConformance(t, seed, nodes, optExec())
		if seqObs != optObs {
			t.Errorf("seed %d (%d nodes): observations diverge: seq %+v opt %+v", seed, nodes, seqObs, optObs)
		}
		if !reflect.DeepEqual(seqRep, optRep) {
			t.Errorf("seed %d (%d nodes): reports diverge:\nseq %+v\nopt %+v", seed, nodes, seqRep, optRep)
		}
	}
}

// TestOptimisticAllToAll: the worst case for speculation — every lane sends
// to every other, so cross-lane messages constantly land inside open
// windows — still commits to exactly the sequential result.
func TestOptimisticAllToAll(t *testing.T) {
	run := func(exec abcl.Option) *misc.AllToAllResult {
		res, err := misc.RunAllToAll(misc.AllToAllOptions{
			Nodes: 8, Rounds: 6, Opts: []abcl.Option{exec},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(abcl.WithExecutor(abcl.Sequential()))
	opt := run(optExec())
	// SyncWindows is executor bookkeeping, not a simulation result — mask
	// it before comparing the equivalence surface.
	opt.SyncWindows = seq.SyncWindows
	if !reflect.DeepEqual(seq, opt) {
		t.Errorf("all-to-all diverges:\nseq %+v\nopt %+v", seq, opt)
	}
}

// runOptContention is an instrumented contended workload: grouped
// (multiactive) hot object on node 0, echo shards on the others, clients
// hammering it — and it hands back the system so tests can read OptStats.
func runOptContention(t *testing.T, extra ...abcl.Option) (int64, abcl.Report, *abcl.System) {
	t.Helper()
	const (
		nodes   = 4
		clients = 6
		opsEach = 10
	)
	opts := append([]abcl.Option{abcl.WithNodes(nodes), abcl.WithSeed(11)}, extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ping := sys.Pattern("ow.ping", 0)
	req := sys.Pattern("ow.req", 0)
	step := sys.Pattern("ow.step", 1)

	echo := sys.NewClass("ow.echo", 0, nil).
		Method(ping, func(ctx *abcl.Ctx) {
			ctx.Charge(300)
			ctx.Reply(abcl.Int(0))
		})
	shards := make([]abcl.Address, nodes-1)
	for i := range shards {
		shards[i] = sys.NewObjectOn(i+1, echo)
	}
	hot := sys.NewClass("ow.hot", 2, func(ic *abcl.InitCtx) {
		ic.SetState(0, abcl.Int(0))
		ic.SetState(1, abcl.Int(0))
	}).
		Method(req, func(ctx *abcl.Ctx) {
			cur := ctx.State(1).Int()
			ctx.SetState(1, abcl.Int(cur+1))
			ctx.SendNow(shards[cur%int64(len(shards))], ping, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
				ctx.Reply(abcl.Int(0))
			})
		}).
		Group("reqs", req)
	hotAddr := sys.NewObjectOn(0, hot)

	client := sys.NewClass("ow.client", 0, nil).
		Method(step, func(ctx *abcl.Ctx) {
			rem := ctx.Arg(0).Int()
			if rem == 0 {
				return
			}
			ctx.SendNow(hotAddr, req, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SendPast(ctx.Self(), step, abcl.Int(rem-1))
			})
		})
	for i := 0; i < clients; i++ {
		sys.Send(sys.NewObjectOn(1+i%(nodes-1), client), step, abcl.Int(opsEach))
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return hotAddr.Obj.State(0).Int(), sys.Report(), sys
}

// TestOptimisticMultiactiveOvertake: a multiactive (grouped) object keeps
// several invocations live across now-type round trips; a straggler request
// arriving into another lane's speculated past must roll the whole window
// back without disturbing the group's ready-queue order. The committed
// result — including per-group scheduling counters — is byte-identical to
// the sequential run, and the run must actually have exercised rollback.
func TestOptimisticMultiactiveOvertake(t *testing.T) {
	seqDone, seqRep, _ := runOptContention(t)
	optDone, optRep, sys := runOptContention(t, optExec())
	if seqDone != optDone {
		t.Errorf("completed ops diverge: seq %d opt %d", seqDone, optDone)
	}
	if !reflect.DeepEqual(seqRep, optRep) {
		t.Errorf("reports diverge:\nseq %+v\nopt %+v", seqRep, optRep)
	}
	st := sys.OptStats()
	if st.Windows == 0 || st.Speculative == 0 {
		t.Errorf("executor never speculated: %+v", st)
	}
	if st.Rollbacks == 0 {
		t.Errorf("contended multiactive run exercised no rollback: %+v", st)
	}
}

// TestOptimisticStatsDeterministic: the adaptive window schedule depends
// only on virtual time, never on the worker schedule — two runs report the
// same windows, speculations and rollbacks.
func TestOptimisticStatsDeterministic(t *testing.T) {
	_, _, a := runOptContention(t, optExec())
	_, _, b := runOptContention(t, optExec())
	if a.OptStats() != b.OptStats() {
		t.Errorf("OptStats nondeterministic: %+v vs %+v", a.OptStats(), b.OptStats())
	}
}

// TestOptimisticFaultEquivalence: fault injection draws from per-link
// random streams that rollback must rewind — a replayed transmission
// attempt sees the same drop/duplicate/jitter decisions as a sequential
// run, under the full reliable protocol with coalesced (delayed) acks.
// An ack revoked with a rolled-back window (the anti-message racing the
// coalesced ack) must not change what the sender retransmits.
func TestOptimisticFaultEquivalence(t *testing.T) {
	run := func(exec abcl.Option) hotkey.Result {
		res, err := hotkey.Run(hotkey.Options{
			Nodes: 4, Clients: 6, Ops: 8, Seed: 7,
			Faults:   abcl.UniformFaults(0.10, 0.05, 2*abcl.Microsecond),
			AckDelay: 3 * abcl.Microsecond,
			Extra:    []abcl.Option{exec},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(abcl.WithExecutor(abcl.Sequential()))
	opt := run(optExec())
	if !reflect.DeepEqual(seq, opt) {
		t.Errorf("faulted hotkey diverges:\nseq %+v\nopt %+v", seq, opt)
	}
}

// TestOptimisticCrashRecovery: checkpoint rounds and a crash/restart run
// under the Time Warp executor — marker rounds are fenced (serial), but
// the lanes speculate freely between rounds, and a rollback that crosses
// checkpoint retention must leave the stable store able to replay exactly
// the committed messages. Identical results to the sequential recovery.
func TestOptimisticCrashRecovery(t *testing.T) {
	const n = 6
	base := []abcl.Option{abcl.WithNodes(4), abcl.WithSeed(11), abcl.WithReliable()}
	clean := runQueens(t, n, base...)
	if clean.solutions != queensSolutions[n] {
		t.Fatalf("fault-free run: %d solutions, want %d", clean.solutions, queensSolutions[n])
	}
	crashAt := clean.elapsed / 3
	ckptOpts := func(exec abcl.Option) []abcl.Option {
		return []abcl.Option{
			abcl.WithNodes(4), abcl.WithSeed(11),
			abcl.WithCheckpoint(clean.elapsed / 8),
			abcl.WithFaults(abcl.FaultPlan{}.WithCrash(2, crashAt, clean.elapsed/10)),
			exec,
		}
	}
	seq := runQueens(t, n, ckptOpts(abcl.WithExecutor(abcl.Sequential()))...)
	opt := runQueens(t, n, ckptOpts(optExec())...)
	if seq.solutions != clean.solutions {
		t.Fatalf("sequential recovery found %d solutions, want %d", seq.solutions, clean.solutions)
	}
	if !reflect.DeepEqual(seq, opt) {
		t.Errorf("recovered runs diverge:\nseq %+v\nopt %+v", seq, opt)
	}
}

// TestOptimisticForkJoin: creation-heavy traffic exercises the remote
// chunk-stock path, whose cross-lane pre-seeding is journaled for
// anti-message revocation on rollback.
func TestOptimisticForkJoin(t *testing.T) {
	run := func(exec abcl.Option) (int64, abcl.Report) {
		sys, err := abcl.NewSystem(abcl.WithNodes(6), abcl.WithSeed(5), exec)
		if err != nil {
			t.Fatal(err)
		}
		leaves, err := misc.RunForkJoinOn(sys, 6)
		if err != nil {
			t.Fatal(err)
		}
		return leaves, sys.Report()
	}
	seqLeaves, seqRep := run(abcl.WithExecutor(abcl.Sequential()))
	optLeaves, optRep := run(optExec())
	if seqLeaves != optLeaves {
		t.Errorf("leaf counts diverge: seq %d opt %d", seqLeaves, optLeaves)
	}
	if !reflect.DeepEqual(seqRep, optRep) {
		t.Errorf("fork-join reports diverge:\nseq %+v\nopt %+v", seqRep, optRep)
	}
}

// Benchmark harness: one benchmark per table and figure of the paper, plus
// ablations of the design decisions called out in DESIGN.md. Each benchmark
// runs the corresponding experiment on the simulator and reports the
// *virtual-time* quantity the paper reports as a custom metric
// (virtual-µs/op, speedup, …); wall-clock ns/op measures simulator speed,
// not the paper's metric.
//
//	go test -bench=. -benchmem
package abcl_test

import (
	"fmt"
	"testing"

	abcl "repro"
	"repro/internal/apps/diffusion"
	"repro/internal/apps/hotkey"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
	"repro/internal/apps/pingpong"
	"repro/internal/core"
	"repro/internal/machine"
)

// --- Table 1: costs of basic operations ---------------------------------

func BenchmarkTable1_IntraNodeDormant(b *testing.B) {
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := pingpong.PastLocal(1000)
		if err != nil {
			b.Fatal(err)
		}
		per = res.PerOp.Micros()
	}
	b.ReportMetric(per, "virtual-µs/msg")
}

func BenchmarkTable1_IntraNodeActive(b *testing.B) {
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := pingpong.PastLocalActive(1000)
		if err != nil {
			b.Fatal(err)
		}
		per = res.PerOp.Micros()
	}
	b.ReportMetric(per, "virtual-µs/msg")
}

func BenchmarkTable1_IntraNodeCreation(b *testing.B) {
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := pingpong.CreateLocal(1000)
		if err != nil {
			b.Fatal(err)
		}
		per = res.PerOp.Micros()
	}
	b.ReportMetric(per, "virtual-µs/create")
}

func BenchmarkTable1_InterNodeMessage(b *testing.B) {
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := pingpong.PastRemote(1000)
		if err != nil {
			b.Fatal(err)
		}
		per = res.PerOp.Micros()
	}
	b.ReportMetric(per, "virtual-µs/msg")
}

// --- Table 2: dormant-path instruction breakdown -------------------------

func BenchmarkTable2_Breakdown(b *testing.B) {
	cost := machine.DefaultCost()
	var total int
	for i := 0; i < b.N; i++ {
		total = cost.DormantPath()
	}
	if total != 25 {
		b.Fatalf("dormant path = %d instructions, want 25", total)
	}
	b.ReportMetric(float64(total), "instructions")
}

// --- Table 3: send/reply latency -----------------------------------------

func BenchmarkTable3_SendReply(b *testing.B) {
	var per float64
	for i := 0; i < b.N; i++ {
		res, err := pingpong.NowRemote(100)
		if err != nil {
			b.Fatal(err)
		}
		per = res.PerOp.Micros()
	}
	b.ReportMetric(per, "virtual-µs/rtt")
	b.ReportMetric(per*25, "cycles/rtt") // 25MHz clock
}

// --- Table 4: scale of the N-queens program ------------------------------

func BenchmarkTable4_NQueensScale(b *testing.B) {
	var res nqueens.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = nqueens.Run(nqueens.Options{N: 8, Nodes: 64, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Solutions != 92 || res.Objects != 2056 {
		b.Fatalf("N=8: solutions=%d objects=%d, want 92/2056", res.Solutions, res.Objects)
	}
	b.ReportMetric(float64(res.Objects), "objects")
	b.ReportMetric(float64(res.Messages), "messages")
	b.ReportMetric(float64(res.MemoryBytes)/1024, "modelled-KB")
}

// --- Figure 5: speedup vs processors --------------------------------------

func BenchmarkFigure5_Speedup(b *testing.B) {
	const n = 10
	seq := nqueens.Sequential(n, machine.DefaultConfig(1), 0)
	for _, procs := range []int{1, 16, 64, 256, 512} {
		b.Run(fmt.Sprintf("N%d_P%d", n, procs), func(b *testing.B) {
			var sp, util float64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{N: n, Nodes: procs, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				sp = float64(seq.Elapsed) / float64(res.Elapsed)
				util = res.Utilization
			}
			b.ReportMetric(sp, "speedup")
			b.ReportMetric(util, "utilization")
		})
	}
}

// --- Figure 6: stack-based vs naive scheduling ----------------------------

func BenchmarkFigure6_StackVsNaive(b *testing.B) {
	const n, procs = 9, 512
	for _, pol := range []abcl.Policy{abcl.StackBased, abcl.Naive} {
		b.Run(fmt.Sprintf("N%d_%s", n, pol), func(b *testing.B) {
			var ms, dormant float64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{N: n, Nodes: procs, Seed: 1, Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
				dormant = res.Stats.DormantFraction()
			}
			b.ReportMetric(ms, "virtual-ms")
			b.ReportMetric(dormant, "dormant-fraction")
		})
	}
}

// --- Ablations -------------------------------------------------------------

// Chunk-stock prefetch vs blocking round-trip creation (Section 5.2).
func BenchmarkAblation_ChunkStock(b *testing.B) {
	for _, depth := range []int{-1, 1, 2, 4} {
		name := fmt.Sprintf("stock%d", depth)
		if depth < 0 {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			var ms float64
			var misses uint64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{N: 9, Nodes: 64, Seed: 1, StockDepth: depth})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
				misses = res.Stats.StockMisses
			}
			b.ReportMetric(ms, "virtual-ms")
			b.ReportMetric(float64(misses), "stock-misses")
		})
	}
}

// Placement policies for remote creation (Section 2.5's locality control).
func BenchmarkAblation_Placement(b *testing.B) {
	for _, p := range []abcl.Placement{
		abcl.PlaceRandom, abcl.PlaceRoundRobin, abcl.PlaceLoadBased, abcl.PlaceDepthLocal,
	} {
		b.Run(p.Name(), func(b *testing.B) {
			var ms, util float64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{N: 9, Nodes: 64, Seed: 1, Placement: p})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
				util = res.Utilization
			}
			b.ReportMetric(ms, "virtual-ms")
			b.ReportMetric(util, "utilization")
		})
	}
}

// Preemption bound: how deep stack-based chaining may grow before the
// scheduler preempts to the queue (Section 4.3).
func BenchmarkAblation_MaxStackDepth(b *testing.B) {
	for _, d := range []int{2, 8, 64, 512} {
		b.Run(fmt.Sprintf("depth%d", d), func(b *testing.B) {
			var ms float64
			var preempts uint64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{N: 9, Nodes: 16, Seed: 1, MaxDepth: d})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
				preempts = res.Stats.Preemptions
			}
			b.ReportMetric(ms, "virtual-ms")
			b.ReportMetric(float64(preempts), "preemptions")
		})
	}
}

// Interconnect topology: routing distance vs the software-dominated costs.
func BenchmarkAblation_Topology(b *testing.B) {
	topos := []struct {
		name string
		topo machine.Topology
	}{
		{"torus", machine.SquarishTorus(64)},
		{"mesh", machine.Mesh2D{W: 8, H: 8}},
		{"hypercube", machine.Hypercube{}},
		{"full", machine.FullyConnected{}},
	}
	for _, tc := range topos {
		b.Run(tc.name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig(64)
				cfg.Topology = tc.topo
				sys, err := abcl.NewSystem(abcl.WithNodes(64), abcl.WithMachine(cfg), abcl.WithSeed(1))
				if err != nil {
					b.Fatal(err)
				}
				d := nqueens.Build(sys, 9, 0)
				d.Start()
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				res, err := d.Result()
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
			}
			b.ReportMetric(ms, "virtual-ms")
		})
	}
}

// Fork-join with now-type joins: the blocking/resume machinery under load.
func BenchmarkForkJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leaves, err := misc.RunForkJoin(10, 16, abcl.StackBased)
		if err != nil {
			b.Fatal(err)
		}
		if leaves != 1024 {
			b.Fatalf("leaves = %d", leaves)
		}
	}
}

// Simulator throughput: how many simulated messages per wall-clock second
// the DES processes (engineering metric, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var msgs uint64
	for i := 0; i < b.N; i++ {
		res, err := nqueens.Run(nqueens.Options{N: 9, Nodes: 64, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Messages
	}
	b.ReportMetric(float64(msgs), "simulated-msgs/op")
}

// Arrival notification: polling (AP1000/CM-5 style) vs interrupt
// (nCUBE/2/iPSC/2 style), Section 5. Polling taxes every method epilogue;
// interrupts tax every received packet.
func BenchmarkAblation_NotifyMode(b *testing.B) {
	for _, mode := range []machine.NotifyMode{machine.NotifyPolling, machine.NotifyInterrupt} {
		b.Run(mode.String(), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig(64)
				cfg.Notify = mode
				sys, err := abcl.NewSystem(abcl.WithNodes(64), abcl.WithMachine(cfg), abcl.WithSeed(1))
				if err != nil {
					b.Fatal(err)
				}
				d := nqueens.Build(sys, 9, 0)
				d.Start()
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				res, err := d.Result()
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
			}
			b.ReportMetric(ms, "virtual-ms")
		})
	}
}

// The compile-time send optimizations of Section 6.1: the dormant-path
// overhead ladder from 25 instructions down to 8.
func BenchmarkAblation_SendHints(b *testing.B) {
	run := func(b *testing.B, hints core.SendHint) {
		var per float64
		for i := 0; i < b.N; i++ {
			sys, err := abcl.NewSystem(abcl.WithNodes(1))
			if err != nil {
				b.Fatal(err)
			}
			ping := sys.Pattern("ping", 0)
			kick := sys.Pattern("kick", 0)
			null := sys.Class("null", 0, nil)
			null.Method(ping, func(ctx *abcl.Ctx) {})
			var target abcl.Address
			var start, end abcl.Time
			drv := sys.Class("drv", 0, nil)
			drv.Method(kick, func(ctx *abcl.Ctx) {
				start = ctx.Now()
				for j := 0; j < 1000; j++ {
					ctx.SendPastHinted(target, ping, hints)
				}
				end = ctx.Now()
			})
			target = sys.NewObjectOn(0, null)
			d := sys.NewObjectOn(0, drv)
			sys.Send(d, kick)
			if err := sys.Run(); err != nil {
				b.Fatal(err)
			}
			per = (end - start).Micros() / 1000
		}
		b.ReportMetric(per, "virtual-µs/msg")
	}
	b.Run("none", func(b *testing.B) { run(b, 0) })
	b.Run("known-local", func(b *testing.B) { run(b, core.HintKnownLocal) })
	b.Run("leaf", func(b *testing.B) { run(b, core.HintLeafMethod) })
	b.Run("full", func(b *testing.B) { run(b, core.HintFullyOptimized) })
}

// Diffusion stencil: a join-heavy nearest-neighbour workload, the opposite
// communication pattern to N-queens (2% dormant fraction vs ~80%). Compares
// block placement (torus locality) against scatter.
func BenchmarkDiffusion(b *testing.B) {
	for _, blockPlace := range []bool{true, false} {
		name := "scatter"
		if blockPlace {
			name = "block"
		}
		b.Run(name, func(b *testing.B) {
			var ms, util float64
			for i := 0; i < b.N; i++ {
				res, err := diffusion.Run(diffusion.Options{
					W: 16, H: 16, Iters: 10, Nodes: 16, BlockPlace: blockPlace,
				})
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Millis()
				util = res.Utilization
			}
			b.ReportMetric(ms, "virtual-ms")
			b.ReportMetric(util, "utilization")
		})
	}
}

// All-to-all exchange: the communication-dominated workload for the
// wire-path optimisations. Every node sends numbered messages to every other
// node; variants toggle per-link batching, the reliable protocol and
// delayed (coalesced) acks. The interesting metrics are virtual-time
// packets/op (how much the fixed per-packet launch cost is amortised),
// acks/op and msgs-per-batch.
func BenchmarkTable_AllToAll(b *testing.B) {
	const nodes, rounds = 16, 8
	variants := []struct {
		name string
		opts []abcl.Option
	}{
		{"plain", nil},
		{"batched", []abcl.Option{abcl.WithBatching(25*abcl.Microsecond, 0)}},
		{"reliable", []abcl.Option{abcl.WithReliable()}},
		{"reliable_coalesced", []abcl.Option{
			abcl.WithReliable(),
			abcl.WithBatching(25*abcl.Microsecond, 0),
			abcl.WithDelayedAcks(25 * abcl.Microsecond),
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res *misc.AllToAllResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = misc.RunAllToAll(misc.AllToAllOptions{Nodes: nodes, Rounds: rounds, Opts: v.opts})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Micros(), "virtual-µs")
			b.ReportMetric(float64(res.Packets), "packets")
			b.ReportMetric(float64(res.Stats.AcksSent), "acks")
			b.ReportMetric(res.Stats.MsgsPerBatch(), "msgs-per-batch")
		})
	}
}

// Figure 5 with the full wire path on: the same N-queens runs as
// BenchmarkFigure5_Speedup but under the reliable protocol with per-link
// batching and delayed (coalesced) acks, for packet count and utilization
// comparison against the unbatched baseline. Reliable mode without the
// wire-path options would pay one ack packet per data packet (2x the
// packets); batching + ack coalescing brings the total back to ~2/3 of the
// *unreliable* baseline's count. The tree workload spreads its traffic over
// ~65k links (~2 records per link per run), so unlike the all-to-all
// exchange, per-link coalescing is density-limited here: packets drop ~1.5x,
// while utilization stays within schedule noise (±0.3%) of the baseline.
func BenchmarkFigure5_SpeedupBatched(b *testing.B) {
	const n = 10
	seq := nqueens.Sequential(n, machine.DefaultConfig(1), 0)
	for _, procs := range []int{256, 512} {
		b.Run(fmt.Sprintf("N%d_P%d", n, procs), func(b *testing.B) {
			var sp, util, pkts float64
			for i := 0; i < b.N; i++ {
				res, err := nqueens.Run(nqueens.Options{
					N: n, Nodes: procs, Seed: 1,
					Reliable:    true,
					BatchWindow: 10 * abcl.Microsecond,
					AckDelay:    500 * abcl.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				sp = float64(seq.Elapsed) / float64(res.Elapsed)
				util = res.Utilization
				pkts = float64(res.Packets)
			}
			b.ReportMetric(sp, "speedup")
			b.ReportMetric(util, "utilization")
			b.ReportMetric(pkts, "packets")
		})
	}
}

// --- Figure 5, Time Warp: optimistic vs conservative at P256 ---------------
//
// The all-to-all exchange at 256 nodes is where the conservative parallel
// driver flatlines: every cross-lane effect lands exactly one lookahead
// ahead, so the driver is pinned to lookahead-width windows — one global
// barrier per ~9µs of virtual time, ~2000 barriers for the run — and the
// barrier rate, not the event work, bounds multicore scaling. The Time Warp
// executor widens its windows adaptively once the kick burst drains (the
// deliveries themselves send nothing, so speculation commits clean), cutting
// the barrier count by an order of magnitude at identical results.
//
// Wall-clock ns/op is reported per executor for host-speed tracking, but the
// gated scaling signal is deterministic: events-per-barrier (synchronization
// grain). The optimistic executor must run the workload in at most half the
// conservative barrier count — measured on virtual time alone, so the gate
// holds on any host, including single-core CI runners where wall-clock
// parallel speedup is unobservable.
func BenchmarkFigure5_TimeWarp(b *testing.B) {
	const nodes, rounds = 256, 8
	run := func(b *testing.B, exec abcl.Option) *misc.AllToAllResult {
		var res *misc.AllToAllResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = misc.RunAllToAll(misc.AllToAllOptions{
				Nodes: nodes, Rounds: rounds, Opts: []abcl.Option{exec},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		return res
	}
	var consWins, optWins uint64
	b.Run(fmt.Sprintf("R%d_P%d_conservative", rounds, nodes), func(b *testing.B) {
		res := run(b, abcl.WithExecutor(abcl.Conservative(4)))
		consWins = res.SyncWindows
		b.ReportMetric(float64(res.SyncWindows), "barriers")
		b.ReportMetric(float64(res.Delivered)/float64(res.SyncWindows), "msgs-per-barrier")
	})
	b.Run(fmt.Sprintf("R%d_P%d_optimistic", rounds, nodes), func(b *testing.B) {
		res := run(b, abcl.WithExecutor(abcl.Optimistic(4, abcl.OptimisticOptions{})))
		optWins = res.SyncWindows
		b.ReportMetric(float64(res.SyncWindows), "barriers")
		b.ReportMetric(float64(res.Delivered)/float64(res.SyncWindows), "msgs-per-barrier")
	})
	if optWins == 0 || consWins == 0 {
		b.Fatalf("executor never windowed: conservative=%d optimistic=%d", consWins, optWins)
	}
	if optWins*2 > consWins {
		b.Fatalf("Time Warp did not beat the conservative runner at P%d: %d optimistic windows vs %d conservative barriers (want <= half)",
			nodes, optWins, consWins)
	}
}

// Object migration service: cost of moving an object and of sending through
// its forwarder afterwards.
func BenchmarkMigrationForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := abcl.NewSystem(abcl.WithNodes(3))
		if err != nil {
			b.Fatal(err)
		}
		inc := sys.Pattern("inc", 0)
		kick := sys.Pattern("kick", 0)
		counter := sys.Class("counter", 1, func(ic *abcl.InitCtx) { ic.SetState(0, abcl.Int(0)) })
		counter.Method(inc, func(ctx *abcl.Ctx) {
			ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
		})
		target := sys.NewObjectOn(0, counter)
		drv := sys.Class("drv", 0, nil)
		drv.Method(kick, func(ctx *abcl.Ctx) {
			for j := 0; j < 100; j++ {
				ctx.SendPast(target, inc)
			}
		})
		d := sys.NewObjectOn(1, drv)
		sys.RT.Freeze()
		if err := sys.Net.Migrate(target.Obj, 2, nil); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		sys.Send(d, kick)
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if got := sys.Report().Sched.Counters.Forwards; got != 100 {
			b.Fatalf("forwards = %d, want 100", got)
		}
	}
}

// --- Contention: throughput vs annotation coverage ------------------------

// BenchmarkHotKeyContention runs the hot-key counter workload at each
// annotation coverage level and reports virtual-time throughput plus the
// speedup over the unannotated serial baseline — the headline multiactive
// ablation (EXPERIMENTS.md). Wall-clock ns/op additionally tracks the
// simulator-side cost of the per-group ready queues, which is what the
// perf gate pins.
func BenchmarkHotKeyContention(b *testing.B) {
	opts := hotkey.Options{Nodes: 16, Clients: 16, Ops: 40, WritePct: 20}
	opts.Coverage = hotkey.CoverNone
	base, err := hotkey.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, cov := range []hotkey.Coverage{hotkey.CoverNone, hotkey.CoverPartial, hotkey.CoverFull} {
		b.Run(cov.String(), func(b *testing.B) {
			var res hotkey.Result
			for i := 0; i < b.N; i++ {
				opts.Coverage = cov
				res, err = hotkey.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Throughput, "ops/virtual-ms")
			b.ReportMetric(res.Throughput/base.Throughput, "speedup")
			b.ReportMetric(float64(res.MaxLive), "peak-overlap")
		})
	}
}

// --- Observability: profiler-off overhead ---------------------------------

// BenchmarkProfilerOffOverhead runs the engine with the cost-attribution
// profiler compiled in but disabled — the product's default path. Its ns/op
// is gated tightly (Makefile GATE_BENCH, 2%) against the checked-in
// baseline, pinning the claim that the disabled profiler costs one nil
// check per charge. The on/off virtual-time equality is asserted separately
// by TestProfilerEquivalence.
func BenchmarkProfilerOffOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := nqueens.Run(nqueens.Options{N: 10, Nodes: 64, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Profile != nil {
			b.Fatal("profiler unexpectedly enabled")
		}
	}
}

// Quickstart: define a class, create objects across nodes, and exchange
// past- and now-type messages on the simulated multicomputer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	abcl "repro"
)

func main() {
	// A 4-node AP1000-flavoured machine with default scheduling (the
	// paper's integrated stack/queue scheduler).
	sys, err := abcl.NewSystem(abcl.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}

	// Message patterns are registered up front (the paper assigns each
	// pattern a unique number at compile time).
	greet := sys.Pattern("greet", 1)   // greet name     (past type)
	howMany := sys.Pattern("count", 0) // count          (now type)

	// A greeter counts how many greetings it has handled.
	greeter := sys.Class("greeter", 1, func(ic *abcl.InitCtx) {
		ic.SetState(0, abcl.Int(0))
	})
	greeter.Method(greet, func(ctx *abcl.Ctx) {
		fmt.Printf("[node %d, t=%v] hello, %s!\n", ctx.NodeID(), ctx.Now(), ctx.Arg(0).Str())
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	greeter.Method(howMany, func(ctx *abcl.Ctx) {
		ctx.Reply(ctx.State(0))
	})

	// A driver object sends greetings (past type: asynchronous, no wait),
	// then asks for the count (now type: waits for the reply).
	kick := sys.Pattern("kick", 0)
	var target abcl.Address
	driver := sys.Class("driver", 0, nil)
	driver.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendPast(target, greet, abcl.Str("AP1000"))
		ctx.SendPast(target, greet, abcl.Str("PPOPP'93"))
		ctx.SendNow(target, howMany, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			fmt.Printf("[node %d, t=%v] greeter handled %d greetings\n",
				ctx.NodeID(), ctx.Now(), v.Int())
		})
	})

	// The greeter lives on node 3, the driver on node 0: all interaction is
	// inter-node message passing.
	target = sys.NewObjectOn(3, greeter)
	d := sys.NewObjectOn(0, driver)
	sys.Send(d, kick)

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	rep := sys.Report()
	st := rep.Sched.Counters
	fmt.Printf("\nfinished at t=%v: %d remote messages, %d local, utilization %.0f%%\n",
		rep.Sched.Elapsed, st.RemoteSends, st.LocalMessages(), 100*rep.Sched.Utilization)
}

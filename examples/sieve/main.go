// A Sieve of Eratosthenes built from a dynamically growing pipeline of
// concurrent objects — the classic fine-grain-concurrency demo. Each prime
// becomes a filter object; candidate numbers flow down the pipeline as
// past-type messages; when a candidate survives every filter, the last
// filter creates a new filter object for it (placed by the system's
// placement policy, so the pipeline spreads across nodes).
//
// This exercises exactly the paper's fast paths: almost every message is a
// send to a dormant object (stack-based invocation), and pipeline growth is
// remote creation with chunk stocks.
//
//	go run ./examples/sieve           # primes below 1000 on 16 nodes
//	go run ./examples/sieve -max 5000 -nodes 64
package main

import (
	"flag"
	"fmt"
	"log"

	abcl "repro"
)

const (
	stPrime = 0 // this filter's prime
	stNext  = 1 // downstream filter (nil ref sentinel when last)
)

func main() {
	max := flag.Int("max", 1000, "sieve bound")
	nodes := flag.Int("nodes", 16, "processor count")
	flag.Parse()

	sys, err := abcl.NewSystem(abcl.WithNodes(*nodes), abcl.WithPlacement(abcl.PlaceRoundRobin))
	if err != nil {
		log.Fatal(err)
	}

	candidate := sys.Pattern("candidate", 1)
	prime := sys.Pattern("prime", 1)

	var primes []int64
	collector := sys.Class("collector", 0, nil)
	collector.Method(prime, func(ctx *abcl.Ctx) {
		primes = append(primes, ctx.Arg(0).Int())
	})
	collectorAddr := sys.NewObjectOn(0, collector)

	var filter *abcl.Class
	filter = sys.Class("filter", 2, func(ic *abcl.InitCtx) {
		ic.SetState(stPrime, ic.CtorArg(0))
		ic.SetState(stNext, abcl.Nil)
	})
	filter.Method(candidate, func(ctx *abcl.Ctx) {
		n := ctx.Arg(0).Int()
		p := ctx.State(stPrime).Int()
		ctx.Charge(4) // one trial division
		if n%p == 0 {
			return // filtered out
		}
		if next := ctx.State(stNext); !next.IsNil() {
			ctx.SendPast(next.Ref(), candidate, abcl.Int(n))
			return
		}
		// n passed every filter: it is prime. Grow the pipeline.
		ctx.SendPast(collectorAddr, prime, abcl.Int(n))
		ctx.Create(filter, []abcl.Value{abcl.Int(n)}, func(ctx *abcl.Ctx, a abcl.Address) {
			ctx.SetState(stNext, abcl.Ref(a))
		})
	})

	// The generator feeds odd candidates into the first filter (for 2).
	feed := sys.Pattern("feed", 2)
	var first abcl.Address
	gen := sys.Class("generator", 0, nil)
	gen.Method(feed, func(ctx *abcl.Ctx) {
		n, limit := ctx.Arg(0).Int(), ctx.Arg(1).Int()
		ctx.SendPast(first, candidate, abcl.Int(n))
		if n+2 <= limit {
			// Re-sending to self keeps the node fair: the message queues
			// behind any pipeline work (Figure 1's scheduling-queue path).
			ctx.SendPast(ctx.Self(), feed, abcl.Int(n+2), abcl.Int(limit))
		}
	})

	primes = append(primes, 2)
	first = sys.NewObjectOn(0, filter, abcl.Int(2))
	g := sys.NewObjectOn(0, gen)
	sys.Send(g, feed, abcl.Int(3), abcl.Int(int64(*max)))

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	rep := sys.Report()
	fmt.Printf("%d primes below %d in %v on %d nodes (utilization %.0f%%)\n",
		len(primes), *max, rep.Sched.Elapsed, *nodes, 100*rep.Sched.Utilization)
	st := rep.Sched.Counters
	fmt.Printf("filters created: %d   messages: local %d (%.0f%% to dormant), remote %d\n",
		st.Creations()-3, st.LocalMessages(), 100*st.DormantFraction(), st.RemoteSends)
	if len(primes) < 20 {
		fmt.Println("primes:", primes)
	} else {
		fmt.Println("last prime:", maxOf(primes))
	}
}

func maxOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// The paper's headline benchmark: exhaustive N-queens search as a tree of
// concurrent objects on a 512-node simulated AP1000, with ack-based
// termination detection (Section 6.2, Table 4, Figure 5).
//
//	go run ./examples/nqueens            # N=10 on 512 nodes
//	go run ./examples/nqueens -n 12      # bigger board
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/nqueens"
	"repro/internal/machine"
)

func main() {
	n := flag.Int("n", 10, "board size")
	nodes := flag.Int("nodes", 512, "processor count")
	flag.Parse()

	seq := nqueens.Sequential(*n, machine.DefaultConfig(1), 0)
	fmt.Printf("sequential baseline: %d solutions in %v (model: SS1+-class CPU)\n",
		seq.Solutions, seq.Elapsed)

	res, err := nqueens.Run(nqueens.Options{N: *n, Nodes: *nodes, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if res.Solutions != seq.Solutions {
		log.Fatalf("parallel result %d disagrees with sequential %d",
			res.Solutions, seq.Solutions)
	}
	fmt.Printf("parallel: %d solutions in %v on %d nodes\n",
		res.Solutions, res.Elapsed, res.Nodes)
	fmt.Printf("  speedup      %.1fx (ideal %d)\n",
		float64(seq.Elapsed)/float64(res.Elapsed), *nodes)
	fmt.Printf("  utilization  %.0f%%\n", 100*res.Utilization)
	fmt.Printf("  objects      %d   messages %d\n", res.Objects, res.Messages)
	fmt.Printf("  dormant fraction of local messages: %.0f%% (paper: ~75%%)\n",
		100*res.Stats.DormantFraction())
}

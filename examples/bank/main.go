// Note: lines print in simulation-event order; the t= stamps give the
// virtual-time order.
//
// A bank-account service demonstrating now-type (RPC-style) messaging,
// selective message reception, and reply-destination delegation — the
// ABCL idioms of Sections 2.2 and 4.3.
//
// The account object processes deposits and withdrawals one at a time (a
// concurrent object has a single thread of control, so no locks are
// needed). A withdrawal that exceeds the balance *selectively waits* for
// further deposits instead of failing: the object switches to waiting mode
// and non-awaited messages buffer in its message queue. An auditor object
// shows reply delegation: it forwards balance queries to the account with
// the original caller's reply destination.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	abcl "repro"
)

const (
	stBalance = 0
)

func main() {
	sys, err := abcl.NewSystem(abcl.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}

	deposit := sys.Pattern("deposit", 1)   // past type
	withdraw := sys.Pattern("withdraw", 1) // now type: replies new balance
	balance := sys.Pattern("balance", 0)   // now type

	account := sys.Class("account", 1, func(ic *abcl.InitCtx) {
		ic.SetState(stBalance, ic.CtorArg(0))
	})
	account.Method(deposit, func(ctx *abcl.Ctx) {
		ctx.SetState(stBalance, abcl.Int(ctx.State(stBalance).Int()+ctx.Arg(0).Int()))
	})
	var tryWithdraw func(ctx *abcl.Ctx, amount int64)
	tryWithdraw = func(ctx *abcl.Ctx, amount int64) {
		bal := ctx.State(stBalance).Int()
		if bal >= amount {
			ctx.SetState(stBalance, abcl.Int(bal-amount))
			ctx.Reply(abcl.Int(bal - amount))
			return
		}
		// Insufficient funds: wait selectively for the next deposit, then
		// retry. Other withdrawals buffer in the message queue meanwhile.
		fmt.Printf("  [t=%8v account]   withdrawal of %d waits (balance %d)\n", ctx.Now(), amount, bal)
		ctx.WaitFor(func(ctx *abcl.Ctx, f *abcl.Frame) {
			ctx.SetState(stBalance, abcl.Int(ctx.State(stBalance).Int()+f.Arg(0).Int()))
			tryWithdraw(ctx, amount)
		}, deposit)
	}
	account.Method(withdraw, func(ctx *abcl.Ctx) {
		tryWithdraw(ctx, ctx.Arg(0).Int())
	})
	account.Method(balance, func(ctx *abcl.Ctx) {
		ctx.Reply(ctx.State(stBalance))
	})

	// The auditor forwards balance queries, delegating the reply: the
	// account's answer goes straight to the original asker.
	audit := sys.Pattern("audit", 1) // audit account-ref (now type)
	auditor := sys.Class("auditor", 0, nil)
	auditor.Method(audit, func(ctx *abcl.Ctx) {
		ctx.SendWithReply(ctx.Arg(0).Ref(), balance, nil, ctx.ReplyTo())
	})

	// Drive the scenario from a customer object.
	kick := sys.Pattern("kick", 0)
	var acct, aud abcl.Address
	customer := sys.Class("customer", 0, nil)
	customer.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendNow(acct, withdraw, []abcl.Value{abcl.Int(150)}, func(ctx *abcl.Ctx, v abcl.Value) {
			fmt.Printf("  [t=%8v customer]  withdrew 150, balance now %d\n", ctx.Now(), v.Int())
			ctx.SendNow(aud, audit, []abcl.Value{abcl.Ref(acct)}, func(ctx *abcl.Ctx, v abcl.Value) {
				fmt.Printf("  [t=%8v customer]  audited balance: %d\n", ctx.Now(), v.Int())
			})
		})
	})
	// A depositor on another node funds the account after a delay, waking
	// the blocked withdrawal.
	fund := sys.Pattern("fund", 0)
	depositor := sys.Class("depositor", 0, nil)
	depositor.Method(fund, func(ctx *abcl.Ctx) {
		ctx.Charge(100_000) // ~9ms of other work first
		fmt.Printf("  [t=%8v depositor] depositing 200\n", ctx.Now())
		ctx.SendPast(acct, deposit, abcl.Int(200))
	})

	acct = sys.NewObjectOn(0, account, abcl.Int(100)) // opening balance 100
	aud = sys.NewObjectOn(1, auditor)
	cust := sys.NewObjectOn(2, customer)
	dep := sys.NewObjectOn(3, depositor)
	sys.Send(cust, kick)
	sys.Send(dep, fund)

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done at t=%v (final balance %d)\n", sys.Report().Sched.Elapsed, acct.Obj.State(stBalance).Int())
}

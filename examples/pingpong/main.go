// Latency microbenchmarks (Table 1 of the paper): intra-node sends to
// dormant and active objects, local creation, and the minimum inter-node
// message latency measured exactly as the paper does — two objects bouncing
// one-word past-type messages between adjacent nodes.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/pingpong"
)

func main() {
	const iters = 10000

	d, err := pingpong.PastLocal(iters)
	fatal(err)
	a, err := pingpong.PastLocalActive(iters)
	fatal(err)
	c, err := pingpong.CreateLocal(iters)
	fatal(err)
	r, err := pingpong.PastRemote(iters)
	fatal(err)
	w, err := pingpong.NowRemote(iters / 10)
	fatal(err)

	fmt.Println("operation                        per-op     paper")
	fmt.Printf("intra-node past (dormant)    %10v     2.3µs\n", d.PerOp)
	fmt.Printf("intra-node past (active)     %10v     9.6µs\n", a.PerOp)
	fmt.Printf("intra-node creation          %10v     2.1µs\n", c.PerOp)
	fmt.Printf("inter-node past (one-way)    %10v     8.9µs\n", r.PerOp)
	fmt.Printf("inter-node now (round trip)  %10v    17.8µs\n", w.PerOp)
	fmt.Println("\nThe dormant path is the paper's headline: stack-based scheduling")
	fmt.Println("makes an asynchronous object invocation cost ~25 instructions —")
	fmt.Println("about 4x cheaper than the buffered (active) path.")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

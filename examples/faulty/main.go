// Faulty: run a workload on a machine whose interconnect drops, duplicates
// and delays packets, and watch the reliable-delivery layer repair every
// loss without any change to the method bodies.
//
// The same seed always reproduces the same faults, retries and final
// state — the whole run is deterministic in virtual time.
//
//	go run ./examples/faulty
package main

import (
	"fmt"
	"log"

	abcl "repro"
)

func main() {
	// 10% of packets dropped, 5% duplicated, up to 2µs of extra latency —
	// on every inter-node link. Configuring faults switches the inter-node
	// layer to its ack/retry protocol automatically.
	sys, err := abcl.NewSystem(
		abcl.WithNodes(4),
		abcl.WithSeed(42),
		abcl.WithFaults(abcl.UniformFaults(0.10, 0.05, 2000)),
		abcl.WithTrace(64),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A counting ring: each object increments the token and passes it on;
	// after laps full circles the last object reports the total.
	pass := sys.Pattern("pass", 1)
	report := sys.Pattern("report", 1)
	const members, laps = 8, 20

	var ring [members]abcl.Address
	var sink abcl.Address
	node := sys.Class("ring.node", 0, nil)
	node.Method(pass, func(ctx *abcl.Ctx) {
		count := ctx.Arg(0).Int() + 1
		if count >= members*laps {
			ctx.SendPast(sink, report, abcl.Int(count))
			return
		}
		next := ring[int(count)%members]
		ctx.SendPast(next, pass, abcl.Int(count))
	})

	var total int64 = -1
	collector := sys.Class("ring.sink", 0, nil)
	collector.Method(report, func(ctx *abcl.Ctx) { total = ctx.Arg(0).Int() })

	for i := range ring {
		ring[i] = sys.NewObjectOn(i%sys.Nodes(), node)
	}
	sink = sys.NewObjectOn(0, collector)
	sys.Send(ring[0], pass, abcl.Int(-1))

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	rep := sys.Report()
	st := rep.Sched.Counters
	fmt.Printf("ring of %d objects, %d laps, over a lossy interconnect (seed %d)\n",
		members, laps, sys.Seed())
	fmt.Printf("  token count     %d (expected %d)\n", total, members*laps)
	fmt.Printf("  elapsed         %v\n", rep.Sched.Elapsed)
	fmt.Printf("  injected        drops=%d dups=%d\n", st.LinkDrops, st.LinkDups)
	fmt.Printf("  repaired        retransmits=%d dup-suppressed=%d reordered-held=%d\n",
		st.Retransmits, st.DupSuppressed, st.HeldOutOfOrder)
	fmt.Printf("  delivered       %d/%d reliable messages, lost=%d\n",
		st.RelDelivered, st.RelSent, st.LostMessages())

	if total != members*laps {
		log.Fatalf("token count diverged: %d", total)
	}
	if st.LostMessages() != 0 {
		log.Fatalf("lost %d messages", st.LostMessages())
	}
}

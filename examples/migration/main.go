// Live object migration — a category-4 remote service (Section 5.1 of the
// paper lists migration among the services handled by self-dispatching
// messages). A hot counter object starts on node 0 next to its clients;
// then the clients move to node 3's side of the machine, the counter is
// migrated to follow them, and stale references keep working through the
// forwarder installed at the old address.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	abcl "repro"
)

func main() {
	sys, err := abcl.NewSystem(abcl.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}

	inc := sys.Pattern("inc", 0)
	get := sys.Pattern("get", 0)
	burst := sys.Pattern("burst", 1)

	counter := sys.Class("counter", 1, func(ic *abcl.InitCtx) {
		ic.SetState(0, abcl.Int(0))
	})
	counter.Method(inc, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	counter.Method(get, func(ctx *abcl.Ctx) { ctx.Reply(ctx.State(0)) })

	var target abcl.Address
	client := sys.Class("client", 0, nil)
	client.Method(burst, func(ctx *abcl.Ctx) {
		n := ctx.Arg(0).Int()
		for i := int64(0); i < n; i++ {
			ctx.SendPast(target, inc)
		}
		ctx.SendNow(target, get, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			fmt.Printf("  [node %d, t=%8v] counter reads %d\n", ctx.NodeID(), ctx.Now(), v.Int())
		})
	})

	target = sys.NewObjectOn(0, counter)
	near := sys.NewObjectOn(0, client) // next to the counter
	far := sys.NewObjectOn(3, client)  // across the machine

	// Phase 1: traffic from the counter's own node.
	sys.Send(near, burst, abcl.Int(100))
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	rep1 := sys.Report()
	fmt.Printf("phase 1 done at %v (local traffic, %d remote msgs)\n",
		rep1.Sched.Elapsed, rep1.Sched.Counters.RemoteSends)

	// Phase 2: the workload moved to node 3 — migrate the counter there.
	if err := sys.Migrate(target, 3, func(a abcl.Address) {
		fmt.Printf("  counter migrated to node %d\n", a.Node)
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	// Phase 3: the far client hammers the counter — now local to node 3.
	// The stale address still works: messages route through the forwarder.
	sys.Send(far, burst, abcl.Int(100))
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	rep := sys.Report()
	st := rep.Sched.Counters
	fmt.Printf("phase 3 done at %v\n", rep.Sched.Elapsed)
	fmt.Printf("migrations: %d, forwarded messages: %d (stale-address traffic)\n",
		st.Migrations, st.Forwards)
	fmt.Println("note: the forwarder makes old references correct, not fast —")
	fmt.Println("clients should adopt the new address for performance.")
}

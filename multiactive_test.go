package abcl_test

import (
	"testing"

	abcl "repro"
	"repro/internal/apps/hotkey"
)

// runGroupedContention builds a small contended workload through the
// facade builder — a hot object on node 0 whose only method blocks on a
// round trip to a remote echo shard, annotated with one compatibility
// group — and runs it to quiescence. It returns the completed-operation
// count (from object state) plus the run's virtual time and counters.
func runGroupedContention(t *testing.T, extra ...abcl.Option) (int64, abcl.Time, abcl.Counters) {
	t.Helper()
	const (
		nodes   = 4
		clients = 6
		opsEach = 12
	)
	opts := append([]abcl.Option{abcl.WithNodes(nodes), abcl.WithSeed(11)}, extra...)
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}

	ping := sys.Pattern("mx.ping", 0)
	req := sys.Pattern("mx.req", 0)
	step := sys.Pattern("mx.step", 1)

	echo := sys.NewClass("mx.echo", 0, nil).
		Method(ping, func(ctx *abcl.Ctx) {
			ctx.Charge(300)
			ctx.Reply(abcl.Int(0))
		})
	shards := make([]abcl.Address, nodes-1)
	for i := range shards {
		shards[i] = sys.NewObjectOn(i+1, echo)
	}

	hot := sys.NewClass("mx.hot", 2, func(ic *abcl.InitCtx) {
		ic.SetState(0, abcl.Int(0)) // completed requests
		ic.SetState(1, abcl.Int(0)) // shard cursor
	}).
		Method(req, func(ctx *abcl.Ctx) {
			cur := ctx.State(1).Int()
			ctx.SetState(1, abcl.Int(cur+1))
			shard := shards[cur%int64(len(shards))]
			ctx.SendNow(shard, ping, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
				ctx.Reply(abcl.Int(0))
			})
		}).
		Group("reqs", req)
	hotAddr := sys.NewObjectOn(0, hot)

	client := sys.NewClass("mx.client", 0, nil).
		Method(step, func(ctx *abcl.Ctx) {
			rem := ctx.Arg(0).Int()
			if rem == 0 {
				return
			}
			ctx.SendNow(hotAddr, req, nil, func(ctx *abcl.Ctx, _ abcl.Value) {
				ctx.SendPast(ctx.Self(), step, abcl.Int(rem-1))
			})
		})
	for i := 0; i < clients; i++ {
		c := sys.NewObjectOn(1+i%(nodes-1), client)
		sys.Send(c, step, abcl.Int(opsEach))
	}

	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	done := hotAddr.Obj.State(0).Int()
	if done != clients*opsEach {
		t.Fatalf("completed %d requests, want %d", done, clients*opsEach)
	}
	rep := sys.Report()
	return done, rep.Sched.Elapsed, rep.Sched.Counters
}

// The conservative parallel executor must produce byte-identical results
// for multiactive schedules: per-group ready queues are part of node state
// and must not introduce cross-lane nondeterminism.
func TestMultiactiveParallelEquivalence(t *testing.T) {
	seqDone, seqElapsed, seqStats := runGroupedContention(t)
	parDone, parElapsed, parStats := runGroupedContention(t, abcl.WithExecutor(abcl.Conservative(4)))
	if seqDone != parDone {
		t.Errorf("completed ops diverge: sequential %d, parallel %d", seqDone, parDone)
	}
	if seqElapsed != parElapsed {
		t.Errorf("virtual time diverges: sequential %v, parallel %v", seqElapsed, parElapsed)
	}
	if seqStats != parStats {
		t.Errorf("counters diverge:\nsequential %+v\nparallel   %+v", seqStats, parStats)
	}
}

// Crashing the counter's node mid-run — while grouped invocations are
// overlapped inside their compatibility groups — must roll back to the
// last checkpoint and replay to the same ledger: per-group queues are
// captured and restored with the rest of the node state, and the
// workload keeps its operation counts in object state so the rollback
// rewinds them consistently (the host-write rule).
func TestCrashRestartMidGroup(t *testing.T) {
	base := hotkey.Options{
		Nodes: 8, Clients: 8, Ops: 20, Coverage: hotkey.CoverFull,
		CheckpointInterval: 500_000, // 500µs rounds; the run takes ~3.4ms
	}
	clean, err := hotkey.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.MaxLive < 2 {
		t.Fatalf("workload never overlapped invocations (maxLive=%d); crash would not land mid-group", clean.MaxLive)
	}

	crashed := base
	crashed.Faults = abcl.FaultPlan{Crashes: []abcl.NodeCrash{
		{Node: 0, At: 1_500_000, RestartAfter: 300_000},
	}}
	res, err := hotkey.Run(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodeRestarts == 0 {
		t.Error("no node restart recorded; the crash did not land")
	}
	if res.Report.Ckpt.Rounds == 0 {
		t.Error("no checkpoint rounds completed")
	}
	if res.Ops != clean.Ops || res.Final != clean.Final {
		t.Errorf("recovery changed the ledger: ops=%d final=%d, want ops=%d final=%d",
			res.Ops, res.Final, clean.Ops, clean.Final)
	}
	if res.Elapsed <= clean.Elapsed {
		t.Errorf("crashed run finished in %v, not slower than clean %v", res.Elapsed, clean.Elapsed)
	}
}

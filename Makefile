# Convenience targets for the ABCL/onAP1000 reproduction.
#
#   make tier1           build + full test suite + bench smoke + perf gate + profile smoke + runpack regress
#   make vet-race        go vet + race-detector pass over the parallel core
#   make scenario-smoke  run every bundled fault scenario end to end
#   make profile-smoke   run nqueens with -profile/-metrics, validate the JSONL schema
#   make regress         re-verify every checked-in runpack under testdata/runpacks
#   make check           all of the above
#   make bench-baseline  run the perf suite, save BENCH_<date>.json
#   make bench-compare   run the perf suite, diff against BASELINE json
#   make bench-gate      fail if the gated benchmarks regress >GATE_PCT% vs BASELINE
#   make cover           per-package test coverage summary

.PHONY: all tier1 vet-race scenario-smoke profile-smoke regress check cover bench-baseline bench-compare bench-gate

all: tier1

tier1:
	go build ./...
	go test ./...
	go test -run xxx -bench . -benchtime 1x .
	$(MAKE) bench-gate
	$(MAKE) profile-smoke
	$(MAKE) regress

vet-race:
	go vet ./...
	go test -race ./internal/parexec/... ./internal/core/... ./internal/sim/... ./internal/conformance/... ./internal/remote/...
	go test -race -run 'TestWirePath|TestCrash|TestSnapshot|TestCheckpoint|TestMultiactive|TestOptimistic' .

scenario-smoke:
	go run ./cmd/abclsim -workload scenario -scenario all

# End-to-end check of the observability exporters: run a profiled workload,
# then validate the JSONL stream against the documented schema and the
# metrics summary against the stream (the two sinks must agree exactly).
SMOKE_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)
profile-smoke:
	go run ./cmd/abclsim -workload nqueens -n 8 -nodes 8 \
		-profile $(SMOKE_DIR)/abcl-profile-smoke.jsonl -metrics $(SMOKE_DIR)/abcl-profile-smoke.json >/dev/null
	go run ./cmd/profcheck -nodes 8 -metrics $(SMOKE_DIR)/abcl-profile-smoke.json $(SMOKE_DIR)/abcl-profile-smoke.jsonl

# Determinism regression gate: every checked-in runpack is re-executed and
# must reproduce its packed trace, report and answer byte-for-byte.
regress:
	go run ./cmd/abclsim regress testdata/runpacks

check: tier1 vet-race scenario-smoke

cover:
	go test -cover ./... | grep -v 'no test files'

# Performance tracking. bench-baseline records the suite into a dated JSON
# report; bench-compare records a fresh report and prints a side-by-side
# diff against BASELINE. The default hands benchjson the repo root, and it
# picks the BENCH_<date>*.json with the newest embedded date — erroring out
# (instead of a silent lexical tiebreak) when several reports share it.
BENCH_PATTERN ?= BenchmarkTable1_IntraNodeDormant|BenchmarkTable4_NQueensScale|BenchmarkFigure5_Speedup|BenchmarkFigure5_TimeWarp|BenchmarkSimulatorThroughput|BenchmarkForkJoin|BenchmarkTable_AllToAll|BenchmarkProfilerOffOverhead|BenchmarkHotKeyContention
BENCH_TIME ?= 20x
BENCH_DATE := $(shell date +%Y-%m-%d)
BASELINE ?= .

# The perf gate: the headline Figure-5 configuration must stay within
# GATE_PCT percent of the checked-in baseline on both simulator speed
# (ns/op) and allocation count (allocs/op). The profiler-disabled engine
# is gated separately ("name:nsPct:allocsPct"): the cost-attribution
# hooks are one nil check per charge when off, so its allocation count
# must hold to 2% (it is exactly reproducible run to run — any off-path
# allocation creep fails here), while its wall clock gets the same 10%
# headroom as everything else because host timing noise on shared
# machines exceeds the 2% target (the measured off-overhead itself is
# recorded in EXPERIMENTS.md). The fully-annotated hot-key contention
# run gates the multiactive scheduler's per-group queue machinery; at
# ~2.5 ms/op its 20x sample is short enough that shared-host noise
# routinely exceeds 10%, so its wall clock gets 25% headroom while its
# allocation count stays exact-reproducible at 2%. The Figure5_TimeWarp pair gates the Time Warp executor
# on the all-to-all workload at P256 by its deterministic signals: the
# benchmark's own Fatalf asserts the optimistic runner needs at most half
# the conservative barrier count (wall-clock speedup is unobservable on
# single-core CI hosts), and the per-name entries hold each executor's
# allocation count to 2% (exactly reproducible run to run). Their ns/op
# gets 75% headroom: multi-worker executors on a loaded single-core host
# see scheduler-noise swings far beyond the 10% default, so wall clock
# is a tripwire there, not the regression signal.
GATE_BENCH ?= Figure5_Speedup/N10_P256,ProfilerOffOverhead:10:2,HotKeyContention/full:25:2,Figure5_TimeWarp/R8_P256_conservative:75:2,Figure5_TimeWarp/R8_P256_optimistic:75:2
GATE_PCT ?= 10

bench-gate:
	go test -run xxx -bench 'BenchmarkFigure5_Speedup$$/N10_P256$$|BenchmarkProfilerOffOverhead$$|BenchmarkHotKeyContention$$/full$$|BenchmarkFigure5_TimeWarp$$' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -compare $(BASELINE) -gate '$(GATE_BENCH)' -gate-pct $(GATE_PCT)

bench-baseline:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -date $(BENCH_DATE) -o BENCH_$(BENCH_DATE).json
	@echo wrote BENCH_$(BENCH_DATE).json

bench-compare:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -date $(BENCH_DATE) -compare $(BASELINE)

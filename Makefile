# Convenience targets for the ABCL/onAP1000 reproduction.
#
#   make tier1           build + full test suite (the acceptance gate)
#   make vet-race        go vet + race-detector pass over the parallel core
#   make scenario-smoke  run every bundled fault scenario end to end
#   make check           all of the above

.PHONY: all tier1 vet-race scenario-smoke check

all: tier1

tier1:
	go build ./...
	go test ./...

vet-race:
	go vet ./...
	go test -race ./internal/parexec/... ./internal/core/...

scenario-smoke:
	go run ./cmd/abclsim -workload scenario -scenario all

check: tier1 vet-race scenario-smoke

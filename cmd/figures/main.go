// Command figures regenerates Figures 5 and 6 of the paper.
//
//	figures                 # both figures at default sizes
//	figures -figure 5       # speedup curves (N-queens vs node count)
//	figures -figure 6       # stack-based vs naive scheduling
//	figures -big            # the paper's full problem sizes (N=13 for
//	                        # figure 5, N=12 included in figure 6); several
//	                        # minutes of CPU
//	figures -csv            # machine-readable output
//	figures -pack out/      # also write one verifiable runpack per sweep
//	                        # point and print its artifact id per row
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/nqueens"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/runpack"
)

var (
	figure  = flag.Int("figure", 0, "figure to print (5 or 6); 0 prints both")
	big     = flag.Bool("big", false, "use the paper's full problem sizes (minutes of CPU)")
	csv     = flag.Bool("csv", false, "CSV output")
	seed    = flag.Int64("seed", 1, "placement seed")
	packDir = flag.String("pack", "", "write a runpack per sweep point into this directory (see DESIGN.md §13)")
)

func main() {
	flag.Parse()
	switch *figure {
	case 0:
		figure5()
		fmt.Println()
		figure6()
	case 5:
		figure5()
	case 6:
		figure6()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d\n", *figure)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// packPoint writes the verifiable runpack for one sweep configuration and
// returns its artifact id ("-" when packing is off). The pack re-executes
// the run under the deterministic tracer, so the id pins the exact table
// row: `abclsim verify <pack>` replays and byte-compares it.
func packPoint(cfg runpack.RunConfig) string {
	if *packDir == "" {
		return "-"
	}
	p, _, err := runpack.Create(cfg, *packDir)
	check(err)
	return p.Manifest.ID
}

func figure5() {
	sizes := []int{8, 11}
	if *big {
		sizes = []int{8, 13}
	}
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	pts, err := exp.Figure5(sizes, procs, *seed)
	check(err)
	ids := make([]string, len(pts))
	for i, p := range pts {
		ids[i] = packPoint(runpack.RunConfig{Workload: "nqueens", N: p.N, Nodes: p.Procs, Seed: *seed})
	}

	if *csv {
		fmt.Println("figure,N,procs,elapsed_ms,speedup,utilization,pack_id")
		for i, p := range pts {
			fmt.Printf("5,%d,%d,%.3f,%.2f,%.3f,%s\n", p.N, p.Procs, p.Elapsed.Millis(), p.Speedup, p.Utilization, ids[i])
		}
		return
	}
	fmt.Printf("Figure 5: Speedup for N-queen problem (N = %v)\n", sizes)
	fmt.Println("----------------------------------------------------------------")
	fmt.Printf("%4s %6s %14s %10s %8s %8s\n", "N", "procs", "elapsed", "speedup", "ideal", "util")
	for i, p := range pts {
		fmt.Printf("%4d %6d %14v %10.1f %8d %8.2f  %s%s\n",
			p.N, p.Procs, p.Elapsed, p.Speedup, p.Procs, p.Utilization,
			bar(p.Speedup, float64(p.Procs)), packSuffix(ids[i]))
	}
	for _, n := range sizes {
		seq := nqueens.Sequential(n, machine.DefaultConfig(1), 0)
		fmt.Printf("   (sequential reference N=%d: %v)\n", n, seq.Elapsed)
	}
	fmt.Println("   (paper: ~20x at 64 procs for N=8; 440x at 512 procs for N=13)")
}

func figure6() {
	sizes := []int{9, 10, 11}
	if *big {
		sizes = append(sizes, 12)
	}
	const procs = 512
	rows, err := exp.Figure6(sizes, procs, *seed)
	check(err)
	naiveIDs := make([]string, len(rows))
	stackIDs := make([]string, len(rows))
	for i, r := range rows {
		naiveIDs[i] = packPoint(runpack.RunConfig{Workload: "nqueens", N: r.N, Nodes: procs, Seed: *seed, Policy: "naive"})
		stackIDs[i] = packPoint(runpack.RunConfig{Workload: "nqueens", N: r.N, Nodes: procs, Seed: *seed, Policy: "stack"})
	}

	if *csv {
		fmt.Println("figure,N,naive_ms,stack_ms,speedup_pct,dormant_fraction,naive_pack_id,stack_pack_id")
		for i, r := range rows {
			fmt.Printf("6,%d,%.3f,%.3f,%.1f,%.3f,%s,%s\n", r.N, r.NaiveMs, r.StackMs, r.SpeedupPct, r.DormantFrac, naiveIDs[i], stackIDs[i])
		}
		return
	}
	fmt.Printf("Figure 6: Effect of stack scheduling (N-queens on %d procs)\n", procs)
	fmt.Println("----------------------------------------------------------------")
	fmt.Printf("%4s %16s %16s %10s %10s\n", "N", "naive(ms)", "stack(ms)", "speedup", "dormant")
	for i, r := range rows {
		fmt.Printf("%4d %16.1f %16.1f %9.1f%% %9.0f%%%s%s\n",
			r.N, r.NaiveMs, r.StackMs, r.SpeedupPct, 100*r.DormantFrac,
			packSuffix("naive "+naiveIDs[i]), packSuffix("stack "+stackIDs[i]))
	}
	fmt.Println("   (paper: ~30% speedup; ~75% of local messages to dormant objects)")
}

// packSuffix formats a pack annotation for table rows; empty when -pack is
// off so the default output is unchanged.
func packSuffix(s string) string {
	if *packDir == "" {
		return ""
	}
	return "  [" + s + "]"
}

// bar renders a small ASCII bar of achieved vs ideal speedup.
func bar(got, ideal float64) string {
	const width = 24
	frac := got / ideal
	if frac > 1 {
		frac = 1
	}
	n := int(frac*width + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}

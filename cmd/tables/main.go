// Command tables regenerates Tables 1-4 of the paper from the simulator.
//
//	tables            # all tables
//	tables -table 1   # one table
//	tables -big=false # omit the N=13 column of Table 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/machine"
)

func main() {
	table := flag.Int("table", 0, "table to print (1-5); 0 prints all")
	big := flag.Bool("big", true, "include the N=13 column of Table 4")
	iters := flag.Int("iters", 1000, "iterations for latency measurements")
	pathN := flag.Int("path-n", 10, "N-queens board size for the per-path cost breakdown")
	pathNodes := flag.Int("path-nodes", 16, "node count for the per-path cost breakdown")
	flag.Parse()

	switch *table {
	case 0:
		table1(*iters)
		fmt.Println()
		table2()
		fmt.Println()
		table3(*iters)
		fmt.Println()
		table4(*big)
		fmt.Println()
		table5(*pathN, *pathNodes)
	case 1:
		table1(*iters)
	case 2:
		table2()
	case 3:
		table3(*iters)
	case 4:
		table4(*big)
	case 5:
		table5(*pathN, *pathNodes)
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %d\n", *table)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func table1(iters int) {
	rows, err := exp.Table1(iters)
	check(err)
	fmt.Println("Table 1: Costs of basic operations")
	fmt.Println("----------------------------------------------------------------")
	fmt.Printf("%-38s %10s %10s\n", "Operation", "Paper(µs)", "Sim(µs)")
	for _, r := range rows {
		fmt.Printf("%-38s %10.1f %10.2f\n", r.Name, r.PaperUs, r.SimUs)
	}
}

func table2() {
	cfg := machine.DefaultConfig(1)
	fmt.Println("Table 2: Breakdown of intra-node message to dormant object")
	fmt.Println("----------------------------------------------------------------")
	fmt.Printf("%-38s %6s %6s\n", "Step", "Paper", "Sim")
	rows := exp.Table2()
	for _, r := range rows[:len(rows)-1] {
		fmt.Printf("%-38s %6d %6d\n", r.Name, r.Paper, r.Sim)
	}
	total := rows[len(rows)-1]
	fmt.Printf("%-38s %6d %6d   (= %.1fµs at %vMHz, CPI %.1f)\n",
		total.Name, total.Paper, total.Sim,
		cfg.InstrTime(total.Sim).Micros(), cfg.ClockMHz, cfg.CPI)
}

func table3(iters int) {
	rows, err := exp.Table3(iters / 10)
	check(err)
	fmt.Println("Table 3: Comparison of send/reply latency")
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-24s %8s %14s %8s %12s\n", "System", "Instr", "Real Time(µs)", "Cycles", "Clock (MHz)")
	for _, r := range rows {
		fmt.Printf("%-24s %8d %14.1f %8.0f %12.1f   (%s)\n",
			r.System, r.Instr, r.TimeUs, r.Cycles, r.ClockMHz, r.Source)
	}
}

func table4(big bool) {
	ns := []int{8}
	if big {
		ns = append(ns, 13)
	}
	cols := exp.Table4(ns)
	fmt.Println("Table 4: The scale of the N-queen program")
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-28s", "")
	for _, c := range cols {
		fmt.Printf(" %14s", fmt.Sprintf("N = %d", c.N))
	}
	fmt.Println()
	prow := func(name string, f func(exp.Table4Col) string) {
		fmt.Printf("%-28s", name)
		for _, c := range cols {
			fmt.Printf(" %14s", f(c))
		}
		fmt.Println()
	}
	prow("# of Solutions", func(c exp.Table4Col) string { return fmt.Sprintf("%d", c.Solutions) })
	prow("# of Objects Creation", func(c exp.Table4Col) string { return fmt.Sprintf("%d", c.Objects) })
	prow("# of Messages", func(c exp.Table4Col) string { return fmt.Sprintf("%d", c.Messages) })
	prow("Total Memory Used (KB)", func(c exp.Table4Col) string { return fmt.Sprintf("%.0f", c.MemKB) })
	prow("Elapsed Time (sequential)", func(c exp.Table4Col) string {
		return fmt.Sprintf("%.0f ms", c.SeqElapsed.Millis())
	})
	fmt.Println()
	fmt.Println("Paper's values: N=8: 92 solutions, 2,056 creations, 4,104 messages,")
	fmt.Println("130KB, 84ms on SS1+; N=13: 73,712 solutions, ~4.67M creations,")
	fmt.Println("9,349,765 messages, 549,463KB, 461,955ms on SS1+.")
}

// table5 is the per-path cost breakdown of Section 6, measured live by the
// cost-attribution profiler on an N-queens run (not in the paper as a
// table; the paper reports the taxonomy and the ~75% dormant share).
func table5(n, nodes int) {
	pc, err := exp.PathBreakdown(n, nodes, 1)
	check(err)
	p := pc.Report
	fmt.Printf("Table 5: Measured per-path costs, N-queens N=%d on %d nodes\n", pc.N, pc.Nodes)
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-14s %12s %12s %8s %10s %10s\n", "Path", "Events", "Instr", "Share", "Instr/Ev", "Packets")
	for _, ps := range p.Paths {
		perEv := "-"
		if ps.Events > 0 {
			perEv = fmt.Sprintf("%.1f", ps.InstrPerEvent)
		}
		fmt.Printf("%-14s %12d %12d %7.1f%% %10s %10d\n",
			ps.Path, ps.Events, ps.Instr, 100*ps.InstrShare, perEv, ps.Packets)
	}
	fmt.Printf("%-14s %12s %12d\n", "total", "", p.TotalInstr)
	fmt.Printf("Dormant fraction of local deliveries: %.0f%% (paper: ~75%%, Section 6.3)\n",
		100*p.DormantFraction)
}

// Command abclsim runs an ABCL workload on the simulated multicomputer and
// reports virtual-time performance and runtime statistics.
//
//	abclsim -workload nqueens -n 11 -nodes 512
//	abclsim -workload nqueens -n 10 -nodes 64 -policy naive
//	abclsim -workload pingpong -nodes 2
//	abclsim -workload forkjoin -depth 12 -nodes 64
//
// Any workload can run over a faulty interconnect (which switches the
// inter-node layer to its reliable ack/retry protocol):
//
//	abclsim -workload forkjoin -depth 10 -nodes 16 -drop 0.1 -dup 0.05
//
// The wire-path optimisations — per-link packet batching, delayed
// cumulative acks, the remote-location cache — are controlled by
// -batch-window, -batch-bytes, -ack-delay, -reliable and -no-loc-cache;
// each workload header echoes the effective comms configuration:
//
//	abclsim -workload nqueens -n 10 -nodes 256 -batch-window 10000 -ack-delay 500000
//
// Periodic coordinated checkpoints and crash faults exercise the recovery
// subsystem: -checkpoint-interval snapshots the whole machine on a virtual
// cadence, and each (repeatable) -crash kills a node and restarts it from
// the latest checkpoint:
//
//	abclsim -workload nqueens -n 8 -nodes 8 -checkpoint-interval 200us -crash 2@1ms+300us
//
// Declarative fault scenarios (fleet + fault schedule + assertions) run via
// the scenario workload:
//
//	abclsim -workload scenario -scenario all
//	abclsim -workload scenario -scenario nqueens-lossy
//	abclsim -workload scenario -scenario path/to/spec.json
//
// Any configured run can be captured as a verifiable artifact: -pack writes
// an integrity-checked runpack archive (config + seed + full trace + profile
// + report), and the verify/diff/regress subcommands replay and compare
// archives:
//
//	abclsim -workload hotkey -coverage full -pack out/
//	abclsim verify out/runpack_<id>.zip
//	abclsim diff a.zip b.zip
//	abclsim regress testdata/runpacks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	abcl "repro"
	"repro/internal/apps/diffusion"
	"repro/internal/apps/hotkey"
	"repro/internal/apps/misc"
	"repro/internal/apps/orderbook"
	"repro/internal/apps/nqueens"
	"repro/internal/apps/pingpong"
	"repro/internal/machine"
	"repro/internal/runpack"
	"repro/internal/scenario"
	"repro/internal/trace"
)

var (
	workload  = flag.String("workload", "nqueens", "workload: nqueens | pingpong | forkjoin | diffusion | hotkey | orderbook | scenario")
	scen      = flag.String("scenario", "all", "scenario to run: all | <bundled name> | <path to .json>")
	n         = flag.Int("n", 10, "N-queens board size")
	depth     = flag.Int("depth", 10, "fork-join tree depth")
	grid      = flag.Int("grid", 16, "diffusion grid edge length")
	gridIters = flag.Int("grid-iters", 10, "diffusion iterations")
	block     = flag.Bool("block", true, "diffusion: block placement (vs scatter)")
	clients   = flag.Int("clients", 16, "hotkey/orderbook: closed-loop client objects")
	opsPer    = flag.Int("ops", 40, "hotkey/orderbook: operations per client")
	writePct  = flag.Int("write-pct", 20, "hotkey: percentage of operations that are writes")
	coverage  = flag.String("coverage", "full", "hotkey: annotation coverage none | partial | full")
	grouped   = flag.Bool("grouped", true, "orderbook: declare compatibility groups on the book")
	reorder   = flag.Int("reorder", 0, "hotkey/orderbook: bounded-reordering annotation (0 = strict)")
	nodes     = flag.Int("nodes", 64, "number of processing nodes")
	policy    = flag.String("policy", "stack", "scheduling policy: stack | naive")
	placement = flag.String("placement", "random", "placement: random | rr | local | load | depth")
	seed      = flag.Int64("seed", 1, "random placement seed")
	stock     = flag.Int("stock", 2, "chunk-stock depth (-1 disables)")
	iters     = flag.Int("iters", 1000, "ping-pong iterations")
	traceN    = flag.Int("trace", 0, "dump the last N runtime trace events")

	drop   = flag.Float64("drop", 0, "link fault: per-packet drop probability [0,1)")
	dup    = flag.Float64("dup", 0, "link fault: per-packet duplication probability [0,1]")
	jitter = flag.Int64("jitter", 0, "link fault: max extra latency per packet (ns)")

	ckptInterval timeFlag
	crashes      crashList

	batchWindow = flag.Int64("batch-window", 0, "per-link packet batching window (ns); 0 disables batching")
	batchBytes  = flag.Int("batch-bytes", 0, "batch early-flush byte budget (0 selects the default)")
	ackDelay    = flag.Int64("ack-delay", 0, "delayed cumulative ack interval (ns); 0 keeps immediate acks; implies -reliable")
	reliable    = flag.Bool("reliable", false, "run the ack/retry protocol even on a fault-free network")
	noLocCache  = flag.Bool("no-loc-cache", false, "disable the post-migration remote-location cache")

	execFlag   executorFlag
	optWindow  timeFlag // -optimistic-window
	parSim     = flag.Int("parallel-sim", 0, "deprecated: alias for -executor conservative:N")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON  = flag.String("bench-json", "", "write a wall-clock benchmark summary (JSON) to this file")

	packOut    = flag.String("pack", "", "execute the configured run and write a verifiable runpack archive to this file or directory")
	profileOut = flag.String("profile", "", "stream runtime events as JSON Lines to this file (any workload)")
	metricsOut = flag.String("metrics", "", "write an event-count metrics summary (JSON) to this file (any workload)")
	costTable  = flag.Bool("cost-table", false, "enable the cost-attribution profiler and print the per-path cost table")
	profWindow timeFlag // -profile-window: time-series slice width for the profiler
)

// Observer sinks resolved from -profile / -metrics, attached by sysOptions
// and finalized (flushed, summarised) by closeObservers after the run.
var (
	profileSink *trace.JSONL
	profileFile *os.File
	metricsSink *trace.Metrics
)

func init() {
	flag.Var(&ckptInterval, "checkpoint-interval",
		"coordinated checkpoint cadence, as ns or a Go duration (e.g. 200us); 0 disables periodic checkpoints")
	flag.Var(&crashes, "crash",
		"crash fault node@at+restartAfter (ns or Go durations, e.g. 2@1ms+300us); repeatable; implies checkpoint support")
	flag.Var(&profWindow, "profile-window",
		"cost-profiler time-series slice width, as ns or a Go duration; implies -cost-table")
	flag.Var(&execFlag, "executor",
		"execution strategy: sequential | conservative[:N] | optimistic[:N] (N workers, default GOMAXPROCS)")
	flag.Var(&optWindow, "optimistic-window",
		"optimistic executor: speculation window width, as ns or a Go duration (0 = adaptive default)")
}

// executorFlag is the -executor value: sequential, or a parallel strategy
// with an optional ":N" worker count.
type executorFlag struct {
	kind    string
	workers int
}

func (e *executorFlag) String() string {
	if e.kind == "" || e.kind == "sequential" {
		return "sequential"
	}
	return fmt.Sprintf("%s:%d", e.kind, e.workers)
}

func (e *executorFlag) Set(s string) error {
	name, ns, hasN := strings.Cut(s, ":")
	w := runtime.GOMAXPROCS(0)
	if hasN {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			return fmt.Errorf("executor %q: worker count must be a positive integer", s)
		}
		w = v
	}
	switch name {
	case "sequential":
		if hasN {
			return fmt.Errorf("executor %q: sequential takes no worker count", s)
		}
		*e = executorFlag{kind: name}
	case "conservative", "optimistic":
		*e = executorFlag{kind: name, workers: w}
	default:
		return fmt.Errorf("executor %q: want sequential | conservative[:N] | optimistic[:N]", s)
	}
	return nil
}

// executorSpec folds -executor and the deprecated -parallel-sim into one
// spec; ok is false when the run is sequential.
func executorSpec() (spec abcl.ExecutorSpec, ok bool) {
	kind, workers := execFlag.kind, execFlag.workers
	if kind == "" && *parSim > 1 {
		kind, workers = "conservative", *parSim
	}
	switch kind {
	case "conservative":
		return abcl.Conservative(workers), workers > 1
	case "optimistic":
		return abcl.Optimistic(workers, abcl.OptimisticOptions{Window: abcl.Time(optWindow)}), workers > 1
	}
	return abcl.Sequential(), false
}

// benchEvents/benchMsgs are filled by workloads that expose their engine and
// message counts, for the -bench-json summary.
var (
	benchEvents atomic.Uint64
	benchMsgs   atomic.Uint64
)

// timeFlag is a virtual-time flag value accepting either raw nanoseconds
// ("200000") or a Go duration ("200us").
type timeFlag abcl.Time

func (t *timeFlag) String() string { return fmt.Sprintf("%d", int64(*t)) }

func (t *timeFlag) Set(s string) error {
	v, err := parseVirtualTime(s)
	if err != nil {
		return err
	}
	*t = timeFlag(v)
	return nil
}

// crashList collects repeated -crash flags, each "node@at+restartAfter".
type crashList []abcl.NodeCrash

func (c *crashList) String() string {
	parts := make([]string, len(*c))
	for i, nc := range *c {
		parts[i] = fmt.Sprintf("%d@%d+%d", nc.Node, int64(nc.At), int64(nc.RestartAfter))
	}
	return strings.Join(parts, ",")
}

func (c *crashList) Set(s string) error {
	nodeStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return fmt.Errorf("crash %q: want node@at+restartAfter", s)
	}
	atStr, durStr, ok := strings.Cut(rest, "+")
	if !ok {
		return fmt.Errorf("crash %q: want node@at+restartAfter", s)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return fmt.Errorf("crash %q: bad node: %v", s, err)
	}
	at, err := parseVirtualTime(atStr)
	if err != nil {
		return fmt.Errorf("crash %q: bad crash time: %v", s, err)
	}
	dur, err := parseVirtualTime(durStr)
	if err != nil {
		return fmt.Errorf("crash %q: bad restart-after: %v", s, err)
	}
	*c = append(*c, abcl.NodeCrash{Node: node, At: at, RestartAfter: dur})
	return nil
}

// parseVirtualTime reads a virtual-time value as raw nanoseconds or a Go
// duration string.
func parseVirtualTime(s string) (abcl.Time, error) {
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
		return abcl.Time(ns), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return abcl.Time(d.Nanoseconds()), nil
}

// faultPlan translates the -drop/-dup/-jitter/-crash flags into a FaultPlan;
// the zero plan disables injection (and the reliable protocol with it).
func faultPlan() abcl.FaultPlan {
	var p abcl.FaultPlan
	if *drop != 0 || *dup != 0 || *jitter != 0 {
		p = abcl.UniformFaults(*drop, *dup, abcl.Time(*jitter))
	}
	for _, c := range crashes {
		p = p.WithCrash(c.Node, c.At, c.RestartAfter)
	}
	return p
}

// sysOptions assembles the common System options from the flag set.
func sysOptions() []abcl.Option {
	opts := []abcl.Option{
		abcl.WithNodes(*nodes),
		abcl.WithPolicy(parsePolicy()),
		abcl.WithPlacement(parsePlacement()),
	}
	if *seed != 0 {
		opts = append(opts, abcl.WithSeed(*seed))
	}
	switch {
	case *stock < 0:
		opts = append(opts, abcl.WithoutChunkStock())
	case *stock > 0:
		opts = append(opts, abcl.WithChunkStock(*stock))
	}
	if *traceN > 0 {
		opts = append(opts, abcl.WithTrace(*traceN))
	}
	if spec, ok := executorSpec(); ok {
		opts = append(opts, abcl.WithExecutor(spec))
	}
	if p := faultPlan(); p.Enabled() {
		opts = append(opts, abcl.WithFaults(p))
	}
	if *batchWindow != 0 { // negatives flow through so option validation rejects them
		opts = append(opts, abcl.WithBatching(abcl.Time(*batchWindow), *batchBytes))
	}
	if *reliable || *ackDelay > 0 {
		opts = append(opts, abcl.WithReliable())
	}
	if *ackDelay != 0 {
		opts = append(opts, abcl.WithDelayedAcks(abcl.Time(*ackDelay)))
	}
	if *noLocCache {
		opts = append(opts, abcl.WithoutLocationCache())
	}
	if ckptInterval > 0 {
		opts = append(opts, abcl.WithCheckpoint(abcl.Time(ckptInterval)))
	}
	opts = append(opts, observerOpts()...)
	if *costTable || profWindow > 0 {
		opts = append(opts, abcl.WithProfiler(abcl.ProfileOptions{
			Window:  abcl.Time(profWindow),
			Classes: true,
		}))
	}
	return opts
}

// observerOpts turns the resolved -profile/-metrics sinks into options, for
// sysOptions and for workloads that build their Systems internally.
func observerOpts() []abcl.Option {
	var opts []abcl.Option
	if profileSink != nil {
		opts = append(opts, abcl.WithObserver(profileSink))
	}
	if metricsSink != nil {
		opts = append(opts, abcl.WithObserver(metricsSink))
	}
	return opts
}

// extraOpts carries flag-driven options into workloads whose Options structs
// build the System themselves (diffusion, hotkey, orderbook, pingpong):
// observers, parallel execution, location-cache control.
func extraOpts() []abcl.Option {
	opts := observerOpts()
	if spec, ok := executorSpec(); ok {
		opts = append(opts, abcl.WithExecutor(spec))
	}
	if *noLocCache {
		opts = append(opts, abcl.WithoutLocationCache())
	}
	return opts
}

// scenarioObserver merges the -profile/-metrics sinks into the single
// observer a scenario run attaches to both its baseline and faulted systems;
// nil when neither flag is set.
func scenarioObserver() trace.Sink {
	switch {
	case profileSink != nil && metricsSink != nil:
		return trace.Tee(profileSink, metricsSink)
	case profileSink != nil:
		return profileSink
	case metricsSink != nil:
		return metricsSink
	}
	return nil
}

// openObservers resolves the -profile/-metrics flags into trace sinks before
// the workload builds its System.
func openObservers() error {
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		profileFile = f
		profileSink = trace.NewJSONL(f)
	}
	if *metricsOut != "" {
		metricsSink = trace.NewMetrics()
	}
	return nil
}

// closeObservers flushes the -profile stream and writes the -metrics summary
// after the workload finished.
func closeObservers() error {
	if profileSink != nil {
		err := profileSink.Err()
		if cerr := profileFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("profile stream %s: %w", *profileOut, err)
		}
	}
	if metricsSink != nil {
		b, err := json.MarshalIndent(metricsSink.Summary(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printCostTable emits the profiler's per-path cost table (Section 6 of the
// paper, measured live) when -cost-table or -profile-window is in effect.
func printCostTable(rep abcl.Report) {
	p := rep.Profile
	if p == nil {
		return
	}
	fmt.Printf("  per-path cost attribution (%d instructions total):\n", p.TotalInstr)
	fmt.Printf("    %-14s %12s %12s %8s %10s %10s\n", "path", "events", "instr", "share", "instr/ev", "packets")
	for _, ps := range p.Paths {
		perEv := ""
		if ps.Events > 0 {
			perEv = fmt.Sprintf("%.1f", ps.InstrPerEvent)
		}
		fmt.Printf("    %-14s %12d %12d %7.1f%% %10s %10d\n",
			ps.Path, ps.Events, ps.Instr, 100*ps.InstrShare, perEv, ps.Packets)
	}
	fmt.Printf("    dormant fraction of local deliveries: %.0f%%\n", 100*p.DormantFraction)
	for _, cs := range p.Classes {
		fmt.Printf("    class %-20s dormant=%d active=%d restore=%d body-instr=%d\n",
			cs.Class, cs.Dormant, cs.Active, cs.Restore, cs.BodyInstr)
	}
}

// commsLine describes the effective wire-path configuration of a built
// system for the workload headers: batching, ack strategy, protocol,
// location cache.
func commsLine(sys *abcl.System) string {
	return fmt.Sprintf("comms: %s", sys.Net)
}

func main() {
	// Archive subcommands take positional arguments, not flags; dispatch
	// before flag parsing so "abclsim verify pack.zip" just works.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "verify", "diff", "regress":
			if err := runSubcommand(os.Args[1], os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "abclsim:", err)
				os.Exit(1)
			}
			return
		}
	}
	flag.Parse()
	if *packOut != "" && (*profileOut != "" || *metricsOut != "") {
		fmt.Fprintln(os.Stderr, "abclsim: -pack captures its own trace; drop -profile/-metrics")
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abclsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "abclsim:", err)
			os.Exit(1)
		}
	}
	if err := openObservers(); err != nil {
		fmt.Fprintln(os.Stderr, "abclsim:", err)
		os.Exit(1)
	}
	start := time.Now()
	var err error
	switch {
	case *packOut != "":
		err = runPack()
	case *workload == "nqueens":
		err = runNQueens()
	case *workload == "pingpong":
		err = runPingPong()
	case *workload == "forkjoin":
		err = runForkJoin()
	case *workload == "diffusion":
		err = runDiffusion()
	case *workload == "hotkey":
		err = runHotKey()
	case *workload == "orderbook":
		err = runOrderBook()
	case *workload == "scenario":
		err = runScenarios()
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	wall := time.Since(start)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if oerr := closeObservers(); err == nil {
		err = oerr
	}
	if *memprofile != "" {
		if perr := writeMemProfile(*memprofile); err == nil {
			err = perr
		}
	}
	if *benchJSON != "" && err == nil {
		err = writeBenchJSON(*benchJSON, wall)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abclsim:", err)
		os.Exit(1)
	}
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// writeBenchJSON emits a machine-readable throughput summary of the run, for
// before/after comparisons (make bench-baseline / bench-compare).
func writeBenchJSON(path string, wall time.Duration) error {
	ev, msgs := benchEvents.Load(), benchMsgs.Load()
	executor := "sequential"
	if spec, ok := executorSpec(); ok {
		executor = spec.String()
	}
	sum := struct {
		Workload     string  `json:"workload"`
		Nodes        int     `json:"nodes"`
		Executor     string  `json:"executor"`
		WallMs       float64 `json:"wall_ms"`
		Events       uint64  `json:"events"`
		EventsPerSec float64 `json:"events_per_sec"`
		Messages     uint64  `json:"messages"`
		MsgsPerSec   float64 `json:"msgs_per_sec"`
	}{
		Workload: *workload,
		Nodes:    *nodes,
		Executor: executor,
		WallMs:   float64(wall.Nanoseconds()) / 1e6,
		Events:   ev,
		Messages: msgs,
	}
	if s := wall.Seconds(); s > 0 {
		sum.EventsPerSec = float64(ev) / s
		sum.MsgsPerSec = float64(msgs) / s
	}
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runSubcommand handles the positional archive commands: verify replays one
// pack, diff explains two, regress re-verifies a directory of them.
func runSubcommand(cmd string, args []string) error {
	switch cmd {
	case "verify":
		if len(args) != 1 {
			return fmt.Errorf("usage: abclsim verify <pack.zip>")
		}
		p, err := runpack.Open(args[0])
		if err != nil {
			return err
		}
		v, err := runpack.Verify(p)
		if err != nil {
			return err
		}
		fmt.Print(v.Summary(p))
		if !v.OK {
			return fmt.Errorf("runpack %s failed verification", p.Manifest.ID)
		}
		return nil
	case "diff":
		if len(args) != 2 {
			return fmt.Errorf("usage: abclsim diff <a.zip> <b.zip>")
		}
		a, err := runpack.Open(args[0])
		if err != nil {
			return err
		}
		b, err := runpack.Open(args[1])
		if err != nil {
			return err
		}
		fmt.Print(runpack.Diff(a, b).Summary(a, b))
		return nil
	case "regress":
		dir := "testdata/runpacks"
		if len(args) > 1 {
			return fmt.Errorf("usage: abclsim regress [dir]")
		}
		if len(args) == 1 {
			dir = args[0]
		}
		return runpack.Regress(dir, os.Stdout)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// packConfig snapshots the flag set into a replayable RunConfig. A scenario
// pack embeds one named spec — "all" has no single trace to pin.
func packConfig() (runpack.RunConfig, error) {
	cfg := runpack.RunConfig{
		Workload:        *workload,
		Nodes:           *nodes,
		Seed:            *seed,
		Policy:          *policy,
		Placement:       *placement,
		Stock:           *stock,
		N:               *n,
		Depth:           *depth,
		Grid:            *grid,
		GridIters:       *gridIters,
		Scatter:         !*block,
		Iters:           *iters,
		Clients:         *clients,
		Ops:             *opsPer,
		WritePct:        *writePct,
		Coverage:        *coverage,
		Ungrouped:       !*grouped,
		Reorder:         *reorder,
		Drop:            *drop,
		Dup:             *dup,
		JitterNs:        *jitter,
		BatchWindowNs:   *batchWindow,
		BatchBytes:      *batchBytes,
		AckDelayNs:      *ackDelay,
		Reliable:        *reliable,
		NoLocCache:      *noLocCache,
		CkptIntervalNs:  int64(ckptInterval),
		ProfileWindowNs: int64(profWindow),
	}
	if kind := execFlag.kind; kind != "" && kind != "sequential" {
		cfg.Executor = kind
		cfg.Workers = execFlag.workers
		if kind == "optimistic" {
			cfg.OptimisticWindowNs = int64(optWindow)
		}
	} else if *parSim > 1 {
		cfg.Executor = "conservative"
		cfg.Workers = *parSim
	}
	for _, c := range crashes {
		cfg.Crashes = append(cfg.Crashes, runpack.Crash{
			Node: c.Node, AtNs: int64(c.At), RestartAfterNs: int64(c.RestartAfter),
		})
	}
	if *workload == "scenario" {
		var sp scenario.Spec
		var err error
		switch {
		case *scen == "all":
			return cfg, fmt.Errorf("-pack needs one scenario (-scenario <name|file.json>), not %q", *scen)
		case strings.HasSuffix(*scen, ".json"):
			sp, err = scenario.Load(*scen)
		default:
			sp, err = scenario.Find(*scen)
		}
		if err != nil {
			return cfg, err
		}
		cfg.Scenario = &sp
	}
	return cfg, nil
}

// runPack executes the configured run under the runpack executor and writes
// the archive.
func runPack() error {
	cfg, err := packConfig()
	if err != nil {
		return err
	}
	p, path, err := runpack.Create(cfg, *packOut)
	if err != nil {
		return err
	}
	fmt.Printf("packed %s\n", path)
	fmt.Printf("  id        %s\n", p.Manifest.ID)
	fmt.Printf("  workload  %s\n", p.Config.Workload)
	fmt.Printf("  trace     %d events, sha256 %s...\n",
		p.Manifest.TraceEvents, p.Manifest.TraceSHA256[:12])
	if p.Manifest.ParallelChecked {
		fmt.Printf("  parallel  %s executor cross-checked against the sequential run\n", p.Manifest.Executor)
	}
	fmt.Printf("  next      abclsim verify %s\n", path)
	return nil
}

func parsePolicy() abcl.Policy {
	if *policy == "naive" {
		return abcl.Naive
	}
	return abcl.StackBased
}

func parsePlacement() abcl.Placement {
	switch *placement {
	case "rr":
		return abcl.PlaceRoundRobin
	case "local":
		return abcl.PlaceLocal
	case "load":
		return abcl.PlaceLoadBased
	case "depth":
		return abcl.PlaceDepthLocal
	default:
		return abcl.PlaceRandom
	}
}

func runNQueens() error {
	seq := nqueens.Sequential(*n, machine.DefaultConfig(1), 0)
	sys, err := abcl.NewSystem(sysOptions()...)
	if err != nil {
		return err
	}
	drv := nqueens.Build(sys, *n, 0)
	drv.Start()
	if err := sys.Run(); err != nil {
		return err
	}
	res, err := drv.Result()
	if err != nil {
		return err
	}
	benchEvents.Store(sys.M.Eng.Fired())
	benchMsgs.Store(uint64(res.Messages))
	fmt.Printf("N-queens N=%d on %d nodes (%s scheduling, %s placement)\n",
		*n, *nodes, parsePolicy(), parsePlacement().Name())
	fmt.Printf("  %s\n", commsLine(sys))
	fmt.Printf("  solutions        %d (expected %d)\n", res.Solutions, seq.Solutions)
	fmt.Printf("  objects created  %d\n", res.Objects)
	fmt.Printf("  messages         %d\n", res.Messages)
	fmt.Printf("  elapsed          %v (sequential %v)\n", res.Elapsed, seq.Elapsed)
	fmt.Printf("  speedup          %.1fx on %d nodes\n",
		float64(seq.Elapsed)/float64(res.Elapsed), *nodes)
	fmt.Printf("  utilization      %.1f%%\n", 100*res.Utilization)
	fmt.Printf("  memory model     %.0f KB\n", float64(res.MemoryBytes)/1024)
	printStats(res.Stats)
	printCostTable(res.Report)
	if sys.Trace != nil {
		fmt.Printf("  last %d trace events:\n", sys.Trace.Len())
		if err := sys.Trace.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runPingPong() error {
	extra := extraOpts()
	d, err := pingpong.PastLocal(*iters, extra...)
	if err != nil {
		return err
	}
	a, err := pingpong.PastLocalActive(*iters, extra...)
	if err != nil {
		return err
	}
	c, err := pingpong.CreateLocal(*iters, extra...)
	if err != nil {
		return err
	}
	r, err := pingpong.PastRemote(*iters, extra...)
	if err != nil {
		return err
	}
	w, err := pingpong.NowRemote(*iters/10, extra...)
	if err != nil {
		return err
	}
	fmt.Printf("ping-pong microbenchmarks (%d iterations)\n", *iters)
	fmt.Printf("  intra-node past to dormant   %v/op\n", d.PerOp)
	fmt.Printf("  intra-node past to active    %v/op\n", a.PerOp)
	fmt.Printf("  intra-node creation          %v/op\n", c.PerOp)
	fmt.Printf("  inter-node past (one-way)    %v/op\n", r.PerOp)
	fmt.Printf("  inter-node now (round trip)  %v/op\n", w.PerOp)
	return nil
}

func runForkJoin() error {
	sys, err := abcl.NewSystem(sysOptions()...)
	if err != nil {
		return err
	}
	leaves, err := misc.RunForkJoinOn(sys, *depth)
	if err != nil {
		return err
	}
	c := sys.Report().Sched.Counters
	benchEvents.Store(sys.M.Eng.Fired())
	benchMsgs.Store(c.LocalToDormant + c.LocalToActive + c.RemoteSends)
	fmt.Printf("fork-join depth=%d on %d nodes: %d leaves (expected %d)\n",
		*depth, *nodes, leaves, int64(1)<<uint(*depth))
	fmt.Printf("  %s\n", commsLine(sys))
	printCostTable(sys.Report())
	return nil
}

func runDiffusion() error {
	res, err := diffusion.Run(diffusion.Options{
		W: *grid, H: *grid, Iters: *gridIters, Nodes: *nodes,
		Policy: parsePolicy(), BlockPlace: *block,
		Seed: *seed, Faults: faultPlan(),
		BatchWindow: abcl.Time(*batchWindow), AckDelay: abcl.Time(*ackDelay),
		Reliable:           *reliable || *ackDelay > 0,
		CheckpointInterval: abcl.Time(ckptInterval),
		Extra:              extraOpts(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("diffusion %dx%d, %d iterations on %d nodes (%s placement)\n",
		*grid, *grid, *gridIters, *nodes, map[bool]string{true: "block", false: "scatter"}[*block])
	fmt.Printf("  elapsed       %v\n", res.Elapsed)
	fmt.Printf("  utilization   %.1f%%\n", 100*res.Utilization)
	fmt.Printf("  residual      %.6g (sequential: %.6g)\n",
		res.Residual, diffusion.SequentialResidual(*grid, *grid, *gridIters))
	printStats(res.Stats)
	return nil
}

func runHotKey() error {
	cov, err := hotkey.ParseCoverage(*coverage)
	if err != nil {
		return err
	}
	res, err := hotkey.Run(hotkey.Options{
		Nodes: *nodes, Clients: *clients, Ops: *opsPer,
		WritePct: *writePct, Coverage: cov, Reorder: *reorder,
		Seed: *seed, Faults: faultPlan(),
		BatchWindow: abcl.Time(*batchWindow), AckDelay: abcl.Time(*ackDelay),
		Reliable:           *reliable || *ackDelay > 0,
		CheckpointInterval: abcl.Time(ckptInterval),
		Extra:              extraOpts(),
	})
	if err != nil {
		return err
	}
	benchMsgs.Store(uint64(res.Ops))
	fmt.Printf("hotkey: %d clients x %d ops on %d nodes (coverage %s, %d%% writes)\n",
		*clients, *opsPer, *nodes, cov, *writePct)
	fmt.Printf("  elapsed       %v\n", res.Elapsed)
	fmt.Printf("  throughput    %.1f ops/ms\n", res.Throughput)
	fmt.Printf("  peak overlap  %d concurrent invocations\n", res.MaxLive)
	fmt.Printf("  final value   %d (= %d writes; %d reads)\n", res.Final, res.Writes, res.Reads)
	printStats(res.Stats)
	return nil
}

func runOrderBook() error {
	res, err := orderbook.Run(orderbook.Options{
		Nodes: *nodes, Clients: *clients, Ops: *opsPer,
		Grouped: *grouped, Reorder: *reorder, Seed: *seed,
		Extra: extraOpts(),
	})
	if err != nil {
		return err
	}
	benchMsgs.Store(uint64(res.Ops))
	fmt.Printf("orderbook: %d clients x %d ops on %d nodes (grouped=%v)\n",
		*clients, *opsPer, *nodes, *grouped)
	fmt.Printf("  elapsed       %v\n", res.Elapsed)
	fmt.Printf("  throughput    %.1f ops/ms\n", res.Throughput)
	fmt.Printf("  peak overlap  %d concurrent invocations\n", res.MaxLive)
	fmt.Printf("  ops           %d reads, %d deposits, %d transfers\n", res.Reads, res.Deposits, res.Transfers)
	fmt.Printf("  conservation  total %d = initial + deposits %d\n", res.Total, res.WantTotal)
	printStats(res.Stats)
	return nil
}

// runScenarios resolves -scenario (all bundled, one bundled by name, or a
// JSON file) and executes each spec: fault-free baseline, faulted run,
// assertions. A failed assertion fails the command.
func runScenarios() error {
	var specs []scenario.Spec
	switch {
	case *scen == "all":
		var err error
		if specs, err = scenario.Bundled(); err != nil {
			return err
		}
	case strings.HasSuffix(*scen, ".json"):
		sp, err := scenario.Load(*scen)
		if err != nil {
			return err
		}
		specs = []scenario.Spec{sp}
	default:
		sp, err := scenario.Find(*scen)
		if err != nil {
			return err
		}
		specs = []scenario.Spec{sp}
	}
	// Each scenario builds its own fault-free and faulted systems, so the
	// suite runs concurrently across GOMAXPROCS. Reports are collected into
	// indexed slots and printed in spec order, identical to a serial run.
	// With a -profile/-metrics observer attached the sink is shared, so the
	// suite runs serially to keep the event stream deterministic.
	outs := make([]scenario.Outcome, len(specs))
	errs := make([]error, len(specs))
	if obs := scenarioObserver(); obs != nil {
		for i := range specs {
			outs[i], errs[i] = scenario.RunWith(specs[i], scenario.RunOpts{Observer: obs})
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(specs) {
			workers = len(specs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					outs[i], errs[i] = scenario.Run(specs[i])
				}
			}()
		}
		wg.Wait()
	}
	failed := 0
	for i := range specs {
		if errs[i] != nil {
			return errs[i]
		}
		fmt.Print(outs[i].Report())
		if !outs[i].OK() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(specs))
	}
	fmt.Printf("%d scenarios passed\n", len(specs))
	return nil
}

func printStats(c abcl.Counters) {
	fmt.Println("  runtime counters:")
	fmt.Printf("    local msgs: dormant=%d active=%d restores=%d (dormant fraction %.0f%%)\n",
		c.LocalToDormant, c.LocalToActive, c.LocalRestores, 100*c.DormantFraction())
	fmt.Printf("    remote msgs: %d   creations: local=%d remote=%d\n",
		c.RemoteSends, c.LocalCreations, c.RemoteCreations)
	fmt.Printf("    chunk stock: hits=%d misses=%d   fault-buffered=%d\n",
		c.StockHits, c.StockMisses, c.FaultBuffered)
	fmt.Printf("    scheduling queue: enq=%d deq=%d   preemptions=%d heap frames=%d\n",
		c.SchedEnqueues, c.SchedDequeues, c.Preemptions, c.HeapFrames)
	if c.RelSent > 0 || c.LinkDrops > 0 || c.NodePauses > 0 {
		fmt.Printf("    faults: drops=%d dups=%d pauses=%d\n",
			c.LinkDrops, c.LinkDups, c.NodePauses)
		fmt.Printf("    reliable: sent=%d delivered=%d retransmits=%d dup-suppressed=%d held=%d lost=%d\n",
			c.RelSent, c.RelDelivered, c.Retransmits, c.DupSuppressed, c.HeldOutOfOrder, c.LostMessages())
	}
	if c.CkptRounds > 0 || c.NodeCrashes > 0 {
		fmt.Printf("    checkpoint: rounds=%d stable-bytes=%d   crashes=%d restarts=%d replayed=%d\n",
			c.CkptRounds, c.CkptBytes, c.NodeCrashes, c.NodeRestarts, c.ReplayedMsgs)
	}
}

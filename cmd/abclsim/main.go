// Command abclsim runs an ABCL workload on the simulated multicomputer and
// reports virtual-time performance and runtime statistics.
//
//	abclsim -workload nqueens -n 11 -nodes 512
//	abclsim -workload nqueens -n 10 -nodes 64 -policy naive
//	abclsim -workload pingpong -nodes 2
//	abclsim -workload forkjoin -depth 12 -nodes 64
package main

import (
	"flag"
	"fmt"
	"os"

	abcl "repro"
	"repro/internal/apps/diffusion"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
	"repro/internal/apps/pingpong"
	"repro/internal/machine"
)

var (
	workload  = flag.String("workload", "nqueens", "workload: nqueens | pingpong | forkjoin | diffusion")
	n         = flag.Int("n", 10, "N-queens board size")
	depth     = flag.Int("depth", 10, "fork-join tree depth")
	grid      = flag.Int("grid", 16, "diffusion grid edge length")
	gridIters = flag.Int("grid-iters", 10, "diffusion iterations")
	block     = flag.Bool("block", true, "diffusion: block placement (vs scatter)")
	nodes     = flag.Int("nodes", 64, "number of processing nodes")
	policy    = flag.String("policy", "stack", "scheduling policy: stack | naive")
	placement = flag.String("placement", "random", "placement: random | rr | local | load | depth")
	seed      = flag.Int64("seed", 1, "random placement seed")
	stock     = flag.Int("stock", 2, "chunk-stock depth (-1 disables)")
	iters     = flag.Int("iters", 1000, "ping-pong iterations")
	traceN    = flag.Int("trace", 0, "dump the last N runtime trace events")
)

func main() {
	flag.Parse()
	var err error
	switch *workload {
	case "nqueens":
		err = runNQueens()
	case "pingpong":
		err = runPingPong()
	case "forkjoin":
		err = runForkJoin()
	case "diffusion":
		err = runDiffusion()
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abclsim:", err)
		os.Exit(1)
	}
}

func parsePolicy() abcl.Policy {
	if *policy == "naive" {
		return abcl.Naive
	}
	return abcl.StackBased
}

func parsePlacement() abcl.Placement {
	switch *placement {
	case "rr":
		return abcl.PlaceRoundRobin
	case "local":
		return abcl.PlaceLocal
	case "load":
		return abcl.PlaceLoadBased
	case "depth":
		return abcl.PlaceDepthLocal
	default:
		return abcl.PlaceRandom
	}
}

func runNQueens() error {
	seq := nqueens.Sequential(*n, machine.DefaultConfig(1), 0)
	sys, err := abcl.NewSystem(abcl.Config{
		Nodes: *nodes, Policy: parsePolicy(), Placement: parsePlacement(),
		Seed: *seed, StockDepth: *stock, TraceCapacity: *traceN,
	})
	if err != nil {
		return err
	}
	drv := nqueens.Build(sys, *n, 0)
	drv.Start()
	if err := sys.Run(); err != nil {
		return err
	}
	res, err := drv.Result()
	if err != nil {
		return err
	}
	fmt.Printf("N-queens N=%d on %d nodes (%s scheduling, %s placement)\n",
		*n, *nodes, parsePolicy(), parsePlacement().Name())
	fmt.Printf("  solutions        %d (expected %d)\n", res.Solutions, seq.Solutions)
	fmt.Printf("  objects created  %d\n", res.Objects)
	fmt.Printf("  messages         %d\n", res.Messages)
	fmt.Printf("  elapsed          %v (sequential %v)\n", res.Elapsed, seq.Elapsed)
	fmt.Printf("  speedup          %.1fx on %d nodes\n",
		float64(seq.Elapsed)/float64(res.Elapsed), *nodes)
	fmt.Printf("  utilization      %.1f%%\n", 100*res.Utilization)
	fmt.Printf("  memory model     %.0f KB\n", float64(res.MemoryBytes)/1024)
	printStats(res.Stats)
	if sys.Trace != nil {
		fmt.Printf("  last %d trace events:\n", sys.Trace.Len())
		if err := sys.Trace.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runPingPong() error {
	d, err := pingpong.PastLocal(*iters)
	if err != nil {
		return err
	}
	a, err := pingpong.PastLocalActive(*iters)
	if err != nil {
		return err
	}
	c, err := pingpong.CreateLocal(*iters)
	if err != nil {
		return err
	}
	r, err := pingpong.PastRemote(*iters)
	if err != nil {
		return err
	}
	w, err := pingpong.NowRemote(*iters / 10)
	if err != nil {
		return err
	}
	fmt.Printf("ping-pong microbenchmarks (%d iterations)\n", *iters)
	fmt.Printf("  intra-node past to dormant   %v/op\n", d.PerOp)
	fmt.Printf("  intra-node past to active    %v/op\n", a.PerOp)
	fmt.Printf("  intra-node creation          %v/op\n", c.PerOp)
	fmt.Printf("  inter-node past (one-way)    %v/op\n", r.PerOp)
	fmt.Printf("  inter-node now (round trip)  %v/op\n", w.PerOp)
	return nil
}

func runForkJoin() error {
	leaves, err := misc.RunForkJoin(*depth, *nodes, parsePolicy())
	if err != nil {
		return err
	}
	fmt.Printf("fork-join depth=%d on %d nodes: %d leaves (expected %d)\n",
		*depth, *nodes, leaves, int64(1)<<uint(*depth))
	return nil
}

func runDiffusion() error {
	res, err := diffusion.Run(diffusion.Options{
		W: *grid, H: *grid, Iters: *gridIters, Nodes: *nodes,
		Policy: parsePolicy(), BlockPlace: *block,
	})
	if err != nil {
		return err
	}
	fmt.Printf("diffusion %dx%d, %d iterations on %d nodes (%s placement)\n",
		*grid, *grid, *gridIters, *nodes, map[bool]string{true: "block", false: "scatter"}[*block])
	fmt.Printf("  elapsed       %v\n", res.Elapsed)
	fmt.Printf("  utilization   %.1f%%\n", 100*res.Utilization)
	fmt.Printf("  residual      %.6g (sequential: %.6g)\n",
		res.Residual, diffusion.SequentialResidual(*grid, *grid, *gridIters))
	printStats(res.Stats)
	return nil
}

func printStats(c abcl.Counters) {
	fmt.Println("  runtime counters:")
	fmt.Printf("    local msgs: dormant=%d active=%d restores=%d (dormant fraction %.0f%%)\n",
		c.LocalToDormant, c.LocalToActive, c.LocalRestores, 100*c.DormantFraction())
	fmt.Printf("    remote msgs: %d   creations: local=%d remote=%d\n",
		c.RemoteSends, c.LocalCreations, c.RemoteCreations)
	fmt.Printf("    chunk stock: hits=%d misses=%d   fault-buffered=%d\n",
		c.StockHits, c.StockMisses, c.FaultBuffered)
	fmt.Printf("    scheduling queue: enq=%d deq=%d   preemptions=%d heap frames=%d\n",
		c.SchedEnqueues, c.SchedDequeues, c.Preemptions, c.HeapFrames)
}

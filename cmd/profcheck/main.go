// Command profcheck validates a JSONL profile stream written by
// `abclsim -profile` (and optionally the `-metrics` summary from the same
// run). It backs the Makefile's profile-smoke target: a cheap end-to-end
// check that the exporter emits the documented schema, not a best-effort
// variant of it.
//
//	abclsim -workload nqueens -n 8 -nodes 8 -profile run.jsonl -metrics run.json
//	profcheck -nodes 8 -metrics run.json run.jsonl
//
// Checks, per line: the line is a JSON object with exactly the documented
// fields ({"at","node","kind","what"}), `at` is a non-negative integer,
// `node` is in [0,nodes), `kind` is one of the runtime's defined event
// kinds, and `what` is a non-empty string. Against the metrics summary:
// total_events and every per-kind count must equal what the stream holds —
// the two sinks observed the same run, so they must agree exactly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 0, "node count of the traced run; 0 skips the node-range check")
	metrics := flag.String("metrics", "", "metrics summary JSON from the same run to cross-check")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: profcheck [-nodes N] [-metrics summary.json] stream.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)

	kinds := make(map[string]bool, trace.NumKinds)
	for k := 0; k < trace.NumKinds; k++ {
		kinds[trace.Kind(k).String()] = true
	}

	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var total uint64
	byKind := make(map[string]uint64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		// Decode into raw JSON first so unknown or missing fields and
		// wrong types fail loudly instead of defaulting silently.
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			fatalf("%s:%d: not a JSON object: %v", path, line, err)
		}
		for _, field := range []string{"at", "node", "kind", "what"} {
			if _, ok := raw[field]; !ok {
				fatalf("%s:%d: missing field %q", path, line, field)
			}
		}
		if len(raw) != 4 {
			fatalf("%s:%d: undocumented extra fields in %s", path, line, sc.Text())
		}
		var at int64
		if err := json.Unmarshal(raw["at"], &at); err != nil || at < 0 {
			fatalf("%s:%d: bad at %s", path, line, raw["at"])
		}
		var node int
		if err := json.Unmarshal(raw["node"], &node); err != nil || node < 0 || (*nodes > 0 && node >= *nodes) {
			fatalf("%s:%d: bad node %s (run had %d nodes)", path, line, raw["node"], *nodes)
		}
		var kind, what string
		if err := json.Unmarshal(raw["kind"], &kind); err != nil || !kinds[kind] {
			fatalf("%s:%d: unknown kind %s", path, line, raw["kind"])
		}
		if err := json.Unmarshal(raw["what"], &what); err != nil || what == "" {
			fatalf("%s:%d: bad what %s", path, line, raw["what"])
		}
		total++
		byKind[kind]++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if total == 0 {
		fatalf("%s: empty stream", path)
	}

	if *metrics != "" {
		buf, err := os.ReadFile(*metrics)
		if err != nil {
			fatal(err)
		}
		var sum trace.MetricsSummary
		if err := json.Unmarshal(buf, &sum); err != nil {
			fatalf("%s: %v", *metrics, err)
		}
		if sum.Total != total {
			fatalf("%s: total_events=%d, stream has %d lines", *metrics, sum.Total, total)
		}
		for kind, n := range sum.ByKind {
			if byKind[kind] != n {
				fatalf("%s: by_kind[%s]=%d, stream has %d", *metrics, kind, n, byKind[kind])
			}
		}
		for kind, n := range byKind {
			if _, ok := sum.ByKind[kind]; !ok {
				fatalf("%s: kind %s (%d events) missing from by_kind", *metrics, kind, n)
			}
		}
	}

	fmt.Printf("profcheck: %s ok (%d events, %d kinds)\n", path, total, len(byKind))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profcheck:", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profcheck: "+format+"\n", args...)
	os.Exit(1)
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, and optionally compares it against a
// previously saved report. It backs the Makefile's bench-baseline,
// bench-compare and bench-gate targets:
//
//	go test -bench ... -benchmem . | benchjson -o BENCH_2026-08-05.json
//	go test -bench ... -benchmem . | benchjson -o BENCH_new.json -compare BENCH_old.json
//	go test -bench ... -benchmem . | benchjson -compare BENCH_old.json \
//	    -gate Figure5_Speedup/N10_P256,ProfilerOffOverhead:10:2 -gate-pct 10
//
// In gate mode the exit status is non-zero when any gated benchmark's
// ns/op or allocs/op regresses beyond the allowed percentage, or when a
// gated benchmark is missing from either report. A gate name may carry its
// own limits as "Name:pct" (both metrics) or "Name:nsPct:allocsPct"
// (separate wall-clock and allocation limits), overriding -gate-pct for
// that benchmark. Separate limits let a deterministic metric be gated
// tightly (allocs/op is exactly reproducible) while wall-clock keeps the
// headroom host noise demands.
//
// -compare also accepts a directory: the baseline is then the unique
// BENCH_<date>*.json with the newest embedded date. When several reports
// share the newest date the choice is ambiguous — a lexical tiebreak would
// silently gate against whichever name sorts last — so benchjson refuses
// and lists the candidates; name one explicitly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the saved form of one benchmark run.
type Report struct {
	Date       string  `json:"date,omitempty"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON report to diff against")
	date := flag.String("date", "", "date stamp recorded in the report")
	gate := flag.String("gate", "", "comma-separated benchmark names that must not regress vs the -compare baseline")
	gatePct := flag.Float64("gate-pct", 10, "allowed ns/op and allocs/op regression, percent")
	flag.Parse()
	if *gate != "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -gate requires -compare")
		os.Exit(2)
	}

	rep := parse(bufio.NewScanner(os.Stdin))
	rep.Date = *date
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if *gate == "" { // gate mode prints the comparison, not the report
			os.Stdout.Write(buf)
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}

	if *compare != "" {
		path := *compare
		if st, err := os.Stat(path); err == nil && st.IsDir() {
			path, err = selectBaseline(path)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s\n", path)
		}
		base, err := load(path)
		if err != nil {
			fatal(err)
		}
		diff(base, rep)
		if *gate != "" && !runGate(base, rep, strings.Split(*gate, ","), *gatePct) {
			os.Exit(1)
		}
	}
}

// runGate checks the named benchmarks against the baseline and reports true
// when every gated metric stays within the allowed regression. A name may
// carry its own limits as "Name:pct" (e.g. "ProfilerOffOverhead:2", both
// metrics) or "Name:nsPct:allocsPct" (e.g. "ProfilerOffOverhead:10:2"),
// overriding the global -gate-pct for that benchmark.
func runGate(base, cur *Report, names []string, pct float64) bool {
	index := func(r *Report) map[string]Bench {
		m := make(map[string]Bench, len(r.Benchmarks))
		for _, b := range r.Benchmarks {
			m[b.Name] = b
		}
		return m
	}
	baseBy, curBy := index(base), index(cur)
	ok := true
	for _, spec := range names {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		name := parts[0]
		nsLimit, allocLimit := pct, pct
		badLimit := len(parts) > 3
		for i, v := range parts[1:] {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				badLimit = true
				break
			}
			if i == 0 {
				nsLimit, allocLimit = f, f
			} else {
				allocLimit = f
			}
		}
		if badLimit {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: bad per-name limit in %q\n", name, spec)
			ok = false
			continue
		}
		old, inBase := baseBy[name]
		b, inCur := curBy[name]
		if !inBase || !inCur {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s: missing from %s report\n",
				name, map[bool]string{true: "current", false: "baseline"}[inBase])
			ok = false
			continue
		}
		check := func(metric string, oldV, newV, limit float64) {
			if oldV <= 0 {
				return
			}
			d := (newV - oldV) / oldV * 100
			status := "ok"
			if d > limit {
				status = "FAIL"
				ok = false
			}
			fmt.Printf("gate %-40s %-10s %14.0f -> %14.0f  %+6.1f%%  (limit +%.0f%%)  %s\n",
				name, metric, oldV, newV, d, limit, status)
		}
		check("ns/op", old.NsPerOp, b.NsPerOp, nsLimit)
		check("allocs/op", old.AllocsOp, b.AllocsOp, allocLimit)
	}
	return ok
}

// baselineDate extracts the date stamp from a BENCH_<date>*.json name.
var baselineDate = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})`)

// selectBaseline resolves a -compare directory to the unique baseline
// report carrying the newest date. Reports sharing the newest date make the
// choice ambiguous, and the error lists every candidate.
func selectBaseline(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	newest := ""
	var candidates []string
	for _, p := range paths {
		m := baselineDate.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		switch d := m[1]; {
		case d > newest:
			newest, candidates = d, []string{p}
		case d == newest:
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("no BENCH_<date>*.json baseline under %s; run make bench-baseline first", dir)
	}
	if len(candidates) > 1 {
		sort.Strings(candidates)
		return "", fmt.Errorf("ambiguous baseline: %d reports share newest date %s:\n  %s\npass -compare with one of them",
			len(candidates), newest, strings.Join(candidates, "\n  "))
	}
	return candidates[0], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// parse extracts benchmark result lines and the run's environment header.
func parse(sc *bufio.Scanner) *Report {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs (ns/op, B/op, allocs/op, and custom ReportMetric units).
func parseBench(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimSuffix(strings.TrimPrefix(fields[0], "Benchmark"), "-1")}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix if present.
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// diff prints a side-by-side comparison of matching benchmark names.
func diff(base, cur *Report) {
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Printf("\n%-40s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, b := range cur.Benchmarks {
		old, ok := byName[b.Name]
		if !ok {
			fmt.Printf("%-40s %14s %14.0f %8s %12s %12.0f\n",
				b.Name, "-", b.NsPerOp, "-", "-", b.AllocsOp)
			continue
		}
		delta := "-"
		if old.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (b.NsPerOp-old.NsPerOp)/old.NsPerOp*100)
		}
		fmt.Printf("%-40s %14.0f %14.0f %8s %12.0f %12.0f\n",
			b.Name, old.NsPerOp, b.NsPerOp, delta, old.AllocsOp, b.AllocsOp)
	}
}

package abcl_test

import (
	"strings"
	"testing"

	abcl "repro"
	"repro/internal/machine"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := abcl.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Nodes() != 1 {
		t.Errorf("default nodes = %d, want 1", sys.Nodes())
	}
	if got := sys.Report().Sched.Elapsed; got != 0 {
		t.Errorf("fresh system elapsed = %v, want 0", got)
	}
}

func TestNewSystemInvalidMachine(t *testing.T) {
	bad := machine.DefaultConfig(4)
	bad.ClockMHz = -1
	if _, err := abcl.NewSystem(abcl.WithNodes(4), abcl.WithMachine(bad)); err == nil {
		t.Fatal("invalid machine config must be rejected")
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	bad := machine.DefaultConfig(4)
	bad.CPI = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSystem must panic on bad config")
		}
	}()
	abcl.MustNewSystem(abcl.WithNodes(4), abcl.WithMachine(bad))
}

func TestEndToEndFacade(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(2), abcl.WithSeed(7))
	echo := sys.Pattern("echo", 1)
	kick := sys.Pattern("kick", 0)

	var target abcl.Address
	var got string
	svc := sys.Class("svc", 0, nil)
	svc.Method(echo, func(ctx *abcl.Ctx) { ctx.Reply(ctx.Arg(0)) })
	drv := sys.Class("drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		ctx.SendNow(target, echo, []abcl.Value{abcl.Str("hi")}, func(ctx *abcl.Ctx, v abcl.Value) {
			got = v.Str()
		})
	})

	target = sys.NewObjectOn(1, svc)
	d := sys.NewObjectOn(0, drv)
	sys.Send(d, kick)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hi" {
		t.Fatalf("echo = %q, want hi", got)
	}
	rep := sys.Report()
	if rep.Sched.Elapsed == 0 {
		t.Error("elapsed must advance")
	}
	if rep.Wire.Packets == 0 {
		t.Error("cross-node run must produce packets")
	}
	if rep.Sched.TotalInstructions == 0 {
		t.Error("instructions must be accounted")
	}
	if sys.InstrTime(25) != 2300 {
		t.Errorf("InstrTime(25) = %v, want 2.3µs", sys.InstrTime(25))
	}
}

func TestChunkStockOptions(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(2), abcl.WithoutChunkStock())
	if sys.Net.StockDepth() != 0 {
		t.Errorf("WithoutChunkStock: depth = %d, want 0", sys.Net.StockDepth())
	}
	sys2 := abcl.MustNewSystem(abcl.WithNodes(2))
	if sys2.Net.StockDepth() != abcl.DefaultStockDepth {
		t.Errorf("default stock depth = %d, want %d", sys2.Net.StockDepth(), abcl.DefaultStockDepth)
	}
	sys3 := abcl.MustNewSystem(abcl.WithNodes(2), abcl.WithChunkStock(5))
	if sys3.Net.StockDepth() != 5 {
		t.Errorf("explicit stock depth = %d, want 5", sys3.Net.StockDepth())
	}
	if _, err := abcl.NewSystem(abcl.WithChunkStock(0)); err == nil {
		t.Error("WithChunkStock(0) must be rejected (use WithoutChunkStock)")
	}
}

// NewSystem validates everything up front and reports all complaints in
// one joined error — bad individual arguments and incompatible
// combinations alike.
func TestOptionValidationAggregated(t *testing.T) {
	_, err := abcl.NewSystem(
		abcl.WithNodes(0),                       // bad argument
		abcl.WithSeed(0),                        // bad argument
		abcl.WithTrace(64),                      // incompatible with a parallel executor
		abcl.WithExecutor(abcl.Conservative(4)), //
		abcl.WithDelayedAcks(abcl.Time(50)),     // needs the reliable protocol
	)
	if err == nil {
		t.Fatal("misconfigured NewSystem must fail")
	}
	for _, frag := range []string{
		"WithNodes(0)", "WithSeed(0)", "WithExecutor", "WithDelayedAcks",
	} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregated error misses %q:\n%v", frag, err)
		}
	}
}

// Incompatible combinations are construction-time errors, not latent
// misbehaviour.
func TestOptionCombinationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []abcl.Option
	}{
		{"trace+conservative", []abcl.Option{abcl.WithTrace(64), abcl.WithExecutor(abcl.Conservative(2))}},
		{"trace+optimistic", []abcl.Option{abcl.WithTrace(64), abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{}))}},
		{"trace+parallel (deprecated alias)", []abcl.Option{abcl.WithTrace(64), abcl.WithParallelSim(2)}},
		{"checkpoint+conservative", []abcl.Option{abcl.WithNodes(2), abcl.WithCheckpoint(abcl.Time(1000)), abcl.WithExecutor(abcl.Conservative(2))}},
		{"profiler+optimistic", []abcl.Option{abcl.WithNodes(2), abcl.WithProfiler(abcl.ProfileOptions{Window: abcl.Time(1000)}), abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{}))}},
		{"negative workers", []abcl.Option{abcl.WithExecutor(abcl.Conservative(-1))}},
		{"negative window", []abcl.Option{abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{Window: -1}))}},
		{"negative rollback depth", []abcl.Option{abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{MaxRollbackDepth: -1}))}},
		{"gvt below window", []abcl.Option{abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{Window: abcl.Time(1000), GVTInterval: abcl.Time(500)}))}},
		{"delayed-acks unreliable", []abcl.Option{abcl.WithNodes(2), abcl.WithDelayedAcks(abcl.Time(50))}},
	}
	for _, tc := range cases {
		if _, err := abcl.NewSystem(tc.opts...); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
	// The same ingredients in compatible form still construct.
	if _, err := abcl.NewSystem(abcl.WithNodes(2), abcl.WithReliable(), abcl.WithDelayedAcks(abcl.Time(50))); err != nil {
		t.Errorf("reliable delayed acks must construct: %v", err)
	}
	// Checkpointing is forbidden on the conservative executor but legal on
	// the optimistic one, which fences the marker protocol.
	if _, err := abcl.NewSystem(abcl.WithNodes(2), abcl.WithCheckpoint(abcl.Time(1000)),
		abcl.WithExecutor(abcl.Optimistic(2, abcl.OptimisticOptions{}))); err != nil {
		t.Errorf("checkpoint + optimistic executor must construct: %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  abcl.Option
	}{
		{"WithNodes(0)", abcl.WithNodes(0)},
		{"WithNodes(-3)", abcl.WithNodes(-3)},
		{"WithSeed(0)", abcl.WithSeed(0)},
		{"WithTrace(0)", abcl.WithTrace(0)},
		{"WithPlacement(nil)", abcl.WithPlacement(nil)},
		{"WithMaxStackDepth(0)", abcl.WithMaxStackDepth(0)},
		{"WithChunkStock(-1)", abcl.WithChunkStock(-1)},
		{"WithPolicy(99)", abcl.WithPolicy(abcl.Policy(99))},
		{"nil option", nil},
	}
	for _, tc := range cases {
		if _, err := abcl.NewSystem(tc.opt); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
	// Invalid fault plans are rejected at construction.
	if _, err := abcl.NewSystem(abcl.WithNodes(2), abcl.WithFaults(abcl.UniformFaults(1.0, 0, 0))); err == nil {
		t.Error("drop probability 1.0 must be rejected")
	}
	if _, err := abcl.NewSystem(abcl.WithNodes(2), abcl.WithFaults(abcl.UniformFaults(-0.1, 0, 0))); err == nil {
		t.Error("negative drop probability must be rejected")
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := abcl.MustNewSystem().Seed(); got != abcl.DefaultSeed {
		t.Errorf("default seed = %d, want %d", got, abcl.DefaultSeed)
	}
	if got := abcl.MustNewSystem(abcl.WithSeed(1234)).Seed(); got != 1234 {
		t.Errorf("seed = %d, want 1234", got)
	}
}

func TestWithFaultsEnablesReliability(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(2), abcl.WithFaults(abcl.UniformFaults(0.1, 0, 0)))
	if !sys.Report().Reliable.Enabled {
		t.Error("WithFaults must enable the reliable protocol")
	}
	if sys.M.Faults() == nil {
		t.Error("WithFaults must install the injector on the machine")
	}
	plain := abcl.MustNewSystem(abcl.WithNodes(2))
	if plain.Report().Reliable.Enabled || plain.M.Faults() != nil {
		t.Error("fault-free system must not pay for reliability")
	}
}

func TestPolicyConstants(t *testing.T) {
	if abcl.StackBased.String() != "stack" || abcl.Naive.String() != "naive" {
		t.Error("policy constants mis-exported")
	}
}

func TestPlacementExports(t *testing.T) {
	for _, p := range []abcl.Placement{
		abcl.PlaceRoundRobin, abcl.PlaceRandom, abcl.PlaceLocal,
		abcl.PlaceLoadBased, abcl.PlaceDepthLocal,
	} {
		if p.Name() == "" {
			t.Error("placement must have a name")
		}
	}
}

func TestValueConstructors(t *testing.T) {
	if abcl.Int(3).Int() != 3 {
		t.Error("Int")
	}
	if !abcl.Bool(true).Bool() {
		t.Error("Bool")
	}
	if abcl.Float(1.5).Float() != 1.5 {
		t.Error("Float")
	}
	if abcl.Str("x").Str() != "x" {
		t.Error("Str")
	}
	if abcl.Any([]int{1}).Any().([]int)[0] != 1 {
		t.Error("Any")
	}
}

func TestCustomMachineConfig(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	cfg.ClockMHz = 50 // a faster processor: everything halves
	sys := abcl.MustNewSystem(abcl.WithNodes(8), abcl.WithMachine(cfg))
	if got := sys.InstrTime(25); got != 1150 {
		t.Errorf("InstrTime at 50MHz = %v, want 1.15µs", got)
	}
}

func TestTracing(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(1), abcl.WithTrace(256))
	ping := sys.Pattern("ping", 1)
	cls := sys.Class("cls", 0, nil)
	cls.Method(ping, func(ctx *abcl.Ctx) {
		if n := ctx.Arg(0).Int(); n > 0 {
			ctx.SendPast(ctx.Self(), ping, abcl.Int(n-1))
		}
	})
	o := sys.NewObjectOn(0, cls)
	sys.Send(o, ping, abcl.Int(10))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Trace == nil || sys.Trace.Len() == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	var sends, scheds, dispatches int
	for _, e := range sys.Trace.Events() {
		switch e.Kind.String() {
		case "send":
			sends++
		case "schedule":
			scheds++
		case "dispatch":
			dispatches++
		}
	}
	if sends == 0 || scheds == 0 || dispatches == 0 {
		t.Errorf("trace kinds missing: sends=%d scheds=%d dispatches=%d",
			sends, scheds, dispatches)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(1))
	if sys.Trace != nil {
		t.Fatal("trace ring allocated without TraceCapacity")
	}
}

func TestSystemMigrate(t *testing.T) {
	sys := abcl.MustNewSystem(abcl.WithNodes(2))
	inc := sys.Pattern("inc", 0)
	cls := sys.Class("cls", 1, func(ic *abcl.InitCtx) { ic.SetState(0, abcl.Int(0)) })
	cls.Method(inc, func(ctx *abcl.Ctx) {
		ctx.SetState(0, abcl.Int(ctx.State(0).Int()+1))
	})
	obj := sys.NewObjectOn(0, cls)
	var moved abcl.Address
	if err := sys.Migrate(obj, 1, func(a abcl.Address) { moved = a }); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if moved.IsNil() || moved.Node != 1 {
		t.Fatalf("migrated to %v, want node 1", moved)
	}
	sys.Send(obj, inc) // stale address: forwarded
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := moved.Obj.State(0).Int(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if sys.Report().Sched.Counters.Forwards == 0 {
		t.Error("forwarding not recorded")
	}
}

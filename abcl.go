// Package abcl is the public API of the ABCL/onAP1000 reproduction: a
// concurrent object-oriented language runtime in the style of Taura,
// Matsuoka and Yonezawa's PPOPP'93 paper "An Efficient Implementation Scheme
// of Concurrent Object-Oriented Languages on Stock Multicomputers", running
// on a simulated stock multicomputer.
//
// A System bundles a simulated machine (nodes, torus network, instruction
// cost model), the intra-node runtime (multiple virtual function tables and
// integrated stack/queue scheduling) and the inter-node layer (Active
// Message handlers and chunk-stock remote creation). Programs define message
// patterns and classes, create objects, inject initial messages, and run the
// system to quiescence in virtual time:
//
//	sys, _ := abcl.NewSystem(abcl.Config{Nodes: 4})
//	hello := sys.Pattern("hello", 0)
//	greeter := sys.Class("greeter", 0, nil)
//	greeter.Method(hello, func(ctx *abcl.Ctx) { fmt.Println("hi") })
//	obj := sys.NewObjectOn(0, greeter)
//	sys.Send(obj, hello)
//	sys.Run()
//
// Method bodies are written in continuation-passing style: operations that
// may block (Ctx.SendNow, Ctx.WaitFor, Ctx.Create) take the rest of the
// method as an explicit continuation, mirroring the paper's saved-context
// heap frames.
package abcl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Re-exported runtime types. See package core for their documentation.
type (
	// Value is a message argument or state variable.
	Value = core.Value
	// Address is an object's mail address: (node, pointer).
	Address = core.Address
	// Ctx is a method invocation context.
	Ctx = core.Ctx
	// Frame is a received message (pattern + arguments).
	Frame = core.Frame
	// Pattern identifies a message pattern.
	Pattern = core.PatternID
	// Class describes a concurrent object class.
	Class = core.Class
	// InitCtx is the context passed to lazy state initializers.
	InitCtx = core.InitCtx
	// InitFunc lazily initializes an object's state.
	InitFunc = core.InitFunc
	// MethodFunc is a compiled method body.
	MethodFunc = core.MethodFunc
	// Policy selects stack-based or naive scheduling.
	Policy = core.Policy
	// Counters aggregates runtime event counts.
	Counters = stats.Counters
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Placement chooses nodes for remote creation.
	Placement = remote.Placement
)

// Scheduling policies.
const (
	StackBased = core.PolicyStackBased
	Naive      = core.PolicyNaive
)

// SendHint encodes the compile-time send optimizations of the paper's
// Section 6.1; see core.SendHint.
type SendHint = core.SendHint

// Send-site optimization hints (Section 6.1): with all four applied the
// dormant-path send costs 8 instructions instead of 25.
const (
	HintKnownLocal     = core.HintKnownLocal
	HintLeafMethod     = core.HintLeafMethod
	HintNoQueueCheck   = core.HintNoQueueCheck
	HintNoPoll         = core.HintNoPoll
	HintFullyOptimized = core.HintFullyOptimized
)

// Nil is the zero Value.
var Nil = core.Nil

// Value constructors, re-exported for ergonomic method bodies.
var (
	// Int makes an integer Value.
	Int = core.IntV
	// Bool makes a boolean Value.
	Bool = core.BoolV
	// Float makes a floating-point Value.
	Float = core.FloatV
	// Str makes a string Value.
	Str = core.StrV
	// Ref makes a mail-address Value.
	Ref = core.RefV
	// Any wraps an opaque immutable payload.
	Any = core.AnyV
)

// Placement policies for remote creation.
var (
	PlaceRoundRobin Placement = remote.RoundRobin{}
	PlaceRandom     Placement = remote.Random{}
	PlaceLocal      Placement = remote.LocalOnly{}
	PlaceLoadBased  Placement = remote.LoadBased{}
	PlaceDepthLocal Placement = remote.DepthLocal{}
)

// Config describes a System. The zero value of every field selects the
// AP1000-flavoured default.
type Config struct {
	// Nodes is the processor count (default 1).
	Nodes int
	// Policy selects stack-based (default) or naive scheduling.
	Policy Policy
	// MaxStackDepth bounds stack-based invocation nesting (default 64).
	MaxStackDepth int
	// StockDepth is the chunk-stock depth per (node, class); -1 disables
	// the stock (every remote create blocks), 0 selects the default of 2.
	StockDepth int
	// Placement picks remote-creation targets (default round-robin).
	Placement Placement
	// Seed drives randomized placement deterministically.
	Seed int64
	// Machine overrides the full machine configuration; when nil an
	// AP1000-like default (25MHz, CPI 2.3, squarish torus) is used.
	Machine *machine.Config
	// TraceCapacity, when positive, enables runtime event tracing into a
	// ring buffer of that many events, available as System.Trace.
	TraceCapacity int
}

// System is a complete simulated multicomputer running the ABCL runtime.
type System struct {
	M   *machine.Machine
	RT  *core.Runtime
	Net *remote.Layer
	// Trace holds runtime events when Config.TraceCapacity was positive.
	Trace *trace.Ring
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	mcfg := machine.DefaultConfig(cfg.Nodes)
	if cfg.Machine != nil {
		mcfg = *cfg.Machine
		mcfg.Nodes = cfg.Nodes
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, fmt.Errorf("abcl: %w", err)
	}
	var ring *trace.Ring
	if cfg.TraceCapacity > 0 {
		ring = trace.NewRing(cfg.TraceCapacity)
	}
	rt := core.NewRuntime(m, core.Options{
		Policy:        cfg.Policy,
		MaxStackDepth: cfg.MaxStackDepth,
		Trace:         ring,
	})
	stock := cfg.StockDepth
	switch {
	case stock < 0:
		stock = 0
	case stock == 0:
		stock = 2
	}
	placement := cfg.Placement
	if placement == nil {
		placement = remote.RoundRobin{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	net := remote.Attach(rt, remote.Options{
		StockDepth: stock,
		Placement:  placement,
		Seed:       seed,
	})
	return &System{M: m, RT: rt, Net: net, Trace: ring}, nil
}

// MustNewSystem is NewSystem for known-good configurations.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Pattern registers (or looks up) a message pattern.
func (s *System) Pattern(name string, arity int) Pattern {
	return s.RT.Reg.Register(name, arity)
}

// Class defines a new object class with stateSize state variables and an
// optional lazy initializer.
func (s *System) Class(name string, stateSize int, init InitFunc) *Class {
	return s.RT.DefineClass(name, stateSize, init)
}

// NewObjectOn creates an object on a node from the host side (bootstrap).
func (s *System) NewObjectOn(node int, cl *Class, ctorArgs ...Value) Address {
	return s.RT.NewObjectOn(node, cl, ctorArgs...)
}

// Send injects a message from the host side. The message is buffered and
// scheduled on the target's node.
func (s *System) Send(to Address, p Pattern, args ...Value) {
	s.RT.Inject(to, p, args...)
}

// Run freezes the system (fixing patterns and building all virtual function
// tables) and executes until quiescence.
func (s *System) Run() error { return s.RT.Run() }

// Migrate moves a quiescent object to another node (a category-4 service):
// its state travels in a packet and a forwarder is installed at the old
// address, so existing references keep working one hop slower. The transfer
// happens in simulated time; run the system (or continue running it) for
// the move to complete. onDone, if non-nil, observes the new address.
func (s *System) Migrate(obj Address, target int, onDone func(Address)) error {
	s.RT.Freeze()
	return s.Net.Migrate(obj.Obj, target, onDone)
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.M.Nodes() }

// Elapsed returns the parallel makespan: the largest node clock.
func (s *System) Elapsed() Time { return s.M.MaxClock() }

// Utilization returns busy time over (makespan x nodes).
func (s *System) Utilization() float64 { return s.M.Utilization() }

// Stats aggregates runtime counters over all nodes.
func (s *System) Stats() Counters { return s.RT.TotalStats() }

// TotalInstructions returns the instruction count summed over nodes.
func (s *System) TotalInstructions() uint64 { return s.M.TotalInstr() }

// Packets returns the total inter-node packet count.
func (s *System) Packets() uint64 { return s.M.TotalPackets }

// InstrTime converts an instruction count to virtual time under the
// system's clock and CPI configuration.
func (s *System) InstrTime(instr int) Time { return s.M.Cfg.InstrTime(instr) }

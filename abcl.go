// Package abcl is the public API of the ABCL/onAP1000 reproduction: a
// concurrent object-oriented language runtime in the style of Taura,
// Matsuoka and Yonezawa's PPOPP'93 paper "An Efficient Implementation Scheme
// of Concurrent Object-Oriented Languages on Stock Multicomputers", running
// on a simulated stock multicomputer.
//
// A System bundles a simulated machine (nodes, torus network, instruction
// cost model), the intra-node runtime (multiple virtual function tables and
// integrated stack/queue scheduling) and the inter-node layer (Active
// Message handlers and chunk-stock remote creation). Programs define message
// patterns and classes, create objects, inject initial messages, and run the
// system to quiescence in virtual time:
//
//	sys, _ := abcl.NewSystem(abcl.WithNodes(4))
//	hello := sys.Pattern("hello", 0)
//	greeter := sys.Class("greeter", 0, nil)
//	greeter.Method(hello, func(ctx *abcl.Ctx) { fmt.Println("hi") })
//	obj := sys.NewObjectOn(0, greeter)
//	sys.Send(obj, hello)
//	sys.Run()
//
// Method bodies are written in continuation-passing style: operations that
// may block (Ctx.SendNow, Ctx.WaitFor, Ctx.Create) take the rest of the
// method as an explicit continuation, mirroring the paper's saved-context
// heap frames.
package abcl

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/parexec"
	"repro/internal/profile"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Re-exported runtime types. See package core for their documentation.
type (
	// Value is a message argument or state variable.
	Value = core.Value
	// Address is an object's mail address: (node, pointer).
	Address = core.Address
	// Ctx is a method invocation context.
	Ctx = core.Ctx
	// Frame is a received message (pattern + arguments).
	Frame = core.Frame
	// Pattern identifies a message pattern.
	Pattern = core.PatternID
	// Class describes a concurrent object class.
	Class = core.Class
	// InitCtx is the context passed to lazy state initializers.
	InitCtx = core.InitCtx
	// InitFunc lazily initializes an object's state.
	InitFunc = core.InitFunc
	// MethodFunc is a compiled method body.
	MethodFunc = core.MethodFunc
	// Policy selects stack-based or naive scheduling.
	Policy = core.Policy
	// Counters aggregates runtime event counts.
	Counters = stats.Counters
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Placement chooses nodes for remote creation.
	Placement = remote.Placement
	// MachineConfig is the full simulated-machine configuration.
	MachineConfig = machine.Config
	// FaultPlan declares deterministic link and node faults; the zero value
	// means a fault-free machine. See package fault.
	FaultPlan = fault.Plan
	// LinkFault is one per-link fault rule inside a FaultPlan.
	LinkFault = fault.LinkFault
	// NodePause pauses one node's processor for a virtual-time window.
	NodePause = fault.NodePause
	// NodeCrash kills one node at a virtual time and restarts it after a
	// delay; recovery rolls the machine back to the last checkpoint. See
	// WithCheckpoint.
	NodeCrash = fault.NodeCrash
	// Snapshot is one complete coordinated checkpoint (System.Snapshot).
	Snapshot = checkpoint.Snapshot
	// Snapshotter converts one class's state box to and from its
	// stable-store image (System.RegisterSnapshotter). Classes without one
	// use the default plain-copy codec.
	Snapshotter = checkpoint.Snapshotter
	// Sink observes runtime events (WithObserver). See the trace package for
	// the full contract: sinks are called synchronously from the simulation's
	// single deterministic event order and must not retain the Event.
	Sink = trace.Sink
	// Event is one observed runtime event.
	Event = trace.Event
	// ProfileReport is the cost-attribution report (System.Report().Profile):
	// per-path instruction/packet/stable-store totals, the dormant fraction,
	// and optional per-class and time-series breakdowns.
	ProfileReport = profile.Report
	// PathStat is one row of the profiler's per-path cost table.
	PathStat = profile.PathStat
	// ClassStat is one row of the profiler's per-class table.
	ClassStat = profile.ClassStat
	// ProfileSlice is one time-series bucket of a windowed profile.
	ProfileSlice = profile.Slice
)

// Wildcard matches any node in a LinkFault's Src or Dst.
const Wildcard = fault.Wildcard

// Virtual-time units, for option arguments such as WithBatching and
// WithDelayedAcks.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// UniformFaults builds a FaultPlan applying the same drop probability,
// duplication probability and maximum latency jitter to every inter-node
// link.
func UniformFaults(drop, dup float64, jitter Time) FaultPlan {
	return fault.UniformLinks(drop, dup, jitter)
}

// Scheduling policies.
const (
	StackBased = core.PolicyStackBased
	Naive      = core.PolicyNaive
)

// SendHint encodes the compile-time send optimizations of the paper's
// Section 6.1; see core.SendHint.
type SendHint = core.SendHint

// Send-site optimization hints (Section 6.1): with all four applied the
// dormant-path send costs 8 instructions instead of 25.
const (
	HintKnownLocal     = core.HintKnownLocal
	HintLeafMethod     = core.HintLeafMethod
	HintNoQueueCheck   = core.HintNoQueueCheck
	HintNoPoll         = core.HintNoPoll
	HintFullyOptimized = core.HintFullyOptimized
)

// Nil is the zero Value.
var Nil = core.Nil

// Value constructors, re-exported for ergonomic method bodies.
var (
	// Int makes an integer Value.
	Int = core.IntV
	// Bool makes a boolean Value.
	Bool = core.BoolV
	// Float makes a floating-point Value.
	Float = core.FloatV
	// Str makes a string Value.
	Str = core.StrV
	// Ref makes a mail-address Value.
	Ref = core.RefV
	// Any wraps an opaque immutable payload.
	Any = core.AnyV
)

// Placement policies for remote creation.
var (
	PlaceRoundRobin Placement = remote.RoundRobin{}
	PlaceRandom     Placement = remote.Random{}
	PlaceLocal      Placement = remote.LocalOnly{}
	PlaceLoadBased  Placement = remote.LoadBased{}
	PlaceDepthLocal Placement = remote.DepthLocal{}
)

// DefaultSeed drives placement and fault-injection randomness when no
// WithSeed option is given (and when the legacy Config.Seed is zero). The
// seed is never silently remapped: Seed() always reports the value in use.
const DefaultSeed int64 = 1

// DefaultStockDepth is the chunk-stock depth per (node, class) when neither
// WithChunkStock nor WithoutChunkStock is given.
const DefaultStockDepth = 2

// settings is the resolved configuration an Option edits.
type settings struct {
	nodes       int
	policy      Policy
	maxStack    int
	stock       int // resolved depth; 0 disables the stock
	placement   Placement
	seed        int64
	machine     *machine.Config
	traceCap    int
	faults      FaultPlan
	exec        ExecutorSpec
	reliable    bool // ack/retry protocol even without faults
	batchWindow Time
	batchBytes  int
	ackDelay    Time
	loadHorizon Time
	noLocCache  bool
	ckptEvery   Time // periodic checkpoint interval; 0 = off
	observer    trace.Sink
	prof        *ProfileOptions
}

// Option configures a System under construction. Options are applied in
// order; later options override earlier ones.
type Option func(*settings) error

// WithNodes sets the processor count (default 1).
func WithNodes(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("abcl: WithNodes(%d): node count must be positive", n)
		}
		s.nodes = n
		return nil
	}
}

// WithPolicy selects stack-based (the default) or naive scheduling.
func WithPolicy(p Policy) Option {
	return func(s *settings) error {
		if p != StackBased && p != Naive {
			return fmt.Errorf("abcl: WithPolicy(%v): unknown policy", p)
		}
		s.policy = p
		return nil
	}
}

// WithMaxStackDepth bounds stack-based invocation nesting (default 64).
func WithMaxStackDepth(d int) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("abcl: WithMaxStackDepth(%d): depth must be positive", d)
		}
		s.maxStack = d
		return nil
	}
}

// WithPlacement picks the remote-creation placement policy (default
// PlaceRoundRobin).
func WithPlacement(p Placement) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("abcl: WithPlacement(nil): placement must be non-nil")
		}
		s.placement = p
		return nil
	}
}

// WithSeed sets the seed for deterministic placement and fault injection.
// Zero is rejected — it is too easily a forgotten field; omit the option to
// get DefaultSeed.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		if seed == 0 {
			return fmt.Errorf("abcl: WithSeed(0): seed must be non-zero (omit the option for DefaultSeed)")
		}
		s.seed = seed
		return nil
	}
}

// WithTrace enables runtime event tracing into a ring buffer of capacity
// events, available as System.Trace.
//
// Deprecated: use WithObserver(trace.NewRing(capacity)) — the ring buffer is
// now one Sink among several. WithTrace remains as a shorthand that also
// populates the System.Trace field.
func WithTrace(capacity int) Option {
	return func(s *settings) error {
		if capacity <= 0 {
			return fmt.Errorf("abcl: WithTrace(%d): capacity must be positive", capacity)
		}
		s.traceCap = capacity
		return nil
	}
}

// WithObserver attaches a trace sink to the runtime: every scheduler, wire,
// reliable-protocol and checkpoint event is delivered to it synchronously, in
// the simulation's single deterministic event order. Multiple observers (or
// an observer plus WithTrace) compose via trace.Tee. Sinks must not retain
// the Event or any memory reachable from it beyond the call; see the trace
// package for the full contract. Incompatible with the parallel executors
// (WithExecutor): parallel windows have no single global interleaving to
// observe.
func WithObserver(sink trace.Sink) Option {
	return func(s *settings) error {
		if sink == nil {
			return fmt.Errorf("abcl: WithObserver(nil): sink must be non-nil")
		}
		if s.observer != nil {
			s.observer = trace.Tee(s.observer, sink)
		} else {
			s.observer = sink
		}
		return nil
	}
}

// ProfileOptions configures the cost-attribution profiler (WithProfiler).
type ProfileOptions struct {
	// Window, when positive, additionally slices the profile into time-series
	// buckets of this width (instructions, events, packets, queue depths and
	// utilization per bucket). Zero keeps per-path totals only.
	Window Time
	// Classes enables per-class attribution: deliveries by receiver mode and
	// method-body instructions, keyed by the receiving object's class.
	Classes bool
}

// WithProfiler enables the cost-attribution profiler: every simulated
// instruction, wire record and stable-store byte is charged to a message
// path (local-dormant, local-active, restore, now-blocked, remote-send,
// remote-recv, create, forward, sched, body, ckpt, retransmit, ack — the
// paper's Section 6 taxonomy plus the subsystems added since). The report is
// available as System.Report().Profile after a run. The profiler only
// observes — enabling it changes no virtual-time results.
func WithProfiler(opt ProfileOptions) Option {
	return func(s *settings) error {
		if opt.Window < 0 {
			return fmt.Errorf("abcl: WithProfiler: window must be non-negative, got %v", opt.Window)
		}
		s.prof = &opt
		return nil
	}
}

// WithMachine overrides the full machine configuration; its node count is
// replaced by the system's. Without this option an AP1000-like default
// (25MHz, CPI 2.3, squarish torus) is used.
func WithMachine(cfg MachineConfig) Option {
	return func(s *settings) error {
		s.machine = &cfg
		return nil
	}
}

// WithChunkStock sets the chunk-stock depth per (node, class) for
// latency-hiding remote creation. Depth must be positive; use
// WithoutChunkStock to disable the stock entirely.
func WithChunkStock(depth int) Option {
	return func(s *settings) error {
		if depth <= 0 {
			return fmt.Errorf("abcl: WithChunkStock(%d): depth must be positive (use WithoutChunkStock to disable)", depth)
		}
		s.stock = depth
		return nil
	}
}

// WithoutChunkStock disables the chunk stock: every remote creation does a
// blocking round trip.
func WithoutChunkStock() Option {
	return func(s *settings) error {
		s.stock = 0
		return nil
	}
}

// WithFaults installs a deterministic fault plan on the machine's
// interconnect and enables the reliable-delivery (ack/retry) protocol in
// the inter-node layer, so all runtime traffic — past-type sends, remote
// creation, replies, migration — survives the declared faults without any
// change to method-body code. The plan is validated against the node count
// at construction. A zero plan is a no-op.
func WithFaults(plan FaultPlan) Option {
	return func(s *settings) error {
		s.faults = plan
		return nil
	}
}

// WithReliable enables the acknowledgment/retry delivery protocol even on a
// fault-free interconnect. WithFaults implies it; standalone it is useful for
// measuring the protocol's ack traffic (and the effect of WithDelayedAcks)
// without injected faults.
func WithReliable() Option {
	return func(s *settings) error {
		s.reliable = true
		return nil
	}
}

// WithBatching enables per-link packet batching on the wire path: records to
// the same destination node within the given virtual-time window coalesce
// into one hardware packet (flushed early once maxBytes of payload
// accumulate; maxBytes <= 0 selects the DefaultBatchBytes budget). The fixed
// per-packet launch latency is amortised across the coalesced records while
// per-byte and per-hop costs stay faithful. Off by default; the default
// path is byte-identical to the unbatched engine.
func WithBatching(window Time, maxBytes int) Option {
	return func(s *settings) error {
		if window <= 0 {
			return fmt.Errorf("abcl: WithBatching(%v, %d): window must be positive", window, maxBytes)
		}
		s.batchWindow = window
		s.batchBytes = maxBytes
		return nil
	}
}

// WithDelayedAcks replaces the reliable layer's per-packet acknowledgments
// with cumulative acks emitted after at most d of virtual time (and
// piggybacked for free on reverse-direction batches when WithBatching is
// also on). Requires the reliable protocol — combine with WithFaults or
// WithReliable.
func WithDelayedAcks(d Time) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("abcl: WithDelayedAcks(%v): delay must be positive", d)
		}
		s.ackDelay = d
		return nil
	}
}

// WithLoadHorizon makes load-based placement ignore piggybacked load samples
// older than d, so it stops chasing stale minima on quiet links. Zero (the
// default) keeps samples forever.
func WithLoadHorizon(d Time) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("abcl: WithLoadHorizon(%v): horizon must be positive", d)
		}
		s.loadHorizon = d
		return nil
	}
}

// WithoutLocationCache disables the remote-location cache that
// short-circuits migration forwarders. The cache is on by default (and
// inert until an object migrates); disable it to reproduce strict
// every-message-through-the-forwarder semantics.
func WithoutLocationCache() Option {
	return func(s *settings) error {
		s.noLocCache = true
		return nil
	}
}

// WithCheckpoint enables the coordinated checkpoint subsystem with the given
// snapshot interval: node 0 starts a Chandy–Lamport-style marker round every
// interval of virtual time, capturing a consistent global cut (object state,
// buffered messages, saved contexts, protocol windows, in-flight records)
// against a simulated stable store. When the fault plan declares node
// crashes (NodeCrash), each restart rolls the whole machine back to the last
// complete round and resumes — with reliable delivery on (which this option
// forces), the recovered run delivers every message exactly once and
// produces the same application results as a fault-free run. A crash plan
// without WithCheckpoint recovers from an automatic baseline checkpoint
// taken before execution starts (restart-from-the-beginning). Incompatible
// with the Conservative executor — a restore touches every event lane at
// once — but works under Optimistic, which fences the marker rounds.
func WithCheckpoint(interval Time) Option {
	return func(s *settings) error {
		if interval <= 0 {
			return fmt.Errorf("abcl: WithCheckpoint(%v): interval must be positive", interval)
		}
		s.ckptEvery = interval
		return nil
	}
}

// execKind discriminates the execution strategies an ExecutorSpec can name.
type execKind int

const (
	execSequential execKind = iota
	execConservative
	execOptimistic
)

// OptimisticOptions tunes the Time Warp executor selected by Optimistic.
// The zero value is a good default for every field.
type OptimisticOptions struct {
	// Window is the initial (and floor of the maximum) speculation window
	// width in virtual time. Zero picks 16× the network lookahead. The
	// executor adapts around this starting point: rollbacks shrink the
	// window toward the conservative lookahead, clean wide commits grow it.
	Window Time

	// MaxRollbackDepth is the number of consecutive rolled-back windows
	// tolerated before the executor collapses to conservative width and
	// waits for a probe to succeed before speculating again. Zero picks 8.
	MaxRollbackDepth int

	// GVTInterval caps how far the commit horizon (the Time Warp GVT — the
	// virtual time below which no event can be rolled back) may trail a
	// single window: the adaptive window width never exceeds
	// max(Window, GVTInterval), so state is committed and snapshots are
	// released (fossil collection) at least this often. Zero leaves the
	// cap at Window. Must be zero or >= Window.
	GVTInterval Time
}

// ExecutorSpec names an execution strategy for WithExecutor. Build one with
// Sequential, Conservative or Optimistic.
type ExecutorSpec struct {
	kind    execKind
	workers int
	opt     OptimisticOptions
}

// String names the strategy for reports and manifests: "sequential",
// "conservative(8)", "optimistic(8)".
func (e ExecutorSpec) String() string {
	switch e.kind {
	case execConservative:
		return fmt.Sprintf("conservative(%d)", e.workers)
	case execOptimistic:
		return fmt.Sprintf("optimistic(%d)", e.workers)
	default:
		return "sequential"
	}
}

// Sequential selects the default single-threaded event engine: one global
// event order, compatible with every other option.
func Sequential() ExecutorSpec { return ExecutorSpec{kind: execSequential} }

// Conservative selects the conservative parallel executor with the given
// worker count: node event lanes whose next events fall inside one
// minimum-wire-latency lookahead window fire concurrently, then the engine
// barriers and advances. Results are identical to the sequential engine
// (same final state, same statistics); only wall-clock time differs.
// workers <= 1 selects the sequential engine.
func Conservative(workers int) ExecutorSpec {
	return ExecutorSpec{kind: execConservative, workers: workers}
}

// Optimistic selects the optimistic (Time Warp) parallel executor: lanes
// speculate past the conservative lookahead horizon inside adaptive windows,
// snapshotting their state at the horizon; a cross-lane message into
// another lane's speculated past rolls the window back (restoring state,
// revoking the speculative events — the sender-side form of anti-messages)
// and the window re-commits conservatively. Results are byte-identical to
// the sequential engine, including statistics, multiactive scheduling
// decisions, fault injections and checkpoint rounds; only wall-clock time
// differs. workers <= 1 selects the sequential engine.
//
// Compared to Conservative, Optimistic wins when the conservative lookahead
// is small relative to event spacing (wide-area or congested topologies)
// and cross-lane conflicts are rare; it loses on tightly-coupled all-to-all
// traffic at small scale, where most windows abort.
func Optimistic(workers int, opt OptimisticOptions) ExecutorSpec {
	return ExecutorSpec{kind: execOptimistic, workers: workers, opt: opt}
}

// WithExecutor picks the execution strategy (default Sequential). The
// parallel executors are incompatible with WithTrace/WithObserver — the
// trace contract is a single global interleaving that parallel windows do
// not have — and Conservative is additionally incompatible with
// WithCheckpoint or a crash plan (a restore touches every event lane at
// once; Optimistic handles both by fencing the checkpoint protocol).
// WithProfiler requires Sequential or Conservative.
func WithExecutor(e ExecutorSpec) Option {
	return func(s *settings) error {
		if e.workers < 0 {
			return fmt.Errorf("abcl: WithExecutor: worker count %d must be non-negative", e.workers)
		}
		if e.opt.Window < 0 {
			return fmt.Errorf("abcl: WithExecutor: OptimisticOptions.Window %v must be non-negative", e.opt.Window)
		}
		if e.opt.MaxRollbackDepth < 0 {
			return fmt.Errorf("abcl: WithExecutor: OptimisticOptions.MaxRollbackDepth %d must be non-negative", e.opt.MaxRollbackDepth)
		}
		if e.opt.GVTInterval < 0 {
			return fmt.Errorf("abcl: WithExecutor: OptimisticOptions.GVTInterval %v must be non-negative", e.opt.GVTInterval)
		}
		if e.opt.GVTInterval > 0 && e.opt.GVTInterval < e.opt.Window {
			return fmt.Errorf("abcl: WithExecutor: OptimisticOptions.GVTInterval %v must be zero or >= Window %v", e.opt.GVTInterval, e.opt.Window)
		}
		s.exec = e
		return nil
	}
}

// WithParallelSim runs the simulation on the conservative parallel executor
// with the given worker count.
//
// Deprecated: use WithExecutor(Conservative(workers)); WithParallelSim
// remains as an exact alias.
func WithParallelSim(workers int) Option {
	return func(s *settings) error {
		if workers < 0 {
			return fmt.Errorf("abcl: WithParallelSim(%d): worker count must be non-negative", workers)
		}
		s.exec = Conservative(workers)
		return nil
	}
}

// System is a complete simulated multicomputer running the ABCL runtime.
type System struct {
	M   *machine.Machine
	RT  *core.Runtime
	Net *remote.Layer
	// Trace holds runtime events when tracing was enabled (WithTrace).
	Trace *trace.Ring

	seed        int64
	faults      FaultPlan
	exec        ExecutorSpec
	inj         *fault.Injector     // nil unless faults are enabled
	prof        *profile.Profiler   // nil unless WithProfiler
	ckpt        *checkpoint.Manager // nil unless checkpointing is active
	ckptStarted bool
}

// NewSystem builds a System from functional options:
//
//	sys, err := abcl.NewSystem(
//	    abcl.WithNodes(16),
//	    abcl.WithSeed(7),
//	    abcl.WithFaults(abcl.UniformFaults(0.1, 0.05, 0)),
//	)
//
// Every omitted option selects the AP1000-flavoured default.
//
// Validation is aggregated: every option is applied (later options still
// override earlier ones) and every complaint — bad individual arguments and
// incompatible combinations alike — is collected and returned as one joined
// error, so a misconfigured call reports all of its problems at once.
func NewSystem(opts ...Option) (*System, error) {
	s := settings{
		nodes:     1,
		policy:    StackBased,
		stock:     DefaultStockDepth,
		placement: remote.RoundRobin{},
		seed:      DefaultSeed,
	}
	var errs []error
	for i, opt := range opts {
		if opt == nil {
			errs = append(errs, fmt.Errorf("abcl: option %d is nil", i))
			continue
		}
		if err := opt(&s); err != nil {
			errs = append(errs, err)
		}
	}
	// Cross-option validation, all up front. Checkpointing is active when
	// asked for explicitly or implied by a crash plan (recovery needs at
	// least the baseline checkpoint); it forces reliable delivery, because
	// snapshot markers and post-restore replay ride the ack/retry protocol's
	// per-link sequence space.
	ckptOn := s.ckptEvery > 0 || len(s.faults.Crashes) > 0
	reliable := s.reliable || s.faults.Enabled() || ckptOn
	parallel := s.exec.workers > 1 &&
		(s.exec.kind == execConservative || s.exec.kind == execOptimistic)
	optimistic := s.exec.kind == execOptimistic && s.exec.workers > 1
	if (s.observer != nil || s.traceCap > 0) && parallel {
		errs = append(errs, fmt.Errorf("abcl: WithTrace/WithObserver and a parallel executor (WithExecutor) are incompatible: observers see a single global event interleaving"))
	}
	if ckptOn && parallel && !optimistic {
		errs = append(errs, fmt.Errorf("abcl: WithCheckpoint (or a crash plan) and the Conservative executor are incompatible: a restore touches every event lane at once (the Optimistic executor supports checkpointing)"))
	}
	if s.prof != nil && optimistic {
		errs = append(errs, fmt.Errorf("abcl: WithProfiler and the Optimistic executor are incompatible: profile accumulators are monotonic and cannot be rolled back"))
	}
	if s.ackDelay > 0 && !reliable {
		errs = append(errs, fmt.Errorf("abcl: WithDelayedAcks requires the reliable protocol (combine with WithFaults or WithReliable)"))
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	mcfg := machine.DefaultConfig(s.nodes)
	if s.machine != nil {
		mcfg = *s.machine
		mcfg.Nodes = s.nodes
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, fmt.Errorf("abcl: %w", err)
	}
	// Resolve the observer sink. A nil *trace.Ring must never be stored into
	// the Sink interface fields below — the typed-nil interface value would
	// defeat the engine's `sink != nil` fast path.
	var ring *trace.Ring
	sink := s.observer
	if s.traceCap > 0 {
		ring = trace.NewRing(s.traceCap)
		if sink != nil {
			sink = trace.Tee(ring, sink)
		} else {
			sink = ring
		}
	}
	var prof *profile.Profiler
	if s.prof != nil {
		prof = profile.New(s.nodes, profile.Options{
			Window:  s.prof.Window,
			Classes: s.prof.Classes,
			InstrNs: mcfg.NsPerInstr(),
		})
	}
	var inj *fault.Injector
	if s.faults.Enabled() {
		inj, err = fault.NewInjector(s.faults, s.seed, s.nodes)
		if err != nil {
			return nil, fmt.Errorf("abcl: %w", err)
		}
		m.SetFaults(inj)
	}
	rt := core.NewRuntime(m, core.Options{
		Policy:        s.policy,
		MaxStackDepth: s.maxStack,
		Trace:         sink,
		Prof:          prof,
	})
	if ckptOn || optimistic {
		// Object tracking must be on before anything — bootstrap objects,
		// stocked chunks, reply destinations — is created. The optimistic
		// executor needs it for the same reason checkpointing does: lane
		// rollback restores nodes through the snapshot machinery.
		rt.EnableSnapshots()
	}
	if optimistic {
		rt.SetOptimistic()
		m.SetOptimistic()
		if inj != nil {
			inj.SetOptimistic()
		}
	}
	net := remote.Attach(rt, remote.Options{
		StockDepth:      s.stock,
		Placement:       s.placement,
		Seed:            s.seed,
		Reliable:        reliable,
		Trace:           sink,
		Prof:            prof,
		BatchWindow:     s.batchWindow,
		BatchMaxBytes:   s.batchBytes,
		AckDelay:        s.ackDelay,
		LoadHorizon:     s.loadHorizon,
		NoLocationCache: s.noLocCache,
	})
	if optimistic {
		// After Attach: the reliable-protocol senders must exist so their
		// record pooling can be switched off.
		net.EnableOptimistic()
	}
	sys := &System{M: m, RT: rt, Net: net, Trace: ring, prof: prof, seed: s.seed, faults: s.faults, exec: s.exec, inj: inj}
	if ckptOn {
		// Retention must cover every reliable send, including host-time ones
		// (e.g. a Migrate before the first Run), so it starts here rather
		// than at the manager's Start.
		net.EnableCheckpoint()
		sys.ckpt = checkpoint.New(rt, net, s.ckptEvery, nil)
		if sink != nil {
			sys.ckpt.SetTrace(sink)
		}
		if prof != nil {
			sys.ckpt.SetProfiler(prof)
		}
	}
	return sys, nil
}

// MustNewSystem is NewSystem for known-good configurations.
func MustNewSystem(opts ...Option) *System {
	s, err := NewSystem(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Pattern registers (or looks up) a message pattern.
func (s *System) Pattern(name string, arity int) Pattern {
	return s.RT.Reg.Register(name, arity)
}

// Class defines a new object class with stateSize state variables and an
// optional lazy initializer.
func (s *System) Class(name string, stateSize int, init InitFunc) *Class {
	return s.RT.DefineClass(name, stateSize, init)
}

// NewClass is the builder entry point for class definition: it returns the
// fresh class for chaining Method, Group, Priority and ReorderBound calls.
//
//	counter := sys.NewClass("counter", 1, nil).
//	    Method(get, getBody).
//	    Method(add, addBody).
//	    Group("reads", get).
//	    Group("writes", add).
//	    Priority("writes", 1)
//
// Declaring any compatibility group makes the class multiactive: invocations
// whose patterns share a group may be live on one object simultaneously
// (running, or blocked in a now-type wait), while ungrouped patterns stay
// exclusive with everything. A class with no groups keeps the paper's serial
// semantics exactly. NewClass and Class are the same definition under two
// idioms; both return the chainable *Class.
func (s *System) NewClass(name string, stateSize int, init InitFunc) *Class {
	return s.RT.DefineClass(name, stateSize, init)
}

// NewObjectOn creates an object on a node from the host side (bootstrap).
func (s *System) NewObjectOn(node int, cl *Class, ctorArgs ...Value) Address {
	return s.RT.NewObjectOn(node, cl, ctorArgs...)
}

// Send injects a message from the host side. The message is buffered and
// scheduled on the target's node.
func (s *System) Send(to Address, p Pattern, args ...Value) {
	s.RT.Inject(to, p, args...)
}

// startCkpt lazily starts the checkpoint subsystem: the baseline round-0
// snapshot must be taken after the application's setup (bootstrap objects
// created, initial messages injected) but before the machine runs, so it
// happens on the first Run/Snapshot/Restore rather than in NewSystem.
func (s *System) startCkpt() {
	if s.ckpt == nil || s.ckptStarted {
		return
	}
	s.ckptStarted = true
	s.ckpt.Start(s.faults.Crashes)
}

// Run freezes the system (fixing patterns and building all virtual function
// tables) and executes until quiescence — on the executor WithExecutor
// selected, sequentially by default. When checkpointing is active the
// baseline checkpoint, periodic snapshot rounds and any declared
// crash/restart events are installed before the first event fires.
func (s *System) Run() error {
	s.startCkpt()
	if s.exec.workers > 1 {
		switch s.exec.kind {
		case execConservative:
			s.RT.Freeze()
			return s.M.ParallelRun(s.exec.workers)
		case execOptimistic:
			return s.runOptimistic()
		}
	}
	return s.RT.Run()
}

// runOptimistic drives the machine under the Time Warp executor. Lane 0 (the
// host lane, which owns no node state) is permanently fenced; when the
// checkpoint subsystem is active its marker rounds are fenced too — the next
// scheduled tick bounds every window, and an in-flight round forces serial
// stepping until the cut completes.
func (s *System) runOptimistic() error {
	s.RT.Freeze()
	cfg := sim.OptimisticConfig{
		Window:           s.exec.opt.Window,
		MaxRollbackDepth: s.exec.opt.MaxRollbackDepth,
		GVTInterval:      s.exec.opt.GVTInterval,
		Saver:            parexec.NewTimeWarpSaver(s.RT, s.M, s.Net, s.inj),
		FenceLanes:       []int{0},
	}
	if g := s.ckpt; g != nil {
		cfg.Fence = func() sim.Time {
			// The engine ignores negative fences; a pending tick at virtual
			// time 0 cannot happen (intervals are positive).
			if t := g.NextTick(); t > 0 {
				return t
			}
			return -1
		}
		cfg.SerialNow = g.RoundInFlight
	}
	return s.M.OptimisticRun(s.exec.workers, cfg)
}

// OptStats reports the Time Warp executor's deterministic run statistics
// (windows, speculative windows, rollbacks, serial steps). All zeros unless
// Run executed under WithExecutor(Optimistic(...)).
func (s *System) OptStats() sim.OptStats { return s.M.OptStats() }

// SyncWindows reports how many parallel windows — one cross-lane
// synchronization barrier each — the run executed: lookahead-width windows
// under Conservative(n), adaptive windows under Optimistic(n). The count
// is deterministic (it depends only on virtual time, never on the worker
// schedule) and is the machine-independent scaling signal: fewer, wider
// windows mean less barrier synchronization per event. Zero for
// sequential runs.
func (s *System) SyncWindows() uint64 {
	switch s.exec.kind {
	case execConservative:
		return s.M.ParWindows()
	case execOptimistic:
		return s.M.OptStats().Windows
	}
	return 0
}

// Checkpointing returns the checkpoint manager, or nil when neither
// WithCheckpoint nor a crash plan was configured.
func (s *System) Checkpointing() *checkpoint.Manager { return s.ckpt }

// RegisterSnapshotter installs a per-class checkpoint codec; classes without
// one are captured by the default plain copy of their state box. Requires
// checkpointing (WithCheckpoint or a crash plan).
func (s *System) RegisterSnapshotter(cl *Class, sn Snapshotter) error {
	if s.ckpt == nil {
		return fmt.Errorf("abcl: RegisterSnapshotter requires WithCheckpoint or a crash plan")
	}
	s.ckpt.Registry().Register(cl, sn)
	return nil
}

// Snapshot captures a consistent global checkpoint of the current machine
// state and makes it the restore target. The system must be quiescent
// (before the first Run or after a Run returned); mid-run snapshots are the
// periodic marker rounds' job. Requires checkpointing.
func (s *System) Snapshot() (*Snapshot, error) {
	if s.ckpt == nil {
		return nil, fmt.Errorf("abcl: Snapshot requires WithCheckpoint or a crash plan")
	}
	s.startCkpt()
	return s.ckpt.Snapshot(), nil
}

// Restore rolls the whole machine back to the last stable checkpoint (the
// most recent of: the baseline, a completed periodic round, an explicit
// Snapshot). The system must be quiescent; the next Run resumes execution
// from the restored state, replaying the cut's in-flight messages. Requires
// checkpointing.
func (s *System) Restore() error {
	if s.ckpt == nil {
		return fmt.Errorf("abcl: Restore requires WithCheckpoint or a crash plan")
	}
	s.startCkpt()
	if s.ckpt.Stable() == nil {
		return fmt.Errorf("abcl: Restore without a checkpoint")
	}
	s.ckpt.Restore()
	return nil
}

// Migrate moves a quiescent object to another node (a category-4 service):
// its state travels in a packet and a forwarder is installed at the old
// address, so existing references keep working one hop slower. The transfer
// happens in simulated time; run the system (or continue running it) for
// the move to complete. onDone, if non-nil, observes the new address.
func (s *System) Migrate(obj Address, target int, onDone func(Address)) error {
	s.RT.Freeze()
	return s.Net.Migrate(obj.Obj, target, onDone)
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.M.Nodes() }

// Seed returns the seed actually in use for placement and fault injection
// (DefaultSeed when none was configured).
func (s *System) Seed() int64 { return s.seed }

// Faults returns the configured fault plan; the zero plan means a
// fault-free interconnect.
func (s *System) Faults() FaultPlan { return s.faults }

// Report is the grouped introspection snapshot of a System, replacing the
// flat accessor zoo. Take one after Run (or between Runs); it is a copy and
// does not track subsequent execution.
type Report struct {
	Sched    SchedReport
	Wire     WireReport
	Reliable ReliableReport
	Ckpt     CkptReport
	// Profile is the cost-attribution report; nil unless WithProfiler.
	Profile *ProfileReport
}

// SchedReport covers the intra-node runtime: virtual time, utilization and
// the aggregated scheduling counters.
type SchedReport struct {
	// Nodes is the processor count.
	Nodes int
	// Elapsed is the parallel makespan: the largest node clock.
	Elapsed Time
	// Utilization is busy time over (makespan x nodes).
	Utilization float64
	// TotalInstructions is the instruction count summed over nodes.
	TotalInstructions uint64
	// Counters aggregates the runtime event counters over all nodes.
	Counters Counters
}

// WireReport covers the interconnect: packet/message/byte totals and the
// wire-path optimisations in effect.
type WireReport struct {
	// Packets is the count of physical packet launches; with batching one
	// packet may carry several logical messages.
	Packets uint64
	// LogicalMsgs is the count of logical messages launched onto the wire.
	// The ratio LogicalMsgs/Packets is the mean aggregation factor.
	LogicalMsgs uint64
	// Bytes is the total payload transmitted.
	Bytes uint64
	// BatchWindow and BatchMaxBytes echo the WithBatching configuration
	// (zeroes when batching is off).
	BatchWindow   Time
	BatchMaxBytes int
	// LocationCache reports whether the post-migration location cache is on.
	LocationCache bool
}

// ReliableReport covers the acknowledgment/retry delivery protocol.
type ReliableReport struct {
	// Enabled reports whether the ack/retry protocol is active.
	Enabled bool
	// AckDelay is the delayed-ack interval (zero when acks are immediate).
	AckDelay Time
}

// CkptReport covers the coordinated checkpoint subsystem.
type CkptReport struct {
	// Enabled reports whether checkpointing is active.
	Enabled bool
	// Rounds is the number of completed checkpoint rounds (including the
	// baseline).
	Rounds int
}

// Report assembles the grouped introspection snapshot: scheduling, wire,
// reliable-protocol and checkpoint sections, plus the cost-attribution
// profile when WithProfiler was given.
func (s *System) Report() Report {
	bw, bb := s.Net.Batching()
	r := Report{
		Sched: SchedReport{
			Nodes:             s.M.Nodes(),
			Elapsed:           s.M.MaxClock(),
			Utilization:       s.M.Utilization(),
			TotalInstructions: s.M.TotalInstr(),
			Counters:          s.RT.TotalStats(),
		},
		Wire: WireReport{
			Packets:       s.M.TotalPackets(),
			LogicalMsgs:   s.M.TotalMsgs(),
			Bytes:         s.M.TotalBytes(),
			BatchWindow:   bw,
			BatchMaxBytes: bb,
			LocationCache: s.Net.LocationCache(),
		},
		Reliable: ReliableReport{
			Enabled:  s.Net.Reliable(),
			AckDelay: s.Net.AckDelay(),
		},
		Ckpt: CkptReport{
			Enabled: s.ckpt != nil,
		},
	}
	if s.ckpt != nil {
		r.Ckpt.Rounds = s.ckpt.Rounds()
	}
	if s.prof != nil {
		r.Profile = s.prof.Report()
	}
	return r
}

// InstrTime converts an instruction count to virtual time under the
// system's clock and CPI configuration.
func (s *System) InstrTime(instr int) Time { return s.M.Cfg.InstrTime(instr) }

package abcl_test

import (
	"reflect"
	"testing"

	abcl "repro"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
)

// crashRun executes one N-queens search under the given options and returns
// everything a recovery must reproduce.
type crashRun struct {
	solutions int64
	elapsed   abcl.Time
	stats     abcl.Counters
	trace     []string
}

func runQueens(t *testing.T, n int, opts ...abcl.Option) crashRun {
	t.Helper()
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	d := nqueens.Build(sys, n, 0)
	d.Start()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	r := crashRun{solutions: res.Solutions, elapsed: rep.Sched.Elapsed, stats: rep.Sched.Counters}
	if sys.Trace != nil {
		for _, e := range sys.Trace.Events() {
			r.trace = append(r.trace, e.String())
		}
	}
	return r
}

// queensSolutions holds the exact answers the search must produce.
var queensSolutions = map[int]int64{5: 10, 6: 4, 7: 40, 8: 92}

// TestCrashRecoveryNQueens is the subsystem's headline property: with
// reliable delivery and periodic checkpoints on, a run that loses a node
// mid-search and recovers from the last checkpoint produces exactly the
// result of the fault-free run — no lost work, no double-counted solutions.
func TestCrashRecoveryNQueens(t *testing.T) {
	const n = 6
	base := []abcl.Option{abcl.WithNodes(4), abcl.WithSeed(11), abcl.WithReliable()}
	clean := runQueens(t, n, base...)
	if clean.solutions != queensSolutions[n] {
		t.Fatalf("fault-free run: %d solutions, want %d", clean.solutions, queensSolutions[n])
	}

	// Crash node 2 a third of the way into the fault-free makespan and
	// restart it shortly after; checkpoint often enough that real rounds
	// complete before the crash.
	crashAt := clean.elapsed / 3
	plan := abcl.FaultPlan{}.WithCrash(2, crashAt, clean.elapsed/10)
	crashed := runQueens(t, n,
		abcl.WithNodes(4), abcl.WithSeed(11),
		abcl.WithCheckpoint(clean.elapsed/8),
		abcl.WithFaults(plan),
	)
	if crashed.solutions != clean.solutions {
		t.Errorf("recovered run found %d solutions, fault-free found %d", crashed.solutions, clean.solutions)
	}
	c := crashed.stats
	if c.NodeCrashes != 1 || c.NodeRestarts != 1 {
		t.Errorf("crashes=%d restarts=%d, want 1/1", c.NodeCrashes, c.NodeRestarts)
	}
	if c.CkptSaves == 0 || c.CkptBytes == 0 {
		t.Errorf("no checkpoint writes recorded: saves=%d bytes=%d", c.CkptSaves, c.CkptBytes)
	}
	if c.RelAbandoned != 0 {
		t.Errorf("reliable layer abandoned %d messages during recovery", c.RelAbandoned)
	}
	if crashed.elapsed <= clean.elapsed {
		t.Errorf("recovered run (%v) not slower than fault-free (%v): rollback re-execution missing?",
			crashed.elapsed, clean.elapsed)
	}
}

// TestCrashRecoveryDeterminism re-runs an identical crash-and-recover
// configuration and requires byte-identical counters, elapsed time and
// trace: recovery is part of the deterministic simulation, not an escape
// from it.
func TestCrashRecoveryDeterminism(t *testing.T) {
	const n = 6
	clean := runQueens(t, n, abcl.WithNodes(4), abcl.WithSeed(7), abcl.WithReliable())
	plan := abcl.FaultPlan{}.WithCrash(1, clean.elapsed/4, clean.elapsed/12)
	opts := []abcl.Option{
		abcl.WithNodes(4), abcl.WithSeed(7),
		abcl.WithCheckpoint(clean.elapsed / 6),
		abcl.WithFaults(plan),
		abcl.WithTrace(1 << 15),
	}
	a := runQueens(t, n, opts...)
	b := runQueens(t, n, opts...)
	if a.stats != b.stats {
		t.Errorf("counters differ across identical crash runs:\n%+v\nvs\n%+v", a.stats, b.stats)
	}
	if a.elapsed != b.elapsed || a.solutions != b.solutions {
		t.Errorf("elapsed/answer differ: (%v, %d) vs (%v, %d)",
			a.elapsed, a.solutions, b.elapsed, b.solutions)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		for i := range a.trace {
			if i < len(b.trace) && a.trace[i] != b.trace[i] {
				t.Errorf("trace diverges at %d:\n  %s\n  %s", i, a.trace[i], b.trace[i])
				break
			}
		}
		t.Errorf("traces differ (%d vs %d events)", len(a.trace), len(b.trace))
	}
}

// TestCrashBeforeFirstCheckpoint crashes so early that only the automatic
// baseline (round 0) checkpoint exists, twice in a row on the same node:
// recovery restarts the whole computation from its initial state each time
// and still completes exactly.
func TestCrashBeforeFirstCheckpoint(t *testing.T) {
	const n = 6
	clean := runQueens(t, n, abcl.WithNodes(4), abcl.WithSeed(3), abcl.WithReliable())
	early := clean.elapsed / 50
	plan := abcl.FaultPlan{}.
		WithCrash(3, early, early).
		WithCrash(3, 3*early, early)
	// No WithCheckpoint: the crash plan alone attaches the subsystem with
	// only the baseline checkpoint.
	crashed := runQueens(t, n, abcl.WithNodes(4), abcl.WithSeed(3), abcl.WithFaults(plan))
	if crashed.solutions != clean.solutions {
		t.Errorf("recover-from-baseline found %d solutions, want %d", crashed.solutions, clean.solutions)
	}
	c := crashed.stats
	if c.NodeCrashes != 2 || c.NodeRestarts != 2 {
		t.Errorf("crashes=%d restarts=%d, want 2/2", c.NodeCrashes, c.NodeRestarts)
	}
	if c.CkptRounds != 0 {
		t.Errorf("completed %d periodic rounds with checkpointing nominally off", c.CkptRounds)
	}
}

// TestCrashWithBatching combines a crash with per-link batching: the crash
// can strike with half-flushed batches open on any link, and recovery must
// tear them down and still deliver the exact result.
func TestCrashWithBatching(t *testing.T) {
	const n = 6
	batched := []abcl.Option{
		abcl.WithNodes(4), abcl.WithSeed(5), abcl.WithReliable(),
		abcl.WithBatching(2000*abcl.Nanosecond, 0),
	}
	clean := runQueens(t, n, batched...)
	if clean.solutions != queensSolutions[n] {
		t.Fatalf("batched fault-free run: %d solutions, want %d", clean.solutions, queensSolutions[n])
	}
	plan := abcl.FaultPlan{}.WithCrash(2, clean.elapsed/3, clean.elapsed/10)
	crashed := runQueens(t, n,
		abcl.WithNodes(4), abcl.WithSeed(5),
		abcl.WithBatching(2000*abcl.Nanosecond, 0),
		abcl.WithCheckpoint(clean.elapsed/8),
		abcl.WithFaults(plan),
	)
	if crashed.solutions != clean.solutions {
		t.Errorf("batched recovery found %d solutions, want %d", crashed.solutions, clean.solutions)
	}
	if crashed.stats.RelAbandoned != 0 {
		t.Errorf("reliable layer abandoned %d messages", crashed.stats.RelAbandoned)
	}
}

// TestCrashDuringMigration crashes the migration target while an object's
// state is in flight to it: the rolled-back timeline re-runs the whole
// transfer, and the object must neither lose its state nor its reachability
// through the old address.
func TestCrashDuringMigration(t *testing.T) {
	sys, err := abcl.NewSystem(
		abcl.WithNodes(3), abcl.WithSeed(9),
		abcl.WithFaults(abcl.FaultPlan{}.WithCrash(2, 2_000, 50_000)),
	)
	if err != nil {
		t.Fatal(err)
	}
	cls, _, add, get := misc.BuildCounter(sys)
	counter := sys.NewObjectOn(1, cls)

	// A driver pumps adds at the counter through its old address and then
	// reads it back; the read's reply lands in a host variable as an
	// idempotent set.
	kick := sys.Pattern("cm.kick", 0)
	read := sys.Pattern("cm.read", 0)
	var got int64 = -1
	drv := sys.Class("cm.drv", 0, nil)
	drv.Method(kick, func(ctx *abcl.Ctx) {
		for i := 0; i < 10; i++ {
			ctx.SendPast(counter, add, abcl.Int(3))
		}
	})
	drv.Method(read, func(ctx *abcl.Ctx) {
		ctx.SendNow(counter, get, nil, func(ctx *abcl.Ctx, v abcl.Value) {
			got = v.Int()
		})
	})
	d := sys.NewObjectOn(0, drv)

	// Start the migration 1 -> 2 and the add traffic together, then crash
	// node 2 while the transfer is in flight (the crash fires at 2µs, well
	// inside the migration's wire time plus handler latency).
	sys.Send(d, kick)
	if err := sys.Migrate(counter, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sys.Send(d, read)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("counter after crashed migration = %d, want 30", got)
	}
	c := sys.Report().Sched.Counters
	if c.NodeCrashes != 1 || c.NodeRestarts != 1 {
		t.Errorf("crashes=%d restarts=%d, want 1/1", c.NodeCrashes, c.NodeRestarts)
	}
}

// TestSnapshotRestoreRoundTrip exercises the quiescent System.Snapshot /
// System.Restore surface: snapshotting the freshly built system, running to
// completion, restoring, and running again must reproduce the identical
// answer — the restored state is the pre-run state.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const n = 5
	sys, err := abcl.NewSystem(
		abcl.WithNodes(4), abcl.WithSeed(2),
		abcl.WithCheckpoint(1*abcl.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	d := nqueens.Build(sys, n, 0)
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SizeBytes() == 0 {
		t.Error("pre-run snapshot has zero stable-store footprint")
	}
	d.Start()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	first, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if first.Solutions != queensSolutions[n] {
		t.Fatalf("first run: %d solutions, want %d", first.Solutions, queensSolutions[n])
	}

	// Roll back to the pre-run snapshot and run the search again from it.
	if err := sys.Restore(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	second, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if second.Solutions != first.Solutions {
		t.Errorf("re-run after Restore found %d solutions, want %d", second.Solutions, first.Solutions)
	}
}

// TestCheckpointRequiresSupport pins the option-validation surface.
func TestCheckpointRequiresSupport(t *testing.T) {
	if _, err := abcl.NewSystem(abcl.WithCheckpoint(0)); err == nil {
		t.Error("WithCheckpoint(0) accepted")
	}
	if _, err := abcl.NewSystem(
		abcl.WithNodes(4), abcl.WithCheckpoint(1000), abcl.WithExecutor(abcl.Conservative(4)),
	); err == nil {
		t.Error("WithCheckpoint + Conservative executor accepted")
	}
	sys, err := abcl.NewSystem(abcl.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot without checkpointing accepted")
	}
	if err := sys.Restore(); err == nil {
		t.Error("Restore without checkpointing accepted")
	}
	sys2, err := abcl.NewSystem(abcl.WithNodes(2), abcl.WithCheckpoint(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !sys2.Report().Reliable.Enabled {
		t.Error("WithCheckpoint did not force reliable delivery")
	}
}

package abcl_test

import (
	"reflect"
	"testing"

	abcl "repro"
	"repro/internal/apps/misc"
)

// faultRun executes one fork-join workload under the given options and
// returns everything that must be reproducible: counters, elapsed time,
// packet totals, the trace, and the workload's answer.
type faultRun struct {
	answer  int64
	elapsed abcl.Time
	packets uint64
	stats   abcl.Counters
	trace   []string
}

func runFaulted(t *testing.T, depth int, opts ...abcl.Option) faultRun {
	t.Helper()
	sys, err := abcl.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	answer, err := misc.RunForkJoinOn(sys, depth)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	r := faultRun{
		answer:  answer,
		elapsed: rep.Sched.Elapsed,
		packets: rep.Wire.Packets,
		stats:   rep.Sched.Counters,
	}
	if sys.Trace != nil {
		for _, e := range sys.Trace.Events() {
			r.trace = append(r.trace, e.String())
		}
	}
	return r
}

// TestFaultDeterminism is the reproducibility contract of the fault
// subsystem: the same (seed, fault plan) always yields byte-identical
// counters, elapsed virtual time and trace — regardless of how lossy the
// schedule is.
func TestFaultDeterminism(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		plan abcl.FaultPlan
	}{
		{"drop-only", 3, abcl.UniformFaults(0.2, 0, 0)},
		{"dup-only", 5, abcl.UniformFaults(0, 0.3, 0)},
		{"jitter-only", 7, abcl.UniformFaults(0, 0, 5000)},
		{"everything", 11, abcl.UniformFaults(0.15, 0.1, 3000)},
		{"hot-link", 13, abcl.FaultPlan{
			Links: []abcl.LinkFault{
				{Src: 0, Dst: 1, Drop: 0.5},
				{Src: abcl.Wildcard, Dst: abcl.Wildcard, Drop: 0.05},
			},
		}},
		{"with-pause", 17, abcl.UniformFaults(0.1, 0, 0).
			WithPause(1, 10_000, 200_000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []abcl.Option{
				abcl.WithNodes(4), abcl.WithSeed(tc.seed),
				abcl.WithFaults(tc.plan), abcl.WithTrace(4096),
			}
			a := runFaulted(t, 7, opts...)
			b := runFaulted(t, 7, opts...)
			if a.stats != b.stats {
				t.Errorf("counters differ across identical runs:\n%+v\nvs\n%+v", a.stats, b.stats)
			}
			if a.elapsed != b.elapsed || a.packets != b.packets || a.answer != b.answer {
				t.Errorf("run differs: elapsed %v/%v packets %d/%d answer %d/%d",
					a.elapsed, b.elapsed, a.packets, b.packets, a.answer, b.answer)
			}
			if !reflect.DeepEqual(a.trace, b.trace) {
				t.Errorf("traces differ: %d vs %d events", len(a.trace), len(b.trace))
			}
			// The faults must not corrupt the computation itself.
			if a.answer != 128 {
				t.Errorf("answer = %d, want 128 leaves", a.answer)
			}
			if lost := a.stats.LostMessages(); lost != 0 {
				t.Errorf("lost %d messages", lost)
			}
		})
	}
}

// TestSeedChangesFaultSchedule guards against the injector ignoring the
// seed: different seeds must produce different fault schedules.
func TestSeedChangesFaultSchedule(t *testing.T) {
	plan := abcl.UniformFaults(0.2, 0.1, 2000)
	a := runFaulted(t, 7, abcl.WithNodes(4), abcl.WithSeed(1), abcl.WithFaults(plan))
	b := runFaulted(t, 7, abcl.WithNodes(4), abcl.WithSeed(2), abcl.WithFaults(plan))
	if a.stats == b.stats {
		t.Error("different seeds produced identical fault schedules")
	}
	if a.answer != b.answer {
		t.Errorf("answer must not depend on the seed: %d vs %d", a.answer, b.answer)
	}
}

package abcl_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	abcl "repro"
	"repro/internal/apps/misc"
	"repro/internal/apps/nqueens"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestProfilerEquivalence asserts the profiler's only-observe contract:
// enabling cost attribution (with class tracking and time-series slicing)
// changes no virtual-time result — solutions, elapsed time, packet counts
// and every runtime counter match the unprofiled run bit for bit.
func TestProfilerEquivalence(t *testing.T) {
	base := nqueens.Options{N: 8, Nodes: 8, Seed: 7}
	plain, err := nqueens.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	prof := base
	prof.Profile = &abcl.ProfileOptions{Window: 100 * abcl.Microsecond, Classes: true}
	profiled, err := nqueens.Run(prof)
	if err != nil {
		t.Fatal(err)
	}
	if profiled.Solutions != plain.Solutions {
		t.Errorf("solutions: profiled %d, plain %d", profiled.Solutions, plain.Solutions)
	}
	if profiled.Elapsed != plain.Elapsed {
		t.Errorf("elapsed: profiled %v, plain %v", profiled.Elapsed, plain.Elapsed)
	}
	if profiled.Packets != plain.Packets {
		t.Errorf("packets: profiled %d, plain %d", profiled.Packets, plain.Packets)
	}
	if profiled.Stats != plain.Stats {
		t.Errorf("counters diverge:\nprofiled %+v\nplain    %+v", profiled.Stats, plain.Stats)
	}
	if profiled.Report.Profile == nil {
		t.Fatal("profiled run returned no profile report")
	}
	if plain.Report.Profile != nil {
		t.Error("unprofiled run returned a profile report")
	}
}

// TestProfilerCompleteness asserts that attribution covers the machine: the
// sum of instructions across all paths equals the machine's total
// instruction count, on a run that exercises the remote, reliable,
// checkpoint and retransmission subsystems. An unpaired Charge call anywhere
// in the engine shows up here as a deficit.
func TestProfilerCompleteness(t *testing.T) {
	res, err := nqueens.Run(nqueens.Options{
		N: 8, Nodes: 8, Seed: 3,
		Faults:             abcl.UniformFaults(0.05, 0.02, 0),
		BatchWindow:        10 * abcl.Microsecond,
		AckDelay:           50 * abcl.Microsecond,
		CheckpointInterval: 500 * abcl.Microsecond,
		Profile:            &abcl.ProfileOptions{Classes: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Report.Profile
	if p == nil {
		t.Fatal("no profile report")
	}
	if got, want := p.TotalInstr, res.Report.Sched.TotalInstructions; got != want {
		t.Errorf("attributed instructions = %d, machine total = %d (unattributed: %d)",
			got, want, int64(want)-int64(got))
	}
	if p.DormantFraction < 0.5 || p.DormantFraction > 0.95 {
		t.Errorf("dormant fraction = %.2f, want the paper's ~0.75 neighbourhood", p.DormantFraction)
	}
	paths := make(map[string]abcl.PathStat, len(p.Paths))
	for _, ps := range p.Paths {
		paths[ps.Path] = ps
	}
	for _, want := range []string{"local-dormant", "remote-send", "remote-recv", "create", "ckpt", "retransmit", "ack", "body"} {
		if _, ok := paths[want]; !ok {
			t.Errorf("path %q missing from the report", want)
		}
	}
	if rt := paths["retransmit"]; rt.Packets == 0 {
		t.Error("faulty run attributed no retransmitted packets")
	}
	if ck := paths["ckpt"]; ck.StableBytes == 0 {
		t.Error("checkpointing run attributed no stable-store bytes")
	}
}

// TestObserverEquivalence asserts the Sink contract's passive side: an
// attached observer changes no virtual-time result.
func TestObserverEquivalence(t *testing.T) {
	base := nqueens.Options{N: 8, Nodes: 4, Seed: 5}
	plain, err := nqueens.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMetrics()
	observed := base
	observed.Observer = m
	res, err := nqueens.Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != plain.Elapsed || res.Stats != plain.Stats {
		t.Error("attaching an observer changed virtual-time results")
	}
	if m.Summary().Total == 0 {
		t.Error("observer saw no events")
	}
}

// traceForkJoin runs a small deterministic fork-join workload with a JSONL
// observer and returns the emitted stream.
func traceForkJoin(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sys, err := abcl.NewSystem(
		abcl.WithNodes(4),
		abcl.WithSeed(2),
		abcl.WithObserver(trace.NewJSONL(&buf)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := misc.RunForkJoinOn(sys, 5); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLGolden pins the profile stream format and its determinism: the
// same seed must produce a byte-identical JSON Lines stream, equal to the
// golden file. Regenerate with `go test -run TestJSONLGolden -update .`
// after an intentional event or format change.
func TestJSONLGolden(t *testing.T) {
	got := traceForkJoin(t)
	if again := traceForkJoin(t); !bytes.Equal(got, again) {
		t.Fatal("same-seed runs produced different JSONL streams")
	}
	golden := filepath.Join("testdata", "forkjoin_trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSONL stream differs from %s (%d vs %d bytes); regenerate with -update if the change is intentional",
			golden, len(got), len(want))
	}
}
